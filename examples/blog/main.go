// Blog: a second domain application on the public API, demonstrating
// template inheritance ({% extends %}/{% block %}), custom filters, the
// backward-compatibility path (one legacy handler returns a pre-rendered
// string, which the staged server must still serve, Section 3.1 of the
// paper), and a comparison of the same app on both server variants.
//
// Run: go run ./examples/blog
package main

import (
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"stagedweb/internal/core"
	"stagedweb/internal/server"
	"stagedweb/internal/sqldb"
	"stagedweb/internal/template"
	"stagedweb/internal/webtest"
)

// blogApp serves a post list, single posts, and an archive page.
type blogApp struct {
	set *template.Set
}

var _ server.App = (*blogApp)(nil)

func (a *blogApp) Templates() *template.Set { return a.set }

func (a *blogApp) Static(path string) ([]byte, string, bool) {
	if path == "/blog.css" {
		return []byte("article { max-width: 40em }"), "text/css", true
	}
	return nil, "", false
}

func (a *blogApp) Handler(path string) (server.HandlerFunc, bool) {
	switch path {
	case "/":
		return a.index, true
	case "/post":
		return a.post, true
	case "/archive":
		return a.archive, true
	case "/legacy":
		// The unconverted handler: renders inside the handler and
		// returns a string, as pre-modification Django code would.
		return func(r *server.Request) (*server.Result, error) {
			out, err := a.set.Render("post.html", map[string]any{
				"title": "Legacy", "body": "rendered in the handler", "tags": []any{},
			})
			if err != nil {
				return nil, err
			}
			return &server.Result{Body: out}, nil
		}, true
	}
	return nil, false
}

func (a *blogApp) index(r *server.Request) (*server.Result, error) {
	rs, err := r.DB.Query("SELECT p_id, p_title, p_date FROM post ORDER BY p_date DESC LIMIT 10")
	if err != nil {
		return nil, err
	}
	return &server.Result{Template: "index.html", Data: map[string]any{
		"posts": rs.Maps(),
	}}, nil
}

func (a *blogApp) post(r *server.Request) (*server.Result, error) {
	// The embedded engine is strictly typed: parse the id before binding
	// it against the INT primary key.
	id, err := strconv.Atoi(r.Query["id"])
	if err != nil {
		return &server.Result{Status: 404, Body: "<html>no such post</html>"}, nil
	}
	rs, err := r.DB.Query("SELECT p_title, p_body FROM post WHERE p_id = ?", id)
	if err != nil {
		return nil, err
	}
	if rs.Len() == 0 {
		return &server.Result{Status: 404, Body: "<html>no such post</html>"}, nil
	}
	tags, err := r.DB.Query("SELECT t_name FROM tag WHERE t_p_id = ?", id)
	if err != nil {
		return nil, err
	}
	var tagNames []any
	for i := 0; i < tags.Len(); i++ {
		tagNames = append(tagNames, tags.Str(i, "t_name"))
	}
	return &server.Result{Template: "post.html", Data: map[string]any{
		"title": rs.Str(0, "p_title"),
		"body":  rs.Str(0, "p_body"),
		"tags":  tagNames,
	}}, nil
}

func (a *blogApp) archive(r *server.Request) (*server.Result, error) {
	rs, err := r.DB.Query("SELECT p_id, p_title, p_date FROM post ORDER BY p_date ASC")
	if err != nil {
		return nil, err
	}
	return &server.Result{Template: "archive.html", Data: map[string]any{
		"posts": rs.Maps(), "total": rs.Len(),
	}}, nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "blog:", err)
		os.Exit(1)
	}
}

func run() error {
	db := sqldb.Open(sqldb.Options{Cost: sqldb.ZeroCostModel()})
	db.MustCreateTable(sqldb.Schema{
		Table: "post",
		Columns: []sqldb.Column{
			{Name: "p_id", Type: sqldb.Int},
			{Name: "p_title", Type: sqldb.String},
			{Name: "p_body", Type: sqldb.String},
			{Name: "p_date", Type: sqldb.Time},
		},
		PrimaryKey: "p_id",
	})
	db.MustCreateTable(sqldb.Schema{
		Table: "tag",
		Columns: []sqldb.Column{
			{Name: "t_id", Type: sqldb.Int},
			{Name: "t_p_id", Type: sqldb.Int},
			{Name: "t_name", Type: sqldb.String},
		},
		PrimaryKey: "t_id",
		Indexes:    []string{"t_p_id"},
	})
	seed := db.Connect()
	base := time.Date(2009, 6, 29, 0, 0, 0, 0, time.UTC) // DSN'09
	titles := []string{"Thread pools", "Template engines", "Little's law", "Queueing"}
	for i, title := range titles {
		if _, err := seed.Exec(
			"INSERT INTO post (p_id, p_title, p_body, p_date) VALUES (?, ?, ?, ?)",
			i+1, title, "Body of "+strings.ToLower(title)+".", base.AddDate(0, 0, i)); err != nil {
			return err
		}
		if _, err := seed.Exec(
			"INSERT INTO tag (t_id, t_p_id, t_name) VALUES (NULL, ?, ?)",
			i+1, "systems"); err != nil {
			return err
		}
	}
	seed.Close()

	app := &blogApp{set: template.NewSet()}
	// A custom filter, registered before first render.
	app.set.Filters().Register("shout", func(v any, _ any, _ bool) (any, error) {
		return strings.ToUpper(template.Stringify(v)) + "!", nil
	})
	app.set.AddAll(map[string]string{
		"base.html": `<html><head><title>{% block title %}Blog{% endblock %}</title>
<link rel="stylesheet" href="/blog.css"></head>
<body>{% block content %}{% endblock %}
<footer>powered by the staged server</footer></body></html>`,
		"index.html": `{% extends "base.html" %}
{% block title %}{{ "the blog"|shout }}{% endblock %}
{% block content %}<ul>
{% for p in posts %}<li><a href="/post?id={{ p.p_id }}">{{ p.p_title }}</a> ({{ p.p_date }})</li>{% endfor %}
</ul>{% endblock %}`,
		"post.html": `{% extends "base.html" %}
{% block title %}{{ title }}{% endblock %}
{% block content %}<article><h1>{{ title|capfirst }}</h1><p>{{ body }}</p>
{% if tags %}<p>tags: {{ tags|join:", " }}</p>{% endif %}</article>{% endblock %}`,
		"archive.html": `{% extends "base.html" %}
{% block title %}Archive{% endblock %}
{% block content %}<h1>{{ total }} post{{ total|pluralize }}</h1>
<ol>{% for p in posts %}<li>{{ p.p_title }}</li>{% endfor %}</ol>{% endblock %}`,
	})

	srv, err := core.New(core.Config{
		App: app, DB: db,
		GeneralWorkers: 4, LengthyWorkers: 1, MinReserve: 1,
	})
	if err != nil {
		return err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go func() { _ = srv.Serve(l) }()
	defer srv.Stop()
	addr := l.Addr().String()

	for _, path := range []string{"/", "/post?id=2", "/archive", "/legacy", "/post?id=99"} {
		resp, err := webtest.Get(addr, path)
		if err != nil {
			return err
		}
		first := strings.SplitN(string(resp.Body), "\n", 2)[0]
		fmt.Printf("GET %-14s -> %d  %.60s\n", path, resp.Status, first)
	}
	fmt.Printf("\nserved %d requests through the five-pool pipeline\n", srv.Served())
	return nil
}
