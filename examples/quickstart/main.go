// Quickstart: the smallest complete staged-server application.
//
// It shows the paper's one-line idiom — a handler performs its database
// queries and returns the *unrendered* template name plus data; the
// server's template-rendering pool does the rest — and demonstrates that
// the database connection is free for other requests while the page
// renders.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"net"
	"os"

	"stagedweb/internal/core"
	"stagedweb/internal/server"
	"stagedweb/internal/sqldb"
	"stagedweb/internal/template"
	"stagedweb/internal/webtest"
)

// guestbookApp is a tiny one-table application.
type guestbookApp struct {
	set *template.Set
}

func (a *guestbookApp) Handler(path string) (server.HandlerFunc, bool) {
	if path != "/guestbook" {
		return nil, false
	}
	return a.guestbook, true
}

func (a *guestbookApp) Static(path string) ([]byte, string, bool) {
	if path == "/style.css" {
		return []byte("body { font-family: serif }"), "text/css", true
	}
	return nil, "", false
}

func (a *guestbookApp) Templates() *template.Set { return a.set }

// guestbook optionally signs the book, then lists entries — and returns
// the template *unrendered* (the paper's modification).
func (a *guestbookApp) guestbook(r *server.Request) (*server.Result, error) {
	if name := r.Query["sign"]; name != "" {
		if _, err := r.DB.Exec(
			"INSERT INTO entry (e_id, e_name) VALUES (NULL, ?)", name); err != nil {
			return nil, err
		}
	}
	rs, err := r.DB.Query("SELECT e_name FROM entry ORDER BY e_id DESC LIMIT 20")
	if err != nil {
		return nil, err
	}
	var names []any
	for i := 0; i < rs.Len(); i++ {
		names = append(names, rs.Str(i, "e_name"))
	}
	// Conventional Django:  return render(tmpl, data)  — rendered here.
	// The paper's version:  return (tmpl, data)        — rendered by the
	// template-rendering pool, after this worker has released its turn
	// with the database connection.
	return &server.Result{
		Template: "guestbook.html",
		Data:     map[string]any{"names": names},
	}, nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. An embedded database with one table.
	db := sqldb.Open(sqldb.Options{Cost: sqldb.ZeroCostModel()})
	db.MustCreateTable(sqldb.Schema{
		Table: "entry",
		Columns: []sqldb.Column{
			{Name: "e_id", Type: sqldb.Int},
			{Name: "e_name", Type: sqldb.String},
		},
		PrimaryKey: "e_id",
	})

	// 2. A template set (Django syntax).
	app := &guestbookApp{set: template.NewSet()}
	app.set.Add("guestbook.html", `<html><body>
<h1>Guestbook</h1>
<ul>{% for n in names %}<li>{{ n }}</li>{% empty %}<li>(no entries)</li>{% endfor %}</ul>
</body></html>`)

	// 3. The staged server: listener + five pools, database connections
	// bound to the dynamic workers only.
	srv, err := core.New(core.Config{
		App:            app,
		DB:             db,
		GeneralWorkers: 8,
		LengthyWorkers: 2,
		MinReserve:     2,
	})
	if err != nil {
		return err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go func() { _ = srv.Serve(l) }()
	defer srv.Stop()
	addr := l.Addr().String()
	fmt.Println("staged server listening on", addr)

	// 4. Exercise it: sign the book a few times, then read it back.
	for _, name := range []string{"Ada", "Grace", "Edsger"} {
		if _, err := webtest.Get(addr, "/guestbook?sign="+name); err != nil {
			return err
		}
	}
	resp, err := webtest.Get(addr, "/guestbook")
	if err != nil {
		return err
	}
	fmt.Printf("GET /guestbook -> %d\n%s\n", resp.Status, resp.Body)
	fmt.Printf("server pools: %v, served %d requests\n", srv.QueueLens(), srv.Served())
	return nil
}
