// Spike: a flash crowd expressed through the load-profile registry.
//
// The offered load is data, not code: the "spike" profile holds a base
// population of emulated browsers and injects a burst of extra EBs for
// a window mid-run, all configured through the same key=value settings
// surface the server variants use. The harness runs the baseline and
// staged servers through the identical crowd and samples the client.*
// probe series (active EBs, per-second WIRT) next to the server's
// queue.*/sched.* series — so the plots below show the controller's
// t_reserve rising with the crowd while the staged server's quick-page
// WIRT stays flat, with zero bespoke workload code.
//
// Run: go run ./examples/spike
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"stagedweb/internal/clock"
	"stagedweb/internal/harness"
	"stagedweb/internal/load"
	"stagedweb/internal/variant"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "spike:", err)
		os.Exit(1)
	}
}

func run() error {
	base := harness.QuickConfig("", clock.Timescale(200))
	base.EBs = 40 // base population; the profile scales from it
	base.RampUp = 20 * time.Second
	base.Measure = 3 * time.Minute
	base.CoolDown = 10 * time.Second

	// The crowd: triple the population for 45 paper-seconds, one minute
	// into the run.
	crowd := harness.LoadSpec{Profile: load.Spike, Set: variant.Settings{
		"burst": "80",
		"at":    "1m",
		"width": "45s",
	}}
	scenarios := harness.Matrix(base,
		[]string{variant.Unmodified, variant.Modified},
		[]harness.LoadSpec{crowd})

	fmt.Println("driving a flash crowd through both servers...")
	sw, err := harness.Sweep(context.Background(), scenarios)
	if err != nil {
		return err
	}

	for _, sc := range scenarios {
		res := sw.Result(sc.Name)
		fmt.Printf("\n== %s: %d interactions, %d errors ==\n",
			sc.Name, res.TotalInteractions, res.Errors)
		fmt.Print(harness.AsciiPlot("active EBs (client.active)", "EBs",
			res.Series[load.ProbeActive], 64, 8))
		fmt.Print(harness.AsciiPlot("per-second client WIRT (client.wirt)", "paper-s",
			res.Series[load.ProbeWIRT], 64, 8))
		if s := res.Series[variant.ProbeReserve]; s != nil {
			fmt.Print(harness.AsciiPlot("t_reserve (sched.reserve)", "workers", s, 64, 8))
		}
	}
	fmt.Println()
	fmt.Print(sw.Report())
	return nil
}
