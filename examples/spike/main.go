// Spike: a live demonstration of the t_reserve feedback controller
// (Section 3.3 of the paper) reacting to a traffic spike.
//
// A staged server serves one quick page and one lengthy page. A steady
// trickle of lengthy requests overflows into the general pool while spare
// workers are abundant; then a burst of lengthy traffic collapses
// t_spare, the controller raises t_reserve within a second, and
// subsequent lengthy requests are confined to the lengthy pool — so a
// probe of the quick page stays fast through the whole spike. After the
// burst, t_reserve decays slowly back to its configured minimum.
//
// Run: go run ./examples/spike
package main

import (
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"stagedweb/internal/clock"
	"stagedweb/internal/core"
	"stagedweb/internal/server"
	"stagedweb/internal/sqldb"
	"stagedweb/internal/template"
	"stagedweb/internal/webtest"
)

type spikeApp struct{ set *template.Set }

func (a *spikeApp) Handler(path string) (server.HandlerFunc, bool) {
	switch path {
	case "/quick":
		return func(r *server.Request) (*server.Result, error) {
			rs, err := r.DB.Query("SELECT v FROM kv WHERE id = 1")
			if err != nil {
				return nil, err
			}
			return &server.Result{Template: "page.html",
				Data: map[string]any{"msg": rs.Str(0, "v")}}, nil
		}, true
	case "/lengthy":
		return func(r *server.Request) (*server.Result, error) {
			// A deliberate table scan: the cost model makes it seconds
			// of paper time.
			if _, err := r.DB.Query("SELECT COUNT(*) AS n FROM big WHERE pad LIKE '%x%'"); err != nil {
				return nil, err
			}
			return &server.Result{Template: "page.html",
				Data: map[string]any{"msg": "scanned"}}, nil
		}, true
	}
	return nil, false
}

func (a *spikeApp) Static(string) ([]byte, string, bool) { return nil, "", false }
func (a *spikeApp) Templates() *template.Set             { return a.set }

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "spike:", err)
		os.Exit(1)
	}
}

func run() error {
	scale := clock.Timescale(100)
	db := sqldb.Open(sqldb.Options{
		Clock:     clock.Precise{},
		Timescale: scale,
		Cost:      sqldb.DefaultCostModel(),
	})
	db.MustCreateTable(sqldb.Schema{
		Table:      "kv",
		Columns:    []sqldb.Column{{Name: "id", Type: sqldb.Int}, {Name: "v", Type: sqldb.String}},
		PrimaryKey: "id",
	})
	db.MustCreateTable(sqldb.Schema{
		Table:      "big",
		Columns:    []sqldb.Column{{Name: "id", Type: sqldb.Int}, {Name: "pad", Type: sqldb.String}},
		PrimaryKey: "id",
	})
	seed := db.Connect()
	if _, err := seed.Exec("INSERT INTO kv (id, v) VALUES (1, 'hello')"); err != nil {
		return err
	}
	for i := 1; i <= 8000; i++ {
		if _, err := seed.Exec("INSERT INTO big (id, pad) VALUES (?, 'xxxx')", i); err != nil {
			return err
		}
	}
	seed.Close()

	app := &spikeApp{set: template.NewSet()}
	app.set.Add("page.html", "<html>{{ msg }}</html>")

	srv, err := core.New(core.Config{
		App: app, DB: db,
		GeneralWorkers: 16, LengthyWorkers: 4,
		MinReserve: 4,
		Scale:      scale,
		Clock:      clock.Precise{},
	})
	if err != nil {
		return err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go func() { _ = srv.Serve(l) }()
	defer srv.Stop()
	addr := l.Addr().String()

	// Teach the classifier that /lengthy is lengthy.
	if _, err := webtest.Get(addr, "/lengthy"); err != nil {
		return err
	}

	probe := func(label string) error {
		start := time.Now()
		resp, err := webtest.Get(addr, "/quick")
		if err != nil || resp.Status != 200 {
			return fmt.Errorf("probe failed: %v %v", resp, err)
		}
		fmt.Printf("%-22s quick page in %6.2f paper-s   t_spare=%2d t_reserve=%2d lengthy-queue=%d\n",
			label, scale.PaperSeconds(time.Since(start)), srv.Spare(), srv.Reserve(), srv.LengthyQueueLen())
		return nil
	}

	if err := probe("before spike:"); err != nil {
		return err
	}

	// The spike: 40 lengthy requests at once.
	fmt.Println("\n-- spike: 40 lengthy requests --")
	var wg sync.WaitGroup
	for i := 0; i < 40; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = webtest.Get(addr, "/lengthy")
		}()
	}
	for i := 0; i < 5; i++ {
		time.Sleep(scale.Wall(2 * time.Second))
		if err := probe(fmt.Sprintf("t+%d paper-s:", (i+1)*2)); err != nil {
			return err
		}
	}
	wg.Wait()
	fmt.Println("\n-- spike over; t_reserve decays --")
	for i := 0; i < 4; i++ {
		time.Sleep(scale.Wall(3 * time.Second))
		if err := probe(fmt.Sprintf("t+%d paper-s:", 10+(i+1)*3)); err != nil {
			return err
		}
	}

	fmt.Println("\n-- final stage-graph snapshot --")
	for _, st := range srv.Graph().Stats() {
		fmt.Printf("  %s\n", st)
	}
	general, lengthy := srv.DispatchCounts()
	fmt.Printf("dispatch decisions: general=%d lengthy=%d\n", general, lengthy)
	return nil
}
