// Bookstore: the full TPC-W online bookstore (the paper's evaluation
// application) served by the staged server and exercised by a short
// browsing-mix workload, printing client-side response times per page —
// a miniature of the paper's Table 3 measurement.
//
// Run: go run ./examples/bookstore
package main

import (
	"fmt"
	"net"
	"os"
	"time"

	"stagedweb/internal/clock"
	"stagedweb/internal/core"
	"stagedweb/internal/server"
	"stagedweb/internal/sqldb"
	"stagedweb/internal/tpcw"
	"stagedweb/internal/webtest"
	"stagedweb/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bookstore:", err)
		os.Exit(1)
	}
}

func run() error {
	scale := clock.Timescale(100) // 1 paper-second = 10 ms

	// Database with the paper's latency model; the per-row scan cost is
	// raised to keep the slow-page class above the 2 s cutoff at this
	// reduced population (2000 rows x 1.5 ms = 3 s scans).
	cost := sqldb.DefaultCostModel()
	cost.PerRowScanned = 1500 * time.Microsecond
	db := sqldb.Open(sqldb.Options{
		Clock:     clock.Precise{},
		Timescale: scale,
		Cost:      &cost,
	})
	if err := tpcw.CreateTables(db); err != nil {
		return err
	}
	fmt.Println("populating the bookstore...")
	counts, err := tpcw.Populate(db, tpcw.PopulateConfig{
		Items: 2000, Customers: 500, Orders: 400,
	})
	if err != nil {
		return err
	}
	fmt.Printf("  %d items, %d customers, %d orders, %d order lines\n",
		counts.Items, counts.Customers, counts.Orders, counts.OrderLines)

	app := tpcw.NewApp(counts, nil)
	srv, err := core.New(core.Config{
		App: app, DB: db,
		GeneralWorkers: 16, LengthyWorkers: 4,
		MinReserve: 4,
		Scale:      scale,
		Clock:      clock.Precise{},
		Cost:       server.DefaultWorkCost(),
	})
	if err != nil {
		return err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go func() { _ = srv.Serve(l) }()
	defer srv.Stop()
	addr := l.Addr().String()

	// Visit one page by hand, so the output shows real HTML.
	resp, err := webtest.Get(addr, tpcw.PageProductDetail+"?i_id=42")
	if err != nil {
		return err
	}
	fmt.Printf("\nGET /product_detail?i_id=42 -> %d (%d bytes)\n", resp.Status, len(resp.Body))

	// Drive two paper-minutes of browsing mix with 40 browsers.
	fmt.Println("\ndriving 40 emulated browsers for 2 paper-minutes...")
	gen := workload.New(workload.Config{
		Addr: addr, EBs: 40, Scale: scale,
		Customers: counts.Customers, Items: counts.Items,
		FetchImages: true, Seed: 7,
	})
	gen.Start()
	time.Sleep(scale.Wall(2 * time.Minute)) //lint:allow wallclock(example runs in real time for a human audience)
	gen.Stop()

	fmt.Printf("\n%-26s %7s %10s\n", "page", "count", "mean (s)")
	for _, p := range gen.Stats().Pages() {
		fmt.Printf("%-26s %7d %10.3f\n", p.Page, p.Count, scale.PaperSeconds(p.Mean))
	}
	fmt.Printf("\nlengthy pages learned by the classifier (cutoff %v):\n",
		srv.Classifier().Cutoff())
	for _, ps := range srv.Classifier().Snapshot() {
		if ps.Mean > srv.Classifier().Cutoff() {
			fmt.Printf("  %-26s mean data-gen %.2fs over %d requests\n",
				ps.Key, ps.Mean.Seconds(), ps.Count)
		}
	}
	fmt.Printf("\ntotal: %d interactions, %d errors, t_reserve=%d\n",
		gen.Stats().TotalInteractions(), gen.Stats().Errors(), srv.Reserve())
	return nil
}
