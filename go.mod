module stagedweb

go 1.24.0
