// Package stagedweb is a reproduction of "Efficient Resource Management
// on Template-based Web Servers" (Courtwright, Yue, Wang; DSN 2009) as a
// production-quality Go library.
//
// The paper's contribution — a multithreaded web server whose requests
// are served by different threads in five thread pools, with database
// connections bound only to data-generation workers — lives in
// internal/core, expressed as a graph over the generic stage runtime
// (internal/stage) and the shared connection transport (internal/server).
// The thread-per-request baseline it is compared against lives in
// internal/server as a one-stage graph over the same two layers. Every
// substrate the evaluation depends on is implemented from scratch in
// this module: a Django-style template engine (internal/template), an
// embedded relational database with table locks and a latency cost model
// (internal/sqldb), an HTTP/1.1 wire implementation with two-phase
// header parsing (internal/httpwire), the TPC-W bookstore, its page
// mixes, and a dynamic emulated-browser fleet (internal/tpcw,
// internal/workload), a load-profile registry that makes offered load —
// steady state, flash crowds, ramps, diurnal waves, open-loop arrivals —
// a named first-class value (internal/load), and the experiment harness
// that regenerates the paper's tables and figures (internal/harness).
//
// Scaling past one database, internal/dbtier fronts a primary plus N-1
// cloned read replicas behind the same Conn-shaped Query/Exec surface
// handlers use (server.DBConn): reads route round-robin, DML commits on
// the primary and ships to replicas through its versioned replication
// log (synchronously by default, asynchronously with bounded staleness
// under repl=async), and every statement acquires a pooled per-backend
// connection through an instrumented path (the db.* probe series). It
// absorbs and replaces the former internal/dbpool package. Both server
// variants take replicas=N / dbconns=K purely as configuration, and
// cmd/experiments -exp scaleout sweeps replica counts under the
// browsing and ordering mixes.
//
// The storage engine underneath (internal/sqldb) keeps every row as an
// immutable version chain stamped with a per-database commit timestamp.
// With mvcc=off (the default) statements take the paper's per-table
// reader-writer locks; with mvcc=on SELECTs run lock-free against a
// pinned snapshot and DML commits optimistically with first-writer-wins
// conflict detection and transparent retry — readers never block
// writers. cmd/experiments -exp mvcc sweeps the engine modes, and
// cmd/bench persists the benchmark artifact CI uploads on every PR.
//
// Scaling past one server, internal/cluster puts a consistent-hash
// load balancer — itself a variant.Instance built on the stage runtime
// — in front of M shard-owning server instances, each a complete
// worker-pool/database stack over its slice of the TPC-W data. Routing
// policy stays with the application (tpcw.ShardKey routes
// customer-keyed pages by the same customer key
// tpcw.PopulateShard partitions rows by; best_sellers and
// admin_response fan out to every shard and wait for all of them,
// preserving read-your-writes), while the generic ring, balancer
// stage, keep-alive shard pools, and shard.*/lb.* probe series stay in
// internal/cluster. shards=M / lb=hash|rr are plain settings;
// cmd/experiments -exp shard sweeps shard counts under open-loop
// arrivals.
//
// Failure itself is a named, replayable input: internal/faults is a
// fault-plan registry symmetric with the load profiles (replica-kill,
// shard-down, slow-backend, conn-drop, leak), scheduling every
// injection on the injected clock in paper time so plans replay
// deterministically under clock.Manual. The system survives them by
// construction — dbtier health-checks its replicas, ejects dead or
// pathologically slow ones from the read rotation, and reintegrates
// them by replication-log catch-up (or a snapshot resync when the log
// has been truncated past their watermark); connection acquisition and
// cross-shard fan-outs are deadline-bounded; the cluster balancer
// retries with backoff, trips per-shard circuit breakers, and routes
// key-less traffic around down shards. Faulted runs report an
// MTTR-style recovery time (paper seconds from injection until SLO
// attainment returns to its pre-fault baseline), and cmd/experiments
// -exp faults sweeps {no-fault, replica-kill, shard-down} across both
// replication modes. See the README's "Dependability" section.
//
// The invariants none of this encodes in types — timing flows through
// the injected clock.Clock, nothing sleeps while holding a lock, probe
// names and settings keys stay in their canonical catalogs — are
// machine-checked by cmd/vetcheck, a multichecker of four custom
// analyzers (internal/analysis) that CI runs via go vet -vettool on
// every push. Genuinely wall-bound sites are exempted in place with
// //lint:allow analyzer(reason) comments; see the README's "Static
// analysis" section.
//
// See README.md for the architecture, a walkthrough, design notes, and
// how to run the experiments. The root-level bench_test.go regenerates
// each table and figure as a Go benchmark.
package stagedweb
