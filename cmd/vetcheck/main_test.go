package main

import (
	"testing"

	"stagedweb/internal/analysis/framework"
)

// TestRepoAnalyzesClean is the self-check CI leans on: the full
// analyzer suite over every package in the module must report nothing.
// A finding here means either a new invariant violation or an allowlist
// comment that stopped suppressing anything — both are failures.
func TestRepoAnalyzesClean(t *testing.T) {
	findings, err := framework.Standalone("", analyzers(), "stagedweb/...")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
