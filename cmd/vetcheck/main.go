// Command vetcheck is the repo's invariant checker: a multichecker over
// the four custom analyzers in internal/analysis plus the lintallow
// escape-comment auditor.
//
// Two modes share the same analyzers:
//
//	go vet -vettool=$(pwd)/vetcheck ./...   # unit mode, driven by the go command
//	go run ./cmd/vetcheck ./...             # standalone mode, direct package patterns
//
// Unit mode speaks the go vet tool protocol (-V=full / -flags /
// <unit>.cfg) so results integrate with the build cache; standalone
// mode loads packages itself via `go list -export`. Both exit nonzero
// if any diagnostic is reported. See the README "Static analysis"
// section for the invariants and the //lint:allow escape-hatch syntax.
package main

import (
	"stagedweb/internal/analysis/framework"
	"stagedweb/internal/analysis/locksleep"
	"stagedweb/internal/analysis/probenames"
	"stagedweb/internal/analysis/settingskeys"
	"stagedweb/internal/analysis/wallclock"
)

// Analyzers is the suite vetcheck runs, exported for the self-check
// test that asserts the repo is clean.
func analyzers() []*framework.Analyzer {
	suite := []*framework.Analyzer{
		wallclock.Analyzer,
		locksleep.Analyzer,
		probenames.Analyzer,
		settingskeys.Analyzer,
	}
	names := make([]string, len(suite))
	for i, a := range suite {
		names[i] = a.Name
	}
	return append(suite, framework.LintAllow(names...))
}

func main() {
	framework.Main("vetcheck", analyzers()...)
}
