package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// throughputRate is the figure the trajectory guard tracks: completed
// interactions per wall millisecond. Normalizing by the measured wall
// duration makes full and -quick artifacts comparable, so CI can guard
// a committed full-run baseline with a quick PR run.
func throughputRate(e EngineResult) float64 {
	if e.WallDurationMilli <= 0 {
		return 0
	}
	return float64(e.Interactions) / float64(e.WallDurationMilli)
}

// rowLabel names one artifact row in comparison output; shards=0 rows
// (unclustered) omit the shard axis, and indexes=off rows (the paper
// schema) omit the index axis.
func rowLabel(engine string, replicas, shards int, indexes bool) string {
	label := fmt.Sprintf("%-12s replicas=%d", engine, replicas)
	if shards > 0 {
		label += fmt.Sprintf(" shards=%d", shards)
	}
	if indexes {
		label += " indexes=on"
	}
	return label
}

// compareEngines checks every baseline engine row against the current
// artifact, matching rows by engine mode, replica count, and shard
// count — two rows that differ only in shard count are distinct cells,
// not the same row measured twice. It returns one human-readable line
// per row plus whether any matched row's throughput rate fell more than
// tolerance (a fraction, e.g. 0.15) below its baseline. Rows present on
// only one side are reported but never fail the comparison — a new
// engine mode has no history, and a retired one has no current number.
func compareEngines(cur, base Artifact, tolerance float64) (lines []string, regressed bool) {
	type key struct {
		engine   string
		replicas int
		shards   int
		indexes  bool
	}
	current := map[key]EngineResult{}
	for _, e := range cur.Engines {
		current[key{e.Engine, e.Replicas, e.Shards, e.Indexes}] = e
	}
	for _, b := range base.Engines {
		k := key{b.Engine, b.Replicas, b.Shards, b.Indexes}
		c, ok := current[k]
		if !ok {
			lines = append(lines, fmt.Sprintf("%s: no current result (engine retired?) — skipped", rowLabel(b.Engine, b.Replicas, b.Shards, b.Indexes)))
			continue
		}
		delete(current, k)
		baseRate, curRate := throughputRate(b), throughputRate(c)
		if baseRate <= 0 {
			lines = append(lines, fmt.Sprintf("%s: baseline has no usable throughput — skipped", rowLabel(b.Engine, b.Replicas, b.Shards, b.Indexes)))
			continue
		}
		delta := (curRate - baseRate) / baseRate
		line := fmt.Sprintf("%s: %.3f -> %.3f interactions/ms (%+.1f%%)",
			rowLabel(b.Engine, b.Replicas, b.Shards, b.Indexes), baseRate, curRate, 100*delta)
		if delta < -tolerance {
			line += fmt.Sprintf("  REGRESSION (>%.0f%% below baseline)", 100*tolerance)
			regressed = true
		}
		lines = append(lines, line)
	}
	for k := range current {
		lines = append(lines, fmt.Sprintf("%s: no baseline (new engine mode) — skipped", rowLabel(k.engine, k.replicas, k.shards, k.indexes)))
	}
	return lines, regressed
}

// compareAgainst loads the baseline artifact at path and prints the
// throughput comparison; it returns true when any engine regressed
// beyond tolerance, which main turns into a nonzero exit so CI fails
// the PR.
func compareAgainst(path string, cur Artifact, tolerance float64) (regressed bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return false, err
	}
	var base Artifact
	if err := json.Unmarshal(data, &base); err != nil {
		return false, fmt.Errorf("%s: %w", path, err)
	}
	lines, regressed := compareEngines(cur, base, tolerance)
	fmt.Fprintf(os.Stderr, "throughput vs %s (tolerance %.0f%%):\n", path, 100*tolerance)
	for _, l := range lines {
		fmt.Fprintln(os.Stderr, "  "+l)
	}
	return regressed, nil
}
