// Command bench produces the repo's benchmark artifact: a JSON file
// summarizing server throughput, worst client WIRT, allocations per
// interaction, and the raw storage-engine numbers, for each engine mode
// (lock/sync, mvcc/sync, mvcc/async) with the extra TPC-W secondary
// indexes off and on, and for the clustered topology at each shard
// count. CI runs it on every PR and uploads the file, so the numbers
// travel with the change that produced them.
//
// Usage:
//
//	bench -o BENCH_PR10.json           # full artifact
//	bench -quick -o BENCH_PR10.json    # reduced run (seconds)
//	bench -quick -o BENCH_NEW.json -compare BENCH_PR10.json
//
// With -compare, after writing the artifact the run is checked against
// the baseline artifact: if any row's throughput (interactions per wall
// millisecond) fell more than -tolerance (default 15%) below the
// baseline, bench exits nonzero. Rows match on engine mode, replica
// count, shard count, AND the indexes flag. CI runs this against the
// committed BENCH_PR10.json so a throughput regression fails the PR
// instead of hiding in an uploaded artifact.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"stagedweb/internal/clock"
	"stagedweb/internal/dbtier"
	"stagedweb/internal/harness"
	"stagedweb/internal/load"
	"stagedweb/internal/sqldb"
	"stagedweb/internal/tpcw"
	"stagedweb/internal/variant"
)

// EngineResult is one engine mode's miniature-experiment summary.
type EngineResult struct {
	Engine   string `json:"engine"`
	Replicas int    `json:"replicas"`
	// Shards is the cluster shard count; 0 means the run was not
	// clustered (no balancer in front of the server).
	Shards int `json:"shards,omitempty"`
	// Indexes is whether the extra TPC-W secondary indexes were built
	// (the indexes=on setting); false is the paper's primary-key-only
	// schema.
	Indexes           bool    `json:"indexes,omitempty"`
	Interactions      int64   `json:"interactions"`
	Errors            int64   `json:"errors"`
	WorstWIRTSec      float64 `json:"worst_wirt_sec"`
	AllocsPerReq      float64 `json:"allocs_per_req"`
	Conflicts         float64 `json:"db_conflicts"`
	SnapshotReads     float64 `json:"db_snapshots"`
	MaxReplLag        float64 `json:"db_repllag_max"`
	WallDurationMilli int64   `json:"wall_duration_ms"`
}

// MicroResult is one raw storage-engine micro-benchmark.
type MicroResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// Artifact is the file CI persists as BENCH_PR10.json.
type Artifact struct {
	GoVersion string         `json:"go_version"`
	Engines   []EngineResult `json:"engines"`
	Micro     []MicroResult  `json:"micro"`
}

func main() {
	var (
		out       = flag.String("o", "BENCH_PR10.json", "output artifact path")
		quick     = flag.Bool("quick", false, "reduced run (seconds instead of minutes)")
		replicas  = flag.Int("replicas", 4, "database backends in the experiment runs")
		scale     = flag.Float64("scale", 200, "timescale: paper seconds per wall second")
		compare   = flag.String("compare", "", "baseline artifact to compare against; exit nonzero on throughput regression")
		tolerance = flag.Float64("tolerance", 0.15, "allowed fractional throughput drop vs -compare baseline")
	)
	flag.Parse()
	art := Artifact{GoVersion: runtime.Version()}

	engines := []struct {
		name string
		mvcc bool
		repl string
	}{
		{"lock/sync", false, "sync"},
		{"mvcc/sync", true, "sync"},
		{"mvcc/async", true, "async"},
	}
	// Each engine mode runs twice: once on the paper's primary-key-only
	// schema and once with the extra secondary indexes, so the artifact
	// carries the planner's payoff per engine next to the engine deltas.
	for _, eng := range engines {
		for _, indexes := range []bool{false, true} {
			fmt.Fprintf(os.Stderr, "engine %s (replicas=%d, indexes=%v)...\n", eng.name, *replicas, indexes)
			res, allocs, err := runEngine(eng.mvcc, eng.repl, *replicas, 0, indexes, *quick, *scale)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bench:", err)
				os.Exit(1)
			}
			art.Engines = append(art.Engines, engineRow(eng.name, *replicas, 0, indexes, res, allocs))
		}
	}

	// Cluster rows: the default engine behind the consistent-hash
	// balancer at each shard count, replicas held at 1 so the rows
	// isolate the shard axis. shards=1 still routes through the
	// balancer, so its delta vs the unclustered rows above is the
	// balancer's own overhead.
	for _, m := range []int{1, 2, 4} {
		fmt.Fprintf(os.Stderr, "cluster mvcc/sync (shards=%d)...\n", m)
		res, allocs, err := runEngine(true, "sync", 1, m, false, *quick, *scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		art.Engines = append(art.Engines, engineRow("mvcc/sync", 1, m, false, res, allocs))
	}

	fmt.Fprintln(os.Stderr, "storage-engine micro-benchmarks...")
	art.Micro = microBenches()

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	err = enc.Encode(art)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "wrote", *out)

	if *compare != "" {
		regressed, err := compareAgainst(*compare, art, *tolerance)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		if regressed {
			fmt.Fprintln(os.Stderr, "bench: throughput regression vs", *compare)
			os.Exit(1)
		}
	}
}

// engineRow summarizes one finished run as an artifact row.
func engineRow(name string, replicas, shards int, indexes bool, res *harness.Result, allocs float64) EngineResult {
	return EngineResult{
		Engine:            name,
		Replicas:          replicas,
		Shards:            shards,
		Indexes:           indexes,
		Interactions:      res.TotalInteractions,
		Errors:            res.Errors,
		WorstWIRTSec:      harness.SeriesMax(res.Series[load.ProbeWIRT]),
		AllocsPerReq:      allocs,
		Conflicts:         harness.SeriesMax(res.Series[variant.ProbeDBConflicts]),
		SnapshotReads:     harness.SeriesMax(res.Series[variant.ProbeDBSnapshots]),
		MaxReplLag:        harness.SeriesMax(res.Series[variant.ProbeDBReplLag]),
		WallDurationMilli: res.WallDuration.Milliseconds(),
	}
}

// runEngine runs one miniature browsing-mix experiment on the staged
// server under the given engine mode and reports the result plus heap
// allocations per completed interaction (whole-process mallocs over the
// run — an upper bound that tracks the per-request figure). shards > 0
// puts the consistent-hash balancer in front of that many shard-owning
// instances; 0 runs the server unclustered. indexes builds the extra
// TPC-W secondary indexes before the measurement window.
func runEngine(mvcc bool, repl string, replicas, shards int, indexes, quick bool, scale float64) (*harness.Result, float64, error) {
	cfg := harness.QuickConfig(variant.Modified, clock.Timescale(scale))
	cfg.EBs = 60
	cfg.RampUp = 15 * time.Second
	cfg.Measure = 2 * time.Minute
	cfg.CoolDown = 5 * time.Second
	cfg.Populate = tpcw.PopulateConfig{Items: 800, Customers: 200, Orders: 180}
	if quick {
		cfg.Measure = 45 * time.Second
	}
	cfg.Replicas = replicas
	cfg.DBConns = 4
	cfg.MVCC = mvcc
	cfg.Repl = repl
	cfg.Shards = shards
	cfg.Indexes = indexes

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	res, err := harness.Run(cfg)
	if err != nil {
		return nil, 0, err
	}
	runtime.ReadMemStats(&after)
	allocs := 0.0
	if res.TotalInteractions > 0 {
		allocs = float64(after.Mallocs-before.Mallocs) / float64(res.TotalInteractions)
	}
	return res, allocs, nil
}

// microBenches runs the raw engine paths through testing.Benchmark: a
// hot-row point read under each concurrency mode with writers active,
// and the tier write path under each replication mode.
func microBenches() []MicroResult {
	var out []MicroResult
	for _, mode := range []struct {
		name string
		mvcc bool
	}{{"read-hot-write-hot/lock", false}, {"read-hot-write-hot/mvcc", true}} {
		r := testing.Benchmark(func(b *testing.B) { benchReadHot(b, mode.mvcc) })
		out = append(out, MicroResult{
			Name:        mode.name,
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}
	for _, mode := range []struct {
		name  string
		async bool
	}{{"tier-write/sync", false}, {"tier-write/async", true}} {
		r := testing.Benchmark(func(b *testing.B) { benchTierWrite(b, mode.async, 4) })
		out = append(out, MicroResult{
			Name:        mode.name + "/replicas=4",
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}
	for _, mode := range []struct {
		name    string
		indexed bool
	}{{"secondary-eq/scan", false}, {"secondary-eq/index", true}} {
		r := testing.Benchmark(func(b *testing.B) { benchSecondaryEq(b, mode.indexed) })
		out = append(out, MicroResult{
			Name:        mode.name,
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}
	return out
}

// benchSecondaryEq measures a point SELECT on a non-key column with and
// without a secondary hash index — the raw planner payoff, with the
// cost model zeroed so the figure is engine work, not injected latency.
func benchSecondaryEq(b *testing.B, indexed bool) {
	db := sqldb.Open(sqldb.Options{Cost: sqldb.ZeroCostModel()})
	db.MustCreateTable(sqldb.Schema{
		Table: "t",
		Columns: []sqldb.Column{
			{Name: "id", Type: sqldb.Int},
			{Name: "grp", Type: sqldb.Int},
			{Name: "val", Type: sqldb.Int},
		},
		PrimaryKey: "id",
	})
	seed := db.Connect()
	for i := 1; i <= 4096; i++ {
		if _, err := seed.Exec("INSERT INTO t (id, grp, val) VALUES (?, ?, ?)", i, i%64, i); err != nil {
			b.Fatal(err)
		}
	}
	seed.Close()
	if indexed {
		if err := db.CreateIndex("t", "grp", false); err != nil {
			b.Fatal(err)
		}
	}
	c := db.Connect()
	defer c.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Query("SELECT val FROM t WHERE grp = ?", i%64); err != nil {
			b.Fatal(err)
		}
	}
}

func benchReadHot(b *testing.B, mvcc bool) {
	db := sqldb.Open(sqldb.Options{
		Cost: &sqldb.CostModel{PerStatement: 200 * time.Microsecond},
	})
	db.SetMVCC(mvcc)
	db.MustCreateTable(sqldb.Schema{
		Table:      "hot",
		Columns:    []sqldb.Column{{Name: "id", Type: sqldb.Int}, {Name: "v", Type: sqldb.Int}},
		PrimaryKey: "id",
	})
	seed := db.Connect()
	for i := 1; i <= 16; i++ {
		if _, err := seed.Exec("INSERT INTO hot (id, v) VALUES (?, 0)", i); err != nil {
			b.Fatal(err)
		}
	}
	seed.Close()
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		c := db.Connect()
		defer c.Close()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := c.Exec("UPDATE hot SET v = ? WHERE id = ?", i, i%16+1); err != nil {
				b.Error(err)
				return
			}
		}
	}()
	c := db.Connect()
	defer c.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Query("SELECT v FROM hot WHERE id = ?", i%16+1); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	<-done
}

func benchTierWrite(b *testing.B, async bool, replicas int) {
	db := sqldb.Open(sqldb.Options{Cost: sqldb.ZeroCostModel()})
	db.SetMVCC(true)
	db.MustCreateTable(sqldb.Schema{
		Table:      "kv",
		Columns:    []sqldb.Column{{Name: "id", Type: sqldb.Int}, {Name: "v", Type: sqldb.String}},
		PrimaryKey: "id",
	})
	tier := dbtier.New(db, dbtier.Options{Replicas: replicas, Conns: 2, Async: async})
	defer tier.Close()
	c := tier.Conn()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Exec("INSERT INTO kv (id, v) VALUES (?, 'x')", i+1); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	tier.Sync()
}
