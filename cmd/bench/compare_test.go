package main

import (
	"strings"
	"testing"
)

func engine(name string, replicas int, interactions int64, wallMS int64) EngineResult {
	return EngineResult{Engine: name, Replicas: replicas, Interactions: interactions, WallDurationMilli: wallMS}
}

func TestThroughputRate(t *testing.T) {
	if got := throughputRate(engine("lock/sync", 4, 1000, 500)); got != 2 {
		t.Errorf("rate = %v, want 2", got)
	}
	if got := throughputRate(engine("lock/sync", 4, 1000, 0)); got != 0 {
		t.Errorf("rate with zero duration = %v, want 0", got)
	}
}

func TestCompareEngines(t *testing.T) {
	base := Artifact{Engines: []EngineResult{
		engine("lock/sync", 4, 1000, 1000), // rate 1.0
		engine("mvcc/sync", 4, 1100, 1000), // rate 1.1
	}}

	t.Run("within tolerance passes", func(t *testing.T) {
		cur := Artifact{Engines: []EngineResult{
			engine("lock/sync", 4, 900, 1000),  // -10%
			engine("mvcc/sync", 4, 1200, 1000), // improvement
		}}
		lines, regressed := compareEngines(cur, base, 0.15)
		if regressed {
			t.Fatalf("regression flagged within tolerance:\n%s", strings.Join(lines, "\n"))
		}
		if len(lines) != 2 {
			t.Fatalf("got %d lines, want 2:\n%s", len(lines), strings.Join(lines, "\n"))
		}
	})

	t.Run("drop beyond tolerance fails", func(t *testing.T) {
		cur := Artifact{Engines: []EngineResult{
			engine("lock/sync", 4, 800, 1000), // -20%
			engine("mvcc/sync", 4, 1100, 1000),
		}}
		lines, regressed := compareEngines(cur, base, 0.15)
		if !regressed {
			t.Fatalf("-20%% not flagged:\n%s", strings.Join(lines, "\n"))
		}
		if !strings.Contains(strings.Join(lines, "\n"), "REGRESSION") {
			t.Errorf("no REGRESSION marker in report:\n%s", strings.Join(lines, "\n"))
		}
	})

	t.Run("quick run normalized by wall duration", func(t *testing.T) {
		// Half the interactions in half the wall time is the same rate.
		cur := Artifact{Engines: []EngineResult{
			engine("lock/sync", 4, 500, 500),
			engine("mvcc/sync", 4, 550, 500),
		}}
		if _, regressed := compareEngines(cur, base, 0.15); regressed {
			t.Fatal("equal rates at different durations flagged as regression")
		}
	})

	t.Run("unmatched rows reported but never fail", func(t *testing.T) {
		cur := Artifact{Engines: []EngineResult{
			engine("lock/sync", 4, 1000, 1000),
			engine("lock/sync", 8, 100, 1000),  // replicas mismatch: no baseline
			engine("mvcc/async", 4, 100, 1000), // new engine: no baseline
		}}
		lines, regressed := compareEngines(cur, base, 0.15)
		if regressed {
			t.Fatalf("unmatched rows failed the comparison:\n%s", strings.Join(lines, "\n"))
		}
		report := strings.Join(lines, "\n")
		for _, want := range []string{"no current result", "no baseline"} {
			if !strings.Contains(report, want) {
				t.Errorf("report missing %q:\n%s", want, report)
			}
		}
	})

	t.Run("rows differing only in shard count are distinct", func(t *testing.T) {
		shardRow := func(shards int, interactions int64) EngineResult {
			e := engine("mvcc/sync", 1, interactions, 1000)
			e.Shards = shards
			return e
		}
		// Before the shard-aware key, these three baseline rows collided
		// on {engine, replicas} and the last one silently won — a
		// regression at one shard count could hide behind another.
		shardBase := Artifact{Engines: []EngineResult{
			shardRow(1, 1000), shardRow(2, 2000), shardRow(4, 4000),
		}}
		cur := Artifact{Engines: []EngineResult{
			shardRow(1, 1000), shardRow(2, 1000), shardRow(4, 4000),
		}}
		lines, regressed := compareEngines(cur, shardBase, 0.15)
		if !regressed {
			t.Fatalf("-50%% at shards=2 not flagged:\n%s", strings.Join(lines, "\n"))
		}
		if len(lines) != 3 {
			t.Fatalf("got %d lines, want one per shard count:\n%s", len(lines), strings.Join(lines, "\n"))
		}
		report := strings.Join(lines, "\n")
		if !strings.Contains(report, "shards=2") || strings.Count(report, "REGRESSION") != 1 {
			t.Errorf("regression not attributed to the shards=2 row:\n%s", report)
		}
	})

	t.Run("unusable baseline skipped", func(t *testing.T) {
		zeroBase := Artifact{Engines: []EngineResult{engine("lock/sync", 4, 0, 0)}}
		cur := Artifact{Engines: []EngineResult{engine("lock/sync", 4, 1, 1000)}}
		lines, regressed := compareEngines(cur, zeroBase, 0.15)
		if regressed {
			t.Fatalf("zero-rate baseline produced a regression:\n%s", strings.Join(lines, "\n"))
		}
		if !strings.Contains(strings.Join(lines, "\n"), "skipped") {
			t.Errorf("zero-rate baseline not reported as skipped:\n%s", strings.Join(lines, "\n"))
		}
	})
}
