//go:build race

package main

// raceEnabled reports that this build runs under the race detector,
// whose slowdown swamps the paper-time calibration the end-to-end
// experiments depend on.
const raceEnabled = true
