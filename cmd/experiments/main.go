// Command experiments reproduces the DSN'09 evaluation: it sweeps the
// TPC-W browsing mix over registered server variants and prints the
// paper's tables and figures. Variants come from the internal/variant
// registry, so a newly registered topology is available here with zero
// edits (-variants name1,name2,...).
//
// Usage:
//
//	experiments -exp all                 # everything (one run per variant)
//	experiments -exp table3              # response times
//	experiments -exp table4              # per-page throughput
//	experiments -exp table2              # t_reserve controller trace
//	experiments -exp fig7,fig8,fig9,fig10
//	experiments -exp spike               # flash-crowd comparison across variants
//	experiments -exp mvcc -variants modified       # storage-engine sweep
//	experiments -exp planner             # secondary-index / query-planner sweep
//	experiments -exp scaleout            # replica scale-out sweep
//	experiments -exp shard -shards 1,2,4           # cluster shard sweep
//	experiments -exp faults              # dependability scenario pack
//	experiments -scale 100 -ebs 400 -measure 50m   # paper-sized run
//	experiments -quick                   # reduced run (seconds)
//	experiments -variants unmodified,modified,modified-noreserve
//	experiments -set cutoff=3s -set minreserve=15  # variant settings
//	experiments -load spike -load-set burst=300 -load-set at=2m -load-set width=1m
//	experiments -mix shopping            # TPC-W shopping mix (default browsing)
//	experiments -ebs-sweep 100,200,300,400         # saturation-knee ramp
//	experiments -csv dir                 # dump every series as CSV
//	experiments -json dir                # per-scenario result JSON artifacts
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"stagedweb/internal/clock"
	"stagedweb/internal/cluster"
	"stagedweb/internal/faults"
	"stagedweb/internal/harness"
	"stagedweb/internal/load"
	"stagedweb/internal/sched"
	"stagedweb/internal/tpcw"
	"stagedweb/internal/variant"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		exp      = fs.String("exp", "all", "experiments: all, table2, table3, table4, fig7, fig8, fig9, fig10 (comma-separated); spike runs the flash-crowd comparison; scaleout runs the replica sweep; mvcc runs the storage-engine sweep; planner runs the secondary-index sweep; shard runs the cluster shard sweep; faults runs the fault-injection comparison")
		scale    = fs.Float64("scale", 100, "timescale: paper seconds per wall second")
		ebs      = fs.Int("ebs", 0, "emulated browsers (0 = config default)")
		measure  = fs.Duration("measure", 0, "measurement window in paper time (0 = config default)")
		quick    = fs.Bool("quick", false, "use the reduced quick configuration")
		csvDir   = fs.String("csv", "", "directory to write per-series CSVs into")
		jsonDir  = fs.String("json", "", "directory to write per-scenario result JSON into")
		seed     = fs.Int64("seed", 1, "workload seed")
		variants = fs.String("variants", variant.Unmodified+","+variant.Modified,
			"comma-separated registered variants; the first is the comparison baseline (registered: "+strings.Join(variant.Names(), ", ")+")")
		loadProf = fs.String("load", "", "load profile driving the client side (registered: "+strings.Join(load.Names(), ", ")+"; empty = steady)")
		mix      = fs.String("mix", "", "TPC-W page mix: "+strings.Join(tpcw.MixNames(), ", ")+" (empty = browsing)")
		ebsSweep = fs.String("ebs-sweep", "", "comma-separated EB levels (e.g. 100,200,300,400): run the saturation ramp across every variant")
		replicas = fs.String("replicas", "1,2,4", "comma-separated replica counts swept by -exp scaleout and -exp mvcc (-exp shard uses the first level only)")
		shards   = fs.String("shards", "1,2,4", "comma-separated shard counts swept by -exp shard")
		dbConns  = fs.Int("dbconns", 0, "connections per database backend in -exp scaleout, -exp mvcc, and -exp shard (0 = auto: dynamic budget / 6)")
		parallel = fs.Int("parallel", 1, "concurrent sweep runs (>1 trades timing fidelity for wall time)")
		sets     variant.SettingsFlag
		loadSets variant.SettingsFlag
	)
	fs.Var(&sets, "set", "variant setting `key=value` (repeatable), e.g. -set cutoff=3s")
	fs.Var(&loadSets, "load-set", "load-profile setting `key=value` (repeatable), e.g. -load-set burst=300")
	if err := fs.Parse(args); err != nil {
		return err
	}
	overrides := sets.Settings
	names := splitList(*variants)
	if len(names) == 0 {
		return fmt.Errorf("no variants selected")
	}
	if *loadProf != "" {
		if _, ok := load.Lookup(*loadProf); !ok {
			return fmt.Errorf("unknown load profile %q (registered: %s)",
				*loadProf, strings.Join(load.Names(), ", "))
		}
	}

	build := func(name string) harness.Config {
		var cfg harness.Config
		if *quick {
			cfg = harness.QuickConfig(name, clock.Timescale(*scale))
		} else {
			cfg = harness.PaperConfig(name, clock.Timescale(*scale))
		}
		if *ebs > 0 {
			cfg.EBs = *ebs
		}
		if *measure > 0 {
			cfg.Measure = *measure
		}
		cfg.Seed = *seed
		cfg.Set = overrides.Clone()
		cfg.Load = *loadProf
		cfg.LoadSet = loadSets.Settings.Clone()
		cfg.Mix = *mix
		return cfg
	}

	ctx := context.Background()
	progress := func(sc harness.Scenario, res *harness.Result, err error) {
		if err != nil {
			fmt.Fprintf(out, "  %s failed: %v\n", sc.Name, err)
			return
		}
		fmt.Fprintf(out, "  %s done in %v wall (%d interactions)\n",
			sc.Name, res.WallDuration.Round(time.Millisecond), res.TotalInteractions)
	}
	opts := harness.SweepOptions{Parallelism: *parallel, OnResult: progress}

	want := map[string]bool{}
	for _, e := range splitList(*exp) {
		want[e] = true
	}
	all := want["all"]

	// The EB ramp is its own mode: variants × load levels, reported as
	// the saturation-knee table. It cannot be combined with the spike
	// mode — reject instead of silently dropping one of them.
	if *ebsSweep != "" {
		if want["spike"] || want["scaleout"] || want["mvcc"] || want["planner"] || want["shard"] || want["faults"] {
			return fmt.Errorf("-ebs-sweep and -exp %s are separate modes; run them separately", *exp)
		}
		levels, err := parseInts(*ebsSweep)
		if err != nil {
			return fmt.Errorf("-ebs-sweep: %w", err)
		}
		return runEBSweep(ctx, out, opts, build, names, levels, *csvDir, *jsonDir)
	}

	// The replica sweep is its own mode too: every variant at every
	// replica count, under both the read-heavy browsing mix and the
	// write-heavy ordering mix.
	if want["scaleout"] {
		if len(want) > 1 {
			return fmt.Errorf("-exp scaleout is a standalone mode; run other experiments separately")
		}
		if *mix != "" {
			return fmt.Errorf("-exp scaleout sweeps the browsing and ordering mixes itself; drop -mix %s", *mix)
		}
		levels, err := parseInts(*replicas)
		if err != nil {
			return fmt.Errorf("-replicas: %w", err)
		}
		return runScaleout(ctx, out, opts, build, names, levels, *dbConns, *csvDir, *jsonDir)
	}

	// The cluster sweep is its own mode: one variant behind the
	// consistent-hash balancer at every shard count, held at a fixed
	// replica count, under the open-loop profile — offered load does not
	// shrink when one shard saturates, so added shards turn directly
	// into completed work.
	if want["shard"] {
		if len(want) > 1 {
			return fmt.Errorf("-exp shard is a standalone mode; run other experiments separately")
		}
		if *loadProf != "" {
			return fmt.Errorf("-exp shard runs the open-loop profile; drop -load %s (use -load-set to tune rate/session)", *loadProf)
		}
		levels, err := parseInts(*shards)
		if err != nil {
			return fmt.Errorf("-shards: %w", err)
		}
		repl, err := parseInts(*replicas)
		if err != nil {
			return fmt.Errorf("-replicas: %w", err)
		}
		return runShard(ctx, out, opts, build, names[0], levels, repl[0],
			*dbConns, loadSets.Settings, *csvDir, *jsonDir)
	}

	// The dependability pack is its own mode: one variant on the sharded
	// replicated stack, {no-fault, replica-kill, shard-down} × {sync,
	// async}, reporting failover behavior and recovery time per cell.
	if want["faults"] {
		if len(want) > 1 {
			return fmt.Errorf("-exp faults is a standalone mode; run other experiments separately")
		}
		return runFaults(ctx, out, opts, build, names[0], *dbConns, *csvDir, *jsonDir)
	}

	// The storage-engine sweep is its own mode: one variant across
	// {lock/sync, mvcc/sync, mvcc/async} engines, both TPC-W mixes, and
	// every replica count.
	if want["mvcc"] {
		if len(want) > 1 {
			return fmt.Errorf("-exp mvcc is a standalone mode; run other experiments separately")
		}
		if *mix != "" {
			return fmt.Errorf("-exp mvcc sweeps the browsing and ordering mixes itself; drop -mix %s", *mix)
		}
		levels, err := parseInts(*replicas)
		if err != nil {
			return fmt.Errorf("-replicas: %w", err)
		}
		return runMVCC(ctx, out, opts, build, names[0], levels, *dbConns, *csvDir, *jsonDir)
	}

	// The planner sweep is its own mode: one variant under both TPC-W
	// mixes with the extra secondary indexes off and on, re-running the
	// paper's quick/lengthy page classification under indexing.
	if want["planner"] {
		if len(want) > 1 {
			return fmt.Errorf("-exp planner is a standalone mode; run other experiments separately")
		}
		if *mix != "" {
			return fmt.Errorf("-exp planner sweeps the browsing and ordering mixes itself; drop -mix %s", *mix)
		}
		return runPlanner(ctx, out, opts, build, names[0], *dbConns, *csvDir, *jsonDir)
	}

	// The flash-crowd comparison is its own mode (not part of -exp all):
	// every variant meets the spike profile, and the report reads the
	// client.* series through the burst. It cannot be combined with the
	// table/figure experiments or a -load override — reject instead of
	// silently dropping either.
	if want["spike"] {
		if len(want) > 1 {
			return fmt.Errorf("-exp spike is a standalone mode; run other experiments separately")
		}
		if *loadProf != "" {
			return fmt.Errorf("-exp spike runs the spike profile; drop -load %s (use -load-set to tune the burst)", *loadProf)
		}
		return runSpike(ctx, out, opts, build, names, loadSets.Settings, *csvDir, *jsonDir)
	}

	// Table 2 needs no server runs: replay the paper's t_spare trace
	// through the reserve controller.
	if all || want["table2"] {
		fmt.Fprintln(out, table2())
	}
	needRuns := all || want["table3"] || want["table4"] ||
		want["fig7"] || want["fig8"] || want["fig9"] || want["fig10"]
	if !needRuns {
		return nil
	}

	scenarios := make([]harness.Scenario, 0, len(names))
	for _, name := range names {
		scenarios = append(scenarios, harness.Scenario{Name: name, Config: build(name)})
	}
	fmt.Fprintf(out, "running %d variant(s) (%d EBs, %v measured, scale %.0fx)...\n",
		len(scenarios), scenarios[0].Config.EBs, scenarios[0].Config.Measure, *scale)
	// A failed cell must not discard the completed ones: render whatever
	// ran, emit its artifacts, and surface the error at the end.
	sw, sweepErr := harness.SweepWith(ctx, opts, scenarios)
	fmt.Fprintln(out)

	// Tables and figures compare the first two variants; further
	// variants still run, land in the report, and emit artifacts.
	if base, test := sw.Result(names[0]), resultAt(sw, names, 1); base != nil && test != nil {
		if all || want["table3"] {
			fmt.Fprintln(out, harness.Table3(base, test))
		}
		if all || want["table4"] {
			fmt.Fprintln(out, harness.Table4(base, test))
		}
		if all || want["fig7"] {
			fmt.Fprintln(out, harness.Figure7(base))
		}
		if all || want["fig8"] {
			fmt.Fprintln(out, harness.Figure8(test))
		}
		if all || want["fig9"] {
			fmt.Fprintln(out, harness.Figure9(base, test))
		}
		if all || want["fig10"] {
			fmt.Fprintln(out, harness.Figure10(base, test))
		}
	} else if len(names) < 2 {
		fmt.Fprintln(out, "(tables and figures compare two variants; pass -variants base,test to render them)")
	}
	fmt.Fprintln(out, sw.Report())
	return errors.Join(sweepErr, writeArtifacts(out, *csvDir, *jsonDir, sw))
}

// resultAt returns the i-th selected variant's result, nil when fewer
// variants were selected or that cell failed.
func resultAt(sw *harness.SweepResult, names []string, i int) *harness.Result {
	if i >= len(names) {
		return nil
	}
	return sw.Result(names[i])
}

// runSpike runs the variant × spike-profile matrix and reports how each
// topology rode out the flash crowd: completed work, failures, the peak
// offered population, and the worst per-second client WIRT.
func runSpike(ctx context.Context, out io.Writer, opts harness.SweepOptions,
	build func(string) harness.Config, names []string, loadSet variant.Settings,
	csvDir, jsonDir string) error {
	scenarios := harness.Matrix(build(""), names,
		[]harness.LoadSpec{{Profile: load.Spike, Set: loadSet}})
	fmt.Fprintf(out, "flash crowd: %d variant(s) through the spike profile...\n", len(names))
	sw, sweepErr := harness.SweepWith(ctx, opts, scenarios)

	fmt.Fprintf(out, "\nspike comparison (client.* series through the burst)\n")
	fmt.Fprintf(out, "%-28s %13s %8s %9s %12s\n",
		"variant", "interactions", "errors", "peak-ebs", "worst-wirt")
	fmt.Fprintln(out, strings.Repeat("-", 74))
	for _, name := range names {
		res := sw.Result(name + "/" + load.Spike)
		if res == nil {
			fmt.Fprintf(out, "%-28s (failed)\n", name)
			continue
		}
		fmt.Fprintf(out, "%-28s %13d %8d %9.0f %10.2fs\n",
			name, res.TotalInteractions, res.Errors,
			harness.SeriesMax(res.Series[load.ProbeActive]),
			harness.SeriesMax(res.Series[load.ProbeWIRT]))
	}
	if len(names) >= 2 {
		fmt.Fprintf(out, "throughput gain through the crowd: %+.1f%%\n",
			sw.GainPercent(names[0]+"/"+load.Spike, names[1]+"/"+load.Spike))
	}
	fmt.Fprintln(out)
	return errors.Join(sweepErr, writeArtifacts(out, csvDir, jsonDir, sw))
}

// runScaleout runs every variant at every replica count under the
// read-heavy browsing mix and the write-heavy ordering mix, with the
// per-backend connection pool deliberately scarcer than the worker pools
// so the database tier — not the workers — is the ceiling. Browsing
// throughput should rise with replica count (reads route round-robin
// across backends); ordering throughput pays the synchronous write
// fan-out on every backend.
func runScaleout(ctx context.Context, out io.Writer, opts harness.SweepOptions,
	build func(string) harness.Config, names []string, levels []int, dbConns int,
	csvDir, jsonDir string) error {
	mixes := []string{"browsing", "ordering"}
	cellName := func(name, mix string, level int) string {
		return fmt.Sprintf("%s/%s/replicas=%d", name, mix, level)
	}
	var scenarios []harness.Scenario
	for _, name := range names {
		for _, mix := range mixes {
			for _, level := range levels {
				cfg := build(name).With(func(c *harness.Config) {
					c.Mix = mix
					c.Replicas = level
					c.DBConns = dbConns
					if c.DBConns <= 0 {
						// Auto: a sixth of the dynamic-worker budget, so
						// connection acquisition (db.wait) and engine
						// capacity, not worker counts, bound throughput.
						if budget := c.GeneralWorkers + c.LengthyWorkers; budget > 0 {
							c.DBConns = max(2, budget/6)
						} else {
							c.DBConns = 8
						}
					}
				})
				scenarios = append(scenarios, harness.Scenario{
					Name:   cellName(name, mix, level),
					Config: cfg,
				})
			}
		}
	}
	fmt.Fprintf(out, "scale-out: %d variant(s) x {browsing, ordering} x %d replica levels...\n",
		len(names), len(levels))
	sw, sweepErr := harness.SweepWith(ctx, opts, scenarios)

	fmt.Fprintf(out, "\nreplica scale-out (interactions per measurement window)\n")
	fmt.Fprintf(out, "%9s", "replicas")
	for _, name := range names {
		for _, mix := range mixes {
			fmt.Fprintf(out, " %22s", name+"/"+mix)
		}
	}
	fmt.Fprintln(out)
	for _, level := range levels {
		fmt.Fprintf(out, "%9d", level)
		for _, name := range names {
			for _, mix := range mixes {
				res := sw.Result(cellName(name, mix, level))
				if res == nil {
					fmt.Fprintf(out, " %22s", "-")
					continue
				}
				fmt.Fprintf(out, " %22d", res.TotalInteractions)
			}
		}
		fmt.Fprintln(out)
	}
	if len(levels) >= 2 {
		lo, hi := levels[0], levels[len(levels)-1]
		for _, name := range names {
			for _, mix := range mixes {
				fmt.Fprintf(out, "%s gain at %d vs %d replicas: %+.1f%%\n",
					name+"/"+mix, hi, lo,
					sw.GainPercent(cellName(name, mix, lo), cellName(name, mix, hi)))
			}
		}
	}
	fmt.Fprintln(out)
	return errors.Join(sweepErr, writeArtifacts(out, csvDir, jsonDir, sw))
}

// engineModes are the storage-engine configurations swept by -exp mvcc:
// the paper's per-table reader-writer locks with synchronous replica
// fan-out, MVCC snapshot reads with the same synchronous contract, and
// MVCC with asynchronous log shipping.
var engineModes = []struct {
	key  string
	mvcc bool
	repl string
}{
	{"lock/sync", false, "sync"},
	{"mvcc/sync", true, "sync"},
	{"mvcc/async", true, "async"},
}

// runMVCC runs one variant across every storage-engine mode, both TPC-W
// mixes, and every replica count. Under the read-heavy browsing mix,
// mvcc modes should beat lock/sync as replicas grow (snapshot reads
// never wait on writers); under the write-heavy ordering mix, repl=async
// should keep DML latency flat as replicas grow while repl=sync pays a
// per-replica apply wait. The db.conflicts and db.repllag series in each
// cell's artifacts show what the engine actually did.
func runMVCC(ctx context.Context, out io.Writer, opts harness.SweepOptions,
	build func(string) harness.Config, name string, levels []int, dbConns int,
	csvDir, jsonDir string) error {
	mixes := []string{"browsing", "ordering"}
	cellName := func(engine, mix string, level int) string {
		return fmt.Sprintf("%s/%s/%s/replicas=%d", name, engine, mix, level)
	}
	var scenarios []harness.Scenario
	for _, eng := range engineModes {
		for _, mix := range mixes {
			for _, level := range levels {
				eng := eng
				cfg := build(name).With(func(c *harness.Config) {
					c.Mix = mix
					c.Replicas = level
					c.MVCC = eng.mvcc
					c.Repl = eng.repl
					c.DBConns = dbConns
					if c.DBConns <= 0 {
						// Same auto-sizing as -exp scaleout: keep the tier,
						// not the worker pools, as the ceiling.
						if budget := c.GeneralWorkers + c.LengthyWorkers; budget > 0 {
							c.DBConns = max(2, budget/6)
						} else {
							c.DBConns = 8
						}
					}
				})
				scenarios = append(scenarios, harness.Scenario{
					Name:   cellName(eng.key, mix, level),
					Config: cfg,
				})
			}
		}
	}
	fmt.Fprintf(out, "storage engines: %s x %d engine modes x {browsing, ordering} x %d replica levels...\n",
		name, len(engineModes), len(levels))
	sw, sweepErr := harness.SweepWith(ctx, opts, scenarios)

	fmt.Fprintf(out, "\nstorage-engine sweep (interactions per measurement window)\n")
	fmt.Fprintf(out, "%9s", "replicas")
	for _, eng := range engineModes {
		for _, mix := range mixes {
			fmt.Fprintf(out, " %20s", eng.key+"/"+mix)
		}
	}
	fmt.Fprintln(out)
	for _, level := range levels {
		fmt.Fprintf(out, "%9d", level)
		for _, eng := range engineModes {
			for _, mix := range mixes {
				res := sw.Result(cellName(eng.key, mix, level))
				if res == nil {
					fmt.Fprintf(out, " %20s", "-")
					continue
				}
				fmt.Fprintf(out, " %20d", res.TotalInteractions)
			}
		}
		fmt.Fprintln(out)
	}

	fmt.Fprintf(out, "\nengine behavior (sampled db.* series per cell)\n")
	fmt.Fprintf(out, "%-40s %12s %12s %12s\n", "cell", "conflicts", "snapshots", "max-repllag")
	fmt.Fprintln(out, strings.Repeat("-", 80))
	for _, eng := range engineModes {
		for _, mix := range mixes {
			for _, level := range levels {
				res := sw.Result(cellName(eng.key, mix, level))
				if res == nil {
					continue
				}
				fmt.Fprintf(out, "%-40s %12.0f %12.0f %12.0f\n",
					cellName(eng.key, mix, level),
					harness.SeriesMax(res.Series[variant.ProbeDBConflicts]),
					harness.SeriesMax(res.Series[variant.ProbeDBSnapshots]),
					harness.SeriesMax(res.Series[variant.ProbeDBReplLag]))
			}
		}
	}
	hi := levels[len(levels)-1]
	for _, mix := range mixes {
		fmt.Fprintf(out, "mvcc/sync gain over lock/sync at %d replicas (%s): %+.1f%%\n",
			hi, mix,
			sw.GainPercent(cellName("lock/sync", mix, hi), cellName("mvcc/sync", mix, hi)))
		fmt.Fprintf(out, "mvcc/async gain over lock/sync at %d replicas (%s): %+.1f%%\n",
			hi, mix,
			sw.GainPercent(cellName("lock/sync", mix, hi), cellName("mvcc/async", mix, hi)))
	}
	fmt.Fprintln(out)
	return errors.Join(sweepErr, writeArtifacts(out, csvDir, jsonDir, sw))
}

// plannerCutoffPaperSec is the paper's quick/lengthy page boundary in
// paper seconds: pages whose mean WIRT sits under it belong in the
// quick class (general pool), over it in the lengthy class.
const plannerCutoffPaperSec = 2.0

// runPlanner runs one variant under both TPC-W mixes with the extra
// secondary indexes off and on, re-running the paper's quick/lengthy
// page classification under indexing. With indexes on, the planner
// turns the best-sellers window and the subject listings into index
// range scans and probes — pages whose mean WIRT crosses back under
// the 2 s cutoff are flagged, because they would now belong in the
// quick pool. The title/author LIKE searches stay scans, so some
// lengthy pages must not move. The db.plan.* series in each cell's
// artifacts show what the planner actually chose.
func runPlanner(ctx context.Context, out io.Writer, opts harness.SweepOptions,
	build func(string) harness.Config, name string, dbConns int,
	csvDir, jsonDir string) error {
	mixes := []string{"browsing", "ordering"}
	idxModes := []string{"off", "on"}
	cellName := func(mix, ix string) string {
		return fmt.Sprintf("%s/%s/indexes=%s", name, mix, ix)
	}
	var scenarios []harness.Scenario
	for _, mix := range mixes {
		for _, ix := range idxModes {
			mix, ix := mix, ix
			cfg := build(name).With(func(c *harness.Config) {
				c.Mix = mix
				c.Indexes = ix == "on"
				// Light load: the quick/lengthy classification is about each
				// page's service demand, and a saturated run buries that
				// under queueing delay. A fifth of the configured browsers
				// keeps every pool below its knee so the means measure the
				// queries, not the queues.
				c.EBs = max(8, c.EBs/5)
				c.DBConns = dbConns
				if c.DBConns <= 0 {
					// Same auto-sizing as -exp scaleout: keep the tier, not
					// the worker pools, as the ceiling.
					if budget := c.GeneralWorkers + c.LengthyWorkers; budget > 0 {
						c.DBConns = max(2, budget/6)
					} else {
						c.DBConns = 8
					}
				}
			})
			scenarios = append(scenarios, harness.Scenario{
				Name:   cellName(mix, ix),
				Config: cfg,
			})
		}
	}
	fmt.Fprintf(out, "query planner: %s x {browsing, ordering} x {indexes off, on}...\n", name)
	sw, sweepErr := harness.SweepWith(ctx, opts, scenarios)

	fmt.Fprintf(out, "\nplanner behavior (sampled db.plan.* series per cell)\n")
	fmt.Fprintf(out, "%-36s %13s %10s %10s %12s\n",
		"cell", "interactions", "scans", "idx-paths", "rows-read")
	fmt.Fprintln(out, strings.Repeat("-", 86))
	for _, mix := range mixes {
		for _, ix := range idxModes {
			res := sw.Result(cellName(mix, ix))
			if res == nil {
				fmt.Fprintf(out, "%-36s (failed)\n", cellName(mix, ix))
				continue
			}
			fmt.Fprintf(out, "%-36s %13d %10.0f %10.0f %12.0f\n",
				cellName(mix, ix), res.TotalInteractions,
				harness.SeriesMax(res.Series[variant.ProbeDBPlanScan]),
				harness.SeriesMax(res.Series[variant.ProbeDBPlanIndex]),
				harness.SeriesMax(res.Series[variant.ProbeDBPlanRows]))
		}
	}

	// The quick/lengthy boundary, re-run under indexing: per-page mean
	// WIRT with indexes off vs on, against the paper's 2 s cutoff.
	for _, mix := range mixes {
		off, on := sw.Result(cellName(mix, "off")), sw.Result(cellName(mix, "on"))
		if off == nil || on == nil {
			continue
		}
		fmt.Fprintf(out, "\nquick/lengthy boundary under indexing (%s mix, cutoff %.0fs)\n",
			mix, plannerCutoffPaperSec)
		fmt.Fprintf(out, "%-36s %12s %12s %9s %18s\n",
			"web page name", "indexes=off", "indexes=on", "speedup", "class")
		fmt.Fprintln(out, strings.Repeat("-", 92))
		crossed := 0
		for _, page := range tpcw.Pages {
			o, n := off.Pages[page], on.Pages[page]
			if o.Count == 0 || n.Count == 0 {
				continue
			}
			speedup := "-"
			if n.MeanPaperSec > 0 {
				speedup = fmt.Sprintf("%8.1fx", o.MeanPaperSec/n.MeanPaperSec)
			}
			class := classify(o.MeanPaperSec) + " -> " + classify(n.MeanPaperSec)
			if o.MeanPaperSec > plannerCutoffPaperSec && n.MeanPaperSec <= plannerCutoffPaperSec {
				class += "  <-- crossed"
				crossed++
			}
			fmt.Fprintf(out, "%-36s %12.2f %12.2f %9s %18s\n",
				tpcw.PageTitle(page), o.MeanPaperSec, n.MeanPaperSec, speedup, class)
		}
		fmt.Fprintf(out, "pages crossing the %.0fs cutoff with indexes on (%s): %d\n",
			plannerCutoffPaperSec, mix, crossed)
		fmt.Fprintf(out, "throughput gain from indexing (%s): %+.1f%%\n",
			mix, sw.GainPercent(cellName(mix, "off"), cellName(mix, "on")))
	}
	fmt.Fprintln(out)
	return errors.Join(sweepErr, writeArtifacts(out, csvDir, jsonDir, sw))
}

// classify names a page's side of the quick/lengthy boundary.
func classify(meanPaperSec float64) string {
	if meanPaperSec > plannerCutoffPaperSec {
		return "lengthy"
	}
	return "quick"
}

// runShard runs one variant behind the consistent-hash balancer at
// every shard count, holding the replica count fixed, under the
// open-loop profile. Every cell — shards=1 included — routes through
// the balancer, so the sweep isolates the shard count: under a
// saturating Poisson arrival rate, throughput should rise monotonically
// with shards (each shard owns a customer slice plus a full worker and
// database stack of its own). The shard.route / shard.fanout /
// shard.imbalance series in each cell's artifacts show what the
// balancer actually did.
func runShard(ctx context.Context, out io.Writer, opts harness.SweepOptions,
	build func(string) harness.Config, name string, levels []int, replicas int,
	dbConns int, loadSet variant.Settings, csvDir, jsonDir string) error {
	set := loadSet.Clone()
	if set == nil {
		set = variant.Settings{}
	}
	if _, ok := set["rate"]; !ok {
		// Default arrival rate: enough Poisson sessions to saturate a
		// single shard, so added shards have queued work to absorb.
		set["rate"] = "8"
	}
	base := build(name).With(func(c *harness.Config) {
		c.Replicas = replicas
		c.DBConns = dbConns
		if c.DBConns <= 0 {
			// Same auto-sizing as -exp scaleout: keep the tier, not the
			// worker pools, as the ceiling.
			if budget := c.GeneralWorkers + c.LengthyWorkers; budget > 0 {
				c.DBConns = max(2, budget/6)
			} else {
				c.DBConns = 8
			}
		}
	})
	scenarios := harness.ShardMatrix(base, levels, []int{replicas},
		[]harness.LoadSpec{{Profile: load.OpenLoop, Set: set}})
	fmt.Fprintf(out, "cluster: %s x %d shard levels at %d replica(s) under %s arrivals...\n",
		name, len(levels), replicas, load.OpenLoop)
	sw, sweepErr := harness.SweepWith(ctx, opts, scenarios)

	cellName := func(m int) string {
		return fmt.Sprintf("shards=%d/replicas=%d/%s", m, replicas, load.OpenLoop)
	}
	fmt.Fprintf(out, "\nshard scale-out (interactions per measurement window)\n")
	fmt.Fprintf(out, "%7s %13s %8s %10s %10s %10s\n",
		"shards", "interactions", "errors", "routed", "fanned-out", "imbalance")
	fmt.Fprintln(out, strings.Repeat("-", 64))
	for _, m := range levels {
		res := sw.Result(cellName(m))
		if res == nil {
			fmt.Fprintf(out, "%7d (failed)\n", m)
			continue
		}
		fmt.Fprintf(out, "%7d %13d %8d %10.0f %10.0f %10.2f\n",
			m, res.TotalInteractions, res.Errors,
			harness.SeriesMax(res.Series[cluster.ProbeShardRoute]),
			harness.SeriesMax(res.Series[cluster.ProbeShardFanout]),
			harness.SeriesMax(res.Series[cluster.ProbeShardImbalance]))
	}
	if len(levels) >= 2 {
		lo, hi := levels[0], levels[len(levels)-1]
		fmt.Fprintf(out, "throughput gain at %d vs %d shards: %+.1f%%\n",
			hi, lo, sw.GainPercent(cellName(lo), cellName(hi)))
	}
	fmt.Fprintln(out)
	fmt.Fprintln(out, sw.Report())
	return errors.Join(sweepErr, writeArtifacts(out, csvDir, jsonDir, sw))
}

// faultModes are the dependability cells swept by -exp faults: a
// fault-free control, a replica kill inside the database tier, and a
// whole-shard outage at the balancer. Each runs under both replica
// apply modes — synchronous fan-out feels an ejected replica directly,
// asynchronous shipping hides it behind the log.
var faultModes = []struct {
	key  string
	plan string
}{
	{"none", ""},
	{"replica-kill", faults.ReplicaKill},
	{"shard-down", faults.ShardDown},
}

// runFaults runs one variant on the full sharded, replicated stack
// through the dependability pack: {no-fault, replica-kill, shard-down}
// × {sync, async}. Faults strike one paper minute into the measurement
// window and heal a minute later; the report shows what the failover
// machinery did (injections, replica ejections and resyncs, balancer
// retries and breaker opens) and how long SLO attainment took to come
// back.
func runFaults(ctx context.Context, out io.Writer, opts harness.SweepOptions,
	build func(string) harness.Config, name string, dbConns int,
	csvDir, jsonDir string) error {
	repls := []string{"sync", "async"}
	cellName := func(mode, repl string) string { return mode + "/" + repl }
	var scenarios []harness.Scenario
	for _, mode := range faultModes {
		for _, repl := range repls {
			mode, repl := mode, repl
			cfg := build(name).With(func(c *harness.Config) {
				c.Shards = 2
				c.Replicas = 2
				c.Repl = repl
				c.DBConns = dbConns
				if c.DBConns <= 0 {
					// Same auto-sizing as -exp scaleout: keep the tier, not
					// the worker pools, as the ceiling.
					if budget := c.GeneralWorkers + c.LengthyWorkers; budget > 0 {
						c.DBConns = max(2, budget/6)
					} else {
						c.DBConns = 8
					}
				}
				if mode.plan != "" {
					c.Faults = mode.plan
					c.FaultSet = variant.Settings{"at": "60s", "restart": "60s"}
				}
			})
			scenarios = append(scenarios, harness.Scenario{
				Name:   cellName(mode.key, repl),
				Config: cfg,
			})
		}
	}
	fmt.Fprintf(out, "dependability: %s x %d fault modes x {sync, async} at 2 shards, 2 replicas...\n",
		name, len(faultModes))
	sw, sweepErr := harness.SweepWith(ctx, opts, scenarios)

	fmt.Fprintf(out, "\nfault injection (failover machinery and recovery per cell)\n")
	fmt.Fprintf(out, "%-24s %13s %8s %9s %8s %8s %8s %8s %9s\n",
		"cell", "interactions", "errors", "injected", "ejected", "resyncs", "retries", "breaker", "recovery")
	fmt.Fprintln(out, strings.Repeat("-", 104))
	for _, mode := range faultModes {
		for _, repl := range repls {
			res := sw.Result(cellName(mode.key, repl))
			if res == nil {
				fmt.Fprintf(out, "%-24s (failed)\n", cellName(mode.key, repl))
				continue
			}
			rec := "-"
			if res.FaultPlan != "" {
				switch {
				case res.FaultPaperSec < 0:
					rec = "no-inj"
				case res.RecoveryPaperSec < 0:
					rec = "never"
				default:
					rec = fmt.Sprintf("%.0fs", res.RecoveryPaperSec)
				}
			}
			fmt.Fprintf(out, "%-24s %13d %8d %9.0f %8.0f %8.0f %8.0f %8.0f %9s\n",
				cellName(mode.key, repl), res.TotalInteractions, res.Errors,
				harness.SeriesMax(res.Series[faults.ProbeInjected]),
				harness.SeriesMax(res.Series[variant.ProbeDBEjected]),
				harness.SeriesMax(res.Series[variant.ProbeDBResync]),
				harness.SeriesMax(res.Series[cluster.ProbeLBRetry]),
				harness.SeriesMax(res.Series[cluster.ProbeLBBreaker]),
				rec)
		}
	}
	for _, repl := range repls {
		fmt.Fprintf(out, "replica-kill throughput cost (%s): %+.1f%%\n", repl,
			sw.GainPercent(cellName("none", repl), cellName("replica-kill", repl)))
		fmt.Fprintf(out, "shard-down throughput cost (%s): %+.1f%%\n", repl,
			sw.GainPercent(cellName("none", repl), cellName("shard-down", repl)))
	}
	fmt.Fprintln(out)
	fmt.Fprintln(out, sw.Report())
	return errors.Join(sweepErr, writeArtifacts(out, csvDir, jsonDir, sw))
}

// runEBSweep runs every variant at every EB level and prints the
// saturation-knee table, with throughput gain of the second variant over
// the first at each level.
func runEBSweep(ctx context.Context, out io.Writer, opts harness.SweepOptions,
	build func(string) harness.Config, names []string, levels []int, csvDir, jsonDir string) error {
	var scenarios []harness.Scenario
	for _, name := range names {
		for _, level := range levels {
			cfg := build(name).With(func(c *harness.Config) { c.EBs = level })
			scenarios = append(scenarios, harness.Scenario{
				Name:   fmt.Sprintf("%s/ebs=%d", name, level),
				Config: cfg,
			})
		}
	}
	fmt.Fprintf(out, "EB ramp: %d variant(s) x %d load levels...\n", len(names), len(levels))
	// Keep partial results on a failed cell; the table prints "-" for it
	// and the error surfaces after the artifacts are written.
	sw, sweepErr := harness.SweepWith(ctx, opts, scenarios)

	fmt.Fprintf(out, "\nEB ramp (interactions per measurement window; the knee is where gains flatten)\n")
	fmt.Fprintf(out, "%6s", "ebs")
	for _, name := range names {
		fmt.Fprintf(out, " %18s", name)
	}
	if len(names) >= 2 {
		fmt.Fprintf(out, " %8s", "gain")
	}
	fmt.Fprintln(out)
	for _, level := range levels {
		fmt.Fprintf(out, "%6d", level)
		for _, name := range names {
			res := sw.Result(fmt.Sprintf("%s/ebs=%d", name, level))
			if res == nil {
				fmt.Fprintf(out, " %18s", "-")
				continue
			}
			fmt.Fprintf(out, " %18d", res.TotalInteractions)
		}
		if len(names) >= 2 {
			fmt.Fprintf(out, " %+7.1f%%", sw.GainPercent(
				fmt.Sprintf("%s/ebs=%d", names[0], level),
				fmt.Sprintf("%s/ebs=%d", names[1], level)))
		}
		fmt.Fprintln(out)
	}
	fmt.Fprintln(out)
	return errors.Join(sweepErr, writeArtifacts(out, csvDir, jsonDir, sw))
}

// writeArtifacts emits per-scenario JSON results and per-series CSVs,
// named after scenario and series — no per-variant file lists.
func writeArtifacts(out io.Writer, csvDir, jsonDir string, sw *harness.SweepResult) error {
	for _, r := range sw.Runs {
		if r.Result == nil {
			continue
		}
		base := sanitize(r.Scenario.Name)
		if jsonDir != "" {
			if err := os.MkdirAll(jsonDir, 0o755); err != nil {
				return err
			}
			if err := writeFile(filepath.Join(jsonDir, base+".json"), func(f *os.File) error {
				return harness.WriteJSON(f, r.Result)
			}); err != nil {
				return err
			}
		}
		if csvDir != "" {
			if err := os.MkdirAll(csvDir, 0o755); err != nil {
				return err
			}
			seriesNames := make([]string, 0, len(r.Result.Series))
			for name := range r.Result.Series {
				seriesNames = append(seriesNames, name)
			}
			sort.Strings(seriesNames)
			for _, name := range seriesNames {
				s := r.Result.Series[name]
				if err := writeFile(filepath.Join(csvDir, base+"_"+sanitize(name)+".csv"), func(f *os.File) error {
					return harness.WriteCSV(f, s)
				}); err != nil {
					return err
				}
			}
		}
	}
	if jsonDir != "" {
		fmt.Fprintln(out, "result JSON written to", jsonDir)
	}
	if csvDir != "" {
		fmt.Fprintln(out, "series CSVs written to", csvDir)
	}
	return nil
}

func writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = write(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// sanitize maps scenario and series names onto filesystem-safe tokens.
func sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '.':
			return r
		default:
			return '_'
		}
	}, name)
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range splitList(s) {
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad level %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no levels")
	}
	return out, nil
}

// table2 replays the paper's Table 2 t_spare trace through the
// controller.
func table2() string {
	rc := sched.NewReserveController(20)
	tspare := []int{35, 24, 17, 21, 30, 36, 38, 37, 35, 39}
	treserve := make([]int, 0, len(tspare)+1)
	for _, s := range tspare {
		treserve = append(treserve, rc.Reserve())
		rc.Update(s)
	}
	treserve = append(treserve, rc.Reserve())
	return harness.Table2(tspare, treserve)
}
