// Command experiments reproduces the DSN'09 evaluation: it runs the
// TPC-W browsing mix against the unmodified (thread-per-request) and
// modified (staged multi-pool) servers and prints the paper's tables and
// figures.
//
// Usage:
//
//	experiments -exp all                 # everything (two full runs)
//	experiments -exp table3              # response times
//	experiments -exp table4              # per-page throughput
//	experiments -exp table2              # t_reserve controller trace
//	experiments -exp fig7,fig8,fig9,fig10
//	experiments -scale 100 -ebs 400 -measure 50m   # paper-sized run
//	experiments -quick                   # reduced run (seconds)
//	experiments -csv dir                 # also dump figure CSVs
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"stagedweb/internal/clock"
	"stagedweb/internal/harness"
	"stagedweb/internal/metrics"
	"stagedweb/internal/sched"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		exp     = fs.String("exp", "all", "experiments: all, table2, table3, table4, fig7, fig8, fig9, fig10 (comma-separated)")
		scale   = fs.Float64("scale", 100, "timescale: paper seconds per wall second")
		ebs     = fs.Int("ebs", 0, "emulated browsers (0 = config default)")
		measure = fs.Duration("measure", 0, "measurement window in paper time (0 = config default)")
		quick   = fs.Bool("quick", false, "use the reduced quick configuration")
		csvDir  = fs.String("csv", "", "directory to write figure CSVs into")
		seed    = fs.Int64("seed", 1, "workload seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]

	// Table 2 needs no server runs: replay the paper's t_spare trace
	// through the reserve controller.
	if all || want["table2"] {
		fmt.Println(table2())
	}
	needRuns := all || want["table3"] || want["table4"] ||
		want["fig7"] || want["fig8"] || want["fig9"] || want["fig10"]
	if !needRuns {
		return nil
	}

	build := func(kind harness.ServerKind) harness.Config {
		var cfg harness.Config
		if *quick {
			cfg = harness.QuickConfig(kind, clock.Timescale(*scale))
		} else {
			cfg = harness.PaperConfig(kind, clock.Timescale(*scale))
		}
		if *ebs > 0 {
			cfg.EBs = *ebs
		}
		if *measure > 0 {
			cfg.Measure = *measure
		}
		cfg.Seed = *seed
		return cfg
	}

	fmt.Printf("running unmodified server (%d EBs, %v measured, scale %.0fx)...\n",
		build(harness.Unmodified).EBs, build(harness.Unmodified).Measure, *scale)
	unmod, err := harness.Run(build(harness.Unmodified))
	if err != nil {
		return fmt.Errorf("unmodified run: %w", err)
	}
	fmt.Printf("  done in %v wall (%d interactions)\n", unmod.WallDuration.Round(time.Millisecond), unmod.TotalInteractions)

	fmt.Println("running modified server...")
	mod, err := harness.Run(build(harness.Modified))
	if err != nil {
		return fmt.Errorf("modified run: %w", err)
	}
	fmt.Printf("  done in %v wall (%d interactions)\n\n", mod.WallDuration.Round(time.Millisecond), mod.TotalInteractions)

	if all || want["table3"] {
		fmt.Println(harness.Table3(unmod, mod))
	}
	if all || want["table4"] {
		fmt.Println(harness.Table4(unmod, mod))
	}
	if all || want["fig7"] {
		fmt.Println(harness.Figure7(unmod))
	}
	if all || want["fig8"] {
		fmt.Println(harness.Figure8(mod))
	}
	if all || want["fig9"] {
		fmt.Println(harness.Figure9(unmod, mod))
	}
	if all || want["fig10"] {
		fmt.Println(harness.Figure10(unmod, mod))
	}
	fmt.Println(harness.Summary(unmod, mod))

	if *csvDir != "" {
		if err := writeCSVs(*csvDir, unmod, mod); err != nil {
			return err
		}
		fmt.Println("figure CSVs written to", *csvDir)
	}
	return nil
}

// table2 replays the paper's Table 2 t_spare trace through the
// controller.
func table2() string {
	rc := sched.NewReserveController(20)
	tspare := []int{35, 24, 17, 21, 30, 36, 38, 37, 35, 39}
	treserve := make([]int, 0, len(tspare)+1)
	for _, s := range tspare {
		treserve = append(treserve, rc.Reserve())
		rc.Update(s)
	}
	treserve = append(treserve, rc.Reserve())
	return harness.Table2(tspare, treserve)
}

func writeCSVs(dir string, unmod, mod *harness.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	series := map[string]*metrics.Series{
		"fig7_queue_unmodified.csv": unmod.QueueSingle,
		"fig8a_queue_general.csv":   mod.QueueGeneral,
		"fig8b_queue_lengthy.csv":   mod.QueueLengthy,
		"fig9_throughput_unmod.csv": unmod.ThroughputAll,
		"fig9_throughput_mod.csv":   mod.ThroughputAll,
		"fig10a_static_unmod.csv":   unmod.ThroughputStatic,
		"fig10a_static_mod.csv":     mod.ThroughputStatic,
		"fig10b_dynamic_unmod.csv":  unmod.ThroughputDynamic,
		"fig10b_dynamic_mod.csv":    mod.ThroughputDynamic,
		"fig10c_quick_unmod.csv":    unmod.ThroughputQuick,
		"fig10c_quick_mod.csv":      mod.ThroughputQuick,
		"fig10d_lengthy_unmod.csv":  unmod.ThroughputLengthy,
		"fig10d_lengthy_mod.csv":    mod.ThroughputLengthy,
		"treserve_modified.csv":     mod.ReserveSeries,
	}
	for name, s := range series {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		err = harness.WriteCSV(f, s)
		cerr := f.Close()
		if err != nil {
			return err
		}
		if cerr != nil {
			return cerr
		}
	}
	return nil
}
