//go:build !race

package main

// raceEnabled reports whether this build runs under the race detector.
const raceEnabled = false
