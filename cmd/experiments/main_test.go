package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"stagedweb/internal/harness"
	"stagedweb/internal/load"
	"stagedweb/internal/variant"
)

// TestExperimentsSmoke drives the public experiment API end to end:
// a quick table3 run over both default variants, with CSV and JSON
// artifact writing.
func TestExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end experiment skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("race-detector overhead swamps the paper-time calibration; " +
			"run without -race for the experiment smoke")
	}
	dir := t.TempDir()
	var buf bytes.Buffer
	args := []string{
		"-quick", "-exp", "table3", "-scale", "400",
		"-ebs", "40", "-measure", "90s",
		"-csv", dir, "-json", dir,
	}
	if err := run(args, &buf); err != nil {
		t.Fatalf("run(%v): %v\noutput:\n%s", args, err, buf.String())
	}
	out := buf.String()

	// Table output.
	for _, want := range []string{"Table 3", "TPC-W home", "speedup", "sweep report"} {
		if !strings.Contains(out, want) {
			t.Errorf("output misses %q:\n%s", want, out)
		}
	}

	// JSON artifacts: one per scenario, valid, with named series.
	for _, name := range []string{"unmodified", "modified"} {
		raw, err := os.ReadFile(filepath.Join(dir, name+".json"))
		if err != nil {
			t.Fatalf("JSON artifact missing: %v", err)
		}
		var res struct {
			Variant string                     `json:"variant"`
			Series  map[string]json.RawMessage `json:"series"`
			Total   int64                      `json:"total_interactions"`
		}
		if err := json.Unmarshal(raw, &res); err != nil {
			t.Fatalf("%s.json invalid: %v", name, err)
		}
		if res.Variant != name {
			t.Errorf("%s.json variant = %q", name, res.Variant)
		}
		if _, ok := res.Series[harness.SeriesThroughputAll]; !ok {
			t.Errorf("%s.json misses %s series", name, harness.SeriesThroughputAll)
		}
		// The steady load driver's client probes land next to the
		// server's series in every artifact.
		for _, probe := range []string{load.ProbeActive, load.ProbeOffered, load.ProbeErrors, load.ProbeWIRT} {
			if _, ok := res.Series[probe]; !ok {
				t.Errorf("%s.json misses %s series", name, probe)
			}
		}
		if res.Total == 0 {
			t.Errorf("%s.json reports zero interactions", name)
		}
	}

	// CSV artifacts: per scenario × series, with the CSV header.
	csvs, err := filepath.Glob(filepath.Join(dir, "*.csv"))
	if err != nil || len(csvs) == 0 {
		t.Fatalf("no CSV artifacts written (err=%v)", err)
	}
	qcsv := filepath.Join(dir, "unmodified_queue.single.csv")
	raw, err := os.ReadFile(qcsv)
	if err != nil {
		t.Fatalf("queue CSV missing: %v (have %v)", err, csvs)
	}
	if !strings.HasPrefix(string(raw), "offset_seconds,value\n") {
		t.Errorf("CSV header wrong: %q", string(raw)[:40])
	}
}

// TestExperimentsEBSweep exercises the saturation-ramp mode: a matrix of
// variants × EB levels from one CLI invocation, with per-scenario JSON.
func TestExperimentsEBSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end experiment skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("race-detector overhead swamps the paper-time calibration")
	}
	dir := t.TempDir()
	var buf bytes.Buffer
	args := []string{
		"-quick", "-scale", "400", "-measure", "45s",
		"-ebs-sweep", "10,20", "-json", dir,
	}
	if err := run(args, &buf); err != nil {
		t.Fatalf("run(%v): %v\noutput:\n%s", args, err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"EB ramp", "ebs", "gain", "unmodified", "modified"} {
		if !strings.Contains(out, want) {
			t.Errorf("output misses %q:\n%s", want, out)
		}
	}
	for _, name := range []string{
		"unmodified_ebs_10", "unmodified_ebs_20", "modified_ebs_10", "modified_ebs_20",
	} {
		if _, err := os.Stat(filepath.Join(dir, name+".json")); err != nil {
			t.Errorf("sweep artifact missing: %v", err)
		}
	}
}

// TestExperimentsSpike exercises the flash-crowd mode: variants × the
// spike profile from one invocation, with the client.* series in the
// JSON artifacts.
func TestExperimentsSpike(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end experiment skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("race-detector overhead swamps the paper-time calibration")
	}
	dir := t.TempDir()
	var buf bytes.Buffer
	args := []string{
		"-quick", "-exp", "spike", "-scale", "400",
		"-ebs", "20", "-measure", "90s",
		"-load-set", "burst=40", "-load-set", "at=45s", "-load-set", "width=30s",
		"-json", dir,
	}
	if err := run(args, &buf); err != nil {
		t.Fatalf("run(%v): %v\noutput:\n%s", args, err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"spike comparison", "peak-ebs", "worst-wirt", "gain"} {
		if !strings.Contains(out, want) {
			t.Errorf("output misses %q:\n%s", want, out)
		}
	}
	for _, name := range []string{"unmodified_spike", "modified_spike"} {
		raw, err := os.ReadFile(filepath.Join(dir, name+".json"))
		if err != nil {
			t.Fatalf("spike artifact missing: %v", err)
		}
		for _, probe := range []string{load.ProbeActive, load.ProbeWIRT} {
			if !strings.Contains(string(raw), `"`+probe+`"`) {
				t.Errorf("%s.json misses %s series", name, probe)
			}
		}
	}
}

// TestExperimentsScaleout exercises the replica-sweep mode: the staged
// variant across replica counts under both mixes, with the db.* tier
// series in the JSON artifacts.
func TestExperimentsScaleout(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end experiment skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("race-detector overhead swamps the paper-time calibration")
	}
	dir := t.TempDir()
	var buf bytes.Buffer
	args := []string{
		"-quick", "-exp", "scaleout", "-scale", "400",
		"-ebs", "30", "-measure", "60s",
		"-variants", "modified", "-replicas", "1,2",
		"-json", dir,
	}
	if err := run(args, &buf); err != nil {
		t.Fatalf("run(%v): %v\noutput:\n%s", args, err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"replica scale-out", "modified/browsing", "modified/ordering", "gain at 2 vs 1 replicas"} {
		if !strings.Contains(out, want) {
			t.Errorf("output misses %q:\n%s", want, out)
		}
	}
	for _, name := range []string{
		"modified_browsing_replicas_1", "modified_browsing_replicas_2",
		"modified_ordering_replicas_1", "modified_ordering_replicas_2",
	} {
		raw, err := os.ReadFile(filepath.Join(dir, name+".json"))
		if err != nil {
			t.Fatalf("scaleout artifact missing: %v", err)
		}
		for _, probe := range []string{variant.ProbeDBInUse, variant.ProbeDBWait, variant.ProbeDBQueries} {
			if !strings.Contains(string(raw), `"`+probe+`"`) {
				t.Errorf("%s.json misses %s series", name, probe)
			}
		}
	}
}

// TestExperimentsMVCC exercises the storage-engine sweep: one variant
// across {lock/sync, mvcc/sync, mvcc/async} under both mixes, with the
// engine's db.conflicts/db.snapshots/db.repllag series in the JSON
// artifacts.
func TestExperimentsMVCC(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end experiment skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("race-detector overhead swamps the paper-time calibration")
	}
	dir := t.TempDir()
	var buf bytes.Buffer
	args := []string{
		"-quick", "-exp", "mvcc", "-scale", "400",
		"-ebs", "30", "-measure", "60s",
		"-variants", "modified", "-replicas", "1,2",
		"-json", dir,
	}
	if err := run(args, &buf); err != nil {
		t.Fatalf("run(%v): %v\noutput:\n%s", args, err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"storage-engine sweep", "lock/sync/browsing", "mvcc/async/ordering",
		"engine behavior", "mvcc/sync gain over lock/sync at 2 replicas",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output misses %q:\n%s", want, out)
		}
	}
	for _, name := range []string{
		"modified_lock_sync_browsing_replicas_1",
		"modified_mvcc_sync_browsing_replicas_2",
		"modified_mvcc_async_ordering_replicas_2",
	} {
		raw, err := os.ReadFile(filepath.Join(dir, name+".json"))
		if err != nil {
			t.Fatalf("mvcc artifact missing: %v", err)
		}
		for _, probe := range []string{
			variant.ProbeDBConflicts, variant.ProbeDBSnapshots,
			variant.ProbeDBReplLag, variant.ProbeDBStmtHits,
		} {
			if !strings.Contains(string(raw), `"`+probe+`"`) {
				t.Errorf("%s.json misses %s series", name, probe)
			}
		}
	}
}

// TestExperimentsPlanner exercises the secondary-index sweep: one
// variant under both mixes with indexes off and on, the quick/lengthy
// boundary tables in the report, and the db.plan.* series in the JSON
// artifacts of every cell.
func TestExperimentsPlanner(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end experiment skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("race-detector overhead swamps the paper-time calibration")
	}
	dir := t.TempDir()
	var buf bytes.Buffer
	args := []string{
		"-quick", "-exp", "planner", "-scale", "400",
		"-ebs", "30", "-measure", "60s",
		"-variants", "modified", "-json", dir,
	}
	if err := run(args, &buf); err != nil {
		t.Fatalf("run(%v): %v\noutput:\n%s", args, err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"query planner", "planner behavior",
		"browsing/indexes=off", "ordering/indexes=on",
		"quick/lengthy boundary under indexing",
		"pages crossing the 2s cutoff",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output misses %q:\n%s", want, out)
		}
	}
	for _, name := range []string{
		"modified_browsing_indexes_off",
		"modified_browsing_indexes_on",
		"modified_ordering_indexes_off",
		"modified_ordering_indexes_on",
	} {
		raw, err := os.ReadFile(filepath.Join(dir, name+".json"))
		if err != nil {
			t.Fatalf("planner artifact missing: %v", err)
		}
		for _, probe := range []string{
			variant.ProbeDBPlanScan, variant.ProbeDBPlanIndex,
			variant.ProbeDBPlanRows,
		} {
			if !strings.Contains(string(raw), `"`+probe+`"`) {
				t.Errorf("%s.json misses %s series", name, probe)
			}
		}
	}
}

func TestExperimentsFlagValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-set", "nonsense"}, &buf); err == nil {
		t.Error("malformed -set accepted")
	}
	if err := run([]string{"-ebs-sweep", "10,frog"}, &buf); err == nil {
		t.Error("malformed -ebs-sweep accepted")
	}
	if err := run([]string{"-variants", " , "}, &buf); err == nil {
		t.Error("empty -variants accepted")
	}
	if err := run([]string{"-load", "no-such-profile"}, &buf); err == nil ||
		!strings.Contains(err.Error(), "no-such-profile") {
		t.Errorf("unknown -load accepted: %v", err)
	}
	if err := run([]string{"-load-set", "nonsense"}, &buf); err == nil {
		t.Error("malformed -load-set accepted")
	}
	// -exp spike is standalone: combining it with other experiments or a
	// -load override must fail loudly, not silently drop either.
	if err := run([]string{"-exp", "spike,table3"}, &buf); err == nil ||
		!strings.Contains(err.Error(), "standalone") {
		t.Errorf("-exp spike,table3 accepted: %v", err)
	}
	if err := run([]string{"-exp", "spike", "-load", "wave"}, &buf); err == nil ||
		!strings.Contains(err.Error(), "spike profile") {
		t.Errorf("-exp spike -load wave accepted: %v", err)
	}
	if err := run([]string{"-exp", "spike", "-ebs-sweep", "10,20"}, &buf); err == nil ||
		!strings.Contains(err.Error(), "separate modes") {
		t.Errorf("-exp spike -ebs-sweep accepted: %v", err)
	}
	// -exp scaleout is standalone too, and owns the mix axis itself.
	if err := run([]string{"-exp", "scaleout,table3"}, &buf); err == nil ||
		!strings.Contains(err.Error(), "standalone") {
		t.Errorf("-exp scaleout,table3 accepted: %v", err)
	}
	if err := run([]string{"-exp", "scaleout", "-mix", "shopping"}, &buf); err == nil ||
		!strings.Contains(err.Error(), "mixes itself") {
		t.Errorf("-exp scaleout -mix accepted: %v", err)
	}
	// -exp planner is standalone and owns both the mix and index axes.
	if err := run([]string{"-exp", "planner,table3"}, &buf); err == nil ||
		!strings.Contains(err.Error(), "standalone") {
		t.Errorf("-exp planner,table3 accepted: %v", err)
	}
	if err := run([]string{"-exp", "planner", "-mix", "shopping"}, &buf); err == nil ||
		!strings.Contains(err.Error(), "mixes itself") {
		t.Errorf("-exp planner -mix accepted: %v", err)
	}
	if err := run([]string{"-exp", "scaleout", "-replicas", "1,frog"}, &buf); err == nil {
		t.Error("malformed -replicas accepted")
	}
	if err := run([]string{"-exp", "scaleout", "-ebs-sweep", "10,20"}, &buf); err == nil ||
		!strings.Contains(err.Error(), "separate modes") {
		t.Errorf("-exp scaleout -ebs-sweep accepted: %v", err)
	}
	// -exp mvcc follows the same standalone rules.
	if err := run([]string{"-exp", "mvcc,table3"}, &buf); err == nil ||
		!strings.Contains(err.Error(), "standalone") {
		t.Errorf("-exp mvcc,table3 accepted: %v", err)
	}
	if err := run([]string{"-exp", "mvcc", "-mix", "shopping"}, &buf); err == nil ||
		!strings.Contains(err.Error(), "mixes itself") {
		t.Errorf("-exp mvcc -mix accepted: %v", err)
	}
	if err := run([]string{"-exp", "mvcc", "-ebs-sweep", "10,20"}, &buf); err == nil ||
		!strings.Contains(err.Error(), "separate modes") {
		t.Errorf("-exp mvcc -ebs-sweep accepted: %v", err)
	}
	// Table 2 needs no server runs and must work for any -variants.
	buf.Reset()
	if err := run([]string{"-exp", "table2"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "treserve") {
		t.Errorf("table2 output wrong:\n%s", buf.String())
	}
}
