package main

import (
	"flag"
	"testing"

	"stagedweb/internal/variant"
)

// newTestFlags mirrors run()'s flag definitions for collectSettings.
func newTestFlags() (*flag.FlagSet, *int, *int, *int, *bool, *variant.SettingsFlag) {
	fs := flag.NewFlagSet("poolserv", flag.ContinueOnError)
	workers := fs.Int("workers", 80, "")
	general := fs.Int("general", 64, "")
	lengthy := fs.Int("lengthy", 16, "")
	noReserve := fs.Bool("noreserve", false, "")
	var sets variant.SettingsFlag
	fs.Var(&sets, "set", "")
	return fs, workers, general, lengthy, noReserve, &sets
}

func TestCollectSettings(t *testing.T) {
	fs, w, g, le, nr, sets := newTestFlags()
	if err := fs.Parse([]string{"-general", "32", "-noreserve", "-set", "minreserve=15", "-set", "cutoff=3s"}); err != nil {
		t.Fatal(err)
	}
	got := collectSettings(fs, w, g, le, nr, sets.Settings)
	want := variant.Settings{"general": "32", "noreserve": "true", "minreserve": "15", "cutoff": "3s"}
	if len(got) != len(want) {
		t.Fatalf("settings = %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("settings[%s] = %q, want %q", k, got[k], v)
		}
	}
	// Defaulted legacy flags must NOT leak into settings: -workers was
	// never passed, so a non-baseline variant is not poisoned by it.
	if _, leaked := got["workers"]; leaked {
		t.Error("unset -workers leaked into settings")
	}

	// An explicit -set wins over its legacy alias.
	fs, w, g, le, nr, sets = newTestFlags()
	if err := fs.Parse([]string{"-general", "32", "-set", "general=8"}); err != nil {
		t.Fatal(err)
	}
	if got := collectSettings(fs, w, g, le, nr, sets.Settings); got["general"] != "8" {
		t.Errorf("-set did not override legacy flag: %v", got)
	}

	// Malformed -set pairs fail at flag-parse time.
	fs, _, _, _, _, _ = newTestFlags()
	if err := fs.Parse([]string{"-set", "nonsense"}); err == nil {
		t.Error("malformed -set accepted")
	}
}

func TestModeAliases(t *testing.T) {
	for alias, want := range modeAliases {
		if _, ok := variant.Lookup(want); !ok {
			t.Errorf("alias %q points at unregistered variant %q", alias, want)
		}
	}
}
