// Command poolserv serves the TPC-W bookstore with either server
// variant. It is the interactive face of the reproduction: start it,
// point a browser or cmd/tpcwload at it, and watch the queue and
// scheduling state.
//
// Usage:
//
//	poolserv -mode staged   -addr :8080
//	poolserv -mode baseline -addr :8080 -workers 80
//	poolserv -mode staged -items 10000 -scale 100 -stats 2s
//	poolserv -mode staged -noreserve        # t_reserve controller ablated
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"stagedweb/internal/clock"
	"stagedweb/internal/core"
	"stagedweb/internal/server"
	"stagedweb/internal/sqldb"
	"stagedweb/internal/tpcw"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "poolserv:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("poolserv", flag.ContinueOnError)
	var (
		mode      = fs.String("mode", "staged", "server variant: staged or baseline")
		addr      = fs.String("addr", "127.0.0.1:8080", "listen address")
		items     = fs.Int("items", 10000, "item population")
		customers = fs.Int("customers", 2880, "customer population")
		orders    = fs.Int("orders", 2592, "order population")
		scale     = fs.Float64("scale", 1, "timescale (1 = real time)")
		workers   = fs.Int("workers", 80, "baseline worker/connection count")
		general   = fs.Int("general", 64, "staged general dynamic workers")
		lengthy   = fs.Int("lengthy", 16, "staged lengthy dynamic workers")
		noReserve = fs.Bool("noreserve", false, "staged: disable the t_reserve controller (ablation)")
		statsEach = fs.Duration("stats", 0, "print server stats every interval (0 = off)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	ts := clock.Timescale(*scale)
	db := sqldb.Open(sqldb.Options{Timescale: ts, Cost: sqldb.DefaultCostModel()})
	if err := tpcw.CreateTables(db); err != nil {
		return err
	}
	fmt.Printf("populating %d items, %d customers, %d orders...\n", *items, *customers, *orders)
	counts, err := tpcw.Populate(db, tpcw.PopulateConfig{
		Items: *items, Customers: *customers, Orders: *orders,
	})
	if err != nil {
		return err
	}
	app := tpcw.NewApp(counts, nil)

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("%s server on http://%s (try /home, /best_sellers?subject=ARTS)\n", *mode, l.Addr())

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	serveErr := make(chan error, 1)

	switch *mode {
	case "baseline":
		srv, err := server.NewBaseline(server.BaselineConfig{
			App: app, DB: db, Workers: *workers,
			Cost: server.DefaultWorkCost(), Scale: ts,
		})
		if err != nil {
			return err
		}
		go func() { serveErr <- srv.Serve(l) }()
		if *statsEach > 0 {
			go func() {
				for range time.Tick(*statsEach) {
					for _, st := range srv.Graph().Stats() {
						fmt.Printf("  %s\n", st)
					}
					fmt.Printf("served=%d\n", srv.Served())
				}
			}()
		}
		defer srv.Stop()
	case "staged":
		srv, err := core.New(core.Config{
			App: app, DB: db,
			GeneralWorkers: *general, LengthyWorkers: *lengthy,
			NoReserve: *noReserve,
			Scale:     ts, Cost: server.DefaultWorkCost(),
		})
		if err != nil {
			return err
		}
		go func() { serveErr <- srv.Serve(l) }()
		if *statsEach > 0 {
			go func() {
				for range time.Tick(*statsEach) {
					for _, st := range srv.Graph().Stats() {
						fmt.Printf("  %s\n", st)
					}
					g, le := srv.DispatchCounts()
					fmt.Printf("tspare=%d treserve=%d dispatched{general:%d lengthy:%d} served=%d\n",
						srv.Spare(), srv.Reserve(), g, le, srv.Served())
				}
			}()
		}
		defer srv.Stop()
	default:
		return fmt.Errorf("unknown mode %q (want staged or baseline)", *mode)
	}

	select {
	case <-stop:
		fmt.Println("\nshutting down")
		return nil
	case err := <-serveErr:
		return err
	}
}
