// Command poolserv serves the TPC-W bookstore with any registered
// server variant. It is the interactive face of the reproduction: start
// it, point a browser or cmd/tpcwload at it, and watch the queue and
// scheduling state.
//
// -mode is a registry lookup (plus the aliases staged/baseline), and
// variant knobs are generic -set key=value overrides — unknown keys are
// startup errors, so typos do not pass silently:
//
//	poolserv -mode staged   -addr :8080
//	poolserv -mode baseline -addr :8080 -workers 80
//	poolserv -mode staged -items 10000 -scale 100 -stats 2s
//	poolserv -mode modified-noreserve          # t_reserve ablated
//	poolserv -mode staged -set minreserve=15 -set cutoff=3s
//	poolserv -mode staged -set general=32 -set lengthy=8 -set queuecap=1024
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"stagedweb/internal/clock"
	"stagedweb/internal/server"
	"stagedweb/internal/sqldb"
	"stagedweb/internal/tpcw"
	"stagedweb/internal/variant"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "poolserv:", err)
		os.Exit(1)
	}
}

// modeAliases maps the historical -mode names onto registry names.
var modeAliases = map[string]string{
	"staged":   variant.Modified,
	"baseline": variant.Unmodified,
}

func collectSettings(fs *flag.FlagSet, workers, general, lengthy *int, noReserve *bool, sets variant.Settings) variant.Settings {
	// Legacy sizing flags become settings only when explicitly passed,
	// so a variant that does not understand them ("-mode baseline
	// -general 32") fails loudly instead of ignoring them. Explicit
	// -set pairs win over the legacy aliases.
	settings := variant.Settings{}
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "workers":
			settings["workers"] = strconv.Itoa(*workers)
		case "general":
			settings["general"] = strconv.Itoa(*general)
		case "lengthy":
			settings["lengthy"] = strconv.Itoa(*lengthy)
		case "noreserve":
			settings["noreserve"] = strconv.FormatBool(*noReserve)
		}
	})
	return settings.Merge(sets)
}

func run(args []string) error {
	fs := flag.NewFlagSet("poolserv", flag.ContinueOnError)
	var (
		mode      = fs.String("mode", "staged", "server variant: a registered name ("+strings.Join(variant.Names(), ", ")+") or the aliases staged/baseline")
		addr      = fs.String("addr", "127.0.0.1:8080", "listen address")
		items     = fs.Int("items", 10000, "item population")
		customers = fs.Int("customers", 2880, "customer population")
		orders    = fs.Int("orders", 2592, "order population")
		scale     = fs.Float64("scale", 1, "timescale (1 = real time)")
		workers   = fs.Int("workers", 80, "baseline worker/connection count (alias for -set workers=N)")
		general   = fs.Int("general", 64, "staged general dynamic workers (alias for -set general=N)")
		lengthy   = fs.Int("lengthy", 16, "staged lengthy dynamic workers (alias for -set lengthy=N)")
		noReserve = fs.Bool("noreserve", false, "staged: disable the t_reserve controller (alias for -set noreserve=true)")
		statsEach = fs.Duration("stats", 0, "print server stats every interval (0 = off)")
		sets      variant.SettingsFlag
	)
	fs.Var(&sets, "set", "variant setting `key=value` (repeatable), e.g. -set minreserve=15 -set cutoff=3s")
	if err := fs.Parse(args); err != nil {
		return err
	}

	name := *mode
	if alias, ok := modeAliases[name]; ok {
		name = alias
	}
	v, ok := variant.Lookup(name)
	if !ok {
		return fmt.Errorf("unknown mode %q (registered variants: %s)", *mode, strings.Join(variant.Names(), ", "))
	}
	settings := collectSettings(fs, workers, general, lengthy, noReserve, sets.Settings)

	ts := clock.Timescale(*scale)
	db := sqldb.Open(sqldb.Options{Timescale: ts})
	if err := tpcw.CreateTables(db); err != nil {
		return err
	}
	fmt.Printf("populating %d items, %d customers, %d orders...\n", *items, *customers, *orders)
	counts, err := tpcw.Populate(db, tpcw.PopulateConfig{
		Items: *items, Customers: *customers, Orders: *orders,
	})
	if err != nil {
		return err
	}
	app := tpcw.NewApp(counts, nil)

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	inst, err := v.Build(variant.Env{
		App:   app,
		DB:    db,
		Scale: ts,
		Cost:  server.DefaultWorkCost(),
		Set:   settings,
	})
	if err != nil {
		_ = l.Close()
		return err
	}
	defer inst.Stop()
	fmt.Printf("%s server on http://%s (try /home, /best_sellers?subject=ARTS)\n", name, l.Addr())

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	serveErr := make(chan error, 1)
	go func() { serveErr <- inst.Serve(l) }()

	if *statsEach > 0 {
		stopStats := startStats(inst, *statsEach)
		defer stopStats()
	}

	select {
	case <-stop:
		fmt.Println("\nshutting down")
		return nil
	case err := <-serveErr:
		return err
	}
}

// startStats launches the periodic stats printer — one loop for every
// variant, built on the uniform Instance surface: graph stage stats plus
// every probe gauge. The ticker is stopped when the returned function
// runs, so the goroutine and timer never outlive the server.
func startStats(inst variant.Instance, every time.Duration) (stop func()) {
	// Stats cadence is operator-facing wall time: a human watching a
	// terminal wants a line every N real seconds regardless of timescale.
	tk := time.NewTicker(every) //lint:allow wallclock(operator-facing stats cadence is wall time by definition)
	done := make(chan struct{})
	go func() {
		defer tk.Stop()
		for {
			select {
			case <-done:
				return
			case <-tk.C:
				for _, st := range inst.Graph().Stats() {
					fmt.Printf("  %s\n", st)
				}
				var sb strings.Builder
				for i, p := range inst.Probes() {
					if i > 0 {
						sb.WriteByte(' ')
					}
					fmt.Fprintf(&sb, "%s=%.0f", p.Name, p.Gauge())
				}
				fmt.Println(sb.String())
			}
		}
	}()
	return func() { close(done) }
}
