// Command tpcwload drives a TPC-W workload against a running poolserv
// instance and reports client-side response times. The offered load is
// a registered load profile (steady, step, ramp, spike, wave,
// open-loop) configured through generic -load-set key=value settings,
// and the page mix is selectable — the same registry the experiment
// harness uses.
//
// Usage:
//
//	tpcwload -addr 127.0.0.1:8080 -ebs 400 -duration 5m -scale 1
//	tpcwload -duration 5m -load spike -load-set burst=300 -load-set at=2m -load-set width=1m
//	tpcwload -load open-loop -load-set rate=5 -mix shopping
//
// Profile schedules are paper time from load start, so size -duration
// to cover them (the default 1m run ends before spike's default at=1m
// burst).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"stagedweb/internal/clock"
	"stagedweb/internal/load"
	"stagedweb/internal/tpcw"
	"stagedweb/internal/variant"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tpcwload:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tpcwload", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", "127.0.0.1:8080", "server address")
		ebs       = fs.Int("ebs", 100, "base emulated-browser population")
		loadProf  = fs.String("load", load.Steady, "load profile (registered: "+strings.Join(load.Names(), ", ")+")")
		mixName   = fs.String("mix", "", "TPC-W page mix: "+strings.Join(tpcw.MixNames(), ", ")+" (empty = browsing)")
		duration  = fs.Duration("duration", time.Minute, "run duration (paper time)")
		scale     = fs.Float64("scale", 1, "timescale (match the server's)")
		items     = fs.Int("items", 10000, "item id range")
		customers = fs.Int("customers", 2880, "customer id range")
		images    = fs.Bool("images", true, "fetch embedded images")
		seed      = fs.Int64("seed", 1, "rng seed")
		loadSets  variant.SettingsFlag
	)
	fs.Var(&loadSets, "load-set", "load-profile setting `key=value` (repeatable), e.g. -load-set burst=300")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, ok := load.Lookup(*loadProf)
	if !ok {
		return fmt.Errorf("unknown load profile %q (registered: %s)",
			*loadProf, strings.Join(load.Names(), ", "))
	}
	mix, err := tpcw.MixByName(*mixName)
	if err != nil {
		return err
	}
	ts := clock.Timescale(*scale)
	drv, err := p.Build(load.Env{
		Addr:        *addr,
		Scale:       ts,
		Mix:         mix,
		Customers:   *customers,
		Items:       *items,
		FetchImages: *images,
		Seed:        *seed,
		Set:         loadSets.Settings,
		Defaults:    variant.Settings{"ebs": fmt.Sprint(*ebs)},
	})
	if err != nil {
		return err
	}
	fmt.Printf("driving %s load against %s for %v (paper time)...\n", *loadProf, *addr, *duration)
	drv.Start()
	time.Sleep(ts.Wall(*duration)) //lint:allow wallclock(CLI run duration elapses on the operator's wall clock)
	drv.Stop()

	stats := drv.Stats()
	fmt.Printf("\n%-28s %8s %8s %12s %12s %12s\n", "page", "count", "errors", "mean (s)", "p90 (s)", "max (s)")
	for _, p := range stats.Pages() {
		fmt.Printf("%-28s %8d %8d %12.3f %12.3f %12.3f\n",
			p.Page, p.Count, p.Errors,
			ts.PaperSeconds(p.Mean), ts.PaperSeconds(p.P90), ts.PaperSeconds(p.Max))
	}
	fmt.Printf("\ntotal interactions: %d, errors: %d\n",
		stats.TotalInteractions(), stats.Errors())
	return nil
}
