// Command tpcwload drives the TPC-W browsing-mix workload against a
// running poolserv instance and reports client-side response times.
//
// Usage:
//
//	tpcwload -addr 127.0.0.1:8080 -ebs 400 -duration 5m -scale 1
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"stagedweb/internal/clock"
	"stagedweb/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tpcwload:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tpcwload", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", "127.0.0.1:8080", "server address")
		ebs       = fs.Int("ebs", 100, "emulated browsers")
		duration  = fs.Duration("duration", time.Minute, "run duration (paper time)")
		scale     = fs.Float64("scale", 1, "timescale (match the server's)")
		items     = fs.Int("items", 10000, "item id range")
		customers = fs.Int("customers", 2880, "customer id range")
		images    = fs.Bool("images", true, "fetch embedded images")
		seed      = fs.Int64("seed", 1, "rng seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ts := clock.Timescale(*scale)
	gen := workload.New(workload.Config{
		Addr:        *addr,
		EBs:         *ebs,
		Scale:       ts,
		Customers:   *customers,
		Items:       *items,
		FetchImages: *images,
		Seed:        *seed,
	})
	fmt.Printf("driving %d EBs against %s for %v (paper time)...\n", *ebs, *addr, *duration)
	gen.Start()
	time.Sleep(ts.Wall(*duration))
	gen.Stop()

	fmt.Printf("\n%-28s %8s %12s %12s %12s\n", "page", "count", "mean (s)", "p90 (s)", "max (s)")
	for _, p := range gen.Stats().Pages() {
		fmt.Printf("%-28s %8d %12.3f %12.3f %12.3f\n",
			p.Page, p.Count,
			ts.PaperSeconds(p.Mean), ts.PaperSeconds(p.P90), ts.PaperSeconds(p.Max))
	}
	fmt.Printf("\ntotal interactions: %d, errors: %d\n",
		gen.Stats().TotalInteractions(), gen.Stats().Errors())
	return nil
}
