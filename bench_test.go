package stagedweb

// One benchmark per table and figure of the DSN'09 evaluation, plus
// ablation benches for the design decisions called out in README.md
// ("Design notes") and micro-benchmarks for each substrate. Experiment
// benches run a miniature two-minute TPC-W experiment per iteration and
// report the reproduced quantity via b.ReportMetric; run with
//
//	go test -bench=. -benchmem
//
// and see cmd/experiments for the full-scale reproduction.

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"testing"
	"time"

	"stagedweb/internal/clock"
	"stagedweb/internal/dbtier"
	"stagedweb/internal/harness"
	"stagedweb/internal/load"
	"stagedweb/internal/sched"
	"stagedweb/internal/server"
	"stagedweb/internal/sqldb"
	"stagedweb/internal/template"
	"stagedweb/internal/tpcw"
	"stagedweb/internal/variant"
)

// miniConfig is a reduced experiment sized for benchmark iterations
// (~2 s wall each at scale 200 on a single core).
func miniConfig(variantName string) harness.Config {
	cfg := harness.QuickConfig(variantName, clock.Timescale(200))
	cfg.EBs = 60
	cfg.RampUp = 15 * time.Second
	cfg.Measure = 2 * time.Minute
	cfg.CoolDown = 5 * time.Second
	cfg.Populate = tpcw.PopulateConfig{Items: 800, Customers: 200, Orders: 180}
	return cfg
}

func runMini(b *testing.B, variantName string, mutate func(*harness.Config)) *harness.Result {
	b.Helper()
	cfg := miniConfig(variantName)
	if mutate != nil {
		mutate(&cfg)
	}
	res, err := harness.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// ---- Table 1: dispatch rules ----

func BenchmarkTable1Dispatch(b *testing.B) {
	cls := sched.NewClassifier(sched.DefaultCutoff)
	cls.Record("/best_sellers", 8*time.Second)
	cls.Record("/home", 20*time.Millisecond)
	rc := sched.NewReserveController(20)
	d := sched.NewDispatcher(cls, rc, func() int { return 30 })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			d.Choose("/home")
		} else {
			d.Choose("/best_sellers")
		}
	}
}

// ---- Table 2: reserve controller ----

func BenchmarkTable2ReserveController(b *testing.B) {
	rc := sched.NewReserveController(20)
	trace := []int{35, 24, 17, 21, 30, 36, 38, 37, 35, 39}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rc.Update(trace[i%len(trace)])
	}
}

// ---- Tables 3 and 4: full experiment, both variants ----

func BenchmarkTable3ResponseTimes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		unmod := runMini(b, variant.Unmodified, nil)
		mod := runMini(b, variant.Modified, nil)
		u := unmod.Pages[tpcw.PageHome].MeanPaperSec
		m := mod.Pages[tpcw.PageHome].MeanPaperSec
		if m > 0 {
			b.ReportMetric(u/m, "home-speedup")
		}
	}
}

func BenchmarkTable4Throughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		unmod := runMini(b, variant.Unmodified, nil)
		mod := runMini(b, variant.Modified, nil)
		b.ReportMetric(harness.ThroughputGainPercent(unmod, mod), "gain-%")
		b.ReportMetric(float64(mod.TotalInteractions), "interactions")
	}
}

// ---- Figure 7: baseline queue length ----

func BenchmarkFigure7QueueBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		unmod := runMini(b, variant.Unmodified, nil)
		b.ReportMetric(harness.SeriesMax(unmod.Series[variant.ProbeQueueSingle]), "queue-max")
		b.ReportMetric(harness.SeriesMean(unmod.Series[variant.ProbeQueueSingle]), "queue-mean")
	}
}

// ---- Figure 8: staged queue lengths ----

func BenchmarkFigure8QueuesStaged(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mod := runMini(b, variant.Modified, nil)
		b.ReportMetric(harness.SeriesMax(mod.Series[variant.ProbeQueueGeneral]), "general-max")
		b.ReportMetric(harness.SeriesMax(mod.Series[variant.ProbeQueueLengthy]), "lengthy-max")
	}
}

// ---- Figure 9: total throughput over time ----

func BenchmarkFigure9Throughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		unmod := runMini(b, variant.Unmodified, nil)
		mod := runMini(b, variant.Modified, nil)
		b.ReportMetric(harness.SeriesMean(unmod.Series[harness.SeriesThroughputAll]), "unmod-per-min")
		b.ReportMetric(harness.SeriesMean(mod.Series[harness.SeriesThroughputAll]), "mod-per-min")
	}
}

// ---- Figure 10: per-class throughput ----

func BenchmarkFigure10PerClass(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mod := runMini(b, variant.Modified, nil)
		b.ReportMetric(harness.SeriesMean(mod.Series[harness.SeriesThroughputStatic]), "static-per-min")
		b.ReportMetric(harness.SeriesMean(mod.Series[harness.SeriesThroughputQuick]), "quick-per-min")
		b.ReportMetric(harness.SeriesMean(mod.Series[harness.SeriesThroughputLengthy]), "lengthy-per-min")
	}
}

// BenchmarkSpikeProfile pushes a flash crowd (the "spike" load profile:
// base population plus a burst of extra EBs mid-window) through the
// baseline and staged servers — the scenario the t_reserve controller
// exists to survive. Reported per variant: completed interactions
// through the crowd, the peak offered population the client.active
// series saw, and the worst per-second client WIRT.
func BenchmarkSpikeProfile(b *testing.B) {
	for _, v := range []string{variant.Unmodified, variant.Modified} {
		b.Run(v, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := runMini(b, v, func(cfg *harness.Config) {
					cfg.Load = load.Spike
					cfg.LoadSet = variant.Settings{
						"burst": "120", "at": "45s", "width": "30s",
					}
				})
				b.ReportMetric(float64(res.TotalInteractions), "interactions")
				b.ReportMetric(harness.SeriesMax(res.Series[load.ProbeActive]), "peak-ebs")
				b.ReportMetric(harness.SeriesMax(res.Series[load.ProbeWIRT]), "worst-wirt-sec")
			}
		})
	}
}

// BenchmarkScaleoutReplicas runs the miniature browsing-mix experiment
// on the staged server across database replica counts with a scarce
// per-backend connection pool — the -exp scaleout comparison: reads
// route round-robin across backends, so throughput climbs with the
// replica count while db.wait falls.
func BenchmarkScaleoutReplicas(b *testing.B) {
	for _, replicas := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("replicas=%d", replicas), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := runMini(b, variant.Modified, func(cfg *harness.Config) {
					cfg.Replicas = replicas
					cfg.DBConns = 4
				})
				b.ReportMetric(float64(res.TotalInteractions), "interactions")
				b.ReportMetric(harness.SeriesMax(res.Series[variant.ProbeDBWait]), "db-waits")
			}
		})
	}
}

// BenchmarkDBTierFanOut measures the raw tier write path as replicas
// grow: every Exec is applied synchronously to each backend, so per-op
// cost is the price the ordering mix pays for read scale-out.
func BenchmarkDBTierFanOut(b *testing.B) {
	for _, replicas := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("replicas=%d", replicas), func(b *testing.B) {
			db := sqldb.Open(sqldb.Options{Cost: sqldb.ZeroCostModel()})
			db.MustCreateTable(sqldb.Schema{
				Table:      "kv",
				Columns:    []sqldb.Column{{Name: "id", Type: sqldb.Int}, {Name: "v", Type: sqldb.String}},
				PrimaryKey: "id",
			})
			tier := dbtier.New(db, dbtier.Options{Replicas: replicas, Conns: 2})
			defer tier.Close()
			c := tier.Conn()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Exec("INSERT INTO kv (id, v) VALUES (?, 'x')", i+1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMVCCReadHotWriteHot measures the tentpole claim of the MVCC
// engine directly: point SELECTs against a hot table while background
// writers continuously update the same rows, each write charging
// paper-time cost. Under lock mode every reader queues behind the
// writer's cost sleep (it is charged while the table write lock is
// held); under mvcc mode reads run against a snapshot and never wait,
// so per-read latency should be orders of magnitude lower.
func BenchmarkMVCCReadHotWriteHot(b *testing.B) {
	for _, mode := range []struct {
		name string
		mvcc bool
	}{{"lock", false}, {"mvcc", true}} {
		b.Run(mode.name, func(b *testing.B) {
			db := sqldb.Open(sqldb.Options{
				Cost: &sqldb.CostModel{PerStatement: 200 * time.Microsecond},
			})
			db.SetMVCC(mode.mvcc)
			db.MustCreateTable(sqldb.Schema{
				Table:      "hot",
				Columns:    []sqldb.Column{{Name: "id", Type: sqldb.Int}, {Name: "v", Type: sqldb.Int}},
				PrimaryKey: "id",
			})
			seed := db.Connect()
			for i := 1; i <= 16; i++ {
				if _, err := seed.Exec("INSERT INTO hot (id, v) VALUES (?, 0)", i); err != nil {
					b.Fatal(err)
				}
			}
			seed.Close()
			stop := make(chan struct{})
			done := make(chan struct{})
			for w := 0; w < 2; w++ {
				go func(w int) {
					defer func() { done <- struct{}{} }()
					c := db.Connect()
					defer c.Close()
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						if _, err := c.Exec("UPDATE hot SET v = ? WHERE id = ?", i, i%16+1); err != nil {
							b.Error(err)
							return
						}
					}
				}(w)
			}
			c := db.Connect()
			defer c.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Query("SELECT v FROM hot WHERE id = ?", i%16+1); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			close(stop)
			<-done
			<-done
			b.ReportMetric(float64(db.Conflicts()), "conflicts")
			b.ReportMetric(float64(db.SnapshotReads()), "snapshot-reads")
		})
	}
}

// BenchmarkMVCCReplicationModes measures the tier write path as replicas
// grow under each replication mode: sync waits for every replica to
// apply before Exec returns (per-op cost scales with the replica count);
// async only appends to the replication log, so per-op cost stays flat.
func BenchmarkMVCCReplicationModes(b *testing.B) {
	for _, mode := range []struct {
		name  string
		async bool
	}{{"sync", false}, {"async", true}} {
		for _, replicas := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("%s/replicas=%d", mode.name, replicas), func(b *testing.B) {
				db := sqldb.Open(sqldb.Options{Cost: sqldb.ZeroCostModel()})
				db.SetMVCC(true)
				db.MustCreateTable(sqldb.Schema{
					Table:      "kv",
					Columns:    []sqldb.Column{{Name: "id", Type: sqldb.Int}, {Name: "v", Type: sqldb.String}},
					PrimaryKey: "id",
				})
				tier := dbtier.New(db, dbtier.Options{Replicas: replicas, Conns: 2, Async: mode.async})
				defer tier.Close()
				c := tier.Conn()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := c.Exec("INSERT INTO kv (id, v) VALUES (?, 'x')", i+1); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				tier.Sync()
			})
		}
	}
}

// BenchmarkAblationNoReserve compares the full staged server against the
// ModifiedNoReserve topology variant (t_reserve controller ablated) —
// instantiated purely from harness configuration.
func BenchmarkAblationNoReserve(b *testing.B) {
	for _, v := range []string{variant.Modified, variant.ModifiedNoReserve} {
		b.Run(v, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := runMini(b, v, nil)
				b.ReportMetric(float64(res.TotalInteractions), "interactions")
				b.ReportMetric(res.Pages[tpcw.PageHome].MeanPaperSec, "home-sec")
			}
		})
	}
}

// ---- Ablations (README.md "Design notes") ----

// BenchmarkAblationConnPlacement compares the two connection-placement
// strategies directly: per-worker connections doing everything
// (baseline) vs connections bound to dynamic workers only (staged).
func BenchmarkAblationConnPlacement(b *testing.B) {
	for _, v := range []string{variant.Unmodified, variant.Modified} {
		b.Run(v, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := runMini(b, v, nil)
				b.ReportMetric(float64(res.TotalInteractions), "interactions")
			}
		})
	}
}

// BenchmarkAblationSinglePool disables the two-pool split by raising the
// cutoff above any page's service time: every dynamic request lands in
// the general pool, as in a single-dynamic-pool design.
func BenchmarkAblationSinglePool(b *testing.B) {
	for _, split := range []bool{true, false} {
		name := "two-pools"
		if !split {
			name = "single-pool"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := runMini(b, variant.Modified, func(cfg *harness.Config) {
					if !split {
						cfg.Cutoff = time.Hour // nothing classifies lengthy
					}
				})
				b.ReportMetric(float64(res.TotalInteractions), "interactions")
				b.ReportMetric(res.Pages[tpcw.PageHome].MeanPaperSec, "home-sec")
			}
		})
	}
}

// BenchmarkAblationPoolRatio sweeps the general:lengthy worker ratio the
// paper fixes at 4:1, holding the total connection budget constant.
func BenchmarkAblationPoolRatio(b *testing.B) {
	const budget = 26
	for _, lengthy := range []int{2, 5, 9, 13} {
		b.Run(fmt.Sprintf("lengthy-%d-of-%d", lengthy, budget), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := runMini(b, variant.Modified, func(cfg *harness.Config) {
					cfg.GeneralWorkers = budget - lengthy
					cfg.LengthyWorkers = lengthy
				})
				b.ReportMetric(float64(res.TotalInteractions), "interactions")
				b.ReportMetric(res.Pages[tpcw.PageBestSellers].MeanPaperSec, "bestsellers-sec")
			}
		})
	}
}

// BenchmarkAblationCutoff sweeps the quick/lengthy boundary around the
// paper's 2 s choice.
func BenchmarkAblationCutoff(b *testing.B) {
	for _, cutoff := range []time.Duration{500 * time.Millisecond, 2 * time.Second, 8 * time.Second} {
		b.Run(cutoff.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := runMini(b, variant.Modified, func(cfg *harness.Config) {
					cfg.Cutoff = cutoff
				})
				b.ReportMetric(res.Pages[tpcw.PageHome].MeanPaperSec, "home-sec")
				b.ReportMetric(float64(res.TotalInteractions), "interactions")
			}
		})
	}
}

// BenchmarkAblationDeferredRender compares the paper's deferred-render
// return style against eagerly rendering inside the handler (the
// backward-compatibility path, which keeps rendering on the
// connection-holding worker).
func BenchmarkAblationDeferredRender(b *testing.B) {
	// The eager case is approximated by charging render work on the
	// dynamic worker: with zero render cost the difference vanishes, so
	// compare normal work cost vs render cost folded into the DB side.
	b.Run("deferred", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res := runMini(b, variant.Modified, nil)
			b.ReportMetric(float64(res.TotalInteractions), "interactions")
		}
	})
	b.Run("eager-on-db-worker", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res := runMini(b, variant.Modified, func(cfg *harness.Config) {
				// Move the render cost into the per-statement database
				// charge: the conn-holding worker pays it, as the
				// unmodified return style would.
				cfg.Work.RenderBase = 0
				cfg.Work.RenderPerKB = 0
				cfg.Cost.PerStatement += 25 * time.Millisecond
			})
			b.ReportMetric(float64(res.TotalInteractions), "interactions")
		}
	})
}

// ---- substrate micro-benchmarks ----

// benchConn is a no-op net.Conn for transport allocation benchmarks.
type benchConn struct{}

func (benchConn) Read([]byte) (int, error)         { return 0, fmt.Errorf("eof") }
func (benchConn) Write(p []byte) (int, error)      { return len(p), nil }
func (benchConn) Close() error                     { return nil }
func (benchConn) LocalAddr() net.Addr              { return nil }
func (benchConn) RemoteAddr() net.Addr             { return nil }
func (benchConn) SetDeadline(time.Time) error      { return nil }
func (benchConn) SetReadDeadline(time.Time) error  { return nil }
func (benchConn) SetWriteDeadline(time.Time) error { return nil }

// BenchmarkTransportConnSetup measures per-connection buffered-I/O setup,
// the hot path of accept-heavy workloads (closed connections, shed
// keep-alives). "unpooled" allocates a fresh bufio reader/writer pair per
// connection, the pre-transport behaviour of both servers; "pooled" is
// the shared transport's sync.Pool reuse. Measured on a Xeon @2.10GHz:
// unpooled 2 allocs/op and 8192 B/op (the two 4 KiB buffers, ~1165
// ns/op); pooled 1 alloc/op and 80 B/op (just the Conn header, ~116
// ns/op) — a 100x reduction in per-connection buffer garbage and 10x
// less setup time.
func BenchmarkTransportConnSetup(b *testing.B) {
	b.Run("unpooled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			br := bufio.NewReader(benchConn{})
			bw := bufio.NewWriter(benchConn{})
			_, _ = br, bw
		}
	})
	b.Run("pooled", func(b *testing.B) {
		tr := server.NewTransport(server.TransportConfig{})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c := tr.NewConn(benchConn{})
			c.Close()
		}
	})
}

func BenchmarkTemplateRenderTPCWPage(b *testing.B) {
	set := template.NewSet()
	set.AddAll(tpcw.Templates())
	rows := make([]map[string]any, 50)
	for i := range rows {
		rows[i] = map[string]any{
			"i_id": i, "i_title": "SOME BOOK TITLE", "i_cost": 12.34,
			"a_fname": "First", "a_lname": "Last", "qty": int64(10),
		}
	}
	data := map[string]any{"subject": "ARTS", "results": rows}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := set.Render("best_sellers.html", data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSQLPointQuery(b *testing.B) {
	db := sqldb.Open(sqldb.Options{Cost: sqldb.ZeroCostModel()})
	if err := tpcw.CreateTables(db); err != nil {
		b.Fatal(err)
	}
	if _, err := tpcw.Populate(db, tpcw.PopulateConfig{Items: 1000, Customers: 100, Orders: 80}); err != nil {
		b.Fatal(err)
	}
	c := db.Connect()
	defer c.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Query("SELECT i_title, i_cost FROM item WHERE i_id = ?", i%1000+1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSQLScanQuery(b *testing.B) {
	db := sqldb.Open(sqldb.Options{Cost: sqldb.ZeroCostModel()})
	if err := tpcw.CreateTables(db); err != nil {
		b.Fatal(err)
	}
	if _, err := tpcw.Populate(db, tpcw.PopulateConfig{Items: 1000, Customers: 100, Orders: 80}); err != nil {
		b.Fatal(err)
	}
	c := db.Connect()
	defer c.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Query(
			"SELECT i_id FROM item JOIN author ON i_a_id = a_id WHERE i_subject = ? ORDER BY i_pub_date DESC LIMIT 50",
			tpcw.Subjects[i%len(tpcw.Subjects)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSQLBestSellersAggregate(b *testing.B) {
	db := sqldb.Open(sqldb.Options{Cost: sqldb.ZeroCostModel()})
	if err := tpcw.CreateTables(db); err != nil {
		b.Fatal(err)
	}
	if _, err := tpcw.Populate(db, tpcw.PopulateConfig{Items: 1000, Customers: 100, Orders: 200}); err != nil {
		b.Fatal(err)
	}
	c := db.Connect()
	defer c.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Query(
			`SELECT i_id, i_title, SUM(ol_qty) AS qty FROM order_line
			 JOIN item ON ol_i_id = i_id WHERE ol_o_id > 0 GROUP BY i_id
			 ORDER BY qty DESC LIMIT 50`); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWorkCostModel(b *testing.B) {
	w := server.DefaultWorkCost()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = w.Render(12 << 10)
		_ = w.Static(4 << 10)
	}
}

func BenchmarkClassifierRecord(b *testing.B) {
	cls := sched.NewClassifier(sched.DefaultCutoff)
	pages := tpcw.Pages
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cls.Record(pages[i%len(pages)], time.Duration(i%1000)*time.Millisecond)
	}
}

func BenchmarkTemplateParse(b *testing.B) {
	srcs := tpcw.Templates()
	src := srcs["best_sellers.html"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		set := template.NewSet()
		set.AddAll(srcs)
		set.Add("bench.html", src)
		if _, err := set.Get("bench.html"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMixPick(b *testing.B) {
	// Deterministic weighted picking from the browsing mix.
	m := tpcw.NewMix(tpcw.BrowsingMix)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Pick(rng)
	}
}
