// Package stage implements the generic stage-graph runtime both server
// variants are built on.
//
// A Stage couples a bounded pool.Queue with a fixed-size pool.Pool of
// workers and tracks the per-stage gauges the DSN'09 evaluation reads:
// queue depth (Figures 7 and 8), busy/spare workers (t_spare), completed
// items, and shed items. A Graph owns an ordered set of stages, starts
// them together, drains them in flow order on Stop, and exposes one
// uniform stats snapshot for harnesses and operational tooling.
//
// The paper's fixed five-pool topology (package core) and the
// thread-per-request baseline (package server) are both expressed as
// graphs over this runtime; new topology variants are configuration, not
// new server code.
package stage

import (
	"errors"
	"fmt"

	"stagedweb/internal/metrics"
	"stagedweb/internal/pool"
)

// Backpressure selects what Submit does when the stage queue is full.
type Backpressure int

const (
	// Block makes Submit wait for queue space — the CherryPy behaviour
	// the paper models, where the listener blocks on the synchronized
	// queue.
	Block Backpressure = iota
	// Shed makes Submit drop the item when the queue is full (counted in
	// Stats.Shed). Load-shedding stages use this to bound latency.
	Shed
)

// ErrClosed reports a submit to a stopped stage.
var ErrClosed = errors.New("stage: closed")

// ErrShed reports an item dropped by a Shed-policy stage (or Offer) on a
// full queue.
var ErrShed = errors.New("stage: shed on full queue")

// Config describes one stage.
type Config[T any] struct {
	// Name identifies the stage in stats and panics. Required.
	Name string
	// Workers is the fixed worker count. Required, positive.
	Workers int
	// QueueCap bounds the stage queue. Defaults to 4096.
	QueueCap int
	// Backpressure selects Submit's full-queue behaviour (default Block).
	Backpressure Backpressure
	// Work processes one item on a stage worker. Required.
	Work func(T)
}

// Stage is one node of the graph: a bounded queue drained by a fixed
// worker pool.
type Stage[T any] struct {
	name   string
	policy Backpressure
	queue  *pool.Queue[T]
	pool   *pool.Pool[T]
	shed   metrics.Counter
}

// New builds an unstarted stage. It panics on an invalid configuration,
// mirroring pool.New.
func New[T any](cfg Config[T]) *Stage[T] {
	if cfg.Name == "" {
		panic("stage: empty name")
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 4096
	}
	s := &Stage[T]{
		name:   cfg.Name,
		policy: cfg.Backpressure,
		queue:  pool.NewQueue[T](cfg.QueueCap),
	}
	s.pool = pool.New(cfg.Name, cfg.Workers, s.queue, cfg.Work)
	return s
}

// Start launches the stage workers. It panics if called twice.
func (s *Stage[T]) Start() { s.pool.Start() }

// Stop closes the stage queue and waits for the workers to drain it and
// finish in-flight work. Idempotent.
func (s *Stage[T]) Stop() { s.pool.Stop() }

// Submit enqueues item following the stage's backpressure policy: Block
// stages wait for space, Shed stages drop (returning ErrShed) when full.
// ErrClosed reports a stopped stage.
func (s *Stage[T]) Submit(item T) error {
	if s.policy == Shed {
		return s.Offer(item)
	}
	if err := s.queue.Put(item); err != nil {
		return fmt.Errorf("%w: %s", ErrClosed, s.name)
	}
	return nil
}

// Offer enqueues item without ever blocking, regardless of policy. A full
// queue sheds the item (counted, ErrShed); a stopped stage reports
// ErrClosed.
func (s *Stage[T]) Offer(item T) error {
	ok, err := s.queue.TryPut(item)
	if err != nil {
		return fmt.Errorf("%w: %s", ErrClosed, s.name)
	}
	if !ok {
		s.shed.Inc()
		return fmt.Errorf("%w: %s", ErrShed, s.name)
	}
	return nil
}

// Name reports the stage name.
func (s *Stage[T]) Name() string { return s.name }

// Workers reports the configured worker count.
func (s *Stage[T]) Workers() int { return s.pool.Size() }

// Busy reports workers currently executing work.
func (s *Stage[T]) Busy() int { return s.pool.Busy() }

// Spare reports idle workers — the paper's t_spare when read on the
// general dynamic stage.
func (s *Stage[T]) Spare() int { return s.pool.Spare() }

// Depth reports the current queue length — the quantity plotted in
// Figures 7 and 8.
func (s *Stage[T]) Depth() int { return s.queue.Len() }

// Completed reports items fully processed by this stage.
func (s *Stage[T]) Completed() int64 { return s.pool.Completed() }

// ShedCount reports items dropped on a full queue.
func (s *Stage[T]) ShedCount() int64 { return s.shed.Value() }

// Stats is one stage's uniform snapshot.
type Stats struct {
	Name      string
	Workers   int
	Busy      int
	Spare     int
	Depth     int
	QueueCap  int
	MaxDepth  int
	Enqueued  int64
	Dequeued  int64
	Completed int64
	Shed      int64
	Closed    bool
}

// Stats snapshots the stage's gauges and counters.
func (s *Stage[T]) Stats() Stats {
	qs := s.queue.Stats()
	return Stats{
		Name:      s.name,
		Workers:   s.pool.Size(),
		Busy:      s.pool.Busy(),
		Spare:     s.pool.Spare(),
		Depth:     qs.Len,
		QueueCap:  qs.Cap,
		MaxDepth:  qs.MaxLen,
		Enqueued:  qs.Enqueued,
		Dequeued:  qs.Dequeued,
		Completed: s.pool.Completed(),
		Shed:      s.shed.Value(),
		Closed:    qs.Closed,
	}
}

// String renders a compact one-line view, e.g.
// "general[workers:21 busy:3 depth:0]".
func (s Stats) String() string {
	return fmt.Sprintf("%s[workers:%d busy:%d depth:%d/%d completed:%d shed:%d]",
		s.Name, s.Workers, s.Busy, s.Depth, s.QueueCap, s.Completed, s.Shed)
}
