package stage

import (
	"fmt"
	"strings"
	"sync"
)

// Member is the non-generic face of a Stage[T], letting a Graph own
// stages of heterogeneous item types.
type Member interface {
	Name() string
	Start()
	Stop()
	Depth() int
	Stats() Stats
}

// Graph owns an ordered set of stages. The order stages are added is the
// request flow order: Stop drains front to back, so every upstream stage
// finishes (and stops producing) before its downstream stages close.
type Graph struct {
	mu      sync.Mutex
	stages  []Member
	byName  map[string]Member
	started bool
	stopped bool
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{byName: make(map[string]Member, 8)}
}

// Add appends stages in flow order. It panics on a duplicate name or
// after Start.
func (g *Graph) Add(members ...Member) *Graph {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.started {
		panic("stage: Add after Start")
	}
	for _, m := range members {
		if _, dup := g.byName[m.Name()]; dup {
			panic(fmt.Sprintf("stage: duplicate stage %q", m.Name()))
		}
		g.byName[m.Name()] = m
		g.stages = append(g.stages, m)
	}
	return g
}

// Start launches every stage. It panics if called twice.
func (g *Graph) Start() {
	g.mu.Lock()
	if g.started {
		g.mu.Unlock()
		panic("stage: graph started twice")
	}
	g.started = true
	stages := g.stages
	g.mu.Unlock()
	for _, m := range stages {
		m.Start()
	}
}

// Stop drains the graph in flow order: each stage's queue is closed and
// its workers awaited before the next stage is stopped, so in-flight
// requests complete their remaining downstream hops. Idempotent.
func (g *Graph) Stop() {
	g.mu.Lock()
	if g.stopped {
		g.mu.Unlock()
		return
	}
	g.stopped = true
	stages := g.stages
	g.mu.Unlock()
	for _, m := range stages {
		m.Stop()
	}
}

// Stage looks a member up by name.
func (g *Graph) Stage(name string) (Member, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	m, ok := g.byName[name]
	return m, ok
}

// Stats snapshots every stage in flow order.
func (g *Graph) Stats() []Stats {
	g.mu.Lock()
	stages := g.stages
	g.mu.Unlock()
	out := make([]Stats, len(stages))
	for i, m := range stages {
		out[i] = m.Stats()
	}
	return out
}

// Depths reports every stage's queue depth keyed by stage name — the
// QueueLens view the harness samples.
func (g *Graph) Depths() map[string]int {
	g.mu.Lock()
	stages := g.stages
	g.mu.Unlock()
	out := make(map[string]int, len(stages))
	for _, m := range stages {
		out[m.Name()] = m.Depth()
	}
	return out
}

// String renders the topology, e.g. "header:8 -> static:16 -> ...".
func (g *Graph) String() string {
	g.mu.Lock()
	stages := g.stages
	g.mu.Unlock()
	parts := make([]string, len(stages))
	for i, m := range stages {
		st := m.Stats()
		parts[i] = fmt.Sprintf("%s:%d", st.Name, st.Workers)
	}
	return strings.Join(parts, " -> ")
}
