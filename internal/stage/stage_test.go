package stage

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestStageProcessesItems(t *testing.T) {
	var sum atomic.Int64
	s := New(Config[int]{Name: "adder", Workers: 4, QueueCap: 16, Work: func(n int) {
		sum.Add(int64(n))
	}})
	s.Start()
	for i := 1; i <= 100; i++ {
		if err := s.Submit(i); err != nil {
			t.Fatal(err)
		}
	}
	s.Stop()
	if got := sum.Load(); got != 5050 {
		t.Fatalf("sum = %d, want 5050", got)
	}
	st := s.Stats()
	if st.Completed != 100 || st.Enqueued != 100 || st.Dequeued != 100 {
		t.Fatalf("stats = %+v", st)
	}
	if !st.Closed || st.Busy != 0 || st.Depth != 0 {
		t.Fatalf("post-stop stats = %+v", st)
	}
}

func TestStageSubmitAfterStop(t *testing.T) {
	s := New(Config[int]{Name: "x", Workers: 1, Work: func(int) {}})
	s.Start()
	s.Stop()
	if err := s.Submit(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Stop = %v, want ErrClosed", err)
	}
	if err := s.Offer(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Offer after Stop = %v, want ErrClosed", err)
	}
}

func TestStageShedPolicy(t *testing.T) {
	release := make(chan struct{})
	s := New(Config[int]{Name: "sheddy", Workers: 1, QueueCap: 1, Backpressure: Shed,
		Work: func(int) { <-release }})
	s.Start()
	defer func() { close(release); s.Stop() }()

	// First item occupies the worker, second fills the queue.
	if err := s.Submit(1); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return s.Busy() == 1 })
	if err := s.Submit(2); err != nil {
		t.Fatal(err)
	}
	// Queue is now full: a Shed-policy Submit must drop, not block.
	if err := s.Submit(3); !errors.Is(err, ErrShed) {
		t.Fatalf("Submit on full shed stage = %v, want ErrShed", err)
	}
	if got := s.ShedCount(); got != 1 {
		t.Fatalf("ShedCount = %d, want 1", got)
	}
}

func TestStageOfferShedsOnBlockStage(t *testing.T) {
	release := make(chan struct{})
	s := New(Config[int]{Name: "blocky", Workers: 1, QueueCap: 1, Work: func(int) { <-release }})
	s.Start()
	defer func() { close(release); s.Stop() }()
	if err := s.Submit(1); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return s.Busy() == 1 })
	if err := s.Submit(2); err != nil {
		t.Fatal(err)
	}
	if err := s.Offer(3); !errors.Is(err, ErrShed) {
		t.Fatalf("Offer on full stage = %v, want ErrShed", err)
	}
	if s.Stats().Shed != 1 {
		t.Fatalf("Shed = %d, want 1", s.Stats().Shed)
	}
}

func TestStageGauges(t *testing.T) {
	release := make(chan struct{})
	s := New(Config[int]{Name: "gauges", Workers: 2, QueueCap: 8, Work: func(int) { <-release }})
	if s.Workers() != 2 || s.Spare() != 2 || s.Depth() != 0 {
		t.Fatalf("idle gauges: workers=%d spare=%d depth=%d", s.Workers(), s.Spare(), s.Depth())
	}
	s.Start()
	for i := 0; i < 3; i++ {
		if err := s.Submit(i); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return s.Busy() == 2 && s.Depth() == 1 })
	if s.Spare() != 0 {
		t.Fatalf("Spare = %d, want 0", s.Spare())
	}
	close(release)
	s.Stop()
	if s.Stats().MaxDepth < 1 {
		t.Fatalf("MaxDepth = %d, want >= 1", s.Stats().MaxDepth)
	}
	if got := s.Stats().String(); !strings.Contains(got, "gauges[") {
		t.Fatalf("Stats.String = %q", got)
	}
}

func TestStageConfigValidation(t *testing.T) {
	assertPanics(t, "empty name", func() { New(Config[int]{Workers: 1, Work: func(int) {}}) })
	assertPanics(t, "zero workers", func() { New(Config[int]{Name: "x", Work: func(int) {}}) })
	assertPanics(t, "nil work", func() { New(Config[int]{Name: "x", Workers: 1}) })
	assertPanics(t, "double start", func() {
		s := New(Config[int]{Name: "x", Workers: 1, Work: func(int) {}})
		s.Start()
		defer s.Stop()
		s.Start()
	})
}

func TestGraphLifecycleAndStats(t *testing.T) {
	var order []string
	var mu sync.Mutex
	noteStop := func(name string) {
		mu.Lock()
		order = append(order, name)
		mu.Unlock()
	}

	// a feeds b: on Stop, a must fully drain before b closes so nothing
	// in flight is lost.
	var bDone atomic.Int64
	var b *Stage[int]
	b = New(Config[int]{Name: "b", Workers: 2, Work: func(int) {
		time.Sleep(time.Millisecond)
		bDone.Add(1)
	}})
	a := New(Config[int]{Name: "a", Workers: 2, Work: func(n int) {
		if err := b.Submit(n); err != nil {
			t.Errorf("downstream closed while upstream draining: %v", err)
		}
	}})

	g := NewGraph().Add(&stopNoter{Stage: a, note: noteStop}, &stopNoter{Stage: b, note: noteStop})
	g.Start()
	for i := 0; i < 50; i++ {
		if err := a.Submit(i); err != nil {
			t.Fatal(err)
		}
	}
	g.Stop()
	if got := bDone.Load(); got != 50 {
		t.Fatalf("items through both stages = %d, want 50", got)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("stop order = %v, want [a b]", order)
	}

	stats := g.Stats()
	if len(stats) != 2 || stats[0].Name != "a" || stats[1].Name != "b" {
		t.Fatalf("stats = %+v", stats)
	}
	for _, st := range stats {
		if !st.Closed || st.Busy != 0 || st.Depth != 0 {
			t.Fatalf("stage %s not drained: %+v", st.Name, st)
		}
	}
	if d := g.Depths(); d["a"] != 0 || d["b"] != 0 {
		t.Fatalf("Depths = %v", d)
	}
	if _, ok := g.Stage("a"); !ok {
		t.Fatal("Stage(a) not found")
	}
	if _, ok := g.Stage("zzz"); ok {
		t.Fatal("Stage(zzz) found")
	}
	if s := g.String(); !strings.Contains(s, "a:2 -> b:2") {
		t.Fatalf("String = %q", s)
	}

	// Stop is idempotent.
	g.Stop()
}

func TestGraphValidation(t *testing.T) {
	mk := func(name string) *Stage[int] {
		return New(Config[int]{Name: name, Workers: 1, Work: func(int) {}})
	}
	assertPanics(t, "duplicate name", func() { NewGraph().Add(mk("dup"), mk("dup")) })
	assertPanics(t, "double start", func() {
		g := NewGraph().Add(mk("s"))
		g.Start()
		defer g.Stop()
		g.Start()
	})
	assertPanics(t, "add after start", func() {
		g := NewGraph().Add(mk("s1"))
		g.Start()
		defer g.Stop()
		g.Add(mk("s2"))
	})
}

// stopNoter wraps a stage to record Stop order.
type stopNoter struct {
	*Stage[int]
	note func(string)
}

func (n *stopNoter) Stop() {
	n.note(n.Name())
	n.Stage.Stop()
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(time.Millisecond)
	}
}

func assertPanics(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: no panic", name)
		}
	}()
	fn()
}
