package harness

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"stagedweb/internal/variant"
)

// Scenario is one cell of an experiment matrix: a unique label plus the
// full run configuration (variant name, load level, setting mutations).
// Build cells from a base config with Config.With:
//
//	harness.Scenario{
//		Name:   "modified/ebs=200",
//		Config: base.With(func(c *harness.Config) { c.EBs = 200 }),
//	}
type Scenario struct {
	// Name labels the cell in reports and artifact files; it must be
	// unique within a sweep.
	Name string `json:"name"`
	// Config is the complete run configuration.
	Config Config `json:"config"`
}

// LoadSpec names one load-profile cell of a scenario matrix: a
// registered profile plus its settings.
type LoadSpec struct {
	// Profile is the registered load-profile name (load.Steady,
	// load.Spike, ...); empty means steady.
	Profile string
	// Set holds the profile settings for this cell.
	Set variant.Settings
}

// Matrix builds the variant × load-profile scenario grid from a base
// config: one cell per pair, named "variant/profile". Both registries
// are open, so any topology can meet any workload shape with no new
// harness code.
func Matrix(base Config, variants []string, loads []LoadSpec) []Scenario {
	out := make([]Scenario, 0, len(variants)*len(loads))
	for _, v := range variants {
		for _, ld := range loads {
			cfg := base.With(func(c *Config) {
				c.Variant = v
				c.Kind = 0
				c.Load = ld.Profile
				c.LoadSet = ld.Set.Clone()
			})
			out = append(out, Scenario{Name: v + "/" + cfg.LoadName(), Config: cfg})
		}
	}
	return out
}

// ShardMatrix builds the shards × replicas × load-profile scenario grid
// from a base config: one cell per combination, named
// "shards=M/replicas=R/profile". Every cell — shards=1 included — runs
// through the cluster balancer, so cells differ only in shard count,
// not in topology. Empty shards or replicas axes collapse to the base
// config's value.
func ShardMatrix(base Config, shards, replicas []int, loads []LoadSpec) []Scenario {
	if len(shards) == 0 {
		shards = []int{base.Shards}
	}
	if len(replicas) == 0 {
		replicas = []int{base.Replicas}
	}
	out := make([]Scenario, 0, len(shards)*len(replicas)*len(loads))
	for _, m := range shards {
		for _, r := range replicas {
			for _, ld := range loads {
				m, r := m, r
				cfg := base.With(func(c *Config) {
					c.Shards = m
					c.Replicas = r
					c.Load = ld.Profile
					c.LoadSet = ld.Set.Clone()
				})
				name := fmt.Sprintf("shards=%d/replicas=%d/%s", m, r, cfg.LoadName())
				out = append(out, Scenario{Name: name, Config: cfg})
			}
		}
	}
	return out
}

// SweepRun is one finished (or failed) scenario of a sweep.
type SweepRun struct {
	Scenario Scenario
	// Result is nil when the run failed or was cancelled.
	Result *Result
	Err    error
}

// SweepResult collects a sweep's runs in scenario order.
type SweepResult struct {
	Runs []SweepRun
}

// Result returns the named scenario's result, or nil if it is missing
// or failed.
func (sr *SweepResult) Result(name string) *Result {
	for _, r := range sr.Runs {
		if r.Scenario.Name == name {
			return r.Result
		}
	}
	return nil
}

// GainPercent generalises the paper's headline number to any pair of
// scenarios: the test scenario's total-interaction gain over base.
func (sr *SweepResult) GainPercent(base, test string) float64 {
	return ThroughputGainPercent(sr.Result(base), sr.Result(test))
}

// Report renders a comparative table of every run, with throughput gain
// computed against the sweep's first scenario.
func (sr *SweepResult) Report() string {
	var sb strings.Builder
	if len(sr.Runs) == 0 {
		return "sweep: no runs\n"
	}
	base := sr.Runs[0].Scenario.Name
	fmt.Fprintf(&sb, "sweep report (gain vs %s)\n", base)
	fmt.Fprintf(&sb, "%-32s %13s %8s %8s %8s %7s %9s %10s %8s\n",
		"scenario", "interactions", "errors", "p99", "p999", "slo", "recovery", "wall", "gain")
	sb.WriteString(strings.Repeat("-", 110) + "\n")
	for _, r := range sr.Runs {
		if r.Err != nil {
			fmt.Fprintf(&sb, "%-32s failed: %v\n", r.Scenario.Name, r.Err)
			continue
		}
		if r.Result == nil {
			fmt.Fprintf(&sb, "%-32s (not run)\n", r.Scenario.Name)
			continue
		}
		gain := "-"
		if r.Scenario.Name != base {
			gain = fmt.Sprintf("%+.1f%%", sr.GainPercent(base, r.Scenario.Name))
		}
		fmt.Fprintf(&sb, "%-32s %13d %8d %7.2fs %7.2fs %6.1f%% %9s %10v %8s\n",
			r.Scenario.Name, r.Result.TotalInteractions, r.Result.Errors,
			r.Result.P99PaperSec, r.Result.P999PaperSec, r.Result.SLOAttained*100,
			recoveryCell(r.Result),
			r.Result.WallDuration.Round(time.Millisecond), gain)
	}
	return sb.String()
}

// recoveryCell renders a run's recovery column: "-" for fault-free
// runs, "no-inj" when the plan never fired inside the window, "never"
// when SLO attainment did not come back, and the paper-time recovery
// otherwise.
func recoveryCell(res *Result) string {
	if res.FaultPlan == "" {
		return "-"
	}
	switch {
	case res.FaultPaperSec < 0:
		return "no-inj"
	case res.RecoveryPaperSec < 0:
		return "never"
	default:
		return fmt.Sprintf("%.0fs", res.RecoveryPaperSec)
	}
}

// SweepOptions tunes a sweep.
type SweepOptions struct {
	// Parallelism bounds concurrently executing runs; values below 2
	// run sequentially. Concurrent runs share the host's cores, so
	// timing fidelity degrades — keep sweeps sequential when the
	// numbers matter and parallel when shape-scanning a large matrix.
	Parallelism int
	// OnResult, when set, is invoked as each scenario finishes (in
	// completion order) — progress reporting for CLIs. Calls are
	// serialized.
	OnResult func(Scenario, *Result, error)
}

// Sweep executes the scenario matrix sequentially. See SweepWith.
func Sweep(ctx context.Context, scenarios []Scenario) (*SweepResult, error) {
	return SweepWith(ctx, SweepOptions{}, scenarios)
}

// SweepWith executes every scenario, honouring ctx between runs (a run
// in flight is not interrupted — experiments are short at the usual
// timescales). The returned SweepResult always has one entry per
// scenario in input order; the error joins every per-run failure plus
// the context's, so partial results remain usable alongside a non-nil
// error.
func SweepWith(ctx context.Context, opts SweepOptions, scenarios []Scenario) (*SweepResult, error) {
	seen := make(map[string]bool, len(scenarios))
	for _, sc := range scenarios {
		if sc.Name == "" {
			return nil, fmt.Errorf("harness: sweep scenario with empty name")
		}
		if seen[sc.Name] {
			return nil, fmt.Errorf("harness: duplicate sweep scenario %q", sc.Name)
		}
		seen[sc.Name] = true
	}

	sr := &SweepResult{Runs: make([]SweepRun, len(scenarios))}
	workers := opts.Parallelism
	if workers < 1 {
		workers = 1
	}
	if workers > len(scenarios) {
		workers = len(scenarios)
	}

	var (
		mu   sync.Mutex // guards OnResult
		wg   sync.WaitGroup
		sem  = make(chan struct{}, workers)
		errs = make([]error, len(scenarios)+1)
	)
	for i, sc := range scenarios {
		sr.Runs[i] = SweepRun{Scenario: sc}
		skip := ctx.Err()
		if skip == nil {
			select {
			case <-ctx.Done():
				skip = ctx.Err()
			case sem <- struct{}{}:
			}
		}
		if skip != nil {
			sr.Runs[i].Err = skip
			errs[i] = fmt.Errorf("%s: %w", sc.Name, skip)
			continue
		}
		wg.Add(1)
		go func(i int, sc Scenario) {
			defer wg.Done()
			defer func() { <-sem }()
			res, err := Run(sc.Config)
			if err != nil {
				err = fmt.Errorf("%s: %w", sc.Name, err)
			}
			sr.Runs[i].Result, sr.Runs[i].Err = res, err
			errs[i] = err
			if opts.OnResult != nil {
				mu.Lock()
				opts.OnResult(sc, res, err)
				mu.Unlock()
			}
		}(i, sc)
	}
	wg.Wait()
	errs[len(scenarios)] = ctx.Err()
	return sr, errors.Join(errs...)
}
