package harness

import (
	"fmt"
	"io"
	"strings"

	"stagedweb/internal/clock"
	"stagedweb/internal/metrics"
	"stagedweb/internal/variant"
)

// AsciiPlot renders a series as a terminal plot: value on the y axis,
// series offset on the x axis, compressed to the given width. It is the
// harness's stand-in for the paper's gnuplot figures. The x axis is
// labeled in wall time; use AsciiPlotScaled to label in paper time.
func AsciiPlot(title, yLabel string, s *metrics.Series, width, height int) string {
	return AsciiPlotScaled(title, yLabel, s, width, height, clock.RealTime)
}

// AsciiPlotScaled is AsciiPlot with the x axis converted to paper time
// through the given timescale.
func AsciiPlotScaled(title, yLabel string, s *metrics.Series, width, height int, scale clock.Timescale) string {
	if width <= 0 {
		width = 64
	}
	if height <= 0 {
		height = 12
	}
	var pts []metrics.Point
	if s != nil {
		pts = s.Points()
	}
	var sb strings.Builder
	sb.WriteString(title + "\n")
	if len(pts) == 0 {
		sb.WriteString("(no data)\n")
		return sb.String()
	}

	// Compress to width columns by averaging.
	cols := make([]float64, width)
	if len(pts) < width {
		width = len(pts)
		cols = cols[:width]
	}
	per := float64(len(pts)) / float64(width)
	maxV := 0.0
	for c := 0; c < width; c++ {
		lo := int(float64(c) * per)
		hi := int(float64(c+1) * per)
		if hi <= lo {
			hi = lo + 1
		}
		if hi > len(pts) {
			hi = len(pts)
		}
		sum := 0.0
		for _, p := range pts[lo:hi] {
			sum += p.Value
		}
		cols[c] = sum / float64(hi-lo)
		if cols[c] > maxV {
			maxV = cols[c]
		}
	}
	if maxV == 0 {
		maxV = 1
	}

	for row := height; row >= 1; row-- {
		threshold := maxV * float64(row) / float64(height)
		label := ""
		if row == height {
			label = fmt.Sprintf("%.0f", maxV)
		} else if row == 1 {
			label = "0"
		}
		fmt.Fprintf(&sb, "%8s |", label)
		for c := 0; c < width; c++ {
			if cols[c] >= threshold-maxV/float64(2*height) {
				sb.WriteByte('*')
			} else {
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "%8s +%s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&sb, "%8s  0 .. %v (%s)\n", "",
		scale.Paper(pts[len(pts)-1].Offset+s.Width()), yLabel)
	return sb.String()
}

// Figure7 renders the baseline's dynamic-request queue length over time,
// selected from the run's series by probe name.
func Figure7(unmod *Result) string {
	return AsciiPlotScaled("Figure 7. Queue length for dynamic requests (unmodified server)",
		"paper time, queue length in requests", unmod.Series[variant.ProbeQueueSingle], 64, 12, unmod.Config.Scale)
}

// Figure8 renders the staged server's general and lengthy queue lengths.
func Figure8(mod *Result) string {
	return AsciiPlotScaled("Figure 8(a). General-pool queue length (modified server)",
		"paper time, queue length in requests", mod.Series[variant.ProbeQueueGeneral], 64, 10, mod.Config.Scale) +
		"\n" +
		AsciiPlotScaled("Figure 8(b). Lengthy-pool queue length (modified server)",
			"paper time, queue length in requests", mod.Series[variant.ProbeQueueLengthy], 64, 10, mod.Config.Scale)
}

// Figure9 renders total throughput per paper minute for both servers.
func Figure9(unmod, mod *Result) string {
	return AsciiPlotScaled("Figure 9. Throughput, all request types ("+unmod.Variant+" server)",
		"paper time, interactions per minute", unmod.Series[SeriesThroughputAll], 64, 10, unmod.Config.Scale) +
		"\n" +
		AsciiPlotScaled("Figure 9. Throughput, all request types ("+mod.Variant+" server)",
			"paper time, interactions per minute", mod.Series[SeriesThroughputAll], 64, 10, mod.Config.Scale)
}

// Figure10 renders the four per-class throughput panels for both servers.
func Figure10(unmod, mod *Result) string {
	panels := []struct {
		name   string
		series string
	}{
		{"(a) Static Requests", SeriesThroughputStatic},
		{"(b) All Dynamic Requests", SeriesThroughputDynamic},
		{"(c) Quick Dynamic Requests", SeriesThroughputQuick},
		{"(d) Lengthy Dynamic Requests", SeriesThroughputLengthy},
	}
	var sb strings.Builder
	for _, p := range panels {
		sb.WriteString(AsciiPlotScaled("Figure 10"+p.name+" ("+unmod.Variant+")",
			"paper time, interactions per minute", unmod.Series[p.series], 64, 8, unmod.Config.Scale))
		sb.WriteString(AsciiPlotScaled("Figure 10"+p.name+" ("+mod.Variant+")",
			"paper time, interactions per minute", mod.Series[p.series], 64, 8, mod.Config.Scale))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// SeriesMean computes a series' mean bucket value (useful for asserting
// figure shapes in tests).
func SeriesMean(s *metrics.Series) float64 {
	if s == nil {
		return 0
	}
	pts := s.Points()
	if len(pts) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range pts {
		sum += p.Value
	}
	return sum / float64(len(pts))
}

// SeriesMax computes a series' maximum bucket value.
func SeriesMax(s *metrics.Series) float64 {
	if s == nil {
		return 0
	}
	maxV := 0.0
	for _, p := range s.Points() {
		if p.Value > maxV {
			maxV = p.Value
		}
	}
	return maxV
}

// WriteCSV emits a series as "offset_seconds,value" rows for external
// plotting (the gnuplot path the paper used).
func WriteCSV(w io.Writer, s *metrics.Series) error {
	if s == nil {
		_, err := io.WriteString(w, "offset_seconds,value\n")
		return err
	}
	if _, err := io.WriteString(w, "offset_seconds,value\n"); err != nil {
		return err
	}
	for _, p := range s.Points() {
		if _, err := fmt.Fprintf(w, "%.3f,%.3f\n", p.Offset.Seconds(), p.Value); err != nil {
			return err
		}
	}
	return nil
}
