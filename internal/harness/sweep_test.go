package harness

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"stagedweb/internal/clock"
	"stagedweb/internal/load"
	"stagedweb/internal/metrics"
	"stagedweb/internal/tpcw"
	"stagedweb/internal/variant"
)

// sweepConfig is a tiny run (well under a second of wall time) so sweep
// tests can execute several cells.
func sweepConfig(variantName string) Config {
	cfg := QuickConfig(variantName, clock.Timescale(400))
	cfg.EBs = 10
	cfg.RampUp = 2 * time.Second
	cfg.Measure = 15 * time.Second
	cfg.CoolDown = 2 * time.Second
	cfg.Populate = tpcw.PopulateConfig{Items: 100, Customers: 30, Orders: 20}
	return cfg
}

func TestSweepMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep integration skipped in -short mode")
	}
	base := sweepConfig(variant.Unmodified)
	scenarios := []Scenario{
		{Name: variant.Unmodified, Config: base},
		{Name: variant.Modified, Config: base.With(func(c *Config) { c.Variant = variant.Modified })},
		{Name: "modified/ebs=20", Config: base.With(func(c *Config) {
			c.Variant = variant.Modified
			c.EBs = 20
		})},
	}
	var order []string
	sw, err := SweepWith(context.Background(), SweepOptions{
		OnResult: func(sc Scenario, res *Result, err error) { order = append(order, sc.Name) },
	}, scenarios)
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Runs) != 3 || len(order) != 3 {
		t.Fatalf("runs=%d notified=%d", len(sw.Runs), len(order))
	}
	for _, r := range sw.Runs {
		if r.Err != nil || r.Result == nil {
			t.Fatalf("%s failed: %v", r.Scenario.Name, r.Err)
		}
		if r.Result.TotalInteractions == 0 {
			t.Errorf("%s completed nothing", r.Scenario.Name)
		}
	}
	if sw.Result(variant.Modified) == nil || sw.Result("missing") != nil {
		t.Fatal("Result lookup wrong")
	}
	// GainPercent works on any pair, matching the legacy helper.
	want := ThroughputGainPercent(sw.Result(variant.Unmodified), sw.Result(variant.Modified))
	if got := sw.GainPercent(variant.Unmodified, variant.Modified); got != want {
		t.Fatalf("GainPercent = %v, want %v", got, want)
	}
	rep := sw.Report()
	for _, name := range []string{variant.Unmodified, variant.Modified, "modified/ebs=20", "gain"} {
		if !strings.Contains(rep, name) {
			t.Errorf("report misses %q:\n%s", name, rep)
		}
	}
}

// TestMatrix checks the variant × load-profile grid builder: cell
// naming, per-cell variant/load assignment, and setting isolation.
func TestMatrix(t *testing.T) {
	base := sweepConfig(variant.Unmodified)
	base.LoadSet = variant.Settings{"ebs": "7"}
	spikeSet := variant.Settings{"burst": "30"}
	cells := Matrix(base,
		[]string{variant.Unmodified, variant.Modified},
		[]LoadSpec{{}, {Profile: load.Spike, Set: spikeSet}})
	if len(cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(cells))
	}
	wantNames := []string{
		"unmodified/steady", "unmodified/spike",
		"modified/steady", "modified/spike",
	}
	for i, c := range cells {
		if c.Name != wantNames[i] {
			t.Errorf("cell %d named %q, want %q", i, c.Name, wantNames[i])
		}
	}
	if cells[1].Config.Variant != variant.Unmodified || cells[3].Config.Variant != variant.Modified {
		t.Error("variants misassigned")
	}
	if cells[3].Config.Load != load.Spike || cells[3].Config.LoadSet["burst"] != "30" {
		t.Errorf("spike cell config wrong: %+v", cells[3].Config)
	}
	// The empty LoadSpec lowers to steady with no settings carried over.
	if cells[0].Config.LoadName() != load.Steady || len(cells[0].Config.LoadSet) != 0 {
		t.Errorf("steady cell config wrong: %+v", cells[0].Config)
	}
	// Mutating a cell's settings must not alias the base or siblings.
	cells[3].Config.LoadSet["burst"] = "99"
	if spikeSet["burst"] != "30" || cells[1].Config.LoadSet["burst"] == "99" {
		t.Error("matrix cells alias their LoadSpec settings")
	}
	if base.LoadSet["ebs"] != "7" {
		t.Error("matrix mutated the base config")
	}
}

func TestSweepParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep integration skipped in -short mode")
	}
	scenarios := []Scenario{
		{Name: "a", Config: sweepConfig(variant.Unmodified)},
		{Name: "b", Config: sweepConfig(variant.Modified)},
	}
	sw, err := SweepWith(context.Background(), SweepOptions{Parallelism: 2}, scenarios)
	if err != nil {
		t.Fatal(err)
	}
	if sw.Result("a") == nil || sw.Result("b") == nil {
		t.Fatal("parallel sweep dropped a result")
	}
}

func TestSweepValidationAndCancel(t *testing.T) {
	dup := []Scenario{{Name: "x", Config: sweepConfig(variant.Modified)}, {Name: "x", Config: sweepConfig(variant.Modified)}}
	if _, err := Sweep(context.Background(), dup); err == nil {
		t.Fatal("duplicate scenario names accepted")
	}
	if _, err := Sweep(context.Background(), []Scenario{{Config: sweepConfig(variant.Modified)}}); err == nil {
		t.Fatal("empty scenario name accepted")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sw, err := Sweep(ctx, []Scenario{{Name: "x", Config: sweepConfig(variant.Modified)}})
	if err == nil {
		t.Fatal("cancelled sweep reported success")
	}
	if len(sw.Runs) != 1 || sw.Runs[0].Result != nil || sw.Runs[0].Err == nil {
		t.Fatalf("cancelled run shape wrong: %+v", sw.Runs)
	}
	// A failing cell surfaces in both the joined error and its run slot,
	// without aborting the other cells.
	bad := sweepConfig("no-such-variant")
	good := sweepConfig(variant.Unmodified)
	good.EBs, good.Measure = 4, 5*time.Second
	sw, err = Sweep(context.Background(), []Scenario{
		{Name: "bad", Config: bad},
		{Name: "good", Config: good},
	})
	if err == nil || !strings.Contains(err.Error(), "no-such-variant") {
		t.Fatalf("bad cell error lost: %v", err)
	}
	if sw.Result("good") == nil {
		t.Fatal("good cell did not run after bad cell")
	}
}

func TestResultJSON(t *testing.T) {
	start := time.Now()
	s := metrics.NewSeries(start, time.Second, metrics.AggSum)
	s.Observe(start, 2)
	s.Observe(start.Add(time.Second), 5)
	res := &Result{
		Variant: variant.Modified,
		Config:  QuickConfig(variant.Modified, clock.DefaultScale),
		Pages: map[string]PageStat{
			tpcw.PageHome: {Page: tpcw.PageHome, Count: 3, MeanPaperSec: 0.5},
		},
		TotalInteractions: 3,
		Series: map[string]*metrics.Series{
			SeriesThroughputAll:  s,
			variant.ProbeReserve: s,
		},
		WallDuration: time.Second,
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	for _, key := range []string{"variant", "config", "pages", "total_interactions", "errors", "series", "wall_duration_ns"} {
		if _, ok := decoded[key]; !ok {
			t.Errorf("artifact misses %q", key)
		}
	}
	series := decoded["series"].(map[string]any)
	all := series[SeriesThroughputAll].(map[string]any)
	if all["agg"] != "sum" {
		t.Errorf("agg = %v", all["agg"])
	}
	pts := all["points"].([]any)
	if len(pts) != 2 {
		t.Fatalf("points = %v", pts)
	}
	p0 := pts[0].(map[string]any)
	if p0["offset_seconds"].(float64) != 0 || p0["value"].(float64) != 2 {
		t.Errorf("first point wrong: %v", p0)
	}
	if decoded["config"].(map[string]any)["variant"] != variant.Modified {
		t.Error("config.variant missing")
	}
}
