package harness

import (
	"encoding/json"
	"io"
)

// WriteJSON serializes a full run result — config, per-page tables,
// totals, and every named series — as indented JSON, the artifact
// format cmd/experiments emits per scenario (and CI uploads). Top-level
// keys: "variant", "config", "pages", "total_interactions", "errors",
// "series" (name → {width_seconds, agg, points:[{offset_seconds,
// value}]}), "wall_duration_ns".
func WriteJSON(w io.Writer, res *Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}
