//go:build race

package harness

// raceEnabled reports that this build runs under the race detector,
// whose 5-20x slowdown swamps the paper-time calibration that the
// end-to-end experiment shapes depend on.
const raceEnabled = true
