package harness

import (
	"fmt"
	"strings"

	"stagedweb/internal/tpcw"
)

// Table3 renders the paper's Table 3: per-page mean web interaction
// response times (paper seconds) on the unmodified and modified servers.
func Table3(unmod, mod *Result) string {
	var sb strings.Builder
	sb.WriteString("Table 3. TPC-W pages and their average response times (seconds)\n")
	fmt.Fprintf(&sb, "%-36s %12s %12s %9s\n", "web page name", "unmodified", "modified", "speedup")
	sb.WriteString(strings.Repeat("-", 72) + "\n")
	for _, page := range tpcw.Pages {
		u := unmod.Pages[page]
		m := mod.Pages[page]
		speedup := "-"
		if m.MeanPaperSec > 0 {
			speedup = fmt.Sprintf("%8.1fx", u.MeanPaperSec/m.MeanPaperSec)
		}
		fmt.Fprintf(&sb, "%-36s %12.2f %12.2f %9s\n",
			tpcw.PageTitle(page), u.MeanPaperSec, m.MeanPaperSec, speedup)
	}
	return sb.String()
}

// Table4 renders the paper's Table 4: completed web interactions per page
// type during the measurement interval, with per-page client-side error
// counts, plus the overall throughput gain.
func Table4(unmod, mod *Result) string {
	var sb strings.Builder
	sb.WriteString("Table 4. Completed web interactions per page type\n")
	fmt.Fprintf(&sb, "%-36s %12s %8s %12s %8s\n",
		"web page name", "unmodified", "errors", "modified", "errors")
	sb.WriteString(strings.Repeat("-", 80) + "\n")
	for _, page := range tpcw.Pages {
		u, m := unmod.Pages[page], mod.Pages[page]
		fmt.Fprintf(&sb, "%-36s %12d %8d %12d %8d\n",
			tpcw.PageTitle(page), u.Count, u.Errors, m.Count, m.Errors)
	}
	sb.WriteString(strings.Repeat("-", 80) + "\n")
	fmt.Fprintf(&sb, "%-36s %12d %8d %12d %8d\n", "total",
		unmod.TotalInteractions, unmod.Errors, mod.TotalInteractions, mod.Errors)
	fmt.Fprintf(&sb, "overall throughput gain: %+.1f%% (paper: +31.3%%)\n",
		ThroughputGainPercent(unmod, mod))
	return sb.String()
}

// Table2 renders the reserve-controller trace in the paper's Table 2
// format from parallel t_spare/t_reserve samples.
func Table2(tspare, treserve []int) string {
	var sb strings.Builder
	sb.WriteString("Table 2. Changes to t_reserve over an example period\n")
	fmt.Fprintf(&sb, "%6s %8s %10s %12s\n", "time", "tspare", "treserve", "delta")
	sb.WriteString(strings.Repeat("-", 40) + "\n")
	for i := 0; i < len(tspare) && i < len(treserve); i++ {
		delta := 0
		if i+1 < len(treserve) {
			delta = treserve[i+1] - treserve[i]
		}
		fmt.Fprintf(&sb, "%5ds %8d %10d %+12d\n", i+1, tspare[i], treserve[i], delta)
	}
	return sb.String()
}

// Summary renders a one-paragraph comparison of two runs.
func Summary(unmod, mod *Result) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "unmodified: %d interactions, %d errors, wall %v\n",
		unmod.TotalInteractions, unmod.Errors, unmod.WallDuration.Round(1e7))
	fmt.Fprintf(&sb, "modified:   %d interactions, %d errors, wall %v\n",
		mod.TotalInteractions, mod.Errors, mod.WallDuration.Round(1e7))
	fmt.Fprintf(&sb, "throughput gain: %+.1f%%\n", ThroughputGainPercent(unmod, mod))
	faster, slower := 0, 0
	for _, page := range tpcw.Pages {
		u, m := unmod.Pages[page], mod.Pages[page]
		if u.Count == 0 || m.Count == 0 {
			continue
		}
		switch {
		case m.MeanPaperSec < u.MeanPaperSec:
			faster++
		case m.MeanPaperSec > u.MeanPaperSec:
			slower++
		}
	}
	fmt.Fprintf(&sb, "pages faster on modified: %d, slower: %d (paper: 11 faster of 14)\n", faster, slower)
	return sb.String()
}
