package harness

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"stagedweb/internal/clock"
	"stagedweb/internal/load"
	"stagedweb/internal/metrics"
	"stagedweb/internal/sqldb"
	"stagedweb/internal/tpcw"
	"stagedweb/internal/variant"
)

// testConfig is a miniature experiment that still exhibits the paper's
// fast/slow structure: small population with a heavy scan cost, a short
// measurement window, closed-loop browsers.
func testConfig(variantName string) Config {
	cfg := QuickConfig(variantName, clock.Timescale(200))
	cfg.EBs = 160
	cfg.RampUp = 30 * time.Second
	cfg.Measure = 3 * time.Minute
	cfg.CoolDown = 10 * time.Second
	cfg.Populate = tpcw.PopulateConfig{Items: 1200, Customers: 300, Orders: 260}
	// 1200 rows at 4 ms/row -> 4.8 s paper scans, well over the 2 s
	// cutoff and heavy enough that slow-page demand exceeds the
	// baseline's 26-connection budget (the paper's "heavy load").
	//
	// The override matters: QuickConfig's 1.5 ms/row puts the scan pages
	// at 1.2-1.9 s of intrinsic data-generation time — just UNDER the
	// cutoff — so they only classified lengthy when database lock
	// contention inflated the measurement, and the quick-page protection
	// flapped with scheduler noise.
	cfg.Cost.PerRowScanned = 4 * time.Millisecond
	return cfg
}

// TestExperimentShape runs both server variants end to end and asserts
// the qualitative results of the paper's evaluation.
func TestExperimentShape(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("race-detector overhead (5-20x) swamps the paper-time " +
			"calibration; run without -race for the experiment shapes")
	}
	unmod, err := Run(testConfig(variant.Unmodified))
	if err != nil {
		t.Fatal(err)
	}
	mod, err := Run(testConfig(variant.Modified))
	if err != nil {
		t.Fatal(err)
	}

	if unmod.TotalInteractions == 0 || mod.TotalInteractions == 0 {
		t.Fatalf("no interactions: unmod=%d mod=%d", unmod.TotalInteractions, mod.TotalInteractions)
	}
	t.Logf("unmod=%d mod=%d gain=%+.1f%%",
		unmod.TotalInteractions, mod.TotalInteractions, ThroughputGainPercent(unmod, mod))

	// Shape 1 (Table 4 / Figure 9): the modified server completes at
	// least comparable work overall; the paper reports +31.3%. A 15%
	// tolerance absorbs scheduler noise when the whole test suite runs
	// in parallel; cmd/experiments reproduces the headline number under
	// controlled conditions.
	if float64(mod.TotalInteractions) < 0.85*float64(unmod.TotalInteractions) {
		t.Errorf("modified server much slower overall: %d vs %d",
			mod.TotalInteractions, unmod.TotalInteractions)
	}

	// Shape 2 (Table 3): the canonical quick pages respond much faster
	// on the modified server (the paper reports ~100x for home).
	for _, page := range []string{tpcw.PageHome, tpcw.PageProductDetail, tpcw.PageSearchRequest} {
		u, m := unmod.Pages[page], mod.Pages[page]
		if u.Count == 0 || m.Count == 0 {
			t.Errorf("%s unvisited: unmod=%d mod=%d", page, u.Count, m.Count)
			continue
		}
		t.Logf("%-24s unmod=%.3fs mod=%.3fs", page, u.MeanPaperSec, m.MeanPaperSec)
		if m.MeanPaperSec >= u.MeanPaperSec {
			t.Errorf("%s not faster on modified server: %.3fs vs %.3fs",
				page, m.MeanPaperSec, u.MeanPaperSec)
		}
	}

	// Shape 3 (Figures 7/8): the baseline's single queue backs up far
	// beyond the staged server's general queue, which stays near zero.
	baseQ := SeriesMax(unmod.Series[variant.ProbeQueueSingle])
	genQ := SeriesMax(mod.Series[variant.ProbeQueueGeneral])
	t.Logf("queue max: baseline=%.0f staged-general=%.0f staged-lengthy=%.0f",
		baseQ, genQ, SeriesMax(mod.Series[variant.ProbeQueueLengthy]))
	if baseQ <= genQ {
		t.Errorf("baseline queue (%v) did not exceed staged general queue (%v)", baseQ, genQ)
	}

	// Shape 4: the staged server pushed lengthy requests into the
	// lengthy queue rather than the general one.
	if SeriesMax(mod.Series[variant.ProbeQueueLengthy]) == 0 {
		t.Error("lengthy queue never used — classification failed")
	}

	// Bookkeeping sanity: every probe of each variant became a series.
	if unmod.Series[variant.ProbeQueueSingle] == nil ||
		mod.Series[variant.ProbeQueueGeneral] == nil ||
		mod.Series[variant.ProbeQueueLengthy] == nil {
		t.Fatal("queue series missing")
	}
	if mod.Series[variant.ProbeReserve] == nil {
		t.Fatal("reserve series missing")
	}
	errRate := float64(unmod.Errors+mod.Errors) /
		float64(unmod.TotalInteractions+mod.TotalInteractions+1)
	if errRate > 0.2 {
		t.Errorf("error rate too high: %.2f", errRate)
	}

	// The rendered tables mention every page.
	t3 := Table3(unmod, mod)
	t4 := Table4(unmod, mod)
	for _, page := range tpcw.Pages {
		if !strings.Contains(t3, tpcw.PageTitle(page)) {
			t.Errorf("Table3 missing %s", page)
		}
		if !strings.Contains(t4, tpcw.PageTitle(page)) {
			t.Errorf("Table4 missing %s", page)
		}
	}
	if !strings.Contains(t4, "throughput gain") {
		t.Error("Table4 missing gain line")
	}
	// Figures render non-empty plots.
	for name, fig := range map[string]string{
		"fig7": Figure7(unmod), "fig8": Figure8(mod),
		"fig9": Figure9(unmod, mod), "fig10": Figure10(unmod, mod),
	} {
		if !strings.Contains(fig, "*") {
			t.Errorf("%s rendered no data:\n%s", name, fig)
		}
	}
	if s := Summary(unmod, mod); !strings.Contains(s, "throughput gain") {
		t.Error("summary malformed")
	}
}

// TestClusterRun drives a sharded run end to end through the public
// config surface: Config.Shards puts the consistent-hash balancer in
// front of shard-owning instances, the balancer's routing series land
// in Result.Series next to the aggregated server series, and the tail
// statistics are populated.
func TestClusterRun(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("race-detector overhead distorts the paper-time calibration")
	}
	cfg := QuickConfig(variant.Unmodified, clock.Timescale(200))
	cfg.EBs = 40
	cfg.RampUp = 10 * time.Second
	cfg.Measure = time.Minute
	cfg.CoolDown = 5 * time.Second
	cfg.Populate = tpcw.PopulateConfig{Items: 300, Customers: 120, Orders: 100}
	cfg.Shards = 2
	cfg.LB = "hash"

	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalInteractions == 0 {
		t.Fatal("clustered run completed no interactions")
	}
	for _, name := range []string{"shard.route", "shard.fanout", "shard.imbalance", "lb.wait"} {
		if res.Series[name] == nil {
			t.Errorf("clustered run missing %s series", name)
		}
	}
	if SeriesMax(res.Series["shard.route"]) == 0 {
		t.Error("balancer routed nothing")
	}
	// The shard instances' own probes arrive aggregated under their
	// usual names, so downstream tooling needs no cluster awareness.
	if res.Series[variant.ProbeQueueSingle] == nil {
		t.Error("aggregated shard queue.single series missing")
	}
	if res.P99PaperSec <= 0 {
		t.Errorf("p99 not populated: %v", res.P99PaperSec)
	}
	if res.P999PaperSec < res.P99PaperSec {
		t.Errorf("p99.9 (%v) below p99 (%v)", res.P999PaperSec, res.P99PaperSec)
	}
	if res.SLOAttained < 0 || res.SLOAttained > 1 {
		t.Errorf("SLO attainment out of range: %v", res.SLOAttained)
	}

	// The strict settings surface covers the cluster keys: a bad lb
	// policy is a build error, not a silent fallback.
	bad := cfg.With(func(c *Config) { c.LB = "random" })
	if _, err := Run(bad); err == nil {
		t.Error("lb=random accepted")
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
	cfg := QuickConfig("no-such-variant", clock.Timescale(1000))
	cfg.EBs = 1
	cfg.RampUp, cfg.Measure, cfg.CoolDown = 0, time.Second, 0
	cfg.Populate = tpcw.PopulateConfig{Items: 10, Customers: 2, Orders: 2}
	if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "no-such-variant") {
		t.Fatalf("unknown variant accepted: %v", err)
	}
	// Unknown explicit settings are build errors, and the listener leak
	// path (build failure after Listen) must not wedge the run.
	cfg = QuickConfig(variant.Modified, clock.Timescale(1000))
	cfg.Populate = tpcw.PopulateConfig{Items: 10, Customers: 2, Orders: 2}
	cfg.Set = variant.Settings{"bogus": "1"}
	if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("unknown setting accepted: %v", err)
	}
	// The load-profile axis validates the same way: unknown profile,
	// unknown mix, unknown profile setting.
	cfg = QuickConfig(variant.Modified, clock.Timescale(1000))
	cfg.Load = "no-such-profile"
	if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "no-such-profile") {
		t.Fatalf("unknown load profile accepted: %v", err)
	}
	cfg = QuickConfig(variant.Modified, clock.Timescale(1000))
	cfg.Mix = "no-such-mix"
	if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "no-such-mix") {
		t.Fatalf("unknown mix accepted: %v", err)
	}
	cfg = QuickConfig(variant.Modified, clock.Timescale(1000))
	cfg.Populate = tpcw.PopulateConfig{Items: 10, Customers: 2, Orders: 2}
	cfg.Load = load.Spike
	cfg.LoadSet = variant.Settings{"bogus": "1"}
	if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("unknown load setting accepted: %v", err)
	}
}

// TestLoadProfileRun drives a spike profile end to end through Run: the
// client.* series must appear next to the server's, and the sampled
// active-EB series must show the burst population.
func TestLoadProfileRun(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("race-detector overhead distorts the burst window timing")
	}
	cfg := QuickConfig(variant.Modified, clock.Timescale(400))
	cfg.EBs = 10
	cfg.RampUp = 5 * time.Second
	cfg.Measure = 40 * time.Second
	cfg.CoolDown = 5 * time.Second
	cfg.Populate = tpcw.PopulateConfig{Items: 200, Customers: 60, Orders: 50}
	cfg.Load = load.Spike
	cfg.LoadSet = variant.Settings{"burst": "15", "at": "10s", "width": "20s"}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{load.ProbeActive, load.ProbeOffered, load.ProbeErrors, load.ProbeWIRT} {
		if res.Series[name] == nil {
			t.Fatalf("client series %q missing (have %v)", name, seriesNames(res))
		}
	}
	if res.Config.Load != load.Spike {
		t.Fatalf("result config load = %q", res.Config.Load)
	}
	// The sampler must see the burst: 10 base + 15 burst EBs.
	if peak := SeriesMax(res.Series[load.ProbeActive]); peak < 20 {
		t.Errorf("peak active EBs = %v, want ~25 during the burst", peak)
	}
	if res.TotalInteractions == 0 {
		t.Fatal("no interactions completed")
	}
}

func seriesNames(res *Result) []string {
	names := make([]string, 0, len(res.Series))
	for name := range res.Series {
		names = append(names, name)
	}
	return names
}

// TestServerKindShim exercises the deprecated enum path: a config that
// names no variant but sets Kind still resolves through the registry.
func TestServerKindShim(t *testing.T) {
	if Unmodified.String() != variant.Unmodified || Modified.String() != variant.Modified ||
		ModifiedNoReserve.String() != variant.ModifiedNoReserve {
		t.Fatal("kind names diverge from registry names")
	}
	if !Modified.Staged() || !ModifiedNoReserve.Staged() || Unmodified.Staged() {
		t.Fatal("Staged() wrong")
	}
	cfg := QuickConfig("", clock.Timescale(400))
	cfg.Kind = Modified
	cfg.EBs = 10
	cfg.RampUp, cfg.Measure, cfg.CoolDown = 2*time.Second, 15*time.Second, 2*time.Second
	cfg.Populate = tpcw.PopulateConfig{Items: 100, Customers: 30, Orders: 20}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Variant != variant.Modified {
		t.Fatalf("kind did not resolve: %q", res.Variant)
	}
}

func TestTable2Rendering(t *testing.T) {
	tspare := []int{35, 24, 17, 21, 30, 36, 38, 37, 35, 39}
	treserve := []int{20, 20, 20, 26, 31, 32, 30, 26, 21, 20}
	out := Table2(tspare, treserve)
	if !strings.Contains(out, "tspare") || !strings.Contains(out, "treserve") {
		t.Fatalf("Table2 malformed:\n%s", out)
	}
	if !strings.Contains(out, "   17         20") {
		t.Fatalf("Table2 missing trace row:\n%s", out)
	}
}

func TestAsciiPlot(t *testing.T) {
	start := time.Now()
	s := metrics.NewSeries(start, time.Second, metrics.AggSum)
	for i := 0; i < 100; i++ {
		s.Observe(start.Add(time.Duration(i)*time.Second), float64(i%10))
	}
	out := AsciiPlot("test plot", "units", s, 40, 8)
	if !strings.Contains(out, "test plot") || !strings.Contains(out, "*") {
		t.Fatalf("plot malformed:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 1+8+2 {
		t.Fatalf("plot has %d lines, want 11:\n%s", len(lines), out)
	}
	empty := metrics.NewSeries(start, time.Second, metrics.AggSum)
	if out := AsciiPlot("empty", "u", empty, 10, 4); !strings.Contains(out, "no data") {
		t.Fatalf("empty plot: %s", out)
	}
}

func TestSeriesHelpers(t *testing.T) {
	start := time.Now()
	s := metrics.NewSeries(start, time.Second, metrics.AggSum)
	s.Observe(start, 2)
	s.Observe(start.Add(time.Second), 6)
	if got := SeriesMean(s); got != 4 {
		t.Fatalf("SeriesMean = %v", got)
	}
	if got := SeriesMax(s); got != 6 {
		t.Fatalf("SeriesMax = %v", got)
	}
	if SeriesMean(nil) != 0 || SeriesMax(nil) != 0 {
		t.Fatal("nil series helpers")
	}
}

func TestWriteCSV(t *testing.T) {
	start := time.Now()
	s := metrics.NewSeries(start, time.Second, metrics.AggSum)
	s.Observe(start, 1)
	s.Observe(start.Add(time.Second), 2)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, s); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "offset_seconds,value\n") {
		t.Fatalf("csv header missing: %q", out)
	}
	if !strings.Contains(out, "0.000,1.000") || !strings.Contains(out, "1.000,2.000") {
		t.Fatalf("csv rows wrong: %q", out)
	}
	buf.Reset()
	if err := WriteCSV(&buf, nil); err != nil {
		t.Fatal(err)
	}
}

func TestThroughputGain(t *testing.T) {
	u := &Result{TotalInteractions: 100}
	m := &Result{TotalInteractions: 131}
	if got := ThroughputGainPercent(u, m); got < 30.9 || got > 31.1 {
		t.Fatalf("gain = %v, want ~31", got)
	}
	if got := ThroughputGainPercent(&Result{}, m); got != 0 {
		t.Fatalf("zero baseline gain = %v", got)
	}
}

func TestPaperAndQuickConfigs(t *testing.T) {
	p := PaperConfig(variant.Modified, clock.DefaultScale)
	if p.EBs != 400 || p.Measure != 50*time.Minute || p.GeneralWorkers != 4*p.LengthyWorkers {
		t.Fatalf("paper config wrong: %+v", p)
	}
	q := QuickConfig(variant.Unmodified, clock.DefaultScale)
	if q.EBs >= p.EBs || q.Measure >= p.Measure {
		t.Fatal("quick config not smaller than paper config")
	}
	if q.Cost == (sqldb.CostModel{}) {
		t.Fatal("quick config has zero cost model")
	}
}

func TestConfigWithClonesSettings(t *testing.T) {
	base := QuickConfig(variant.Modified, clock.DefaultScale)
	base.Set = variant.Settings{"general": "8"}
	derived := base.With(func(c *Config) {
		c.EBs = 7
		c.Set["general"] = "4"
	})
	if derived.EBs != 7 || derived.Set["general"] != "4" {
		t.Fatalf("mutation lost: %+v", derived)
	}
	if base.Set["general"] != "8" || base.EBs == 7 {
		t.Fatal("With mutated the base config")
	}
	// A nil Set must be allocated so mutations can write it directly.
	fresh := QuickConfig(variant.Modified, clock.DefaultScale).
		With(func(c *Config) { c.Set["cutoff"] = "3s" })
	if fresh.Set["cutoff"] != "3s" {
		t.Fatalf("nil-Set mutation lost: %v", fresh.Set)
	}
}

// TestNoReserveVariant exercises the topology variant registered purely
// as configuration: the staged server with the t_reserve controller
// ablated. The reserve series must stay pinned at zero while the run
// still completes work through the staged pipeline.
func TestNoReserveVariant(t *testing.T) {
	cfg := QuickConfig(variant.ModifiedNoReserve, clock.Timescale(400))
	cfg.EBs = 20
	cfg.RampUp = 5 * time.Second
	cfg.Measure = 30 * time.Second
	cfg.CoolDown = 5 * time.Second
	cfg.Populate = tpcw.PopulateConfig{Items: 200, Customers: 60, Orders: 50}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Variant != variant.ModifiedNoReserve {
		t.Fatalf("variant = %q", res.Variant)
	}
	if res.TotalInteractions == 0 {
		t.Fatal("no interactions completed")
	}
	if res.Series[variant.ProbeQueueGeneral] == nil || res.Series[variant.ProbeQueueLengthy] == nil ||
		res.Series[variant.ProbeReserve] == nil {
		t.Fatal("staged series missing")
	}
	if max := SeriesMax(res.Series[variant.ProbeReserve]); max != 0 {
		t.Fatalf("t_reserve moved (max %v) with the controller ablated", max)
	}
}
