// Package harness runs the paper's experiments end to end: it boots a
// database and a server variant, drives the TPC-W browsing-mix workload
// with emulated browsers, applies the ramp-up / measure / cool-down
// discipline of Section 4.1, and collects every series and table the
// DSN'09 evaluation reports (Tables 3 and 4, Figures 7–10).
package harness

import (
	"fmt"
	"sync"
	"time"

	"stagedweb/internal/clock"
	"stagedweb/internal/core"
	"stagedweb/internal/metrics"
	"stagedweb/internal/server"
	"stagedweb/internal/sqldb"
	"stagedweb/internal/tpcw"
	"stagedweb/internal/webtest"
	"stagedweb/internal/workload"
)

// ServerKind selects the server variant under test.
type ServerKind int

const (
	// Unmodified is the baseline thread-per-request server.
	Unmodified ServerKind = iota + 1
	// Modified is the staged multi-pool server (the paper's proposal).
	Modified
	// ModifiedNoReserve is the staged server with the t_reserve feedback
	// controller ablated (reserve pinned to zero) — a topology variant
	// instantiated purely from configuration, no new server code.
	ModifiedNoReserve
)

func (k ServerKind) String() string {
	switch k {
	case Unmodified:
		return "unmodified"
	case Modified:
		return "modified"
	case ModifiedNoReserve:
		return "modified-noreserve"
	default:
		return "unknown"
	}
}

// Staged reports whether the kind is a staged-server variant.
func (k ServerKind) Staged() bool { return k == Modified || k == ModifiedNoReserve }

// Config describes one experimental run. All durations are paper time.
type Config struct {
	Kind  ServerKind
	Scale clock.Timescale

	// Workload.
	EBs                       int
	RampUp, Measure, CoolDown time.Duration
	FetchImages               bool
	// ThinkExponential selects TPC-W's negative-exponential think time
	// (mean 7 s) instead of uniform 0.7–7 s.
	ThinkExponential bool
	Seed             int64

	// Database.
	Populate tpcw.PopulateConfig
	Cost     sqldb.CostModel
	// Work models render/static worker time (CPython-calibrated).
	Work server.WorkCost

	// Baseline sizing: worker count == database connection budget.
	BaselineWorkers int
	// Staged sizing.
	HeaderWorkers, StaticWorkers   int
	GeneralWorkers, LengthyWorkers int
	RenderWorkers                  int
	MinReserve                     int
	Cutoff                         time.Duration
}

// PaperConfig returns the full-paper-scale configuration: 400 EBs, a
// 50-minute measurement window with 5-minute ramp-up and cool-down, the
// default population, and the paper's pool sizes — compressed through the
// given timescale (100 ⇒ the hour-long experiment takes 36 s).
func PaperConfig(kind ServerKind, scale clock.Timescale) Config {
	// Calibration notes (README.md, "Design notes" and "Experiments"):
	//   - scans cost ~0.2 ms/row so the three slow pages land at 2.5-4 s
	//     of intrinsic data-generation time (over the 2 s cutoff, under
	//     the paper's 11-21 s loaded response times);
	//   - render/static work costs are CPython-calibrated (a 12 KiB
	//     Django page ~ 190 ms, an image ~ 10 ms), making non-database
	//     work a ~20% share of baseline worker time - the waste the
	//     staged design reclaims;
	//   - the connection budget (48) puts the baseline just past its
	//     saturation knee at 400 browsers while total database demand
	//     stays under capacity, the regime the paper's numbers imply.
	cost := sqldb.DefaultCostModel()
	cost.PerRowScanned = 200 * time.Microsecond
	return Config{
		Kind:             kind,
		Scale:            scale,
		EBs:              400,
		RampUp:           5 * time.Minute,
		Measure:          50 * time.Minute,
		CoolDown:         5 * time.Minute,
		FetchImages:      true,
		ThinkExponential: true,
		Seed:             1,
		Populate:         tpcw.PopulateConfig{},
		Cost:             cost,
		Work: server.WorkCost{
			RenderBase:  50 * time.Millisecond,
			RenderPerKB: 12 * time.Millisecond,
			StaticBase:  5 * time.Millisecond,
			StaticPerKB: time.Millisecond,
		},
		BaselineWorkers: 48,
		HeaderWorkers:   32,
		StaticWorkers:   32,
		GeneralWorkers:  40,
		LengthyWorkers:  10,
		RenderWorkers:   32,
		MinReserve:      10,
	}
}

// QuickConfig returns a reduced configuration for tests and benchmarks:
// a smaller population with a proportionally heavier scan cost (so the
// slow-page class stays seconds-scale), fewer browsers, and a short
// window. One run takes a few seconds of wall time at scale 200.
func QuickConfig(kind ServerKind, scale clock.Timescale) Config {
	cost := sqldb.DefaultCostModel()
	cost.PerRowScanned = 1500 * time.Microsecond // 2000 rows -> ~3 s scans
	return Config{
		Kind:        kind,
		Scale:       scale,
		EBs:         100,
		RampUp:      30 * time.Second,
		Measure:     5 * time.Minute,
		CoolDown:    15 * time.Second,
		FetchImages: true,
		Seed:        1,
		Populate:    tpcw.PopulateConfig{Items: 2000, Customers: 600, Orders: 520},
		Cost:        cost,
		Work:        server.DefaultWorkCost(),

		BaselineWorkers: 26,
		HeaderWorkers:   16,
		StaticWorkers:   16,
		GeneralWorkers:  21,
		LengthyWorkers:  5,
		RenderWorkers:   16,
		MinReserve:      5,
	}
}

// PageStat is the per-page server+client view for Tables 3 and 4.
type PageStat struct {
	Page string
	// Count is completed interactions during the measurement window
	// (Table 4).
	Count int64
	// MeanPaperSec is the mean client-side WIRT in paper seconds
	// (Table 3).
	MeanPaperSec float64
}

// Result is everything one run produces.
type Result struct {
	Kind   ServerKind
	Config Config

	// Per-page statistics (Tables 3 and 4), keyed by page path.
	Pages map[string]PageStat
	// TotalInteractions sums page interactions in the window.
	TotalInteractions int64
	// Errors is the count of failed client interactions.
	Errors int64

	// Throughput series, one bucket per paper minute (Figures 9, 10).
	ThroughputAll     *metrics.Series
	ThroughputStatic  *metrics.Series
	ThroughputDynamic *metrics.Series
	ThroughputQuick   *metrics.Series
	ThroughputLengthy *metrics.Series

	// Queue-length series, one sample per paper second. Baseline runs
	// fill QueueSingle (Figure 7); staged runs fill QueueGeneral and
	// QueueLengthy (Figure 8).
	QueueSingle  *metrics.Series
	QueueGeneral *metrics.Series
	QueueLengthy *metrics.Series

	// ReserveSeries tracks t_reserve per paper second (staged only).
	ReserveSeries *metrics.Series

	// WallDuration is how long the run took on the host.
	WallDuration time.Duration
}

// Run executes one experiment.
func Run(cfg Config) (*Result, error) {
	if cfg.Scale <= 0 {
		return nil, fmt.Errorf("harness: timescale must be positive")
	}
	wallStart := time.Now()

	db := sqldb.Open(sqldb.Options{
		Clock:     clock.Precise{},
		Timescale: cfg.Scale,
		Cost:      cfg.Cost,
	})
	if err := tpcw.CreateTables(db); err != nil {
		return nil, err
	}
	counts, err := tpcw.Populate(db, cfg.Populate)
	if err != nil {
		return nil, err
	}
	app := tpcw.NewApp(counts, nil)

	// The measurement window starts after ramp-up; series anchored there
	// silently drop ramp-up observations.
	measureStart := time.Now().Add(cfg.Scale.Wall(cfg.RampUp))
	minute := cfg.Scale.Wall(time.Minute)
	second := cfg.Scale.Wall(time.Second)

	res := &Result{
		Kind:              cfg.Kind,
		Config:            cfg,
		Pages:             make(map[string]PageStat, len(tpcw.Pages)),
		ThroughputAll:     metrics.NewSeries(measureStart, minute, metrics.AggSum),
		ThroughputStatic:  metrics.NewSeries(measureStart, minute, metrics.AggSum),
		ThroughputDynamic: metrics.NewSeries(measureStart, minute, metrics.AggSum),
		ThroughputQuick:   metrics.NewSeries(measureStart, minute, metrics.AggSum),
		ThroughputLengthy: metrics.NewSeries(measureStart, minute, metrics.AggSum),
	}

	// Server-side per-page completion counts, gated to the window.
	var (
		countMu    sync.Mutex
		pageCounts = make(map[string]int64, len(tpcw.Pages))
	)
	measureEnd := measureStart.Add(cfg.Scale.Wall(cfg.Measure))
	onComplete := func(ev server.CompletionEvent) {
		res.ThroughputAll.Observe(ev.Done, 1)
		if ev.Class == server.ClassStatic {
			res.ThroughputStatic.Observe(ev.Done, 1)
			return
		}
		res.ThroughputDynamic.Observe(ev.Done, 1)
		// Classify by the paper's fixed slow-page set so both server
		// variants bucket identically in Figure 10.
		if tpcw.SlowPages[ev.Page] {
			res.ThroughputLengthy.Observe(ev.Done, 1)
		} else {
			res.ThroughputQuick.Observe(ev.Done, 1)
		}
		if ev.Done.Before(measureStart) || ev.Done.After(measureEnd) {
			return
		}
		countMu.Lock()
		pageCounts[ev.Page]++
		countMu.Unlock()
	}

	// Boot the server variant.
	l, addr, err := webtest.Listen()
	if err != nil {
		return nil, err
	}
	var (
		stopServer func()
		samplers   []*metrics.Sampler
	)
	clk := clock.Real{}
	switch {
	case cfg.Kind == Unmodified:
		srv, err := server.NewBaseline(server.BaselineConfig{
			App:        app,
			DB:         db,
			Workers:    cfg.BaselineWorkers,
			Cost:       cfg.Work,
			Clock:      clock.Precise{},
			Scale:      cfg.Scale,
			OnComplete: onComplete,
		})
		if err != nil {
			return nil, err
		}
		go func() { _ = srv.Serve(l) }()
		stopServer = srv.Stop
		res.QueueSingle = metrics.NewSeries(measureStart, second, metrics.AggLast)
		samplers = append(samplers, metrics.StartSampler(clk, second,
			func() float64 { return float64(srv.QueueLen()) }, res.QueueSingle))
	case cfg.Kind.Staged():
		srv, err := core.New(core.Config{
			App:            app,
			DB:             db,
			HeaderWorkers:  cfg.HeaderWorkers,
			StaticWorkers:  cfg.StaticWorkers,
			GeneralWorkers: cfg.GeneralWorkers,
			LengthyWorkers: cfg.LengthyWorkers,
			RenderWorkers:  cfg.RenderWorkers,
			MinReserve:     cfg.MinReserve,
			NoReserve:      cfg.Kind == ModifiedNoReserve,
			Cutoff:         cfg.Cutoff,
			Clock:          clock.Precise{},
			Scale:          cfg.Scale,
			Cost:           cfg.Work,
			OnComplete:     onComplete,
		})
		if err != nil {
			return nil, err
		}
		go func() { _ = srv.Serve(l) }()
		stopServer = srv.Stop
		res.QueueGeneral = metrics.NewSeries(measureStart, second, metrics.AggLast)
		res.QueueLengthy = metrics.NewSeries(measureStart, second, metrics.AggLast)
		res.ReserveSeries = metrics.NewSeries(measureStart, second, metrics.AggLast)
		samplers = append(samplers,
			metrics.StartSampler(clk, second,
				func() float64 { return float64(srv.GeneralQueueLen()) }, res.QueueGeneral),
			metrics.StartSampler(clk, second,
				func() float64 { return float64(srv.LengthyQueueLen()) }, res.QueueLengthy),
			metrics.StartSampler(clk, second,
				func() float64 { return float64(srv.Reserve()) }, res.ReserveSeries),
		)
	default:
		return nil, fmt.Errorf("harness: unknown server kind %d", cfg.Kind)
	}

	// Drive load: ramp-up (not recorded), measure, cool-down.
	gen := workload.New(workload.Config{
		Addr:             addr,
		EBs:              cfg.EBs,
		Scale:            cfg.Scale,
		Customers:        counts.Customers,
		Items:            counts.Items,
		FetchImages:      cfg.FetchImages,
		ThinkExponential: cfg.ThinkExponential,
		Seed:             cfg.Seed,
	})
	gen.Stats().SetRecording(false)
	gen.Start()

	time.Sleep(time.Until(measureStart))
	gen.Stats().Reset()
	gen.Stats().SetRecording(true)
	time.Sleep(cfg.Scale.Wall(cfg.Measure))
	gen.Stats().SetRecording(false)
	time.Sleep(cfg.Scale.Wall(cfg.CoolDown))

	gen.Stop()
	for _, s := range samplers {
		s.Stop()
	}
	stopServer()

	// Assemble per-page stats: client-side WIRT means, server-side
	// counts.
	countMu.Lock()
	defer countMu.Unlock()
	for _, page := range tpcw.Pages {
		client := gen.Stats().Page(page)
		res.Pages[page] = PageStat{
			Page:         page,
			Count:        pageCounts[page],
			MeanPaperSec: cfg.Scale.PaperSeconds(client.Mean),
		}
		res.TotalInteractions += pageCounts[page]
	}
	res.Errors = gen.Stats().Errors()
	res.WallDuration = time.Since(wallStart)
	return res, nil
}

// ThroughputGainPercent computes the headline number: the modified
// server's total-interaction gain over the unmodified server (the paper
// reports +31.3%).
func ThroughputGainPercent(unmod, mod *Result) float64 {
	if unmod.TotalInteractions == 0 {
		return 0
	}
	return (float64(mod.TotalInteractions) - float64(unmod.TotalInteractions)) /
		float64(unmod.TotalInteractions) * 100
}
