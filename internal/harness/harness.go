// Package harness runs the paper's experiments end to end: it boots a
// database and a registered server variant, drives a registered load
// profile of emulated browsers against it, applies the ramp-up /
// measure / cool-down discipline of Section 4.1, and collects every
// series and table the DSN'09 evaluation reports (Tables 3 and 4,
// Figures 7–10).
//
// Both axes are values, not cases: Run looks Config.Variant up in the
// internal/variant registry and Config.Load up in the internal/load
// registry, builds them, and samples every probe each exports into a
// named metrics.Series (server-side queue.*/sched.*, client-side
// client.*) — so a newly registered topology or workload shape needs
// zero harness edits. Sweeps over a scenario matrix (variants × load
// profiles × setting mutations) are first-class too; see Scenario,
// Sweep, and Matrix.
package harness

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"stagedweb/internal/clock"
	"stagedweb/internal/cluster"
	"stagedweb/internal/faults"
	"stagedweb/internal/load"
	"stagedweb/internal/metrics"
	"stagedweb/internal/server"
	"stagedweb/internal/sqldb"
	"stagedweb/internal/tpcw"
	"stagedweb/internal/variant"
	"stagedweb/internal/webtest"
)

// Series names the harness computes from completion events, alongside
// the variant's own probe series (variant.ProbeQueueSingle etc.). The
// "throughput." prefix is reserved for these.
const (
	// SeriesThroughputAll counts all completions per paper minute
	// (Figure 9).
	SeriesThroughputAll = "throughput.all"
	// SeriesThroughputStatic counts static completions (Figure 10a).
	SeriesThroughputStatic = "throughput.static"
	// SeriesThroughputDynamic counts dynamic completions (Figure 10b).
	SeriesThroughputDynamic = "throughput.dynamic"
	// SeriesThroughputQuick counts quick dynamic completions (Figure 10c).
	SeriesThroughputQuick = "throughput.quick"
	// SeriesThroughputLengthy counts lengthy dynamic completions
	// (Figure 10d).
	SeriesThroughputLengthy = "throughput.lengthy"
)

// ServerKind is the legacy closed enum of server variants.
//
// Deprecated: name variants by their registry name instead
// (variant.Unmodified, variant.Modified, ...); the registry is open
// where this enum is not. Config.Kind still resolves through the
// registry so old call sites keep working.
type ServerKind int

const (
	// Unmodified is the baseline thread-per-request server.
	Unmodified ServerKind = iota + 1
	// Modified is the staged multi-pool server (the paper's proposal).
	Modified
	// ModifiedNoReserve is the staged server with the t_reserve feedback
	// controller ablated (reserve pinned to zero).
	ModifiedNoReserve
)

func (k ServerKind) String() string {
	switch k {
	case Unmodified:
		return variant.Unmodified
	case Modified:
		return variant.Modified
	case ModifiedNoReserve:
		return variant.ModifiedNoReserve
	default:
		return "unknown"
	}
}

// Staged reports whether the kind is a staged-server variant.
func (k ServerKind) Staged() bool { return k == Modified || k == ModifiedNoReserve }

// Config describes one experimental run. All durations are paper time.
type Config struct {
	// Variant is the registered name of the server variant under test
	// (see internal/variant).
	Variant string `json:"variant"`
	// Kind is the deprecated enum selector, consulted only when Variant
	// is empty.
	//
	// Deprecated: set Variant.
	Kind ServerKind `json:"-"`

	Scale clock.Timescale `json:"scale"`

	// Workload: the offered load is a registered load profile (see
	// internal/load), configured like a variant.
	//
	// Load is the profile name; empty means "steady" (the paper's fixed
	// closed-loop population).
	Load string `json:"load,omitempty"`
	// LoadSet holds explicit profile settings (-load-set key=value,
	// scenario mutations); unknown keys are build errors.
	LoadSet variant.Settings `json:"load_set,omitempty"`
	// Mix names the TPC-W page mix ("browsing", "shopping",
	// "ordering"); empty means browsing, the paper's workload.
	Mix string `json:"mix,omitempty"`

	// EBs is the base population, lowered into the load profile's "ebs"
	// setting as an advisory default.
	//
	// Deprecated: express population through Load/LoadSet; EBs remains
	// as the steady-state shim and as the base level profiles scale
	// from.
	EBs      int           `json:"ebs"`
	RampUp   time.Duration `json:"ramp_up_ns"`
	Measure  time.Duration `json:"measure_ns"`
	CoolDown time.Duration `json:"cool_down_ns"`

	FetchImages bool `json:"fetch_images"`
	// ThinkExponential selects TPC-W's negative-exponential think time
	// (mean 7 s) instead of uniform 0.7–7 s.
	ThinkExponential bool  `json:"think_exponential"`
	Seed             int64 `json:"seed"`

	// Database.
	Populate tpcw.PopulateConfig `json:"populate"`
	Cost     sqldb.CostModel     `json:"cost"`
	// Work models render/static worker time (CPython-calibrated).
	Work server.WorkCost `json:"work"`

	// Typed sizing knobs, lowered into variant settings as defaults: a
	// variant applies the keys it understands and ignores the rest.
	// Baseline sizing: worker count == database connection budget.
	BaselineWorkers int `json:"baseline_workers,omitempty"`
	// Staged sizing.
	HeaderWorkers  int           `json:"header_workers,omitempty"`
	StaticWorkers  int           `json:"static_workers,omitempty"`
	GeneralWorkers int           `json:"general_workers,omitempty"`
	LengthyWorkers int           `json:"lengthy_workers,omitempty"`
	RenderWorkers  int           `json:"render_workers,omitempty"`
	MinReserve     int           `json:"min_reserve,omitempty"`
	Cutoff         time.Duration `json:"cutoff_ns,omitempty"`
	// Database-tier sizing (both variants): total backends (primary +
	// read replicas; 0 or 1 means a single database) and the connection
	// pool size per backend (0 means the variant's worker budget).
	Replicas int `json:"replicas,omitempty"`
	DBConns  int `json:"db_conns,omitempty"`
	// Storage engine (both variants): MVCC switches the primary to
	// snapshot reads + optimistic writes ("mvcc" setting); Repl picks
	// the replica apply mode, "sync" (default) or "async" ("repl"
	// setting).
	MVCC bool   `json:"mvcc,omitempty"`
	Repl string `json:"repl,omitempty"`
	// Indexes builds the extra TPC-W secondary indexes after population
	// ("indexes" setting) — the planner experiment's schema axis. The
	// paper's deliberately index-starved schema is the default.
	Indexes bool `json:"indexes,omitempty"`
	// Cluster tier (see internal/cluster): Shards > 0 fronts that many
	// shard-owning variant instances with the consistent-hash balancer
	// (lowered into the "shards" setting; even shards=1 routes through
	// the balancer so sharded sweeps compare like with like). Zero means
	// no cluster layer at all. LB picks the key-less routing policy
	// ("lb" setting): cluster.LBHash (default) or cluster.LBRR.
	Shards int    `json:"shards,omitempty"`
	LB     string `json:"lb,omitempty"`
	// Fault injection (see internal/faults): Faults names a registered
	// fault plan started when the measurement window opens (lowered into
	// the "faults" setting; empty or "none" runs fault-free), FaultSet
	// holds the plan's settings (lowered into "faultset"; unknown keys
	// are build errors).
	Faults   string           `json:"faults,omitempty"`
	FaultSet variant.Settings `json:"fault_set,omitempty"`

	// SLO is the paper-time WIRT threshold for the Result's
	// SLO-attainment figure; zero takes 3 s (the TPC-W web interaction
	// response-time constraint for most pages).
	SLO time.Duration `json:"slo_ns,omitempty"`

	// Set holds explicit variant-setting overrides, layered over the
	// typed fields above. Unlike the typed fields, a key the variant
	// does not understand is a build error.
	Set variant.Settings `json:"set,omitempty"`
}

// VariantName resolves the variant under test: Variant if set, else the
// deprecated Kind.
func (c Config) VariantName() (string, error) {
	if c.Variant != "" {
		return c.Variant, nil
	}
	if c.Kind != 0 {
		return c.Kind.String(), nil
	}
	return "", fmt.Errorf("harness: config names no variant")
}

// LoadName resolves the load profile under test: Load if set, else the
// steady shim over the deprecated EBs field.
func (c Config) LoadName() string {
	if c.Load != "" {
		return c.Load
	}
	return load.Steady
}

// With returns a copy of the config with the mutations applied. The Set
// and LoadSet maps are cloned (and allocated if nil) first, so scenario
// mutations can write them freely without aliasing the base config.
func (c Config) With(muts ...func(*Config)) Config {
	c.Set = c.Set.Clone()
	if c.Set == nil {
		c.Set = variant.Settings{}
	}
	c.LoadSet = c.LoadSet.Clone()
	if c.LoadSet == nil {
		c.LoadSet = variant.Settings{}
	}
	for _, mut := range muts {
		mut(&c)
	}
	return c
}

// settings lowers the typed sizing fields into variant settings.
func (c Config) settings() variant.Settings {
	s := variant.Settings{}
	put := func(key string, v int) {
		if v > 0 {
			s[key] = fmt.Sprint(v)
		}
	}
	put("workers", c.BaselineWorkers)
	put("header", c.HeaderWorkers)
	put("static", c.StaticWorkers)
	put("general", c.GeneralWorkers)
	put("lengthy", c.LengthyWorkers)
	put("render", c.RenderWorkers)
	put("minreserve", c.MinReserve)
	put("replicas", c.Replicas)
	put("dbconns", c.DBConns)
	put("shards", c.Shards)
	if c.LB != "" {
		s["lb"] = c.LB
	}
	if c.Cutoff > 0 {
		s["cutoff"] = c.Cutoff.String()
	}
	if c.MVCC {
		s["mvcc"] = "on"
	}
	if c.Indexes {
		s["indexes"] = "on"
	}
	if c.Repl != "" {
		s["repl"] = c.Repl
	}
	if c.Faults != "" {
		s["faults"] = c.Faults
	}
	if len(c.FaultSet) > 0 {
		s["faultset"] = encodeKV(c.FaultSet)
	}
	return s
}

// encodeKV flattens a settings map into the "key=value,key=value" form
// the faultset setting carries, in sorted key order so the lowering is
// deterministic.
func encodeKV(set variant.Settings) string {
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + set[k]
	}
	return strings.Join(parts, ",")
}

// loadDefaults lowers the deprecated EBs field into advisory profile
// settings, the same way settings() lowers pool sizes for variants.
func (c Config) loadDefaults() variant.Settings {
	s := variant.Settings{}
	if c.EBs > 0 {
		s["ebs"] = fmt.Sprint(c.EBs)
	}
	return s
}

// PaperConfig returns the full-paper-scale configuration for the named
// variant: 400 EBs, a 50-minute measurement window with 5-minute ramp-up
// and cool-down, the default population, and the paper's pool sizes —
// compressed through the given timescale (100 ⇒ the hour-long experiment
// takes 36 s).
func PaperConfig(variantName string, scale clock.Timescale) Config {
	// Calibration notes (README.md, "Design notes" and "Experiments"):
	//   - scans cost ~0.2 ms/row so the three slow pages land at 2.5-4 s
	//     of intrinsic data-generation time (over the 2 s cutoff, under
	//     the paper's 11-21 s loaded response times);
	//   - render/static work costs are CPython-calibrated (a 12 KiB
	//     Django page ~ 190 ms, an image ~ 10 ms), making non-database
	//     work a ~20% share of baseline worker time - the waste the
	//     staged design reclaims;
	//   - the connection budget (48) puts the baseline just past its
	//     saturation knee at 400 browsers while total database demand
	//     stays under capacity, the regime the paper's numbers imply.
	cost := sqldb.DefaultCostModel()
	cost.PerRowScanned = 200 * time.Microsecond
	return Config{
		Variant:          variantName,
		Scale:            scale,
		EBs:              400,
		RampUp:           5 * time.Minute,
		Measure:          50 * time.Minute,
		CoolDown:         5 * time.Minute,
		FetchImages:      true,
		ThinkExponential: true,
		Seed:             1,
		Populate:         tpcw.PopulateConfig{},
		Cost:             cost,
		Work: server.WorkCost{
			RenderBase:  50 * time.Millisecond,
			RenderPerKB: 12 * time.Millisecond,
			StaticBase:  5 * time.Millisecond,
			StaticPerKB: time.Millisecond,
		},
		BaselineWorkers: 48,
		HeaderWorkers:   32,
		StaticWorkers:   32,
		GeneralWorkers:  40,
		LengthyWorkers:  10,
		RenderWorkers:   32,
		MinReserve:      10,
	}
}

// QuickConfig returns a reduced configuration for tests and benchmarks:
// a smaller population with a proportionally heavier scan cost (so the
// slow-page class stays seconds-scale), fewer browsers, and a short
// window. One run takes a few seconds of wall time at scale 200.
func QuickConfig(variantName string, scale clock.Timescale) Config {
	cost := sqldb.DefaultCostModel()
	cost.PerRowScanned = 1500 * time.Microsecond // 2000 rows -> ~3 s scans
	return Config{
		Variant:     variantName,
		Scale:       scale,
		EBs:         100,
		RampUp:      30 * time.Second,
		Measure:     5 * time.Minute,
		CoolDown:    15 * time.Second,
		FetchImages: true,
		Seed:        1,
		Populate:    tpcw.PopulateConfig{Items: 2000, Customers: 600, Orders: 520},
		Cost:        cost,
		Work:        server.DefaultWorkCost(),

		BaselineWorkers: 26,
		HeaderWorkers:   16,
		StaticWorkers:   16,
		GeneralWorkers:  21,
		LengthyWorkers:  5,
		RenderWorkers:   16,
		MinReserve:      5,
	}
}

// PageStat is the per-page server+client view for Tables 3 and 4.
type PageStat struct {
	Page string `json:"page"`
	// Count is completed interactions during the measurement window
	// (Table 4).
	Count int64 `json:"count"`
	// Errors is failed client interactions attributed to this page
	// (image failures charge the parent page).
	Errors int64 `json:"errors"`
	// MeanPaperSec is the mean client-side WIRT in paper seconds
	// (Table 3).
	MeanPaperSec float64 `json:"mean_paper_sec"`
}

// Result is everything one run produces. WriteJSON serializes it in
// full (config, tables, series) for artifacts.
type Result struct {
	// Variant is the registered name of the variant that ran.
	Variant string `json:"variant"`
	Config  Config `json:"config"`

	// Per-page statistics (Tables 3 and 4), keyed by page path.
	Pages map[string]PageStat `json:"pages"`
	// TotalInteractions sums page interactions in the window.
	TotalInteractions int64 `json:"total_interactions"`
	// Errors is the count of failed client interactions.
	Errors int64 `json:"errors"`

	// Tail latency over the whole interaction stream, in paper seconds:
	// the p99 and p999 client-side WIRT of the measurement window.
	P99PaperSec  float64 `json:"p99_paper_sec"`
	P999PaperSec float64 `json:"p999_paper_sec"`
	// SLOPaperSec is the response-time threshold the run was held to
	// (Config.SLO, default 3 s) and SLOAttained the fraction of
	// interactions answered within it.
	SLOPaperSec float64 `json:"slo_paper_sec"`
	SLOAttained float64 `json:"slo_attained"`

	// Fault injection and recovery (zero values when the run was
	// fault-free). FaultPlan is the injected plan's name; FaultEvents
	// the injections it executed; FaultPaperSec the paper-time offset of
	// the first injection from the start of the measurement window (-1
	// if the plan never fired). RecoveryPaperSec is the MTTR-style
	// recovery time: paper seconds from the first injection until
	// windowed SLO attainment climbs back to recoveryFraction of its
	// pre-fault level (-1 = never recovered inside the window).
	FaultPlan        string         `json:"fault_plan,omitempty"`
	FaultEvents      []faults.Event `json:"fault_events,omitempty"`
	FaultPaperSec    float64        `json:"fault_paper_sec,omitempty"`
	RecoveryPaperSec float64        `json:"recovery_paper_sec,omitempty"`

	// Series holds every time series of the run, keyed by name: the
	// harness's throughput series ("throughput.*", one bucket per paper
	// minute) and one series per variant or load-driver probe
	// ("queue.*", "sched.*", "client.*", ..., sampled once per paper
	// second).
	Series map[string]*metrics.Series `json:"series"`

	// WallDuration is how long the run took on the host.
	WallDuration time.Duration `json:"wall_duration_ns"`
}

// Run executes one experiment.
func Run(cfg Config) (*Result, error) {
	name, err := cfg.VariantName()
	if err != nil {
		return nil, err
	}
	v, ok := variant.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("harness: unknown variant %q (registered: %s)",
			name, strings.Join(variant.Names(), ", "))
	}
	loadName := cfg.LoadName()
	prof, ok := load.Lookup(loadName)
	if !ok {
		return nil, fmt.Errorf("harness: unknown load profile %q (registered: %s)",
			loadName, strings.Join(load.Names(), ", "))
	}
	mix, err := tpcw.MixByName(cfg.Mix)
	if err != nil {
		return nil, fmt.Errorf("harness: %w", err)
	}
	if cfg.Scale <= 0 {
		return nil, fmt.Errorf("harness: timescale must be positive")
	}
	wallStart := time.Now()

	// The fault plan splits off first: the "faults"/"faultset" settings
	// are experiment inputs, not server configuration, and must never
	// reach the cluster or variant decoders.
	faultPlan, faultSet, runSet, err := faults.DecodeSettings(cfg.Set, cfg.settings())
	if err != nil {
		return nil, err
	}

	// The cluster tier is pure configuration: the "shards"/"lb" settings
	// split off here; everything else goes to the shard variant builders
	// untouched. clustered is true whenever a shards setting is present
	// (even shards=1), so a sharded sweep's baseline cell pays the same
	// balancer hop as its scaled cells.
	clusterOpts, shardSet, clustered, err := cluster.DecodeSettings(runSet, cfg.settings())
	if err != nil {
		return nil, err
	}
	nShards := 1
	var ring *cluster.Ring
	if clustered {
		nShards = clusterOpts.Shards
		ring, err = cluster.NewRing(nShards, clusterOpts.VNodes)
		if err != nil {
			return nil, err
		}
	}

	// One database per shard: the customer/order slice the ring assigns
	// it plus the full replicated catalog. The same ring later routes
	// requests, so a customer's rows and requests meet on one shard by
	// construction. All shards populate before the measurement window is
	// anchored — loading M databases takes wall time.
	dbs := make([]*sqldb.DB, nShards)
	var counts tpcw.Counts
	for s := 0; s < nShards; s++ {
		db := sqldb.Open(sqldb.Options{
			Clock:     clock.Precise{},
			Timescale: cfg.Scale,
			Cost:      &cfg.Cost,
		})
		if err := tpcw.CreateTables(db); err != nil {
			return nil, err
		}
		var owns func(int) bool
		if clustered {
			s := s
			owns = func(cID int) bool { return ring.Owner(tpcw.CustomerKey(cID)) == s }
		}
		counts, err = tpcw.PopulateShard(db, cfg.Populate, owns)
		if err != nil {
			return nil, err
		}
		// The indexes=on axis builds its extra indexes on each shard's
		// primary before any variant is constructed, so replicas cloned
		// from it inherit them (CloneSnapshot copies index structures).
		if variant.IndexesEnabled(cfg.Set, cfg.settings()) {
			if err := tpcw.CreateExtraIndexes(db); err != nil {
				return nil, err
			}
		}
		dbs[s] = db
	}
	app := tpcw.NewApp(counts, nil)

	// The measurement window starts after ramp-up; series anchored there
	// silently drop ramp-up observations.
	measureStart := time.Now().Add(cfg.Scale.Wall(cfg.RampUp))
	minute := cfg.Scale.Wall(time.Minute)
	second := cfg.Scale.Wall(time.Second)

	thrAll := metrics.NewSeries(measureStart, minute, metrics.AggSum)
	thrStatic := metrics.NewSeries(measureStart, minute, metrics.AggSum)
	thrDynamic := metrics.NewSeries(measureStart, minute, metrics.AggSum)
	thrQuick := metrics.NewSeries(measureStart, minute, metrics.AggSum)
	thrLengthy := metrics.NewSeries(measureStart, minute, metrics.AggSum)
	res := &Result{
		Variant: name,
		Config:  cfg,
		Pages:   make(map[string]PageStat, len(tpcw.Pages)),
		Series: map[string]*metrics.Series{
			SeriesThroughputAll:     thrAll,
			SeriesThroughputStatic:  thrStatic,
			SeriesThroughputDynamic: thrDynamic,
			SeriesThroughputQuick:   thrQuick,
			SeriesThroughputLengthy: thrLengthy,
		},
	}

	// Server-side per-page completion counts, gated to the window.
	var (
		countMu    sync.Mutex
		pageCounts = make(map[string]int64, len(tpcw.Pages))
	)
	measureEnd := measureStart.Add(cfg.Scale.Wall(cfg.Measure))
	onComplete := func(ev server.CompletionEvent) {
		thrAll.Observe(ev.Done, 1)
		if ev.Class == server.ClassStatic {
			thrStatic.Observe(ev.Done, 1)
			return
		}
		thrDynamic.Observe(ev.Done, 1)
		// Classify by the paper's fixed slow-page set so every variant
		// buckets identically in Figure 10.
		if tpcw.SlowPages[ev.Page] {
			thrLengthy.Observe(ev.Done, 1)
		} else {
			thrQuick.Observe(ev.Done, 1)
		}
		if ev.Done.Before(measureStart) || ev.Done.After(measureEnd) {
			return
		}
		countMu.Lock()
		pageCounts[ev.Page]++
		countMu.Unlock()
	}

	// Boot the variant under test: either one instance over the single
	// database, or nShards instances behind the cluster balancer (which
	// is itself a variant.Instance, so everything downstream — serving,
	// probe sampling, shutdown — is identical).
	l, addr, err := webtest.Listen()
	if err != nil {
		return nil, err
	}
	buildShard := func(db *sqldb.DB, set variant.Settings) (variant.Instance, error) {
		return v.Build(variant.Env{
			App:        app,
			DB:         db,
			Clock:      clock.Precise{},
			Scale:      cfg.Scale,
			Cost:       cfg.Work,
			OnComplete: onComplete,
			Set:        set,
			Defaults:   cfg.settings(),
		})
	}
	var inst variant.Instance
	var targets faults.Targets
	if clustered {
		clusterOpts.Clock = clock.Precise{}
		clusterOpts.Scale = cfg.Scale
		insts := make([]variant.Instance, nShards)
		for s := 0; s < nShards; s++ {
			insts[s], err = buildShard(dbs[s], shardSet)
			if err != nil {
				for _, built := range insts[:s] {
					built.Stop()
				}
				_ = l.Close()
				return nil, err
			}
		}
		bal, err := cluster.New(clusterOpts, insts, func(path string, q map[string]string) cluster.Decision {
			key, fanout := tpcw.ShardKey(path, q)
			return cluster.Decision{Key: key, Fanout: fanout}
		})
		if err != nil {
			for _, built := range insts {
				built.Stop()
			}
			_ = l.Close()
			return nil, err
		}
		inst = bal
		targets.Balancer = bal
		for _, si := range insts {
			if tp, ok := si.(variant.TierProvider); ok && tp.DBTier() != nil {
				targets.Tiers = append(targets.Tiers, tp.DBTier())
			}
		}
	} else {
		inst, err = buildShard(dbs[0], runSet)
		if err != nil {
			_ = l.Close()
			return nil, err
		}
		if tp, ok := inst.(variant.TierProvider); ok && tp.DBTier() != nil {
			targets.Tiers = append(targets.Tiers, tp.DBTier())
		}
	}

	// Build the fault injector against the running system; its schedule
	// arms when the measurement window opens. Build errors (bad targets,
	// unknown plan settings) surface before any load is driven.
	var inj faults.Injector
	if faultPlan != "" {
		plan, _ := faults.Lookup(faultPlan)
		inj, err = plan.Build(faults.Env{
			Clock:   clock.Precise{},
			Scale:   cfg.Scale,
			Targets: targets,
			Set:     faultSet,
		})
		if err != nil {
			inst.Stop()
			_ = l.Close()
			return nil, err
		}
	}

	// The load profile builds the client-side driver against the
	// listener's address — harness.Run never constructs a workload
	// fleet directly.
	drv, err := prof.Build(load.Env{
		Addr:             addr,
		Clock:            clock.Precise{},
		Scale:            cfg.Scale,
		Mix:              mix,
		Customers:        counts.Customers,
		Items:            counts.Items,
		FetchImages:      cfg.FetchImages,
		ThinkExponential: cfg.ThinkExponential,
		Seed:             cfg.Seed,
		Set:              cfg.LoadSet,
		Defaults:         cfg.loadDefaults(),
	})
	if err != nil {
		inst.Stop()
		_ = l.Close()
		return nil, err
	}

	// Every probe the variant instance, the load driver, and the fault
	// injector export becomes a sampled series, one sample per paper
	// second.
	probes := append(inst.Probes(), drv.Probes()...)
	if inj != nil {
		probes = append(probes, inj.Probes()...)
	}
	for _, p := range probes {
		if _, dup := res.Series[p.Name]; dup {
			inst.Stop()
			_ = l.Close()
			return nil, fmt.Errorf("harness: probe %q of %s/%s collides with an existing series",
				p.Name, name, loadName)
		}
		res.Series[p.Name] = metrics.NewSeries(measureStart, second, metrics.AggLast)
	}
	go func() { _ = inst.Serve(l) }()
	clk := clock.Real{}
	samplers := make([]*metrics.Sampler, 0, len(probes)+2)
	for _, p := range probes {
		samplers = append(samplers, metrics.StartSampler(clk, second, p.Gauge, res.Series[p.Name]))
	}

	// Windowed SLO attainment: the driver's cumulative within/total
	// counter pair, sampled once per paper second, is the signal the
	// recovery column is computed from after the run.
	slo := cfg.SLO
	if slo <= 0 {
		slo = 3 * time.Second
	}
	drv.Stats().SetSLOThreshold(cfg.Scale.Wall(slo))
	sloWithin := metrics.NewSeries(measureStart, second, metrics.AggLast)
	sloTotal := metrics.NewSeries(measureStart, second, metrics.AggLast)
	samplers = append(samplers,
		metrics.StartSampler(clk, second, func() float64 {
			w, _ := drv.Stats().SLOCounts()
			return float64(w)
		}, sloWithin),
		metrics.StartSampler(clk, second, func() float64 {
			_, t := drv.Stats().SLOCounts()
			return float64(t)
		}, sloTotal))

	// Drive load: ramp-up (not recorded), measure, cool-down. The fault
	// schedule arms when the measurement window opens, so plan offsets
	// are paper time from the start of measurement.
	drv.Stats().SetRecording(false)
	drv.Start()

	time.Sleep(time.Until(measureStart))
	drv.Stats().Reset()
	drv.Stats().SetRecording(true)
	if inj != nil {
		inj.Start()
	}
	time.Sleep(cfg.Scale.Wall(cfg.Measure))
	drv.Stats().SetRecording(false)
	time.Sleep(cfg.Scale.Wall(cfg.CoolDown))

	drv.Stop()
	if inj != nil {
		inj.Stop()
	}
	for _, s := range samplers {
		s.Stop()
	}
	inst.Stop()

	// Assemble per-page stats: client-side WIRT means and errors,
	// server-side counts. Clustered runs count client-side instead —
	// fan-out pages complete on every shard, so server-side counts
	// would tally one interaction nShards times.
	countMu.Lock()
	defer countMu.Unlock()
	for _, page := range tpcw.Pages {
		client := drv.Stats().Page(page)
		count := pageCounts[page]
		if clustered {
			count = client.Count
		}
		res.Pages[page] = PageStat{
			Page:         page,
			Count:        count,
			Errors:       client.Errors,
			MeanPaperSec: cfg.Scale.PaperSeconds(client.Mean),
		}
		res.TotalInteractions += count
	}
	res.Errors = drv.Stats().Errors()

	// Tail latency and SLO attainment over the whole interaction stream.
	res.P99PaperSec = cfg.Scale.PaperSeconds(drv.Stats().OverallQuantile(0.99))
	res.P999PaperSec = cfg.Scale.PaperSeconds(drv.Stats().OverallQuantile(0.999))
	res.SLOPaperSec = slo.Seconds()
	res.SLOAttained = drv.Stats().FractionWithin(cfg.Scale.Wall(slo))

	// Fault outcome: when the first injection landed and how long SLO
	// attainment took to come back.
	if inj != nil {
		res.FaultPlan = faultPlan
		res.FaultEvents = inj.Events()
		res.FaultPaperSec = -1
		res.RecoveryPaperSec = -1
		if len(res.FaultEvents) > 0 {
			fault := res.FaultEvents[0].At
			res.FaultPaperSec = fault.Seconds()
			res.RecoveryPaperSec = recoveryPaperSec(sloWithin, sloTotal, fault)
		}
	}
	res.WallDuration = time.Since(wallStart)
	return res, nil
}

// Recovery detection: attainment is evaluated over a trailing window of
// recoveryWindow paper seconds, and the system counts as recovered when
// the windowed value climbs back to recoveryFraction of the cumulative
// pre-fault attainment.
const (
	recoveryWindow   = 3
	recoveryFraction = 0.95
)

// recoveryPaperSec computes the MTTR-style recovery time from the
// sampled cumulative SLO counters: paper seconds from the fault offset
// until the first post-fault paper second whose trailing-window SLO
// attainment reaches recoveryFraction of the pre-fault level. It
// returns -1 when attainment never recovers inside the sampled window
// (or there was no pre-fault traffic to set a baseline).
func recoveryPaperSec(within, total *metrics.Series, fault time.Duration) float64 {
	w := cumulative(within)
	t := cumulative(total)
	n := len(w)
	if len(t) < n {
		n = len(t)
	}
	// Bucket i covers paper second i of the measurement window (the
	// series' bucket width is one paper second of wall time).
	faultIdx := int(fault / time.Second)
	if faultIdx < 0 || faultIdx >= n || t[faultIdx] == 0 {
		return -1
	}
	baseline := w[faultIdx] / t[faultIdx]
	if baseline <= 0 {
		return -1
	}
	for s := faultIdx + 1; s < n; s++ {
		// Trailing window (from, s], clamped so pre-fault seconds never
		// mask post-fault degradation.
		from := s - recoveryWindow
		if from < faultIdx {
			from = faultIdx
		}
		dt := t[s] - t[from]
		if dt <= 0 {
			continue
		}
		att := (w[s] - w[from]) / dt
		if att >= recoveryFraction*baseline {
			return float64(s - faultIdx)
		}
	}
	return -1
}

// cumulative reads an AggLast-sampled cumulative counter series,
// forward-filling empty buckets: the counter is non-decreasing, so a
// bucket reading below its predecessor is a missed sample, not a reset.
func cumulative(s *metrics.Series) []float64 {
	pts := s.Points()
	out := make([]float64, len(pts))
	prev := 0.0
	for i, p := range pts {
		v := p.Value
		if v < prev {
			v = prev
		}
		out[i] = v
		prev = v
	}
	return out
}

// ThroughputGainPercent computes the headline number between any pair of
// runs: the test run's total-interaction gain over the base run (the
// paper reports +31.3% for modified over unmodified).
func ThroughputGainPercent(base, test *Result) float64 {
	if base == nil || test == nil || base.TotalInteractions == 0 {
		return 0
	}
	return (float64(test.TotalInteractions) - float64(base.TotalInteractions)) /
		float64(base.TotalInteractions) * 100
}
