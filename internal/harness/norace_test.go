//go:build !race

package harness

// raceEnabled reports whether this build runs under the race detector.
const raceEnabled = false
