// Package faults makes failure a first-class experiment input,
// mirroring internal/load on the dependability side: a Plan is a named
// fault recipe that builds a running Injector from an environment (the
// database tiers and cluster balancer under test, a clock, a
// timescale, generic settings), and a process-wide registry maps names
// to recipes.
//
// The experiment layers above — internal/harness, cmd/experiments —
// never switch on a failure shape. They look a plan name up via the
// faults= setting, build it against the running system, start it when
// the measurement window opens, and sample its fault.injected probe
// next to every other series. The built-in plans (replica-kill,
// shard-down, slow-backend, conn-drop, leak) are registered in
// builtin.go; a new failure scenario is one Register call and is
// immediately runnable, sweepable, and plottable everywhere.
//
// Every schedule runs on the injected clock.Clock at paper-time
// offsets, so a plan replays deterministically under clock.Manual:
// the same plan advanced over the same schedule injects the same
// actions at the same paper timestamps, every time.
package faults

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"stagedweb/internal/clock"
	"stagedweb/internal/cluster"
	"stagedweb/internal/dbtier"
	"stagedweb/internal/metrics"
	"stagedweb/internal/variant"
)

// ProbeInjected counts fault-plan actions executed so far — kills,
// restarts, slowdowns, connection drops, leaks. The "fault." prefix is
// reserved for injector probes.
const ProbeInjected = "fault.injected"

// Targets is the running system a plan injects faults into.
type Targets struct {
	// Tiers are the database tiers under test, one per shard (a
	// single-instance run has exactly one).
	Tiers []*dbtier.Tier
	// Balancer is the cluster front end, nil when the run is not
	// sharded. Plans that need it (shard-down, conn-drop) fail to
	// build without it.
	Balancer *cluster.Balancer
}

// Env is everything a Plan needs to build an Injector.
type Env struct {
	// Clock schedules every injection; the harness injects its
	// experiment clock, tests inject clock.Manual. Nil means
	// clock.Real.
	Clock clock.Clock
	// Scale converts the plan's paper-time offsets to wall time.
	Scale clock.Timescale
	// Targets is the system under test.
	Targets Targets
	// Set holds explicit plan settings (the faultset= value). A key the
	// plan does not understand is a build error — typos must not pass
	// silently.
	Set variant.Settings
	// Defaults holds advisory settings; a plan applies the keys it
	// understands and ignores the rest.
	Defaults variant.Settings
}

// clk returns the environment's clock, defaulting to the runtime clock.
func (e Env) clk() clock.Clock {
	if e.Clock != nil {
		return e.Clock
	}
	return clock.Real{}
}

// Event is one executed injection: its nominal paper-time offset from
// Start and a human-readable action. Offsets are schedule-nominal, not
// measured, so a replayed plan reports identical events.
type Event struct {
	At     time.Duration `json:"at_ns"`
	Action string        `json:"action"`
}

// Injector is a built, runnable fault schedule.
type Injector interface {
	// Start arms the schedule: offsets count from here. It does not
	// block and is idempotent.
	Start()
	// Stop cancels pending injections and waits for in-flight ones.
	// Call after Start; idempotent.
	Stop()
	// Probes lists the fault.* gauges this injector exports.
	Probes() []variant.Probe
	// Events lists the injections executed so far, in schedule order.
	Events() []Event
}

// Plan is a named fault recipe.
type Plan interface {
	// Name is the registry key ("replica-kill", "shard-down", ...).
	Name() string
	// Build validates settings against the running system and returns
	// an unstarted Injector.
	Build(Env) (Injector, error)
}

// funcPlan adapts a build function into a Plan.
type funcPlan struct {
	name  string
	build func(Env) (Injector, error)
}

func (p funcPlan) Name() string                    { return p.name }
func (p funcPlan) Build(env Env) (Injector, error) { return p.build(env) }

// New wraps a name and a build function as a Plan.
func New(name string, build func(Env) (Injector, error)) Plan {
	return funcPlan{name: name, build: build}
}

var (
	regMu    sync.RWMutex
	registry = map[string]Plan{}
)

// Register adds a plan to the process-wide registry. It panics on an
// empty or duplicate name: registration happens at init time, and a
// collision is a programming error.
func Register(p Plan) {
	name := p.Name()
	if name == "" {
		panic("faults: empty plan name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("faults: duplicate registration of %q", name))
	}
	registry[name] = p
}

// Lookup finds a registered plan by name.
func Lookup(name string) (Plan, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	p, ok := registry[name]
	return p, ok
}

// Names lists the registered plan names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// DecodeSettings splits the fault-owned settings out of a config's
// explicit settings and decodes them (against the harness-lowered
// defaults): faults (a registered plan name; "" or "none" disables
// injection) and faultset ("key=value,key=value" plan settings). It
// returns the plan name ("" when disabled), the parsed plan settings,
// and a copy of the explicit settings with the fault keys removed —
// what the cluster and variant layers should see.
func DecodeSettings(explicit, defaults variant.Settings) (string, variant.Settings, variant.Settings, error) {
	faultKeys := []string{"faults", "faultset"}
	own := variant.Settings{}
	rest := explicit.Clone()
	for _, k := range faultKeys {
		if v, ok := explicit[k]; ok {
			own[k] = v
			delete(rest, k)
		}
	}
	ownDefaults := variant.Settings{}
	for _, k := range faultKeys {
		if v, ok := defaults[k]; ok {
			ownDefaults[k] = v
		}
	}
	d := variant.NewSettingsDecoder(own, ownDefaults)
	plan := d.String("faults", "")
	raw := d.String("faultset", "")
	if err := d.Finish(); err != nil {
		return "", nil, nil, fmt.Errorf("faults: %w", err)
	}
	if plan == "none" {
		plan = ""
	}
	if plan != "" {
		if _, ok := Lookup(plan); !ok {
			return "", nil, nil, fmt.Errorf("faults: unknown plan %q (have %s)", plan, strings.Join(Names(), ", "))
		}
	}
	set := variant.Settings{}
	if raw != "" {
		if plan == "" {
			return "", nil, nil, fmt.Errorf("faults: faultset=%q given without a faults= plan", raw)
		}
		for _, kv := range strings.Split(raw, ",") {
			k, v, err := variant.ParseKV(kv)
			if err != nil {
				return "", nil, nil, fmt.Errorf("faults: faultset: %w", err)
			}
			set[k] = v
		}
	}
	return plan, set, rest, nil
}

// step is one scheduled injection: fire at paper offset at, then — when
// repeat is positive — again every repeat until stopped.
type step struct {
	at     time.Duration
	repeat time.Duration
	action string
	run    func()
}

// StepInjector executes a schedule of steps on the environment's
// clock. Each step gets its own goroutine, so a long-delay step never
// holds up an earlier one; all delays are nominal paper offsets
// converted through the timescale, which is what makes replays
// deterministic under clock.Manual. It is the scaffolding every
// built-in plan is made of, exported so plans registered outside this
// package can reuse it.
type StepInjector struct {
	clk   clock.Clock
	scale clock.Timescale
	steps []step

	started  sync.Once
	stopped  sync.Once
	done     chan struct{}
	wg       sync.WaitGroup
	injected metrics.Counter

	evMu   sync.Mutex
	events []Event
}

// NewInjector returns an empty step-scheduling injector for env.
func NewInjector(env Env) *StepInjector {
	scale := env.Scale
	if scale <= 0 {
		scale = clock.RealTime
	}
	return &StepInjector{
		clk:   env.clk(),
		scale: scale,
		done:  make(chan struct{}),
	}
}

func (in *StepInjector) add(s step) { in.steps = append(in.steps, s) }

// Add schedules a one-shot step: at the paper-time offset, run the
// action (recorded under the given label in Events). Repeating steps
// stay internal to the built-in plans.
func (in *StepInjector) Add(at time.Duration, action string, run func()) {
	in.add(step{at: at, action: action, run: run})
}

// Start implements Injector.
func (in *StepInjector) Start() {
	in.started.Do(func() {
		for _, s := range in.steps {
			s := s
			in.wg.Add(1)
			go in.runStep(s)
		}
	})
}

// Stop implements Injector.
func (in *StepInjector) Stop() {
	in.stopped.Do(func() {
		close(in.done)
		in.wg.Wait()
	})
}

func (in *StepInjector) runStep(s step) {
	defer in.wg.Done()
	at, wait := s.at, s.at
	for {
		select {
		case <-in.done:
			return
		case <-in.clk.After(in.scale.Wall(wait)):
		}
		s.run()
		in.injected.Inc()
		in.evMu.Lock()
		in.events = append(in.events, Event{At: at, Action: s.action})
		in.evMu.Unlock()
		if s.repeat <= 0 {
			return
		}
		at += s.repeat
		wait = s.repeat
	}
}

// Probes implements Injector.
func (in *StepInjector) Probes() []variant.Probe {
	return []variant.Probe{
		{Name: ProbeInjected, Gauge: func() float64 { return float64(in.injected.Value()) }},
	}
}

// Events implements Injector.
func (in *StepInjector) Events() []Event {
	in.evMu.Lock()
	defer in.evMu.Unlock()
	out := make([]Event, len(in.events))
	copy(out, in.events)
	sort.Slice(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].Action < out[j].Action
	})
	return out
}
