package faults

import (
	"errors"
	"fmt"
	"time"

	"stagedweb/internal/dbtier"
	"stagedweb/internal/variant"
)

// Built-in plan names.
const (
	// ReplicaKill kills one read replica backend mid-run, optionally
	// restarting it after a delay.
	ReplicaKill = "replica-kill"
	// ShardDown stops a whole shard stack from accepting forwarded
	// requests, optionally reviving it after a delay.
	ShardDown = "shard-down"
	// SlowBackend injects added latency into one backend's statement
	// path, optionally clearing it after a delay.
	SlowBackend = "slow-backend"
	// ConnDrop resets the balancer's pooled keep-alive backend
	// connections, repeatedly.
	ConnDrop = "conn-drop"
	// Leak acquires primary-pool connections and never releases them,
	// optionally returning them after a delay.
	Leak = "leak"
)

func init() {
	Register(New(ReplicaKill, buildReplicaKill))
	Register(New(ShardDown, buildShardDown))
	Register(New(SlowBackend, buildSlowBackend))
	Register(New(ConnDrop, buildConnDrop))
	Register(New(Leak, buildLeak))
}

// Shared setting defaults: faults strike half a paper-minute into the
// measurement window and heal half a paper-minute later, leaving room
// on both sides to observe degradation and recovery.
const (
	defaultAt      = 30 * time.Second
	defaultRestart = 30 * time.Second
)

// needTiers returns the environment's database tiers or a build error
// naming the plan.
func needTiers(env Env, plan string) ([]*dbtier.Tier, error) {
	if len(env.Targets.Tiers) == 0 {
		return nil, fmt.Errorf("faults: %s needs a database tier target", plan)
	}
	return env.Targets.Tiers, nil
}

// replica-kill: at+T, mark replica backend `target` down on every tier
// (each shard loses the same replica slot — the worst case for a
// replicated read rotation); at+T+restart, revive it. restart=0 leaves
// it dead for the rest of the run.
//
// Settings: at (paper offset, default 30s), target (backend index,
// default 1, primary is 0 and cannot be killed), restart (delay after
// the kill, default 30s, 0 = never).
func buildReplicaKill(env Env) (Injector, error) {
	d := variant.NewSettingsDecoder(env.Set, env.Defaults)
	at := d.Duration("at", defaultAt)
	target := d.Int("target", 1)
	restart := d.Duration("restart", defaultRestart)
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("faults: %s: %w", ReplicaKill, err)
	}
	tiers, err := needTiers(env, ReplicaKill)
	if err != nil {
		return nil, err
	}
	for _, t := range tiers {
		if target < 1 || target >= t.Replicas() {
			return nil, fmt.Errorf("faults: %s: target %d out of range (tier has %d backends; replicas are 1..%d)",
				ReplicaKill, target, t.Replicas(), t.Replicas()-1)
		}
	}
	in := NewInjector(env)
	in.add(step{at: at, action: fmt.Sprintf("kill replica backend %d", target), run: func() {
		for _, t := range tiers {
			_ = t.KillBackend(target)
		}
	}})
	if restart > 0 {
		in.add(step{at: at + restart, action: fmt.Sprintf("restart replica backend %d", target), run: func() {
			for _, t := range tiers {
				_ = t.RestartBackend(target)
			}
		}})
	}
	return in, nil
}

// shard-down: at+T, the balancer marks shard `target` down — forwards
// fail fast, keyed pages for its customers error, cross-shard pages
// degrade after the fan-out deadline instead of hanging; at+T+restart,
// the shard rejoins. restart=0 leaves it down.
//
// Settings: at (default 30s), target (shard index, default 1 when the
// cluster has more than one shard, else 0), restart (default 30s,
// 0 = never).
func buildShardDown(env Env) (Injector, error) {
	b := env.Targets.Balancer
	if b == nil {
		return nil, errors.New("faults: shard-down needs a cluster balancer target (set shards=)")
	}
	defTarget := 0
	if b.Shards() > 1 {
		defTarget = 1
	}
	d := variant.NewSettingsDecoder(env.Set, env.Defaults)
	at := d.Duration("at", defaultAt)
	target := d.Int("target", defTarget)
	restart := d.Duration("restart", defaultRestart)
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("faults: %s: %w", ShardDown, err)
	}
	if target < 0 || target >= b.Shards() {
		return nil, fmt.Errorf("faults: %s: target %d out of range (cluster has %d shards)", ShardDown, target, b.Shards())
	}
	in := NewInjector(env)
	in.add(step{at: at, action: fmt.Sprintf("shard %d down", target), run: func() {
		_ = b.SetShardDown(target, true)
	}})
	if restart > 0 {
		in.add(step{at: at + restart, action: fmt.Sprintf("shard %d up", target), run: func() {
			_ = b.SetShardDown(target, false)
		}})
	}
	return in, nil
}

// slow-backend: at+T, every statement on backend `target` gains `slow`
// of added paper-time latency — beyond the tier's SlowThreshold the
// health loop ejects a replica from the rotation; at+T+restart the
// latency clears and the replica resyncs and reintegrates.
//
// Settings: at (default 30s), target (backend index, default 1; 0 slows
// the primary, which is never ejected), slow (added latency, default
// 2s), restart (default 30s, 0 = never).
func buildSlowBackend(env Env) (Injector, error) {
	d := variant.NewSettingsDecoder(env.Set, env.Defaults)
	at := d.Duration("at", defaultAt)
	target := d.Int("target", 1)
	slow := d.Duration("slow", 2*time.Second)
	restart := d.Duration("restart", defaultRestart)
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("faults: %s: %w", SlowBackend, err)
	}
	tiers, err := needTiers(env, SlowBackend)
	if err != nil {
		return nil, err
	}
	for _, t := range tiers {
		if target < 0 || target >= t.Replicas() {
			return nil, fmt.Errorf("faults: %s: target %d out of range (tier has %d backends)", SlowBackend, target, t.Replicas())
		}
	}
	in := NewInjector(env)
	in.add(step{at: at, action: fmt.Sprintf("slow backend %d by %v", target, slow), run: func() {
		for _, t := range tiers {
			_ = t.SetBackendDelay(target, slow)
		}
	}})
	if restart > 0 {
		in.add(step{at: at + restart, action: fmt.Sprintf("unslow backend %d", target), run: func() {
			for _, t := range tiers {
				_ = t.SetBackendDelay(target, 0)
			}
		}})
	}
	return in, nil
}

// conn-drop: starting at+T and every `every` thereafter, reset the
// balancer's pooled keep-alive connections to every shard — in-flight
// forwards see connection errors and retry, idle pools refill on
// demand.
//
// Settings: at (default 30s), every (repeat interval, default 5s).
func buildConnDrop(env Env) (Injector, error) {
	b := env.Targets.Balancer
	if b == nil {
		return nil, errors.New("faults: conn-drop needs a cluster balancer target (set shards=)")
	}
	d := variant.NewSettingsDecoder(env.Set, env.Defaults)
	at := d.Duration("at", defaultAt)
	every := d.Duration("every", 5*time.Second)
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("faults: %s: %w", ConnDrop, err)
	}
	if every <= 0 {
		return nil, fmt.Errorf("faults: %s: every must be positive, got %v", ConnDrop, every)
	}
	in := NewInjector(env)
	in.add(step{at: at, repeat: every, action: "drop pooled backend connections", run: func() {
		b.ResetBackendConns()
	}})
	return in, nil
}

// leak: at+T, acquire `conns` primary-pool connections on every tier
// and hold them (conns=0 takes every currently idle one) — remaining
// capacity shrinks and starved acquisitions hit the tier's paper-time
// deadline instead of wedging; at+T+restart the leak is repaid.
//
// Settings: at (default 30s), conns (connections to leak per tier,
// default 0 = all idle), restart (default 30s, 0 = never).
func buildLeak(env Env) (Injector, error) {
	d := variant.NewSettingsDecoder(env.Set, env.Defaults)
	at := d.Duration("at", defaultAt)
	conns := d.Int("conns", 0)
	restart := d.Duration("restart", defaultRestart)
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("faults: %s: %w", Leak, err)
	}
	tiers, err := needTiers(env, Leak)
	if err != nil {
		return nil, err
	}
	in := NewInjector(env)
	in.add(step{at: at, action: fmt.Sprintf("leak %d primary connections", conns), run: func() {
		for _, t := range tiers {
			t.LeakConns(conns)
		}
	}})
	if restart > 0 {
		in.add(step{at: at + restart, action: "release leaked connections", run: func() {
			for _, t := range tiers {
				t.ReleaseLeaked()
			}
		}})
	}
	return in, nil
}
