package faults_test

import (
	"testing"
	"time"

	"stagedweb/internal/clock"
	"stagedweb/internal/dbtier"
	"stagedweb/internal/faults"
	"stagedweb/internal/sqldb"
	"stagedweb/internal/variant"
)

func TestRegistryHasBuiltins(t *testing.T) {
	for _, name := range []string{faults.ReplicaKill, faults.ShardDown, faults.SlowBackend, faults.ConnDrop, faults.Leak} {
		if _, ok := faults.Lookup(name); !ok {
			t.Errorf("built-in plan %q is not registered", name)
		}
	}
}

func TestDecodeSettings(t *testing.T) {
	plan, set, rest, err := faults.DecodeSettings(
		variant.Settings{"faults": "replica-kill", "faultset": "at=10s,target=1", "workers": "8"},
		nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan != faults.ReplicaKill {
		t.Fatalf("plan = %q", plan)
	}
	if set["at"] != "10s" || set["target"] != "1" {
		t.Fatalf("set = %v", set)
	}
	if _, leaked := rest["faults"]; leaked {
		t.Fatal("faults key leaked into rest")
	}
	if rest["workers"] != "8" {
		t.Fatalf("rest = %v", rest)
	}

	// "none" and empty both disable.
	if plan, _, _, err = faults.DecodeSettings(variant.Settings{"faults": "none"}, nil); err != nil || plan != "" {
		t.Fatalf("faults=none: plan %q, err %v", plan, err)
	}
	// Unknown plans and orphaned faultset are build errors.
	if _, _, _, err = faults.DecodeSettings(variant.Settings{"faults": "nope"}, nil); err == nil {
		t.Fatal("unknown plan accepted")
	}
	if _, _, _, err = faults.DecodeSettings(variant.Settings{"faultset": "at=10s"}, nil); err == nil {
		t.Fatal("faultset without a plan accepted")
	}
	// Plan can arrive through the lowered defaults too.
	if plan, _, _, err = faults.DecodeSettings(nil, variant.Settings{"faults": "leak"}); err != nil || plan != faults.Leak {
		t.Fatalf("default plan: %q, err %v", plan, err)
	}
}

func newFaultDB(t *testing.T) *sqldb.DB {
	t.Helper()
	db := sqldb.Open(sqldb.Options{Cost: sqldb.ZeroCostModel()})
	db.MustCreateTable(sqldb.Schema{
		Table: "kv",
		Columns: []sqldb.Column{
			{Name: "id", Type: sqldb.Int},
			{Name: "v", Type: sqldb.String},
		},
		PrimaryKey: "id",
	})
	c := db.Connect()
	defer c.Close()
	for i := 1; i <= 3; i++ {
		if _, err := c.Exec("INSERT INTO kv (id, v) VALUES (?, ?)", i, "seed"); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// waitCond polls (in wall time) until cond holds — the manual clock
// fires waiters synchronously, but the woken goroutines still need host
// scheduler time to act.
func waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// replayReplicaKill drives one full replica-kill run on a manual clock:
// kill at 5 s, restart at 15 s, then enough health ticks to eject,
// resync, and reintegrate the replica. It returns the injector's event
// log and the tier's ejection/reintegration counters.
func replayReplicaKill(t *testing.T) ([]faults.Event, int64, int64) {
	t.Helper()
	db := newFaultDB(t)
	mc := clock.NewManual(time.Unix(0, 0))
	tier := dbtier.New(db, dbtier.Options{Replicas: 2, Conns: 2, Clock: mc, Scale: clock.RealTime})
	defer tier.Close()

	plan, ok := faults.Lookup(faults.ReplicaKill)
	if !ok {
		t.Fatal("replica-kill not registered")
	}
	inj, err := plan.Build(faults.Env{
		Clock:   mc,
		Scale:   clock.RealTime,
		Targets: faults.Targets{Tiers: []*dbtier.Tier{tier}},
		Set:     variant.Settings{"at": "5s", "target": "1", "restart": "10s"},
	})
	if err != nil {
		t.Fatal(err)
	}
	inj.Start()
	defer inj.Stop()
	// Two injector steps (kill, restart) plus the tier's health ticker.
	mc.BlockUntilWaiters(3)

	// Advance one paper second at a time so every health tick gets host
	// time to run before the next fires (undelivered manual ticks are
	// dropped, like time.Ticker's).
	advance := func(n int) {
		for i := 0; i < n; i++ {
			mc.Advance(time.Second)
			time.Sleep(200 * time.Microsecond)
		}
	}
	advance(5) // kill fires at 5s
	waitCond(t, "kill injection", func() bool { return len(inj.Events()) >= 1 })
	advance(5) // health ticks past the fail threshold
	waitCond(t, "replica ejection", func() bool { return tier.Ejected() >= 1 })
	advance(5) // restart fires at 15s
	waitCond(t, "restart injection", func() bool { return len(inj.Events()) >= 2 })
	advance(10) // health ticks through resync and reintegration
	waitCond(t, "replica reintegration", func() bool { return tier.Resyncs() >= 1 })
	return inj.Events(), tier.Ejected(), tier.Resyncs()
}

// TestReplicaKillReplayDeterministic replays the same plan twice on
// fresh manual clocks and demands bit-identical outcomes: the same
// injection timestamps and the same ejection/reintegration counts —
// the property that makes fault experiments reproducible.
func TestReplicaKillReplayDeterministic(t *testing.T) {
	ev1, ej1, rs1 := replayReplicaKill(t)
	ev2, ej2, rs2 := replayReplicaKill(t)

	if len(ev1) != 2 || len(ev2) != 2 {
		t.Fatalf("event counts: %d and %d, want 2 and 2", len(ev1), len(ev2))
	}
	for i := range ev1 {
		if ev1[i] != ev2[i] {
			t.Errorf("event %d differs across replays: %+v vs %+v", i, ev1[i], ev2[i])
		}
	}
	if ev1[0].At != 5*time.Second || ev1[1].At != 15*time.Second {
		t.Errorf("injection offsets = %v, %v; want 5s, 15s", ev1[0].At, ev1[1].At)
	}
	if ej1 != ej2 {
		t.Errorf("ejected counts differ across replays: %d vs %d", ej1, ej2)
	}
	if rs1 != rs2 {
		t.Errorf("resync counts differ across replays: %d vs %d", rs1, rs2)
	}
	if ej1 != 1 || rs1 != 1 {
		t.Errorf("ejected/resyncs = %d/%d, want 1/1", ej1, rs1)
	}
}

// TestInjectorStopCancelsPending proves Stop cancels injections that
// have not fired yet: nothing fires after Stop even if the clock later
// passes the scheduled offset.
func TestInjectorStopCancelsPending(t *testing.T) {
	db := newFaultDB(t)
	mc := clock.NewManual(time.Unix(0, 0))
	tier := dbtier.New(db, dbtier.Options{Replicas: 2, Conns: 2, Clock: mc, Scale: clock.RealTime})
	defer tier.Close()

	plan, _ := faults.Lookup(faults.ReplicaKill)
	inj, err := plan.Build(faults.Env{
		Clock:   mc,
		Scale:   clock.RealTime,
		Targets: faults.Targets{Tiers: []*dbtier.Tier{tier}},
		Set:     variant.Settings{"at": "30s", "restart": "0s"},
	})
	if err != nil {
		t.Fatal(err)
	}
	inj.Start()
	mc.BlockUntilWaiters(2) // kill step + health ticker
	inj.Stop()
	mc.Advance(time.Minute)
	if n := len(inj.Events()); n != 0 {
		t.Fatalf("%d injections fired after Stop", n)
	}
	if tier.Ejected() != 0 {
		t.Fatal("backend was killed after Stop")
	}
}
