package variant

import (
	"fmt"
	"net"

	"stagedweb/internal/core"
	"stagedweb/internal/dbtier"
	"stagedweb/internal/server"
	"stagedweb/internal/stage"
)

// Registered names of the built-in variants.
const (
	// Unmodified is the baseline thread-per-request server.
	Unmodified = "unmodified"
	// Modified is the staged multi-pool server (the paper's proposal).
	Modified = "modified"
	// ModifiedNoReserve is the staged server with the t_reserve feedback
	// controller ablated — derived from Modified purely by settings.
	ModifiedNoReserve = "modified-noreserve"
)

// Probe names exported by the built-in variants.
const (
	// ProbeQueueSingle is the baseline's single request queue (Figure 7).
	ProbeQueueSingle = "queue.single"
	// ProbeQueueGeneral is the staged general dynamic queue (Figure 8a).
	ProbeQueueGeneral = "queue.general"
	// ProbeQueueLengthy is the staged lengthy dynamic queue (Figure 8b).
	ProbeQueueLengthy = "queue.lengthy"
	// ProbeReserve is the controller's current t_reserve (Table 2).
	ProbeReserve = "sched.reserve"
	// ProbeSpare is the general pool's current spare workers (t_spare).
	ProbeSpare = "sched.spare"
	// ProbeDispatchGeneral counts Table 1 dispatches to the general pool.
	ProbeDispatchGeneral = "dispatch.general"
	// ProbeDispatchLengthy counts Table 1 dispatches to the lengthy pool.
	ProbeDispatchLengthy = "dispatch.lengthy"
	// ProbeServed counts completed requests.
	ProbeServed = "served.total"
	// ProbeDBInUse is the database tier's in-use connection gauge.
	ProbeDBInUse = "db.inuse"
	// ProbeDBWait counts connection acquisitions that had to block.
	ProbeDBWait = "db.wait"
	// ProbeDBQueries counts statements executed across all backends.
	ProbeDBQueries = "db.queries"
	// ProbeDBConflicts counts MVCC first-writer-wins aborts on the
	// primary (each is retried transparently inside sqldb).
	ProbeDBConflicts = "db.conflicts"
	// ProbeDBSnapshots counts snapshot reads on the primary — SELECTs
	// that ran against a fixed commit timestamp without table locks.
	ProbeDBSnapshots = "db.snapshots"
	// ProbeDBReplLag is the primary-to-slowest-replica commit gap, in
	// log entries (always 0 under repl=sync).
	ProbeDBReplLag = "db.repllag"
	// ProbeDBStmtHits counts primary statement-cache hits.
	ProbeDBStmtHits = "db.stmtcache.hit"
	// ProbeDBStmtMiss counts primary statement-cache misses (compiles).
	ProbeDBStmtMiss = "db.stmtcache.miss"
	// ProbeDBEjected counts replicas ejected from the read rotation
	// (dead or pathologically slow backends; cumulative).
	ProbeDBEjected = "db.ejected"
	// ProbeDBResync counts replicas reintegrated into the rotation
	// after catching up by log replay or snapshot resync (cumulative).
	ProbeDBResync = "db.resync"
	// ProbeDBPlanScan counts full-scan access paths executed across the
	// tier — statements (or join inners) the planner could not serve
	// from an index.
	ProbeDBPlanScan = "db.plan.scan"
	// ProbeDBPlanIndex counts index access paths executed across the
	// tier: point lookups, range scans, index-order scans, and
	// index-nested-loop join inners.
	ProbeDBPlanIndex = "db.plan.index"
	// ProbeDBPlanRows counts row versions visited by access paths —
	// the planner's honest I/O volume.
	ProbeDBPlanRows = "db.plan.rowsread"
)

// TierProvider is implemented by instances fronting a database tier;
// fault plans reach the tier through it to kill, slow, or starve
// backends.
type TierProvider interface {
	DBTier() *dbtier.Tier
}

// tierProbes builds the db.* probe set over a database tier.
func tierProbes(t *dbtier.Tier) []Probe {
	return []Probe{
		{ProbeDBInUse, func() float64 { return float64(t.InUse()) }},
		{ProbeDBWait, func() float64 { return float64(t.WaitCount()) }},
		{ProbeDBQueries, func() float64 { return float64(t.QueryCount()) }},
		{ProbeDBConflicts, func() float64 { return float64(t.Conflicts()) }},
		{ProbeDBSnapshots, func() float64 { return float64(t.SnapshotReads()) }},
		{ProbeDBReplLag, func() float64 { return float64(t.ReplLag()) }},
		{ProbeDBStmtHits, func() float64 { return float64(t.StmtCacheHits()) }},
		{ProbeDBStmtMiss, func() float64 { return float64(t.StmtCacheMisses()) }},
		{ProbeDBEjected, func() float64 { return float64(t.Ejected()) }},
		{ProbeDBResync, func() float64 { return float64(t.Resyncs()) }},
		{ProbeDBPlanScan, func() float64 { return float64(t.PlanScans()) }},
		{ProbeDBPlanIndex, func() float64 { return float64(t.PlanIndexLookups()) }},
		{ProbeDBPlanRows, func() float64 { return float64(t.PlanRowsRead()) }},
	}
}

// dbEngineSettings decodes the storage-engine settings shared by every
// variant: mvcc (snapshot reads + optimistic writes, default off), repl
// (replica apply mode, sync|async, default sync), and indexes (extra
// TPC-W secondary indexes, on|off, default off). The indexes key is
// consumed here only so builders validate it; the harness acts on it
// before the variant is built (see IndexesEnabled), because the extra
// indexes must exist on the primary before replicas are cloned from it.
func dbEngineSettings(d *Decoder) (mvcc, replAsync bool) {
	mvcc = d.Bool("mvcc", false)
	replAsync = d.Enum("repl", "sync", "sync", "async") == "async"
	d.Bool("indexes", false)
	return mvcc, replAsync
}

// IndexesEnabled reports whether the indexes=on|off setting asks for
// the extra TPC-W secondary indexes. The harness consults it during
// database population — before any variant builder runs — so it decodes
// just this key without the Decoder's strict unknown-key check.
func IndexesEnabled(explicit, defaults Settings) bool {
	d := NewSettingsDecoder(explicit, defaults)
	return d.Bool("indexes", false)
}

func init() {
	Register(New(Unmodified, buildUnmodified))
	modified := New(Modified, buildModified)
	Register(modified)
	// The ablation topology is pure configuration: the same recipe with
	// the reserve controller forced off. No new server code.
	Register(Derive(ModifiedNoReserve, modified, Settings{"noreserve": "true"}))
}

// instance is the shared Instance implementation for the built-ins.
type instance struct {
	serve  func(net.Listener) error
	stop   func()
	graph  *stage.Graph
	probes []Probe
	tier   *dbtier.Tier
}

func (i *instance) Serve(l net.Listener) error { return i.serve(l) }
func (i *instance) Stop()                      { i.stop() }
func (i *instance) Graph() *stage.Graph        { return i.graph }
func (i *instance) Probes() []Probe            { return i.probes }
func (i *instance) DBTier() *dbtier.Tier       { return i.tier }

// buildUnmodified constructs the thread-per-request baseline.
//
// Settings: workers (pool size == default connection budget, default
// 80), queuecap (accept queue bound), replicas (database backends,
// default 1), dbconns (connection pool size per backend, default
// workers), mvcc (storage engine concurrency control, on|off), repl
// (replica apply mode, sync|async).
func buildUnmodified(env Env) (Instance, error) {
	d := NewDecoder(env)
	workers := d.Int("workers", 80)
	queueCap := d.Int("queuecap", 0)
	replicas := d.Int("replicas", 1)
	dbConns := d.Int("dbconns", 0)
	mvcc, replAsync := dbEngineSettings(d)
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%s: %w", Unmodified, err)
	}
	srv, err := server.NewBaseline(server.BaselineConfig{
		App:        env.App,
		DB:         env.DB,
		Workers:    workers,
		Replicas:   replicas,
		DBConns:    dbConns,
		MVCC:       mvcc,
		ReplAsync:  replAsync,
		QueueCap:   queueCap,
		Cost:       env.Cost,
		Clock:      env.Clock,
		Scale:      env.Scale,
		OnComplete: env.OnComplete,
	})
	if err != nil {
		return nil, err
	}
	return &instance{
		serve: srv.Serve,
		stop:  srv.Stop,
		graph: srv.Graph(),
		tier:  srv.Tier(),
		probes: append([]Probe{
			{ProbeQueueSingle, func() float64 { return float64(srv.QueueLen()) }},
			{ProbeServed, func() float64 { return float64(srv.Served()) }},
		}, tierProbes(srv.Tier())...),
	}, nil
}

// buildModified constructs the staged five-pool server.
//
// Settings: header, static, general, lengthy, render (pool sizes),
// queuecap, minreserve, cutoff (quick/lengthy boundary, paper time),
// noreserve (ablate the t_reserve controller), replicas (database
// backends, default 1), dbconns (connection pool size per backend,
// default general+lengthy), mvcc (storage engine concurrency control,
// on|off), repl (replica apply mode, sync|async).
func buildModified(env Env) (Instance, error) {
	d := NewDecoder(env)
	mvcc, replAsync := dbEngineSettings(d)
	cfg := core.Config{
		App:            env.App,
		DB:             env.DB,
		HeaderWorkers:  d.Int("header", 0),
		StaticWorkers:  d.Int("static", 0),
		GeneralWorkers: d.Int("general", 0),
		LengthyWorkers: d.Int("lengthy", 0),
		RenderWorkers:  d.Int("render", 0),
		QueueCap:       d.Int("queuecap", 0),
		MinReserve:     d.Int("minreserve", 0),
		Cutoff:         d.Duration("cutoff", 0),
		NoReserve:      d.Bool("noreserve", false),
		Replicas:       d.Int("replicas", 1),
		DBConns:        d.Int("dbconns", 0),
		MVCC:           mvcc,
		ReplAsync:      replAsync,
		Clock:          env.Clock,
		Scale:          env.Scale,
		Cost:           env.Cost,
		OnComplete:     env.OnComplete,
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%s: %w", Modified, err)
	}
	srv, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	return &instance{
		serve: srv.Serve,
		stop:  srv.Stop,
		graph: srv.Graph(),
		tier:  srv.Tier(),
		probes: append([]Probe{
			{ProbeQueueGeneral, func() float64 { return float64(srv.GeneralQueueLen()) }},
			{ProbeQueueLengthy, func() float64 { return float64(srv.LengthyQueueLen()) }},
			{ProbeReserve, func() float64 { return float64(srv.Reserve()) }},
			{ProbeSpare, func() float64 { return float64(srv.Spare()) }},
			{ProbeDispatchGeneral, func() float64 { g, _ := srv.DispatchCounts(); return float64(g) }},
			{ProbeDispatchLengthy, func() float64 { _, le := srv.DispatchCounts(); return float64(le) }},
			{ProbeServed, func() float64 { return float64(srv.Served()) }},
		}, tierProbes(srv.Tier())...),
	}, nil
}
