package variant

import (
	"fmt"
	"net"

	"stagedweb/internal/core"
	"stagedweb/internal/server"
	"stagedweb/internal/stage"
)

// Registered names of the built-in variants.
const (
	// Unmodified is the baseline thread-per-request server.
	Unmodified = "unmodified"
	// Modified is the staged multi-pool server (the paper's proposal).
	Modified = "modified"
	// ModifiedNoReserve is the staged server with the t_reserve feedback
	// controller ablated — derived from Modified purely by settings.
	ModifiedNoReserve = "modified-noreserve"
)

// Probe names exported by the built-in variants.
const (
	// ProbeQueueSingle is the baseline's single request queue (Figure 7).
	ProbeQueueSingle = "queue.single"
	// ProbeQueueGeneral is the staged general dynamic queue (Figure 8a).
	ProbeQueueGeneral = "queue.general"
	// ProbeQueueLengthy is the staged lengthy dynamic queue (Figure 8b).
	ProbeQueueLengthy = "queue.lengthy"
	// ProbeReserve is the controller's current t_reserve (Table 2).
	ProbeReserve = "sched.reserve"
	// ProbeSpare is the general pool's current spare workers (t_spare).
	ProbeSpare = "sched.spare"
	// ProbeDispatchGeneral counts Table 1 dispatches to the general pool.
	ProbeDispatchGeneral = "dispatch.general"
	// ProbeDispatchLengthy counts Table 1 dispatches to the lengthy pool.
	ProbeDispatchLengthy = "dispatch.lengthy"
	// ProbeServed counts completed requests.
	ProbeServed = "served.total"
)

func init() {
	Register(New(Unmodified, buildUnmodified))
	modified := New(Modified, buildModified)
	Register(modified)
	// The ablation topology is pure configuration: the same recipe with
	// the reserve controller forced off. No new server code.
	Register(Derive(ModifiedNoReserve, modified, Settings{"noreserve": "true"}))
}

// instance is the shared Instance implementation for the built-ins.
type instance struct {
	serve  func(net.Listener) error
	stop   func()
	graph  *stage.Graph
	probes []Probe
}

func (i *instance) Serve(l net.Listener) error { return i.serve(l) }
func (i *instance) Stop()                      { i.stop() }
func (i *instance) Graph() *stage.Graph        { return i.graph }
func (i *instance) Probes() []Probe            { return i.probes }

// buildUnmodified constructs the thread-per-request baseline.
//
// Settings: workers (pool size == connection budget, default 80),
// queuecap (accept queue bound).
func buildUnmodified(env Env) (Instance, error) {
	d := NewDecoder(env)
	workers := d.Int("workers", 80)
	queueCap := d.Int("queuecap", 0)
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%s: %w", Unmodified, err)
	}
	srv, err := server.NewBaseline(server.BaselineConfig{
		App:        env.App,
		DB:         env.DB,
		Workers:    workers,
		QueueCap:   queueCap,
		Cost:       env.Cost,
		Clock:      env.Clock,
		Scale:      env.Scale,
		OnComplete: env.OnComplete,
	})
	if err != nil {
		return nil, err
	}
	return &instance{
		serve: srv.Serve,
		stop:  srv.Stop,
		graph: srv.Graph(),
		probes: []Probe{
			{ProbeQueueSingle, func() float64 { return float64(srv.QueueLen()) }},
			{ProbeServed, func() float64 { return float64(srv.Served()) }},
		},
	}, nil
}

// buildModified constructs the staged five-pool server.
//
// Settings: header, static, general, lengthy, render (pool sizes),
// queuecap, minreserve, cutoff (quick/lengthy boundary, paper time),
// noreserve (ablate the t_reserve controller).
func buildModified(env Env) (Instance, error) {
	d := NewDecoder(env)
	cfg := core.Config{
		App:            env.App,
		DB:             env.DB,
		HeaderWorkers:  d.Int("header", 0),
		StaticWorkers:  d.Int("static", 0),
		GeneralWorkers: d.Int("general", 0),
		LengthyWorkers: d.Int("lengthy", 0),
		RenderWorkers:  d.Int("render", 0),
		QueueCap:       d.Int("queuecap", 0),
		MinReserve:     d.Int("minreserve", 0),
		Cutoff:         d.Duration("cutoff", 0),
		NoReserve:      d.Bool("noreserve", false),
		Clock:          env.Clock,
		Scale:          env.Scale,
		Cost:           env.Cost,
		OnComplete:     env.OnComplete,
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%s: %w", Modified, err)
	}
	srv, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	return &instance{
		serve: srv.Serve,
		stop:  srv.Stop,
		graph: srv.Graph(),
		probes: []Probe{
			{ProbeQueueGeneral, func() float64 { return float64(srv.GeneralQueueLen()) }},
			{ProbeQueueLengthy, func() float64 { return float64(srv.LengthyQueueLen()) }},
			{ProbeReserve, func() float64 { return float64(srv.Reserve()) }},
			{ProbeSpare, func() float64 { return float64(srv.Spare()) }},
			{ProbeDispatchGeneral, func() float64 { g, _ := srv.DispatchCounts(); return float64(g) }},
			{ProbeDispatchLengthy, func() float64 { _, le := srv.DispatchCounts(); return float64(le) }},
			{ProbeServed, func() float64 { return float64(srv.Served()) }},
		},
	}, nil
}
