// Package variant makes server topologies first-class values: a Variant
// is a named recipe that builds a runnable server Instance from an
// environment (application, database, clocks, cost models, generic
// settings), and a process-wide registry maps names to recipes.
//
// The point of the indirection is that the experiment layers above —
// internal/harness, cmd/experiments, cmd/poolserv — never switch on a
// server type. They look a name up, build it, serve it, and sample its
// Probes into time series. Adding a topology is one Register call; every
// sweep, table, figure, CLI mode, and JSON artifact picks it up with
// zero edits elsewhere. The built-in variants (unmodified, modified,
// modified-noreserve) are registered in builtin.go; the ablation variant
// is derived from the modified recipe purely through settings, proving
// that topologies are configuration, not code.
package variant

import (
	"fmt"
	"net"
	"sort"
	"sync"

	"stagedweb/internal/clock"
	"stagedweb/internal/server"
	"stagedweb/internal/sqldb"
	"stagedweb/internal/stage"
)

// Probe is a named gauge a running Instance exposes. The harness samples
// every probe once per paper second into a metrics.Series keyed by the
// probe's name, replacing hand-wired per-variant sampler blocks.
//
// Names follow a dotted <subsystem>.<metric> scheme ("queue.general",
// "sched.reserve") so series selectors in figures, CSV/JSON artifacts,
// and stats printouts stay uniform across variants. The "throughput."
// prefix is reserved for series the harness computes from completion
// events.
type Probe struct {
	// Name keys the sampled series.
	Name string
	// Gauge reads the current value. It must be safe to call
	// concurrently with the server running, and after Stop.
	Gauge func() float64
}

// Instance is a built, runnable server variant.
type Instance interface {
	// Serve accepts connections on l until Stop. It blocks; run it in a
	// goroutine. The error is nil after a clean Stop.
	Serve(l net.Listener) error
	// Stop shuts the server down, draining in-flight work. Idempotent,
	// and safe to call before, during, or after Serve.
	Stop()
	// Graph exposes the stage graph for uniform stats snapshots.
	Graph() *stage.Graph
	// Probes lists the gauges this variant exports.
	Probes() []Probe
}

// Env is everything a Variant needs to build an Instance.
type Env struct {
	// App is the application to serve.
	App server.App
	// DB is the database variants draw connections from.
	DB *sqldb.DB
	// Clock and Scale drive controllers and paper-time conversion. Nil
	// and zero take the builders' defaults (real time).
	Clock clock.Clock
	Scale clock.Timescale
	// Cost models render/static worker time; the zero value charges
	// nothing.
	Cost server.WorkCost
	// OnComplete, when set, receives a completion event per request.
	OnComplete func(server.CompletionEvent)

	// Set holds explicit setting overrides (CLI -set key=value,
	// harness.Config.Set, scenario mutations). A key the variant does
	// not understand is a build error — typos must not pass silently.
	Set Settings
	// Defaults holds advisory settings (the harness's typed sizing
	// fields). A variant applies the keys it understands and ignores
	// the rest, so one experiment config can drive any topology.
	Defaults Settings
}

// Variant is a named server topology recipe.
type Variant interface {
	// Name is the registry key ("modified", "unmodified", ...).
	Name() string
	// Build constructs a runnable Instance from the environment.
	Build(Env) (Instance, error)
}

// funcVariant adapts a build function into a Variant.
type funcVariant struct {
	name  string
	build func(Env) (Instance, error)
}

func (v funcVariant) Name() string                    { return v.name }
func (v funcVariant) Build(env Env) (Instance, error) { return v.build(env) }

// New wraps a name and a build function as a Variant.
func New(name string, build func(Env) (Instance, error)) Variant {
	return funcVariant{name: name, build: build}
}

// Derive returns a variant that builds base with the forced settings
// layered over the caller's — a topology defined purely by
// configuration. The forced settings win over Env.Set, so a derived
// variant cannot be un-derived from the command line.
func Derive(name string, base Variant, force Settings) Variant {
	return New(name, func(env Env) (Instance, error) {
		env.Set = env.Set.Merge(force)
		return base.Build(env)
	})
}

var (
	regMu    sync.RWMutex
	registry = map[string]Variant{}
)

// Register adds a variant to the process-wide registry. It panics on an
// empty or duplicate name: registration happens at init time, and a
// collision is a programming error.
func Register(v Variant) {
	name := v.Name()
	if name == "" {
		panic("variant: empty variant name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("variant: duplicate registration of %q", name))
	}
	registry[name] = v
}

// Lookup finds a registered variant by name.
func Lookup(name string) (Variant, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	v, ok := registry[name]
	return v, ok
}

// Names lists the registered variant names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
