package variant

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Settings is the generic key=value configuration surface of a variant:
// what `-set key=value` sets on the command line, what scenario
// mutations override in a sweep, and what the harness's typed sizing
// fields lower into. Values are strings; builders decode them through a
// Decoder, which makes unknown explicit keys build errors.
type Settings map[string]string

// Clone returns an independent copy (nil stays nil).
func (s Settings) Clone() Settings {
	if s == nil {
		return nil
	}
	out := make(Settings, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// Merge returns a new Settings with over's entries layered on top of s.
func (s Settings) Merge(over Settings) Settings {
	out := make(Settings, len(s)+len(over))
	for k, v := range s {
		out[k] = v
	}
	for k, v := range over {
		out[k] = v
	}
	return out
}

// ParseKV splits a "key=value" pair, as accepted by -set flags.
func ParseKV(kv string) (key, value string, err error) {
	k, v, ok := strings.Cut(kv, "=")
	k = strings.TrimSpace(k)
	if !ok || k == "" {
		return "", "", fmt.Errorf("variant: malformed setting %q (want key=value)", kv)
	}
	return k, strings.TrimSpace(v), nil
}

// SettingsFlag is a flag.Value collecting repeated "-set key=value"
// arguments into Settings, shared by cmd/experiments and cmd/poolserv:
//
//	var sets variant.SettingsFlag
//	fs.Var(&sets, "set", "variant setting `key=value` (repeatable)")
type SettingsFlag struct {
	Settings Settings
}

// String renders the collected settings (sorted, for -help and tests).
func (f *SettingsFlag) String() string {
	keys := make([]string, 0, len(f.Settings))
	for k := range f.Settings {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	pairs := make([]string, len(keys))
	for i, k := range keys {
		pairs[i] = k + "=" + f.Settings[k]
	}
	return strings.Join(pairs, ",")
}

// Set parses one key=value pair; a repeated key keeps the last value.
func (f *SettingsFlag) Set(kv string) error {
	k, v, err := ParseKV(kv)
	if err != nil {
		return err
	}
	if f.Settings == nil {
		f.Settings = Settings{}
	}
	f.Settings[k] = v
	return nil
}

// Decoder reads typed values out of an Env's settings, explicit
// overrides first, then harness-provided defaults. It accumulates
// errors so builders can decode every key and report problems once:
//
//	d := variant.NewDecoder(env)
//	workers := d.Int("workers", 80)
//	if err := d.Finish(); err != nil { return nil, err }
//
// Finish also rejects explicit keys no accessor consumed, so a typo in
// -set key=value fails the build instead of being silently ignored.
// Unconsumed Defaults keys are fine — they belong to other variants.
type Decoder struct {
	explicit Settings
	defaults Settings
	used     map[string]bool
	errs     []string
}

// NewDecoder returns a Decoder over env.Set and env.Defaults.
func NewDecoder(env Env) *Decoder {
	return NewSettingsDecoder(env.Set, env.Defaults)
}

// NewSettingsDecoder returns a Decoder over explicit overrides and
// advisory defaults directly — for registries that reuse the settings
// surface without a variant Env (internal/load's profiles decode their
// recipes through this).
func NewSettingsDecoder(explicit, defaults Settings) *Decoder {
	return &Decoder{explicit: explicit, defaults: defaults, used: map[string]bool{}}
}

func (d *Decoder) lookup(key string) (string, bool) {
	d.used[key] = true
	if v, ok := d.explicit[key]; ok {
		return v, true
	}
	v, ok := d.defaults[key]
	return v, ok
}

func (d *Decoder) fail(key, val, want string) {
	d.errs = append(d.errs, fmt.Sprintf("setting %s=%q: want %s", key, val, want))
}

// Int reads an integer setting, returning def when unset.
func (d *Decoder) Int(key string, def int) int {
	v, ok := d.lookup(key)
	if !ok {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		d.fail(key, v, "an integer")
		return def
	}
	return n
}

// Float reads a floating-point setting, returning def when unset.
func (d *Decoder) Float(key string, def float64) float64 {
	v, ok := d.lookup(key)
	if !ok {
		return def
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		d.fail(key, v, "a number")
		return def
	}
	return f
}

// Bool reads a boolean setting ("true"/"false"/"1"/"0"/"on"/"off"); a
// key set to the empty string reads as true, so "-set noreserve="
// works.
func (d *Decoder) Bool(key string, def bool) bool {
	v, ok := d.lookup(key)
	if !ok {
		return def
	}
	switch v {
	case "":
		return true
	case "on":
		return true
	case "off":
		return false
	}
	b, err := strconv.ParseBool(v)
	if err != nil {
		d.fail(key, v, "a boolean")
		return def
	}
	return b
}

// String reads a free-form string setting, returning def when unset.
// Prefer Enum when the value set is closed; String is for open-ended
// values like a fault-plan name validated against a registry.
func (d *Decoder) String(key, def string) string {
	v, ok := d.lookup(key)
	if !ok {
		return def
	}
	return v
}

// Enum reads a setting constrained to a closed set of values, returning
// def when unset. Any value outside allowed is a build error, so a typo
// in "-set repl=asynch" fails loudly instead of silently picking the
// default.
func (d *Decoder) Enum(key, def string, allowed ...string) string {
	v, ok := d.lookup(key)
	if !ok {
		return def
	}
	for _, a := range allowed {
		if v == a {
			return v
		}
	}
	d.fail(key, v, "one of "+strings.Join(allowed, "|"))
	return def
}

// Duration reads a Go-syntax duration setting ("2s", "500ms").
func (d *Decoder) Duration(key string, def time.Duration) time.Duration {
	v, ok := d.lookup(key)
	if !ok {
		return def
	}
	dur, err := time.ParseDuration(v)
	if err != nil {
		d.fail(key, v, "a duration like 2s")
		return def
	}
	return dur
}

// Finish reports accumulated decode errors plus any explicit keys never
// consumed by an accessor.
func (d *Decoder) Finish() error {
	var unknown []string
	for k := range d.explicit {
		if !d.used[k] {
			unknown = append(unknown, k)
		}
	}
	sort.Strings(unknown)
	errs := d.errs
	for _, k := range unknown {
		errs = append(errs, fmt.Sprintf("unknown setting %q", k))
	}
	if len(errs) == 0 {
		return nil
	}
	return fmt.Errorf("variant: %s", strings.Join(errs, "; "))
}
