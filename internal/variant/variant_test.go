package variant

import (
	"strings"
	"testing"

	"stagedweb/internal/sqldb"
	"stagedweb/internal/webtest"
)

func testEnv(set Settings) Env {
	return Env{
		App: webtest.NewApp(),
		DB:  sqldb.Open(sqldb.Options{Cost: sqldb.ZeroCostModel()}),
		Set: set,
	}
}

func TestRegistryBuiltins(t *testing.T) {
	names := Names()
	for _, want := range []string{Unmodified, Modified, ModifiedNoReserve} {
		if _, ok := Lookup(want); !ok {
			t.Errorf("builtin %q not registered", want)
		}
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("Names() misses %q: %v", want, names)
		}
	}
	if _, ok := Lookup("no-such-variant"); ok {
		t.Error("bogus lookup succeeded")
	}
	if !sortedStrings(names) {
		t.Errorf("Names() unsorted: %v", names)
	}
}

func sortedStrings(s []string) bool {
	for i := 1; i < len(s); i++ {
		if s[i] < s[i-1] {
			return false
		}
	}
	return true
}

func TestRegisterPanics(t *testing.T) {
	mustPanic := func(name string, v Variant) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Register did not panic", name)
			}
		}()
		Register(v)
	}
	mustPanic("empty", New("", nil))
	mustPanic("duplicate", New(Modified, nil))
}

func TestBuildUnmodified(t *testing.T) {
	v, _ := Lookup(Unmodified)
	inst, err := v.Build(testEnv(Settings{"workers": "2"}))
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Stop()
	if inst.Graph() == nil {
		t.Fatal("nil graph")
	}
	probes := probeNames(inst)
	if !probes[ProbeQueueSingle] || !probes[ProbeServed] {
		t.Fatalf("baseline probes wrong: %v", probes)
	}
	for _, p := range inst.Probes() {
		_ = p.Gauge() // gauges must be callable before Serve
	}
}

func TestBuildModifiedAndDerived(t *testing.T) {
	v, _ := Lookup(Modified)
	inst, err := v.Build(testEnv(Settings{"general": "4", "lengthy": "2", "minreserve": "3", "cutoff": "2s"}))
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Stop()
	probes := probeNames(inst)
	for _, want := range []string{ProbeQueueGeneral, ProbeQueueLengthy, ProbeReserve, ProbeSpare, ProbeServed} {
		if !probes[want] {
			t.Errorf("staged probes miss %s: %v", want, probes)
		}
	}
	if got := gauge(inst, ProbeReserve)(); got != 3 {
		t.Errorf("minreserve setting ignored: t_reserve = %v", got)
	}

	// The derived ablation pins t_reserve at zero even when the caller
	// tries to configure a reserve — forced settings win.
	nv, _ := Lookup(ModifiedNoReserve)
	ninst, err := nv.Build(testEnv(Settings{"general": "4", "lengthy": "2", "minreserve": "9"}))
	if err != nil {
		t.Fatal(err)
	}
	defer ninst.Stop()
	if got := gauge(ninst, ProbeReserve)(); got != 0 {
		t.Errorf("noreserve variant has t_reserve = %v", got)
	}
}

// TestReplicasSetting proves the database tier is pure configuration on
// both built-in variants: replicas=N builds N backends, the db.* probes
// appear, and nonsense values fail the strict decoder.
func TestReplicasSetting(t *testing.T) {
	for name, set := range map[string]Settings{
		Unmodified: {"workers": "2", "replicas": "3", "dbconns": "2"},
		Modified:   {"general": "4", "lengthy": "2", "replicas": "3", "dbconns": "2"},
	} {
		v, _ := Lookup(name)
		inst, err := v.Build(testEnv(set))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		probes := probeNames(inst)
		for _, want := range []string{ProbeDBInUse, ProbeDBWait, ProbeDBQueries} {
			if !probes[want] {
				t.Errorf("%s probes miss %s: %v", name, want, probes)
			}
		}
		inst.Stop()
	}
	v, _ := Lookup(Modified)
	if _, err := v.Build(testEnv(Settings{"replicas": "frog"})); err == nil ||
		!strings.Contains(err.Error(), "replicas") {
		t.Errorf("malformed replicas accepted: %v", err)
	}
	if _, err := v.Build(testEnv(Settings{"dbconns": "many"})); err == nil ||
		!strings.Contains(err.Error(), "dbconns") {
		t.Errorf("malformed dbconns accepted: %v", err)
	}
}

func TestBuildRejectsUnknownAndMalformed(t *testing.T) {
	for _, name := range []string{Unmodified, Modified} {
		v, _ := Lookup(name)
		if _, err := v.Build(testEnv(Settings{"bogus": "1"})); err == nil ||
			!strings.Contains(err.Error(), "bogus") {
			t.Errorf("%s accepted unknown setting: %v", name, err)
		}
	}
	v, _ := Lookup(Modified)
	if _, err := v.Build(testEnv(Settings{"cutoff": "fast"})); err == nil {
		t.Error("malformed duration accepted")
	}
	// Defaults the variant does not understand are ignored, not errors.
	env := testEnv(nil)
	env.Defaults = Settings{"workers": "4", "header": "2"}
	u, _ := Lookup(Unmodified)
	if _, err := u.Build(env); err != nil {
		t.Errorf("baseline rejected foreign default: %v", err)
	}
}

func TestBuildNilAppError(t *testing.T) {
	v, _ := Lookup(Modified)
	if _, err := v.Build(Env{}); err == nil {
		t.Fatal("empty env accepted")
	}
}

func probeNames(inst Instance) map[string]bool {
	out := map[string]bool{}
	for _, p := range inst.Probes() {
		out[p.Name] = true
	}
	return out
}

func gauge(inst Instance, name string) func() float64 {
	for _, p := range inst.Probes() {
		if p.Name == name {
			return p.Gauge
		}
	}
	return func() float64 { return -1 }
}
