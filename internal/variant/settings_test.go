package variant

import (
	"strings"
	"testing"
	"time"
)

func TestSettingsCloneMerge(t *testing.T) {
	var nilSet Settings
	if nilSet.Clone() != nil {
		t.Fatal("nil clone not nil")
	}
	base := Settings{"a": "1", "b": "2"}
	c := base.Clone()
	c["a"] = "9"
	if base["a"] != "1" {
		t.Fatal("clone aliases base")
	}
	m := base.Merge(Settings{"b": "3", "c": "4"})
	if m["a"] != "1" || m["b"] != "3" || m["c"] != "4" {
		t.Fatalf("merge wrong: %v", m)
	}
	if base["b"] != "2" {
		t.Fatal("merge mutated receiver")
	}
}

func TestParseKV(t *testing.T) {
	k, v, err := ParseKV("cutoff=2s")
	if err != nil || k != "cutoff" || v != "2s" {
		t.Fatalf("ParseKV: %q %q %v", k, v, err)
	}
	k, v, err = ParseKV(" general = 32 ")
	if err != nil || k != "general" || v != "32" {
		t.Fatalf("ParseKV trims: %q %q %v", k, v, err)
	}
	for _, bad := range []string{"", "=5", "noequals"} {
		if _, _, err := ParseKV(bad); err == nil {
			t.Errorf("ParseKV(%q) accepted", bad)
		}
	}
}

func TestSettingsFlag(t *testing.T) {
	var f SettingsFlag
	if f.String() != "" {
		t.Errorf("empty String() = %q", f.String())
	}
	for _, kv := range []string{"general=32", "cutoff=3s", "general=8"} {
		if err := f.Set(kv); err != nil {
			t.Fatal(err)
		}
	}
	if f.Settings["general"] != "8" || f.Settings["cutoff"] != "3s" {
		t.Fatalf("collected = %v", f.Settings)
	}
	if got := f.String(); got != "cutoff=3s,general=8" {
		t.Errorf("String() = %q", got)
	}
	if err := f.Set("nonsense"); err == nil {
		t.Error("malformed pair accepted")
	}
}

func TestDecoderTypesAndLayering(t *testing.T) {
	env := Env{
		Set:      Settings{"general": "32", "noreserve": "", "cutoff": "3s"},
		Defaults: Settings{"general": "64", "lengthy": "16", "ignored-elsewhere": "x"},
	}
	d := NewDecoder(env)
	if got := d.Int("general", 1); got != 32 {
		t.Errorf("explicit beats default: got %d", got)
	}
	if got := d.Int("lengthy", 1); got != 16 {
		t.Errorf("default read: got %d", got)
	}
	if got := d.Int("render", 7); got != 7 {
		t.Errorf("unset default: got %d", got)
	}
	if !d.Bool("noreserve", false) {
		t.Error("bare key not true")
	}
	if got := d.Duration("cutoff", time.Second); got != 3*time.Second {
		t.Errorf("duration: got %v", got)
	}
	// Unconsumed Defaults keys are fine; all Set keys were consumed.
	if err := d.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

func TestDecoderBoolOnOff(t *testing.T) {
	d := NewDecoder(Env{Set: Settings{"mvcc": "on", "trace": "off"}})
	if !d.Bool("mvcc", false) {
		t.Error(`"on" not true`)
	}
	if d.Bool("trace", true) {
		t.Error(`"off" not false`)
	}
	if err := d.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

func TestDecoderEnum(t *testing.T) {
	d := NewDecoder(Env{
		Set:      Settings{"repl": "async"},
		Defaults: Settings{"mode": "tpr"},
	})
	if got := d.Enum("repl", "sync", "sync", "async"); got != "async" {
		t.Errorf("explicit enum: got %q", got)
	}
	if got := d.Enum("mode", "staged", "staged", "tpr"); got != "tpr" {
		t.Errorf("default-layer enum: got %q", got)
	}
	if got := d.Enum("other", "staged", "staged", "tpr"); got != "staged" {
		t.Errorf("unset enum: got %q", got)
	}
	if err := d.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}

	bad := NewDecoder(Env{Set: Settings{"repl": "asynch"}})
	if got := bad.Enum("repl", "sync", "sync", "async"); got != "sync" {
		t.Errorf("bad enum did not return default: %q", got)
	}
	err := bad.Finish()
	if err == nil || !strings.Contains(err.Error(), "sync|async") {
		t.Fatalf("Finish error %v does not name allowed values", err)
	}
}

func TestDecoderErrors(t *testing.T) {
	d := NewDecoder(Env{Set: Settings{"workers": "many", "bogus": "1"}})
	if got := d.Int("workers", 5); got != 5 {
		t.Errorf("bad int did not return default: %d", got)
	}
	err := d.Finish()
	if err == nil {
		t.Fatal("Finish accepted bad settings")
	}
	for _, want := range []string{"workers", "bogus"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q misses %q", err, want)
		}
	}
}
