// Package catalog is the canonical registry of the repo's string-keyed
// name spaces: probe/series names sampled into Result.Series and
// settings keys decoded through variant.Decoder. The probenames and
// settingskeys analyzers check every use site against these lists, and
// catalog_test cross-checks the lists against the declaring constants,
// the README tables, and the CI artifact assertions — so a name cannot
// be registered, sampled, asserted, or documented without appearing
// everywhere it must.
//
// Adding a probe or settings key is a three-line change: declare the
// constant (or decoder call) where it is used, add it here with a short
// description, and document it in the README table. Any one of the
// three missing fails the build.
package catalog

import "regexp"

// ProbeNameRE is the shape every probe/series name must have:
// dotted lowercase, at least two segments ("db.inuse", not "dbInUse").
var ProbeNameRE = regexp.MustCompile(`^[a-z][a-z0-9]*(\.[a-z0-9]+)+$`)

// SettingsKeyRE is the shape every settings key must have: a single
// lowercase word ("minreserve", not "min-reserve" or "minReserve").
var SettingsKeyRE = regexp.MustCompile(`^[a-z][a-z0-9]*$`)

// Probes maps every registered probe/series name to a one-line
// description. Sources: variant.Instance.Probes registrations
// (internal/variant/builtin.go), client-side driver probes
// (internal/load), fault-injector probes (internal/faults), and the
// harness-owned throughput series (internal/harness).
var Probes = map[string]string{
	// Server-side probes (internal/variant/builtin.go).
	"queue.single":      "baseline: accepted requests waiting for a worker",
	"queue.general":     "staged: general dynamic queue depth",
	"queue.lengthy":     "staged: lengthy dynamic queue depth",
	"sched.reserve":     "staged: t_reserve spare-worker target",
	"sched.spare":       "staged: spare dynamic workers right now",
	"dispatch.general":  "staged: requests dispatched to general workers",
	"dispatch.lengthy":  "staged: requests dispatched to lengthy workers",
	"served.total":      "completed interactions since start",
	"db.inuse":          "database tier: connections checked out",
	"db.wait":           "database tier: acquisitions that had to wait",
	"db.queries":        "database tier: statements executed",
	"db.conflicts":      "mvcc: first-writer-wins write conflicts",
	"db.snapshots":      "mvcc: snapshot reads taken",
	"db.repllag":        "replication: max replica lag in commits",
	"db.stmtcache.hit":  "statement cache hits",
	"db.stmtcache.miss": "statement cache misses",
	"db.ejected":        "failover: replicas ejected from the read rotation",
	"db.resync":         "failover: replicas reintegrated after catch-up or resync",
	"db.plan.scan":      "planner: full-scan access paths executed",
	"db.plan.index":     "planner: index access paths executed (point, range, order, join)",
	"db.plan.rowsread":  "planner: row versions visited by access paths",

	// Cluster balancer probes (internal/cluster).
	"shard.route":     "cluster: requests routed to a single shard",
	"shard.fanout":    "cluster: requests broadcast to every shard",
	"shard.imbalance": "cluster: max-shard share over the balanced share",
	"lb.wait":         "cluster: load-balancer stage queue depth",
	"lb.retry":        "cluster: forward re-attempts (stale conn or backoff retry)",
	"lb.breaker":      "cluster: per-shard circuit-breaker opens",
	"lb.halfopen":     "cluster: half-open trial forwards probing an open breaker",

	// Fault-injector probes (internal/faults).
	"fault.injected": "fault plan: injections executed so far",

	// Client-side probes (internal/load).
	"client.active":  "emulated browsers currently running",
	"client.offered": "offered request rate at the driver",
	"client.errors":  "failed interactions at the driver",
	"client.wirt":    "rolling worst interaction response time (sec)",

	// Harness-owned series (internal/harness); the "throughput."
	// prefix is reserved for the harness.
	"throughput.all":     "completions per paper minute, all pages",
	"throughput.static":  "completions per paper minute, static pages",
	"throughput.dynamic": "completions per paper minute, dynamic pages",
	"throughput.quick":   "completions per paper minute, quick dynamic pages",
	"throughput.lengthy": "completions per paper minute, lengthy dynamic pages",
}

// SettingsKeys maps every key decodable through variant.Decoder to a
// one-line description. Sources: the variant registry
// (internal/variant/builtin.go) and the load-profile registry
// (internal/load/builtin.go). Test-only keys in *_test.go files are
// exempt — the analyzers skip test files.
var SettingsKeys = map[string]string{
	// Variant settings (internal/variant/builtin.go).
	"mvcc":       "storage engine: off = per-table RW locks, on = snapshot MVCC",
	"repl":       "replication mode: sync | async",
	"indexes":    "extra TPC-W secondary indexes: off = paper schema, on = indexed",
	"workers":    "baseline worker/connection count",
	"queuecap":   "bounded queue capacity",
	"replicas":   "database backends (1 primary + N-1 read replicas)",
	"dbconns":    "connections per database backend",
	"header":     "staged header-stage workers",
	"static":     "staged static-stage workers",
	"general":    "staged general dynamic workers",
	"lengthy":    "staged lengthy dynamic workers",
	"render":     "staged render-stage workers",
	"minreserve": "floor for the t_reserve controller",
	"cutoff":     "lengthy-page classification cutoff",
	"noreserve":  "disable the t_reserve controller",

	// Cluster settings (internal/cluster).
	"shards": "shard count behind the consistent-hash balancer",
	"lb":     "key-less routing policy: hash | rr",

	// Fault-plan settings (internal/faults).
	"faults":   "fault plan injected during the measurement window (none = off)",
	"faultset": "fault-plan settings as key=value,key=value pairs",
	"target":   "fault target index (backend or shard)",
	"restart":  "delay from injection to healing (paper time; 0 = never)",
	"slow":     "added per-statement latency for slow-backend (paper time)",
	"every":    "conn-drop repeat interval (paper time)",
	"conns":    "connections leaked per tier (0 = all idle)",

	// Load-profile settings (internal/load/builtin.go).
	"ebs":     "base emulated-browser population",
	"to":      "step/ramp target population",
	"at":      "step/spike/fault onset (paper time)",
	"over":    "ramp duration (paper time)",
	"delay":   "ramp start delay (paper time)",
	"burst":   "spike peak population",
	"width":   "spike width (paper time)",
	"amp":     "wave amplitude (population)",
	"period":  "wave period (paper time)",
	"rate":    "open-loop session arrivals per paper second",
	"session": "open-loop mean session lifetime (paper time)",
}

// IsProbe reports whether name is a registered probe/series name.
func IsProbe(name string) bool { _, ok := Probes[name]; return ok }

// IsSettingsKey reports whether key is a registered settings key.
func IsSettingsKey(key string) bool { _, ok := SettingsKeys[key]; return ok }
