package catalog

import (
	"go/ast"
	"go/constant"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

const repoRoot = "../../.."

// TestShapes: every catalog entry obeys the shape its analyzer
// enforces, and every entry has a non-empty description.
func TestShapes(t *testing.T) {
	for name, desc := range Probes {
		if !ProbeNameRE.MatchString(name) {
			t.Errorf("catalog probe %q is not dotted-lowercase", name)
		}
		if strings.TrimSpace(desc) == "" {
			t.Errorf("catalog probe %q has no description", name)
		}
	}
	for key, desc := range SettingsKeys {
		if !SettingsKeyRE.MatchString(key) {
			t.Errorf("catalog settings key %q is not a lowercase word", key)
		}
		if strings.TrimSpace(desc) == "" {
			t.Errorf("catalog settings key %q has no description", key)
		}
	}
}

// TestProbesMatchDeclaringConstants cross-checks the catalog against
// the Probe*/Series* string constants actually declared in the probe-
// owning packages — both directions: a constant missing from the
// catalog fails (register it), and a catalog entry no package declares
// fails (it would be a series nobody can sample).
func TestProbesMatchDeclaringConstants(t *testing.T) {
	declared := map[string]string{}
	for _, dir := range []string{"internal/variant", "internal/load", "internal/harness", "internal/cluster", "internal/faults"} {
		for name, val := range probeConstants(t, filepath.Join(repoRoot, dir)) {
			declared[val] = name
		}
	}
	for val, name := range declared {
		if !IsProbe(val) {
			t.Errorf("constant %s declares probe %q but the catalog does not register it", name, val)
		}
	}
	for val := range Probes {
		if _, ok := declared[val]; !ok {
			t.Errorf("catalog registers probe %q but no Probe*/Series* constant declares it — sampled-but-never-registered", val)
		}
	}
}

// TestSettingsKeysMatchDecoderCalls cross-checks the catalog against
// the keys the variant and load registries actually decode — both
// directions again: an undecoded catalog key is a knob that does
// nothing, and a decoded key outside the catalog is undocumented drift
// (also caught per-call-site by the settingskeys analyzer).
func TestSettingsKeysMatchDecoderCalls(t *testing.T) {
	decodeRE := regexp.MustCompile(`\.(Bool|Int|Float|Enum|Duration|String)\("([a-z][a-z0-9]*)"`)
	decoded := map[string]bool{}
	for _, dir := range []string{"internal/variant", "internal/load", "internal/cluster", "internal/faults"} {
		for _, src := range nonTestSources(t, filepath.Join(repoRoot, dir)) {
			for _, m := range decodeRE.FindAllStringSubmatch(src, -1) {
				decoded[m[2]] = true
			}
		}
	}
	for key := range decoded {
		if !IsSettingsKey(key) {
			t.Errorf("registry decodes settings key %q but the catalog does not register it", key)
		}
	}
	for key := range SettingsKeys {
		if !decoded[key] {
			t.Errorf("catalog registers settings key %q but no registry decodes it", key)
		}
	}
}

// TestReadmeDocumentsCatalog: every probe name and settings key in the
// catalog appears in the README — the analyzers guarantee code matches
// the catalog, this guarantees the catalog matches the docs.
func TestReadmeDocumentsCatalog(t *testing.T) {
	readme := readFile(t, filepath.Join(repoRoot, "README.md"))
	for name := range Probes {
		// The throughput series are documented as one collapsed row.
		if strings.HasPrefix(name, "throughput.") &&
			strings.Contains(readme, "throughput.all/static/dynamic/quick/lengthy") {
			continue
		}
		if !strings.Contains(readme, name) {
			t.Errorf("README does not mention probe %q", name)
		}
	}
	for key := range SettingsKeys {
		if !strings.Contains(readme, "`"+key) {
			t.Errorf("README does not document settings key %q", key)
		}
	}
}

// TestCIAssertionsUseCatalogNames: every probe-prefixed token the CI
// workflow greps out of JSON artifacts must be a registered name, so an
// assertion cannot silently test a series nobody emits.
func TestCIAssertionsUseCatalogNames(t *testing.T) {
	ci := readFile(t, filepath.Join(repoRoot, ".github/workflows/ci.yml"))
	prefixes := []string{"queue.", "sched.", "dispatch.", "served.", "db.", "client.", "throughput.", "shard.", "lb.", "fault."}
	tokenRE := regexp.MustCompile(`[a-z][a-z0-9]*(\.[a-z0-9]+)+`)
	for _, tok := range tokenRE.FindAllString(ci, -1) {
		for _, p := range prefixes {
			if strings.HasPrefix(tok, p) && !IsProbe(tok) {
				t.Errorf("ci.yml references %q, which is not a registered probe name", tok)
			}
		}
	}
}

// probeConstants type-checks one package directory (syntax-only
// importer: constants need no imports resolved) and returns its
// Probe*/Series* string constants.
func probeConstants(t *testing.T, dir string) map[string]string {
	t.Helper()
	fset := token.NewFileSet()
	consts := map[string]string{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if !strings.HasPrefix(name.Name, "Probe") && !strings.HasPrefix(name.Name, "Series") {
						continue
					}
					if i >= len(vs.Values) {
						continue
					}
					if lit, ok := vs.Values[i].(*ast.BasicLit); ok && lit.Kind == token.STRING {
						val := constant.StringVal(constant.MakeFromLiteral(lit.Value, lit.Kind, 0))
						consts[name.Name] = val
					}
				}
			}
		}
	}
	return consts
}

func nonTestSources(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var srcs []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		srcs = append(srcs, readFile(t, filepath.Join(dir, e.Name())))
	}
	return srcs
}

func readFile(t *testing.T, path string) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}
