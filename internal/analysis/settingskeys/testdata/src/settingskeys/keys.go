// Package settingskeys exercises the settings-key discipline: every key
// decoded through variant.Decoder is a constant, lowercase-word string
// registered in the catalog.
package settingskeys

import "stagedweb/internal/variant"

func decode(explicit, defaults variant.Settings) error {
	d := variant.NewSettingsDecoder(explicit, defaults)

	// Registered keys decode without complaint.
	_ = d.Int("workers", 80)
	_ = d.Bool("mvcc", false)
	_ = d.Enum("repl", "sync", "sync", "async")

	// Undeclared, badly shaped, and computed keys are each rejected.
	_ = d.Int("quorum", 4)   // want `settings key "quorum" is not registered in internal/analysis/catalog`
	_ = d.Int("MaxConns", 1) // want `settings key "MaxConns" is not a lowercase word`
	key := "spelled" + "out"
	_ = d.Int(key, 1) // want `settings key must be a compile-time string constant`

	// The escape hatch, with the mandatory reason.
	_ = d.Int("legacy", 0) //lint:allow settingskeys(grandfathered knob read by old run scripts)

	return d.Finish()
}
