package settingskeys

import (
	"testing"

	"stagedweb/internal/analysis/analysistest"
	"stagedweb/internal/analysis/framework"
)

// TestFixtures covers the settings-key discipline both ways: registered
// keys decode silently; undeclared, badly shaped, and computed keys are
// flagged; the escape hatch suppresses.
func TestFixtures(t *testing.T) {
	analysistest.Run(t, ".", []*framework.Analyzer{Analyzer}, "settingskeys")
}
