// Package settingskeys defines an analyzer for the key=value settings
// surface decoded through variant.Decoder.
//
// Settings keys are user-facing API: they arrive via -set flags, ride
// through variant/load registries, and are documented in README tables.
// A knob decoded under a key the catalog has never heard of is exactly
// how `mvcc=`/`repl=`-style switches drift undocumented. The analyzer
// checks every call to a decoding method on variant.Decoder
// (Bool/Int/Float/Enum/Duration): the key argument must be a
// compile-time string constant, lowercase-word shaped, and registered
// in internal/analysis/catalog — where each key carries its one-line
// description that the catalog tests cross-check against the README
// settings tables.
package settingskeys

import (
	"go/ast"
	"go/constant"

	"stagedweb/internal/analysis/catalog"
	"stagedweb/internal/analysis/framework"
)

// decodeMethods are the variant.Decoder methods whose first argument is
// a settings key.
var decodeMethods = map[string]bool{
	"Bool":     true,
	"Int":      true,
	"Float":    true,
	"Enum":     true,
	"Duration": true,
	"String":   true,
}

// Analyzer is the settingskeys pass.
var Analyzer = &framework.Analyzer{
	Name: "settingskeys",
	Doc:  "require every key decoded through variant.Decoder to be a constant, lowercase-word string registered in internal/analysis/catalog",
	Run:  run,
}

func run(pass *framework.Pass) error {
	allows := framework.ScanAllows(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			if !isDecoderCall(pass, call) {
				return true
			}
			if pass.InTestFile(call.Pos()) {
				return true
			}
			key := call.Args[0]
			if allows.Allowed(key.Pos()) {
				return true
			}
			tv, ok := pass.TypesInfo.Types[key]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				pass.Reportf(key.Pos(), "settings key must be a compile-time string constant, not a computed value")
				return true
			}
			val := constant.StringVal(tv.Value)
			if !catalog.SettingsKeyRE.MatchString(val) {
				pass.Reportf(key.Pos(), "settings key %q is not a lowercase word (want e.g. %q)", val, "minreserve")
			} else if !catalog.IsSettingsKey(val) {
				pass.Reportf(key.Pos(), "settings key %q is not registered in internal/analysis/catalog (add it with a description and to the README table)", val)
			}
			return true
		})
	}
	allows.Finish()
	return nil
}

// isDecoderCall reports whether call invokes a decoding method on
// variant.Decoder.
func isDecoderCall(pass *framework.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !decodeMethods[sel.Sel.Name] {
		return false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok {
		return false
	}
	return framework.NamedType(tv.Type, "stagedweb/internal/variant", "Decoder")
}
