// Package framework is a dependency-free miniature of
// golang.org/x/tools/go/analysis: just enough of the Analyzer/Pass API
// to write this repository's invariant checkers, plus two drivers — a
// unitchecker speaking the `go vet -vettool` command-line protocol
// (unitchecker.go) and a standalone loader that analyzes package
// patterns directly via `go list -export` (standalone.go).
//
// The repo vendors nothing: the container image bakes in only the Go
// toolchain, so the usual x/tools dependency is off the table. The API
// mirrors go/analysis deliberately — if the dependency ever becomes
// available, the analyzers port by changing one import path.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one analysis pass: a named checker that inspects
// a type-checked package and reports diagnostics.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow Name(reason) escape comments. It must be a valid Go
	// identifier.
	Name string
	// Doc is the help text: first line is a one-sentence summary.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass is the interface between one analyzer run and the driver: one
// type-checked package plus a diagnostic sink.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Diagnostic is a message tied to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// InTestFile reports whether pos lies in a _test.go file. The invariant
// analyzers audit production code; tests legitimately synchronize with
// real goroutines on the wall clock, so every analyzer skips test files.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// callee resolves the object a call expression invokes: a package-level
// function, a method, or nil for indirect calls through non-selector
// expressions.
func callee(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			return sel.Obj()
		}
		return info.Uses[fun.Sel]
	}
	return nil
}

// Callee is the exported resolver the analyzers share.
func Callee(info *types.Info, call *ast.CallExpr) types.Object { return callee(info, call) }

// IsPkgFunc reports whether obj is the package-level function path.name
// (e.g. "time".Sleep).
func IsPkgFunc(obj types.Object, path, name string) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == path && obj.Name() == name
}

// NamedType reports whether t (after pointer indirection) is the named
// type path.name.
func NamedType(t types.Type, path, name string) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == path && obj.Name() == name
}
