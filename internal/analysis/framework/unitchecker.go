package framework

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// This file speaks the command-line protocol `go vet -vettool=...`
// expects of an analysis tool. The go command probes the tool twice
// before any checking happens:
//
//	tool -V=full    report an identity string ending in a content hash,
//	                folded into build IDs so edits to the tool invalidate
//	                cached vet results
//	tool -flags     report supported flags as JSON so the go command can
//	                forward -vet flags it recognizes
//
// and then invokes it once per package unit:
//
//	tool <unit>.cfg
//
// where the cfg file is a JSON description of one type-checkable unit:
// its Go files, the import map, and the export-data file of every
// dependency. Diagnostics go to stderr as "pos: message" lines with exit
// status 1; a clean unit writes its (for us, empty) .vetx facts file and
// exits 0.

// vetConfig mirrors the JSON the go command writes to <unit>.cfg.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point of a vettool built on this framework. It
// handles the protocol flags, runs the analyzers when handed a .cfg
// file, and falls back to Standalone pattern mode for direct invocation
// (`vetcheck ./...`). It does not return.
func Main(progname string, analyzers ...*Analyzer) {
	fs := flag.NewFlagSet(progname, flag.ExitOnError)
	printVersion := fs.String("V", "", "print version and exit (-V=full includes a content hash)")
	printFlags := fs.Bool("flags", false, "print flags understood by this tool as JSON and exit")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [package pattern ...]   # standalone mode\n", progname)
		fmt.Fprintf(os.Stderr, "       %s <unit>.cfg              # invoked by go vet -vettool\n", progname)
		for _, a := range analyzers {
			doc := a.Doc
			if i := strings.IndexByte(doc, '\n'); i >= 0 {
				doc = doc[:i]
			}
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, doc)
		}
	}
	fs.Parse(os.Args[1:])

	switch {
	case *printVersion != "":
		versionMain(progname, *printVersion)
	case *printFlags:
		// No analyzer-specific flags; the empty list tells the go
		// command to forward nothing.
		os.Stdout.WriteString("[]\n")
		os.Exit(0)
	}

	args := fs.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		unitMain(args[0], analyzers)
	}
	standaloneMain(analyzers, args)
}

// versionMain implements -V. The go command requires the full form
//
//	<progname> version devel comments-go-here buildID=<hash>
//
// where the hash identifies this tool's contents: hashing the executable
// itself means rebuilding the tool changes the ID and invalidates any
// cached vet verdicts computed by the old binary.
func versionMain(progname, mode string) {
	if mode != "full" {
		fmt.Printf("%s version devel\n", progname)
		os.Exit(0)
	}
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	f.Close()
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, h.Sum(nil))
	os.Exit(0)
}

// unitMain analyzes the single package unit described by cfgFile.
func unitMain(cfgFile string, analyzers []*Analyzer) {
	findings, err := runUnit(cfgFile, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(findings) > 0 {
		for _, f := range findings {
			fmt.Fprintf(os.Stderr, "%v: %s\n", f.Pos, f.Message)
		}
		os.Exit(1)
	}
	os.Exit(0)
}

func runUnit(cfgFile string, analyzers []*Analyzer) ([]Finding, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, err
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %v", cfgFile, err)
	}

	fset := token.NewFileSet()
	// Dependencies come pre-compiled: the lookup serves each import's
	// export data from the file the go command named, resolving vendor
	// or module aliases through ImportMap first.
	imp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	goFiles := cfg.GoFiles
	if cfg.Dir != "" {
		goFiles = make([]string, len(cfg.GoFiles))
		for i, f := range cfg.GoFiles {
			if !filepath.IsAbs(f) {
				f = filepath.Join(cfg.Dir, f)
			}
			goFiles[i] = f
		}
	}
	files, pkg, info, err := typeCheck(fset, cfg.ImportPath, goFiles, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			os.Exit(0)
		}
		return nil, err
	}

	var findings []Finding
	if !cfg.VetxOnly {
		findings, err = runAnalyzers(fset, files, pkg, info, analyzers)
		if err != nil {
			return nil, err
		}
	}

	// These analyzers exchange no facts between packages, but the go
	// command still expects the promised .vetx output to exist before it
	// caches the result.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			return nil, err
		}
	}
	return findings, nil
}

// standaloneMain runs the analyzers over package patterns directly,
// outside the go vet protocol.
func standaloneMain(analyzers []*Analyzer, patterns []string) {
	if len(patterns) == 0 {
		patterns = []string{"."}
	}
	findings, err := Standalone("", analyzers, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%v: %s [%s]\n", f.Pos, f.Message, f.Analyzer)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
	os.Exit(0)
}
