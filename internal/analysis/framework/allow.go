package framework

import (
	"go/token"
	"regexp"
	"strings"
)

// Escape comments. A diagnostic from analyzer NAME is suppressed by
//
//	//lint:allow NAME(reason)
//
// placed at the end of the offending line or alone on the line above
// it. The reason is mandatory — an allowlist entry that does not say
// why it exists is itself a diagnostic (reported by the lintallow
// analyzer, which owns the comment syntax) — and an allow comment that
// suppresses nothing is reported as unused by the analyzer it names,
// so stale escapes cannot accumulate.

// allowRE matches one well-formed allow comment after the "//" marker.
var allowRE = regexp.MustCompile(`^lint:allow\s+([A-Za-z][A-Za-z0-9]*)\((.*)\)\s*$`)

// AllowPrefix marks a comment as an allowlist entry, well-formed or not.
const AllowPrefix = "lint:allow"

// stripWant truncates an analysistest "// want" expectation marker from
// a comment's text, so fixtures can annotate diagnostics reported at
// the allow comment itself (e.g. the unused-allow check). Production
// comments never contain the marker.
func stripWant(text string) string {
	if i := strings.Index(text, "// want "); i >= 0 {
		return strings.TrimSpace(text[:i])
	}
	return text
}

// allowEntry is one parsed //lint:allow comment.
type allowEntry struct {
	pos    token.Pos
	file   string
	line   int
	name   string
	reason string
	used   bool
}

// Allows indexes the //lint:allow comments of one package for one
// analyzer.
type Allows struct {
	pass    *Pass
	entries []*allowEntry
}

// ScanAllows collects the allow comments naming pass.Analyzer. Analyzers
// call Allowed before reporting and Finish after their walk.
func ScanAllows(pass *Pass) *Allows {
	a := &Allows{pass: pass}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := stripWant(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")))
				m := allowRE.FindStringSubmatch(text)
				if m == nil || m[1] != pass.Analyzer.Name {
					continue
				}
				posn := pass.Fset.Position(c.Pos())
				a.entries = append(a.entries, &allowEntry{
					pos:    c.Pos(),
					file:   posn.Filename,
					line:   posn.Line,
					name:   m[1],
					reason: strings.TrimSpace(m[2]),
				})
			}
		}
	}
	return a
}

// Allowed reports whether a diagnostic at pos is suppressed: an allow
// comment for this analyzer sits on the same line or alone on the line
// above. Matching entries are marked used even when malformed (empty
// reason), so the lintallow analyzer reports the missing reason exactly
// once instead of this analyzer also reporting the site.
func (a *Allows) Allowed(pos token.Pos) bool {
	posn := a.pass.Fset.Position(pos)
	ok := false
	for _, e := range a.entries {
		if e.file == posn.Filename && (e.line == posn.Line || e.line == posn.Line-1) {
			e.used = true
			ok = true
		}
	}
	return ok
}

// Finish reports allow comments for this analyzer that suppressed no
// diagnostic — a stale escape is as suspect as a missing one.
func (a *Allows) Finish() {
	for _, e := range a.entries {
		if !e.used {
			a.pass.Reportf(e.pos, "unused //lint:allow %s comment (suppresses nothing on this or the next line)", e.name)
		}
	}
}

// LintAllow owns the escape-comment syntax itself: every comment
// starting with lint:allow must be well-formed, name a known analyzer,
// and carry a non-empty reason. Running it alongside the invariant
// analyzers makes "allowlist entries without a reason" a CI failure.
func LintAllow(known ...string) *Analyzer {
	names := make(map[string]bool, len(known))
	for _, n := range known {
		names[n] = true
	}
	return &Analyzer{
		Name: "lintallow",
		Doc:  "check that //lint:allow escape comments are well-formed, name a known analyzer, and state a reason",
		Run: func(pass *Pass) error {
			for _, f := range pass.Files {
				for _, cg := range f.Comments {
					for _, c := range cg.List {
						text := stripWant(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")))
						if !strings.HasPrefix(text, AllowPrefix) {
							continue
						}
						if pass.InTestFile(c.Pos()) {
							continue
						}
						m := allowRE.FindStringSubmatch(text)
						switch {
						case m == nil:
							pass.Reportf(c.Pos(), "malformed allow comment %q (want //lint:allow analyzer(reason))", text)
						case !names[m[1]]:
							pass.Reportf(c.Pos(), "allow comment names unknown analyzer %q", m[1])
						case strings.TrimSpace(m[2]) == "":
							pass.Reportf(c.Pos(), "allow comment for %s has no reason — every allowlist entry must say why", m[1])
						}
					}
				}
			}
			return nil
		},
	}
}
