package framework

import (
	"go/token"
	"sort"
)

// Standalone loads the packages matching patterns (relative to dir, ""
// meaning the current directory) with `go list -export -json -deps`,
// type-checks each non-dependency package from source against the
// toolchain's export data, and applies every analyzer. It is the driver
// behind `vetcheck ./...` and the analysistest fixture runner; the same
// analyzers run unmodified under `go vet -vettool` via unitchecker.go.
func Standalone(dir string, analyzers []*Analyzer, patterns ...string) ([]Finding, error) {
	pkgs, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, pkgs)
	var findings []Finding
	for _, p := range pkgs {
		if p.DepOnly || p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		var filenames []string
		for _, f := range p.GoFiles {
			filenames = append(filenames, p.Dir+"/"+f)
		}
		files, pkg, info, err := typeCheck(fset, p.ImportPath, filenames, imp)
		if err != nil {
			return nil, err
		}
		fs, err := runAnalyzers(fset, files, pkg, info, analyzers)
		if err != nil {
			return nil, err
		}
		findings = append(findings, fs...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return findings[i].Message < findings[j].Message
	})
	return findings, nil
}
