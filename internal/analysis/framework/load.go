package framework

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"strings"
)

// listedPackage is the subset of `go list -json` output the drivers
// consume.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	ImportMap  map[string]string
	Module     *struct{ Path string }
}

// goList runs `go list -export -json -deps patterns...` in dir and
// decodes the concatenated JSON stream. -export makes the go command
// emit (and if necessary build) gc export data for every package in the
// dependency closure, which is what lets the drivers type-check without
// re-compiling anything from source.
func goList(dir string, patterns ...string) ([]*listedPackage, error) {
	args := append([]string{"list", "-export", "-json", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, errb.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(&out)
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter builds a types.Importer over the export files of a
// `go list -export -deps` closure.
func exportImporter(fset *token.FileSet, pkgs []*listedPackage) types.Importer {
	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

// typeCheck parses and type-checks one package's files.
func typeCheck(fset *token.FileSet, path string, filenames []string, imp types.Importer) ([]*ast.File, *types.Package, *types.Info, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := &types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", build.Default.GOARCH),
	}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, nil, err
	}
	return files, pkg, info, nil
}

// runAnalyzers applies every analyzer to one type-checked package and
// collects the diagnostics, tagged with the analyzer that found them.
func runAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report: func(d Diagnostic) {
				findings = append(findings, Finding{
					Analyzer: a.Name,
					Pos:      fset.Position(d.Pos),
					Message:  d.Message,
				})
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %v", a.Name, pkg.Path(), err)
		}
	}
	return findings, nil
}

// AnalyzeFiles type-checks an explicit file list as package pkgPath —
// resolving its imports through toolchain export data — and applies the
// analyzers. This is the analysistest entry point: fixture packages
// live under testdata where the go command will not list them, so the
// caller names the files and the imports those files need.
func AnalyzeFiles(pkgPath string, filenames, imports []string, analyzers []*Analyzer) ([]Finding, *token.FileSet, []*ast.File, error) {
	var pkgs []*listedPackage
	if len(imports) > 0 {
		var err error
		pkgs, err = goList("", imports...)
		if err != nil {
			return nil, nil, nil, err
		}
	}
	fset := token.NewFileSet()
	files, pkg, info, err := typeCheck(fset, pkgPath, filenames, exportImporter(fset, pkgs))
	if err != nil {
		return nil, nil, nil, err
	}
	findings, err := runAnalyzers(fset, files, pkg, info, analyzers)
	if err != nil {
		return nil, nil, nil, err
	}
	return findings, fset, files, nil
}

// Finding is one reported diagnostic, positioned and attributed.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s [%s]", f.Pos, f.Message, f.Analyzer)
}
