// Package analysistest runs an analyzer over fixture packages under a
// testdata/src directory and checks the reported diagnostics against
// // want "regexp" comments in the fixture sources, mirroring
// golang.org/x/tools/go/analysis/analysistest on top of the in-repo
// framework.
//
// A fixture is one directory testdata/src/<name> holding a small Go
// package. Lines that should trigger a diagnostic carry a trailing
//
//	// want "regexp"
//
// comment (several literals for several diagnostics on one line; Go
// quoted or backquoted strings both work). Run fails the test for every
// unmatched want and every unexpected diagnostic, so fixtures prove
// both directions: the analyzer fires where it must and stays silent
// where it may.
package analysistest

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"stagedweb/internal/analysis/framework"
)

// wantComment marks an expected-diagnostic annotation.
const wantComment = "// want "

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run applies the analyzers to each named fixture package under
// dir/testdata/src and compares diagnostics with the fixtures' want
// annotations. Analyzers run together so escape-hatch fixtures can
// exercise an invariant analyzer and lintallow against the same source.
func Run(t *testing.T, dir string, analyzers []*framework.Analyzer, fixtures ...string) {
	t.Helper()
	for _, fix := range fixtures {
		runOne(t, filepath.Join(dir, "testdata", "src", fix), fix, analyzers)
	}
}

func runOne(t *testing.T, fixdir, name string, analyzers []*framework.Analyzer) {
	t.Helper()
	entries, err := os.ReadDir(fixdir)
	if err != nil {
		t.Fatalf("fixture %s: %v", name, err)
	}
	var filenames []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			filenames = append(filenames, filepath.Join(fixdir, e.Name()))
		}
	}
	if len(filenames) == 0 {
		t.Fatalf("fixture %s: no .go files in %s", name, fixdir)
	}
	sort.Strings(filenames)

	// The fixture's imports decide which export data we need: list them
	// (with -deps, so transitive requirements resolve too) and
	// type-check the fixture against the toolchain's compiled packages.
	imports, err := fixtureImports(filenames)
	if err != nil {
		t.Fatalf("fixture %s: %v", name, err)
	}
	findings, fset, files, err := framework.AnalyzeFiles(name, filenames, imports, analyzers)
	if err != nil {
		t.Fatalf("fixture %s: %v", name, err)
	}

	expects := collectWants(t, fset, files)
	for _, f := range findings {
		if !match(expects, f) {
			t.Errorf("fixture %s: unexpected diagnostic %s", name, f)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("fixture %s: %s:%d: no diagnostic matched want %q", name, e.file, e.line, e.raw)
		}
	}
}

// fixtureImports parses just the import clauses of the fixture files.
func fixtureImports(filenames []string) ([]string, error) {
	fset := token.NewFileSet()
	seen := map[string]bool{}
	var paths []string
	for _, fn := range filenames {
		f, err := parser.ParseFile(fset, fn, nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil || seen[p] {
				continue
			}
			seen[p] = true
			paths = append(paths, p)
		}
	}
	sort.Strings(paths)
	return paths, nil
}

// collectWants extracts the want annotations from the parsed fixtures.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var expects []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				// The marker may trail other comment content on the same
				// line (an allow comment under test, say); everything
				// after it is the expectation literals.
				idx := strings.Index(c.Text, wantComment)
				if idx < 0 {
					continue
				}
				posn := fset.Position(c.Pos())
				rest := strings.TrimSpace(c.Text[idx+len(wantComment):])
				for rest != "" {
					lit, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Fatalf("%s:%d: malformed want comment %q", posn.Filename, posn.Line, c.Text)
					}
					pattern, err := strconv.Unquote(lit)
					if err != nil {
						t.Fatalf("%s:%d: malformed want literal %s", posn.Filename, posn.Line, lit)
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", posn.Filename, posn.Line, pattern, err)
					}
					expects = append(expects, &expectation{
						file: posn.Filename,
						line: posn.Line,
						re:   re,
						raw:  pattern,
					})
					rest = strings.TrimSpace(rest[len(lit):])
				}
			}
		}
	}
	return expects
}

func match(expects []*expectation, f framework.Finding) bool {
	for _, e := range expects {
		if !e.matched && e.file == f.Pos.Filename && e.line == f.Pos.Line && e.re.MatchString(f.Message) {
			e.matched = true
			return true
		}
	}
	return false
}
