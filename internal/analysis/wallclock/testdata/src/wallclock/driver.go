// Package wallclock mirrors the pre-fix internal/load/driver.go
// population controller — the real bug this analyzer was built to
// catch: pacing a paper-time schedule with the wall clock, so a
// clock.Manual run re-targets the fleet on the wrong timeline.
package wallclock

import "time"

// control is the pre-PR-7 schedule loop, verbatim in shape.
func control(stop chan struct{}, wallTick time.Duration, schedule func(time.Duration) int, setTarget func(int)) {
	tick := time.NewTicker(wallTick) // want `direct wall-clock call time\.NewTicker`
	defer tick.Stop()
	start := time.Now() // want `direct wall-clock call time\.Now`
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			setTarget(schedule(time.Since(start))) // want `direct wall-clock call time\.Since`
		}
	}
}

// arrivalGap was the open-loop variant of the same bug.
func arrivalGap(gap time.Duration) *time.Timer {
	return time.NewTimer(gap) // want `direct wall-clock call time\.NewTimer`
}

// expired is the allowed shape: methods on time.Time values are fine —
// only the package-level functions read the wall clock, and a correctly
// injected component gets its time.Time values from a clock.Clock.
func expired(deadline, now time.Time) bool {
	return now.After(deadline) && now.Sub(deadline) > time.Second
}

// holdFor does arithmetic on durations without touching the clock.
func holdFor(base time.Duration) time.Duration {
	return base * 3 / 2
}
