// Package lintallowbad exercises the lintallow analyzer, which owns the
// escape-comment syntax: malformed comments, unknown analyzer names,
// and — the CI-enforced rule — allowlist entries without a reason.
package lintallowbad

import "time"

//lint:allow wallclock // want `malformed allow comment`
func malformed() {}

//lint:allow nosuchanalyzer(the analyzer name is checked) // want `unknown analyzer "nosuchanalyzer"`
func unknown() {}

// reasonless still suppresses the wallclock diagnostic on the next line
// (so the site is reported exactly once) but lintallow rejects the
// entry itself: every allowlist entry must say why.
func reasonless() {
	//lint:allow wallclock() // want `no reason`
	time.Sleep(time.Millisecond)
}
