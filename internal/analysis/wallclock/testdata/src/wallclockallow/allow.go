// Package wallclockallow exercises the //lint:allow escape hatch: a
// same-line allow, a line-above allow, and an allow that suppresses
// nothing (itself a diagnostic — stale escapes must not accumulate).
package wallclockallow

import "time"

// statsCadence is genuinely wall-bound: same-line allow form.
func statsCadence() *time.Ticker {
	return time.NewTicker(time.Second) //lint:allow wallclock(operator-facing cadence is wall time by definition)
}

// settle uses the line-above allow form.
func settle() {
	//lint:allow wallclock(demonstrates the line-above escape form)
	time.Sleep(time.Millisecond)
}

//lint:allow wallclock(nothing here calls time) // want `unused //lint:allow wallclock comment`
func clean(d time.Duration) time.Duration {
	return 2 * d
}
