package wallclock

import (
	"testing"

	"stagedweb/internal/analysis/analysistest"
	"stagedweb/internal/analysis/framework"
)

// TestFixtures proves the analyzer catches the pre-fix
// internal/load/driver.go violation (the fixture mirrors that control
// loop) and stays silent on time.Time method calls and duration
// arithmetic.
func TestFixtures(t *testing.T) {
	analysistest.Run(t, ".", []*framework.Analyzer{Analyzer}, "wallclock")
}

// TestEscapeHatch proves //lint:allow wallclock(reason) suppresses the
// diagnostic (same-line and line-above forms), that an allow comment
// suppressing nothing is itself reported, and that lintallow rejects
// malformed, unknown-analyzer, and reasonless entries.
func TestEscapeHatch(t *testing.T) {
	suite := []*framework.Analyzer{Analyzer, framework.LintAllow(Analyzer.Name)}
	analysistest.Run(t, ".", suite, "wallclockallow", "lintallowbad")
}
