// Package wallclock defines an analyzer that forbids direct wall-clock
// calls (time.Now, time.Since, time.Sleep, time.After, time.Tick,
// time.NewTimer, time.NewTicker, time.AfterFunc, time.Until) outside
// internal/clock.
//
// The repo's timing discipline is that all scheduling, pacing, and
// measurement flows through an injected clock.Clock so experiments run
// deterministically under clock.Manual and time-dilated under
// clock.Precise. Wall-clock calls that leak past the injection point
// re-anchor some component to real time and silently break both —
// exactly the class of bug fixed in PR 4 (request timing) and PR 6
// (QueryTimes). This analyzer makes the discipline machine-checked.
//
// Built-in exemptions, per the invariant's charter: internal/clock
// itself (the wrapper has to call time), socket deadlines in
// internal/server/transport.go (kernel deadlines are inherently wall
// time), and wall-scale bookkeeping in internal/harness/harness.go
// (ramp/measure/cooldown really elapse on the wall). Anything else
// needs a //lint:allow wallclock(reason) escape comment.
package wallclock

import (
	"go/ast"
	"go/types"

	"stagedweb/internal/analysis/framework"
)

// forbidden is the set of time-package functions that read or schedule
// against the wall clock.
var forbidden = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// builtinAllow lists file basenames exempt per package: the places the
// invariant's charter carves out because they are genuinely wall-bound.
// An empty file set exempts the whole package.
var builtinAllow = map[string][]string{
	"stagedweb/internal/clock":   nil,
	"stagedweb/internal/server":  {"transport.go"},
	"stagedweb/internal/harness": {"harness.go"},
}

// Analyzer is the wallclock pass.
var Analyzer = &framework.Analyzer{
	Name: "wallclock",
	Doc:  "forbid direct time.Now/Since/Sleep/After/Tick/NewTimer calls outside internal/clock; timing must flow through the injected clock.Clock",
	Run:  run,
}

func run(pass *framework.Pass) error {
	files, exemptAll := builtinAllow[pass.Pkg.Path()]
	if exemptAll && files == nil {
		return nil
	}
	exemptFile := map[string]bool{}
	for _, f := range files {
		exemptFile[f] = true
	}

	allows := framework.ScanAllows(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := framework.Callee(pass.TypesInfo, call)
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" || !forbidden[obj.Name()] {
				return true
			}
			// Only package-level functions: time.Time.After/Sub etc. are
			// methods on values that already came from a Clock.
			if fn, ok := obj.(*types.Func); !ok || fn.Type().(*types.Signature).Recv() != nil {
				return true
			}
			if pass.InTestFile(call.Pos()) {
				return true
			}
			if exemptFile[baseOf(pass, call)] {
				return true
			}
			if allows.Allowed(call.Pos()) {
				return true
			}
			pass.Reportf(call.Pos(),
				"direct wall-clock call time.%s: route timing through the injected clock.Clock (or add //lint:allow wallclock(reason))",
				obj.Name())
			return true
		})
	}
	allows.Finish()
	return nil
}

func baseOf(pass *framework.Pass, n ast.Node) string {
	name := pass.Fset.Position(n.Pos()).Filename
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '/' {
			return name[i+1:]
		}
	}
	return name
}
