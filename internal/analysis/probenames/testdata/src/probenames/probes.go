// Package probenames exercises the probe-name discipline: names are
// dotted-lowercase named constants registered in the catalog, with no
// duplicates and no inline literals at registration sites.
package probenames

import "stagedweb/internal/variant"

const (
	// ProbeGood is a registered name used the right way.
	ProbeGood = "queue.single"
	// ProbeUnregistered is well-shaped but absent from the catalog.
	ProbeUnregistered = "queue.mystery" // want `probe name "queue.mystery" \(const ProbeUnregistered\) is not registered`
	// ProbeBadShape is not dotted-lowercase.
	ProbeBadShape = "QueueDepth" // want `probe name "QueueDepth" \(const ProbeBadShape\) is not dotted-lowercase`
	// ProbeDup collides with ProbeGood's value.
	ProbeDup = "queue.single" // want `duplicate probe name "queue.single": already declared by const ProbeGood`
	// ProbeGrandfathered shows the escape hatch.
	ProbeGrandfathered = "legacy.series" //lint:allow probenames(grandfathered series kept for old artifact readers)
)

func dynamicName() string { return "x.y" }

func probes(gauge func() float64) []variant.Probe {
	return []variant.Probe{
		{Name: ProbeGood, Gauge: gauge},
		{ProbeGood, gauge},
		{Name: "client.active", Gauge: gauge}, // want `probe name "client.active" is an inline literal`
		{Name: dynamicName(), Gauge: gauge},   // want `probe name must be a string constant`
	}
}
