// Package probenames defines an analyzer for the probe/series name
// space sampled into harness Result.Series.
//
// Probe names are the join key between variant.Instance.Probes, the
// harness sampler, JSON artifacts, CSV exports, and the CI assertions
// that grep them — a misspelled or undeclared name produces a series
// that silently never lines up. The analyzer enforces, per package:
//
//   - every variant.Probe composite literal takes its Name from a named
//     string constant (no inline literals — the constant is what the
//     README and CI reference);
//   - every probe-name constant (a string constant whose name starts
//     with Probe or Series) is dotted-lowercase and appears in the
//     canonical catalog (internal/analysis/catalog);
//   - no two probe-name constants in a package share a value.
//
// The reverse direction — catalog entries nobody declares, names the
// harness samples but CI or the README never mention — is covered by
// the catalog package's tests, which cross-check this list against the
// declaring sources, the README table, and .github/workflows/ci.yml.
package probenames

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"stagedweb/internal/analysis/catalog"
	"stagedweb/internal/analysis/framework"
)

// Analyzer is the probenames pass.
var Analyzer = &framework.Analyzer{
	Name: "probenames",
	Doc:  "require probe/series names to be dotted-lowercase named string constants registered in internal/analysis/catalog; detect duplicates",
	Run:  run,
}

func run(pass *framework.Pass) error {
	allows := framework.ScanAllows(pass)
	checkConstants(pass, allows)
	checkProbeLiterals(pass, allows)
	allows.Finish()
	return nil
}

// checkConstants audits declared probe-name constants.
func checkConstants(pass *framework.Pass, allows *framework.Allows) {
	byValue := map[string]string{} // value -> first constant name
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					obj, ok := pass.TypesInfo.Defs[name].(*types.Const)
					if !ok || obj.Val().Kind() != constant.String {
						continue
					}
					if !strings.HasPrefix(name.Name, "Probe") && !strings.HasPrefix(name.Name, "Series") {
						continue
					}
					if pass.InTestFile(name.Pos()) || allows.Allowed(name.Pos()) {
						continue
					}
					val := constant.StringVal(obj.Val())
					if !catalog.ProbeNameRE.MatchString(val) {
						pass.Reportf(name.Pos(), "probe name %q (const %s) is not dotted-lowercase (want e.g. %q)", val, name.Name, "db.inuse")
						continue
					}
					if first, dup := byValue[val]; dup {
						pass.Reportf(name.Pos(), "duplicate probe name %q: already declared by const %s", val, first)
						continue
					}
					byValue[val] = name.Name
					if !catalog.IsProbe(val) {
						pass.Reportf(name.Pos(), "probe name %q (const %s) is not registered in internal/analysis/catalog", val, name.Name)
					}
				}
			}
		}
	}
}

// checkProbeLiterals audits variant.Probe composite literals: the Name
// must come from a named constant whose value is in the catalog.
func checkProbeLiterals(pass *framework.Pass, allows *framework.Allows) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[lit]
			if !ok || !framework.NamedType(tv.Type, "stagedweb/internal/variant", "Probe") {
				return true
			}
			if pass.InTestFile(lit.Pos()) {
				return true
			}
			nameExpr := probeNameExpr(lit)
			if nameExpr == nil {
				return true
			}
			if allows.Allowed(nameExpr.Pos()) {
				return true
			}
			tvName, ok := pass.TypesInfo.Types[nameExpr]
			if !ok || tvName.Value == nil || tvName.Value.Kind() != constant.String {
				pass.Reportf(nameExpr.Pos(), "probe name must be a string constant, not a computed value")
				return true
			}
			if bl, isLit := ast.Unparen(nameExpr).(*ast.BasicLit); isLit {
				pass.Reportf(nameExpr.Pos(), "probe name %s is an inline literal: use a named constant so docs and CI can reference it", bl.Value)
				return true
			}
			val := constant.StringVal(tvName.Value)
			if !catalog.ProbeNameRE.MatchString(val) {
				pass.Reportf(nameExpr.Pos(), "probe name %q is not dotted-lowercase", val)
			} else if !catalog.IsProbe(val) {
				pass.Reportf(nameExpr.Pos(), "probe name %q is not registered in internal/analysis/catalog", val)
			}
			return true
		})
	}
}

// probeNameExpr extracts the Name field expression from a Probe
// composite literal, keyed or positional.
func probeNameExpr(lit *ast.CompositeLit) ast.Expr {
	for i, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "Name" {
				return kv.Value
			}
			continue
		}
		if i == 0 {
			return elt
		}
	}
	return nil
}
