package probenames

import (
	"testing"

	"stagedweb/internal/analysis/analysistest"
	"stagedweb/internal/analysis/framework"
)

// TestFixtures covers the probe-name discipline both ways: registered
// named constants pass (keyed and positional literal forms); inline
// literals, computed names, unregistered names, bad shapes, and
// duplicates are flagged; the escape hatch suppresses.
func TestFixtures(t *testing.T) {
	analysistest.Run(t, ".", []*framework.Analyzer{Analyzer}, "probenames")
}
