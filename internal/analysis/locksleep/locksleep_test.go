package locksleep

import (
	"testing"

	"stagedweb/internal/analysis/analysistest"
	"stagedweb/internal/analysis/framework"
)

// TestFixtures covers the commit-path invariant both ways: sleeps,
// deferred charges, channel receives, WaitGroup joins, and defaultless
// selects under a held mutex are flagged; the collect-release-charge
// discipline, polling selects, sync.Cond.Wait, and an allowlisted
// lock-engine charge are not.
func TestFixtures(t *testing.T) {
	analysistest.Run(t, ".", []*framework.Analyzer{Analyzer}, "locksleep")
}
