// Package locksleep mirrors the sqldb commit-path shapes the analyzer
// audits: cost-model charges, channel waits, and replication barriers
// under (and correctly outside) per-table mutexes.
package locksleep

import (
	"sync"
	"time"
)

type engine struct {
	mu     sync.Mutex
	rw     sync.RWMutex
	costNS int64
}

// chargeCost mimics sqldb.DB.chargeCost — the analyzer recognizes the
// cost-model charge by this name.
func (e *engine) chargeCost() {
	time.Sleep(time.Duration(e.costNS))
}

// commitBad sleeps while holding the commit lock — the exact MVCC
// violation the invariant exists for.
func (e *engine) commitBad() {
	e.mu.Lock()
	defer e.mu.Unlock()
	time.Sleep(time.Millisecond) // want `time.Sleep while a mutex acquired in this function is held`
}

// deferBad registers the charge after the deferred unlock: LIFO order
// runs the charge first, under the still-held lock.
func (e *engine) deferBad() {
	e.mu.Lock()
	defer e.mu.Unlock()
	defer e.chargeCost() // want `deferred cost-model charge .* last-in-first-out`
}

// commitGood is the MVCC discipline: collect under the lock, release,
// then charge.
func (e *engine) commitGood() {
	e.mu.Lock()
	cost := e.costNS
	e.mu.Unlock()
	time.Sleep(time.Duration(cost))
}

// deferGood registers the charge before any unlock defer exists; with
// the explicit unlock above, it runs lock-free at exit.
func (e *engine) deferGood() {
	e.mu.Lock()
	e.costNS++
	e.mu.Unlock()
	defer e.chargeCost()
}

// recvBad parks on a channel while holding a read lock.
func (e *engine) recvBad(applied chan int) int {
	e.rw.RLock()
	defer e.rw.RUnlock()
	return <-applied // want `channel receive from applied`
}

// waitBad joins a WaitGroup under the lock.
func (e *engine) waitBad(wg *sync.WaitGroup) {
	e.mu.Lock()
	wg.Wait() // want `sync.WaitGroup.Wait while a mutex`
	e.mu.Unlock()
}

// selectBad blocks on a select with no default under the lock.
func (e *engine) selectBad(ch chan int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	select { // want `blocking select while a mutex`
	case <-ch:
	}
}

// selectGood polls: a default clause means the select cannot block.
func (e *engine) selectGood(ch chan int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	select {
	case <-ch:
	default:
	}
}

// condGood: sync.Cond.Wait atomically releases its mutex while parked —
// waiting under the lock is its contract, not a violation.
func (e *engine) condGood(c *sync.Cond) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for e.costNS == 0 {
		c.Wait()
	}
}

// lockEngine is the allowed shape: the paper's baseline engine charges
// under the table lock by design, and says so.
func (e *engine) lockEngine() {
	e.mu.Lock()
	defer e.mu.Unlock()
	defer e.chargeCost() //lint:allow locksleep(lock engine charges under the table lock by design)
	e.costNS++
}
