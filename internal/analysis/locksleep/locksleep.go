// Package locksleep defines an analyzer that flags blocking or
// sleeping calls made while a sync.Mutex or sync.RWMutex acquired in
// the same function is held.
//
// This is the MVCC engine's commit-path invariant from PR 6, promoted
// from convention to machine check: cost-model sleeps (DB.chargeCost →
// Clock.Sleep) must happen entirely outside locks, or one charged
// statement holds commitMu for its full simulated cost and the engine's
// concurrency collapses to the baseline's. The same reasoning covers
// any blocking operation — channel receives, replication barriers
// (Tier.Sync), WaitGroup waits — under any mutex.
//
// The analysis is intraprocedural and source-ordered: within one
// function body it tracks x.Lock()/x.RLock() against x.Unlock()/
// x.RUnlock() (a deferred unlock holds the lock to function exit) and
// reports blocking calls made while any tracked lock is held. Deferred
// blocking calls are reported only when a deferred unlock was
// registered before them — defers run last-in-first-out, so such a
// call executes before the lock is released. The lock-engine paths in
// internal/sqldb sleep under per-table locks by design (that IS the
// paper's baseline contention model); those sites carry
// //lint:allow locksleep(reason) comments.
package locksleep

import (
	"go/ast"
	"go/token"
	"go/types"

	"stagedweb/internal/analysis/framework"
)

// Analyzer is the locksleep pass.
var Analyzer = &framework.Analyzer{
	Name: "locksleep",
	Doc:  "flag blocking or sleeping calls (Clock.Sleep, cost charging, channel receive, Tier.Sync, WaitGroup.Wait) while a sync.Mutex/RWMutex acquired in the same function is held",
	Run:  run,
}

func run(pass *framework.Pass) error {
	allows := framework.ScanAllows(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil && !pass.InTestFile(fn.Pos()) {
					checkFunc(pass, allows, fn.Body)
				}
			case *ast.FuncLit:
				if !pass.InTestFile(fn.Pos()) {
					checkFunc(pass, allows, fn.Body)
				}
			}
			return true
		})
	}
	allows.Finish()
	return nil
}

// checker walks one function body in source order. Lock state is keyed
// by the receiver expression's printed form ("mu", "tbl.lock", ...);
// two spellings of the same lock are tracked separately, which is the
// usual go/analysis approximation — the invariant cares about the
// common single-spelling case.
type checker struct {
	pass   *framework.Pass
	allows *framework.Allows
	held   map[string]bool
	// deferredUnlocks counts defer x.Unlock() statements seen so far;
	// a deferred blocking call registered after one runs under the lock.
	deferredUnlocks int
}

func checkFunc(pass *framework.Pass, allows *framework.Allows, body *ast.BlockStmt) {
	c := &checker{pass: pass, allows: allows, held: map[string]bool{}}
	c.walk(body)
}

func (c *checker) walk(n ast.Node) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Nested function: different dynamic extent, analyzed by
			// its own checkFunc call from run.
			return false
		case *ast.DeferStmt:
			c.deferStmt(n)
			return false
		case *ast.SelectStmt:
			c.selectStmt(n)
			return false
		case *ast.CallExpr:
			c.call(n, false)
			return true
		case *ast.UnaryExpr:
			if recv, ok := channelReceive(c.pass.TypesInfo, n); ok && c.anyHeld() {
				c.report(n.Pos(), "channel receive from %s", recv)
			}
			return true
		}
		return true
	})
}

// call classifies one call expression: lock-state transition or
// blocking operation.
func (c *checker) call(call *ast.CallExpr, deferred bool) {
	obj := framework.Callee(c.pass.TypesInfo, call)
	if obj == nil {
		return
	}
	if key, kind, ok := mutexOp(c.pass.TypesInfo, call, obj); ok {
		switch kind {
		case "Lock", "RLock":
			c.held[key] = true
		case "Unlock", "RUnlock":
			if deferred {
				c.deferredUnlocks++
				// The lock stays held until function exit; keep it
				// in the held set.
			} else {
				delete(c.held, key)
			}
		}
		return
	}
	if what, blocking := blockingCall(c.pass.TypesInfo, call, obj); blocking {
		if deferred {
			if c.deferredUnlocks > 0 {
				c.report(call.Pos(), "deferred %s runs before the earlier deferred unlock releases its lock (defers run last-in-first-out)", what)
			}
		} else if c.anyHeld() {
			c.report(call.Pos(), "%s while a mutex acquired in this function is held", what)
		}
	}
}

func (c *checker) deferStmt(d *ast.DeferStmt) {
	// Arguments are evaluated now; the call itself runs at exit.
	for _, arg := range d.Call.Args {
		c.walk(arg)
	}
	c.call(d.Call, true)
}

// selectStmt: a select with a default clause never blocks; without one
// it blocks like a receive.
func (c *checker) selectStmt(sel *ast.SelectStmt) {
	hasDefault := false
	for _, cl := range sel.Body.List {
		if comm, ok := cl.(*ast.CommClause); ok && comm.Comm == nil {
			hasDefault = true
		}
	}
	if !hasDefault && c.anyHeld() {
		c.report(sel.Pos(), "blocking select while a mutex acquired in this function is held")
	}
	// Walk the clause bodies (not the comm operations themselves —
	// already accounted for above).
	for _, cl := range sel.Body.List {
		if comm, ok := cl.(*ast.CommClause); ok {
			for _, stmt := range comm.Body {
				c.walk(stmt)
			}
		}
	}
}

func (c *checker) anyHeld() bool { return len(c.held) > 0 }

func (c *checker) report(pos token.Pos, format string, args ...any) {
	if c.allows.Allowed(pos) {
		return
	}
	c.pass.Reportf(pos, format, args...)
}

// mutexOp recognizes x.Lock / x.RLock / x.Unlock / x.RUnlock where x is
// a sync.Mutex or sync.RWMutex (possibly behind pointers), returning a
// stable key for x and the method name.
func mutexOp(info *types.Info, call *ast.CallExpr, obj types.Object) (key, kind string, ok bool) {
	switch obj.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	tv, found := info.Types[sel.X]
	if !found {
		return "", "", false
	}
	if !framework.NamedType(tv.Type, "sync", "Mutex") && !framework.NamedType(tv.Type, "sync", "RWMutex") {
		return "", "", false
	}
	return types.ExprString(sel.X), obj.Name(), true
}

// blockingCall recognizes the repo's blocking/sleeping operations:
// time.Sleep, any Sleep method from internal/clock (interface or
// implementation), cost-model charging (a chargeCost method), the
// replication barrier Tier.Sync, and sync.WaitGroup.Wait /
// sync.Cond.Wait.
func blockingCall(info *types.Info, call *ast.CallExpr, obj types.Object) (string, bool) {
	pkg := ""
	if obj.Pkg() != nil {
		pkg = obj.Pkg().Path()
	}
	switch {
	case pkg == "time" && obj.Name() == "Sleep":
		return "time.Sleep", true
	case pkg == "stagedweb/internal/clock" && obj.Name() == "Sleep":
		return "Clock.Sleep", true
	case obj.Name() == "chargeCost":
		return "cost-model charge (chargeCost sleeps the statement's simulated cost)", true
	case pkg == "stagedweb/internal/dbtier" && obj.Name() == "Sync":
		return "replication barrier Tier.Sync", true
	case pkg == "sync" && obj.Name() == "Wait" && recvTypeName(obj) == "WaitGroup":
		// sync.Cond.Wait is deliberately NOT here: it atomically
		// releases its mutex while blocked, so waiting under the lock
		// is its contract, not a violation.
		return "sync.WaitGroup.Wait", true
	}
	return "", false
}

func recvTypeName(obj types.Object) string {
	fn, ok := obj.(*types.Func)
	if !ok {
		return "?"
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "?"
	}
	t := sig.Recv().Type()
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	if named, isNamed := t.(*types.Named); isNamed {
		return named.Obj().Name()
	}
	return "?"
}

// channelReceive recognizes a blocking unary receive <-ch.
func channelReceive(info *types.Info, u *ast.UnaryExpr) (string, bool) {
	if u.Op != token.ARROW {
		return "", false
	}
	tv, ok := info.Types[u.X]
	if !ok {
		return "", false
	}
	if _, isChan := tv.Type.Underlying().(*types.Chan); !isChan {
		return "", false
	}
	return types.ExprString(u.X), true
}
