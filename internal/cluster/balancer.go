package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"stagedweb/internal/clock"
	"stagedweb/internal/httpwire"
	"stagedweb/internal/stage"
	"stagedweb/internal/variant"
	"stagedweb/internal/webtest"
)

// ErrShardDown is returned by forwards to a shard marked down (fault
// injection) or skipped by an open circuit breaker. Key-less requests
// fail over past it; keyed and fanned-out requests surface it for the
// down shard's slice of the data.
var ErrShardDown = errors.New("cluster: shard down")

// ErrFanoutDeadline marks shards that had not answered a fan-out when
// its paper-time deadline expired — the bounded-wait replacement for
// wedging reply-after-all forever on a dead shard.
var ErrFanoutDeadline = errors.New("cluster: fan-out deadline exceeded")

// Failover defaults, in paper time where durations.
const (
	defaultFanoutDeadline   = 10 * time.Second
	defaultRetries          = 2
	defaultRetryBackoff     = 100 * time.Millisecond
	defaultBreakerThreshold = 5
	defaultBreakerCooldown  = 10 * time.Second
)

// breaker is one shard's circuit breaker: consecutive forward failures
// open it for a cooldown, during which the shard is skipped. The
// cooldown expiring does not close the breaker — it only makes the
// shard probeable: exactly one request (the CAS winner on trial) is
// let through as the half-open trial. Trial success closes the
// breaker; trial failure re-arms the cooldown. A recovering shard is
// therefore re-admitted by observed probe success, never by timer
// expiry alone.
type breaker struct {
	fails     atomic.Int32
	openUntil atomic.Int64 // clock nanos; 0 = closed
	trial     atomic.Bool  // a half-open trial forward is in flight
}

// job is one client request in flight through the LB stage.
type job struct {
	req  *httpwire.Request
	dec  Decision
	resp *webtest.Response
	err  error
	done chan struct{}
}

// Balancer fronts M shard instances with a consistent-hash LB stage.
// It implements variant.Instance, so the harness serves, samples, and
// stops a sharded cluster exactly like a single server.
type Balancer struct {
	opts   Options
	ring   *Ring
	route  RouteFunc
	shards []variant.Instance
	clk    clock.Clock
	scale  clock.Timescale

	lb    *stage.Stage[*job]
	graph *stage.Graph

	routed  []atomic.Int64 // per-shard routed counts (fan-outs excluded)
	routeN  atomic.Int64   // total single-shard routed requests
	fanoutN atomic.Int64   // total fanned-out requests
	rr      atomic.Int64   // round-robin cursor for lb=rr

	down      []atomic.Bool // per-shard fault-injected down flags
	breakers  []breaker     // per-shard circuit breakers
	retryN    atomic.Int64  // cumulative forward re-attempts
	breakerN  atomic.Int64  // cumulative breaker opens
	halfOpenN atomic.Int64  // cumulative half-open trial forwards

	mu       sync.Mutex
	listener net.Listener
	shardLs  []net.Listener
	pools    []*backendPool
	started  bool
	stopped  bool
	connWG   sync.WaitGroup
}

var _ variant.Instance = (*Balancer)(nil)

// New builds an unstarted Balancer over the shard instances. The shard
// slice length must match opts.Shards; route decides affinity and
// fan-out per request.
func New(opts Options, shards []variant.Instance, route RouteFunc) (*Balancer, error) {
	if opts.Shards != len(shards) {
		return nil, fmt.Errorf("cluster: %d shard instances for shards=%d", len(shards), opts.Shards)
	}
	if route == nil {
		return nil, fmt.Errorf("cluster: nil route func")
	}
	switch opts.LB {
	case "":
		opts.LB = LBHash
	case LBHash, LBRR:
	default:
		return nil, fmt.Errorf("cluster: unknown lb policy %q (want %s|%s)", opts.LB, LBHash, LBRR)
	}
	if opts.Workers <= 0 {
		opts.Workers = 16
	}
	if opts.Clock == nil {
		opts.Clock = clock.Real{}
	}
	if opts.Scale <= 0 {
		opts.Scale = clock.RealTime
	}
	if opts.FanoutDeadline == 0 {
		opts.FanoutDeadline = defaultFanoutDeadline
	}
	if opts.Retries == 0 {
		opts.Retries = defaultRetries
	} else if opts.Retries < 0 {
		opts.Retries = 0
	}
	if opts.RetryBackoff <= 0 {
		opts.RetryBackoff = defaultRetryBackoff
	}
	if opts.BreakerThreshold <= 0 {
		opts.BreakerThreshold = defaultBreakerThreshold
	}
	if opts.BreakerCooldown <= 0 {
		opts.BreakerCooldown = defaultBreakerCooldown
	}
	ring, err := NewRing(opts.Shards, opts.VNodes)
	if err != nil {
		return nil, err
	}
	b := &Balancer{
		opts:     opts,
		ring:     ring,
		route:    route,
		shards:   shards,
		clk:      opts.Clock,
		scale:    opts.Scale,
		routed:   make([]atomic.Int64, opts.Shards),
		down:     make([]atomic.Bool, opts.Shards),
		breakers: make([]breaker, opts.Shards),
	}
	b.lb = stage.New(stage.Config[*job]{
		Name:     "lb",
		Workers:  opts.Workers,
		QueueCap: opts.QueueCap,
		Work:     b.forward,
	})
	b.graph = stage.NewGraph().Add(b.lb)
	return b, nil
}

// Serve boots every shard on its own loopback listener, starts the LB
// stage, and accepts client connections on l until Stop. It blocks; the
// error is nil after a clean Stop.
func (b *Balancer) Serve(l net.Listener) error {
	b.mu.Lock()
	if b.stopped {
		b.mu.Unlock()
		_ = l.Close()
		return nil
	}
	b.listener = l
	for i, inst := range b.shards {
		sl, addr, err := webtest.Listen()
		if err != nil {
			b.mu.Unlock()
			b.Stop()
			return err
		}
		b.shardLs = append(b.shardLs, sl)
		b.pools = append(b.pools, &backendPool{addr: addr})
		inst := inst
		go func(i int) { _ = inst.Serve(sl) }(i)
	}
	b.started = true
	b.mu.Unlock()
	b.graph.Start()

	for {
		conn, err := l.Accept()
		if err != nil {
			b.mu.Lock()
			stopped := b.stopped
			b.mu.Unlock()
			if stopped {
				return nil
			}
			return err
		}
		b.connWG.Add(1)
		go func() {
			defer b.connWG.Done()
			b.handleConn(conn)
		}()
	}
}

// Stop shuts the balancer down: no new client connections, the LB stage
// drained, every shard instance stopped, backend pools closed.
// Idempotent, and safe before, during, or after Serve.
func (b *Balancer) Stop() {
	b.mu.Lock()
	if b.stopped {
		b.mu.Unlock()
		return
	}
	b.stopped = true
	l, started := b.listener, b.started
	shardLs, pools := b.shardLs, b.pools
	b.mu.Unlock()

	if l != nil {
		_ = l.Close()
	}
	if started {
		b.graph.Stop()
	}
	b.connWG.Wait()
	// Close the backend pools before stopping the shards: idle pooled
	// keep-alive connections would otherwise pin the shard servers'
	// connection handlers until their idle timeout.
	for _, p := range pools {
		p.close()
	}
	for _, inst := range b.shards {
		inst.Stop()
	}
	for _, sl := range shardLs {
		_ = sl.Close()
	}
}

// Graph exposes the balancer's own stage graph (the LB stage); shard
// instances keep their own graphs.
func (b *Balancer) Graph() *stage.Graph { return b.graph }

// Probes lists the balancer's shard.*/lb.* gauges plus every shard
// probe aggregated (summed) across shards under its original name — so
// a sharded run's Result.Series has the same db.*/queue.*/served.*
// families a single-server run has, now cluster-wide totals.
func (b *Balancer) Probes() []variant.Probe {
	probes := []variant.Probe{
		{Name: ProbeShardRoute, Gauge: func() float64 { return float64(b.routeN.Load()) }},
		{Name: ProbeShardFanout, Gauge: func() float64 { return float64(b.fanoutN.Load()) }},
		{Name: ProbeShardImbalance, Gauge: b.imbalance},
		{Name: ProbeLBWait, Gauge: func() float64 { return float64(b.lb.Depth()) }},
		{Name: ProbeLBRetry, Gauge: func() float64 { return float64(b.retryN.Load()) }},
		{Name: ProbeLBBreaker, Gauge: func() float64 { return float64(b.breakerN.Load()) }},
		{Name: ProbeLBHalfOpen, Gauge: func() float64 { return float64(b.halfOpenN.Load()) }},
	}
	type agg struct {
		name   string
		gauges []func() float64
	}
	var order []*agg
	byName := map[string]*agg{}
	for _, inst := range b.shards {
		for _, p := range inst.Probes() {
			a, ok := byName[p.Name]
			if !ok {
				a = &agg{name: p.Name}
				byName[p.Name] = a
				order = append(order, a)
			}
			a.gauges = append(a.gauges, p.Gauge)
		}
	}
	for _, a := range order {
		gauges := a.gauges
		probes = append(probes, variant.Probe{
			Name: a.name, //lint:allow probenames(aggregated names originate from the shard instances' own registered probe constants)
			Gauge: func() float64 {
				var sum float64
				for _, g := range gauges {
					sum += g()
				}
				return sum
			},
		})
	}
	return probes
}

// imbalance reports max-shard share over the balanced share of routed
// requests: 1.0 is a perfect spread, Shards means one shard took
// everything, 0 means no routed traffic yet.
func (b *Balancer) imbalance() float64 {
	var total, maxN int64
	for i := range b.routed {
		n := b.routed[i].Load()
		total += n
		if n > maxN {
			maxN = n
		}
	}
	if total == 0 {
		return 0
	}
	return float64(maxN) * float64(len(b.routed)) / float64(total)
}

// ---- fault injection surface ----

// Shards reports the number of shard instances fronted.
func (b *Balancer) Shards() int { return len(b.shards) }

// SetShardDown marks shard i down (fault injection): forwards to it
// fail fast with ErrShardDown, its idle pooled connections are reset,
// key-less requests route around it, and cross-shard fan-outs degrade
// to the remaining shards. Marking it up again clears its breaker so
// traffic returns immediately.
func (b *Balancer) SetShardDown(i int, down bool) error {
	if i < 0 || i >= len(b.shards) {
		return fmt.Errorf("cluster: no shard %d", i)
	}
	b.down[i].Store(down)
	if down {
		b.mu.Lock()
		var p *backendPool
		if i < len(b.pools) {
			p = b.pools[i]
		}
		b.mu.Unlock()
		if p != nil {
			p.reset()
		}
		return nil
	}
	b.breakers[i].fails.Store(0)
	b.breakers[i].openUntil.Store(0)
	b.breakers[i].trial.Store(false)
	return nil
}

// ShardDown reports whether shard i is currently marked down.
func (b *Balancer) ShardDown(i int) bool {
	return i >= 0 && i < len(b.down) && b.down[i].Load()
}

// ResetBackendConns closes every idle pooled keep-alive connection to
// every shard (the conn-drop fault plan), reporting how many were
// dropped. Pools refill on demand; forwards caught on a dropped
// connection retry on a fresh one.
func (b *Balancer) ResetBackendConns() int {
	b.mu.Lock()
	pools := append([]*backendPool(nil), b.pools...)
	b.mu.Unlock()
	n := 0
	for _, p := range pools {
		n += p.reset()
	}
	return n
}

// Retries reports cumulative forward re-attempts.
func (b *Balancer) Retries() int64 { return b.retryN.Load() }

// BreakerOpens reports cumulative circuit-breaker opens.
func (b *Balancer) BreakerOpens() int64 { return b.breakerN.Load() }

// HalfOpens reports cumulative half-open trial forwards.
func (b *Balancer) HalfOpens() int64 { return b.halfOpenN.Load() }

// breakerRejects reports whether shard i's breaker keeps it out of the
// key-less failover rotation: open and cooling down, or open past the
// cooldown with a half-open trial already in flight. An open breaker
// past its cooldown with no trial in flight is probeable — pick may
// route to it so one request can become the trial. The first load
// keeps the healthy path to one atomic read.
func (b *Balancer) breakerRejects(i int) bool {
	br := &b.breakers[i]
	ou := br.openUntil.Load()
	if ou == 0 {
		return false
	}
	if b.clk.Now().UnixNano() < ou {
		return true
	}
	return br.trial.Load()
}

// admit decides whether a forward to shard i may proceed, and whether
// it proceeds as the half-open trial. Closed breaker: proceed normally.
// Open and cooling down: rejected. Open past the cooldown: exactly one
// caller wins the trial CAS and proceeds as the probe; everyone else is
// rejected until the probe's outcome is known.
func (b *Balancer) admit(i int) (trial, ok bool) {
	br := &b.breakers[i]
	ou := br.openUntil.Load()
	if ou == 0 {
		return false, true
	}
	if b.clk.Now().UnixNano() < ou {
		return false, false
	}
	if br.trial.CompareAndSwap(false, true) {
		b.halfOpenN.Add(1)
		return true, true
	}
	return false, false
}

// noteForward records a forward outcome against shard i's breaker:
// success closes it (and ends any half-open trial), a failed trial
// re-arms the cooldown, and enough consecutive normal failures open it.
func (b *Balancer) noteForward(i int, ok, trial bool) {
	br := &b.breakers[i]
	if ok {
		br.fails.Store(0)
		if br.openUntil.Load() != 0 {
			br.openUntil.Store(0)
		}
		br.trial.Store(false)
		return
	}
	if trial {
		br.openUntil.Store(b.clk.Now().Add(b.scale.Wall(b.opts.BreakerCooldown)).UnixNano())
		br.trial.Store(false)
		b.breakerN.Add(1)
		return
	}
	if br.fails.Add(1) >= int32(b.opts.BreakerThreshold) {
		br.openUntil.Store(b.clk.Now().Add(b.scale.Wall(b.opts.BreakerCooldown)).UnixNano())
		b.breakerN.Add(1)
	}
}

// handleConn serves one client connection: parse, route through the LB
// stage, relay the shard's response, honouring client keep-alive.
func (b *Balancer) handleConn(conn net.Conn) {
	defer func() { _ = conn.Close() }()
	br := bufio.NewReader(conn)
	for {
		req, err := httpwire.ReadRequest(br)
		if err != nil {
			return // client closed, or unparseable — drop the connection
		}
		j := &job{req: req, dec: b.route(req.Line.Path, req.Query), done: make(chan struct{})}
		if err := b.lb.Submit(j); err != nil {
			return // balancer stopping
		}
		<-j.done
		keepAlive := req.KeepAlive()
		if j.err != nil || j.resp == nil {
			_ = writeResponse(conn, &webtest.Response{
				Status: 502,
				Body:   []byte("bad gateway\n"),
			}, false)
			return
		}
		if err := writeResponse(conn, j.resp, keepAlive); err != nil {
			return
		}
		if !keepAlive {
			return
		}
	}
}

// forward runs on an LB stage worker: pick the shard (or fan out) and
// fetch the response.
func (b *Balancer) forward(j *job) {
	defer close(j.done)
	if j.dec.Fanout {
		b.fanoutN.Add(1)
		j.resp, j.err = b.fanout(j.req, j.dec)
		return
	}
	shard := b.pick(j)
	b.routeN.Add(1)
	b.routed[shard].Add(1)
	j.resp, j.err = b.send(shard, j.req)
}

// pick chooses the shard for a single-shard request: ring owner for
// keyed requests (the data lives there — no shard can stand in);
// for key-less ones the configured policy (hash of the request target,
// or round-robin), failing over past down or breaker-open shards.
func (b *Balancer) pick(j *job) int {
	if j.dec.Key != "" {
		return b.ring.Owner(j.dec.Key)
	}
	n := len(b.shards)
	var first int
	if b.opts.LB == LBRR {
		first = int((b.rr.Add(1) - 1) % int64(n))
	} else {
		first = b.ring.Owner(j.req.Line.Target)
	}
	for k := 0; k < n; k++ {
		s := (first + k) % n
		if !b.down[s].Load() && !b.breakerRejects(s) {
			return s
		}
	}
	return first // every shard unhealthy: fail on the policy's choice
}

// fanout broadcasts the request to every shard and waits for all of
// them, up to the paper-time fan-out deadline; the reply is the owner
// shard's response (the target-hash owner when the request carries no
// key). Waiting on every shard is what makes a broadcast write visible
// to every subsequent routed read; the deadline is what keeps a dead
// shard from wedging every cross-shard page forever — shards that miss
// it are treated as failed and the page degrades to the responses in
// hand.
func (b *Balancer) fanout(req *httpwire.Request, dec Decision) (*webtest.Response, error) {
	n := len(b.shards)
	type result struct {
		i    int
		resp *webtest.Response
		err  error
	}
	// Buffered to n: a shard answering after the deadline parks its
	// result here and the goroutine exits — nothing leaks.
	ch := make(chan result, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			resp, err := b.send(i, req)
			ch <- result{i, resp, err}
		}(i)
	}
	resps := make([]*webtest.Response, n)
	errs := make([]error, n)
	var deadline <-chan time.Time
	if d := b.opts.FanoutDeadline; d > 0 {
		deadline = b.clk.After(b.scale.Wall(d))
	}
	timedOut := false
	for got := 0; got < n && !timedOut; {
		select {
		case r := <-ch:
			resps[r.i], errs[r.i] = r.resp, r.err
			got++
		case <-deadline:
			timedOut = true
		}
	}
	if timedOut {
		for i := range errs {
			if resps[i] == nil && errs[i] == nil {
				errs[i] = fmt.Errorf("cluster: shard %d: %w", i, ErrFanoutDeadline)
			}
		}
	}
	owner := b.ring.Owner(req.Line.Target)
	if dec.Key != "" {
		owner = b.ring.Owner(dec.Key)
	}
	if errs[owner] == nil && resps[owner] != nil {
		return resps[owner], nil
	}
	for i := range resps {
		if errs[i] == nil && resps[i] != nil {
			return resps[i], nil
		}
	}
	return nil, errs[owner]
}

// send forwards one request to a shard over a pooled keep-alive backend
// connection: fail fast when the shard is down or its breaker is open,
// retry immediately on a stale pooled connection, and retry with
// paper-time backoff on transient errors up to the configured budget.
// Every re-attempt counts toward lb.retry; the outcome feeds the
// shard's breaker.
func (b *Balancer) send(shard int, req *httpwire.Request) (*webtest.Response, error) {
	if b.down[shard].Load() {
		return nil, fmt.Errorf("cluster: shard %d: %w", shard, ErrShardDown)
	}
	trial, ok := b.admit(shard)
	if !ok {
		return nil, fmt.Errorf("cluster: shard %d: breaker open: %w", shard, ErrShardDown)
	}
	b.mu.Lock()
	if shard >= len(b.pools) {
		b.mu.Unlock()
		return nil, fmt.Errorf("cluster: shard %d not serving", shard)
	}
	p := b.pools[shard]
	b.mu.Unlock()
	raw := rawRequest(req)
	var lastErr error
	for try := 0; try <= b.opts.Retries; try++ {
		if try > 0 {
			b.retryN.Add(1)
			b.clk.Sleep(b.scale.Wall(b.opts.RetryBackoff))
			if b.down[shard].Load() {
				lastErr = fmt.Errorf("cluster: shard %d: %w", shard, ErrShardDown)
				break
			}
		}
		resp, err := b.sendOnce(p, raw)
		if err == nil {
			b.noteForward(shard, true, trial)
			return resp, nil
		}
		lastErr = err
	}
	b.noteForward(shard, false, trial)
	return nil, lastErr
}

// sendOnce makes a single forward over one shard's pool: use an idle
// pooled connection (falling back to a fresh dial if it has gone stale
// — that fallback counts as a retry), or dial fresh.
func (b *Balancer) sendOnce(p *backendPool, raw []byte) (*webtest.Response, error) {
	for attempt := 0; ; attempt++ {
		bc, fresh, err := p.get()
		if err != nil {
			return nil, err
		}
		resp, err := bc.roundTrip(raw)
		if err == nil {
			p.put(bc)
			return resp, nil
		}
		bc.close()
		// A pooled connection may have been closed by the shard between
		// uses; a freshly dialed one failing is a real error.
		if fresh || attempt > 0 {
			return nil, err
		}
		b.retryN.Add(1)
	}
}

// rawRequest re-serializes a parsed request for a shard backend: the
// original method and target on a keep-alive connection, with any form
// body carried through.
func rawRequest(req *httpwire.Request) []byte {
	var sb strings.Builder
	sb.WriteString(req.Line.Method)
	sb.WriteByte(' ')
	sb.WriteString(req.Line.Target)
	sb.WriteString(" HTTP/1.1\r\nHost: shard\r\nConnection: keep-alive\r\n")
	if len(req.Body) > 0 {
		if ct := req.Header.Get("Content-Type"); ct != "" {
			sb.WriteString("Content-Type: " + ct + "\r\n")
		}
		sb.WriteString(fmt.Sprintf("Content-Length: %d\r\n", len(req.Body)))
	}
	sb.WriteString("\r\n")
	sb.Write(req.Body)
	return []byte(sb.String())
}

// writeResponse serializes a shard response back to the client,
// overriding the Connection header with the client's keep-alive choice.
func writeResponse(w io.Writer, resp *webtest.Response, keepAlive bool) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "HTTP/1.1 %d %s\r\n", resp.Status, statusText(resp.Status))
	for k, v := range resp.Header {
		if k == "Connection" || k == "Content-Length" {
			continue
		}
		sb.WriteString(k + ": " + v + "\r\n")
	}
	conn := "close"
	if keepAlive {
		conn = "keep-alive"
	}
	fmt.Fprintf(&sb, "Connection: %s\r\nContent-Length: %d\r\n\r\n", conn, len(resp.Body))
	if _, err := io.WriteString(w, sb.String()); err != nil {
		return err
	}
	_, err := w.Write(resp.Body)
	return err
}

// statusText supplies the reason phrase for relayed status lines.
func statusText(code int) string {
	switch code {
	case 200:
		return "OK"
	case 404:
		return "Not Found"
	case 500:
		return "Internal Server Error"
	case 502:
		return "Bad Gateway"
	case 503:
		return "Service Unavailable"
	default:
		return "Status"
	}
}

// backendPool hands out keep-alive connections to one shard backend.
type backendPool struct {
	addr string

	mu     sync.Mutex
	idle   []*backendConn
	closed bool
}

type backendConn struct {
	conn net.Conn
	br   *bufio.Reader
}

// get returns an idle pooled connection, or dials a fresh one; fresh
// reports which, so callers know a failure cannot be a stale keep-alive.
func (p *backendPool) get() (bc *backendConn, fresh bool, err error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, false, fmt.Errorf("cluster: backend pool %s closed", p.addr)
	}
	if n := len(p.idle); n > 0 {
		bc = p.idle[n-1]
		p.idle = p.idle[:n-1]
		p.mu.Unlock()
		return bc, false, nil
	}
	p.mu.Unlock()
	conn, err := net.DialTimeout("tcp", p.addr, 10*time.Second)
	if err != nil {
		return nil, true, err
	}
	return &backendConn{conn: conn, br: bufio.NewReader(conn)}, true, nil
}

// put returns a healthy connection to the pool.
func (p *backendPool) put(bc *backendConn) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		bc.close()
		return
	}
	p.idle = append(p.idle, bc)
	p.mu.Unlock()
}

// reset closes every idle connection without closing the pool: the
// next get dials fresh. Fault plans use it to simulate keep-alive
// connection drops.
func (p *backendPool) reset() int {
	p.mu.Lock()
	idle := p.idle
	p.idle = nil
	p.mu.Unlock()
	for _, bc := range idle {
		bc.close()
	}
	return len(idle)
}

// close drops every idle connection and refuses new ones.
func (p *backendPool) close() {
	p.mu.Lock()
	idle := p.idle
	p.idle = nil
	p.closed = true
	p.mu.Unlock()
	for _, bc := range idle {
		bc.close()
	}
}

func (bc *backendConn) roundTrip(raw []byte) (*webtest.Response, error) {
	if _, err := bc.conn.Write(raw); err != nil {
		return nil, err
	}
	return webtest.ReadResponse(bc.br)
}

func (bc *backendConn) close() { _ = bc.conn.Close() }
