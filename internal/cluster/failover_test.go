package cluster_test

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"stagedweb/internal/clock"
	"stagedweb/internal/cluster"
	"stagedweb/internal/httpwire"
	"stagedweb/internal/stage"
	"stagedweb/internal/tpcw"
	"stagedweb/internal/variant"
	"stagedweb/internal/webtest"
)

// customerOwnedBy finds a populated customer whose consistent-hash
// owner is the given shard — the ring construction is deterministic,
// so rebuilding it here matches the balancer's routing exactly.
func customerOwnedBy(t *testing.T, shards, shard int) int {
	t.Helper()
	ring, err := cluster.NewRing(shards, 0)
	if err != nil {
		t.Fatal(err)
	}
	for c := 1; c <= 40; c++ {
		if ring.Owner(tpcw.CustomerKey(c)) == shard {
			return c
		}
	}
	t.Fatalf("no customer in 1..40 owned by shard %d", shard)
	return 0
}

func orderDisplayPath(c int) string {
	return fmt.Sprintf("%s?uname=%s&passwd=pw%d", tpcw.PageOrderDisplay, tpcw.Uname(c), c)
}

// TestShardDownKeyedFailFastAndRejoin: with a shard marked down, pages
// keyed to its customers fail fast (bounded wall time, 502 — the data
// lives nowhere else) while everyone else's pages and key-less reads
// keep working; marking the shard up restores its customers.
func TestShardDownKeyedFailFastAndRejoin(t *testing.T) {
	const shards = 2
	b, addr := bootClusterOpts(t, clock.Real{}, cluster.Options{
		Shards: shards, LB: cluster.LBHash,
		// Compress the paper-time failover knobs so nothing in this
		// test waits for real seconds.
		Scale: 1000,
	})
	defer b.Stop()

	downC := customerOwnedBy(t, shards, 1)
	liveC := customerOwnedBy(t, shards, 0)

	if err := b.SetShardDown(1, true); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	resp, err := webtest.Get(addr, orderDisplayPath(downC))
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("keyed request to a down shard took %v — not a fast failure", elapsed)
	}
	if err != nil {
		t.Fatalf("keyed request to a down shard should get a response, not a transport error: %v", err)
	}
	if resp.Status != 502 {
		t.Fatalf("keyed request to a down shard: status %d, want 502", resp.Status)
	}

	// Other customers and key-less reads are untouched by the outage.
	if resp, err := webtest.Get(addr, orderDisplayPath(liveC)); err != nil || resp.Status != 200 {
		t.Fatalf("live shard's customer during outage: status %v, err %v", resp, err)
	}
	for i := 0; i < 10; i++ {
		if resp, err := webtest.Get(addr, tpcw.PageProductDetail+"?i_id=3"); err != nil || resp.Status != 200 {
			t.Fatalf("key-less read %d during outage: %v, err %v", i, resp, err)
		}
	}

	if err := b.SetShardDown(1, false); err != nil {
		t.Fatal(err)
	}
	if resp, err := webtest.Get(addr, orderDisplayPath(downC)); err != nil || resp.Status != 200 {
		t.Fatalf("rejoined shard's customer: %v, err %v", resp, err)
	}
}

// TestShardDownFanoutDegrades: a cross-shard broadcast with a dead
// shard answers from the survivors within bounded time instead of
// wedging, and the write is visible on the shards that took it.
func TestShardDownFanoutDegrades(t *testing.T) {
	const shards = 2
	b, addr := bootClusterOpts(t, clock.Real{}, cluster.Options{
		Shards: shards, LB: cluster.LBHash,
		Scale: 1000, // 10 paper-second fan-out deadline -> 10 ms wall
	})
	defer b.Stop()

	if err := b.SetShardDown(1, true); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	resp, err := webtest.Get(addr, tpcw.PageAdminResponse+"?i_id=7&cost=42.50")
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("fan-out with a down shard took %v — wedged past the deadline", elapsed)
	}
	if err != nil {
		t.Fatalf("degraded fan-out: %v", err)
	}
	if resp.Status != 200 {
		t.Fatalf("degraded fan-out: status %d, want 200 from the surviving shard", resp.Status)
	}
	// The surviving shard applied the broadcast; key-less reads route
	// around the corpse, so the new price is immediately readable.
	resp, err = webtest.Get(addr, tpcw.PageProductDetail+"?i_id=7")
	if err != nil || resp.Status != 200 {
		t.Fatalf("read after degraded broadcast: %v, err %v", resp, err)
	}
	if !strings.Contains(string(resp.Body), "$42.50") {
		t.Error("surviving shard does not show the broadcast write")
	}
}

// unresponsiveShard is a variant.Instance that accepts connections and
// slams them shut — every forward to it fails at the wire, exercising
// the retry budget and the circuit breaker rather than the down flag.
type unresponsiveShard struct{ stop chan struct{} }

func newUnresponsiveShard() *unresponsiveShard {
	return &unresponsiveShard{stop: make(chan struct{})}
}

func (u *unresponsiveShard) Serve(l net.Listener) error {
	go func() { <-u.stop; _ = l.Close() }()
	for {
		c, err := l.Accept()
		if err != nil {
			return nil
		}
		_ = c.Close()
	}
}

func (u *unresponsiveShard) Stop() {
	select {
	case <-u.stop:
	default:
		close(u.stop)
	}
}

func (u *unresponsiveShard) Graph() *stage.Graph     { return stage.NewGraph() }
func (u *unresponsiveShard) Probes() []variant.Probe { return nil }

// TestBreakerOpensOnFailingShard: repeated forward failures to a shard
// burn the retry budget, trip its breaker, and subsequent requests to
// it fail fast while the breaker is open.
func TestBreakerOpensOnFailingShard(t *testing.T) {
	const shards = 2
	// Shard 0 is real; shard 1 answers every forward with a slammed
	// connection. Small retry budget and a 2-failure breaker threshold
	// keep the test to a handful of requests.
	insts := buildShardInsts(t, clock.Real{}, shards, 0)
	insts[1].Stop()
	insts[1] = newUnresponsiveShard()
	b, err := cluster.New(cluster.Options{
		Shards: shards, LB: cluster.LBHash,
		Retries: 1, RetryBackoff: time.Millisecond,
		BreakerThreshold: 2, BreakerCooldown: 10 * time.Second,
	}, insts, func(path string, q map[string]string) cluster.Decision {
		key, fanout := tpcw.ShardKey(path, q)
		return cluster.Decision{Key: key, Fanout: fanout}
	})
	if err != nil {
		t.Fatal(err)
	}
	l, addr, err := webtest.Listen()
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = b.Serve(l) }()
	defer b.Stop()

	liveC := customerOwnedBy(t, shards, 0)
	deadC := customerOwnedBy(t, shards, 1)
	if !webtest.WaitUntil(5*time.Second, func() bool {
		resp, err := webtest.Get(addr, orderDisplayPath(liveC))
		return err == nil && resp.Status == 200
	}) {
		t.Fatal("cluster did not come up")
	}

	// Two keyed requests to the broken shard: each burns the retry
	// budget and counts a forward failure; the second opens the breaker.
	for i := 0; i < 2; i++ {
		resp, err := webtest.Get(addr, orderDisplayPath(deadC))
		if err != nil || resp.Status != 502 {
			t.Fatalf("request %d to the broken shard: %v, err %v (want 502)", i, resp, err)
		}
	}
	if got := b.Retries(); got < 2 {
		t.Errorf("Retries = %d, want >= 2 (one per burned retry budget)", got)
	}
	if got := b.BreakerOpens(); got < 1 {
		t.Fatalf("BreakerOpens = %d, want >= 1", got)
	}

	// Breaker open: the next request fails fast without a forward, and
	// healthy traffic (keyed to shard 0, and key-less routed around the
	// open breaker) is unaffected.
	retriesBefore := b.Retries()
	start := time.Now()
	if resp, err := webtest.Get(addr, orderDisplayPath(deadC)); err != nil || resp.Status != 502 {
		t.Fatalf("breaker-open request: %v, err %v (want 502)", resp, err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("breaker-open request took %v — not a fast failure", elapsed)
	}
	if got := b.Retries(); got != retriesBefore {
		t.Errorf("breaker-open request still forwarded: retries %d -> %d", retriesBefore, got)
	}
	if resp, err := webtest.Get(addr, orderDisplayPath(liveC)); err != nil || resp.Status != 200 {
		t.Fatalf("healthy shard while breaker open: %v, err %v", resp, err)
	}
	for i := 0; i < 5; i++ {
		if resp, err := webtest.Get(addr, tpcw.PageHome); err != nil || resp.Status != 200 {
			t.Fatalf("key-less read %d while breaker open: %v, err %v", i, resp, err)
		}
	}
}

// recoverableShard is a variant.Instance that slams connections shut
// while unhealthy (every forward fails at the wire) and answers 200 to
// anything once healthy — the minimal shard for driving a breaker
// through open, half-open, and closed.
type recoverableShard struct {
	healthy atomic.Bool
	stop    chan struct{}
}

func newRecoverableShard() *recoverableShard {
	return &recoverableShard{stop: make(chan struct{})}
}

func (r *recoverableShard) Serve(l net.Listener) error {
	go func() { <-r.stop; _ = l.Close() }()
	for {
		c, err := l.Accept()
		if err != nil {
			return nil
		}
		if !r.healthy.Load() {
			_ = c.Close()
			continue
		}
		go r.serveConn(c)
	}
}

func (r *recoverableShard) serveConn(c net.Conn) {
	defer func() { _ = c.Close() }()
	br := bufio.NewReader(c)
	for {
		if _, err := httpwire.ReadRequest(br); err != nil {
			return
		}
		if !r.healthy.Load() {
			return
		}
		_, _ = io.WriteString(c,
			"HTTP/1.1 200 OK\r\nConnection: keep-alive\r\nContent-Length: 3\r\n\r\nok\n")
	}
}

func (r *recoverableShard) Stop() {
	select {
	case <-r.stop:
	default:
		close(r.stop)
	}
}

func (r *recoverableShard) Graph() *stage.Graph     { return stage.NewGraph() }
func (r *recoverableShard) Probes() []variant.Probe { return nil }

// TestBreakerHalfOpenProbeReadmits: an open breaker whose cooldown has
// expired does not re-admit the shard on timer expiry alone — exactly
// one half-open trial forward probes it. A failed probe re-arms the
// cooldown; the shard only rejoins once a probe succeeds.
func TestBreakerHalfOpenProbeReadmits(t *testing.T) {
	const shards = 2
	insts := buildShardInsts(t, clock.Real{}, shards, 0)
	insts[1].Stop()
	flaky := newRecoverableShard()
	insts[1] = flaky
	b, err := cluster.New(cluster.Options{
		Shards: shards, LB: cluster.LBHash,
		Scale:   50, // 10 paper-second cooldown -> 200 ms wall
		Retries: -1, RetryBackoff: time.Millisecond,
		BreakerThreshold: 2, BreakerCooldown: 10 * time.Second,
	}, insts, func(path string, q map[string]string) cluster.Decision {
		key, fanout := tpcw.ShardKey(path, q)
		return cluster.Decision{Key: key, Fanout: fanout}
	})
	if err != nil {
		t.Fatal(err)
	}
	l, addr, err := webtest.Listen()
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = b.Serve(l) }()
	defer b.Stop()

	liveC := customerOwnedBy(t, shards, 0)
	deadC := customerOwnedBy(t, shards, 1)
	if !webtest.WaitUntil(5*time.Second, func() bool {
		resp, err := webtest.Get(addr, orderDisplayPath(liveC))
		return err == nil && resp.Status == 200
	}) {
		t.Fatal("cluster did not come up")
	}
	get := func() int {
		t.Helper()
		resp, err := webtest.Get(addr, orderDisplayPath(deadC))
		if err != nil {
			t.Fatalf("request to flaky shard: %v", err)
		}
		return resp.Status
	}

	// Trip the breaker while the shard is broken.
	for i := 0; i < 2; i++ {
		if got := get(); got != 502 {
			t.Fatalf("request %d to broken shard: status %d, want 502", i, got)
		}
	}
	if got := b.BreakerOpens(); got < 1 {
		t.Fatalf("BreakerOpens = %d, want >= 1", got)
	}
	if got := b.HalfOpens(); got != 0 {
		t.Fatalf("HalfOpens = %d before any cooldown expired", got)
	}

	// Cooldown expires with the shard still broken: the next request is
	// the half-open trial, it fails, and the breaker re-arms.
	time.Sleep(300 * time.Millisecond)
	if got := get(); got != 502 {
		t.Fatalf("failed trial: status %d, want 502", got)
	}
	if got := b.HalfOpens(); got != 1 {
		t.Fatalf("HalfOpens = %d after expired cooldown, want 1 (the trial)", got)
	}
	if got := b.BreakerOpens(); got < 2 {
		t.Fatalf("BreakerOpens = %d, want >= 2 (failed trial re-arms the cooldown)", got)
	}

	// Timer expiry alone never re-admits: inside the re-armed cooldown
	// the shard is still rejected without any forward.
	if got := get(); got != 502 {
		t.Fatalf("request inside re-armed cooldown: status %d, want 502", got)
	}
	if got := b.HalfOpens(); got != 1 {
		t.Fatalf("HalfOpens = %d, want 1 — breaker admitted a request on timer expiry alone", got)
	}

	// The shard recovers. It still serves nothing until the next trial
	// probes it — and that probe's success is what re-admits it.
	flaky.healthy.Store(true)
	time.Sleep(300 * time.Millisecond)
	if got := get(); got != 200 {
		t.Fatalf("successful trial: status %d, want 200 (probe response relayed)", got)
	}
	if got := b.HalfOpens(); got != 2 {
		t.Fatalf("HalfOpens = %d after recovery, want 2", got)
	}
	// Breaker closed: traffic flows normally, no further trials.
	for i := 0; i < 3; i++ {
		if got := get(); got != 200 {
			t.Fatalf("request %d after re-admission: status %d, want 200", i, got)
		}
	}
	if got := b.HalfOpens(); got != 2 {
		t.Fatalf("HalfOpens = %d after breaker closed, want 2", got)
	}
}
