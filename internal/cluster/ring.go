// Package cluster fronts M independent server instances — each owning a
// shard of the application's data — with a consistent-hash load-balancer
// stage built on the internal/stage runtime.
//
// The Balancer is itself a variant.Instance: it accepts client
// connections, parses each request with internal/httpwire, routes it
// through a bounded LB stage (the lb.wait probe is that stage's queue
// depth), and forwards it over a pooled keep-alive connection to the
// owning shard. Requests with a partition key ride the consistent-hash
// Ring; key-less requests follow the configured policy (lb=hash routes
// by request target, lb=rr round-robins); cross-shard requests fan out
// to every shard and the balancer replies once all shards have answered,
// which is what makes a broadcast write read-your-writes for every
// subsequent routed read.
//
// Routing policy stays out of this package: the application supplies a
// RouteFunc mapping a parsed request to a Decision (internal/tpcw's
// ShardRoute is the TPC-W policy), so the balancer itself is generic
// over what "the key" means.
package cluster

import (
	"fmt"
	"sort"
)

// fnv1a hashes a key with 64-bit FNV-1a followed by a murmur-style
// finalizer — stable across processes, so ring placement (and therefore
// shard ownership) is reproducible. The finalizer matters: raw FNV-1a
// has weak high-bit avalanche on short sequential keys ("customer/417",
// "customer/418", ...), which clumps them on the ring; the mixing steps
// restore a uniform spread (TestRingSpread pins this down).
func fnv1a(key string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Ring is a consistent-hash ring over shard indices. Each shard owns
// VNodes virtual points on the ring; a key belongs to the shard owning
// the first point at or clockwise of the key's hash. Virtual nodes keep
// per-shard load spread tight, and growing the ring from M to M+1
// shards remaps only the key ranges the new shard's points capture —
// about 1/(M+1) of the key space, not a full reshuffle.
type Ring struct {
	points []ringPoint // sorted by hash
	shards int
}

type ringPoint struct {
	hash  uint64
	shard int
}

// DefaultVNodes is the virtual-node count per shard when Options.VNodes
// is zero. 64 points per shard keeps the max/mean load ratio low
// (see TestRingSpread) while the ring stays small enough to search fast.
const DefaultVNodes = 64

// NewRing builds a ring over shards shards with vnodes virtual points
// each (vnodes <= 0 takes DefaultVNodes).
func NewRing(shards, vnodes int) (*Ring, error) {
	if shards < 1 {
		return nil, fmt.Errorf("cluster: ring needs at least one shard, got %d", shards)
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{shards: shards, points: make([]ringPoint, 0, shards*vnodes)}
	for s := 0; s < shards; s++ {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:  fnv1a(fmt.Sprintf("shard-%d/vnode-%d", s, v)),
				shard: s,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Ties break on shard index so ring order is deterministic even
		// in the astronomically unlikely event of a hash collision.
		return r.points[i].shard < r.points[j].shard
	})
	return r, nil
}

// Shards reports the shard count the ring was built over.
func (r *Ring) Shards() int { return r.shards }

// Owner maps a key to its owning shard: the first ring point at or
// clockwise of the key's hash, wrapping at the top.
func (r *Ring) Owner(key string) int {
	h := fnv1a(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}
