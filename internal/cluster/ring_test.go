package cluster

import (
	"fmt"
	"testing"
)

// tpcwCustomerKeys is the key population the balancer actually routes:
// one key per customer at the paper's scaled-down customer count.
func tpcwCustomerKeys() []string {
	const customers = 2880
	keys := make([]string, 0, customers)
	for c := 1; c <= customers; c++ {
		keys = append(keys, fmt.Sprintf("customer/%d", c))
	}
	return keys
}

func TestRingOwnerStable(t *testing.T) {
	r1, err := NewRing(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRing(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range tpcwCustomerKeys() {
		if r1.Owner(k) != r2.Owner(k) {
			t.Fatalf("owner of %q differs across identically built rings", k)
		}
	}
}

// TestRingSpread checks the virtual-node count keeps per-shard load
// within a modest factor of the balanced share under the TPC-W customer
// distribution.
func TestRingSpread(t *testing.T) {
	keys := tpcwCustomerKeys()
	for _, shards := range []int{2, 4, 8} {
		r, err := NewRing(shards, 0)
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]int, shards)
		for _, k := range keys {
			counts[r.Owner(k)]++
		}
		ideal := float64(len(keys)) / float64(shards)
		for s, n := range counts {
			ratio := float64(n) / ideal
			if ratio > 1.45 || ratio < 0.55 {
				t.Errorf("shards=%d: shard %d owns %d keys (%.2fx the balanced share %.0f)",
					shards, s, n, ratio, ideal)
			}
		}
	}
}

// TestRingRemapMinimal checks consistent hashing's defining property:
// growing M shards to M+1 remaps roughly 1/(M+1) of the keys, not a
// full reshuffle like modular hashing would.
func TestRingRemapMinimal(t *testing.T) {
	keys := tpcwCustomerKeys()
	for _, m := range []int{2, 3, 4} {
		before, err := NewRing(m, 0)
		if err != nil {
			t.Fatal(err)
		}
		after, err := NewRing(m+1, 0)
		if err != nil {
			t.Fatal(err)
		}
		moved := 0
		for _, k := range keys {
			if before.Owner(k) != after.Owner(k) {
				moved++
			}
		}
		frac := float64(moved) / float64(len(keys))
		expect := 1.0 / float64(m+1)
		if frac > 1.8*expect {
			t.Errorf("%d->%d shards moved %.1f%% of keys, want about %.1f%% (<= %.1f%%)",
				m, m+1, frac*100, expect*100, 1.8*expect*100)
		}
		if moved == 0 {
			t.Errorf("%d->%d shards moved no keys; the new shard owns nothing", m, m+1)
		}
	}
}
