package cluster

import (
	"fmt"
	"time"

	"stagedweb/internal/clock"
	"stagedweb/internal/variant"
)

// Registered load-balancer policies for key-less requests.
const (
	// LBHash routes a key-less request by hashing its request target on
	// the ring — deterministic, so identical requests always land on the
	// same shard.
	LBHash = "hash"
	// LBRR round-robins key-less requests across shards.
	LBRR = "rr"
)

// Probe names the balancer exports next to the shard instances' own
// (aggregated) probes.
const (
	// ProbeShardRoute counts requests routed to a single shard
	// (cumulative; fanned-out requests count under shard.fanout).
	ProbeShardRoute = "shard.route"
	// ProbeShardFanout counts requests broadcast to every shard
	// (cumulative).
	ProbeShardFanout = "shard.fanout"
	// ProbeShardImbalance is the max-shard share of routed requests over
	// the perfectly-balanced share (1.0 = even spread, M = everything on
	// one shard).
	ProbeShardImbalance = "shard.imbalance"
	// ProbeLBWait is the load-balancer stage's current queue depth —
	// requests parsed but not yet forwarded to a shard.
	ProbeLBWait = "lb.wait"
	// ProbeLBRetry counts forward re-attempts — a pooled keep-alive
	// connection gone stale, or a transient shard error retried after
	// backoff (cumulative).
	ProbeLBRetry = "lb.retry"
	// ProbeLBBreaker counts per-shard circuit-breaker opens: a shard
	// that failed BreakerThreshold consecutive forwards is skipped
	// until its cooldown expires (cumulative; a failed half-open trial
	// re-arming the cooldown counts as a new open).
	ProbeLBBreaker = "lb.breaker"
	// ProbeLBHalfOpen counts half-open trial forwards: after an open
	// breaker's cooldown, exactly one request is let through to probe the
	// shard — success closes the breaker, failure re-arms the cooldown.
	// The shard is re-admitted by probe success, never by timer expiry
	// alone (cumulative).
	ProbeLBHalfOpen = "lb.halfopen"
)

// Options configures a Balancer.
type Options struct {
	// Shards is the number of shard instances fronted (>= 1).
	Shards int
	// LB is the key-less routing policy, LBHash (default) or LBRR.
	LB string
	// VNodes is the virtual-node count per shard (0 = DefaultVNodes).
	VNodes int
	// Workers is the LB stage's worker count (0 = 16). Fan-out requests
	// hold a worker while every shard answers, so the pool bounds
	// concurrent cross-shard work too.
	Workers int
	// QueueCap bounds the LB stage queue (0 = stage default).
	QueueCap int
	// Clock schedules the balancer's paper-time deadlines (fan-out
	// deadline, retry backoff, breaker cooldown); nil means clock.Real.
	Clock clock.Clock
	// Scale converts those paper-time deadlines to wall time; <= 0
	// means clock.RealTime.
	Scale clock.Timescale
	// FanoutDeadline bounds how long a cross-shard fan-out waits for
	// every shard, in paper time, before degrading to the responses in
	// hand. Zero means the 10 s default; negative disables the deadline
	// (the old reply-after-all-forever behavior).
	FanoutDeadline time.Duration
	// Retries is how many times a failed forward is re-attempted after
	// backoff. Zero means the default of 2; negative disables retries.
	Retries int
	// RetryBackoff is the paper-time pause before each re-attempt
	// (0 = 100 ms).
	RetryBackoff time.Duration
	// BreakerThreshold opens a shard's circuit breaker after that many
	// consecutive forward failures (0 = 5).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker skips a shard before
	// letting a trial request through, in paper time (0 = 10 s).
	BreakerCooldown time.Duration
}

// DecodeSettings splits the cluster-owned settings out of a config's
// explicit settings and decodes them (against the harness-lowered
// defaults): shards (shard count, >= 1) and lb (hash|rr). It returns
// the decoded options, a copy of the explicit settings with the
// cluster keys removed (what the shard variant builders should see),
// and whether the cluster layer is engaged at all — true whenever a
// shards setting is present, even shards=1, so a sharded sweep's
// baseline cell runs through the same balancer hop as its scaled
// cells.
func DecodeSettings(explicit, defaults variant.Settings) (Options, variant.Settings, bool, error) {
	clusterKeys := []string{"shards", "lb"}
	own := variant.Settings{}
	rest := explicit.Clone()
	for _, k := range clusterKeys {
		if v, ok := explicit[k]; ok {
			own[k] = v
			delete(rest, k)
		}
	}
	ownDefaults := variant.Settings{}
	for _, k := range clusterKeys {
		if v, ok := defaults[k]; ok {
			ownDefaults[k] = v
		}
	}
	d := variant.NewSettingsDecoder(own, ownDefaults)
	var opts Options
	enabled := false
	if _, ok := own["shards"]; ok {
		enabled = true
	} else if _, ok := ownDefaults["shards"]; ok {
		enabled = true
	}
	opts.Shards = d.Int("shards", 1)
	opts.LB = d.Enum("lb", LBHash, LBHash, LBRR)
	if err := d.Finish(); err != nil {
		return Options{}, nil, false, fmt.Errorf("cluster: %w", err)
	}
	if opts.Shards < 1 {
		return Options{}, nil, false, fmt.Errorf("cluster: shards must be >= 1, got %d", opts.Shards)
	}
	return opts, rest, enabled, nil
}

// Decision is a routing verdict for one request.
type Decision struct {
	// Key is the partition-affinity key ("" = no affinity). Keyed
	// requests always go to the ring owner; a keyed fan-out uses the
	// owner's response as the merged reply.
	Key string
	// Fanout broadcasts the request to every shard and waits for all of
	// them — cross-shard reads scan every slice, cross-shard writes
	// apply everywhere (read-your-writes for subsequent routed reads).
	Fanout bool
}

// RouteFunc maps one parsed request (path and query) to a routing
// Decision. It must be safe for concurrent use.
type RouteFunc func(path string, query map[string]string) Decision
