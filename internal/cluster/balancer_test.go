package cluster_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"stagedweb/internal/clock"
	"stagedweb/internal/cluster"
	"stagedweb/internal/sqldb"
	"stagedweb/internal/tpcw"
	"stagedweb/internal/variant"
	"stagedweb/internal/webtest"
)

// bootCluster builds a balancer over n real shard instances (unmodified
// variant, TPC-W app, zero cost model) driven entirely by the manual
// clock — no timer ever needs to fire, so the test is deterministic.
func bootCluster(t *testing.T, manual *clock.Manual, n int, lb string) (*cluster.Balancer, string) {
	t.Helper()
	return bootClusterOpts(t, manual, cluster.Options{Shards: n, LB: lb})
}

// bootClusterOpts is bootCluster with the full balancer option surface
// exposed — the failover tests shorten fan-out deadlines, retry
// backoffs, and breaker cooldowns so failure paths fire in test time.
func bootClusterOpts(t *testing.T, clk clock.Clock, opts cluster.Options) (*cluster.Balancer, string) {
	t.Helper()
	insts := buildShardInsts(t, clk, opts.Shards, opts.VNodes)
	b, err := cluster.New(opts, insts, func(path string, q map[string]string) cluster.Decision {
		key, fanout := tpcw.ShardKey(path, q)
		return cluster.Decision{Key: key, Fanout: fanout}
	})
	if err != nil {
		t.Fatal(err)
	}
	l, addr, err := webtest.Listen()
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = b.Serve(l) }()
	if !webtest.WaitUntil(5*time.Second, func() bool {
		resp, err := webtest.Get(addr, tpcw.PageHome)
		return err == nil && resp.Status == 200
	}) {
		b.Stop()
		t.Fatal("cluster did not come up")
	}
	return b, addr
}

// buildShardInsts builds n unmodified-variant shard instances over
// consistently-partitioned TPC-W databases, all on the given clock.
func buildShardInsts(t *testing.T, clk clock.Clock, n, vnodes int) []variant.Instance {
	t.Helper()
	ring, err := cluster.NewRing(n, vnodes)
	if err != nil {
		t.Fatal(err)
	}
	popCfg := tpcw.PopulateConfig{Items: 60, Customers: 40, Orders: 30}
	insts := make([]variant.Instance, n)
	for s := 0; s < n; s++ {
		cost := sqldb.CostModel{}
		db := sqldb.Open(sqldb.Options{Clock: clk, Timescale: clock.RealTime, Cost: &cost})
		if err := tpcw.CreateTables(db); err != nil {
			t.Fatal(err)
		}
		s := s
		counts, err := tpcw.PopulateShard(db, popCfg, func(cID int) bool {
			return ring.Owner(tpcw.CustomerKey(cID)) == s
		})
		if err != nil {
			t.Fatal(err)
		}
		v, ok := variant.Lookup(variant.Unmodified)
		if !ok {
			t.Fatal("unmodified variant not registered")
		}
		insts[s], err = v.Build(variant.Env{
			App:   tpcw.NewApp(counts, clk),
			DB:    db,
			Clock: clk,
			Scale: clock.RealTime,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return insts
}

// TestClusterReadYourWrites drives the cross-shard write path through
// the balancer: admin_response updates the replicated item table, which
// fans out to every shard and only replies once all shards have
// applied it — so a read routed to ANY shard afterwards must see the
// new price. lb=rr makes consecutive key-less reads visit the shards
// round-robin, covering every copy.
func TestClusterReadYourWrites(t *testing.T) {
	manual := clock.NewManual(time.Date(2009, 6, 29, 0, 0, 0, 0, time.UTC))
	const shards = 2
	b, addr := bootCluster(t, manual, shards, cluster.LBRR)
	defer b.Stop()

	resp, err := webtest.Get(addr, tpcw.PageAdminResponse+"?i_id=7&cost=42.50")
	if err != nil {
		t.Fatalf("admin_response: %v", err)
	}
	if resp.Status != 200 {
		t.Fatalf("admin_response status %d", resp.Status)
	}

	// One read per shard: round-robin guarantees two consecutive
	// key-less requests land on different shards.
	for i := 0; i < shards; i++ {
		resp, err := webtest.Get(addr, tpcw.PageProductDetail+"?i_id=7")
		if err != nil {
			t.Fatalf("product_detail read %d: %v", i, err)
		}
		if resp.Status != 200 {
			t.Fatalf("product_detail read %d: status %d", i, resp.Status)
		}
		if !strings.Contains(string(resp.Body), "$42.50") {
			t.Errorf("read %d after broadcast write does not show the new price", i)
		}
	}
}

// TestClusterCustomerAffinity checks keyed routing end to end: every
// customer's pages are answered from the shard owning that customer's
// rows (a miss would 500 or render without the customer's name).
func TestClusterCustomerAffinity(t *testing.T) {
	manual := clock.NewManual(time.Date(2009, 6, 29, 0, 0, 0, 0, time.UTC))
	b, addr := bootCluster(t, manual, 3, cluster.LBHash)
	defer b.Stop()

	for c := 1; c <= 40; c++ {
		path := fmt.Sprintf("%s?uname=%s&passwd=pw%d", tpcw.PageOrderDisplay, tpcw.Uname(c), c)
		resp, err := webtest.Get(addr, path)
		if err != nil {
			t.Fatalf("order_display customer %d: %v", c, err)
		}
		if resp.Status != 200 {
			t.Errorf("order_display customer %d: status %d (routed off the owning shard?)", c, resp.Status)
		}
	}
}
