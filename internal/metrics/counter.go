// Package metrics provides the lightweight instrumentation primitives used
// throughout the staged web server reproduction: atomic counters and
// gauges, response-time histograms, and fixed-interval time series for the
// queue-length and throughput figures of the DSN'09 evaluation.
//
// All types are safe for concurrent use and allocation-free on the hot
// paths (Counter.Add, Gauge.Set, Histogram.Observe).
package metrics

import "sync/atomic"

// Counter is a monotonically increasing event counter. The zero value is
// ready to use.
type Counter struct {
	n atomic.Int64
}

// Add increments the counter by delta, which must be non-negative.
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		panic("metrics: negative Counter.Add")
	}
	c.n.Add(delta)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n.Add(1) }

// Value reports the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// Reset zeroes the counter (used at the start of a measurement window).
func (c *Counter) Reset() { c.n.Store(0) }

// Gauge is an instantaneous value such as the number of spare workers in a
// pool or the current length of a queue. The zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc increments the gauge by one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec decrements the gauge by one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value reports the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }
