package metrics

import (
	"encoding/json"
	"testing"
	"time"

	"stagedweb/internal/clock"
)

var tsEpoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func TestSeriesSum(t *testing.T) {
	s := NewSeries(tsEpoch, time.Minute, AggSum)
	s.Observe(tsEpoch.Add(10*time.Second), 1)
	s.Observe(tsEpoch.Add(30*time.Second), 1)
	s.Observe(tsEpoch.Add(90*time.Second), 1)
	pts := s.Points()
	if len(pts) != 2 {
		t.Fatalf("len(Points) = %d, want 2", len(pts))
	}
	if pts[0].Value != 2 || pts[1].Value != 1 {
		t.Fatalf("values = %v/%v, want 2/1", pts[0].Value, pts[1].Value)
	}
	if pts[1].Offset != time.Minute {
		t.Fatalf("offset = %v, want 1m", pts[1].Offset)
	}
}

func TestSeriesLast(t *testing.T) {
	s := NewSeries(tsEpoch, time.Second, AggLast)
	s.Observe(tsEpoch.Add(100*time.Millisecond), 5)
	s.Observe(tsEpoch.Add(900*time.Millisecond), 9)
	pts := s.Points()
	if pts[0].Value != 9 {
		t.Fatalf("AggLast value = %v, want 9", pts[0].Value)
	}
}

func TestSeriesMax(t *testing.T) {
	s := NewSeries(tsEpoch, time.Second, AggMax)
	s.Observe(tsEpoch, 3)
	s.Observe(tsEpoch.Add(time.Millisecond), 7)
	s.Observe(tsEpoch.Add(2*time.Millisecond), 5)
	if got := s.Points()[0].Value; got != 7 {
		t.Fatalf("AggMax value = %v, want 7", got)
	}
}

func TestSeriesMean(t *testing.T) {
	s := NewSeries(tsEpoch, time.Second, AggMean)
	s.Observe(tsEpoch, 2)
	s.Observe(tsEpoch.Add(time.Millisecond), 4)
	if got := s.Points()[0].Value; got != 3 {
		t.Fatalf("AggMean value = %v, want 3", got)
	}
}

func TestSeriesDropsEarlyObservations(t *testing.T) {
	s := NewSeries(tsEpoch, time.Second, AggSum)
	s.Observe(tsEpoch.Add(-time.Second), 100) // ramp-up traffic
	if s.Len() != 0 {
		t.Fatal("observation before start must be dropped")
	}
}

func TestSeriesGapBucketsReportZero(t *testing.T) {
	s := NewSeries(tsEpoch, time.Second, AggSum)
	s.Observe(tsEpoch.Add(5*time.Second), 1)
	pts := s.Points()
	if len(pts) != 6 {
		t.Fatalf("len = %d, want 6", len(pts))
	}
	for i := 0; i < 5; i++ {
		if pts[i].Value != 0 {
			t.Fatalf("gap bucket %d = %v, want 0", i, pts[i].Value)
		}
	}
}

func TestSeriesInvalidWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero width did not panic")
		}
	}()
	NewSeries(tsEpoch, 0, AggSum)
}

func TestSamplerCollectsOnTicks(t *testing.T) {
	clk := clock.NewManual(tsEpoch)
	s := NewSeries(tsEpoch, time.Second, AggLast)
	var g Gauge
	sampler := StartSampler(clk, time.Second, func() float64 { return float64(g.Value()) }, s)
	defer sampler.Stop()

	clk.BlockUntilWaiters(1)
	g.Set(4)
	clk.Advance(time.Second)
	waitForLen(t, s, 2) // bucket for t=1s exists once sampled
	g.Set(7)
	clk.Advance(time.Second)
	waitForLen(t, s, 3)

	pts := s.Points()
	if pts[1].Value != 4 {
		t.Fatalf("sample at 1s = %v, want 4", pts[1].Value)
	}
	if pts[2].Value != 7 {
		t.Fatalf("sample at 2s = %v, want 7", pts[2].Value)
	}
}

func waitForLen(t *testing.T, s *Series, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.Len() < n {
		if time.Now().After(deadline) {
			t.Fatalf("series never reached %d buckets (have %d)", n, s.Len())
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func TestSamplerStopIdempotentGoroutine(t *testing.T) {
	clk := clock.NewManual(tsEpoch)
	s := NewSeries(tsEpoch, time.Second, AggLast)
	sampler := StartSampler(clk, time.Second, func() float64 { return 1 }, s)
	sampler.Stop() // must not deadlock
}

func TestAggString(t *testing.T) {
	cases := map[Agg]string{AggSum: "sum", AggLast: "last", AggMax: "max", AggMean: "mean", Agg(0): "unknown"}
	for agg, want := range cases {
		if got := agg.String(); got != want {
			t.Errorf("Agg(%d).String() = %q, want %q", agg, got, want)
		}
	}
}

func TestSeriesMarshalJSON(t *testing.T) {
	s := NewSeries(tsEpoch, 2*time.Second, AggMean)
	s.Observe(tsEpoch, 4)
	s.Observe(tsEpoch.Add(time.Second), 8) // same bucket, mean 6
	s.Observe(tsEpoch.Add(2*time.Second), 1)
	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		WidthSeconds float64 `json:"width_seconds"`
		Agg          string  `json:"agg"`
		Points       []struct {
			OffsetSeconds float64 `json:"offset_seconds"`
			Value         float64 `json:"value"`
		} `json:"points"`
	}
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.WidthSeconds != 2 || decoded.Agg != "mean" || len(decoded.Points) != 2 {
		t.Fatalf("decoded = %+v", decoded)
	}
	if decoded.Points[0].Value != 6 || decoded.Points[1].OffsetSeconds != 2 || decoded.Points[1].Value != 1 {
		t.Fatalf("points wrong: %+v", decoded.Points)
	}
}
