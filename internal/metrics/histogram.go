package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Histogram accumulates duration observations (response times, queue
// waits, data-generation times) and reports count, mean, min, max, and
// approximate quantiles from log-spaced buckets.
//
// Buckets span 1 µs to ~73 min with 8 sub-buckets per decade, giving a
// worst-case quantile error under 15% — ample for reproducing tables whose
// entries differ by orders of magnitude. The zero value is ready to use.
type Histogram struct {
	mu      sync.Mutex
	count   int64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
	buckets [numBuckets]int64
}

const (
	bucketsPerDecade = 8
	numDecades       = 10 // 1µs .. ~1e10µs
	numBuckets       = bucketsPerDecade*numDecades + 1
)

// bucketIndex maps a duration to its log-spaced bucket.
func bucketIndex(d time.Duration) int {
	us := d.Microseconds()
	if us < 1 {
		return 0
	}
	idx := int(math.Floor(math.Log10(float64(us)) * bucketsPerDecade))
	if idx < 0 {
		idx = 0
	}
	if idx >= numBuckets {
		idx = numBuckets - 1
	}
	return idx
}

// bucketUpper returns the upper bound of bucket i.
func bucketUpper(i int) time.Duration {
	us := math.Pow(10, float64(i+1)/bucketsPerDecade)
	return time.Duration(us) * time.Microsecond
}

// Observe records one duration. Negative durations are clamped to zero.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	idx := bucketIndex(d)
	h.mu.Lock()
	h.count++
	h.sum += d
	if h.count == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.buckets[idx]++
	h.mu.Unlock()
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum reports the total of all observations.
func (h *Histogram) Sum() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean reports the average observation, or 0 with no observations.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Min reports the smallest observation, or 0 with no observations.
func (h *Histogram) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

// Max reports the largest observation.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Quantile reports an approximate q-quantile (0 <= q <= 1) as the upper
// bound of the bucket containing it, or 0 with no observations.
func (h *Histogram) Quantile(q float64) time.Duration {
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("metrics: quantile %v out of range", q))
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, n := range h.buckets {
		cum += n
		if cum >= rank {
			if i == 0 {
				return h.min
			}
			upper := bucketUpper(i)
			if upper > h.max {
				upper = h.max
			}
			return upper
		}
	}
	return h.max
}

// FractionAtOrBelow reports the fraction of observations whose bucket
// lies at or below d's bucket — the SLO-attainment measure: the share
// of requests answered within the threshold, to bucket resolution.
// With no observations it reports 1 (an empty window violates nothing).
func (h *Histogram) FractionAtOrBelow(d time.Duration) float64 {
	if d < 0 {
		d = 0
	}
	idx := bucketIndex(d)
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 1
	}
	var cum int64
	for i := 0; i <= idx; i++ {
		cum += h.buckets[i]
	}
	return float64(cum) / float64(h.count)
}

// Reset clears all state (used at the start of a measurement window).
func (h *Histogram) Reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count = 0
	h.sum = 0
	h.min = 0
	h.max = 0
	h.buckets = [numBuckets]int64{}
}

// Snapshot is a point-in-time copy of the histogram's summary statistics.
type Snapshot struct {
	Count int64
	Sum   time.Duration
	Mean  time.Duration
	Min   time.Duration
	Max   time.Duration
	P50   time.Duration
	P90   time.Duration
	P99   time.Duration
}

// Snapshot captures the current summary statistics atomically.
func (h *Histogram) Snapshot() Snapshot {
	// Take quantiles under one external view; Quantile locks internally,
	// so copy the raw state first.
	h.mu.Lock()
	cp := Histogram{count: h.count, sum: h.sum, min: h.min, max: h.max, buckets: h.buckets}
	h.mu.Unlock()
	s := Snapshot{Count: cp.count, Sum: cp.sum, Min: cp.min, Max: cp.max}
	if cp.count > 0 {
		s.Mean = cp.sum / time.Duration(cp.count)
		s.P50 = cp.Quantile(0.50)
		s.P90 = cp.Quantile(0.90)
		s.P99 = cp.Quantile(0.99)
	}
	return s
}

// SortDurations sorts a duration slice ascending; exported here so tests
// and the harness share one helper.
func SortDurations(ds []time.Duration) {
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
}
