package metrics

import (
	"encoding/json"
	"sync"
	"time"

	"stagedweb/internal/clock"
)

// Agg selects how a Series combines multiple observations that land in the
// same bucket.
type Agg int

const (
	// AggSum adds observations — used for per-interval throughput counts
	// (Figures 9 and 10).
	AggSum Agg = iota + 1
	// AggLast keeps the most recent observation — used for sampled queue
	// lengths (Figures 7 and 8).
	AggLast
	// AggMax keeps the largest observation.
	AggMax
	// AggMean averages observations within the bucket.
	AggMean
)

// String names the aggregation for JSON artifacts and diagnostics.
func (a Agg) String() string {
	switch a {
	case AggSum:
		return "sum"
	case AggLast:
		return "last"
	case AggMax:
		return "max"
	case AggMean:
		return "mean"
	default:
		return "unknown"
	}
}

// Series is a fixed-interval time series anchored at a start time. It is
// safe for concurrent use.
type Series struct {
	mu     sync.Mutex
	start  time.Time
	width  time.Duration
	agg    Agg
	values []float64
	counts []int64
}

// NewSeries returns a Series with the given bucket width and aggregation.
// Width must be positive.
func NewSeries(start time.Time, width time.Duration, agg Agg) *Series {
	if width <= 0 {
		panic("metrics: non-positive series bucket width")
	}
	return &Series{start: start, width: width, agg: agg}
}

// Start reports the series anchor time.
func (s *Series) Start() time.Time { return s.start }

// Width reports the bucket width.
func (s *Series) Width() time.Duration { return s.width }

// Observe records v at time t. Observations before the start time are
// dropped (ramp-up traffic outside the measurement window).
func (s *Series) Observe(t time.Time, v float64) {
	d := t.Sub(s.start)
	if d < 0 {
		return
	}
	idx := int(d / s.width)
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.values) <= idx {
		s.values = append(s.values, 0)
		s.counts = append(s.counts, 0)
	}
	switch s.agg {
	case AggSum:
		s.values[idx] += v
	case AggLast:
		s.values[idx] = v
	case AggMax:
		if s.counts[idx] == 0 || v > s.values[idx] {
			s.values[idx] = v
		}
	case AggMean:
		s.values[idx] += v
	default:
		panic("metrics: unknown aggregation")
	}
	s.counts[idx]++
}

// Point is one (offset, value) sample of a series.
type Point struct {
	Offset time.Duration // from series start to bucket start
	Value  float64
}

// Points returns the bucketed samples in time order. Buckets with no
// observations report zero, matching how the paper's figures show idle
// intervals.
func (s *Series) Points() []Point {
	s.mu.Lock()
	defer s.mu.Unlock()
	pts := make([]Point, len(s.values))
	for i := range s.values {
		v := s.values[i]
		if s.agg == AggMean && s.counts[i] > 0 {
			v /= float64(s.counts[i])
		}
		pts[i] = Point{Offset: time.Duration(i) * s.width, Value: v}
	}
	return pts
}

// Len reports the number of buckets with at least the last observation.
func (s *Series) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.values)
}

// seriesJSON is the artifact shape of a Series: the start time is
// deliberately omitted (offsets are relative to the measurement window,
// which is what the paper's figures plot).
type seriesJSON struct {
	WidthSeconds float64     `json:"width_seconds"`
	Agg          string      `json:"agg"`
	Points       []pointJSON `json:"points"`
}

type pointJSON struct {
	OffsetSeconds float64 `json:"offset_seconds"`
	Value         float64 `json:"value"`
}

// MarshalJSON emits the series' bucket width, aggregation, and points,
// with offsets in seconds from the series anchor.
func (s *Series) MarshalJSON() ([]byte, error) {
	pts := s.Points()
	out := seriesJSON{
		WidthSeconds: s.width.Seconds(),
		Agg:          s.agg.String(),
		Points:       make([]pointJSON, len(pts)),
	}
	for i, p := range pts {
		out.Points[i] = pointJSON{OffsetSeconds: p.Offset.Seconds(), Value: p.Value}
	}
	return json.Marshal(out)
}

// Sampler periodically reads a gauge-like source into a Series. It powers
// the queue-length figures: one sample per paper-second.
type Sampler struct {
	stop chan struct{}
	done chan struct{}
}

// StartSampler samples src into dst every interval until Stop is called.
// The interval is interpreted on clk (wall time for experiments, manual
// time for tests).
func StartSampler(clk clock.Clock, interval time.Duration, src func() float64, dst *Series) *Sampler {
	s := &Sampler{stop: make(chan struct{}), done: make(chan struct{})}
	tk := clk.NewTicker(interval)
	go func() {
		defer close(s.done)
		defer tk.Stop()
		for {
			select {
			case <-s.stop:
				return
			case now := <-tk.C():
				dst.Observe(now, src())
			}
		}
	}()
	return s
}

// Stop halts the sampler and waits for its goroutine to exit.
func (s *Sampler) Stop() {
	close(s.stop)
	<-s.done
}
