package metrics

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("empty Quantile = %v, want 0", q)
	}
}

func TestHistogramSingleObservation(t *testing.T) {
	var h Histogram
	h.Observe(100 * time.Millisecond)
	if h.Count() != 1 {
		t.Fatalf("Count = %d, want 1", h.Count())
	}
	if h.Mean() != 100*time.Millisecond {
		t.Fatalf("Mean = %v, want 100ms", h.Mean())
	}
	if h.Min() != h.Max() || h.Min() != 100*time.Millisecond {
		t.Fatalf("Min/Max = %v/%v, want 100ms", h.Min(), h.Max())
	}
}

func TestHistogramFractionAtOrBelow(t *testing.T) {
	var h Histogram
	if f := h.FractionAtOrBelow(time.Second); f != 1 {
		t.Fatalf("empty FractionAtOrBelow = %v, want 1 (nothing violated)", f)
	}
	// Widely separated observations land in distinct buckets, so the
	// fractions are exact despite bucket resolution.
	for i := 0; i < 9; i++ {
		h.Observe(10 * time.Millisecond)
	}
	h.Observe(10 * time.Second)
	if f := h.FractionAtOrBelow(100 * time.Millisecond); f != 0.9 {
		t.Fatalf("FractionAtOrBelow(100ms) = %v, want 0.9", f)
	}
	if f := h.FractionAtOrBelow(time.Minute); f != 1 {
		t.Fatalf("FractionAtOrBelow(1m) = %v, want 1", f)
	}
	if f := h.FractionAtOrBelow(-time.Second); f > 0.1 {
		t.Fatalf("FractionAtOrBelow(negative) = %v, want at most the zero bucket", f)
	}
}

func TestHistogramMean(t *testing.T) {
	var h Histogram
	h.Observe(time.Second)
	h.Observe(3 * time.Second)
	if got := h.Mean(); got != 2*time.Second {
		t.Fatalf("Mean = %v, want 2s", got)
	}
	if got := h.Sum(); got != 4*time.Second {
		t.Fatalf("Sum = %v, want 4s", got)
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Observe(-time.Second)
	if h.Min() != 0 {
		t.Fatalf("Min = %v, want 0", h.Min())
	}
}

func TestHistogramQuantileApproximation(t *testing.T) {
	var h Histogram
	// 100 observations spanning 1ms..100ms.
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	p50 := h.Quantile(0.5)
	// Log buckets with 8 per decade: relative error bound ~ 10^(1/8) = 1.33x.
	if p50 < 40*time.Millisecond || p50 > 70*time.Millisecond {
		t.Fatalf("P50 = %v, want ~50ms within bucket error", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 80*time.Millisecond || p99 > 100*time.Millisecond {
		t.Fatalf("P99 = %v, want ~99ms within bucket error", p99)
	}
	if q := h.Quantile(1); q != h.Max() {
		t.Fatalf("Quantile(1) = %v, want max %v", q, h.Max())
	}
}

func TestHistogramQuantileOutOfRangePanics(t *testing.T) {
	var h Histogram
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range quantile did not panic")
		}
	}()
	h.Quantile(1.5)
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	h.Observe(time.Second)
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 {
		t.Fatal("Reset did not clear state")
	}
}

func TestHistogramSnapshot(t *testing.T) {
	var h Histogram
	for i := 0; i < 10; i++ {
		h.Observe(time.Duration(i+1) * time.Second)
	}
	s := h.Snapshot()
	if s.Count != 10 {
		t.Fatalf("Snapshot.Count = %d, want 10", s.Count)
	}
	if s.Mean != 5500*time.Millisecond {
		t.Fatalf("Snapshot.Mean = %v, want 5.5s", s.Mean)
	}
	if s.P50 == 0 || s.P90 == 0 || s.P99 == 0 {
		t.Fatal("Snapshot quantiles must be populated")
	}
	if s.P50 > s.P90 || s.P90 > s.P99 {
		t.Fatalf("quantiles not monotone: %v %v %v", s.P50, s.P90, s.P99)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const goroutines, perG = 8, 500
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for i := 0; i < goroutines; i++ {
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for j := 0; j < perG; j++ {
				h.Observe(time.Duration(r.Intn(1000)) * time.Millisecond)
			}
		}(int64(i))
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*perG {
		t.Fatalf("Count = %d, want %d", got, goroutines*perG)
	}
}

// Property: mean is always within [min, max] and quantiles are monotone in q.
func TestHistogramInvariantsProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		var h Histogram
		for _, u := range raw {
			h.Observe(time.Duration(u%10_000_000) * time.Microsecond)
		}
		mean, lo, hi := h.Mean(), h.Min(), h.Max()
		if mean < lo || mean > hi {
			return false
		}
		prev := time.Duration(0)
		for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
			v := h.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return h.Quantile(1) <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBucketIndexMonotone(t *testing.T) {
	prev := -1
	for _, d := range []time.Duration{
		0, time.Microsecond, 10 * time.Microsecond, time.Millisecond,
		10 * time.Millisecond, time.Second, 10 * time.Second, time.Hour,
	} {
		idx := bucketIndex(d)
		if idx < prev {
			t.Fatalf("bucketIndex(%v) = %d < previous %d", d, idx, prev)
		}
		prev = idx
	}
}
