package metrics

import (
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatalf("zero value = %d, want 0", c.Value())
	}
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("Value = %d, want 5", got)
	}
	c.Reset()
	if got := c.Value(); got != 0 {
		t.Fatalf("after Reset = %d, want 0", got)
	}
}

func TestCounterNegativeAddPanics(t *testing.T) {
	var c Counter
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	c.Add(-1)
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	const goroutines, perG = 16, 1000
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for i := 0; i < goroutines; i++ {
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("Value = %d, want %d", got, goroutines*perG)
	}
}

func TestGaugeBasics(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Inc()
	g.Dec()
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("Value = %d, want 7", got)
	}
}

func TestGaugeConcurrent(t *testing.T) {
	var g Gauge
	const n = 1000
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			g.Inc()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			g.Dec()
		}
	}()
	wg.Wait()
	if got := g.Value(); got != 0 {
		t.Fatalf("Value = %d, want 0", got)
	}
}
