package workload

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"stagedweb/internal/clock"
	"stagedweb/internal/core"
	"stagedweb/internal/sqldb"
	"stagedweb/internal/tpcw"
	"stagedweb/internal/webtest"
)

// startBookstore boots a staged server with a small TPC-W population.
func startBookstore(t *testing.T) (addr string, counts tpcw.Counts) {
	t.Helper()
	db := sqldb.Open(sqldb.Options{Cost: sqldb.ZeroCostModel()})
	if err := tpcw.CreateTables(db); err != nil {
		t.Fatal(err)
	}
	counts, err := tpcw.Populate(db, tpcw.PopulateConfig{Items: 150, Customers: 40, Orders: 40})
	if err != nil {
		t.Fatal(err)
	}
	app := tpcw.NewApp(counts, nil)
	srv, err := core.New(core.Config{
		App: app, DB: db,
		HeaderWorkers: 2, StaticWorkers: 2, GeneralWorkers: 4, LengthyWorkers: 2, RenderWorkers: 2,
		MinReserve: 1,
		Scale:      clock.Timescale(1000),
	})
	if err != nil {
		t.Fatal(err)
	}
	l, addr, err := webtest.Listen()
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	t.Cleanup(srv.Stop)
	return addr, counts
}

func TestGeneratorDrivesAllTraffic(t *testing.T) {
	addr, counts := startBookstore(t)
	g := New(Config{
		Addr:        addr,
		EBs:         8,
		Scale:       clock.Timescale(1000), // think times ~0.7-7ms
		Customers:   counts.Customers,
		Items:       counts.Items,
		FetchImages: true,
		Seed:        42,
	})
	g.Start()
	deadline := time.Now().Add(10 * time.Second)
	for g.Stats().TotalInteractions() < 100 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d interactions completed (errors=%d)",
				g.Stats().TotalInteractions(), g.Stats().Errors())
		}
		time.Sleep(5 * time.Millisecond)
	}
	g.Stop()

	if g.Stats().Errors() > g.Stats().TotalInteractions()/10 {
		t.Fatalf("too many errors: %d of %d", g.Stats().Errors(), g.Stats().TotalInteractions())
	}
	pages := g.Stats().Pages()
	if len(pages) < 5 {
		t.Fatalf("only %d distinct pages visited: %v", len(pages), pages)
	}
	for _, p := range pages {
		if p.Count > 0 && p.Mean <= 0 {
			t.Fatalf("page %s has count but zero mean", p.Page)
		}
	}
	// Home should dominate (29% of the mix).
	home := g.Stats().Page(tpcw.PageHome)
	if home.Count == 0 {
		t.Fatal("home page never visited")
	}
}

func TestStatsRecordingGate(t *testing.T) {
	s := newStats()
	s.record("/p", time.Second)
	s.SetRecording(false)
	s.record("/p", time.Second)
	s.recordError("/p")
	if got := s.Page("/p").Count; got != 1 {
		t.Fatalf("count = %d, want 1 (gated)", got)
	}
	if s.Errors() != 0 {
		t.Fatal("error recorded while gated")
	}
	s.SetRecording(true)
	s.Reset()
	if s.TotalInteractions() != 0 {
		t.Fatal("Reset did not clear")
	}
}

// TestStatsPageErrors pins per-page error attribution: failures count
// against the page that drove them and surface in every summary view,
// including for pages seen only through failures.
func TestStatsPageErrors(t *testing.T) {
	s := newStats()
	s.record("/home", time.Second)
	s.recordError("/home")
	s.recordError("/home")
	s.recordError("/best_sellers")
	if got := s.Errors(); got != 3 {
		t.Fatalf("Errors = %d, want 3", got)
	}
	if got := s.PageErrors("/home"); got != 2 {
		t.Fatalf("PageErrors(/home) = %d, want 2", got)
	}
	if got := s.Page("/home"); got.Count != 1 || got.Errors != 2 {
		t.Fatalf("Page(/home) = %+v, want count 1 errors 2", got)
	}
	// A page with failures but no completions still appears.
	if got := s.Page("/best_sellers"); got.Count != 0 || got.Errors != 1 {
		t.Fatalf("Page(/best_sellers) = %+v, want count 0 errors 1", got)
	}
	pages := s.Pages()
	if len(pages) != 2 {
		t.Fatalf("Pages() = %v, want both pages", pages)
	}
	for _, p := range pages {
		if p.Page == "/best_sellers" && p.Errors != 1 {
			t.Fatalf("Pages() missed error-only page: %+v", p)
		}
	}
	s.Reset()
	if s.PageErrors("/home") != 0 || s.Errors() != 0 {
		t.Fatal("Reset did not clear errors")
	}
}

func TestExtractImages(t *testing.T) {
	html := []byte(`<img src="/img/a.gif"><img src="/img/b.gif"><img src="/img/a.gif"><img src="">`)
	imgs := extractImages(html, 10)
	if len(imgs) != 2 || imgs[0] != "/img/a.gif" || imgs[1] != "/img/b.gif" {
		t.Fatalf("imgs = %v", imgs)
	}
	if got := extractImages(html, 1); len(got) != 1 {
		t.Fatalf("cap not applied: %v", got)
	}
	if got := extractImages([]byte("no images here"), 5); len(got) != 0 {
		t.Fatalf("phantom images: %v", got)
	}
}

func TestExtractInt(t *testing.T) {
	body := []byte(`<a href="/customer_registration?sc_id=457">Checkout</a>`)
	if got := extractInt(body, "sc_id="); got != 457 {
		t.Fatalf("extractInt = %d, want 457", got)
	}
	if got := extractInt(body, "o_id="); got != 0 {
		t.Fatalf("missing marker = %d, want 0", got)
	}
	if got := extractInt([]byte("sc_id=x"), "sc_id="); got != 0 {
		t.Fatalf("non-numeric = %d, want 0", got)
	}
}

func TestBuildURLSessionCoherence(t *testing.T) {
	b := &browser{
		cfg: Config{Customers: 10, Items: 100, Mix: tpcw.NewMix(tpcw.BrowsingMix),
			Scale: clock.RealTime, MaxImages: 4},
		rng: rand.New(rand.NewSource(7)),
		cID: 3,
	}
	url := b.buildURL(tpcw.PageHome)
	if !strings.Contains(url, "c_id=3") {
		t.Fatalf("home url %q missing customer", url)
	}
	b.scID = 99
	url = b.buildURL(tpcw.PageBuyRequest)
	if !strings.Contains(url, "sc_id=99") || !strings.Contains(url, "uname=user3") {
		t.Fatalf("buy request url %q", url)
	}
	// Cart id learned from a response body.
	b.updateSession(tpcw.PageShoppingCart, []byte("...?sc_id=123\">Checkout"))
	if b.scID != 123 {
		t.Fatalf("scID = %d, want 123", b.scID)
	}
	// Purchase clears the cart.
	b.updateSession(tpcw.PageBuyConfirm, nil)
	if b.scID != 0 {
		t.Fatalf("scID = %d after purchase, want 0", b.scID)
	}
}
