package workload

import (
	"math/rand"
	"testing"
	"time"

	"stagedweb/internal/clock"
)

// drawThinks samples n think times from a browser configured with cfg.
func drawThinks(t *testing.T, cfg Config, n int) []time.Duration {
	t.Helper()
	cfg.fillDefaults()
	b := &browser{cfg: cfg, rng: rand.New(rand.NewSource(7))}
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = b.thinkDuration()
	}
	return out
}

// TestThinkExponential checks TPC-W clause 5.3.2.2: a negative
// exponential with the configured mean, truncated below at ThinkMin and
// capped at ten times the mean.
func TestThinkExponential(t *testing.T) {
	const n = 50000
	mean := 7 * time.Second
	min := 700 * time.Millisecond
	draws := drawThinks(t, Config{ThinkExponential: true, ThinkMean: mean, ThinkMin: min}, n)

	var sum time.Duration
	for _, d := range draws {
		if d < min {
			t.Fatalf("draw %v under the %v floor", d, min)
		}
		if d > 10*mean {
			t.Fatalf("draw %v over the 10x-mean cap %v", d, 10*mean)
		}
		sum += d
	}
	// The floor raises the mean slightly and the cap trims the tail;
	// with 50k draws the empirical mean lands within a few percent of 7 s.
	got := sum / n
	if got < time.Duration(0.9*float64(mean)) || got > time.Duration(1.1*float64(mean)) {
		t.Fatalf("exponential mean = %v, want within 10%% of %v", got, mean)
	}
}

// TestThinkUniform checks the paper's literal "0.7 to 7 seconds" path:
// every draw inside the configured bounds with the mean near the center.
func TestThinkUniform(t *testing.T) {
	const n = 50000
	min, max := time.Second, 3*time.Second
	draws := drawThinks(t, Config{ThinkMin: min, ThinkMax: max}, n)
	var sum time.Duration
	for _, d := range draws {
		if d < min || d > max {
			t.Fatalf("draw %v outside [%v, %v]", d, min, max)
		}
		sum += d
	}
	center := (min + max) / 2
	got := sum / n
	if got < time.Duration(0.95*float64(center)) || got > time.Duration(1.05*float64(center)) {
		t.Fatalf("uniform mean = %v, want near %v", got, center)
	}
}

// TestThinkUniformDegenerate pins the ThinkMin == ThinkMax edge: a
// zero-width span must draw exactly the bound, not panic in Int63n.
func TestThinkUniformDegenerate(t *testing.T) {
	for _, d := range drawThinks(t, Config{ThinkMin: 2 * time.Second, ThinkMax: 2 * time.Second}, 100) {
		if d != 2*time.Second {
			t.Fatalf("degenerate uniform drew %v, want exactly 2s", d)
		}
	}
}

// TestSetTargetGrowShrink drives the dynamic fleet against a live
// server: the population follows the target both up and down.
func TestSetTargetGrowShrink(t *testing.T) {
	if testing.Short() {
		t.Skip("live-fleet test skipped in -short mode")
	}
	addr, counts := startBookstore(t)
	g := New(Config{
		Addr:      addr,
		EBs:       2,
		Scale:     clock.Timescale(1000),
		Customers: counts.Customers,
		Items:     counts.Items,
		Seed:      3,
	})
	g.Start()
	defer g.Stop()
	waitActive(t, g, 2)
	g.SetTarget(6)
	waitActive(t, g, 6)
	g.SetTarget(1)
	waitActive(t, g, 1)
	if g.Started() == 0 {
		t.Fatal("no interactions offered")
	}
}

// TestSpawnSessionExpires pins the open-loop primitive: a session lives
// its paper-time lifetime and retires itself.
func TestSpawnSessionExpires(t *testing.T) {
	if testing.Short() {
		t.Skip("live-fleet test skipped in -short mode")
	}
	addr, counts := startBookstore(t)
	g := New(Config{
		Addr:      addr,
		EBs:       0,
		Scale:     clock.Timescale(1000),
		Customers: counts.Customers,
		Items:     counts.Items,
		Seed:      4,
	})
	g.Start()
	defer g.Stop()
	if g.Active() != 0 {
		t.Fatalf("fleet not empty at start: %d", g.Active())
	}
	g.SpawnSession(5 * time.Second) // 5 ms wall at scale 1000
	waitActive(t, g, 1)
	waitActive(t, g, 0)
}

// waitActive polls until the generator's live EB count reaches want.
func waitActive(t *testing.T, g *Generator, want int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for g.Active() != want {
		if time.Now().After(deadline) {
			t.Fatalf("active = %d, want %d", g.Active(), want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
