package workload

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"stagedweb/internal/metrics"
)

// Stats collects client-side measurements: per-page WIRT histograms and
// completion counts. Recording can be gated to the measurement window —
// the paper excludes the five-minute ramp-up and cool-down.
type Stats struct {
	recording atomic.Bool

	mu       sync.Mutex
	pages    map[string]*metrics.Histogram
	counts   map[string]*int64
	errs     map[string]*int64
	errTotal atomic.Int64

	// overall aggregates WIRT across all pages — the distribution tail
	// quantiles (p99/p999) and SLO attainment are computed over the whole
	// interaction stream, not per page.
	overall metrics.Histogram

	// sloThreshold (wall ns; 0 = off) gates the cumulative sloWithin /
	// sloTotal pair, which the harness samples once per paper second to
	// compute windowed SLO attainment — the signal its fault-recovery
	// column is derived from.
	sloThreshold atomic.Int64
	sloWithin    atomic.Int64
	sloTotal     atomic.Int64
}

func newStats() *Stats {
	s := &Stats{
		pages:  make(map[string]*metrics.Histogram, 16),
		counts: make(map[string]*int64, 16),
		errs:   make(map[string]*int64, 16),
	}
	s.recording.Store(true)
	return s
}

// SetRecording gates measurement (true during the measurement window).
func (s *Stats) SetRecording(on bool) { s.recording.Store(on) }

// Reset clears all measurements (start of the measurement window).
func (s *Stats) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pages = make(map[string]*metrics.Histogram, 16)
	s.counts = make(map[string]*int64, 16)
	s.errs = make(map[string]*int64, 16)
	s.errTotal.Store(0)
	s.overall.Reset()
	s.sloWithin.Store(0)
	s.sloTotal.Store(0)
}

func (s *Stats) record(page string, wirt time.Duration) {
	if !s.recording.Load() {
		return
	}
	s.histogram(page).Observe(wirt)
	s.overall.Observe(wirt)
	if t := s.sloThreshold.Load(); t > 0 {
		s.sloTotal.Add(1)
		if int64(wirt) <= t {
			s.sloWithin.Add(1)
		}
	}
	atomic.AddInt64(s.counter(page), 1)
}

// OverallQuantile reports an approximate q-quantile of WIRT across all
// pages (wall time; divide through the timescale for paper seconds).
func (s *Stats) OverallQuantile(q float64) time.Duration {
	return s.overall.Quantile(q)
}

// FractionWithin reports the fraction of completed interactions (all
// pages) whose WIRT was at or below d — SLO attainment for threshold d.
func (s *Stats) FractionWithin(d time.Duration) float64 {
	return s.overall.FractionAtOrBelow(d)
}

// SetSLOThreshold arms the cumulative SLO counters: every recorded
// interaction from now on counts toward SLOCounts, split at wall
// duration d. Zero disables the counters.
func (s *Stats) SetSLOThreshold(d time.Duration) { s.sloThreshold.Store(int64(d)) }

// SLOCounts reports how many recorded interactions completed within
// the armed SLO threshold, and how many were recorded in total, since
// the last Reset. Sampling both once per paper second yields windowed
// attainment over time.
func (s *Stats) SLOCounts() (within, total int64) {
	return s.sloWithin.Load(), s.sloTotal.Load()
}

// recordError attributes one failed interaction to the page whose
// interaction failed (image failures charge the parent page).
func (s *Stats) recordError(page string) {
	if !s.recording.Load() {
		return
	}
	s.errTotal.Add(1)
	s.mu.Lock()
	c, ok := s.errs[page]
	if !ok {
		c = new(int64)
		s.errs[page] = c
	}
	s.mu.Unlock()
	atomic.AddInt64(c, 1)
}

func (s *Stats) histogram(page string) *metrics.Histogram {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.pages[page]
	if !ok {
		h = &metrics.Histogram{}
		s.pages[page] = h
	}
	return h
}

func (s *Stats) counter(page string) *int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.counts[page]
	if !ok {
		c = new(int64)
		s.counts[page] = c
	}
	return c
}

// Errors reports the number of failed interactions.
func (s *Stats) Errors() int64 { return s.errTotal.Load() }

// PageErrors reports one page's failed-interaction count.
func (s *Stats) PageErrors(page string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pageErrorsLocked(page)
}

// PageResult is one page's client-side summary.
type PageResult struct {
	Page   string
	Count  int64
	Errors int64
	Mean   time.Duration // wall time; divide through the timescale for paper seconds
	P90    time.Duration
	Max    time.Duration
}

// Pages returns per-page summaries sorted by page name, including pages
// seen only through failures.
func (s *Stats) Pages() []PageResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]PageResult, 0, len(s.pages))
	seen := make(map[string]bool, len(s.pages))
	for page, h := range s.pages {
		snap := h.Snapshot()
		seen[page] = true
		out = append(out, PageResult{
			Page:   page,
			Count:  snap.Count,
			Errors: s.pageErrorsLocked(page),
			Mean:   snap.Mean,
			P90:    snap.P90,
			Max:    snap.Max,
		})
	}
	for page := range s.errs {
		if !seen[page] {
			out = append(out, PageResult{Page: page, Errors: s.pageErrorsLocked(page)})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Page < out[j].Page })
	return out
}

// pageErrorsLocked reads one page's error count. Callers hold s.mu.
func (s *Stats) pageErrorsLocked(page string) int64 {
	c, ok := s.errs[page]
	if !ok {
		return 0
	}
	return atomic.LoadInt64(c)
}

// Page returns one page's summary (zero value when unseen).
func (s *Stats) Page(page string) PageResult {
	s.mu.Lock()
	h, ok := s.pages[page]
	errs := s.pageErrorsLocked(page)
	s.mu.Unlock()
	if !ok {
		return PageResult{Page: page, Errors: errs}
	}
	snap := h.Snapshot()
	return PageResult{Page: page, Count: snap.Count, Errors: errs,
		Mean: snap.Mean, P90: snap.P90, Max: snap.Max}
}

// TotalInteractions sums completed page interactions.
func (s *Stats) TotalInteractions() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total int64
	for _, c := range s.counts {
		total += atomic.LoadInt64(c)
	}
	return total
}
