// Package workload implements the TPC-W remote browser emulator (RBE):
// closed-loop emulated browsers (EBs) that walk the bookstore according
// to the browsing-mix page frequencies, wait a uniformly distributed
// think time of 0.7–7 s (paper time) between interactions, fetch the
// images embedded in each page, and measure the web interaction response
// time (WIRT) at the client side — exactly how the paper's evaluation
// measures Table 3.
package workload

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"time"

	"stagedweb/internal/clock"
	"stagedweb/internal/httpwire"
	"stagedweb/internal/tpcw"
	"stagedweb/internal/webtest"
)

// Config configures the browser fleet.
type Config struct {
	// Addr is the server address ("127.0.0.1:port").
	Addr string
	// EBs is the number of emulated browsers (the paper uses 400).
	EBs int
	// Mix is the page distribution; nil selects the browsing mix.
	Mix *tpcw.Mix
	// Scale compresses think times and reported response times.
	Scale clock.Timescale
	// ThinkMin/ThinkMax bound the think time in paper time; zero values
	// take the TPC-W standard 0.7 s and 7 s.
	ThinkMin, ThinkMax time.Duration
	// ThinkExponential selects the TPC-W specification's think-time
	// distribution: negative-exponential with mean ThinkMean, truncated
	// below at ThinkMin and capped at ten times the mean. The default
	// (false) draws uniformly from [ThinkMin, ThinkMax] — the paper's
	// literal "0.7 to 7 seconds".
	ThinkExponential bool
	// ThinkMean is the exponential distribution's mean (default 7 s).
	ThinkMean time.Duration
	// Customers and Items are the population bounds for generated
	// request parameters.
	Customers, Items int
	// FetchImages controls whether EBs download images referenced by
	// each page (TPC-W includes them in the interaction).
	FetchImages bool
	// MaxImages caps the embedded images fetched per page.
	MaxImages int
	// Seed makes the fleet deterministic.
	Seed int64
}

func (c *Config) fillDefaults() {
	if c.EBs <= 0 {
		c.EBs = 1
	}
	if c.Mix == nil {
		c.Mix = tpcw.NewMix(tpcw.BrowsingMix)
	}
	if c.Scale == 0 {
		c.Scale = clock.RealTime
	}
	if c.ThinkMin <= 0 {
		c.ThinkMin = 700 * time.Millisecond
	}
	if c.ThinkMax <= 0 {
		c.ThinkMax = 7 * time.Second
	}
	if c.ThinkMean <= 0 {
		c.ThinkMean = 7 * time.Second
	}
	if c.Customers <= 0 {
		c.Customers = 1
	}
	if c.Items <= 0 {
		c.Items = 1
	}
	if c.MaxImages <= 0 {
		c.MaxImages = 6
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Generator runs the EB fleet.
type Generator struct {
	cfg   Config
	stats *Stats
	stop  chan struct{}
	wg    sync.WaitGroup
}

// New builds an unstarted generator.
func New(cfg Config) *Generator {
	cfg.fillDefaults()
	return &Generator{cfg: cfg, stats: newStats(), stop: make(chan struct{})}
}

// Stats exposes the client-side measurements.
func (g *Generator) Stats() *Stats { return g.stats }

// Start launches the EB goroutines.
func (g *Generator) Start() {
	g.wg.Add(g.cfg.EBs)
	for i := 0; i < g.cfg.EBs; i++ {
		eb := &browser{
			cfg:   g.cfg,
			stats: g.stats,
			stop:  g.stop,
			rng:   rand.New(rand.NewSource(g.cfg.Seed + int64(i)*7919)),
			cID:   i%g.cfg.Customers + 1,
		}
		go func() {
			defer g.wg.Done()
			eb.run()
		}()
	}
}

// Stop signals every EB and waits for them to finish their in-flight
// interaction.
func (g *Generator) Stop() {
	close(g.stop)
	g.wg.Wait()
}

// browser is one emulated browser with its session state.
type browser struct {
	cfg   Config
	stats *Stats
	stop  chan struct{}
	rng   *rand.Rand

	cID  int // this EB's customer identity
	scID int // current shopping cart, 0 if none
}

func (b *browser) run() {
	for {
		select {
		case <-b.stop:
			return
		default:
		}
		page := b.cfg.Mix.Pick(b.rng)
		b.interact(page)
		b.think()
	}
}

// think sleeps the configured think-time distribution scaled,
// interruptibly.
func (b *browser) think() {
	var d time.Duration
	if b.cfg.ThinkExponential {
		// TPC-W clause 5.3.2.2: negative-exponential think time.
		d = time.Duration(b.rng.ExpFloat64() * float64(b.cfg.ThinkMean))
		if d < b.cfg.ThinkMin {
			d = b.cfg.ThinkMin
		}
		if cap := 10 * b.cfg.ThinkMean; d > cap {
			d = cap
		}
	} else {
		span := b.cfg.ThinkMax - b.cfg.ThinkMin
		d = b.cfg.ThinkMin + time.Duration(b.rng.Int63n(int64(span)+1))
	}
	wall := b.cfg.Scale.Wall(d)
	select {
	case <-b.stop:
	case <-time.After(wall):
	}
}

// interact performs one web interaction: the page plus its embedded
// images, all on one keep-alive connection (as a browser would), measured
// as one WIRT. The connection closes at the end of the interaction so the
// server does not hold resources across the think time.
func (b *browser) interact(page string) {
	url := b.buildURL(page)
	start := time.Now()
	conn, err := net.DialTimeout("tcp", b.cfg.Addr, 10*time.Second)
	if err != nil {
		b.stats.recordError(page)
		return
	}
	defer func() { _ = conn.Close() }()
	br := bufio.NewReader(conn)

	body, status, err := get(conn, br, url)
	if err != nil {
		b.stats.recordError(page)
		return
	}
	if b.cfg.FetchImages {
		for _, img := range extractImages(body, b.cfg.MaxImages) {
			if _, _, err := get(conn, br, img); err != nil {
				b.stats.recordError(img)
				return
			}
		}
	}
	wirt := time.Since(start)
	if status >= 200 && status < 400 {
		b.stats.record(page, wirt)
		b.updateSession(page, body)
	} else {
		b.stats.recordError(page)
	}
}

// get fetches one URL over an established keep-alive connection.
func get(conn net.Conn, br *bufio.Reader, path string) ([]byte, int, error) {
	req := "GET " + path + " HTTP/1.1\r\nHost: tpcw\r\nUser-Agent: tpcw-eb\r\nConnection: keep-alive\r\n\r\n"
	if _, err := conn.Write([]byte(req)); err != nil {
		return nil, 0, err
	}
	resp, err := webtest.ReadResponse(br)
	if err != nil {
		return nil, 0, err
	}
	return resp.Body, resp.Status, nil
}

// searchWords are the terms EBs search for; common title words so
// searches return results.
var searchWords = []string{
	"THE", "SECRET", "LOST", "GOLDEN", "RIVER", "CITY", "HISTORY",
	"SCIENCE", "JOURNEY", "NIGHT", "GUIDE", "WORLD",
}

// buildURL assembles the query parameters each interaction needs,
// maintaining light session coherence (customer identity, cart id).
func (b *browser) buildURL(page string) string {
	q := map[string]string{}
	switch page {
	case tpcw.PageHome:
		q["c_id"] = itoa(b.cID)
	case tpcw.PageProductDetail:
		q["i_id"] = itoa(1 + b.rng.Intn(b.cfg.Items))
	case tpcw.PageNewProducts, tpcw.PageBestSellers:
		q["subject"] = tpcw.Subjects[b.rng.Intn(len(tpcw.Subjects))]
	case tpcw.PageExecuteSearch:
		q["field"] = []string{"title", "author", "subject"}[b.rng.Intn(3)]
		if q["field"] == "subject" {
			q["terms"] = tpcw.Subjects[b.rng.Intn(len(tpcw.Subjects))]
		} else {
			q["terms"] = searchWords[b.rng.Intn(len(searchWords))]
		}
	case tpcw.PageShoppingCart:
		q["i_id"] = itoa(1 + b.rng.Intn(b.cfg.Items))
		q["qty"] = itoa(1 + b.rng.Intn(3))
		if b.scID > 0 {
			q["sc_id"] = itoa(b.scID)
		}
	case tpcw.PageCustomerReg, tpcw.PageBuyRequest:
		if b.scID > 0 {
			q["sc_id"] = itoa(b.scID)
		}
		if page == tpcw.PageBuyRequest {
			q["uname"] = tpcw.Uname(b.cID)
			q["passwd"] = "pw" + itoa(b.cID)
		}
	case tpcw.PageBuyConfirm:
		if b.scID > 0 {
			q["sc_id"] = itoa(b.scID)
		}
		q["c_id"] = itoa(b.cID)
	case tpcw.PageOrderDisplay:
		q["uname"] = tpcw.Uname(b.cID)
		q["passwd"] = "pw" + itoa(b.cID)
	case tpcw.PageAdminRequest, tpcw.PageAdminResponse:
		q["i_id"] = itoa(1 + b.rng.Intn(b.cfg.Items))
		if page == tpcw.PageAdminResponse {
			q["cost"] = fmt.Sprintf("%d.99", 1+b.rng.Intn(99))
		}
	}
	if len(q) == 0 {
		return page
	}
	return page + "?" + httpwire.EncodeQuery(q)
}

// updateSession extracts the shopping cart id from cart-bearing pages and
// clears it after purchase.
func (b *browser) updateSession(page string, body []byte) {
	switch page {
	case tpcw.PageShoppingCart:
		if id := extractInt(body, "sc_id="); id > 0 {
			b.scID = id
		}
	case tpcw.PageBuyConfirm:
		b.scID = 0
	}
}

// extractImages finds image references (src="...") in an HTML body.
func extractImages(body []byte, maxImages int) []string {
	const marker = `src="`
	var out []string
	seen := map[string]bool{}
	s := string(body)
	for len(out) < maxImages {
		i := strings.Index(s, marker)
		if i < 0 {
			break
		}
		s = s[i+len(marker):]
		j := strings.IndexByte(s, '"')
		if j < 0 {
			break
		}
		img := s[:j]
		s = s[j:]
		if img == "" || seen[img] {
			continue
		}
		seen[img] = true
		out = append(out, img)
	}
	return out
}

// extractInt finds the first "<marker><digits>" occurrence in body.
func extractInt(body []byte, marker string) int {
	s := string(body)
	i := strings.Index(s, marker)
	if i < 0 {
		return 0
	}
	s = s[i+len(marker):]
	n := 0
	found := false
	for k := 0; k < len(s) && s[k] >= '0' && s[k] <= '9'; k++ {
		n = n*10 + int(s[k]-'0')
		found = true
	}
	if !found {
		return 0
	}
	return n
}

func itoa(n int) string { return fmt.Sprintf("%d", n) }
