// Package workload implements the TPC-W remote browser emulator (RBE):
// emulated browsers (EBs) that walk the bookstore according to a page
// mix, wait a think time of 0.7–7 s (paper time) between interactions,
// fetch the images embedded in each page, and measure the web
// interaction response time (WIRT) at the client side — exactly how the
// paper's evaluation measures Table 3.
//
// The fleet is dynamic: SetTarget grows or shrinks the closed-loop
// population at run time (step/ramp/spike/wave load profiles), and
// SpawnSession starts self-retiring sessions for open-loop arrival
// processes. Offered-load telemetry (active EBs, interactions begun,
// failures, recent WIRT) is exported ungated for the harness's client.*
// probe series; internal/load packages both into named load profiles.
package workload

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"stagedweb/internal/clock"
	"stagedweb/internal/httpwire"
	"stagedweb/internal/tpcw"
	"stagedweb/internal/webtest"
)

// Config configures the browser fleet.
type Config struct {
	// Addr is the server address ("127.0.0.1:port").
	Addr string
	// EBs is the initial closed-loop population (the paper uses 400).
	// Zero starts an empty fleet — open-loop profiles add sessions via
	// SpawnSession; SetTarget adjusts the population later either way.
	EBs int
	// Mix is the page distribution; nil selects the browsing mix.
	Mix *tpcw.Mix
	// Scale compresses think times and reported response times.
	Scale clock.Timescale
	// Clock paces think times, session lifetimes, and WIRT measurement.
	// Nil means clock.Real; tests inject clock.Manual for deterministic
	// fleets and the harness injects its experiment clock.
	Clock clock.Clock
	// ThinkMin/ThinkMax bound the think time in paper time; zero values
	// take the TPC-W standard 0.7 s and 7 s.
	ThinkMin, ThinkMax time.Duration
	// ThinkExponential selects the TPC-W specification's think-time
	// distribution: negative-exponential with mean ThinkMean, truncated
	// below at ThinkMin and capped at ten times the mean. The default
	// (false) draws uniformly from [ThinkMin, ThinkMax] — the paper's
	// literal "0.7 to 7 seconds".
	ThinkExponential bool
	// ThinkMean is the exponential distribution's mean (default 7 s).
	ThinkMean time.Duration
	// Customers and Items are the population bounds for generated
	// request parameters.
	Customers, Items int
	// FetchImages controls whether EBs download images referenced by
	// each page (TPC-W includes them in the interaction).
	FetchImages bool
	// MaxImages caps the embedded images fetched per page.
	MaxImages int
	// DialTimeout bounds connection establishment, in paper time (it is
	// scaled to wall time like think times, so a compressed run does not
	// wait 1000 paper-seconds on a dead server). Zero takes 10 s.
	DialTimeout time.Duration
	// Seed makes the fleet deterministic.
	Seed int64
}

func (c *Config) fillDefaults() {
	if c.EBs < 0 {
		c.EBs = 0
	}
	if c.Mix == nil {
		c.Mix = tpcw.NewMix(tpcw.BrowsingMix)
	}
	if c.Scale == 0 {
		c.Scale = clock.RealTime
	}
	if c.Clock == nil {
		c.Clock = clock.Real{}
	}
	if c.ThinkMin <= 0 {
		c.ThinkMin = 700 * time.Millisecond
	}
	if c.ThinkMax <= 0 {
		c.ThinkMax = 7 * time.Second
	}
	if c.ThinkMean <= 0 {
		c.ThinkMean = 7 * time.Second
	}
	if c.Customers <= 0 {
		c.Customers = 1
	}
	if c.Items <= 0 {
		c.Items = 1
	}
	if c.MaxImages <= 0 {
		c.MaxImages = 6
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 10 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// telemetry is the ungated offered-load instrumentation shared by every
// EB: unlike Stats it is not gated to the measurement window, because
// the client.* series it feeds are anchored there already (observations
// before the window drop on the series side).
type telemetry struct {
	active  atomic.Int64 // live EBs (fleet + sessions)
	offered atomic.Int64 // interactions begun
	failed  atomic.Int64 // interactions failed
	wirtNS  atomic.Int64 // summed WIRT of completed interactions
	wirtN   atomic.Int64 // completed interactions
}

// Generator runs the EB fleet.
type Generator struct {
	cfg   Config
	stats *Stats
	tele  telemetry
	stop  chan struct{}
	wg    sync.WaitGroup

	mu     sync.Mutex
	fleet  []chan struct{} // per-EB retire channels, in spawn order
	nextID int64
}

// New builds an unstarted generator.
func New(cfg Config) *Generator {
	cfg.fillDefaults()
	return &Generator{cfg: cfg, stats: newStats(), stop: make(chan struct{})}
}

// Stats exposes the client-side measurements.
func (g *Generator) Stats() *Stats { return g.stats }

// Start launches the initial EB fleet.
func (g *Generator) Start() { g.SetTarget(g.cfg.EBs) }

// SetTarget grows or shrinks the closed-loop fleet toward n browsers.
// Growth spawns fresh EBs, each deterministically seeded; shrinkage
// retires the most recently spawned EBs after their in-flight
// interaction. Sessions started by SpawnSession retire themselves and
// do not count against the target.
func (g *Generator) SetTarget(n int) {
	if n < 0 {
		n = 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	for len(g.fleet) < n {
		quit := make(chan struct{})
		g.fleet = append(g.fleet, quit)
		g.launch(quit)
	}
	for len(g.fleet) > n {
		last := len(g.fleet) - 1
		close(g.fleet[last])
		g.fleet = g.fleet[:last]
	}
}

// SpawnSession starts one browser that retires itself after lifetime
// (paper time) — the open-loop arrival primitive: sessions arrive on an
// external process's clock and leave regardless of server speed.
func (g *Generator) SpawnSession(lifetime time.Duration) {
	quit := make(chan struct{})
	go func() {
		g.cfg.Clock.Sleep(g.cfg.Scale.Wall(lifetime))
		close(quit)
	}()
	g.mu.Lock()
	g.launch(quit)
	g.mu.Unlock()
}

// launch starts one EB goroutine. Callers hold g.mu.
func (g *Generator) launch(quit chan struct{}) {
	id := g.nextID
	g.nextID++
	eb := &browser{
		cfg:   g.cfg,
		stats: g.stats,
		tele:  &g.tele,
		stop:  g.stop,
		quit:  quit,
		rng:   rand.New(rand.NewSource(g.cfg.Seed + id*7919)),
		cID:   int(id)%g.cfg.Customers + 1,
	}
	g.wg.Add(1)
	g.tele.active.Add(1)
	go func() {
		defer g.wg.Done()
		defer g.tele.active.Add(-1)
		eb.run()
	}()
}

// Stop signals every EB and waits for them to finish their in-flight
// interaction.
func (g *Generator) Stop() {
	close(g.stop)
	g.wg.Wait()
}

// Active reports the live EB count (closed-loop fleet plus open-loop
// sessions still running).
func (g *Generator) Active() int64 { return g.tele.active.Load() }

// Started reports cumulative interactions begun since Start, ungated by
// the recording window.
func (g *Generator) Started() int64 { return g.tele.offered.Load() }

// Failed reports cumulative failed interactions, ungated.
func (g *Generator) Failed() int64 { return g.tele.failed.Load() }

// OfferedRateGauge returns a stateful gauge reporting interactions
// begun since its previous call — sampled once per paper second it
// reads as offered load in interactions per paper second.
func (g *Generator) OfferedRateGauge() func() float64 {
	var mu sync.Mutex
	var last int64
	return func() float64 {
		mu.Lock()
		defer mu.Unlock()
		cur := g.tele.offered.Load()
		d := cur - last
		last = cur
		return float64(d)
	}
}

// WIRTGauge returns a stateful gauge reporting the mean web interaction
// response time, in paper seconds, of interactions completed since its
// previous call (zero when none completed).
func (g *Generator) WIRTGauge() func() float64 {
	var mu sync.Mutex
	var lastNS, lastN int64
	return func() float64 {
		mu.Lock()
		defer mu.Unlock()
		ns, n := g.tele.wirtNS.Load(), g.tele.wirtN.Load()
		dNS, dN := ns-lastNS, n-lastN
		lastNS, lastN = ns, n
		if dN == 0 {
			return 0
		}
		return g.cfg.Scale.PaperSeconds(time.Duration(dNS / dN))
	}
}

// browser is one emulated browser with its session state.
type browser struct {
	cfg   Config
	stats *Stats
	tele  *telemetry
	stop  chan struct{}
	quit  chan struct{}
	rng   *rand.Rand

	cID  int // this EB's customer identity
	scID int // current shopping cart, 0 if none
}

func (b *browser) run() {
	for {
		select {
		case <-b.stop:
			return
		case <-b.quit:
			return
		default:
		}
		page := b.cfg.Mix.Pick(b.rng)
		b.interact(page)
		b.think()
	}
}

// thinkDuration draws one think time (paper time) from the configured
// distribution.
func (b *browser) thinkDuration() time.Duration {
	if b.cfg.ThinkExponential {
		// TPC-W clause 5.3.2.2: negative-exponential think time,
		// truncated below at ThinkMin and capped at ten times the mean.
		d := time.Duration(b.rng.ExpFloat64() * float64(b.cfg.ThinkMean))
		if d < b.cfg.ThinkMin {
			d = b.cfg.ThinkMin
		}
		if cap := 10 * b.cfg.ThinkMean; d > cap {
			d = cap
		}
		return d
	}
	span := b.cfg.ThinkMax - b.cfg.ThinkMin
	return b.cfg.ThinkMin + time.Duration(b.rng.Int63n(int64(span)+1))
}

// think sleeps the drawn think time scaled, interruptibly.
func (b *browser) think() {
	wall := b.cfg.Scale.Wall(b.thinkDuration())
	select {
	case <-b.stop:
	case <-b.quit:
	case <-b.cfg.Clock.After(wall):
	}
}

// fail records one failed interaction against the page that drove it.
func (b *browser) fail(page string) {
	b.tele.failed.Add(1)
	b.stats.recordError(page)
}

// interact performs one web interaction: the page plus its embedded
// images, all on one keep-alive connection (as a browser would), measured
// as one WIRT. The connection closes at the end of the interaction so the
// server does not hold resources across the think time.
func (b *browser) interact(page string) {
	b.tele.offered.Add(1)
	url := b.buildURL(page)
	start := b.cfg.Clock.Now()
	conn, err := net.DialTimeout("tcp", b.cfg.Addr, b.cfg.Scale.Wall(b.cfg.DialTimeout))
	if err != nil {
		b.fail(page)
		return
	}
	defer func() { _ = conn.Close() }()
	br := bufio.NewReader(conn)

	body, status, err := get(conn, br, url)
	if err != nil {
		b.fail(page)
		return
	}
	if b.cfg.FetchImages {
		for _, img := range extractImages(body, b.cfg.MaxImages) {
			if _, _, err := get(conn, br, img); err != nil {
				// Image failures charge the parent page: the EB asked
				// for one interaction, not a raw image URL.
				b.fail(page)
				return
			}
		}
	}
	wirt := b.cfg.Clock.Since(start)
	if status >= 200 && status < 400 {
		b.tele.wirtNS.Add(int64(wirt))
		b.tele.wirtN.Add(1)
		b.stats.record(page, wirt)
		b.updateSession(page, body)
	} else {
		b.fail(page)
	}
}

// get fetches one URL over an established keep-alive connection.
func get(conn net.Conn, br *bufio.Reader, path string) ([]byte, int, error) {
	req := "GET " + path + " HTTP/1.1\r\nHost: tpcw\r\nUser-Agent: tpcw-eb\r\nConnection: keep-alive\r\n\r\n"
	if _, err := conn.Write([]byte(req)); err != nil {
		return nil, 0, err
	}
	resp, err := webtest.ReadResponse(br)
	if err != nil {
		return nil, 0, err
	}
	return resp.Body, resp.Status, nil
}

// searchWords are the terms EBs search for; common title words so
// searches return results.
var searchWords = []string{
	"THE", "SECRET", "LOST", "GOLDEN", "RIVER", "CITY", "HISTORY",
	"SCIENCE", "JOURNEY", "NIGHT", "GUIDE", "WORLD",
}

// buildURL assembles the query parameters each interaction needs,
// maintaining light session coherence (customer identity, cart id).
func (b *browser) buildURL(page string) string {
	q := map[string]string{}
	switch page {
	case tpcw.PageHome:
		q["c_id"] = itoa(b.cID)
	case tpcw.PageProductDetail:
		q["i_id"] = itoa(1 + b.rng.Intn(b.cfg.Items))
	case tpcw.PageNewProducts, tpcw.PageBestSellers:
		q["subject"] = tpcw.Subjects[b.rng.Intn(len(tpcw.Subjects))]
	case tpcw.PageExecuteSearch:
		q["field"] = []string{"title", "author", "subject"}[b.rng.Intn(3)]
		if q["field"] == "subject" {
			q["terms"] = tpcw.Subjects[b.rng.Intn(len(tpcw.Subjects))]
		} else {
			q["terms"] = searchWords[b.rng.Intn(len(searchWords))]
		}
	case tpcw.PageShoppingCart:
		q["i_id"] = itoa(1 + b.rng.Intn(b.cfg.Items))
		q["qty"] = itoa(1 + b.rng.Intn(3))
		// The customer id rides along on every cart-flow page so a sharded
		// cluster can pin the whole checkout (cart rows included) to the
		// customer's shard — carts are per-shard local state.
		q["c_id"] = itoa(b.cID)
		if b.scID > 0 {
			q["sc_id"] = itoa(b.scID)
		}
	case tpcw.PageCustomerReg, tpcw.PageBuyRequest:
		q["c_id"] = itoa(b.cID)
		if b.scID > 0 {
			q["sc_id"] = itoa(b.scID)
		}
		if page == tpcw.PageBuyRequest {
			q["uname"] = tpcw.Uname(b.cID)
			q["passwd"] = "pw" + itoa(b.cID)
		}
	case tpcw.PageBuyConfirm:
		if b.scID > 0 {
			q["sc_id"] = itoa(b.scID)
		}
		q["c_id"] = itoa(b.cID)
	case tpcw.PageOrderDisplay:
		q["uname"] = tpcw.Uname(b.cID)
		q["passwd"] = "pw" + itoa(b.cID)
	case tpcw.PageAdminRequest, tpcw.PageAdminResponse:
		q["i_id"] = itoa(1 + b.rng.Intn(b.cfg.Items))
		if page == tpcw.PageAdminResponse {
			q["cost"] = fmt.Sprintf("%d.99", 1+b.rng.Intn(99))
		}
	}
	if len(q) == 0 {
		return page
	}
	return page + "?" + httpwire.EncodeQuery(q)
}

// updateSession extracts the shopping cart id from cart-bearing pages and
// clears it after purchase.
func (b *browser) updateSession(page string, body []byte) {
	switch page {
	case tpcw.PageShoppingCart:
		if id := extractInt(body, "sc_id="); id > 0 {
			b.scID = id
		}
	case tpcw.PageBuyConfirm:
		b.scID = 0
	}
}

// extractImages finds image references (src="...") in an HTML body.
func extractImages(body []byte, maxImages int) []string {
	const marker = `src="`
	var out []string
	seen := map[string]bool{}
	s := string(body)
	for len(out) < maxImages {
		i := strings.Index(s, marker)
		if i < 0 {
			break
		}
		s = s[i+len(marker):]
		j := strings.IndexByte(s, '"')
		if j < 0 {
			break
		}
		img := s[:j]
		s = s[j:]
		if img == "" || seen[img] {
			continue
		}
		seen[img] = true
		out = append(out, img)
	}
	return out
}

// extractInt finds the first "<marker><digits>" occurrence in body.
func extractInt(body []byte, marker string) int {
	s := string(body)
	i := strings.Index(s, marker)
	if i < 0 {
		return 0
	}
	s = s[i+len(marker):]
	n := 0
	found := false
	for k := 0; k < len(s) && s[k] >= '0' && s[k] <= '9'; k++ {
		n = n*10 + int(s[k]-'0')
		found = true
	}
	if !found {
		return 0
	}
	return n
}

func itoa(n int) string { return fmt.Sprintf("%d", n) }
