package server_test

import (
	"net"
	"testing"
	"time"

	"stagedweb/internal/server"
)

func TestTransportConnParseAndClose(t *testing.T) {
	tr := server.NewTransport(server.TransportConfig{})
	client, srv := net.Pipe()
	defer client.Close()
	c := tr.NewConn(srv)

	go func() {
		_, _ = client.Write([]byte("GET /page?q=1 HTTP/1.1\r\nHost: x\r\n\r\n"))
	}()
	line, err := c.ReadRequestLine()
	if err != nil {
		t.Fatal(err)
	}
	if line.Path != "/page" || line.RawQuery != "q=1" {
		t.Fatalf("line = %+v", line)
	}
	if c.Acquired.IsZero() {
		t.Fatal("Acquired not stamped")
	}
	req, err := c.FinishRequest(line)
	if err != nil {
		t.Fatal(err)
	}
	if req.Header.Get("Host") != "x" || req.Query["q"] != "1" {
		t.Fatalf("req = %+v", req)
	}

	// Close returns the buffers to the pools and is idempotent.
	c.Close()
	c.Close()
}

func TestTransportAwaitReadableTimesOut(t *testing.T) {
	tr := server.NewTransport(server.TransportConfig{IdleTimeout: 10 * time.Millisecond})
	client, srv := net.Pipe()
	defer client.Close()
	c := tr.NewConn(srv)
	defer c.Close()
	if err := c.AwaitReadable(); err == nil {
		t.Fatal("AwaitReadable returned without data before the idle timeout")
	}
}

func TestTransportAwaitReadableSeesData(t *testing.T) {
	tr := server.NewTransport(server.TransportConfig{IdleTimeout: 5 * time.Second})
	client, srv := net.Pipe()
	defer client.Close()
	c := tr.NewConn(srv)
	defer c.Close()
	go func() {
		time.Sleep(5 * time.Millisecond)
		_, _ = client.Write([]byte("G"))
	}()
	if err := c.AwaitReadable(); err != nil {
		t.Fatalf("AwaitReadable: %v", err)
	}
}
