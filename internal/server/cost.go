package server

import "time"

// WorkCost models the CPU time the paper's CherryPy/Django stack spends
// rendering templates and serving static files, in paper time.
//
// The reproduction's Go template engine renders in tens of microseconds —
// three orders of magnitude faster than CPython — which would erase the
// phenomenon under study: in the paper, template rendering is a
// significant share of a worker's time, and the baseline performs it
// while holding a database connection. Charging a calibrated paper-time
// cost on whichever worker renders (the conn-holding worker in the
// baseline, the rendering pool in the staged server) restores the
// resource-waste structure the DSN'09 design reclaims.
//
// The zero value charges nothing (unit tests run at full speed).
type WorkCost struct {
	// RenderBase is charged per template render.
	RenderBase time.Duration
	// RenderPerKB is charged per KiB of rendered output.
	RenderPerKB time.Duration
	// StaticBase is charged per static file served.
	StaticBase time.Duration
	// StaticPerKB is charged per KiB of static payload.
	StaticPerKB time.Duration
}

// DefaultWorkCost is calibrated to CPython-era costs: a Django template
// render of a ~10 KiB TPC-W page (a 50-row table) lands around 80–100 ms
// and a small static file costs a few milliseconds of worker time.
func DefaultWorkCost() WorkCost {
	return WorkCost{
		RenderBase:  30 * time.Millisecond,
		RenderPerKB: 5 * time.Millisecond,
		StaticBase:  2 * time.Millisecond,
		StaticPerKB: 500 * time.Microsecond,
	}
}

// Render reports the paper-time cost of rendering n output bytes.
func (c WorkCost) Render(n int) time.Duration {
	return c.RenderBase + time.Duration(n/1024)*c.RenderPerKB
}

// Static reports the paper-time cost of serving an n-byte static file.
func (c WorkCost) Static(n int) time.Duration {
	return c.StaticBase + time.Duration(n/1024)*c.StaticPerKB
}
