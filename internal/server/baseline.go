package server

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"stagedweb/internal/clock"
	"stagedweb/internal/httpwire"
	"stagedweb/internal/metrics"
	"stagedweb/internal/pool"
	"stagedweb/internal/sqldb"
)

// BaselineConfig configures the thread-per-request server.
type BaselineConfig struct {
	// App is the application to serve.
	App App
	// DB is the database. Every worker opens and owns one connection for
	// its lifetime — the convention the paper's Section 1 describes. The
	// worker count therefore equals the connection budget.
	DB *sqldb.DB
	// Workers is the size of the single thread pool (and the number of
	// database connections held).
	Workers int
	// QueueCap bounds the accept queue. Defaults to 4096.
	QueueCap int
	// IdleTimeout bounds how long a worker waits for the next request on
	// a keep-alive connection (wall time), like CherryPy's socket
	// timeout. Defaults to 10 s.
	IdleTimeout time.Duration
	// Cost models render/static worker time (paper time); zero charges
	// nothing.
	Cost WorkCost
	// Clock and Scale drive the cost model's sleeps.
	Clock clock.Clock
	Scale clock.Timescale
	// OnComplete, when set, receives a CompletionEvent per request.
	OnComplete func(CompletionEvent)
}

// Baseline is the unmodified thread-per-request server (Figure 4 of the
// paper): a single listener feeding a single synchronized queue drained
// by a single pool of workers, each of which parses, queries, renders,
// and writes an entire request while holding its database connection.
type Baseline struct {
	cfg   BaselineConfig
	queue *pool.Queue[net.Conn]
	pool  *pool.Pool[net.Conn]

	mu       sync.Mutex
	listener net.Listener
	stopped  bool
	conns    []*sqldb.Conn

	accepted metrics.Counter
	served   metrics.Counter
}

// NewBaseline validates the configuration and builds the server.
func NewBaseline(cfg BaselineConfig) (*Baseline, error) {
	if cfg.App == nil {
		return nil, errors.New("server: nil App")
	}
	if cfg.DB == nil {
		return nil, errors.New("server: nil DB")
	}
	if cfg.Workers <= 0 {
		return nil, fmt.Errorf("server: invalid worker count %d", cfg.Workers)
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 4096
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = 10 * time.Second
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if cfg.Scale == 0 {
		cfg.Scale = clock.RealTime
	}
	s := &Baseline{cfg: cfg}
	s.queue = pool.NewQueue[net.Conn](cfg.QueueCap)

	// Each worker owns a dedicated database connection for its lifetime.
	workerConns := pool.NewQueue[*sqldb.Conn](cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		c := cfg.DB.Connect()
		s.conns = append(s.conns, c)
		if err := workerConns.Put(c); err != nil {
			return nil, fmt.Errorf("server: seeding worker connections: %w", err)
		}
	}
	s.pool = pool.New("baseline", cfg.Workers, s.queue, func(conn net.Conn) {
		// Bind a connection to this goroutine for the duration of the
		// request; workers outnumber neither conns nor vice versa, so
		// this never blocks.
		dbc, _ := workerConns.Get()
		s.serveConn(conn, dbc)
		_, _ = workerConns.TryPut(dbc)
	})
	return s, nil
}

// Serve accepts connections on l until Stop. It blocks; run it in a
// goroutine. The error is nil after a clean Stop.
func (s *Baseline) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		_ = l.Close()
		return nil
	}
	s.listener = l
	s.pool.Start()
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.accepted.Inc()
		if err := s.queue.Put(conn); err != nil {
			_ = conn.Close()
			return nil // queue closed: shutting down
		}
	}
}

// Stop closes the listener and drains the worker pool. It is safe to
// call before, during, or after Serve.
func (s *Baseline) Stop() {
	s.mu.Lock()
	s.stopped = true
	l := s.listener
	s.mu.Unlock()
	if l != nil {
		_ = l.Close()
	}
	s.pool.Stop()
	for _, c := range s.conns {
		c.Close()
	}
}

// charge sleeps a paper-time work cost through the timescale.
func (s *Baseline) charge(paperCost time.Duration) {
	if paperCost > 0 {
		s.cfg.Clock.Sleep(s.cfg.Scale.Wall(paperCost))
	}
}

// QueueLen reports the single request queue's length — the series plotted
// in Figure 7.
func (s *Baseline) QueueLen() int { return s.queue.Len() }

// Served reports the number of completed requests.
func (s *Baseline) Served() int64 { return s.served.Value() }

// serveConn handles every request on one connection (keep-alive loop),
// all on the same worker with the same database connection.
func (s *Baseline) serveConn(conn net.Conn, dbc *sqldb.Conn) {
	defer func() { _ = conn.Close() }()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	for {
		start := time.Now()
		_ = conn.SetReadDeadline(start.Add(s.cfg.IdleTimeout))
		req, err := httpwire.ReadRequest(br)
		if err != nil {
			// EOF/timeout/reset between requests is the normal end of a
			// keep-alive session; anything mid-request gets a 400.
			return
		}
		_ = conn.SetReadDeadline(time.Time{})
		keep := req.KeepAlive()
		ev := CompletionEvent{Page: req.Line.Path, Done: start}

		if req.Line.IsStatic() {
			body, ct, ok := s.cfg.App.Static(req.Line.Path)
			if !ok {
				s.finish(bw, conn, ev, httpwire.StatusNotFound, nil, "text/plain; charset=utf-8", false, start, ClassStatic)
				return
			}
			// The worker serves the file itself — holding its database
			// connection idle the whole time.
			s.charge(s.cfg.Cost.Static(len(body)))
			if !s.finish(bw, conn, ev, httpwire.StatusOK, body, ct, keep, start, ClassStatic) {
				return
			}
			if !keep {
				return
			}
			continue
		}

		handler, ok := s.cfg.App.Handler(req.Line.Path)
		if !ok {
			s.finish(bw, conn, ev, httpwire.StatusNotFound, []byte("not found"), "text/plain; charset=utf-8", false, start, ClassQuick)
			return
		}
		res, err := handler(&Request{Path: req.Line.Path, Query: req.Query, Header: req.Header, DB: dbc})
		if err != nil {
			s.finish(bw, conn, ev, httpwire.StatusInternalServerError, []byte("internal error"), "text/plain; charset=utf-8", false, start, ClassQuick)
			return
		}
		// Thread-per-request: the same worker renders the template while
		// still holding its database connection — the inefficiency the
		// paper removes.
		body, ct, status, err := RenderResult(s.cfg.App, res)
		if err != nil {
			s.finish(bw, conn, ev, httpwire.StatusInternalServerError, []byte("render error"), "text/plain; charset=utf-8", false, start, ClassQuick)
			return
		}
		if res.Deferred() {
			s.charge(s.cfg.Cost.Render(len(body)))
		}
		resp := BuildResponse(res, body, ct, status, keep)
		if err := resp.Write(bw); err != nil {
			return
		}
		ev.Status = status
		ev.ServerTime = time.Since(start)
		ev.Done = time.Now()
		ev.Class = ClassQuick // harness reclassifies dynamics by page key
		s.served.Inc()
		if s.cfg.OnComplete != nil {
			s.cfg.OnComplete(ev)
		}
		if !keep {
			return
		}
	}
}

// finish writes a simple response and fires the completion event. It
// reports false when the connection should close.
func (s *Baseline) finish(bw *bufio.Writer, conn net.Conn, ev CompletionEvent,
	status int, body []byte, ct string, keep bool, start time.Time, class Class) bool {
	resp := &httpwire.Response{Status: status, ContentType: ct, Body: body, KeepAlive: keep}
	if err := resp.Write(bw); err != nil {
		return false
	}
	ev.Status = status
	ev.Class = class
	ev.ServerTime = time.Since(start)
	ev.Done = time.Now()
	s.served.Inc()
	if s.cfg.OnComplete != nil {
		s.cfg.OnComplete(ev)
	}
	_ = conn // connection closing is the caller's decision
	return true
}
