package server

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"stagedweb/internal/clock"
	"stagedweb/internal/dbtier"
	"stagedweb/internal/httpwire"
	"stagedweb/internal/sqldb"
	"stagedweb/internal/stage"
)

// BaselineConfig configures the thread-per-request server.
type BaselineConfig struct {
	// App is the application to serve.
	App App
	// DB is the primary database. The server fronts it with a dbtier
	// (Replicas backends, DBConns pooled connections per backend) and
	// workers execute their statements through it — with the defaults
	// (one backend, one connection per worker) this is exactly the
	// paper's convention of a worker owning a connection.
	DB *sqldb.DB
	// Workers is the size of the single thread pool (and the default
	// database connection budget).
	Workers int
	// Replicas is the total number of database backends (primary
	// included); values below 1 mean 1 — no replication.
	Replicas int
	// DBConns is the connection pool size per backend; it defaults to
	// Workers, so acquisition only ever waits when configured scarcer
	// than the worker pool.
	DBConns int
	// MVCC switches the primary's storage engine to snapshot reads plus
	// optimistic first-writer-wins writes. False keeps per-table
	// reader-writer locks, the paper's concurrency model.
	MVCC bool
	// ReplAsync ships the replication log to replicas asynchronously
	// instead of making writers wait for every replica to apply.
	ReplAsync bool
	// QueueCap bounds the accept queue. Defaults to 4096.
	QueueCap int
	// IdleTimeout bounds how long a worker waits for the next request on
	// a keep-alive connection (wall time), like CherryPy's socket
	// timeout. Defaults to 10 s.
	IdleTimeout time.Duration
	// Cost models render/static worker time (paper time); zero charges
	// nothing.
	Cost WorkCost
	// Clock and Scale drive the cost model's sleeps.
	Clock clock.Clock
	Scale clock.Timescale
	// OnComplete, when set, receives a CompletionEvent per request.
	OnComplete func(CompletionEvent)
}

// Baseline is the unmodified thread-per-request server (Figure 4 of the
// paper), expressed as a one-stage graph: a single listener feeding a
// single bounded queue drained by a single pool of workers, each of
// which parses, queries, renders, and writes an entire request while
// holding its database connection.
type Baseline struct {
	cfg     BaselineConfig
	tr      *Transport
	graph   *stage.Graph
	workers *stage.Stage[*Conn]
	tier    *dbtier.Tier

	mu       sync.Mutex
	listener net.Listener
	stopped  bool
	stopOnce sync.Once
}

// NewBaseline validates the configuration and builds the server.
func NewBaseline(cfg BaselineConfig) (*Baseline, error) {
	if cfg.App == nil {
		return nil, errors.New("server: nil App")
	}
	if cfg.DB == nil {
		return nil, errors.New("server: nil DB")
	}
	if cfg.Workers <= 0 {
		return nil, fmt.Errorf("server: invalid worker count %d", cfg.Workers)
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 4096
	}
	s := &Baseline{cfg: cfg}
	s.tr = NewTransport(TransportConfig{
		IdleTimeout: cfg.IdleTimeout,
		Clock:       cfg.Clock,
		Scale:       cfg.Scale,
		Cost:        cfg.Cost,
		OnComplete:  cfg.OnComplete,
	})

	// The database tier fronts the primary: by default one backend with
	// one pooled connection per worker, so a worker's statements never
	// wait — the paper's one-connection-per-thread convention.
	if cfg.DBConns <= 0 {
		cfg.DBConns = cfg.Workers
	}
	if cfg.MVCC {
		cfg.DB.SetMVCC(true)
	}
	s.tier = dbtier.New(cfg.DB, dbtier.Options{
		Replicas: cfg.Replicas,
		Conns:    cfg.DBConns,
		Clock:    cfg.Clock,
		Scale:    cfg.Scale,
		Async:    cfg.ReplAsync,
	})
	dbc := s.tier.Conn()
	s.workers = stage.New(stage.Config[*Conn]{
		Name:     "baseline",
		Workers:  cfg.Workers,
		QueueCap: cfg.QueueCap,
		Work:     func(c *Conn) { s.serveConn(c, dbc) },
	})
	s.graph = stage.NewGraph().Add(s.workers)
	return s, nil
}

// Serve accepts connections on l until Stop. It blocks; run it in a
// goroutine. The error is nil after a clean Stop.
func (s *Baseline) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		_ = l.Close()
		return nil
	}
	s.listener = l
	s.graph.Start()
	s.mu.Unlock()
	return s.tr.Accept(l, func(c *Conn) error { return s.workers.Submit(c) })
}

// Stop closes the listener and drains the worker pool. It is safe to
// call before, during, or after Serve, and is idempotent.
func (s *Baseline) Stop() {
	s.mu.Lock()
	s.stopped = true
	l := s.listener
	s.mu.Unlock()
	if l != nil {
		_ = l.Close()
	}
	s.stopOnce.Do(func() {
		s.graph.Stop()
		s.tier.Close()
	})
}

// Tier exposes the database tier for the db.* probes.
func (s *Baseline) Tier() *dbtier.Tier { return s.tier }

// QueueLen reports the single request queue's length — the series plotted
// in Figure 7.
func (s *Baseline) QueueLen() int { return s.workers.Depth() }

// Served reports the number of completed requests.
func (s *Baseline) Served() int64 { return s.tr.Served() }

// Graph exposes the (one-stage) graph for stats snapshots.
func (s *Baseline) Graph() *stage.Graph { return s.graph }

// serveConn handles every request on one connection (keep-alive loop),
// all on the same worker with the same database connection.
func (s *Baseline) serveConn(c *Conn, dbc DBConn) {
	defer c.Close()
	for {
		req, err := c.ReadRequest()
		if err != nil {
			// EOF/timeout/reset between requests is the normal end of a
			// keep-alive session.
			return
		}
		keep := req.KeepAlive()

		if req.Line.IsStatic() {
			// The worker serves the file itself — holding its database
			// connection idle the whole time.
			if !s.tr.ServeStatic(c, s.cfg.App, req.Line.Path, keep) {
				return
			}
			continue
		}

		handler, ok := s.cfg.App.Handler(req.Line.Path)
		if !ok {
			if !s.tr.DirectReply(c, req.Line.Path, ClassQuick, httpwire.StatusNotFound, []byte("not found"), plainText, false) {
				return
			}
			continue
		}
		res, err := handler(&Request{Path: req.Line.Path, Query: req.Query, Header: req.Header, DB: dbc})
		if err != nil {
			if !s.tr.DirectReply(c, req.Line.Path, ClassQuick, httpwire.StatusInternalServerError, []byte("internal error"), plainText, false) {
				return
			}
			continue
		}
		// Thread-per-request: the same worker renders the template while
		// still holding its database connection — the inefficiency the
		// paper removes. The class is ClassQuick throughout; the harness
		// reclassifies dynamics by page key.
		if !s.tr.FinishDynamic(c, s.cfg.App, req.Line.Path, ClassQuick, res, keep) {
			return
		}
	}
}
