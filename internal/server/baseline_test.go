package server_test

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"stagedweb/internal/server"
	"stagedweb/internal/sqldb"
	"stagedweb/internal/webtest"
)

// baselineEnv is a running baseline server plus its database.
type baselineEnv struct {
	srv  *server.Baseline
	addr string
	db   *sqldb.DB
}

// startBaseline boots a baseline server around app and returns its
// address.
func startBaseline(t *testing.T, app *webtest.App, workers int, onComplete func(server.CompletionEvent)) string {
	return startBaselineEnv(t, app, workers, onComplete).addr
}

// startBaselineEnv boots a baseline server and returns the full
// environment for tests that inspect server or database state.
func startBaselineEnv(t *testing.T, app *webtest.App, workers int, onComplete func(server.CompletionEvent)) *baselineEnv {
	t.Helper()
	db := sqldb.Open(sqldb.Options{Cost: sqldb.ZeroCostModel()})
	db.MustCreateTable(sqldb.Schema{
		Table:      "kv",
		Columns:    []sqldb.Column{{Name: "id", Type: sqldb.Int}, {Name: "v", Type: sqldb.String}},
		PrimaryKey: "id",
	})
	seed := db.Connect()
	if _, err := seed.Exec("INSERT INTO kv (id, v) VALUES (1, 'hello-from-db')"); err != nil {
		t.Fatal(err)
	}
	seed.Close()

	s, err := server.NewBaseline(server.BaselineConfig{
		App:        app,
		DB:         db,
		Workers:    workers,
		OnComplete: onComplete,
	})
	if err != nil {
		t.Fatal(err)
	}
	l, addr, err := webtest.Listen()
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(l) }()
	t.Cleanup(func() {
		s.Stop()
		if err := <-serveErr; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return &baselineEnv{srv: s, addr: addr, db: db}
}

func testApp() *webtest.App {
	app := webtest.NewApp()
	app.AddTemplate("page.html", "<html><body>{{ msg }}</body></html>")
	app.AddStatic("/img/flowers.gif", []byte("GIF89a-fake-image-bytes"), "image/gif")
	app.AddPage("/hello", func(r *server.Request) (*server.Result, error) {
		rs, err := r.DB.Query("SELECT v FROM kv WHERE id = ?", 1)
		if err != nil {
			return nil, err
		}
		return &server.Result{Template: "page.html", Data: map[string]any{"msg": rs.Str(0, "v")}}, nil
	})
	app.AddPage("/prerendered", func(r *server.Request) (*server.Result, error) {
		return &server.Result{Body: "<html>already rendered</html>"}, nil
	})
	app.AddPage("/boom", func(r *server.Request) (*server.Result, error) {
		return nil, fmt.Errorf("handler exploded")
	})
	app.AddPage("/redirect", func(r *server.Request) (*server.Result, error) {
		return &server.Result{Redirect: "/hello"}, nil
	})
	app.AddPage("/echo", func(r *server.Request) (*server.Result, error) {
		return &server.Result{Body: "q=" + r.Query["q"]}, nil
	})
	return app
}

func TestBaselineDynamicPage(t *testing.T) {
	addr := startBaseline(t, testApp(), 4, nil)
	resp, err := webtest.Get(addr, "/hello")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 {
		t.Fatalf("status = %d", resp.Status)
	}
	if want := "<html><body>hello-from-db</body></html>"; string(resp.Body) != want {
		t.Fatalf("body = %q, want %q", resp.Body, want)
	}
}

func TestBaselineStaticFile(t *testing.T) {
	addr := startBaseline(t, testApp(), 4, nil)
	resp, err := webtest.Get(addr, "/img/flowers.gif")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 || resp.Header.Get("Content-Type") != "image/gif" {
		t.Fatalf("status=%d ct=%q", resp.Status, resp.Header.Get("Content-Type"))
	}
	if !strings.HasPrefix(string(resp.Body), "GIF89a") {
		t.Fatalf("body = %q", resp.Body)
	}
}

func TestBaselineNotFound(t *testing.T) {
	addr := startBaseline(t, testApp(), 4, nil)
	for _, path := range []string{"/nosuch", "/img/nosuch.gif"} {
		resp, err := webtest.Get(addr, path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Status != 404 {
			t.Fatalf("GET %s status = %d, want 404", path, resp.Status)
		}
	}
}

func TestBaselineHandlerError(t *testing.T) {
	addr := startBaseline(t, testApp(), 4, nil)
	resp, err := webtest.Get(addr, "/boom")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 500 {
		t.Fatalf("status = %d, want 500", resp.Status)
	}
}

func TestBaselineRedirect(t *testing.T) {
	addr := startBaseline(t, testApp(), 4, nil)
	resp, err := webtest.Get(addr, "/redirect")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 302 || resp.Header.Get("Location") != "/hello" {
		t.Fatalf("status=%d location=%q", resp.Status, resp.Header.Get("Location"))
	}
}

func TestBaselineQueryParams(t *testing.T) {
	addr := startBaseline(t, testApp(), 4, nil)
	resp, err := webtest.Get(addr, "/echo?q=forty+two")
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "q=forty two" {
		t.Fatalf("body = %q", resp.Body)
	}
}

func TestBaselineKeepAlive(t *testing.T) {
	addr := startBaseline(t, testApp(), 4, nil)
	c, err := webtest.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 3; i++ {
		resp, err := c.Do("/prerendered", true)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if resp.Status != 200 {
			t.Fatalf("request %d: status %d", i, resp.Status)
		}
	}
}

func TestBaselineContentLengthExact(t *testing.T) {
	addr := startBaseline(t, testApp(), 4, nil)
	resp, err := webtest.Get(addr, "/hello")
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get("Content-Length"); got != fmt.Sprint(len(resp.Body)) {
		t.Fatalf("Content-Length %s != body %d", got, len(resp.Body))
	}
}

func TestBaselineCompletionEvents(t *testing.T) {
	var events sync.Map
	var n atomic.Int64
	addr := startBaseline(t, testApp(), 4, func(ev server.CompletionEvent) {
		events.Store(n.Add(1), ev)
	})
	if _, err := webtest.Get(addr, "/hello"); err != nil {
		t.Fatal(err)
	}
	if _, err := webtest.Get(addr, "/img/flowers.gif"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for n.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("completion events = %d, want 2", n.Load())
		}
		time.Sleep(time.Millisecond)
	}
	sawStatic := false
	events.Range(func(_, v any) bool {
		ev := v.(server.CompletionEvent)
		if ev.Class == server.ClassStatic && ev.Page == "/img/flowers.gif" {
			sawStatic = true
		}
		return true
	})
	if !sawStatic {
		t.Fatal("no static completion event")
	}
}

func TestBaselineConcurrentClients(t *testing.T) {
	addr := startBaseline(t, testApp(), 8, nil)
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := webtest.Get(addr, "/hello")
			if err != nil {
				errs <- err
				return
			}
			if resp.Status != 200 {
				errs <- fmt.Errorf("status %d", resp.Status)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestBaselineConfigValidation(t *testing.T) {
	db := sqldb.Open(sqldb.Options{Cost: sqldb.ZeroCostModel()})
	app := testApp()
	for name, cfg := range map[string]server.BaselineConfig{
		"nil app":      {DB: db, Workers: 1},
		"nil db":       {App: app, Workers: 1},
		"zero workers": {App: app, DB: db},
	} {
		if _, err := server.NewBaseline(cfg); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

// TestBaselineGracefulShutdown stops the server with requests in flight
// and asserts — via the stage graph's stats and the database's open-
// connection gauge — that the queue drained, no workers stayed busy, and
// every database connection was released.
func TestBaselineGracefulShutdown(t *testing.T) {
	release := make(chan struct{})
	app := testApp()
	app.AddPage("/blocked", func(r *server.Request) (*server.Result, error) {
		<-release
		return &server.Result{Body: "<html>late</html>"}, nil
	})
	env := startBaselineEnv(t, app, 3, nil)

	const inFlight = 6 // 3 occupy workers, 3 wait in the accept queue
	results := make(chan error, inFlight)
	for i := 0; i < inFlight; i++ {
		go func() {
			resp, err := webtest.Get(env.addr, "/blocked")
			if err == nil && resp.Status != 200 {
				err = fmt.Errorf("status %d", resp.Status)
			}
			results <- err
		}()
	}
	if !webtest.WaitUntil(5*time.Second, func() bool {
		st := env.srv.Graph().Stats()[0]
		return st.Busy == 3 && st.Depth >= 1
	}) {
		t.Fatal("worker pool never saturated")
	}

	// Release the handlers while Stop is draining.
	go func() {
		time.Sleep(20 * time.Millisecond)
		close(release)
	}()
	env.srv.Stop()

	for i := 0; i < inFlight; i++ {
		if err := <-results; err != nil {
			t.Errorf("in-flight request dropped during shutdown: %v", err)
		}
	}
	for _, st := range env.srv.Graph().Stats() {
		if !st.Closed || st.Busy != 0 || st.Depth != 0 {
			t.Errorf("stage %s not drained: %+v", st.Name, st)
		}
	}
	if n := env.db.OpenConns(); n != 0 {
		t.Errorf("database connections leaked: %d still open", n)
	}
	if got := env.srv.Served(); got < inFlight {
		t.Errorf("Served = %d, want >= %d", got, inFlight)
	}
	// Stop is idempotent.
	env.srv.Stop()
}
