// Package server defines the web-application contract shared by both
// server variants and implements the baseline thread-per-request server
// the paper compares against.
//
// The application model mirrors CherryPy+Django as the paper describes
// it: a URL maps to a handler function; the handler performs database
// queries using the connection owned by its worker thread and returns
// either
//
//   - a pre-rendered page (the conventional style,
//     get_template(name).render(data) — Figure 2 of the paper), or
//   - an unrendered template name plus the data to render it with (the
//     paper's one-line modification, "return (tmpl.html, data)").
//
// The baseline server renders templates on the same worker either way;
// the staged server (package core) ships deferred results to a dedicated
// rendering pool and, per Section 3.2, still handles pre-rendered strings
// for backward compatibility.
package server

import (
	"fmt"
	"time"

	"stagedweb/internal/httpwire"
	"stagedweb/internal/sqldb"
	"stagedweb/internal/template"
)

// DBConn is the connection-shaped database surface handlers program
// against: exactly the Query/Exec methods of a *sqldb.Conn. A direct
// connection satisfies it, and so does a dbtier connection that routes
// reads across replicas — handlers cannot tell the difference.
type DBConn interface {
	// Query executes a SELECT and returns the materialized result.
	Query(sql string, args ...any) (*sqldb.ResultSet, error)
	// Exec executes an INSERT, UPDATE, or DELETE.
	Exec(sql string, args ...any) (sqldb.ExecResult, error)
}

// Request is the application-visible request.
type Request struct {
	// Path is the request path, e.g. "/best_sellers".
	Path string
	// Query holds the parsed query string and form fields.
	Query map[string]string
	// Header holds the parsed request headers.
	Header httpwire.Header
	// DB is the database connection owned by the worker executing the
	// handler. Handlers must not retain it past their return.
	DB DBConn
}

// Result is what a handler returns.
type Result struct {
	// Status defaults to 200.
	Status int
	// ContentType defaults to text/html.
	ContentType string

	// Body, when non-empty, is a pre-rendered response (conventional
	// style). Template/Data are ignored.
	Body string

	// Template names an unrendered template; Data is its context (the
	// paper's deferred style).
	Template string
	Data     map[string]any

	// Redirect, when set, sends a 302 with this Location.
	Redirect string
}

// Deferred reports whether the result requires template rendering.
func (r *Result) Deferred() bool { return r.Body == "" && r.Redirect == "" && r.Template != "" }

// HandlerFunc computes a dynamic page.
type HandlerFunc func(*Request) (*Result, error)

// App is a template-based web application servable by either variant.
type App interface {
	// Handler resolves a dynamic path. ok is false for unknown pages.
	Handler(path string) (h HandlerFunc, ok bool)
	// Static resolves a static asset.
	Static(path string) (body []byte, contentType string, ok bool)
	// Templates is the application's template set.
	Templates() *template.Set
}

// Class labels a completed request for the per-class throughput figures.
type Class int

const (
	// ClassStatic is a static-file request.
	ClassStatic Class = iota + 1
	// ClassQuick is a dynamic request on a quick page.
	ClassQuick
	// ClassLengthy is a dynamic request on a lengthy page.
	ClassLengthy
)

func (c Class) String() string {
	switch c {
	case ClassStatic:
		return "static"
	case ClassQuick:
		return "quick"
	case ClassLengthy:
		return "lengthy"
	default:
		return "unknown"
	}
}

// CompletionEvent reports one finished request, fired after the response
// bytes are written. The harness aggregates these into Figures 9 and 10
// and Table 4.
type CompletionEvent struct {
	// Page is the page key (request path) or the asset path for statics.
	Page string
	// Class is the request's class at completion time.
	Class Class
	// Status is the HTTP status sent.
	Status int
	// Done is the completion time as read from the transport's injected
	// clock (wall time under clock.Real, manual time under clock.Manual).
	Done time.Time
	// ServerTime is the clock duration from request acquisition to
	// response written (server-side view; the client measures WIRT).
	ServerTime time.Duration
}

// RenderResult materializes a Result into a wire response body, rendering
// the template if the result is deferred. Both servers share it; they
// differ only in *which worker* calls it.
func RenderResult(app App, res *Result) (body []byte, contentType string, status int, err error) {
	status = res.Status
	if status == 0 {
		status = httpwire.StatusOK
	}
	contentType = res.ContentType
	if contentType == "" {
		contentType = "text/html; charset=utf-8"
	}
	switch {
	case res.Redirect != "":
		if res.Status == 0 {
			status = httpwire.StatusFound
		}
		return nil, contentType, status, nil
	case res.Body != "":
		return []byte(res.Body), contentType, status, nil
	case res.Template != "":
		out, rerr := app.Templates().Render(res.Template, res.Data)
		if rerr != nil {
			return nil, "", 0, fmt.Errorf("render %q: %w", res.Template, rerr)
		}
		return []byte(out), contentType, status, nil
	default:
		return nil, contentType, status, nil
	}
}

// BuildResponse assembles the wire response for a handler result whose
// body has already been materialized.
func BuildResponse(res *Result, body []byte, contentType string, status int, keepAlive bool) *httpwire.Response {
	resp := &httpwire.Response{
		Status:      status,
		ContentType: contentType,
		Body:        body,
		KeepAlive:   keepAlive,
	}
	if res != nil && res.Redirect != "" {
		resp.Extra = httpwire.Header{}
		resp.Extra.Set("Location", res.Redirect)
	}
	return resp
}
