package server

import (
	"bufio"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"stagedweb/internal/clock"
	"stagedweb/internal/httpwire"
	"stagedweb/internal/metrics"
)

// plainText is the content type of the transport's terse error bodies.
const plainText = "text/plain; charset=utf-8"

// TransportConfig configures the connection layer shared by both server
// variants.
type TransportConfig struct {
	// IdleTimeout bounds how long the transport waits for the next
	// request's bytes on a connection (wall time), like CherryPy's socket
	// timeout. Defaults to 10 s.
	IdleTimeout time.Duration
	// Clock and Scale drive cost-model sleeps and convert paper time to
	// wall time. Defaults: real clock, real time.
	Clock clock.Clock
	Scale clock.Timescale
	// Cost models render/static worker time (paper time); the zero value
	// charges nothing.
	Cost WorkCost
	// OnComplete, when set, receives a CompletionEvent per request.
	OnComplete func(CompletionEvent)
}

// Transport is the connection layer both server variants share: the
// accept loop, buffered connection lifecycle (with bufio readers and
// writers recycled through sync.Pools), two-phase httpwire parsing,
// reply writing, paper-time cost charging, and completion events.
//
// The variants differ only in *which worker runs which step*; everything
// about moving bytes and accounting for them lives here.
type Transport struct {
	idleTimeout time.Duration
	clk         clock.Clock
	scale       clock.Timescale
	cost        WorkCost
	onComplete  func(CompletionEvent)

	accepted metrics.Counter
	served   metrics.Counter
}

// NewTransport fills defaults and builds the transport.
func NewTransport(cfg TransportConfig) *Transport {
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = 10 * time.Second
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if cfg.Scale == 0 {
		cfg.Scale = clock.RealTime
	}
	return &Transport{
		idleTimeout: cfg.IdleTimeout,
		clk:         cfg.Clock,
		scale:       cfg.Scale,
		cost:        cfg.Cost,
		onComplete:  cfg.OnComplete,
	}
}

// bufio buffers are recycled across connections: accept-heavy workloads
// (closed connections, shed keep-alives) would otherwise allocate a
// reader, a writer, and two 4 KiB buffers per connection.
var (
	readerPool = sync.Pool{New: func() any { return bufio.NewReader(nil) }}
	writerPool = sync.Pool{New: func() any { return bufio.NewWriter(nil) }}
)

// Conn is a client connection moving through a server. It carries the
// buffered reader/writer pair and the acquisition time of the request
// currently being processed.
type Conn struct {
	t  *Transport
	nc net.Conn
	br *bufio.Reader
	bw *bufio.Writer
	// Acquired is when the current request started processing, read from
	// the transport's injected clock; server-side response times are
	// measured from it. (Socket read deadlines stay on the wall clock —
	// the kernel does not honor a manual test clock.)
	Acquired time.Time

	closed  atomic.Bool
	aborted atomic.Bool
}

// errAborted reports a connection unparked by Abort during shutdown.
var errAborted = errors.New("server: connection aborted")

// NewConn wraps nc with pooled buffers. Callers must Close the Conn to
// return them.
func (t *Transport) NewConn(nc net.Conn) *Conn {
	br := readerPool.Get().(*bufio.Reader)
	br.Reset(nc)
	bw := writerPool.Get().(*bufio.Writer)
	bw.Reset(nc)
	return &Conn{t: t, nc: nc, br: br, bw: bw}
}

// Close closes the network connection and returns the buffers to their
// pools. Idempotent.
func (c *Conn) Close() {
	if !c.closed.CompareAndSwap(false, true) {
		return
	}
	_ = c.nc.Close()
	c.br.Reset(nil)
	readerPool.Put(c.br)
	c.br = nil
	c.bw.Reset(nil)
	writerPool.Put(c.bw)
	c.bw = nil
}

// ReadRequestLine marks the request acquired and reads its first line
// (phase one of the two-phase parse), bounding the wait by the idle
// timeout so a silent keep-alive client cannot pin a worker.
func (c *Conn) ReadRequestLine() (httpwire.RequestLine, error) {
	c.Acquired = c.t.clk.Now()
	_ = c.nc.SetReadDeadline(time.Now().Add(c.t.idleTimeout))
	line, err := httpwire.ReadRequestLine(c.br)
	if err != nil {
		return line, err
	}
	_ = c.nc.SetReadDeadline(time.Time{})
	return line, nil
}

// ReadHeaders reads the header block (phase two).
func (c *Conn) ReadHeaders() (httpwire.Header, error) {
	return httpwire.ReadHeaders(c.br)
}

// FinishRequest completes phase two — headers, query, form body — for a
// request whose first line has been read.
func (c *Conn) FinishRequest(line httpwire.RequestLine) (*httpwire.Request, error) {
	return httpwire.FinishRequest(c.br, line)
}

// ReadRequest marks the request acquired and performs both parse phases,
// bounded by the idle timeout — the convenience path for workers that do
// everything themselves.
func (c *Conn) ReadRequest() (*httpwire.Request, error) {
	c.Acquired = c.t.clk.Now()
	_ = c.nc.SetReadDeadline(time.Now().Add(c.t.idleTimeout))
	req, err := httpwire.ReadRequest(c.br)
	if err != nil {
		return nil, err
	}
	_ = c.nc.SetReadDeadline(time.Time{})
	return req, nil
}

// AwaitReadable blocks until the connection has readable bytes (the next
// pipelined request) or the idle timeout passes. It plays the role of
// the OS readiness notification (select/poll in CherryPy's listener).
func (c *Conn) AwaitReadable() error {
	_ = c.nc.SetReadDeadline(time.Now().Add(c.t.idleTimeout))
	// Re-check after arming the deadline: an Abort that ran before this
	// point is seen here; one that runs after re-expires the deadline we
	// just set. Either way the park cannot outlive the abort.
	if c.aborted.Load() {
		return errAborted
	}
	if _, err := c.br.Peek(1); err != nil {
		return err
	}
	_ = c.nc.SetReadDeadline(time.Time{})
	return nil
}

// Abort expires the connection's read deadline so any goroutine blocked
// in AwaitReadable (or a read) fails promptly and closes the connection
// itself. Servers use it to unpark keep-alive connections on shutdown:
// unlike calling Close from a second goroutine, Abort never races the
// parked reader's use of the pooled buffers.
func (c *Conn) Abort() {
	c.aborted.Store(true)
	if c.closed.Load() {
		return
	}
	_ = c.nc.SetReadDeadline(time.Now().Add(-time.Second))
}

// WriteError writes a plain error response without firing a completion
// event (used for protocol-level failures such as malformed requests).
func (c *Conn) WriteError(status int, msg string) error {
	return httpwire.WriteError(c.bw, status, msg)
}

// Accept runs the accept loop: accept, count, wrap, hand to sink. A sink
// error means the server is shutting down; the connection is closed and
// the loop exits cleanly. The returned error is nil after a clean Stop.
func (t *Transport) Accept(l net.Listener, sink func(*Conn) error) error {
	for {
		nc, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		t.accepted.Inc()
		c := t.NewConn(nc)
		if err := sink(c); err != nil {
			c.Close()
			return nil // shutting down
		}
	}
}

// Charge sleeps a paper-time work cost through the timescale.
func (t *Transport) Charge(paperCost time.Duration) {
	if paperCost > 0 {
		t.clk.Sleep(t.scale.Wall(paperCost))
	}
}

// Accepted reports connections accepted.
func (t *Transport) Accepted() int64 { return t.accepted.Value() }

// Served reports completed requests.
func (t *Transport) Served() int64 { return t.served.Value() }

// complete fires the completion event for a finished request. Times come
// from the injected clock, so under clock.Manual the classifier and the
// harness see paper-consistent durations instead of ~0 wall gaps.
func (t *Transport) complete(page string, class Class, status int, acquired time.Time) {
	t.served.Inc()
	if t.onComplete != nil {
		t.onComplete(CompletionEvent{
			Page:       page,
			Class:      class,
			Status:     status,
			Done:       t.clk.Now(),
			ServerTime: t.clk.Since(acquired),
		})
	}
}

// Reply writes resp and fires the completion event. It reports whether
// the connection is still usable for keep-alive; false means the caller
// must close it (write failure or a non-keep-alive response).
func (t *Transport) Reply(c *Conn, page string, class Class, resp *httpwire.Response) bool {
	if err := resp.Write(c.bw); err != nil {
		return false
	}
	t.complete(page, class, resp.Status, c.Acquired)
	return resp.KeepAlive
}

// DirectReply sends a terminal plain response (404s, 500s, direct
// strings). Same contract as Reply.
func (t *Transport) DirectReply(c *Conn, page string, class Class, status int, body []byte, contentType string, keep bool) bool {
	return t.Reply(c, page, class, &httpwire.Response{
		Status: status, ContentType: contentType, Body: body, KeepAlive: keep,
	})
}

// ServeStatic resolves, charges, and serves a static asset (404 on a
// miss). Same contract as Reply.
func (t *Transport) ServeStatic(c *Conn, app App, path string, keep bool) bool {
	body, ct, ok := app.Static(path)
	status := httpwire.StatusOK
	if !ok {
		status, body, ct, keep = httpwire.StatusNotFound, []byte("not found"), plainText, false
	} else {
		t.Charge(t.cost.Static(len(body)))
	}
	return t.Reply(c, path, ClassStatic, &httpwire.Response{
		Status: status, ContentType: ct, Body: body, KeepAlive: keep,
	})
}

// FinishDynamic materializes a handler result — rendering the template if
// deferred — charges the render cost on the calling worker, writes the
// response, and fires the completion event. Which worker calls this is
// exactly the paper's design space: the baseline calls it on the
// connection-holding worker, the staged server on the rendering pool (or
// on the dynamic worker for backward-compatible pre-rendered results).
// Same contract as Reply.
func (t *Transport) FinishDynamic(c *Conn, app App, page string, class Class, res *Result, keep bool) bool {
	body, ct, status, err := RenderResult(app, res)
	if err != nil {
		return t.DirectReply(c, page, class, httpwire.StatusInternalServerError, []byte("render error"), plainText, false)
	}
	if res.Deferred() || res.Body != "" {
		// Deferred results render here; pre-rendered bodies were rendered
		// inside the handler. Either way the render cost lands on the
		// worker that produced the bytes.
		t.Charge(t.cost.Render(len(body)))
	}
	return t.Reply(c, page, class, BuildResponse(res, body, ct, status, keep))
}
