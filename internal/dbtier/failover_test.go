package dbtier

import (
	"errors"
	"testing"
	"time"
)

// failoverWait polls until cond holds, failing the test after a wall
// deadline — failover transitions ride the health loop's paper-time
// ticks, compressed through the test's timescale.
func failoverWait(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// TestFailoverReadsSurviveDeadReplica proves reads never fail or wedge
// while a replica is dead: before ejection they fail over to a live
// backend within the same call, after ejection the rotation skips the
// corpse entirely.
func TestFailoverReadsSurviveDeadReplica(t *testing.T) {
	db := newTierDB(t)
	tier := New(db, Options{Replicas: 3, Conns: 2, Scale: 2000})
	defer tier.Close()
	c := tier.Conn()
	if err := tier.KillBackend(1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := c.Query("SELECT v FROM kv WHERE id = 1"); err != nil {
			t.Fatalf("read %d failed with a dead replica: %v", i, err)
		}
	}
	failoverWait(t, "ejection", func() bool { return tier.Ejected() >= 1 })
	if got := tier.ActiveBackends(); got != 2 {
		t.Fatalf("ActiveBackends = %d, want 2", got)
	}
}

// TestFailoverEjectReintegrateReadYourWrites is the full convergence
// story: a replica dies and is ejected, writes continue against the
// survivors, the replica is revived, catches up, reintegrates — and
// read-your-writes holds again, with the revived replica serving the
// latest committed data.
func TestFailoverEjectReintegrateReadYourWrites(t *testing.T) {
	db := newTierDB(t)
	tier := New(db, Options{Replicas: 2, Conns: 2, Scale: 2000})
	defer tier.Close()
	c := tier.Conn()

	if err := tier.KillBackend(1); err != nil {
		t.Fatal(err)
	}
	failoverWait(t, "ejection", func() bool { return tier.Ejected() >= 1 })

	// Sync-mode writes must proceed with the replica out of rotation.
	for i := 0; i < 10; i++ {
		if _, err := c.Exec("INSERT INTO kv (id, v) VALUES (NULL, 'during-outage')"); err != nil {
			t.Fatalf("write %d during outage: %v", i, err)
		}
	}

	if err := tier.RestartBackend(1); err != nil {
		t.Fatal(err)
	}
	failoverWait(t, "reintegration", func() bool { return tier.Resyncs() >= 1 })

	// Back in rotation: a sync write now waits for the revived replica,
	// so its own data must be visible there immediately after Exec.
	res, err := c.Exec("INSERT INTO kv (id, v) VALUES (NULL, 'after-heal')")
	if err != nil {
		t.Fatal(err)
	}
	want, err := tier.Backends()[0].TableSize("kv")
	if err != nil {
		t.Fatal(err)
	}
	replica := tier.Backends()[1]
	if n, _ := replica.TableSize("kv"); n != want {
		t.Fatalf("replica size after heal = %d, primary = %d", n, want)
	}
	rc := replica.Connect()
	defer rc.Close()
	rs, err := rc.Query("SELECT v FROM kv WHERE id = ?", res.LastInsertID)
	if err != nil || rs.Len() != 1 || rs.Str(0, "v") != "after-heal" {
		t.Fatalf("replica missed the post-heal write: %d rows, err %v", rs.Len(), err)
	}
}

// TestAcquireTimeout proves pooled-connection acquisition no longer
// blocks forever: with the whole pool leaked away, a statement fails
// with the typed ErrAcquireTimeout after the paper-time deadline, and
// recovers once capacity returns.
func TestAcquireTimeout(t *testing.T) {
	db := newTierDB(t)
	tier := New(db, Options{Replicas: 1, Conns: 1, Scale: 1000, AcquireTimeout: 500 * time.Millisecond})
	defer tier.Close()
	c := tier.Conn()

	if got := tier.LeakConns(0); got != 1 {
		t.Fatalf("LeakConns = %d, want 1", got)
	}
	if _, err := c.Query("SELECT v FROM kv WHERE id = 1"); !errors.Is(err, ErrAcquireTimeout) {
		t.Fatalf("starved query err = %v, want ErrAcquireTimeout", err)
	}
	if got := tier.ReleaseLeaked(); got != 1 {
		t.Fatalf("ReleaseLeaked = %d, want 1", got)
	}
	if _, err := c.Query("SELECT v FROM kv WHERE id = 1"); err != nil {
		t.Fatalf("query after release: %v", err)
	}
}

// TestSlowReplicaEjectedAndHealed proves the latency path of the health
// loop: an injected statement delay beyond SlowThreshold ejects the
// replica; clearing it brings the replica back.
func TestSlowReplicaEjectedAndHealed(t *testing.T) {
	db := newTierDB(t)
	tier := New(db, Options{Replicas: 2, Conns: 2, Scale: 2000, SlowThreshold: time.Second})
	defer tier.Close()
	if err := tier.SetBackendDelay(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	failoverWait(t, "slow ejection", func() bool { return tier.Ejected() >= 1 })
	if err := tier.SetBackendDelay(1, 0); err != nil {
		t.Fatal(err)
	}
	failoverWait(t, "slow heal", func() bool { return tier.Resyncs() >= 1 })
	if got := tier.ActiveBackends(); got != 2 {
		t.Fatalf("ActiveBackends after heal = %d, want 2", got)
	}
}

// TestResyncAfterLogTruncation forces the snapshot-resync path: the
// replication log is truncated past a dead replica's watermark, so on
// revival it cannot catch up by replay and must clone the primary.
func TestResyncAfterLogTruncation(t *testing.T) {
	db := newTierDB(t)
	// Three backends: the log is truncated by the surviving replica's
	// applier (the ejected one is excluded from the watermark), so the
	// truncation path needs a live replica besides the corpse.
	tier := New(db, Options{Replicas: 3, Conns: 2, Scale: 2000})
	defer tier.Close()
	c := tier.Conn()

	if err := tier.KillBackend(1); err != nil {
		t.Fatal(err)
	}
	failoverWait(t, "ejection", func() bool { return tier.Ejected() >= 1 })
	// With the dead replica out of every watermark, these writes both
	// commit and truncate the log past its applied position.
	for i := 0; i < 10; i++ {
		if _, err := c.Exec("INSERT INTO kv (id, v) VALUES (NULL, 'x')"); err != nil {
			t.Fatal(err)
		}
	}
	failoverWait(t, "log truncation past the corpse", func() bool {
		return tier.log.Base() > tier.replicas[0].applied.Load()
	})
	if err := tier.RestartBackend(1); err != nil {
		t.Fatal(err)
	}
	failoverWait(t, "snapshot resync", func() bool { return tier.Resyncs() >= 1 })
	want, _ := tier.Backends()[0].TableSize("kv")
	if n, _ := tier.Backends()[1].TableSize("kv"); n != want {
		t.Fatalf("resynced replica size = %d, primary = %d", n, want)
	}
}
