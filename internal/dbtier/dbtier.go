// Package dbtier fronts a replicated database tier: one primary sqldb.DB
// plus N-1 read replicas cloned from it, behind the same Conn-shaped
// Query/Exec surface application handlers already use. Reads are routed
// round-robin across every backend; DML executes on the primary and is
// shipped to replicas through the primary's versioned replication log
// (sqldb.ReplLog): each replica has a dedicated applier goroutine that
// replays committed statements in commit order on its own non-pooled
// connection.
//
// Fan-out contract change (vs the apply-hook design): replication now
// happens AFTER primary commit, outside every lock, instead of
// synchronously under the primary's table write lock. Two modes pick
// the consistency point:
//
//   - sync (default): Exec returns once every replica has applied the
//     statement's CommitTS. Readers anywhere see the write — the old
//     external behavior — but the wait overlaps across replicas and no
//     longer serializes the whole tier under a table lock.
//   - async: Exec returns at primary commit, waiting only if the
//     slowest replica is more than MaxLag commits behind (bounded
//     staleness backpressure). Replica reads may briefly return stale
//     rows; reads served by the primary still observe every committed
//     write (read-your-writes holds whenever the rotation lands there,
//     and always holds for data the handler re-reads via the primary).
//
// The tier also owns the "precious database connection resources" the
// DSN'09 paper husbands: each backend engine has a fixed pool of
// connections (absorbing the former internal/dbpool package), and every
// statement acquires one through an instrumented path — an in-use gauge,
// a wait counter, and a wait-time histogram, surfaced by the server
// variants as the db.inuse / db.wait / db.queries probes. Applier
// connections are separate from the pools, so replication never starves
// read capacity. Because a pooled connection executes one statement at
// a time, the per-backend pool size is also the engine's statement
// concurrency.
package dbtier

import (
	"errors"
	"sync"
	"sync/atomic"

	"stagedweb/internal/clock"
	"stagedweb/internal/metrics"
	"stagedweb/internal/sqldb"
)

// ErrTierClosed is returned by statement execution after Close.
var ErrTierClosed = errors.New("dbtier: tier closed")

// defaultMaxLag bounds async-mode replica staleness, in commits.
const defaultMaxLag = 256

// Options configures a Tier.
type Options struct {
	// Replicas is the total number of backend engines, primary included.
	// Values below 1 mean 1: just the primary, no fan-out — exactly the
	// single-database behavior the tier replaces.
	Replicas int
	// Conns is the connection pool size per backend — the per-engine
	// statement concurrency. It must be positive.
	Conns int
	// Clock times acquisition waits; defaults to the real clock.
	Clock clock.Clock
	// Async selects asynchronous replication: Exec returns at primary
	// commit instead of waiting for every replica to apply. False — the
	// default — preserves the old synchronous external behavior.
	Async bool
	// MaxLag bounds how many commits the slowest replica may trail the
	// primary in async mode before writers are backpressured; <= 0
	// means defaultMaxLag. Ignored in sync mode.
	MaxLag int
}

// backend is one engine plus its bounded connection pool.
type backend struct {
	db    *sqldb.DB
	conns chan *sqldb.Conn
}

// replica is one read replica's replication state: the applier's
// dedicated connection and the commit timestamp applied so far.
type replica struct {
	db      *sqldb.DB
	apply   *sqldb.Conn
	applied atomic.Int64
}

// Tier is a replicated database tier. Handlers reach it through Conn
// values (see Conn), which are safe for concurrent use.
type Tier struct {
	backends []*backend // [0] is the primary
	replicas []*replica // backends[1:]
	log      *sqldb.ReplLog
	clk      clock.Clock
	poolSize int
	async    bool
	maxLag   int64

	next      atomic.Uint64 // round-robin read cursor
	done      chan struct{}
	applyWG   sync.WaitGroup
	closeOnce sync.Once
	// closeMu orders release against Close: once closed is set no new
	// connection can land in a pool channel, so Close's drain is final.
	closeMu sync.Mutex
	closed  bool

	// progCh broadcasts replica apply progress: closed and replaced
	// whenever any replica advances, waking CommitTS / lag waiters.
	progMu sync.Mutex
	progCh chan struct{}

	inUse      metrics.Gauge
	waits      metrics.Counter
	waitTime   metrics.Histogram
	replayErrs metrics.Counter
}

// New builds a tier over primary. Replicas beyond the first are cloned
// from the primary's current contents (schema, rows, auto-increment
// state), so build the tier after the database is populated. With more
// than one backend the tier enables the primary's replication log and
// starts one applier goroutine per replica; Close stops them and
// detaches the log.
func New(primary *sqldb.DB, opts Options) *Tier {
	if primary == nil {
		panic("dbtier: nil primary")
	}
	if opts.Conns <= 0 {
		panic("dbtier: non-positive connection pool size")
	}
	if opts.Replicas < 1 {
		opts.Replicas = 1
	}
	if opts.Clock == nil {
		opts.Clock = clock.Real{}
	}
	if opts.MaxLag <= 0 {
		opts.MaxLag = defaultMaxLag
	}
	t := &Tier{
		clk:      opts.Clock,
		poolSize: opts.Conns,
		async:    opts.Async,
		maxLag:   int64(opts.MaxLag),
		done:     make(chan struct{}),
		progCh:   make(chan struct{}),
	}
	if opts.Replicas > 1 {
		// Enable the log before cloning: every commit after a clone's
		// asOf timestamp is then guaranteed to be in the log.
		t.log = primary.EnableReplLog()
	}
	for i := 0; i < opts.Replicas; i++ {
		db := primary
		if i > 0 {
			clone, asOf := primary.CloneSnapshot()
			r := &replica{db: clone, apply: clone.Connect()}
			r.applied.Store(asOf)
			t.replicas = append(t.replicas, r)
			db = clone
		}
		b := &backend{db: db, conns: make(chan *sqldb.Conn, opts.Conns)}
		for j := 0; j < opts.Conns; j++ {
			b.conns <- db.Connect()
		}
		t.backends = append(t.backends, b)
	}
	for _, r := range t.replicas {
		t.applyWG.Add(1)
		go t.applyLoop(r)
	}
	return t
}

// Conn returns a connection facade for handlers. Unlike a raw
// sqldb.Conn, a tier Conn is safe for concurrent use: every statement
// acquires a pooled backend connection for just its own execution.
func (t *Tier) Conn() *Conn { return &Conn{t: t} }

// Close shuts the tier down: waiting acquisitions fail, applier
// goroutines drain and stop, the primary's replication log is detached
// (so later direct writes no longer accumulate or replicate), and
// pooled connections are closed (connections currently executing are
// closed as they are released). Idempotent.
func (t *Tier) Close() {
	t.closeOnce.Do(func() {
		t.closeMu.Lock()
		t.closed = true
		close(t.done)
		t.closeMu.Unlock()
		t.applyWG.Wait()
		for _, r := range t.replicas {
			r.apply.Close()
		}
		if t.log != nil {
			t.backends[0].db.DisableReplLog()
		}
		// No release can add to a pool once closed is set, so a single
		// drain closes every pooled connection for good.
		for _, b := range t.backends {
			for drained := false; !drained; {
				select {
				case c := <-b.conns:
					c.Close()
				default:
					drained = true
				}
			}
		}
	})
}

// applyLoop is one replica's applier: it tails the primary's log and
// replays each committed statement, in commit order, on the replica's
// dedicated connection. Replay preserves auto-increment determinism
// because the replica started from a commit-consistent clone and
// applies the identical statement stream single-threaded.
func (t *Tier) applyLoop(r *replica) {
	defer t.applyWG.Done()
	for {
		entries, changed := t.log.Since(r.applied.Load())
		if len(entries) == 0 {
			select {
			case <-t.done:
				return
			case <-changed:
			}
			continue
		}
		for _, e := range entries {
			select {
			case <-t.done:
				return
			default:
			}
			args := make([]any, len(e.Args))
			for i, v := range e.Args {
				args[i] = v
			}
			if _, err := r.apply.Exec(e.SQL, args...); err != nil {
				t.replayErrs.Inc()
			}
			r.applied.Store(e.TS)
			t.notifyProgress()
		}
		t.log.TruncateThrough(t.minApplied())
	}
}

// notifyProgress wakes everything blocked on replica apply progress.
func (t *Tier) notifyProgress() {
	t.progMu.Lock()
	close(t.progCh)
	t.progCh = make(chan struct{})
	t.progMu.Unlock()
}

// progress returns the current progress broadcast channel.
func (t *Tier) progress() <-chan struct{} {
	t.progMu.Lock()
	ch := t.progCh
	t.progMu.Unlock()
	return ch
}

// minApplied reports the slowest replica's applied commit timestamp.
func (t *Tier) minApplied() int64 {
	min := int64(-1)
	for _, r := range t.replicas {
		if a := r.applied.Load(); min < 0 || a < min {
			min = a
		}
	}
	if min < 0 {
		return t.backends[0].db.CommitTS()
	}
	return min
}

// waitApplied blocks until every replica has applied ts, or the tier
// closes (the write already committed on the primary, so closing is not
// an error for the writer).
func (t *Tier) waitApplied(ts int64) {
	for t.minApplied() < ts {
		ch := t.progress()
		if t.minApplied() >= ts {
			return
		}
		select {
		case <-ch:
		case <-t.done:
			return
		}
	}
}

// waitLag blocks while the slowest replica trails ts by more than
// MaxLag — async mode's bounded-staleness backpressure.
func (t *Tier) waitLag(ts int64) {
	for ts-t.minApplied() > t.maxLag {
		ch := t.progress()
		if ts-t.minApplied() <= t.maxLag {
			return
		}
		select {
		case <-ch:
		case <-t.done:
			return
		}
	}
}

// Sync blocks until every replica has applied every statement committed
// on the primary so far — the barrier tests and direct primary writers
// use to observe a converged tier.
func (t *Tier) Sync() {
	if len(t.replicas) == 0 {
		return
	}
	t.waitApplied(t.backends[0].db.CommitTS())
}

// acquire obtains a pooled connection to backend b, blocking until one
// frees up or the tier closes. Waits are counted and timed through the
// injected clock.
func (t *Tier) acquire(b *backend) (*sqldb.Conn, error) {
	select {
	case <-t.done:
		return nil, ErrTierClosed
	default:
	}
	// Fast path: no blocking.
	select {
	case c := <-b.conns:
		t.inUse.Inc()
		return c, nil
	default:
	}
	t.waits.Inc()
	start := t.clk.Now()
	select {
	case c := <-b.conns:
		t.waitTime.Observe(t.clk.Since(start))
		t.inUse.Inc()
		return c, nil
	case <-t.done:
		return nil, ErrTierClosed
	}
}

// release returns a pooled connection; after Close it is closed instead.
func (t *Tier) release(b *backend, c *sqldb.Conn) {
	t.inUse.Dec()
	t.closeMu.Lock()
	if t.closed {
		t.closeMu.Unlock()
		c.Close()
		return
	}
	select {
	case b.conns <- c:
		t.closeMu.Unlock()
	default:
		t.closeMu.Unlock()
		panic("dbtier: released more connections than acquired")
	}
}

// readBackend picks the next backend in the read rotation. The modulo
// runs in uint64 so the cursor's eventual wrap can never yield a
// negative index, even where int is 32 bits.
func (t *Tier) readBackend() *backend {
	return t.backends[int(t.next.Add(1)%uint64(len(t.backends)))]
}

// ---- introspection ----

// Replicas reports the number of backend engines, primary included.
func (t *Tier) Replicas() int { return len(t.backends) }

// Size reports the connection pool size per backend.
func (t *Tier) Size() int { return t.poolSize }

// Async reports whether the tier replicates asynchronously.
func (t *Tier) Async() bool { return t.async }

// Primary returns the primary engine.
func (t *Tier) Primary() *sqldb.DB { return t.backends[0].db }

// Backends lists every engine, primary first.
func (t *Tier) Backends() []*sqldb.DB {
	out := make([]*sqldb.DB, len(t.backends))
	for i, b := range t.backends {
		out[i] = b.db
	}
	return out
}

// InUse reports how many pooled connections are currently executing,
// across all backends.
func (t *Tier) InUse() int { return int(t.inUse.Value()) }

// WaitCount reports how many acquisitions had to block.
func (t *Tier) WaitCount() int64 { return t.waits.Value() }

// WaitTimes exposes the acquisition wait-time histogram (measured
// through the tier's clock).
func (t *Tier) WaitTimes() *metrics.Histogram { return &t.waitTime }

// QueryCount reports statements executed across all backends; replayed
// writes count once per backend they were applied to.
func (t *Tier) QueryCount() int64 {
	var n int64
	for _, b := range t.backends {
		n += b.db.QueryCount()
	}
	return n
}

// Conflicts reports first-writer-wins aborts across all backends
// (replicas replay single-threaded, so in practice this is the
// primary's count).
func (t *Tier) Conflicts() int64 {
	var n int64
	for _, b := range t.backends {
		n += b.db.Conflicts()
	}
	return n
}

// SnapshotReads reports MVCC snapshot-served statements across all
// backends.
func (t *Tier) SnapshotReads() int64 {
	var n int64
	for _, b := range t.backends {
		n += b.db.SnapshotReads()
	}
	return n
}

// StmtCacheHits reports prepared-statement cache hits across all
// backends.
func (t *Tier) StmtCacheHits() int64 {
	var n int64
	for _, b := range t.backends {
		n += b.db.StmtCacheHits()
	}
	return n
}

// StmtCacheMisses reports prepared-statement cache misses across all
// backends.
func (t *Tier) StmtCacheMisses() int64 {
	var n int64
	for _, b := range t.backends {
		n += b.db.StmtCacheMisses()
	}
	return n
}

// ReplLag reports how many commits the slowest replica currently trails
// the primary — zero with no replicas, bounded by MaxLag under async
// backpressure, and transiently nonzero even in sync mode (the wait
// happens in Exec, not under a lock).
func (t *Tier) ReplLag() int64 {
	if len(t.replicas) == 0 {
		return 0
	}
	lag := t.backends[0].db.CommitTS() - t.minApplied()
	if lag < 0 {
		return 0
	}
	return lag
}

// ReplayErrors reports replica statements that failed to apply — zero in
// a healthy tier, since replicas replay the primary's exact statement
// stream from an identical starting state.
func (t *Tier) ReplayErrors() int64 { return t.replayErrs.Value() }

// Conn is the handler-facing connection facade: the same Query/Exec
// shape as a *sqldb.Conn, with reads routed round-robin across backends
// and writes executed on the primary and shipped through the
// replication log.
type Conn struct {
	t *Tier
}

// Query executes a SELECT on the next backend in the read rotation.
func (c *Conn) Query(sql string, args ...any) (*sqldb.ResultSet, error) {
	b := c.t.readBackend()
	bc, err := c.t.acquire(b)
	if err != nil {
		return nil, err
	}
	defer c.t.release(b, bc)
	return bc.Query(sql, args...)
}

// Exec executes a DML statement on the primary. In sync mode it then
// waits (holding no pooled connection) until every replica has applied
// the statement; in async mode it returns immediately unless the
// slowest replica is more than MaxLag commits behind.
func (c *Conn) Exec(sql string, args ...any) (sqldb.ExecResult, error) {
	b := c.t.backends[0]
	bc, err := c.t.acquire(b)
	if err != nil {
		return sqldb.ExecResult{}, err
	}
	res, err := bc.Exec(sql, args...)
	c.t.release(b, bc) // before any replication wait: don't hold the pool slot
	if err != nil || len(c.t.replicas) == 0 {
		return res, err
	}
	if c.t.async {
		c.t.waitLag(res.CommitTS)
	} else {
		c.t.waitApplied(res.CommitTS)
	}
	return res, nil
}
