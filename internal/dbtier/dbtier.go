// Package dbtier fronts a replicated database tier: one primary sqldb.DB
// plus N-1 read replicas cloned from it, behind the same Conn-shaped
// Query/Exec surface application handlers already use. Reads are routed
// round-robin across every backend; DML executes on the primary and is
// shipped to replicas through the primary's versioned replication log
// (sqldb.ReplLog): each replica has a dedicated applier goroutine that
// replays committed statements in commit order on its own non-pooled
// connection.
//
// Fan-out contract change (vs the apply-hook design): replication now
// happens AFTER primary commit, outside every lock, instead of
// synchronously under the primary's table write lock. Two modes pick
// the consistency point:
//
//   - sync (default): Exec returns once every in-rotation replica has
//     applied the statement's CommitTS. Readers anywhere see the write —
//     the old external behavior — but the wait overlaps across replicas
//     and no longer serializes the whole tier under a table lock.
//   - async: Exec returns at primary commit, waiting only if the
//     slowest replica is more than MaxLag commits behind (bounded
//     staleness backpressure). Replica reads may briefly return stale
//     rows; reads served by the primary still observe every committed
//     write (read-your-writes holds whenever the rotation lands there,
//     and always holds for data the handler re-reads via the primary).
//
// Failover (the dependability half): every replica backend carries a
// health state — active, ejected, resync. A replica that dies (fault
// injection via KillBackend, or repeated statement failures) or turns
// pathologically slow (SetBackendDelay beyond SlowThreshold) is ejected
// from the read rotation: reads fail over to the next healthy backend,
// and sync-mode writers stop waiting for it, so a dead replica degrades
// capacity instead of wedging the tier. While ejected its applied
// watermark no longer holds back replication-log truncation. When the
// backend comes back it enters resync: the applier catches up by
// replaying the log from its watermark, or — when the log has been
// truncated past that watermark — by swapping in a fresh CloneSnapshot
// of the primary and replaying from the snapshot point. The replica
// reintegrates into the rotation only once it has applied everything
// committed so far (checked under the same lock sync-mode writers use),
// so read-your-writes still holds across an eject/reintegrate cycle.
//
// The tier also owns the "precious database connection resources" the
// DSN'09 paper husbands: each backend engine has a fixed pool of
// connections (absorbing the former internal/dbpool package), and every
// statement acquires one through an instrumented path — an in-use gauge,
// a wait counter, and a wait-time histogram, surfaced by the server
// variants as the db.inuse / db.wait / db.queries probes. Acquisition
// is deadline-bounded (AcquireTimeout, paper time): a pool starved by a
// dead backend or a connection leak yields ErrAcquireTimeout instead of
// blocking the handler forever. Applier connections are separate from
// the pools, so replication never starves read capacity. Because a
// pooled connection executes one statement at a time, the per-backend
// pool size is also the engine's statement concurrency.
package dbtier

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"stagedweb/internal/clock"
	"stagedweb/internal/metrics"
	"stagedweb/internal/sqldb"
)

// ErrTierClosed is returned by statement execution after Close.
var ErrTierClosed = errors.New("dbtier: tier closed")

// ErrBackendDown is returned when a statement lands on a backend whose
// engine is down (fault injection). Reads fail over past it; the error
// only surfaces when no healthy backend remains.
var ErrBackendDown = errors.New("dbtier: backend down")

// ErrAcquireTimeout is returned when acquiring a pooled connection
// exceeds the tier's paper-time deadline — the bounded-wait replacement
// for blocking forever on a starved pool.
var ErrAcquireTimeout = errors.New("dbtier: connection acquisition timed out")

// defaultMaxLag bounds async-mode replica staleness, in commits.
const defaultMaxLag = 256

// Failover defaults, in paper time where durations.
const (
	defaultAcquireTimeout = 10 * time.Second
	defaultFailThreshold  = 3
	defaultSlowThreshold  = time.Second
	healthInterval        = time.Second
)

// Backend health states.
const (
	stateActive  int32 = iota // in the read rotation; sync writers wait for it
	stateEjected              // out of rotation; does not hold back log truncation
	stateResync               // healthy again, catching up; reintegrates when caught up
)

// Options configures a Tier.
type Options struct {
	// Replicas is the total number of backend engines, primary included.
	// Values below 1 mean 1: just the primary, no fan-out — exactly the
	// single-database behavior the tier replaces.
	Replicas int
	// Conns is the connection pool size per backend — the per-engine
	// statement concurrency. It must be positive.
	Conns int
	// Clock times acquisition waits and schedules health checks;
	// defaults to the real clock.
	Clock clock.Clock
	// Scale converts the tier's paper-time deadlines (AcquireTimeout,
	// SlowThreshold, health-check cadence) to wall time; zero or
	// negative means clock.RealTime.
	Scale clock.Timescale
	// Async selects asynchronous replication: Exec returns at primary
	// commit instead of waiting for every replica to apply. False — the
	// default — preserves the old synchronous external behavior.
	Async bool
	// MaxLag bounds how many commits the slowest replica may trail the
	// primary in async mode before writers are backpressured; <= 0
	// means defaultMaxLag. Ignored in sync mode.
	MaxLag int
	// AcquireTimeout bounds pooled-connection acquisition, in paper
	// time. Zero means the 10 s default; negative disables the deadline
	// (the old block-forever behavior).
	AcquireTimeout time.Duration
	// FailThreshold is how many consecutive failures (statement errors
	// on a down backend, or unhealthy health-check ticks) eject a
	// replica from the read rotation; <= 0 means 3.
	FailThreshold int
	// SlowThreshold ejects a replica whose injected statement latency
	// exceeds it, in paper time; <= 0 means 1 s.
	SlowThreshold time.Duration
}

// backend is one engine plus its bounded connection pool. The engine
// and pool are swappable (atomically, under the tier's closeMu) so a
// resync can replace a stale replica with a fresh snapshot clone while
// statements are in flight.
type backend struct {
	dbv   atomic.Pointer[sqldb.DB]
	connv atomic.Value // chan *sqldb.Conn

	state atomic.Int32 // stateActive / stateEjected / stateResync
	down  atomic.Bool  // fault injection: engine refuses statements
	delay atomic.Int64 // injected statement latency, paper ns
	fails atomic.Int32 // consecutive failures while active
}

func (b *backend) db() *sqldb.DB          { return b.dbv.Load() }
func (b *backend) pool() chan *sqldb.Conn { return b.connv.Load().(chan *sqldb.Conn) }

// replica is one read replica's replication state: the applier's
// dedicated connection and the commit timestamp applied so far.
type replica struct {
	b       *backend
	apply   *sqldb.Conn
	applied atomic.Int64

	// upCh parks the applier while the backend is down; closed and
	// replaced by RestartBackend to wake it.
	upMu sync.Mutex
	upCh chan struct{}
}

// Tier is a replicated database tier. Handlers reach it through Conn
// values (see Conn), which are safe for concurrent use.
type Tier struct {
	backends []*backend // [0] is the primary
	replicas []*replica // backends[1:]
	log      *sqldb.ReplLog
	clk      clock.Clock
	scale    clock.Timescale
	poolSize int
	async    bool
	maxLag   int64

	acquireTimeout time.Duration // paper; <= 0 disables
	failThreshold  int32
	slowThreshold  time.Duration // paper

	next      atomic.Uint64 // round-robin read cursor
	done      chan struct{}
	applyWG   sync.WaitGroup
	closeOnce sync.Once
	// closeMu orders release against Close and against resync engine
	// swaps: once closed is set no new connection can land in a pool
	// channel, and release's stale-engine check is atomic with the swap.
	closeMu sync.Mutex
	closed  bool

	// stateMu orders replica reintegration against sync-mode waiters:
	// the "caught up, back in rotation" flip and the "every active
	// replica applied my commit" check run under it, so a stale replica
	// can never enter the rotation between a writer's wait completing
	// and its reader's next statement. Only atomic loads/stores happen
	// under it.
	stateMu sync.Mutex

	// progCh broadcasts replica apply progress: closed and replaced
	// whenever any replica advances, waking CommitTS / lag waiters.
	progMu sync.Mutex
	progCh chan struct{}

	// leaked holds pool connections deliberately withheld by the leak
	// fault plan, so ReleaseLeaked / Close can return or close them.
	leakMu sync.Mutex
	leaked []*sqldb.Conn

	inUse      metrics.Gauge
	waits      metrics.Counter
	waitTime   metrics.Histogram
	replayErrs metrics.Counter
	ejected    metrics.Counter
	resyncs    metrics.Counter
}

// New builds a tier over primary. Replicas beyond the first are cloned
// from the primary's current contents (schema, rows, auto-increment
// state), so build the tier after the database is populated. With more
// than one backend the tier enables the primary's replication log and
// starts one applier goroutine per replica plus a health-check loop;
// Close stops them and detaches the log.
func New(primary *sqldb.DB, opts Options) *Tier {
	if primary == nil {
		panic("dbtier: nil primary")
	}
	if opts.Conns <= 0 {
		panic("dbtier: non-positive connection pool size")
	}
	if opts.Replicas < 1 {
		opts.Replicas = 1
	}
	if opts.Clock == nil {
		opts.Clock = clock.Real{}
	}
	if opts.Scale <= 0 {
		opts.Scale = clock.RealTime
	}
	if opts.MaxLag <= 0 {
		opts.MaxLag = defaultMaxLag
	}
	if opts.AcquireTimeout == 0 {
		opts.AcquireTimeout = defaultAcquireTimeout
	}
	if opts.FailThreshold <= 0 {
		opts.FailThreshold = defaultFailThreshold
	}
	if opts.SlowThreshold <= 0 {
		opts.SlowThreshold = defaultSlowThreshold
	}
	t := &Tier{
		clk:            opts.Clock,
		scale:          opts.Scale,
		poolSize:       opts.Conns,
		async:          opts.Async,
		maxLag:         int64(opts.MaxLag),
		acquireTimeout: opts.AcquireTimeout,
		failThreshold:  int32(opts.FailThreshold),
		slowThreshold:  opts.SlowThreshold,
		done:           make(chan struct{}),
		progCh:         make(chan struct{}),
	}
	if opts.Replicas > 1 {
		// Enable the log before cloning: every commit after a clone's
		// asOf timestamp is then guaranteed to be in the log.
		t.log = primary.EnableReplLog()
	}
	for i := 0; i < opts.Replicas; i++ {
		db := primary
		b := &backend{}
		if i > 0 {
			clone, asOf := primary.CloneSnapshot()
			r := &replica{b: b, apply: clone.Connect(), upCh: make(chan struct{})}
			r.applied.Store(asOf)
			t.replicas = append(t.replicas, r)
			db = clone
		}
		b.dbv.Store(db)
		pool := make(chan *sqldb.Conn, opts.Conns)
		for j := 0; j < opts.Conns; j++ {
			pool <- db.Connect()
		}
		b.connv.Store(pool)
		t.backends = append(t.backends, b)
	}
	for _, r := range t.replicas {
		t.applyWG.Add(1)
		go t.applyLoop(r)
	}
	if len(t.replicas) > 0 {
		t.applyWG.Add(1)
		go t.healthLoop()
	}
	return t
}

// Conn returns a connection facade for handlers. Unlike a raw
// sqldb.Conn, a tier Conn is safe for concurrent use: every statement
// acquires a pooled backend connection for just its own execution.
func (t *Tier) Conn() *Conn { return &Conn{t: t} }

// Close shuts the tier down: waiting acquisitions fail, applier
// goroutines drain and stop, the primary's replication log is detached
// (so later direct writes no longer accumulate or replicate), and
// pooled connections are closed (connections currently executing are
// closed as they are released). Idempotent.
func (t *Tier) Close() {
	t.closeOnce.Do(func() {
		t.closeMu.Lock()
		t.closed = true
		close(t.done)
		t.closeMu.Unlock()
		t.applyWG.Wait()
		for _, r := range t.replicas {
			r.apply.Close()
		}
		if t.log != nil {
			t.backends[0].db().DisableReplLog()
		}
		// No release can add to a pool once closed is set, so a single
		// drain closes every pooled connection for good.
		for _, b := range t.backends {
			pool := b.pool()
			for drained := false; !drained; {
				select {
				case c := <-pool:
					c.Close()
				default:
					drained = true
				}
			}
		}
		t.leakMu.Lock()
		leaked := t.leaked
		t.leaked = nil
		t.leakMu.Unlock()
		for _, c := range leaked {
			t.inUse.Dec()
			c.Close()
		}
	})
}

// applyLoop is one replica's applier: it tails the primary's log and
// replays each committed statement, in commit order, on the replica's
// dedicated connection. Replay preserves auto-increment determinism
// because the replica started from a commit-consistent clone and
// applies the identical statement stream single-threaded. While the
// backend is down the applier parks; on revival it catches up from the
// log, or from a fresh snapshot clone when the log has been truncated
// past its watermark.
func (t *Tier) applyLoop(r *replica) {
	defer t.applyWG.Done()
	for {
		select {
		case <-t.done:
			return
		default:
		}
		if r.b.down.Load() {
			if !r.waitUp(t.done) {
				return
			}
			continue
		}
		if t.log.Base() > r.applied.Load() {
			// The log no longer reaches back to this replica's
			// watermark (it was ejected long enough for truncation to
			// pass it): resync from a fresh snapshot of the primary.
			if !t.resyncClone(r) {
				return
			}
			t.maybeReintegrate(r)
			continue
		}
		entries, changed := t.log.Since(r.applied.Load())
		if len(entries) == 0 {
			t.maybeReintegrate(r)
			select {
			case <-t.done:
				return
			case <-changed:
			}
			continue
		}
		for _, e := range entries {
			select {
			case <-t.done:
				return
			default:
			}
			if r.b.down.Load() {
				break // died mid-batch; park at the top of the loop
			}
			args := make([]any, len(e.Args))
			for i, v := range e.Args {
				args[i] = v
			}
			if _, err := r.apply.Exec(e.SQL, args...); err != nil {
				t.replayErrs.Inc()
			}
			r.applied.Store(e.TS)
			t.notifyProgress()
		}
		t.maybeReintegrate(r)
		t.log.TruncateThrough(t.truncWatermark())
	}
}

// waitUp parks the applier until the backend is restarted or the tier
// closes; false means closed.
func (r *replica) waitUp(done <-chan struct{}) bool {
	for r.b.down.Load() {
		r.upMu.Lock()
		ch := r.upCh
		r.upMu.Unlock()
		if !r.b.down.Load() {
			return true
		}
		select {
		case <-done:
			return false
		case <-ch:
		}
	}
	return true
}

// resyncClone swaps a stale replica's engine for a fresh snapshot clone
// of the primary, replacing its connection pool and applier connection;
// in-flight connections to the old engine are closed as they release.
// Returns false when the tier closed mid-swap.
func (t *Tier) resyncClone(r *replica) bool {
	clone, asOf := t.backends[0].db().CloneSnapshot()
	newPool := make(chan *sqldb.Conn, t.poolSize)
	for j := 0; j < t.poolSize; j++ {
		newPool <- clone.Connect()
	}
	t.closeMu.Lock()
	if t.closed {
		t.closeMu.Unlock()
		for drained := false; !drained; {
			select {
			case c := <-newPool:
				c.Close()
			default:
				drained = true
			}
		}
		return false
	}
	old := r.b.pool()
	r.b.dbv.Store(clone)
	r.b.connv.Store(newPool)
	for drained := false; !drained; {
		select {
		case c := <-old:
			c.Close()
		default:
			drained = true
		}
	}
	t.closeMu.Unlock()
	r.apply.Close()
	r.apply = clone.Connect()
	r.applied.Store(asOf)
	t.notifyProgress()
	return true
}

// healthLoop runs the periodic health check: it ejects replicas that
// are down or pathologically slow, moves revived replicas to resync,
// and reintegrates caught-up ones. One paper-second cadence on the
// tier's injected clock, so fault experiments replay deterministically
// under clock.Manual.
func (t *Tier) healthLoop() {
	defer t.applyWG.Done()
	tick := t.clk.NewTicker(t.scale.Wall(healthInterval))
	defer tick.Stop()
	for {
		select {
		case <-t.done:
			return
		case <-tick.C():
		}
		for _, r := range t.replicas {
			t.checkHealth(r)
		}
	}
}

// checkHealth advances one replica's health state machine by one tick.
func (t *Tier) checkHealth(r *replica) {
	b := r.b
	healthy := !b.down.Load() && time.Duration(b.delay.Load()) <= t.slowThreshold
	switch b.state.Load() {
	case stateActive:
		if healthy {
			b.fails.Store(0)
			return
		}
		if b.fails.Add(1) >= t.failThreshold {
			t.eject(b)
		}
	case stateEjected:
		if healthy {
			b.fails.Store(0)
			t.stateMu.Lock()
			if b.state.Load() == stateEjected {
				b.state.Store(stateResync)
			}
			t.stateMu.Unlock()
		}
	case stateResync:
		if !healthy {
			t.stateMu.Lock()
			if b.state.Load() == stateResync {
				b.state.Store(stateEjected)
			}
			t.stateMu.Unlock()
			return
		}
		t.maybeReintegrate(r)
	}
}

// eject removes a replica backend from the read rotation. Waiters are
// woken so sync-mode writers stop waiting on the dead replica.
func (t *Tier) eject(b *backend) {
	t.stateMu.Lock()
	if b.state.Load() != stateActive {
		t.stateMu.Unlock()
		return
	}
	b.state.Store(stateEjected)
	t.stateMu.Unlock()
	t.ejected.Inc()
	t.notifyProgress()
}

// noteFailure records a statement failure against a backend; enough
// consecutive failures eject a replica without waiting for the next
// health tick. The primary is never ejected.
func (t *Tier) noteFailure(b *backend) {
	if b == t.backends[0] {
		return
	}
	if b.state.Load() != stateActive {
		return
	}
	if b.fails.Add(1) >= t.failThreshold {
		t.eject(b)
	}
}

// maybeReintegrate returns a resyncing replica to the read rotation
// once it has applied everything committed so far. The check and the
// state flip happen under stateMu — the same lock sync-mode waiters
// check under — so a write can never complete its replication wait
// while a replica that missed it is entering the rotation.
func (t *Tier) maybeReintegrate(r *replica) {
	b := r.b
	if b.state.Load() != stateResync {
		return
	}
	t.stateMu.Lock()
	if b.state.Load() == stateResync && r.applied.Load() >= t.backends[0].db().CommitTS() {
		b.state.Store(stateActive)
		b.fails.Store(0)
		t.stateMu.Unlock()
		t.resyncs.Inc()
		t.notifyProgress()
		return
	}
	t.stateMu.Unlock()
}

// ---- fault injection surface ----

// KillBackend marks replica backend i (1-based index into Backends;
// the primary cannot be killed) as down: statements on it fail, its
// applier parks, and the health loop ejects it from the rotation.
func (t *Tier) KillBackend(i int) error {
	if i <= 0 || i >= len(t.backends) {
		return fmt.Errorf("dbtier: kill: no replica backend %d", i)
	}
	t.backends[i].down.Store(true)
	return nil
}

// RestartBackend revives a killed replica backend: its applier wakes
// and catches up (replaying the log, or resyncing from a snapshot
// clone when the log has been truncated past its watermark), and the
// replica reintegrates into the rotation once caught up.
func (t *Tier) RestartBackend(i int) error {
	if i <= 0 || i >= len(t.backends) {
		return fmt.Errorf("dbtier: restart: no replica backend %d", i)
	}
	t.backends[i].down.Store(false)
	r := t.replicas[i-1]
	r.upMu.Lock()
	close(r.upCh)
	r.upCh = make(chan struct{})
	r.upMu.Unlock()
	return nil
}

// SetBackendDelay injects d of added paper-time latency into every
// statement executed on backend i (0 is the primary). Delays beyond
// SlowThreshold get a replica ejected from the rotation; zero clears
// the injection.
func (t *Tier) SetBackendDelay(i int, d time.Duration) error {
	if i < 0 || i >= len(t.backends) {
		return fmt.Errorf("dbtier: delay: no backend %d", i)
	}
	if d < 0 {
		d = 0
	}
	t.backends[i].delay.Store(int64(d))
	return nil
}

// LeakConns withholds up to n primary-pool connections without
// releasing them (n <= 0 means every currently idle one), simulating a
// connection leak. Returns how many were taken. Leaked connections
// count as in-use until ReleaseLeaked or Close.
func (t *Tier) LeakConns(n int) int {
	pool := t.backends[0].pool()
	t.leakMu.Lock()
	defer t.leakMu.Unlock()
	got := 0
	for n <= 0 || got < n {
		select {
		case c := <-pool:
			t.inUse.Inc()
			t.leaked = append(t.leaked, c)
			got++
		default:
			return got
		}
	}
	return got
}

// ReleaseLeaked returns every leaked connection to the primary pool,
// reporting how many were released.
func (t *Tier) ReleaseLeaked() int {
	t.leakMu.Lock()
	leaked := t.leaked
	t.leaked = nil
	t.leakMu.Unlock()
	for _, c := range leaked {
		t.release(t.backends[0], c)
	}
	return len(leaked)
}

// ---- replication waits ----

// notifyProgress wakes everything blocked on replica apply progress.
func (t *Tier) notifyProgress() {
	t.progMu.Lock()
	close(t.progCh)
	t.progCh = make(chan struct{})
	t.progMu.Unlock()
}

// progress returns the current progress broadcast channel.
func (t *Tier) progress() <-chan struct{} {
	t.progMu.Lock()
	ch := t.progCh
	t.progMu.Unlock()
	return ch
}

// minActiveAppliedLocked reports the slowest in-rotation replica's
// applied commit timestamp; with none in rotation, the primary's
// CommitTS (writers have nothing to wait for). Callers hold stateMu.
func (t *Tier) minActiveAppliedLocked() int64 {
	min := int64(-1)
	for _, r := range t.replicas {
		if r.b.state.Load() != stateActive {
			continue
		}
		if a := r.applied.Load(); min < 0 || a < min {
			min = a
		}
	}
	if min < 0 {
		return t.backends[0].db().CommitTS()
	}
	return min
}

// minActiveApplied is minActiveAppliedLocked under stateMu.
func (t *Tier) minActiveApplied() int64 {
	t.stateMu.Lock()
	m := t.minActiveAppliedLocked()
	t.stateMu.Unlock()
	return m
}

// truncWatermark reports the replication-log truncation point: the
// slowest non-ejected replica's applied timestamp. Ejected replicas
// are excluded — a dead replica must not pin the log forever; if
// truncation passes its watermark it resyncs from a snapshot clone on
// revival.
func (t *Tier) truncWatermark() int64 {
	min := int64(-1)
	for _, r := range t.replicas {
		if r.b.state.Load() == stateEjected {
			continue
		}
		if a := r.applied.Load(); min < 0 || a < min {
			min = a
		}
	}
	if min < 0 {
		return t.backends[0].db().CommitTS()
	}
	return min
}

// waitApplied blocks until every in-rotation replica has applied ts,
// or the tier closes (the write already committed on the primary, so
// closing is not an error for the writer). Ejection wakes waiters, so
// a dead replica delays writers by at most the ejection threshold.
func (t *Tier) waitApplied(ts int64) {
	for t.minActiveApplied() < ts {
		ch := t.progress()
		if t.minActiveApplied() >= ts {
			return
		}
		select {
		case <-ch:
		case <-t.done:
			return
		}
	}
}

// waitLag blocks while the slowest in-rotation replica trails ts by
// more than MaxLag — async mode's bounded-staleness backpressure.
func (t *Tier) waitLag(ts int64) {
	for ts-t.minActiveApplied() > t.maxLag {
		ch := t.progress()
		if ts-t.minActiveApplied() <= t.maxLag {
			return
		}
		select {
		case <-ch:
		case <-t.done:
			return
		}
	}
}

// Sync blocks until every in-rotation replica has applied every
// statement committed on the primary so far — the barrier tests and
// direct primary writers use to observe a converged tier.
func (t *Tier) Sync() {
	if len(t.replicas) == 0 {
		return
	}
	t.waitApplied(t.backends[0].db().CommitTS())
}

// ---- connection pool ----

// acquire obtains a pooled connection to backend b, blocking until one
// frees up, the paper-time acquisition deadline passes, or the tier
// closes. Waits are counted and timed through the injected clock.
func (t *Tier) acquire(b *backend) (*sqldb.Conn, error) {
	select {
	case <-t.done:
		return nil, ErrTierClosed
	default:
	}
	pool := b.pool()
	// Fast path: no blocking.
	select {
	case c := <-pool:
		t.inUse.Inc()
		return c, nil
	default:
	}
	t.waits.Inc()
	start := t.clk.Now()
	var timeout <-chan time.Time
	if t.acquireTimeout > 0 {
		timeout = t.clk.After(t.scale.Wall(t.acquireTimeout))
	}
	select {
	case c := <-pool:
		t.waitTime.Observe(t.clk.Since(start))
		t.inUse.Inc()
		return c, nil
	case <-timeout:
		t.waitTime.Observe(t.clk.Since(start))
		return nil, ErrAcquireTimeout
	case <-t.done:
		return nil, ErrTierClosed
	}
}

// release returns a pooled connection; after Close, or when the
// backend's engine was swapped by a resync while the statement ran, the
// connection is closed instead.
func (t *Tier) release(b *backend, c *sqldb.Conn) {
	t.inUse.Dec()
	t.closeMu.Lock()
	if t.closed {
		t.closeMu.Unlock()
		c.Close()
		return
	}
	if c.DB() != b.db() {
		t.closeMu.Unlock()
		c.Close()
		return
	}
	select {
	case b.pool() <- c:
		t.closeMu.Unlock()
	default:
		t.closeMu.Unlock()
		panic("dbtier: released more connections than acquired")
	}
}

// queryOn executes one SELECT on backend b, applying any injected
// latency and failing fast when the backend is down.
func (t *Tier) queryOn(b *backend, sql string, args ...any) (*sqldb.ResultSet, error) {
	if b.down.Load() {
		return nil, ErrBackendDown
	}
	bc, err := t.acquire(b)
	if err != nil {
		return nil, err
	}
	defer t.release(b, bc)
	if d := b.delay.Load(); d > 0 {
		t.clk.Sleep(t.scale.Wall(time.Duration(d)))
	}
	if b.down.Load() {
		return nil, ErrBackendDown // died while we held the connection
	}
	return bc.Query(sql, args...)
}

// ---- introspection ----

// Replicas reports the number of backend engines, primary included.
func (t *Tier) Replicas() int { return len(t.backends) }

// Size reports the connection pool size per backend.
func (t *Tier) Size() int { return t.poolSize }

// Async reports whether the tier replicates asynchronously.
func (t *Tier) Async() bool { return t.async }

// Primary returns the primary engine.
func (t *Tier) Primary() *sqldb.DB { return t.backends[0].db() }

// Backends lists every engine, primary first. Resyncs swap replica
// engines, so the slice reflects the tier at the time of the call.
func (t *Tier) Backends() []*sqldb.DB {
	out := make([]*sqldb.DB, len(t.backends))
	for i, b := range t.backends {
		out[i] = b.db()
	}
	return out
}

// ActiveBackends reports how many backends are in the read rotation,
// primary included.
func (t *Tier) ActiveBackends() int {
	n := 1 // the primary is always in rotation
	for _, r := range t.replicas {
		if r.b.state.Load() == stateActive {
			n++
		}
	}
	return n
}

// InUse reports how many pooled connections are currently executing,
// across all backends.
func (t *Tier) InUse() int { return int(t.inUse.Value()) }

// WaitCount reports how many acquisitions had to block.
func (t *Tier) WaitCount() int64 { return t.waits.Value() }

// WaitTimes exposes the acquisition wait-time histogram (measured
// through the tier's clock).
func (t *Tier) WaitTimes() *metrics.Histogram { return &t.waitTime }

// QueryCount reports statements executed across all backends; replayed
// writes count once per backend they were applied to.
func (t *Tier) QueryCount() int64 {
	var n int64
	for _, b := range t.backends {
		n += b.db().QueryCount()
	}
	return n
}

// Conflicts reports first-writer-wins aborts across all backends
// (replicas replay single-threaded, so in practice this is the
// primary's count).
func (t *Tier) Conflicts() int64 {
	var n int64
	for _, b := range t.backends {
		n += b.db().Conflicts()
	}
	return n
}

// SnapshotReads reports MVCC snapshot-served statements across all
// backends.
func (t *Tier) SnapshotReads() int64 {
	var n int64
	for _, b := range t.backends {
		n += b.db().SnapshotReads()
	}
	return n
}

// PlanScans reports full-scan access paths executed across all
// backends.
func (t *Tier) PlanScans() int64 {
	var n int64
	for _, b := range t.backends {
		n += b.db().PlanScans()
	}
	return n
}

// PlanIndexLookups reports index access paths executed across all
// backends.
func (t *Tier) PlanIndexLookups() int64 {
	var n int64
	for _, b := range t.backends {
		n += b.db().PlanIndexLookups()
	}
	return n
}

// PlanRowsRead reports row versions visited by access paths across all
// backends.
func (t *Tier) PlanRowsRead() int64 {
	var n int64
	for _, b := range t.backends {
		n += b.db().PlanRowsRead()
	}
	return n
}

// StmtCacheHits reports prepared-statement cache hits across all
// backends.
func (t *Tier) StmtCacheHits() int64 {
	var n int64
	for _, b := range t.backends {
		n += b.db().StmtCacheHits()
	}
	return n
}

// StmtCacheMisses reports prepared-statement cache misses across all
// backends.
func (t *Tier) StmtCacheMisses() int64 {
	var n int64
	for _, b := range t.backends {
		n += b.db().StmtCacheMisses()
	}
	return n
}

// ReplLag reports how many commits the slowest in-rotation replica
// currently trails the primary — zero with no replicas, bounded by
// MaxLag under async backpressure, and transiently nonzero even in
// sync mode (the wait happens in Exec, not under a lock).
func (t *Tier) ReplLag() int64 {
	if len(t.replicas) == 0 {
		return 0
	}
	lag := t.backends[0].db().CommitTS() - t.minActiveApplied()
	if lag < 0 {
		return 0
	}
	return lag
}

// ReplayErrors reports replica statements that failed to apply — zero in
// a healthy tier, since replicas replay the primary's exact statement
// stream from an identical starting state.
func (t *Tier) ReplayErrors() int64 { return t.replayErrs.Value() }

// Ejected reports replicas ejected from the read rotation so far
// (cumulative; an eject/reintegrate/eject cycle counts twice).
func (t *Tier) Ejected() int64 { return t.ejected.Value() }

// Resyncs reports replicas reintegrated into the read rotation after
// catching up (by log replay or snapshot resync).
func (t *Tier) Resyncs() int64 { return t.resyncs.Value() }

// Conn is the handler-facing connection facade: the same Query/Exec
// shape as a *sqldb.Conn, with reads routed round-robin across backends
// and writes executed on the primary and shipped through the
// replication log.
type Conn struct {
	t *Tier
}

// Query executes a SELECT on the next backend in the read rotation,
// failing over past ejected, dead, and pool-starved backends: a read
// only fails once every backend has been tried.
func (c *Conn) Query(sql string, args ...any) (*sqldb.ResultSet, error) {
	t := c.t
	n := uint64(len(t.backends))
	cursor := t.next.Add(1)
	var lastErr error
	for k := uint64(0); k < n; k++ {
		idx := int((cursor + k) % n)
		b := t.backends[idx]
		if idx != 0 && b.state.Load() != stateActive {
			continue
		}
		res, err := t.queryOn(b, sql, args...)
		if err == nil {
			b.fails.Store(0)
			return res, nil
		}
		if errors.Is(err, ErrBackendDown) || errors.Is(err, ErrAcquireTimeout) {
			t.noteFailure(b)
			lastErr = err
			continue
		}
		return nil, err // genuine statement error: do not mask it
	}
	if lastErr == nil {
		lastErr = ErrBackendDown
	}
	return nil, lastErr
}

// Exec executes a DML statement on the primary. In sync mode it then
// waits (holding no pooled connection) until every in-rotation replica
// has applied the statement; in async mode it returns immediately
// unless the slowest in-rotation replica is more than MaxLag commits
// behind.
func (c *Conn) Exec(sql string, args ...any) (sqldb.ExecResult, error) {
	b := c.t.backends[0]
	bc, err := c.t.acquire(b)
	if err != nil {
		return sqldb.ExecResult{}, err
	}
	if d := b.delay.Load(); d > 0 {
		c.t.clk.Sleep(c.t.scale.Wall(time.Duration(d)))
	}
	res, err := bc.Exec(sql, args...)
	c.t.release(b, bc) // before any replication wait: don't hold the pool slot
	if err != nil || len(c.t.replicas) == 0 {
		return res, err
	}
	if c.t.async {
		c.t.waitLag(res.CommitTS)
	} else {
		c.t.waitApplied(res.CommitTS)
	}
	return res, nil
}
