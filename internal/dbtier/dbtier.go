// Package dbtier fronts a replicated database tier: one primary sqldb.DB
// plus N-1 read replicas cloned from it, behind the same Conn-shaped
// Query/Exec surface application handlers already use. Reads are routed
// round-robin across every backend; DML is executed on the primary and
// fanned out synchronously to every replica (via the primary's
// sqldb.ApplyFunc hook, which fires under the table's write lock), so the
// embedded engines stay byte-for-byte consistent and a handler always
// reads its own writes.
//
// The tier also owns the "precious database connection resources" the
// DSN'09 paper husbands: each backend engine has a fixed pool of
// connections (absorbing the former internal/dbpool package), and every
// statement acquires one through an instrumented path — an in-use gauge,
// a wait counter, and a wait-time histogram, surfaced by the server
// variants as the db.inuse / db.wait / db.queries probes. Because a
// pooled connection executes one statement at a time, the per-backend
// pool size is also the engine's statement concurrency: a single backend
// saturates once its pool is busy, and adding replicas multiplies read
// capacity while writes pay the fan-out on every backend.
package dbtier

import (
	"errors"
	"sync"
	"sync/atomic"

	"stagedweb/internal/clock"
	"stagedweb/internal/metrics"
	"stagedweb/internal/sqldb"
)

// ErrTierClosed is returned by statement execution after Close.
var ErrTierClosed = errors.New("dbtier: tier closed")

// Options configures a Tier.
type Options struct {
	// Replicas is the total number of backend engines, primary included.
	// Values below 1 mean 1: just the primary, no fan-out — exactly the
	// single-database behavior the tier replaces.
	Replicas int
	// Conns is the connection pool size per backend — the per-engine
	// statement concurrency. It must be positive.
	Conns int
	// Clock times acquisition waits; defaults to the real clock.
	Clock clock.Clock
}

// backend is one engine plus its bounded connection pool.
type backend struct {
	db    *sqldb.DB
	conns chan *sqldb.Conn
}

// Tier is a replicated database tier. Handlers reach it through Conn
// values (see Conn), which are safe for concurrent use.
type Tier struct {
	backends []*backend // [0] is the primary
	clk      clock.Clock
	poolSize int

	next      atomic.Uint64 // round-robin read cursor
	done      chan struct{}
	closeOnce sync.Once
	// closeMu orders release against Close: once closed is set no new
	// connection can land in a pool channel, so Close's drain is final.
	closeMu sync.Mutex
	closed  bool

	inUse      metrics.Gauge
	waits      metrics.Counter
	waitTime   metrics.Histogram
	replayErrs metrics.Counter
}

// New builds a tier over primary. Replicas beyond the first are cloned
// from the primary's current contents (schema, rows, auto-increment
// state), so build the tier after the database is populated. With more
// than one backend the tier installs the primary's apply hook; Close
// removes it.
func New(primary *sqldb.DB, opts Options) *Tier {
	if primary == nil {
		panic("dbtier: nil primary")
	}
	if opts.Conns <= 0 {
		panic("dbtier: non-positive connection pool size")
	}
	if opts.Replicas < 1 {
		opts.Replicas = 1
	}
	if opts.Clock == nil {
		opts.Clock = clock.Real{}
	}
	t := &Tier{
		clk:      opts.Clock,
		poolSize: opts.Conns,
		done:     make(chan struct{}),
	}
	for i := 0; i < opts.Replicas; i++ {
		db := primary
		if i > 0 {
			db = primary.Clone()
		}
		b := &backend{db: db, conns: make(chan *sqldb.Conn, opts.Conns)}
		for j := 0; j < opts.Conns; j++ {
			b.conns <- db.Connect()
		}
		t.backends = append(t.backends, b)
	}
	if len(t.backends) > 1 {
		primary.SetApplyHook(t.replay)
	}
	return t
}

// Conn returns a connection facade for handlers. Unlike a raw
// sqldb.Conn, a tier Conn is safe for concurrent use: every statement
// acquires a pooled backend connection for just its own execution.
func (t *Tier) Conn() *Conn { return &Conn{t: t} }

// Close shuts the tier down: waiting acquisitions fail, pooled
// connections are closed (connections currently executing are closed as
// they are released), and the primary's apply hook is removed.
// Idempotent.
func (t *Tier) Close() {
	t.closeOnce.Do(func() {
		t.closeMu.Lock()
		t.closed = true
		close(t.done)
		t.closeMu.Unlock()
		t.backends[0].db.SetApplyHook(nil)
		// No release can add to a pool once closed is set, so a single
		// drain closes every pooled connection for good.
		for _, b := range t.backends {
			for drained := false; !drained; {
				select {
				case c := <-b.conns:
					c.Close()
				default:
					drained = true
				}
			}
		}
	})
}

// acquire obtains a pooled connection to backend b, blocking until one
// frees up or the tier closes. Waits are counted and timed through the
// injected clock.
func (t *Tier) acquire(b *backend) (*sqldb.Conn, error) {
	select {
	case <-t.done:
		return nil, ErrTierClosed
	default:
	}
	// Fast path: no blocking.
	select {
	case c := <-b.conns:
		t.inUse.Inc()
		return c, nil
	default:
	}
	t.waits.Inc()
	start := t.clk.Now()
	select {
	case c := <-b.conns:
		t.waitTime.Observe(t.clk.Since(start))
		t.inUse.Inc()
		return c, nil
	case <-t.done:
		return nil, ErrTierClosed
	}
}

// release returns a pooled connection; after Close it is closed instead.
func (t *Tier) release(b *backend, c *sqldb.Conn) {
	t.inUse.Dec()
	t.closeMu.Lock()
	if t.closed {
		t.closeMu.Unlock()
		c.Close()
		return
	}
	select {
	case b.conns <- c:
		t.closeMu.Unlock()
	default:
		t.closeMu.Unlock()
		panic("dbtier: released more connections than acquired")
	}
}

// readBackend picks the next backend in the read rotation. The modulo
// runs in uint64 so the cursor's eventual wrap can never yield a
// negative index, even where int is 32 bits.
func (t *Tier) readBackend() *backend {
	return t.backends[int(t.next.Add(1)%uint64(len(t.backends)))]
}

// replay applies one DML statement to every replica, in parallel, and
// waits for all of them — the synchronous write fan-out. It runs as the
// primary's apply hook, under the primary's table write lock, which
// serializes same-table DML across the whole tier and keeps replica
// auto-increment assignment identical to the primary's.
func (t *Tier) replay(sql string, args []sqldb.Value) {
	anyArgs := make([]any, len(args))
	for i, v := range args {
		anyArgs[i] = v
	}
	var wg sync.WaitGroup
	for _, b := range t.backends[1:] {
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			c, err := t.acquire(b)
			if err != nil {
				t.replayErrs.Inc()
				return
			}
			defer t.release(b, c)
			if _, err := c.Exec(sql, anyArgs...); err != nil {
				t.replayErrs.Inc()
			}
		}(b)
	}
	wg.Wait()
}

// ---- introspection ----

// Replicas reports the number of backend engines, primary included.
func (t *Tier) Replicas() int { return len(t.backends) }

// Size reports the connection pool size per backend.
func (t *Tier) Size() int { return t.poolSize }

// Primary returns the primary engine.
func (t *Tier) Primary() *sqldb.DB { return t.backends[0].db }

// Backends lists every engine, primary first.
func (t *Tier) Backends() []*sqldb.DB {
	out := make([]*sqldb.DB, len(t.backends))
	for i, b := range t.backends {
		out[i] = b.db
	}
	return out
}

// InUse reports how many pooled connections are currently executing,
// across all backends.
func (t *Tier) InUse() int { return int(t.inUse.Value()) }

// WaitCount reports how many acquisitions had to block.
func (t *Tier) WaitCount() int64 { return t.waits.Value() }

// WaitTimes exposes the acquisition wait-time histogram (measured
// through the tier's clock).
func (t *Tier) WaitTimes() *metrics.Histogram { return &t.waitTime }

// QueryCount reports statements executed across all backends; replayed
// writes count once per backend they were applied to.
func (t *Tier) QueryCount() int64 {
	var n int64
	for _, b := range t.backends {
		n += b.db.QueryCount()
	}
	return n
}

// ReplayErrors reports replica statements that failed to apply — zero in
// a healthy tier, since replicas replay the primary's exact statement
// stream from an identical starting state.
func (t *Tier) ReplayErrors() int64 { return t.replayErrs.Value() }

// Conn is the handler-facing connection facade: the same Query/Exec
// shape as a *sqldb.Conn, with reads routed round-robin across backends
// and writes executed on the primary (whose apply hook fans them out).
type Conn struct {
	t *Tier
}

// Query executes a SELECT on the next backend in the read rotation.
func (c *Conn) Query(sql string, args ...any) (*sqldb.ResultSet, error) {
	b := c.t.readBackend()
	bc, err := c.t.acquire(b)
	if err != nil {
		return nil, err
	}
	defer c.t.release(b, bc)
	return bc.Query(sql, args...)
}

// Exec executes a DML statement on the primary; with replicas present
// the statement is synchronously replayed to every one of them before
// Exec returns.
func (c *Conn) Exec(sql string, args ...any) (sqldb.ExecResult, error) {
	b := c.t.backends[0]
	bc, err := c.t.acquire(b)
	if err != nil {
		return sqldb.ExecResult{}, err
	}
	defer c.t.release(b, bc)
	return bc.Exec(sql, args...)
}
