package dbtier

import (
	"fmt"
	"sync"
	"testing"
)

// TestAsyncReplicationConverges: async writes return before replicas
// apply, but after a Sync barrier every backend is byte-identical —
// including auto-assigned primary keys, which proves log replay
// preserves determinism.
func TestAsyncReplicationConverges(t *testing.T) {
	db := newTierDB(t)
	db.SetMVCC(true)
	tier := New(db, Options{Replicas: 3, Conns: 2, Async: true})
	defer tier.Close()
	if !tier.Async() {
		t.Fatal("tier not async")
	}
	c := tier.Conn()
	var lastID int64
	for i := 0; i < 50; i++ {
		res, err := c.Exec("INSERT INTO kv (id, v) VALUES (NULL, ?)", fmt.Sprintf("burst-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		lastID = res.LastInsertID
	}
	tier.Sync()
	if lag := tier.ReplLag(); lag != 0 {
		t.Fatalf("ReplLag after Sync = %d", lag)
	}
	for i, b := range tier.Backends() {
		bc := b.Connect()
		rs, err := bc.Query("SELECT COUNT(*) AS n FROM kv")
		if err != nil || rs.Int(0, "n") != 55 {
			t.Fatalf("backend %d has %d rows, err %v; want 55", i, rs.Int(0, "n"), err)
		}
		rs, err = bc.Query("SELECT v FROM kv WHERE id = ?", lastID)
		if err != nil || rs.Str(0, "v") != "burst-49" {
			t.Fatalf("backend %d auto-id drift: id %d = %q, err %v", i, lastID, rs.Str(0, "v"), err)
		}
		bc.Close()
	}
	if tier.ReplayErrors() != 0 {
		t.Fatalf("replay errors = %d", tier.ReplayErrors())
	}
}

// TestAsyncBoundedStaleness: writers are backpressured once the slowest
// replica trails by more than MaxLag, so the lag probe can never grow
// without bound.
func TestAsyncBoundedStaleness(t *testing.T) {
	db := newTierDB(t)
	tier := New(db, Options{Replicas: 2, Conns: 2, Async: true, MaxLag: 4})
	defer tier.Close()
	c := tier.Conn()
	for i := 0; i < 200; i++ {
		if _, err := c.Exec("UPDATE kv SET v = ? WHERE id = 1", fmt.Sprintf("w%d", i)); err != nil {
			t.Fatal(err)
		}
		if lag := tier.ReplLag(); lag > 4 {
			t.Fatalf("lag %d exceeded MaxLag 4 after write %d", lag, i)
		}
	}
	tier.Sync()
}

// TestSyncModeReadYourWrites: in sync mode (the default) every replica
// has applied a write before Exec returns, so an immediate read from
// any backend in the rotation observes it — the pre-MVCC external
// contract, now enforced by a CommitTS wait instead of a table lock.
func TestSyncModeReadYourWrites(t *testing.T) {
	db := newTierDB(t)
	tier := New(db, Options{Replicas: 3, Conns: 2})
	defer tier.Close()
	c := tier.Conn()
	for i := 0; i < 30; i++ {
		want := fmt.Sprintf("v%d", i)
		if _, err := c.Exec("UPDATE kv SET v = ? WHERE id = 2", want); err != nil {
			t.Fatal(err)
		}
		// Hit every backend in the rotation.
		for r := 0; r < tier.Replicas(); r++ {
			rs, err := c.Query("SELECT v FROM kv WHERE id = 2")
			if err != nil || rs.Str(0, "v") != want {
				t.Fatalf("write %d not visible on rotation read %d: got %q, err %v", i, r, rs.Str(0, "v"), err)
			}
		}
	}
}

// TestConcurrentWritersMVCCTier: many goroutines writing through an
// MVCC tier; conflicts are retried inside sqldb, replicas replay the
// winning stream, and everything converges.
func TestConcurrentWritersMVCCTier(t *testing.T) {
	db := newTierDB(t)
	db.SetMVCC(true)
	tier := New(db, Options{Replicas: 2, Conns: 4, Async: true})
	defer tier.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := tier.Conn()
			for i := 0; i < 20; i++ {
				if _, err := c.Exec("UPDATE kv SET v = ? WHERE id = 3", fmt.Sprintf("w%d-%d", w, i)); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	tier.Sync()
	var vals []string
	for i, b := range tier.Backends() {
		bc := b.Connect()
		rs, err := bc.Query("SELECT v FROM kv WHERE id = 3")
		if err != nil {
			t.Fatal(err)
		}
		vals = append(vals, rs.Str(0, "v"))
		bc.Close()
		if i > 0 && vals[i] != vals[0] {
			t.Fatalf("backends diverged: %v", vals)
		}
	}
	if tier.ReplayErrors() != 0 {
		t.Fatalf("replay errors = %d", tier.ReplayErrors())
	}
}

// TestLogTruncation: the tier advances the log's base through the
// replica watermark, so a long-lived tier does not accumulate its whole
// write history.
func TestLogTruncation(t *testing.T) {
	db := newTierDB(t)
	tier := New(db, Options{Replicas: 2, Conns: 1})
	defer tier.Close()
	c := tier.Conn()
	for i := 0; i < 500; i++ {
		if _, err := c.Exec("UPDATE kv SET v = ? WHERE id = 4", fmt.Sprintf("t%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	tier.Sync()
	// One more write forces a truncation pass after the barrier.
	if _, err := c.Exec("UPDATE kv SET v = 'last' WHERE id = 4"); err != nil {
		t.Fatal(err)
	}
	if l := db.ReplLog(); l == nil || l.Len() > 50 {
		t.Fatalf("log retained %v entries; truncation not advancing", l.Len())
	}
}
