package dbtier

import (
	"sync"
	"testing"
	"time"

	"stagedweb/internal/sqldb"
)

func newTierDB(t *testing.T) *sqldb.DB {
	t.Helper()
	db := sqldb.Open(sqldb.Options{Cost: sqldb.ZeroCostModel()})
	db.MustCreateTable(sqldb.Schema{
		Table: "kv",
		Columns: []sqldb.Column{
			{Name: "id", Type: sqldb.Int},
			{Name: "v", Type: sqldb.String},
		},
		PrimaryKey: "id",
	})
	c := db.Connect()
	defer c.Close()
	for i := 1; i <= 5; i++ {
		if _, err := c.Exec("INSERT INTO kv (id, v) VALUES (?, ?)", i, "seed"); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestSingleBackendPassThrough(t *testing.T) {
	db := newTierDB(t)
	tier := New(db, Options{Replicas: 1, Conns: 2})
	defer tier.Close()
	if tier.Replicas() != 1 {
		t.Fatalf("Replicas = %d", tier.Replicas())
	}
	c := tier.Conn()
	if _, err := c.Exec("INSERT INTO kv (id, v) VALUES (6, 'x')"); err != nil {
		t.Fatal(err)
	}
	rs, err := c.Query("SELECT v FROM kv WHERE id = 6")
	if err != nil || rs.Len() != 1 {
		t.Fatalf("read own write: %v rows, err %v", rs.Len(), err)
	}
}

// TestReadsRoundRobin proves reads spread across every backend: with R
// backends and R*k queries, each backend executes exactly k of them.
func TestReadsRoundRobin(t *testing.T) {
	db := newTierDB(t)
	tier := New(db, Options{Replicas: 3, Conns: 2})
	defer tier.Close()
	c := tier.Conn()
	before := make([]int64, 3)
	for i, b := range tier.Backends() {
		before[i] = b.QueryCount()
	}
	const rounds = 4
	for i := 0; i < 3*rounds; i++ {
		if _, err := c.Query("SELECT v FROM kv WHERE id = 1"); err != nil {
			t.Fatal(err)
		}
	}
	for i, b := range tier.Backends() {
		if got := b.QueryCount() - before[i]; got != rounds {
			t.Fatalf("backend %d executed %d reads, want %d", i, got, rounds)
		}
	}
}

// TestWriteFanOut proves DML through the tier lands on every backend
// before Exec returns, with identical auto-assigned primary keys.
func TestWriteFanOut(t *testing.T) {
	db := newTierDB(t)
	tier := New(db, Options{Replicas: 3, Conns: 2})
	defer tier.Close()
	c := tier.Conn()
	res, err := c.Exec("INSERT INTO kv (id, v) VALUES (NULL, 'fanned')")
	if err != nil {
		t.Fatal(err)
	}
	if res.LastInsertID != 6 {
		t.Fatalf("LastInsertID = %d, want 6", res.LastInsertID)
	}
	for i, b := range tier.Backends() {
		n, err := b.TableSize("kv")
		if err != nil || n != 6 {
			t.Fatalf("backend %d: TableSize = %d, %v; want 6", i, n, err)
		}
		bc := b.Connect()
		rs, err := bc.Query("SELECT v FROM kv WHERE id = 6")
		bc.Close()
		if err != nil || rs.Len() != 1 || rs.Str(0, "v") != "fanned" {
			t.Fatalf("backend %d missed the write: %v rows, err %v", i, rs.Len(), err)
		}
	}
	if tier.ReplayErrors() != 0 {
		t.Fatalf("replay errors = %d", tier.ReplayErrors())
	}
}

// TestDirectPrimaryWritesReplicate proves writes that bypass the tier's
// connections (e.g. a populate step run directly against the primary)
// still reach every replica through the replication log. Replication is
// asynchronous now, so observing it takes a Sync barrier.
func TestDirectPrimaryWritesReplicate(t *testing.T) {
	db := newTierDB(t)
	tier := New(db, Options{Replicas: 2, Conns: 1})
	defer tier.Close()
	c := db.Connect()
	defer c.Close()
	if _, err := c.Exec("UPDATE kv SET v = 'direct' WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	tier.Sync()
	replica := tier.Backends()[1]
	rc := replica.Connect()
	defer rc.Close()
	rs, err := rc.Query("SELECT v FROM kv WHERE id = 1")
	if err != nil || rs.Str(0, "v") != "direct" {
		t.Fatalf("replica v = %q, err %v; want \"direct\"", rs.Str(0, "v"), err)
	}
}

// TestAcquireWaitMetrics proves the instrumented acquisition path: with
// a single pooled connection held, a second statement blocks, and the
// wait count, wait-time histogram, and in-use gauge all record it.
func TestAcquireWaitMetrics(t *testing.T) {
	db := newTierDB(t)
	tier := New(db, Options{Replicas: 1, Conns: 1})
	defer tier.Close()

	b := tier.backends[0]
	held, err := tier.acquire(b)
	if err != nil {
		t.Fatal(err)
	}
	if tier.InUse() != 1 {
		t.Fatalf("InUse = %d, want 1", tier.InUse())
	}

	done := make(chan error, 1)
	go func() {
		_, err := tier.Conn().Query("SELECT v FROM kv WHERE id = 1")
		done <- err
	}()
	// Wait until the query has registered its blocked acquisition.
	deadline := time.Now().Add(2 * time.Second)
	for tier.WaitCount() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("query never blocked on acquisition")
		}
		time.Sleep(100 * time.Microsecond)
	}
	tier.release(b, held)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if tier.WaitCount() != 1 {
		t.Fatalf("WaitCount = %d, want 1", tier.WaitCount())
	}
	if tier.WaitTimes().Count() != 1 {
		t.Fatalf("wait-time histogram count = %d, want 1", tier.WaitTimes().Count())
	}
	if tier.InUse() != 0 {
		t.Fatalf("InUse after release = %d, want 0", tier.InUse())
	}
}

func TestCloseReleasesConnections(t *testing.T) {
	db := newTierDB(t)
	tier := New(db, Options{Replicas: 2, Conns: 3})
	c := tier.Conn()
	if _, err := c.Query("SELECT v FROM kv WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	tier.Close()
	tier.Close() // idempotent
	for i, b := range tier.Backends() {
		if n := b.OpenConns(); n != 0 {
			t.Fatalf("backend %d still has %d open connections", i, n)
		}
	}
	if _, err := c.Query("SELECT v FROM kv WHERE id = 1"); err != ErrTierClosed {
		t.Fatalf("Query after Close = %v, want ErrTierClosed", err)
	}
	if _, err := c.Exec("DELETE FROM kv WHERE id = 1"); err != ErrTierClosed {
		t.Fatalf("Exec after Close = %v, want ErrTierClosed", err)
	}
	// The apply hook is removed: direct primary writes no longer replay.
	pc := db.Connect()
	defer pc.Close()
	if _, err := pc.Exec("INSERT INTO kv (id, v) VALUES (100, 'late')"); err != nil {
		t.Fatal(err)
	}
	if n, _ := tier.Backends()[1].TableSize("kv"); n != 5 {
		t.Fatalf("replica size after Close = %d, want 5", n)
	}
}

// TestConcurrentMixedLoad hammers a replicated tier with concurrent
// readers and writers and then checks every backend converged to the
// same contents — the consistency the synchronous fan-out guarantees.
func TestConcurrentMixedLoad(t *testing.T) {
	db := newTierDB(t)
	tier := New(db, Options{Replicas: 3, Conns: 4})
	defer tier.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := tier.Conn()
			for i := 0; i < 25; i++ {
				if i%5 == 0 {
					if _, err := c.Exec("INSERT INTO kv (id, v) VALUES (NULL, ?)", "w"); err != nil {
						t.Error(err)
						return
					}
				} else if _, err := c.Query("SELECT v FROM kv WHERE id = ?", i%5+1); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if tier.ReplayErrors() != 0 {
		t.Fatalf("replay errors = %d", tier.ReplayErrors())
	}
	want, err := tier.Backends()[0].TableSize("kv")
	if err != nil {
		t.Fatal(err)
	}
	if want != 5+8*5 {
		t.Fatalf("primary size = %d, want %d", want, 5+8*5)
	}
	for i, b := range tier.Backends() {
		if n, _ := b.TableSize("kv"); n != want {
			t.Fatalf("backend %d size = %d, primary = %d", i, n, want)
		}
	}
}
