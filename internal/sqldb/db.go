package sqldb

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"stagedweb/internal/clock"
	"stagedweb/internal/metrics"
)

// Options configures a DB.
type Options struct {
	// Clock supplies time; defaults to the real clock.
	Clock clock.Clock
	// Timescale converts the CostModel's paper-time charges to wall
	// sleeps; defaults to real time (no compression).
	Timescale clock.Timescale
	// Cost is the latency model. nil means DefaultCostModel — unset and
	// "explicitly zero" are distinguishable, so tests that want free
	// statements must say so with ZeroCostModel (or &CostModel{}).
	Cost *CostModel
	// MVCC selects the concurrency discipline at open; SetMVCC can flip
	// it later (between statements). Off means the paper-faithful
	// per-table reader/writer lock.
	MVCC bool
	// StmtCacheSize bounds the prepared-statement LRU; <= 0 means the
	// default (defaultStmtCacheSize).
	StmtCacheSize int
}

// ApplyFunc observes a successfully committed DML statement. The hook
// is invoked with the statement's original SQL and its normalized
// arguments inside the engine's commit critical section (db.commitMu) —
// after the statement's versions are installed, before any later
// statement can commit — so hook order is exactly commit order.
// Replaying the statements in hook order onto a replica that started
// from the same state reproduces the primary byte for byte (including
// auto-assigned primary keys). In lock mode the target table's write
// lock is also still held, preserving the pre-MVCC contract.
type ApplyFunc func(sql string, args []Value)

// DB is the embedded database engine. It is safe for concurrent use by
// any number of connections.
type DB struct {
	mu     sync.RWMutex // guards tables map (DDL)
	tables map[string]*table

	stmts *stmtCache

	clk  clock.Clock
	ts   clock.Timescale
	cost CostModel

	// mvcc selects the concurrency discipline: off = per-table RW lock
	// (the paper's MySQL-like behavior), on = snapshot reads +
	// first-writer-wins commits. Storage is versioned either way, so the
	// flag can be flipped between statements.
	mvcc atomic.Bool

	// commitMu is the engine-wide commit critical section: conflict
	// validation, version install, log append, and the commitTS bump
	// happen under it — and nothing else. Cost-model sleeps never hold
	// it.
	commitMu sync.Mutex
	commitTS atomic.Int64

	// log, when non-nil, receives every committed DML statement.
	log atomic.Pointer[ReplLog]

	// snapCount tracks pinned snapshot timestamps (active MVCC
	// statements and explicit Snapshots) so version pruning never cuts a
	// chain an active reader is walking.
	snapMu    sync.Mutex
	snapCount map[int64]int

	// applyHook, when set, observes every committed DML statement (see
	// ApplyFunc). Stored atomically so SetApplyHook is safe against
	// concurrent statements.
	applyHook atomic.Pointer[ApplyFunc]

	// idxEpoch counts index-availability changes (CreateIndex). Cached
	// plans carry the epoch they were built under; a bump invalidates
	// them, so a statement never executes a stale full-scan plan after
	// an index appears (or a stale index plan after one is replaced).
	idxEpoch atomic.Int64

	queries       metrics.Counter // statements executed
	queryTime     metrics.Histogram
	conflicts     metrics.Counter // first-writer-wins aborts (before retry)
	snapshotReads metrics.Counter // statements served from an MVCC snapshot
	planScans     metrics.Counter // full-scan access paths executed
	planIndex     metrics.Counter // index access paths executed
	planRows      metrics.Counter // row versions visited by access paths
	open          atomic.Int64    // connections currently open (gauge)
}

// Open creates an empty database.
func Open(opts Options) *DB {
	if opts.Clock == nil {
		opts.Clock = clock.Real{}
	}
	if opts.Timescale == 0 {
		opts.Timescale = clock.RealTime
	}
	if opts.Cost == nil {
		m := DefaultCostModel()
		opts.Cost = &m
	}
	db := &DB{
		tables:    make(map[string]*table, 16),
		stmts:     newStmtCache(opts.StmtCacheSize),
		clk:       opts.Clock,
		ts:        opts.Timescale,
		cost:      *opts.Cost,
		snapCount: make(map[int64]int),
	}
	db.mvcc.Store(opts.MVCC)
	return db
}

// SetMVCC flips the concurrency discipline. Safe to call on a live
// database; statements already in flight finish under the discipline
// they started with.
func (db *DB) SetMVCC(on bool) { db.mvcc.Store(on) }

// MVCCEnabled reports the current concurrency discipline.
func (db *DB) MVCCEnabled() bool { return db.mvcc.Load() }

// CommitTS reports the newest commit timestamp: the count of committed
// DML statements over the database's lifetime.
func (db *DB) CommitTS() int64 { return db.commitTS.Load() }

// Conflicts reports first-writer-wins validation failures. Each failed
// attempt counts once; Conn.Exec retries transparently, so a nonzero
// count with no surfaced errors means retries absorbed the conflicts.
func (db *DB) Conflicts() int64 { return db.conflicts.Value() }

// SnapshotReads reports statements served from an MVCC snapshot
// (snapshot SELECTs plus explicit Snapshot queries).
func (db *DB) SnapshotReads() int64 { return db.snapshotReads.Value() }

// PlanScans reports executed full-scan access paths: statements (or
// join inner loops) the planner could not serve from an index.
func (db *DB) PlanScans() int64 { return db.planScans.Value() }

// PlanIndexLookups reports executed index access paths — point lookups,
// range scans, index-order scans, and index-nested-loop join inners.
func (db *DB) PlanIndexLookups() int64 { return db.planIndex.Value() }

// PlanRowsRead reports row versions visited by access paths (scanned
// slots plus index-probed rows) — the planner's honest I/O volume.
func (db *DB) PlanRowsRead() int64 { return db.planRows.Value() }

// IndexEpoch reports the index-availability generation; it bumps on
// every CreateIndex, invalidating cached plans.
func (db *DB) IndexEpoch() int64 { return db.idxEpoch.Load() }

// StmtCacheHits reports prepared-statement cache hits.
func (db *DB) StmtCacheHits() int64 { return db.stmts.hits.Value() }

// StmtCacheMisses reports prepared-statement cache misses.
func (db *DB) StmtCacheMisses() int64 { return db.stmts.misses.Value() }

// StmtCacheLen reports resident prepared statements (bounded by the LRU
// capacity).
func (db *DB) StmtCacheLen() int { return db.stmts.len() }

// EnableReplLog attaches (or returns the existing) replication log.
// Entries start at the current commit timestamp, so a replica cloned
// via CloneSnapshot right after enabling observes a gapless stream.
func (db *DB) EnableReplLog() *ReplLog {
	db.commitMu.Lock()
	defer db.commitMu.Unlock()
	if l := db.log.Load(); l != nil {
		return l
	}
	l := newReplLog(db.commitTS.Load())
	db.log.Store(l)
	return l
}

// DisableReplLog detaches the replication log; later commits are no
// longer appended.
func (db *DB) DisableReplLog() {
	db.commitMu.Lock()
	db.log.Store(nil)
	db.commitMu.Unlock()
}

// ReplLog returns the attached replication log, or nil.
func (db *DB) ReplLog() *ReplLog { return db.log.Load() }

// SetApplyHook installs (or, with nil, removes) the DML observation hook.
// See ApplyFunc for the delivery contract.
func (db *DB) SetApplyHook(fn ApplyFunc) {
	if fn == nil {
		db.applyHook.Store(nil)
		return
	}
	db.applyHook.Store(&fn)
}

// fireApply delivers a committed DML statement to the hook. Callers
// hold commitMu.
func (db *DB) fireApply(ec *execCtx) {
	if fn := db.applyHook.Load(); fn != nil {
		(*fn)(ec.sql, ec.args)
	}
}

// finishCommit completes a DML commit: append to the replication log,
// publish the new commit timestamp, deliver the hook. Caller holds
// commitMu and has already installed the statement's versions at ts.
func (db *DB) finishCommit(ec *execCtx, ts int64) {
	if l := db.log.Load(); l != nil {
		l.append(LogEntry{TS: ts, SQL: ec.sql, Args: ec.args})
	}
	db.commitTS.Store(ts)
	db.fireApply(ec)
}

// pinSnapshot registers an active reader at ts, holding version pruning
// at or below it.
func (db *DB) pinSnapshot(ts int64) {
	db.snapMu.Lock()
	db.snapCount[ts]++
	db.snapMu.Unlock()
}

// unpinSnapshot releases a pinSnapshot registration.
func (db *DB) unpinSnapshot(ts int64) {
	db.snapMu.Lock()
	if n := db.snapCount[ts] - 1; n > 0 {
		db.snapCount[ts] = n
	} else {
		delete(db.snapCount, ts)
	}
	db.snapMu.Unlock()
}

// pruneHorizon computes the oldest snapshot any active or future reader
// can hold: the minimum pinned timestamp, or the current commit
// timestamp when nothing is pinned. Versions strictly older than the
// newest version at or below the horizon are unreachable.
func (db *DB) pruneHorizon() int64 {
	min := db.commitTS.Load()
	db.snapMu.Lock()
	for ts := range db.snapCount {
		if ts < min {
			min = ts
		}
	}
	db.snapMu.Unlock()
	return min
}

// CreateTable registers a new table.
func (db *DB) CreateTable(s Schema) error {
	if err := s.validate(); err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.tables[s.Table]; dup {
		return fmt.Errorf("sqldb: table %q already exists", s.Table)
	}
	db.tables[s.Table] = newTable(s)
	return nil
}

// CreateIndex builds a secondary index on a live table from the rows
// visible at the latest commit timestamp and installs it atomically
// with respect to commits. ordered selects the index type: an ordered
// index serves equality, ranges, and ORDER BY; a hash index serves
// equality only. Indexing a column that already carries the other index
// type replaces it. Statements planned before the install keep running
// correctly (index entries are stale-tolerant hints either way); the
// index epoch bump makes every later execution replan.
func (db *DB) CreateIndex(table, col string, ordered bool) error {
	tbl, err := db.lookupTable(table)
	if err != nil {
		return err
	}
	db.commitMu.Lock()
	defer db.commitMu.Unlock()
	if err := tbl.buildIndex(col, ordered); err != nil {
		return err
	}
	db.idxEpoch.Add(1)
	return nil
}

// MustCreateTable is CreateTable, panicking on error; used by schema
// definitions whose correctness is static.
func (db *DB) MustCreateTable(s Schema) {
	if err := db.CreateTable(s); err != nil {
		panic(err)
	}
}

// TableNames lists the registered tables, sorted.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TableSize reports the number of live rows in a table.
func (db *DB) TableSize(name string) (int, error) {
	tbl, err := db.lookupTable(name)
	if err != nil {
		return 0, err
	}
	return int(tbl.live.Load()), nil
}

// QueryCount reports the number of statements executed.
func (db *DB) QueryCount() int64 { return db.queries.Value() }

// QueryTimes exposes the per-statement latency histogram, measured on
// the injected clock — so under clock.Manual or a compressed timescale
// the recorded durations are the modeled ones, not wall time.
func (db *DB) QueryTimes() *metrics.Histogram { return &db.queryTime }

func (db *DB) lookupTable(name string) (*table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	tbl, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("sqldb: unknown table %q", name)
	}
	return tbl, nil
}

// prepare parses and plans SQL through the per-DB bounded statement
// cache. Cached entries are keyed by the index epoch they were planned
// under: a CreateIndex bumps the epoch, so the next execution of a
// cached statement replans instead of running a stale access path.
func (db *DB) prepare(sql string) (stmt, error) {
	epoch := db.idxEpoch.Load()
	if s, ok := db.stmts.get(sql, epoch); ok {
		return s, nil
	}
	s, err := parseSQL(sql)
	if err != nil {
		return nil, err
	}
	switch t := s.(type) {
	case *selectStmt:
		if t.plan, err = db.planSelect(t); err != nil {
			return nil, err
		}
	case *explainStmt:
		if t.Sel.plan, err = db.planSelect(t.Sel); err != nil {
			return nil, err
		}
	}
	db.stmts.put(sql, s, epoch)
	return s, nil
}

// chargeCost sleeps the statement's modeled latency (converted through
// the timescale). In lock mode it is called while the statement's table
// locks are held, so concurrent statements contend the way the paper's
// MySQL server does; in MVCC mode it is called with no locks held — the
// latency is still charged, but nobody queues behind it.
func (db *DB) chargeCost(ec *execCtx) {
	d := ec.cost.total(db.cost)
	if d > 0 {
		db.clk.Sleep(db.ts.Wall(d))
	}
}

// ErrConnClosed reports use of a closed connection.
var ErrConnClosed = errors.New("sqldb: connection closed")

// ErrConnBusy reports concurrent use of one connection.
var ErrConnBusy = errors.New("sqldb: connection used concurrently")

// ErrWriteConflict reports a first-writer-wins validation failure: a
// row the statement read under its snapshot was committed to by another
// writer before this statement could commit. Conn.Exec retries
// conflicted statements transparently; the error only surfaces after
// the retry budget is exhausted.
var ErrWriteConflict = errors.New("sqldb: write conflict")

// maxConflictRetries bounds transparent re-execution of a conflicted
// DML statement. Each retry re-reads a fresh snapshot, and a conflict
// implies some other writer committed, so the system as a whole always
// makes progress; the bound is a backstop, not a tuning knob.
const maxConflictRetries = 64

// Conn is a database connection. Like the paper's per-thread MySQL
// connections it executes one statement at a time; concurrent use is a
// bug in the caller and reported as ErrConnBusy.
type Conn struct {
	db     *DB
	mu     sync.Mutex
	busy   bool
	closed bool
}

// Connect opens a new connection.
func (db *DB) Connect() *Conn {
	db.open.Add(1)
	return &Conn{db: db}
}

// OpenConns reports connections opened and not yet closed — the gauge
// shutdown tests use to prove servers release their connection budget.
func (db *DB) OpenConns() int64 { return db.open.Load() }

// DB reports the engine this connection belongs to. Pool owners use it
// to detect connections stranded from a backend whose engine has been
// swapped out (for example by a snapshot resync) and close them instead
// of pooling them.
func (c *Conn) DB() *DB { return c.db }

func (c *Conn) enter() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrConnClosed
	}
	if c.busy {
		return ErrConnBusy
	}
	c.busy = true
	return nil
}

func (c *Conn) exit() {
	c.mu.Lock()
	c.busy = false
	c.mu.Unlock()
}

// Close closes the connection. Idempotent.
func (c *Conn) Close() {
	c.mu.Lock()
	wasOpen := !c.closed
	c.closed = true
	c.mu.Unlock()
	if wasOpen {
		c.db.open.Add(-1)
	}
}

// Query executes a SELECT and returns the materialized result.
func (c *Conn) Query(sql string, args ...any) (*ResultSet, error) {
	if err := c.enter(); err != nil {
		return nil, err
	}
	defer c.exit()
	start := c.db.clk.Now()
	defer func() { c.db.queryTime.Observe(c.db.clk.Since(start)) }()
	c.db.queries.Inc()

	s, err := c.db.prepare(sql)
	if err != nil {
		return nil, err
	}
	switch t := s.(type) {
	case *selectStmt:
		ec, err := newExecCtx(args)
		if err != nil {
			return nil, err
		}
		return c.db.execSelect(t, ec)
	case *explainStmt:
		return t.Sel.plan.resultSet(), nil
	default:
		return nil, fmt.Errorf("sqldb: Query requires SELECT, got %q", sql)
	}
}

// ExecResult reports the effect of a DML statement.
type ExecResult struct {
	RowsAffected int64
	LastInsertID int64
	// CommitTS is the commit timestamp the statement was installed at.
	// The replication tier waits on it ("replica applied >= CommitTS")
	// instead of replicating inside the write path.
	CommitTS int64
}

// Exec executes an INSERT, UPDATE, or DELETE. Under MVCC, a statement
// aborted by first-writer-wins validation is re-executed against a
// fresh snapshot (the accumulated cost of failed attempts stays
// charged, so conflicts cost latency, as they should).
func (c *Conn) Exec(sql string, args ...any) (ExecResult, error) {
	if err := c.enter(); err != nil {
		return ExecResult{}, err
	}
	defer c.exit()
	start := c.db.clk.Now()
	defer func() { c.db.queryTime.Observe(c.db.clk.Since(start)) }()
	c.db.queries.Inc()

	s, err := c.db.prepare(sql)
	if err != nil {
		return ExecResult{}, err
	}
	ec, err := newExecCtx(args)
	if err != nil {
		return ExecResult{}, err
	}
	ec.sql = sql
	for attempt := 0; ; attempt++ {
		var res ExecResult
		switch t := s.(type) {
		case *insertStmt:
			res, err = c.db.execInsert(t, ec)
		case *updateStmt:
			res, err = c.db.execUpdate(t, ec)
		case *deleteStmt:
			res, err = c.db.execDelete(t, ec)
		default:
			return ExecResult{}, fmt.Errorf("sqldb: Exec requires INSERT/UPDATE/DELETE, got %q", sql)
		}
		if errors.Is(err, ErrWriteConflict) && attempt < maxConflictRetries {
			continue
		}
		return res, err
	}
}

func newExecCtx(args []any) (*execCtx, error) {
	vals := make([]Value, len(args))
	for i, a := range args {
		v, err := normalize(a)
		if err != nil {
			return nil, fmt.Errorf("sqldb: argument %d: %w", i+1, err)
		}
		vals[i] = v
	}
	return &execCtx{args: vals}, nil
}

// ResultSet is a fully materialized query result.
type ResultSet struct {
	Columns []string
	Rows    [][]Value
}

// Len reports the number of rows.
func (rs *ResultSet) Len() int { return len(rs.Rows) }

// ColIndex returns the position of a column name, or -1.
func (rs *ResultSet) ColIndex(name string) int {
	for i, c := range rs.Columns {
		if c == name {
			return i
		}
	}
	return -1
}

// Get returns the value at (row, column name); nil if out of range.
func (rs *ResultSet) Get(row int, name string) Value {
	ci := rs.ColIndex(name)
	if ci < 0 || row < 0 || row >= len(rs.Rows) {
		return nil
	}
	return rs.Rows[row][ci]
}

// Int returns an int64 cell (0 when NULL or mistyped).
func (rs *ResultSet) Int(row int, name string) int64 {
	switch v := rs.Get(row, name).(type) {
	case int64:
		return v
	case float64:
		return int64(v)
	default:
		return 0
	}
}

// Float returns a float64 cell (0 when NULL or mistyped).
func (rs *ResultSet) Float(row int, name string) float64 {
	switch v := rs.Get(row, name).(type) {
	case float64:
		return v
	case int64:
		return float64(v)
	default:
		return 0
	}
}

// Str returns a string cell ("" when NULL or mistyped).
func (rs *ResultSet) Str(row int, name string) string {
	if v, ok := rs.Get(row, name).(string); ok {
		return v
	}
	return ""
}

// TimeVal returns a time cell (zero time when NULL or mistyped).
func (rs *ResultSet) TimeVal(row int, name string) time.Time {
	if v, ok := rs.Get(row, name).(time.Time); ok {
		return v
	}
	return time.Time{}
}

// Maps converts the result into one map per row — the shape template
// contexts want.
func (rs *ResultSet) Maps() []map[string]any {
	out := make([]map[string]any, len(rs.Rows))
	for i, row := range rs.Rows {
		m := make(map[string]any, len(rs.Columns))
		for j, c := range rs.Columns {
			m[c] = row[j]
		}
		out[i] = m
	}
	return out
}

// First returns the first row as a map, or nil for an empty result.
func (rs *ResultSet) First() map[string]any {
	if len(rs.Rows) == 0 {
		return nil
	}
	m := make(map[string]any, len(rs.Columns))
	for j, c := range rs.Columns {
		m[c] = rs.Rows[0][j]
	}
	return m
}
