package sqldb

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"stagedweb/internal/clock"
	"stagedweb/internal/metrics"
)

// Options configures a DB.
type Options struct {
	// Clock supplies time; defaults to the real clock.
	Clock clock.Clock
	// Timescale converts the CostModel's paper-time charges to wall
	// sleeps; defaults to real time (no compression).
	Timescale clock.Timescale
	// Cost is the latency model. nil means DefaultCostModel — unset and
	// "explicitly zero" are distinguishable, so tests that want free
	// statements must say so with ZeroCostModel (or &CostModel{}).
	Cost *CostModel
}

// ApplyFunc observes a successfully applied DML statement. The hook is
// invoked with the statement's original SQL and its normalized arguments
// while the target table's write lock is still held, so replaying the
// statements in hook order onto a replica that started from the same
// state reproduces the primary byte for byte (including auto-assigned
// primary keys). internal/dbtier uses this for synchronous write
// fan-out.
type ApplyFunc func(sql string, args []Value)

// DB is the embedded database engine. It is safe for concurrent use by
// any number of connections.
type DB struct {
	mu     sync.RWMutex // guards tables map (DDL)
	tables map[string]*table

	stmtMu    sync.RWMutex // guards stmtCache
	stmtCache map[string]stmt

	clk  clock.Clock
	ts   clock.Timescale
	cost CostModel

	// applyHook, when set, observes every applied DML statement (see
	// ApplyFunc). Stored atomically so SetApplyHook is safe against
	// concurrent statements.
	applyHook atomic.Pointer[ApplyFunc]

	queries   metrics.Counter // statements executed
	queryTime metrics.Histogram
	open      atomic.Int64 // connections currently open (gauge)
}

// Open creates an empty database.
func Open(opts Options) *DB {
	if opts.Clock == nil {
		opts.Clock = clock.Real{}
	}
	if opts.Timescale == 0 {
		opts.Timescale = clock.RealTime
	}
	if opts.Cost == nil {
		m := DefaultCostModel()
		opts.Cost = &m
	}
	return &DB{
		tables:    make(map[string]*table, 16),
		stmtCache: make(map[string]stmt, 64),
		clk:       opts.Clock,
		ts:        opts.Timescale,
		cost:      *opts.Cost,
	}
}

// SetApplyHook installs (or, with nil, removes) the DML observation hook.
// See ApplyFunc for the delivery contract.
func (db *DB) SetApplyHook(fn ApplyFunc) {
	if fn == nil {
		db.applyHook.Store(nil)
		return
	}
	db.applyHook.Store(&fn)
}

// fireApply delivers a successfully applied DML statement to the hook.
// Callers hold the target table's write lock.
func (db *DB) fireApply(ec *execCtx) {
	if fn := db.applyHook.Load(); fn != nil {
		(*fn)(ec.sql, ec.args)
	}
}

// CreateTable registers a new table.
func (db *DB) CreateTable(s Schema) error {
	if err := s.validate(); err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.tables[s.Table]; dup {
		return fmt.Errorf("sqldb: table %q already exists", s.Table)
	}
	db.tables[s.Table] = newTable(s)
	return nil
}

// MustCreateTable is CreateTable, panicking on error; used by schema
// definitions whose correctness is static.
func (db *DB) MustCreateTable(s Schema) {
	if err := db.CreateTable(s); err != nil {
		panic(err)
	}
}

// TableNames lists the registered tables, sorted.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TableSize reports the number of live rows in a table.
func (db *DB) TableSize(name string) (int, error) {
	tbl, err := db.lookupTable(name)
	if err != nil {
		return 0, err
	}
	tbl.lock.RLock()
	defer tbl.lock.RUnlock()
	return tbl.live, nil
}

// QueryCount reports the number of statements executed.
func (db *DB) QueryCount() int64 { return db.queries.Value() }

// QueryTimes exposes the per-statement latency histogram (paper time is
// not applied here; durations are wall time).
func (db *DB) QueryTimes() *metrics.Histogram { return &db.queryTime }

func (db *DB) lookupTable(name string) (*table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	tbl, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("sqldb: unknown table %q", name)
	}
	return tbl, nil
}

// prepare parses SQL with a per-DB statement cache.
func (db *DB) prepare(sql string) (stmt, error) {
	db.stmtMu.RLock()
	s, ok := db.stmtCache[sql]
	db.stmtMu.RUnlock()
	if ok {
		return s, nil
	}
	s, err := parseSQL(sql)
	if err != nil {
		return nil, err
	}
	db.stmtMu.Lock()
	db.stmtCache[sql] = s
	db.stmtMu.Unlock()
	return s, nil
}

// chargeCost sleeps the statement's modeled latency (converted through
// the timescale). Called while the statement's table locks are held, so
// that concurrent statements contend the way the paper's MySQL server
// does.
func (db *DB) chargeCost(ec *execCtx) {
	d := ec.cost.total(db.cost)
	if d > 0 {
		db.clk.Sleep(db.ts.Wall(d))
	}
}

// ErrConnClosed reports use of a closed connection.
var ErrConnClosed = errors.New("sqldb: connection closed")

// ErrConnBusy reports concurrent use of one connection.
var ErrConnBusy = errors.New("sqldb: connection used concurrently")

// Conn is a database connection. Like the paper's per-thread MySQL
// connections it executes one statement at a time; concurrent use is a
// bug in the caller and reported as ErrConnBusy.
type Conn struct {
	db     *DB
	mu     sync.Mutex
	busy   bool
	closed bool
}

// Connect opens a new connection.
func (db *DB) Connect() *Conn {
	db.open.Add(1)
	return &Conn{db: db}
}

// OpenConns reports connections opened and not yet closed — the gauge
// shutdown tests use to prove servers release their connection budget.
func (db *DB) OpenConns() int64 { return db.open.Load() }

func (c *Conn) enter() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrConnClosed
	}
	if c.busy {
		return ErrConnBusy
	}
	c.busy = true
	return nil
}

func (c *Conn) exit() {
	c.mu.Lock()
	c.busy = false
	c.mu.Unlock()
}

// Close closes the connection. Idempotent.
func (c *Conn) Close() {
	c.mu.Lock()
	wasOpen := !c.closed
	c.closed = true
	c.mu.Unlock()
	if wasOpen {
		c.db.open.Add(-1)
	}
}

// Query executes a SELECT and returns the materialized result.
func (c *Conn) Query(sql string, args ...any) (*ResultSet, error) {
	if err := c.enter(); err != nil {
		return nil, err
	}
	defer c.exit()
	start := time.Now()
	defer func() { c.db.queryTime.Observe(time.Since(start)) }()
	c.db.queries.Inc()

	s, err := c.db.prepare(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := s.(*selectStmt)
	if !ok {
		return nil, fmt.Errorf("sqldb: Query requires SELECT, got %q", sql)
	}
	ec, err := newExecCtx(args)
	if err != nil {
		return nil, err
	}
	return c.db.execSelect(sel, ec)
}

// ExecResult reports the effect of a DML statement.
type ExecResult struct {
	RowsAffected int64
	LastInsertID int64
}

// Exec executes an INSERT, UPDATE, or DELETE.
func (c *Conn) Exec(sql string, args ...any) (ExecResult, error) {
	if err := c.enter(); err != nil {
		return ExecResult{}, err
	}
	defer c.exit()
	start := time.Now()
	defer func() { c.db.queryTime.Observe(time.Since(start)) }()
	c.db.queries.Inc()

	s, err := c.db.prepare(sql)
	if err != nil {
		return ExecResult{}, err
	}
	ec, err := newExecCtx(args)
	if err != nil {
		return ExecResult{}, err
	}
	ec.sql = sql
	switch t := s.(type) {
	case *insertStmt:
		return c.db.execInsert(t, ec)
	case *updateStmt:
		return c.db.execUpdate(t, ec)
	case *deleteStmt:
		return c.db.execDelete(t, ec)
	default:
		return ExecResult{}, fmt.Errorf("sqldb: Exec requires INSERT/UPDATE/DELETE, got %q", sql)
	}
}

func newExecCtx(args []any) (*execCtx, error) {
	vals := make([]Value, len(args))
	for i, a := range args {
		v, err := normalize(a)
		if err != nil {
			return nil, fmt.Errorf("sqldb: argument %d: %w", i+1, err)
		}
		vals[i] = v
	}
	return &execCtx{args: vals}, nil
}

// ResultSet is a fully materialized query result.
type ResultSet struct {
	Columns []string
	Rows    [][]Value
}

// Len reports the number of rows.
func (rs *ResultSet) Len() int { return len(rs.Rows) }

// ColIndex returns the position of a column name, or -1.
func (rs *ResultSet) ColIndex(name string) int {
	for i, c := range rs.Columns {
		if c == name {
			return i
		}
	}
	return -1
}

// Get returns the value at (row, column name); nil if out of range.
func (rs *ResultSet) Get(row int, name string) Value {
	ci := rs.ColIndex(name)
	if ci < 0 || row < 0 || row >= len(rs.Rows) {
		return nil
	}
	return rs.Rows[row][ci]
}

// Int returns an int64 cell (0 when NULL or mistyped).
func (rs *ResultSet) Int(row int, name string) int64 {
	switch v := rs.Get(row, name).(type) {
	case int64:
		return v
	case float64:
		return int64(v)
	default:
		return 0
	}
}

// Float returns a float64 cell (0 when NULL or mistyped).
func (rs *ResultSet) Float(row int, name string) float64 {
	switch v := rs.Get(row, name).(type) {
	case float64:
		return v
	case int64:
		return float64(v)
	default:
		return 0
	}
}

// Str returns a string cell ("" when NULL or mistyped).
func (rs *ResultSet) Str(row int, name string) string {
	if v, ok := rs.Get(row, name).(string); ok {
		return v
	}
	return ""
}

// TimeVal returns a time cell (zero time when NULL or mistyped).
func (rs *ResultSet) TimeVal(row int, name string) time.Time {
	if v, ok := rs.Get(row, name).(time.Time); ok {
		return v
	}
	return time.Time{}
}

// Maps converts the result into one map per row — the shape template
// contexts want.
func (rs *ResultSet) Maps() []map[string]any {
	out := make([]map[string]any, len(rs.Rows))
	for i, row := range rs.Rows {
		m := make(map[string]any, len(rs.Columns))
		for j, c := range rs.Columns {
			m[c] = row[j]
		}
		out[i] = m
	}
	return out
}

// First returns the first row as a map, or nil for an empty result.
func (rs *ResultSet) First() map[string]any {
	if len(rs.Rows) == 0 {
		return nil
	}
	m := make(map[string]any, len(rs.Columns))
	for j, c := range rs.Columns {
		m[c] = rs.Rows[0][j]
	}
	return m
}
