package sqldb

import (
	"fmt"
	"sort"
	"strings"
)

// This file is the execution layer of the SELECT pipeline (see plan.go
// for the layering): composable operators that turn a selectPlan into
// rows. Access paths (scan, PK/index lookup, index range, index order)
// produce candidate slot ids; enumeration joins them (nested-loop or
// index-nested-loop per the plan); filter, aggregate, sort, and limit
// shape the result. Index results are stale-tolerant hints throughout —
// every operator re-checks its predicate against the visible row.

// execSelect runs a SELECT. In lock mode it holds the read locks of its
// tables for the whole cost-padded statement (the paper's contention
// behavior); under MVCC it reads a fixed snapshot lock-free and charges
// cost with nothing held, so readers never block writers or each other.
func (db *DB) execSelect(s *selectStmt, ec *execCtx) (*ResultSet, error) {
	bindings, err := db.resolveBindings(s)
	if err != nil {
		return nil, err
	}
	if db.mvcc.Load() {
		ts := db.commitTS.Load()
		db.snapshotReads.Inc()
		db.pinSnapshot(ts)
		defer db.unpinSnapshot(ts)
		bindViews(bindings, ts)
		defer db.chargeCost(ec) // no locks held; the sleep delays only this statement
		return db.runSelect(s, bindings, ec)
	}
	unlock := db.lockTables(bindings, false)
	defer unlock()
	defer db.chargeCost(ec) // sleep the cost before releasing the locks
	bindViews(bindings, latestTS)
	return db.runSelect(s, bindings, ec)
}

// execSelectAt runs a SELECT lock-free against the snapshot at ts — the
// engine behind Snapshot.Query, valid in either concurrency mode.
func (db *DB) execSelectAt(s *selectStmt, ec *execCtx, ts int64) (*ResultSet, error) {
	bindings, err := db.resolveBindings(s)
	if err != nil {
		return nil, err
	}
	db.pinSnapshot(ts)
	defer db.unpinSnapshot(ts)
	bindViews(bindings, ts)
	defer db.chargeCost(ec)
	return db.runSelect(s, bindings, ec)
}

// runSelect is the mode-independent SELECT core: fetch the physical
// plan (cached on the statement, or planned on the fly for direct
// parses), enumerate, aggregate, order, project. Every row access goes
// through the bindings' views.
func (db *DB) runSelect(s *selectStmt, bindings []binding, ec *execCtx) (*ResultSet, error) {
	plan := s.plan
	if plan == nil {
		var err error
		if plan, err = db.planSelect(s); err != nil {
			return nil, err
		}
	}

	// Compile the WHERE clause once, split into conjuncts applied at the
	// shallowest join depth possible (predicate pushdown).
	preds, err := compileWhere(s.Where, bindings)
	if err != nil {
		return nil, err
	}

	matched, preSorted, err := db.enumerate(s, plan, bindings, preds, ec)
	if err != nil {
		return nil, err
	}

	hasAgg := false
	for _, it := range s.Items {
		if it.Agg != aggNone {
			hasAgg = true
			break
		}
	}

	var rs *ResultSet
	if hasAgg || len(s.GroupBy) > 0 {
		rs, err = db.aggregate(s, bindings, matched, ec)
		if err != nil {
			return nil, err
		}
		// Aggregated queries order by output columns, including
		// aggregate aliases (ORDER BY qty DESC).
		if len(s.OrderBy) > 0 {
			if err := orderResult(rs, s.OrderBy, ec); err != nil {
				return nil, err
			}
		}
	} else {
		// Plain queries may order by any table column, projected or not
		// (ORDER BY i_pub_date DESC with only i_title selected), so sort
		// the combined rows before projection — unless the index-order
		// access path already delivered them sorted. Aliases that are not
		// table columns fall back to a post-projection sort.
		sortedPre := preSorted
		if len(s.OrderBy) > 0 && !sortedPre {
			ok, err := orderCombined(matched, bindings, s.OrderBy, ec)
			if err != nil {
				return nil, err
			}
			sortedPre = ok
		}
		rs, err = db.project(s, bindings, matched, ec)
		if err != nil {
			return nil, err
		}
		if len(s.OrderBy) > 0 && !sortedPre {
			if err := orderResult(rs, s.OrderBy, ec); err != nil {
				return nil, err
			}
		}
	}
	applyLimit(rs, s.Limit, s.Offset)
	return rs, nil
}

// pathValue resolves an access path's bound operand row-independently.
// ok=false (missing argument, un-normalizable value) degrades the path
// to a scan rather than erroring — the compiled predicates will surface
// any real argument error.
func pathValue(op operand, ec *execCtx) (Value, bool) {
	v, err := operandValue(op, nil, nil, ec)
	if err != nil {
		return nil, false
	}
	nv, err := normalize(v)
	if err != nil {
		return nil, false
	}
	return nv, true
}

// scanRows is the full-scan access path: every live slot of the view.
func (db *DB) scanRows(b binding, ec *execCtx) []int {
	n := b.view.size()
	ids := make([]int, 0, n)
	for id := 0; id < n; id++ {
		if b.view.row(id) != nil {
			ids = append(ids, id)
		}
	}
	ec.cost.scanned += n
	db.planScans.Inc()
	db.planRows.Add(int64(n))
	return ids
}

// indexedRows resolves an equality through the primary key or a
// secondary index and charges probe costs. Results are hints; callers
// re-check the predicate against the visible row.
func (db *DB) indexedRows(v tableView, col string, val Value, ec *execCtx) []int {
	t := v.tbl
	if t.pkCol >= 0 && t.schema.Columns[t.pkCol].Name == col {
		ec.cost.probes++
		db.planRows.Add(1)
		key, ok := val.(int64)
		if !ok {
			if f, fok := val.(float64); fok {
				key, ok = int64(f), true
			}
		}
		if !ok {
			return nil
		}
		if id, found := v.lookupPK(key); found {
			return []int{id}
		}
		return nil
	}
	ids, visited, ok := v.lookupIndex(col, val)
	if !ok {
		return nil
	}
	ec.cost.probes += visited + 1
	db.planRows.Add(int64(visited))
	return ids
}

// rangeRows is the index-range access path: entries of the ordered
// index inside the bounds, filtered by the entry-vs-visible-row check
// (a row whose key was updated has entries under both values; only the
// one matching the visible row may produce it, which also keeps the
// result duplicate-free).
func (db *DB) rangeRows(p accessPath, b binding, ec *execCtx) ([]int, bool) {
	oidx, ok := b.view.lookupOrdered(p.colName)
	if !ok {
		return nil, false
	}
	var lo, hi Value
	hasLo, hasHi := p.lo != nil, p.hi != nil
	var loExcl, hiExcl bool
	if hasLo {
		if lo, ok = pathValue(p.lo.rhs, ec); !ok {
			return nil, false
		}
		loExcl = p.lo.excl
	}
	if hasHi {
		if hi, ok = pathValue(p.hi.rhs, ec); !ok {
			return nil, false
		}
		hiExcl = p.hi.excl
	}
	es, visited := oidx.state.Load().rangeEntries(lo, loExcl, hasLo, hi, hiExcl, hasHi)
	ec.cost.probes += visited + 1
	db.planRows.Add(int64(visited))
	ci := oidx.col
	ids := make([]int, 0, len(es))
	for _, e := range es {
		row := b.view.row(e.id)
		if row == nil || !valuesEqual(row[ci], e.val) {
			continue
		}
		ids = append(ids, e.id)
	}
	return ids, true
}

// fetchOuter executes the plan's access path for the driving table and
// returns candidate slot ids (hints — callers re-check predicates).
// Index paths degrade to the scan when the index or a bound value is
// unavailable at execution time.
func (db *DB) fetchOuter(p accessPath, b binding, ec *execCtx) []int {
	switch p.kind {
	case pathPK, pathIndexEq:
		if val, ok := pathValue(p.eq, ec); ok {
			db.planIndex.Inc()
			return db.indexedRows(b.view, p.colName, val, ec)
		}
	case pathIndexRange:
		if ids, ok := db.rangeRows(p, b, ec); ok {
			db.planIndex.Inc()
			return ids
		}
	}
	return db.scanRows(b, ec)
}

// candidateRows yields the row IDs of table b to visit for a DML read
// phase, choosing the access path the same way the SELECT planner does
// (indexes change DML predicate evaluation too) and charging honest
// scan/probe costs.
func (db *DB) candidateRows(where boolExpr, bindings []binding, b binding, ec *execCtx) []int {
	return db.fetchOuter(db.choosePredPath(where, bindings), b, ec)
}

// enumerate runs the plan's access paths and joins with predicate
// pushdown, returning the fully matched combined rows. preSorted
// reports that the index-order access path already delivered the rows
// in ORDER BY order.
func (db *DB) enumerate(s *selectStmt, plan *selectPlan, bindings []binding, preds [][]compiledPred, ec *execCtx) (out [][][]Value, preSorted bool, err error) {
	rows := make([][]Value, len(bindings))

	// applyPreds evaluates the depth-i conjuncts on the partial row.
	applyPreds := func(i int) (bool, error) {
		for _, p := range preds[i] {
			ok, err := p.eval(rows, ec)
			if err != nil || !ok {
				return false, err
			}
		}
		return true, nil
	}

	// Index-order access path: walk the ordered index in ORDER BY order,
	// stopping once LIMIT+OFFSET filtered rows are in hand. Join-free by
	// construction (the planner only picks it for single-table SELECTs).
	if plan.outer.kind == pathIndexOrder && len(bindings) == 1 {
		if oidx, ok := bindings[0].view.lookupOrdered(plan.outer.colName); ok {
			db.planIndex.Inc()
			es, _ := oidx.state.Load().allEntries()
			ci := oidx.col
			iterated := 0
			for i := range es {
				e := es[i]
				if plan.outer.desc {
					e = es[len(es)-1-i]
				}
				iterated++
				ec.cost.probes++
				row := bindings[0].view.row(e.id)
				// Entry-vs-visible re-check: an updated row has entries at
				// both its old and new position; emitting it anywhere but
				// its current value's position would break the order (and
				// duplicate the row).
				if row == nil || !valuesEqual(row[ci], e.val) {
					continue
				}
				rows[0] = row
				ok, err := applyPreds(0)
				if err != nil {
					return nil, false, err
				}
				if !ok {
					continue
				}
				out = append(out, [][]Value{row})
				ec.cost.matched++
				if plan.outer.stop >= 0 && len(out) >= plan.outer.stop {
					break
				}
			}
			db.planRows.Add(int64(iterated))
			return out, true, nil
		}
		// Ordered index gone (replaced by a hash index between planning
		// and execution): fall through to the generic path on a scan.
	}

	outerPath := plan.outer
	if outerPath.kind == pathIndexOrder {
		outerPath = accessPath{kind: pathScan}
	}

	// Join steps count their access path once per statement execution.
	counted := make([]bool, len(plan.joins))

	var rec func(i int) error
	rec = func(i int) error {
		if i >= len(bindings) {
			cp := make([][]Value, len(rows))
			copy(cp, rows)
			out = append(out, cp)
			ec.cost.matched++
			return nil
		}
		jp := plan.joins[i-1]
		outerVal := rows[jp.outerBi][jp.outerCi]
		inner := bindings[i]
		var ids []int
		if jp.indexed {
			if !counted[i-1] {
				counted[i-1] = true
				db.planIndex.Inc()
			}
			ids = db.indexedRows(inner.view, jp.innerName, outerVal, ec)
		} else {
			if !counted[i-1] {
				counted[i-1] = true
				db.planScans.Inc()
			}
			n := inner.view.size()
			ec.cost.scanned += n
			db.planRows.Add(int64(n))
			for id := 0; id < n; id++ {
				if row := inner.view.row(id); row != nil && valuesEqual(row[jp.innerCol], outerVal) {
					ids = append(ids, id)
				}
			}
		}
		for _, id := range ids {
			row := inner.view.row(id)
			// Re-check the join equality: index buckets are stale-tolerant
			// hints, so an id may point at a row whose visible version no
			// longer (or, at this snapshot, does not yet) match.
			if row == nil || !valuesEqual(row[jp.innerCol], outerVal) {
				continue
			}
			rows[i] = row
			ok, err := applyPreds(i)
			if err != nil {
				return err
			}
			if !ok {
				continue
			}
			if err := rec(i + 1); err != nil {
				return err
			}
		}
		rows[i] = nil
		return nil
	}

	for _, id := range db.fetchOuter(outerPath, bindings[0], ec) {
		rows[0] = bindings[0].view.row(id)
		if rows[0] == nil {
			continue
		}
		ok, err := applyPreds(0)
		if err != nil {
			return nil, false, err
		}
		if !ok {
			continue
		}
		if err := rec(1); err != nil {
			return nil, false, err
		}
	}
	return out, false, nil
}

// orderCombined sorts joined rows by table columns. It reports false
// (without sorting) when a key does not resolve to a table column, in
// which case the caller sorts the projected output instead.
func orderCombined(matched [][][]Value, bindings []binding, keys []orderKey, ec *execCtx) (bool, error) {
	type sortCol struct {
		bi, ci int
		desc   bool
	}
	scols := make([]sortCol, len(keys))
	for i, k := range keys {
		bi, ci, err := resolveCol(bindings, k.Ref)
		if err != nil {
			return false, nil // alias; sort after projection
		}
		scols[i] = sortCol{bi: bi, ci: ci, desc: k.Desc}
	}
	ec.cost.sorted += len(matched)
	var sortErr error
	sort.SliceStable(matched, func(i, j int) bool {
		for _, sc := range scols {
			c, err := compare(matched[i][sc.bi][sc.ci], matched[j][sc.bi][sc.ci])
			if err != nil {
				sortErr = err
				return false
			}
			if c != 0 {
				if sc.desc {
					return c > 0
				}
				return c < 0
			}
		}
		return false
	})
	if sortErr != nil {
		return false, sortErr
	}
	return true, nil
}

// outputColumns computes the result column names for the projection.
func outputColumns(s *selectStmt, bindings []binding) ([]string, error) {
	var cols []string
	for _, it := range s.Items {
		switch {
		case it.Star:
			for _, b := range bindings {
				if it.Table != "" && b.ref.name() != it.Table {
					continue
				}
				for _, c := range b.tbl.schema.Columns {
					cols = append(cols, c.Name)
				}
			}
		case it.Agg != aggNone:
			cols = append(cols, aggOutputName(it))
		default:
			if it.Alias != "" {
				cols = append(cols, it.Alias)
			} else {
				cols = append(cols, it.Col.Column)
			}
		}
	}
	return cols, nil
}

func aggOutputName(it selectItem) string {
	if it.Alias != "" {
		return it.Alias
	}
	var fn string
	switch it.Agg {
	case aggCount:
		fn = "count"
	case aggSum:
		fn = "sum"
	case aggAvg:
		fn = "avg"
	case aggMin:
		fn = "min"
	case aggMax:
		fn = "max"
	}
	if it.AggStar {
		return fn
	}
	return fn + "_" + it.AggCol.Column
}

// project materializes a non-aggregate result.
func (db *DB) project(s *selectStmt, bindings []binding, matched [][][]Value, ec *execCtx) (*ResultSet, error) {
	cols, err := outputColumns(s, bindings)
	if err != nil {
		return nil, err
	}
	rs := &ResultSet{Columns: cols, Rows: make([][]Value, 0, len(matched))}
	for _, rows := range matched {
		out := make([]Value, 0, len(cols))
		for _, it := range s.Items {
			switch {
			case it.Star:
				for bi, b := range bindings {
					if it.Table != "" && b.ref.name() != it.Table {
						continue
					}
					out = append(out, rows[bi]...)
				}
			default:
				bi, ci, err := resolveCol(bindings, it.Col)
				if err != nil {
					return nil, err
				}
				out = append(out, rows[bi][ci])
			}
		}
		rs.Rows = append(rs.Rows, out)
	}
	return rs, nil
}

// aggState accumulates one aggregate over one group.
type aggState struct {
	count    int64
	sum      float64
	sumInts  bool
	min, max Value
	seen     bool
}

func (a *aggState) add(v Value) {
	if v == nil {
		return
	}
	a.count++
	if n, ok := asNumber(v); ok {
		a.sum += n
		if !a.seen {
			a.sumInts = true
		}
		if _, isInt := v.(int64); !isInt {
			a.sumInts = false
		}
	}
	if !a.seen {
		a.min, a.max, a.seen = v, v, true
		return
	}
	if c, err := compare(v, a.min); err == nil && c < 0 {
		a.min = v
	}
	if c, err := compare(v, a.max); err == nil && c > 0 {
		a.max = v
	}
}

// aggregate materializes a grouped/aggregated result.
func (db *DB) aggregate(s *selectStmt, bindings []binding, matched [][][]Value, ec *execCtx) (*ResultSet, error) {
	for _, it := range s.Items {
		if it.Star {
			return nil, fmt.Errorf("sqldb: SELECT * cannot be combined with aggregates")
		}
	}
	// Resolve group-by columns.
	type colPos struct{ bi, ci int }
	groupPos := make([]colPos, len(s.GroupBy))
	for i, g := range s.GroupBy {
		bi, ci, err := resolveCol(bindings, g)
		if err != nil {
			return nil, err
		}
		groupPos[i] = colPos{bi, ci}
	}
	type group struct {
		firstRows [][]Value
		states    []aggState
	}
	groups := make(map[string]*group)
	var orderKeys []string // insertion order for determinism
	ec.cost.sorted += len(matched)
	for _, rows := range matched {
		var kb strings.Builder
		for _, gp := range groupPos {
			kb.WriteString(FormatValue(rows[gp.bi][gp.ci]))
			kb.WriteByte('\x00')
		}
		key := kb.String()
		g, ok := groups[key]
		if !ok {
			g = &group{firstRows: rows, states: make([]aggState, len(s.Items))}
			groups[key] = g
			orderKeys = append(orderKeys, key)
		}
		for i, it := range s.Items {
			if it.Agg == aggNone {
				continue
			}
			if it.AggStar {
				g.states[i].count++
				continue
			}
			bi, ci, err := resolveCol(bindings, it.AggCol)
			if err != nil {
				return nil, err
			}
			g.states[i].add(rows[bi][ci])
		}
	}
	cols, err := outputColumns(s, bindings)
	if err != nil {
		return nil, err
	}
	// SQL semantics: an ungrouped aggregate over an empty set still
	// yields one row (COUNT 0, SUM/AVG/MIN/MAX NULL).
	if len(groups) == 0 && len(s.GroupBy) == 0 {
		groups[""] = &group{firstRows: make([][]Value, len(bindings)), states: make([]aggState, len(s.Items))}
		orderKeys = append(orderKeys, "")
	}
	rs := &ResultSet{Columns: cols, Rows: make([][]Value, 0, len(groups))}
	for _, key := range orderKeys {
		g := groups[key]
		out := make([]Value, 0, len(cols))
		for i, it := range s.Items {
			if it.Agg == aggNone {
				bi, ci, err := resolveCol(bindings, it.Col)
				if err != nil {
					return nil, err
				}
				if g.firstRows[bi] == nil {
					out = append(out, nil) // synthetic empty-set group
					continue
				}
				out = append(out, g.firstRows[bi][ci])
				continue
			}
			st := g.states[i]
			switch it.Agg {
			case aggCount:
				out = append(out, st.count)
			case aggSum:
				if st.sumInts {
					out = append(out, int64(st.sum))
				} else {
					out = append(out, st.sum)
				}
			case aggAvg:
				if st.count == 0 {
					out = append(out, nil)
				} else {
					out = append(out, st.sum/float64(st.count))
				}
			case aggMin:
				out = append(out, st.min)
			case aggMax:
				out = append(out, st.max)
			}
		}
		rs.Rows = append(rs.Rows, out)
	}
	return rs, nil
}

// orderResult sorts the result set by output columns (names or aliases).
func orderResult(rs *ResultSet, keys []orderKey, ec *execCtx) error {
	type sortCol struct {
		idx  int
		desc bool
	}
	scols := make([]sortCol, len(keys))
	for i, k := range keys {
		idx := rs.ColIndex(k.Ref.Column)
		if idx < 0 {
			return fmt.Errorf("sqldb: ORDER BY column %q is not in the result; project it", k.Ref.Column)
		}
		scols[i] = sortCol{idx: idx, desc: k.Desc}
	}
	ec.cost.sorted += len(rs.Rows)
	var sortErr error
	sort.SliceStable(rs.Rows, func(i, j int) bool {
		for _, sc := range scols {
			c, err := compare(rs.Rows[i][sc.idx], rs.Rows[j][sc.idx])
			if err != nil {
				sortErr = err
				return false
			}
			if c != 0 {
				if sc.desc {
					return c > 0
				}
				return c < 0
			}
		}
		return false
	})
	return sortErr
}

func applyLimit(rs *ResultSet, limit, offset int) {
	if offset > 0 {
		if offset >= len(rs.Rows) {
			rs.Rows = rs.Rows[:0]
		} else {
			rs.Rows = rs.Rows[offset:]
		}
	}
	if limit >= 0 && limit < len(rs.Rows) {
		rs.Rows = rs.Rows[:limit]
	}
}
