package sqldb

import "maps"

// Clone returns a new DB with the same clock, timescale, and cost model
// and a deep copy of db's current schema and contents — including
// tombstoned row slots and auto-increment counters, so the clone's
// internal row IDs, scan order, and future auto-assigned primary keys
// match the original statement for statement. internal/dbtier uses Clone
// to seed read replicas from a populated primary.
//
// The statement cache and the apply hook are not copied. Each table is
// copied under its read lock, so cloning a live database yields a
// consistent per-table snapshot; clone while writers are quiesced if a
// cross-table point-in-time snapshot is required.
func (db *DB) Clone() *DB {
	clone := &DB{
		tables:    make(map[string]*table, 16),
		stmtCache: make(map[string]stmt, 64),
		clk:       db.clk,
		ts:        db.ts,
		cost:      db.cost,
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	for name, tbl := range db.tables {
		clone.tables[name] = tbl.clone()
	}
	return clone
}

// clone deep-copies one table under its read lock.
func (t *table) clone() *table {
	t.lock.RLock()
	defer t.lock.RUnlock()
	nt := &table{
		schema:   t.schema,
		pkCol:    t.pkCol,
		live:     t.live,
		nextAuto: t.nextAuto,
		rows:     make([][]Value, len(t.rows)),
		indexes:  make(map[string]*hashIndex, len(t.indexes)),
	}
	for i, row := range t.rows {
		if row != nil {
			nt.rows[i] = append([]Value(nil), row...)
		}
	}
	if t.pk != nil {
		nt.pk = maps.Clone(t.pk)
	}
	for name, idx := range t.indexes {
		m := make(map[Value][]int, len(idx.m))
		for v, ids := range idx.m {
			m[v] = append([]int(nil), ids...)
		}
		nt.indexes[name] = &hashIndex{col: idx.col, m: m}
	}
	return nt
}
