package sqldb

import "maps"

// Clone returns a new DB with the same clock, timescale, cost model,
// and concurrency mode, and a deep copy of db's schema and contents.
// See CloneSnapshot.
func (db *DB) Clone() *DB {
	clone, _ := db.CloneSnapshot()
	return clone
}

// CloneSnapshot clones the database at a single commit timestamp and
// returns that timestamp. The commit mutex is held for the copy, so the
// snapshot is consistent across every table and the auto-increment
// state matches the data exactly: a replica built from the clone that
// replays the replication log from asOf reproduces the original
// statement for statement, including slot layout, scan order, and
// auto-assigned primary keys. Version chains are flattened — the clone
// starts at commit timestamp zero with single-version rows (tombstoned
// slots preserved).
//
// The statement cache, apply hook, and replication log are not copied.
func (db *DB) CloneSnapshot() (*DB, int64) {
	clone := &DB{
		tables:    make(map[string]*table, 16),
		stmts:     newStmtCache(db.stmts.cap),
		clk:       db.clk,
		ts:        db.ts,
		cost:      db.cost,
		snapCount: make(map[int64]int),
	}
	clone.mvcc.Store(db.mvcc.Load())
	db.mu.RLock()
	defer db.mu.RUnlock()
	db.commitMu.Lock()
	defer db.commitMu.Unlock()
	asOf := db.commitTS.Load()
	for name, tbl := range db.tables {
		clone.tables[name] = tbl.cloneAt(asOf)
	}
	return clone, asOf
}

// cloneAt deep-copies one table as of commit timestamp ts, flattening
// each slot's version chain to a single version at timestamp zero.
// Caller holds the owning DB's commitMu, so no writer mutates the slot
// arena, the index maps, or nextAuto during the copy. Index buckets are
// shared, not copied — they are immutable (copy-on-write), so the clone
// and the original can never observe each other's additions.
func (t *table) cloneAt(ts int64) *table {
	nt := &table{
		schema:   t.schema,
		pkCol:    t.pkCol,
		nextAuto: t.nextAuto,
		indexes:  make(map[string]*hashIndex, len(t.indexes)),
		ordered:  make(map[string]*orderedIndex, len(t.ordered)),
	}
	slots := *t.slots.Load()
	ns := make([]*rowSlot, len(slots))
	live := int64(0)
	for i, s := range slots {
		cp := &rowSlot{}
		var row []Value
		if data := s.visible(ts); data != nil {
			row = append([]Value(nil), data...)
			live++
		}
		cp.head.Store(&rowVersion{data: row, begin: 0})
		ns[i] = cp
	}
	nt.slots.Store(&ns)
	nt.live.Store(live)
	if t.pk != nil {
		nt.pk = maps.Clone(t.pk)
	}
	for name, idx := range t.indexes {
		nt.indexes[name] = &hashIndex{col: idx.col, m: maps.Clone(idx.m)}
	}
	for name, idx := range t.ordered {
		nt.ordered[name] = idx.clone()
	}
	return nt
}
