package sqldb

import (
	"fmt"
	"strconv"
	"strings"
)

// sqlParser is a recursive-descent parser over the token stream.
type sqlParser struct {
	src          string
	toks         []sqlToken
	pos          int
	placeholders int
}

// parseSQL parses one statement.
func parseSQL(src string) (stmt, error) {
	toks, err := lexSQL(src)
	if err != nil {
		return nil, err
	}
	p := &sqlParser{src: src, toks: toks}
	var s stmt
	switch {
	case p.acceptKeyword("SELECT"):
		s, err = p.parseSelect()
	case p.acceptKeyword("EXPLAIN"):
		if err := p.expectKeyword("SELECT"); err != nil {
			return nil, err
		}
		var sel *selectStmt
		sel, err = p.parseSelect()
		if err == nil {
			s = &explainStmt{Sel: sel}
		}
	case p.acceptKeyword("INSERT"):
		s, err = p.parseInsert()
	case p.acceptKeyword("UPDATE"):
		s, err = p.parseUpdate()
	case p.acceptKeyword("DELETE"):
		s, err = p.parseDelete()
	default:
		return nil, p.errf("expected SELECT, INSERT, UPDATE, or DELETE")
	}
	if err != nil {
		return nil, err
	}
	if p.cur().kind != tokEnd {
		return nil, p.errf("trailing input %q", p.cur().text)
	}
	return s, nil
}

func (p *sqlParser) cur() sqlToken { return p.toks[p.pos] }

func (p *sqlParser) advance() sqlToken {
	t := p.toks[p.pos]
	if t.kind != tokEnd {
		p.pos++
	}
	return t
}

func (p *sqlParser) errf(format string, args ...any) error {
	return fmt.Errorf("sqldb: parse %q: %s (near byte %d)",
		p.src, fmt.Sprintf(format, args...), p.cur().pos)
}

// acceptKeyword consumes an identifier equal to kw (case-insensitive).
func (p *sqlParser) acceptKeyword(kw string) bool {
	if keywordEqual(p.cur(), kw) {
		p.pos++
		return true
	}
	return false
}

func (p *sqlParser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errf("expected %s", kw)
	}
	return nil
}

// acceptPunct consumes a punctuation token with the given text.
func (p *sqlParser) acceptPunct(text string) bool {
	if p.cur().kind == tokPunct && p.cur().text == text {
		p.pos++
		return true
	}
	return false
}

func (p *sqlParser) expectPunct(text string) error {
	if !p.acceptPunct(text) {
		return p.errf("expected %q", text)
	}
	return nil
}

// reserved keywords that terminate identifier positions.
var sqlReserved = map[string]bool{
	"SELECT": true, "EXPLAIN": true, "FROM": true, "WHERE": true, "GROUP": true, "ORDER": true,
	"BY": true, "LIMIT": true, "OFFSET": true, "INNER": true, "JOIN": true,
	"ON": true, "AS": true, "AND": true, "OR": true, "NOT": true, "IN": true,
	"IS": true, "NULL": true, "LIKE": true, "INSERT": true, "INTO": true,
	"VALUES": true, "UPDATE": true, "SET": true, "DELETE": true, "ASC": true,
	"DESC": true, "COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
	"TRUE": true, "FALSE": true,
}

func (p *sqlParser) parseIdent() (string, error) {
	t := p.cur()
	if t.kind != tokIdent || sqlReserved[strings.ToUpper(t.text)] {
		return "", p.errf("expected identifier, got %q", t.text)
	}
	p.pos++
	return t.text, nil
}

// parseColRef parses "col" or "table.col".
func (p *sqlParser) parseColRef() (colRef, error) {
	first, err := p.parseIdent()
	if err != nil {
		return colRef{}, err
	}
	if p.acceptPunct(".") {
		col, err := p.parseIdent()
		if err != nil {
			return colRef{}, err
		}
		return colRef{Table: first, Column: col}, nil
	}
	return colRef{Column: first}, nil
}

// parseOperand parses a literal, placeholder, or column reference.
func (p *sqlParser) parseOperand() (operand, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.pos++
		if strings.ContainsRune(t.text, '.') {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return operand{}, p.errf("bad number %q", t.text)
			}
			return operand{Lit: f, IsLit: true}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return operand{}, p.errf("bad number %q", t.text)
		}
		return operand{Lit: n, IsLit: true}, nil
	case t.kind == tokString:
		p.pos++
		return operand{Lit: t.text, IsLit: true}, nil
	case t.kind == tokPunct && t.text == "?":
		p.pos++
		op := operand{IsPlacehold: true, Placeholder: p.placeholders}
		p.placeholders++
		return op, nil
	case keywordEqual(t, "NULL"):
		p.pos++
		return operand{Lit: nil, IsLit: true}, nil
	case keywordEqual(t, "TRUE"):
		p.pos++
		return operand{Lit: true, IsLit: true}, nil
	case keywordEqual(t, "FALSE"):
		p.pos++
		return operand{Lit: false, IsLit: true}, nil
	case t.kind == tokIdent:
		c, err := p.parseColRef()
		if err != nil {
			return operand{}, err
		}
		return operand{Col: c}, nil
	default:
		return operand{}, p.errf("expected value, got %q", t.text)
	}
}

// ---- SELECT ----

func (p *sqlParser) parseSelect() (*selectStmt, error) {
	s := &selectStmt{Limit: -1}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		s.Items = append(s.Items, item)
		if !p.acceptPunct(",") {
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	from, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	s.From = from
	for {
		if p.acceptKeyword("INNER") {
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
		} else if !p.acceptKeyword("JOIN") {
			break
		}
		j, err := p.parseJoin()
		if err != nil {
			return nil, err
		}
		s.Joins = append(s.Joins, j)
	}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		s.Where = w
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			c, err := p.parseColRef()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, c)
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			c, err := p.parseColRef()
			if err != nil {
				return nil, err
			}
			key := orderKey{Ref: c}
			if p.acceptKeyword("DESC") {
				key.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			s.OrderBy = append(s.OrderBy, key)
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		n, err := p.parseNonNegInt()
		if err != nil {
			return nil, err
		}
		s.Limit = n
		if p.acceptKeyword("OFFSET") {
			off, err := p.parseNonNegInt()
			if err != nil {
				return nil, err
			}
			s.Offset = off
		}
	}
	return s, nil
}

func (p *sqlParser) parseNonNegInt() (int, error) {
	t := p.cur()
	if t.kind != tokNumber {
		return 0, p.errf("expected integer, got %q", t.text)
	}
	p.pos++
	n, err := strconv.Atoi(t.text)
	if err != nil || n < 0 {
		return 0, p.errf("expected non-negative integer, got %q", t.text)
	}
	return n, nil
}

var aggNames = map[string]aggKind{
	"COUNT": aggCount, "SUM": aggSum, "AVG": aggAvg, "MIN": aggMin, "MAX": aggMax,
}

func (p *sqlParser) parseSelectItem() (selectItem, error) {
	t := p.cur()
	if t.kind == tokPunct && t.text == "*" {
		p.pos++
		return selectItem{Star: true}, nil
	}
	if t.kind == tokIdent {
		if kind, ok := aggNames[strings.ToUpper(t.text)]; ok && p.toks[p.pos+1].kind == tokPunct && p.toks[p.pos+1].text == "(" {
			p.pos += 2 // func name and '('
			item := selectItem{Agg: kind}
			if p.acceptPunct("*") {
				if kind != aggCount {
					return selectItem{}, p.errf("only COUNT accepts *")
				}
				item.AggStar = true
			} else {
				c, err := p.parseColRef()
				if err != nil {
					return selectItem{}, err
				}
				item.AggCol = c
			}
			if err := p.expectPunct(")"); err != nil {
				return selectItem{}, err
			}
			if err := p.parseAlias(&item); err != nil {
				return selectItem{}, err
			}
			return item, nil
		}
	}
	// "t.*" needs a lookahead before parseColRef would choke on '*'.
	if t.kind == tokIdent && p.toks[p.pos+1].kind == tokPunct && p.toks[p.pos+1].text == "." &&
		p.toks[p.pos+2].kind == tokPunct && p.toks[p.pos+2].text == "*" {
		p.pos += 3
		return selectItem{Star: true, Table: t.text}, nil
	}
	c, err := p.parseColRef()
	if err != nil {
		return selectItem{}, err
	}
	item := selectItem{Col: c}
	if err := p.parseAlias(&item); err != nil {
		return selectItem{}, err
	}
	return item, nil
}

func (p *sqlParser) parseAlias(item *selectItem) error {
	if p.acceptKeyword("AS") {
		name, err := p.parseIdent()
		if err != nil {
			return err
		}
		item.Alias = name
	}
	return nil
}

func (p *sqlParser) parseTableRef() (tableRef, error) {
	name, err := p.parseIdent()
	if err != nil {
		return tableRef{}, err
	}
	ref := tableRef{Table: name}
	if p.acceptKeyword("AS") {
		alias, err := p.parseIdent()
		if err != nil {
			return tableRef{}, err
		}
		ref.Alias = alias
	} else if p.cur().kind == tokIdent && !sqlReserved[strings.ToUpper(p.cur().text)] {
		alias, err := p.parseIdent()
		if err != nil {
			return tableRef{}, err
		}
		ref.Alias = alias
	}
	return ref, nil
}

func (p *sqlParser) parseJoin() (joinClause, error) {
	ref, err := p.parseTableRef()
	if err != nil {
		return joinClause{}, err
	}
	if err := p.expectKeyword("ON"); err != nil {
		return joinClause{}, err
	}
	l, err := p.parseColRef()
	if err != nil {
		return joinClause{}, err
	}
	if err := p.expectPunct("="); err != nil {
		return joinClause{}, err
	}
	r, err := p.parseColRef()
	if err != nil {
		return joinClause{}, err
	}
	return joinClause{Table: ref, LCol: l, RCol: r}, nil
}

// ---- WHERE grammar ----

func (p *sqlParser) parseOr() (boolExpr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = orExpr{L: l, R: r}
	}
	return l, nil
}

func (p *sqlParser) parseAnd() (boolExpr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = andExpr{L: l, R: r}
	}
	return l, nil
}

func (p *sqlParser) parseUnary() (boolExpr, error) {
	if p.acceptKeyword("NOT") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return notExpr{E: e}, nil
	}
	if p.acceptPunct("(") {
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return p.parsePredicate()
}

func (p *sqlParser) parsePredicate() (boolExpr, error) {
	col, err := p.parseColRef()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	switch {
	case t.kind == tokPunct && (t.text == "=" || t.text == "!=" || t.text == "<>" ||
		t.text == "<" || t.text == "<=" || t.text == ">" || t.text == ">="):
		p.pos++
		rhs, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		op := t.text
		if op == "<>" {
			op = "!="
		}
		return cmpExpr{Col: col, Op: op, Rhs: rhs}, nil
	case keywordEqual(t, "LIKE"):
		p.pos++
		rhs, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		return likeExpr{Col: col, Rhs: rhs}, nil
	case keywordEqual(t, "NOT"):
		p.pos++
		switch {
		case p.acceptKeyword("LIKE"):
			rhs, err := p.parseOperand()
			if err != nil {
				return nil, err
			}
			return likeExpr{Col: col, Rhs: rhs, Neg: true}, nil
		case p.acceptKeyword("IN"):
			set, err := p.parseInSet()
			if err != nil {
				return nil, err
			}
			return inExpr{Col: col, Set: set, Neg: true}, nil
		default:
			return nil, p.errf("expected LIKE or IN after NOT")
		}
	case keywordEqual(t, "IN"):
		p.pos++
		set, err := p.parseInSet()
		if err != nil {
			return nil, err
		}
		return inExpr{Col: col, Set: set}, nil
	case keywordEqual(t, "IS"):
		p.pos++
		neg := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return nullExpr{Col: col, Neg: neg}, nil
	default:
		return nil, p.errf("expected comparison operator, got %q", t.text)
	}
}

func (p *sqlParser) parseInSet() ([]operand, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var set []operand
	for {
		op, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		set = append(set, op)
		if !p.acceptPunct(",") {
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return set, nil
}

// ---- INSERT / UPDATE / DELETE ----

func (p *sqlParser) parseInsert() (*insertStmt, error) {
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	table, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	s := &insertStmt{Table: table}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	for {
		col, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		s.Cols = append(s.Cols, col)
		if !p.acceptPunct(",") {
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	for {
		v, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		if !v.IsLit && !v.IsPlacehold {
			return nil, p.errf("INSERT values must be literals or placeholders")
		}
		s.Values = append(s.Values, v)
		if !p.acceptPunct(",") {
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if len(s.Cols) != len(s.Values) {
		return nil, p.errf("INSERT has %d columns but %d values", len(s.Cols), len(s.Values))
	}
	return s, nil
}

func (p *sqlParser) parseUpdate() (*updateStmt, error) {
	table, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	s := &updateStmt{Table: table}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		v, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		s.Cols = append(s.Cols, col)
		s.Vals = append(s.Vals, v)
		if !p.acceptPunct(",") {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		s.Where = w
	}
	return s, nil
}

func (p *sqlParser) parseDelete() (*deleteStmt, error) {
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	s := &deleteStmt{Table: table}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		s.Where = w
	}
	return s, nil
}
