package sqldb

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"stagedweb/internal/clock"
)

func TestCostCounterTotal(t *testing.T) {
	m := CostModel{
		PerStatement:  time.Millisecond,
		PerRowScanned: 10 * time.Microsecond,
		PerIndexProbe: 2 * time.Microsecond,
		PerRowMatched: 1 * time.Microsecond,
		PerSortRow:    3 * time.Microsecond,
		PerRowWritten: 100 * time.Microsecond,
	}
	c := costCounter{scanned: 100, probes: 5, matched: 10, sorted: 10, written: 2}
	want := time.Millisecond + 1000*time.Microsecond + 10*time.Microsecond +
		10*time.Microsecond + 30*time.Microsecond + 200*time.Microsecond
	if got := c.total(m); got != want {
		t.Fatalf("total = %v, want %v", got, want)
	}
}

func TestZeroCostModelChargesNothing(t *testing.T) {
	c := costCounter{scanned: 1 << 20, written: 1 << 20}
	if got := c.total(*ZeroCostModel()); got != 0 {
		t.Fatalf("zero model charged %v", got)
	}
}

// TestScanCostsMoreThanProbe verifies the core calibration property: a
// full scan of a large table charges orders of magnitude more than an
// indexed point query — the paper's fast/slow page dichotomy.
func TestScanCostsMoreThanProbe(t *testing.T) {
	db := Open(Options{Cost: ZeroCostModel()})
	db.MustCreateTable(Schema{
		Table:      "item",
		Columns:    []Column{{Name: "i_id", Type: Int}, {Name: "i_title", Type: String}},
		PrimaryKey: "i_id",
	})
	c := db.Connect()
	defer c.Close()
	for i := 1; i <= 5000; i++ {
		mustExec(t, c, "INSERT INTO item (i_id, i_title) VALUES (?, ?)", i, "title")
	}
	m := DefaultCostModel()

	probeCtx := &execCtx{args: []Value{int64(42)}}
	s, err := parseSQL("SELECT i_title FROM item WHERE i_id = ?")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.execSelect(s.(*selectStmt), probeCtx); err != nil {
		t.Fatal(err)
	}

	scanCtx := &execCtx{args: []Value{"%x%"}}
	s2, err := parseSQL("SELECT i_title FROM item WHERE i_title LIKE ?")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.execSelect(s2.(*selectStmt), scanCtx); err != nil {
		t.Fatal(err)
	}

	probeCost := probeCtx.cost.total(m)
	scanCost := scanCtx.cost.total(m)
	if scanCost < 100*probeCost {
		t.Fatalf("scan %v is not >=100x probe %v", scanCost, probeCost)
	}
	// And in absolute paper-time terms: the point query must be
	// milliseconds, the scan must be seconds-scale on a TPC-W-sized table.
	if probeCost > 50*time.Millisecond {
		t.Fatalf("probe too slow: %v", probeCost)
	}
	if scanCost < 500*time.Millisecond {
		t.Fatalf("scan too fast for the paper's slow-page class: %v", scanCost)
	}
}

// TestChargeSleepsScaled verifies the engine sleeps the modeled cost
// through the timescale.
func TestChargeSleepsScaled(t *testing.T) {
	db := Open(Options{
		Timescale: clock.Timescale(1000), // 1 paper-second = 1ms
		Cost: &CostModel{
			PerStatement: 100 * time.Millisecond, // paper time
		},
	})
	db.MustCreateTable(Schema{
		Table:      "t",
		Columns:    []Column{{Name: "id", Type: Int}},
		PrimaryKey: "id",
	})
	c := db.Connect()
	defer c.Close()
	start := time.Now()
	mustExec(t, c, "INSERT INTO t (id) VALUES (1)")
	elapsed := time.Since(start)
	// 100ms paper at 1000x = 100µs wall minimum.
	if elapsed < 100*time.Microsecond {
		t.Fatalf("statement took %v, expected >= 100µs of modeled latency", elapsed)
	}
	if elapsed > 100*time.Millisecond {
		t.Fatalf("statement took %v, timescale seems unapplied", elapsed)
	}
}

// TestWriterWaitsForReaders reproduces the admin-response phenomenon:
// an UPDATE on a table must wait for a long-running read query to finish.
func TestWriterWaitsForReaders(t *testing.T) {
	db := Open(Options{
		Timescale: clock.Timescale(100),
		Cost: &CostModel{
			PerRowScanned: 10 * time.Millisecond, // paper time; 1000 rows -> 10s paper -> 100ms wall
		},
	})
	db.MustCreateTable(Schema{
		Table:      "item",
		Columns:    []Column{{Name: "i_id", Type: Int}, {Name: "i_cost", Type: Float}},
		PrimaryKey: "i_id",
	})
	seed := db.Connect()
	for i := 1; i <= 1000; i++ {
		mustExec(t, seed, "INSERT INTO item (i_id, i_cost) VALUES (?, 1.0)", i)
	}
	seed.Close()

	readerStarted := make(chan struct{})
	readerDone := make(chan time.Time, 1)
	go func() {
		c := db.Connect()
		defer c.Close()
		close(readerStarted)
		// Scan query: holds the read lock for ~100ms wall.
		_, err := c.Query("SELECT i_id FROM item WHERE i_cost > 0.5")
		if err != nil {
			t.Error(err)
		}
		readerDone <- time.Now()
	}()
	<-readerStarted
	time.Sleep(5 * time.Millisecond) // let the reader take its lock

	w := db.Connect()
	defer w.Close()
	res, err := w.Exec("UPDATE item SET i_cost = 2.0 WHERE i_id = 1")
	writerDone := time.Now()
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 1 {
		t.Fatalf("RowsAffected = %d", res.RowsAffected)
	}
	readerFinish := <-readerDone
	if writerDone.Before(readerFinish) {
		t.Fatal("writer finished before the reader released the table lock")
	}
}

// TestIndexedEqualityChargesLess closes a long-standing blind spot:
// TestIndexMatchesScanProperty proves the indexed path returns the
// right rows, but nothing asserted it is *charged* less than the scan
// it replaces. Here an equality query on an indexed column must
// accumulate far less modeled cost than the same-shaped query on an
// unindexed column — under both storage engines, for both a value
// that exists (pay per entry visited) and one that does not (pay the
// probe, nearly nothing else).
func TestIndexedEqualityChargesLess(t *testing.T) {
	for _, mvcc := range []bool{false, true} {
		name := "lock"
		if mvcc {
			name = "mvcc"
		}
		t.Run(name, func(t *testing.T) {
			db := Open(Options{Cost: ZeroCostModel(), MVCC: mvcc})
			db.MustCreateTable(Schema{
				Table: "t",
				Columns: []Column{
					{Name: "id", Type: Int},
					{Name: "grp", Type: Int},
					{Name: "val", Type: Int},
				},
				PrimaryKey: "id",
				Indexes:    []string{"grp"},
			})
			c := db.Connect()
			defer c.Close()
			for i := 1; i <= 5000; i++ {
				mustExec(t, c, "INSERT INTO t (id, grp, val) VALUES (?, ?, ?)", i, i%50, i%50)
			}
			m := DefaultCostModel()

			charge := func(sql string, arg int64) time.Duration {
				t.Helper()
				s, err := parseSQL(sql)
				if err != nil {
					t.Fatal(err)
				}
				ctx := &execCtx{args: []Value{arg}}
				if _, err := db.execSelect(s.(*selectStmt), ctx); err != nil {
					t.Fatal(err)
				}
				return ctx.cost.total(m)
			}

			scanHit := charge("SELECT id FROM t WHERE val = ?", 7)
			scanMiss := charge("SELECT id FROM t WHERE val = ?", 999)
			idxHit := charge("SELECT id FROM t WHERE grp = ?", 7)
			idxMiss := charge("SELECT id FROM t WHERE grp = ?", 999)

			// The index must not merely win — it must win by enough to
			// move a page across the paper's quick/lengthy boundary.
			if scanHit < 20*idxHit {
				t.Fatalf("indexed hit %v is not >=20x cheaper than scan hit %v", idxHit, scanHit)
			}
			if scanMiss < 20*idxMiss {
				t.Fatalf("indexed miss %v is not >=20x cheaper than scan miss %v", idxMiss, scanMiss)
			}
			// A miss visits no entries: it may not charge more than a hit,
			// and the scan pays the full table either way.
			if idxMiss > idxHit {
				t.Fatalf("indexed miss %v charged more than hit %v", idxMiss, idxHit)
			}
			if scanMiss < scanHit/2 {
				t.Fatalf("scan miss %v did not pay the full-table price (hit %v)", scanMiss, scanHit)
			}
		})
	}
}

// Property: after an arbitrary interleaving of inserts, updates, and
// deletes, an indexed equality query returns exactly the rows a full scan
// predicate would. (TestIndexedEqualityChargesLess is the cost-side
// companion: the indexed path must also be charged less.)
func TestIndexMatchesScanProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := Open(Options{Cost: ZeroCostModel()})
		db.MustCreateTable(Schema{
			Table: "t",
			Columns: []Column{
				{Name: "id", Type: Int},
				{Name: "grp", Type: Int},
				{Name: "val", Type: Int},
			},
			PrimaryKey: "id",
			Indexes:    []string{"grp"},
		})
		c := db.Connect()
		defer c.Close()
		live := map[int64]int64{} // id -> grp
		nextID := int64(1)
		for op := 0; op < 200; op++ {
			switch r.Intn(4) {
			case 0, 1: // insert
				grp := int64(r.Intn(5))
				if _, err := c.Exec("INSERT INTO t (id, grp, val) VALUES (?, ?, ?)", nextID, grp, r.Intn(100)); err != nil {
					return false
				}
				live[nextID] = grp
				nextID++
			case 2: // update a random row's group
				if len(live) == 0 {
					continue
				}
				id := randomKey(r, live)
				grp := int64(r.Intn(5))
				if _, err := c.Exec("UPDATE t SET grp = ? WHERE id = ?", grp, id); err != nil {
					return false
				}
				live[id] = grp
			case 3: // delete a random row
				if len(live) == 0 {
					continue
				}
				id := randomKey(r, live)
				if _, err := c.Exec("DELETE FROM t WHERE id = ?", id); err != nil {
					return false
				}
				delete(live, id)
			}
		}
		// Compare indexed lookup vs model for each group.
		for grp := int64(0); grp < 5; grp++ {
			rs, err := c.Query("SELECT id FROM t WHERE grp = ?", grp)
			if err != nil {
				return false
			}
			want := 0
			for _, g := range live {
				if g == grp {
					want++
				}
			}
			if rs.Len() != want {
				return false
			}
			for i := 0; i < rs.Len(); i++ {
				if live[rs.Int(i, "id")] != grp {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func randomKey(r *rand.Rand, m map[int64]int64) int64 {
	n := r.Intn(len(m))
	for k := range m {
		if n == 0 {
			return k
		}
		n--
	}
	panic("unreachable")
}

// TestConnSerializesStatements verifies one connection cannot run two
// statements at once (the paper's per-thread connection discipline).
func TestConnSerializesStatements(t *testing.T) {
	db := Open(Options{
		Timescale: clock.Timescale(1),
		Cost:      &CostModel{PerStatement: 20 * time.Millisecond},
	})
	db.MustCreateTable(Schema{
		Table:      "t",
		Columns:    []Column{{Name: "id", Type: Int}},
		PrimaryKey: "id",
	})
	c := db.Connect()
	defer c.Close()

	var wg sync.WaitGroup
	busyErrs := 0
	var mu sync.Mutex
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			_, err := c.Exec("INSERT INTO t (id) VALUES (?)", id+1)
			if err == ErrConnBusy {
				mu.Lock()
				busyErrs++
				mu.Unlock()
			} else if err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if busyErrs == 0 {
		t.Fatal("concurrent statements on one connection were not rejected")
	}
}
