package sqldb

import (
	"fmt"
	"sort"
	"strings"
)

// binding is one table instance participating in a SELECT (FROM or JOIN),
// addressed by its alias. view is the snapshot the statement reads the
// table at: the latest state in lock mode (where the table lock
// serializes access), a fixed commit timestamp under MVCC.
type binding struct {
	ref  tableRef
	tbl  *table
	view tableView
}

// bindViews captures a read view of every binding at ts.
func bindViews(bindings []binding, ts int64) {
	for i := range bindings {
		bindings[i].view = bindings[i].tbl.view(ts)
	}
}

// execCtx carries per-statement state.
type execCtx struct {
	args []Value
	cost costCounter
	// sql is the original statement text, kept for the DML apply hook.
	sql string
}

// resolveBindings maps the FROM/JOIN clauses onto tables.
func (db *DB) resolveBindings(s *selectStmt) ([]binding, error) {
	refs := append([]tableRef{s.From}, make([]tableRef, 0, len(s.Joins))...)
	for _, j := range s.Joins {
		refs = append(refs, j.Table)
	}
	bindings := make([]binding, len(refs))
	seen := make(map[string]bool, len(refs))
	for i, ref := range refs {
		tbl, err := db.lookupTable(ref.Table)
		if err != nil {
			return nil, err
		}
		name := ref.name()
		if seen[name] {
			return nil, fmt.Errorf("sqldb: duplicate table alias %q", name)
		}
		seen[name] = true
		bindings[i] = binding{ref: ref, tbl: tbl}
	}
	return bindings, nil
}

// resolveCol locates a column reference among the bindings.
func resolveCol(bindings []binding, ref colRef) (bindIdx, colIdx int, err error) {
	if ref.Table != "" {
		for bi, b := range bindings {
			if b.ref.name() == ref.Table {
				ci := b.tbl.schema.colIndex(ref.Column)
				if ci < 0 {
					return 0, 0, fmt.Errorf("sqldb: table %q has no column %q", ref.Table, ref.Column)
				}
				return bi, ci, nil
			}
		}
		return 0, 0, fmt.Errorf("sqldb: unknown table %q in column reference", ref.Table)
	}
	found := -1
	for bi, b := range bindings {
		if ci := b.tbl.schema.colIndex(ref.Column); ci >= 0 {
			if found >= 0 {
				return 0, 0, fmt.Errorf("sqldb: ambiguous column %q", ref.Column)
			}
			found = bi
			colIdx = ci
		}
	}
	if found < 0 {
		return 0, 0, fmt.Errorf("sqldb: unknown column %q", ref.Column)
	}
	return found, colIdx, nil
}

// operandValue evaluates an operand against the current combined row
// (rows may be nil for row-independent evaluation).
func operandValue(op operand, bindings []binding, rows [][]Value, ec *execCtx) (Value, error) {
	switch {
	case op.IsLit:
		return op.Lit, nil
	case op.IsPlacehold:
		if op.Placeholder >= len(ec.args) {
			return nil, fmt.Errorf("sqldb: missing argument for placeholder %d", op.Placeholder+1)
		}
		return ec.args[op.Placeholder], nil
	default:
		if rows == nil {
			return nil, fmt.Errorf("sqldb: column %s in row-independent position", op.Col)
		}
		bi, ci, err := resolveCol(bindings, op.Col)
		if err != nil {
			return nil, err
		}
		return rows[bi][ci], nil
	}
}

// evalBool evaluates a WHERE tree against the combined row.
func evalBool(e boolExpr, bindings []binding, rows [][]Value, ec *execCtx) (bool, error) {
	switch t := e.(type) {
	case andExpr:
		l, err := evalBool(t.L, bindings, rows, ec)
		if err != nil || !l {
			return false, err
		}
		return evalBool(t.R, bindings, rows, ec)
	case orExpr:
		l, err := evalBool(t.L, bindings, rows, ec)
		if err != nil || l {
			return l, err
		}
		return evalBool(t.R, bindings, rows, ec)
	case notExpr:
		v, err := evalBool(t.E, bindings, rows, ec)
		return !v, err
	case cmpExpr:
		bi, ci, err := resolveCol(bindings, t.Col)
		if err != nil {
			return false, err
		}
		lhs := rows[bi][ci]
		rhs, err := operandValue(t.Rhs, bindings, rows, ec)
		if err != nil {
			return false, err
		}
		if lhs == nil || rhs == nil {
			// SQL three-valued logic degraded to false, except
			// equality-with-null which is still false.
			return false, nil
		}
		c, err := compare(lhs, rhs)
		if err != nil {
			return false, err
		}
		switch t.Op {
		case "=":
			return c == 0, nil
		case "!=":
			return c != 0, nil
		case "<":
			return c < 0, nil
		case "<=":
			return c <= 0, nil
		case ">":
			return c > 0, nil
		case ">=":
			return c >= 0, nil
		default:
			return false, fmt.Errorf("sqldb: unknown operator %q", t.Op)
		}
	case likeExpr:
		bi, ci, err := resolveCol(bindings, t.Col)
		if err != nil {
			return false, err
		}
		rhs, err := operandValue(t.Rhs, bindings, rows, ec)
		if err != nil {
			return false, err
		}
		s, ok1 := rows[bi][ci].(string)
		pat, ok2 := rhs.(string)
		if !ok1 || !ok2 {
			return false, nil
		}
		m := likeMatch(s, pat)
		if t.Neg {
			m = !m
		}
		return m, nil
	case inExpr:
		bi, ci, err := resolveCol(bindings, t.Col)
		if err != nil {
			return false, err
		}
		lhs := rows[bi][ci]
		for _, op := range t.Set {
			rhs, err := operandValue(op, bindings, rows, ec)
			if err != nil {
				return false, err
			}
			if valuesEqual(lhs, rhs) {
				return !t.Neg, nil
			}
		}
		return t.Neg, nil
	case nullExpr:
		bi, ci, err := resolveCol(bindings, t.Col)
		if err != nil {
			return false, err
		}
		isNull := rows[bi][ci] == nil
		if t.Neg {
			return !isNull, nil
		}
		return isNull, nil
	default:
		return false, fmt.Errorf("sqldb: unknown boolean expression %T", e)
	}
}

// eqLookup describes an index-usable equality found in the WHERE clause.
type eqLookup struct {
	col string
	val Value
}

// findEqLookup walks AND-connected predicates for "col = value" where col
// belongs to binding b, value is row-independent, and the table has an
// index on col.
func findEqLookup(e boolExpr, bindings []binding, b binding, ec *execCtx) *eqLookup {
	switch t := e.(type) {
	case andExpr:
		if l := findEqLookup(t.L, bindings, b, ec); l != nil {
			return l
		}
		return findEqLookup(t.R, bindings, b, ec)
	case cmpExpr:
		if t.Op != "=" || (!t.Rhs.IsLit && !t.Rhs.IsPlacehold) {
			return nil
		}
		bi, _, err := resolveCol(bindings, t.Col)
		if err != nil || bindings[bi].ref.name() != b.ref.name() {
			return nil
		}
		if !b.tbl.hasIndex(t.Col.Column) {
			return nil
		}
		v, err := operandValue(t.Rhs, bindings, nil, ec)
		if err != nil {
			return nil
		}
		nv, err := normalize(v)
		if err != nil {
			return nil
		}
		return &eqLookup{col: t.Col.Column, val: nv}
	default:
		return nil
	}
}

// candidateRows yields the row IDs of table b to visit, using an index
// when the WHERE clause allows, and charges scan/probe costs. Index
// results are hints — ids whose visible row no longer matches are
// filtered by the caller's predicate re-check.
func candidateRows(where boolExpr, bindings []binding, b binding, ec *execCtx) []int {
	if where != nil {
		if lk := findEqLookup(where, bindings, b, ec); lk != nil {
			return indexedRows(b.view, lk.col, lk.val, ec)
		}
	}
	// Full scan.
	n := b.view.size()
	ids := make([]int, 0, n)
	for id := 0; id < n; id++ {
		if b.view.row(id) != nil {
			ids = append(ids, id)
		}
	}
	ec.cost.scanned += n
	return ids
}

// indexedRows resolves an equality through the primary key or a secondary
// index and charges probe costs.
func indexedRows(v tableView, col string, val Value, ec *execCtx) []int {
	t := v.tbl
	if t.pkCol >= 0 && t.schema.Columns[t.pkCol].Name == col {
		ec.cost.probes++
		key, ok := val.(int64)
		if !ok {
			if f, fok := val.(float64); fok {
				key, ok = int64(f), true
			}
		}
		if !ok {
			return nil
		}
		if id, found := v.lookupPK(key); found {
			return []int{id}
		}
		return nil
	}
	ids, _ := v.lookupIndex(col, val)
	ec.cost.probes += len(ids) + 1
	return ids
}

// execSelect runs a SELECT. In lock mode it holds the read locks of its
// tables for the whole cost-padded statement (the paper's contention
// behavior); under MVCC it reads a fixed snapshot lock-free and charges
// cost with nothing held, so readers never block writers or each other.
func (db *DB) execSelect(s *selectStmt, ec *execCtx) (*ResultSet, error) {
	bindings, err := db.resolveBindings(s)
	if err != nil {
		return nil, err
	}
	if db.mvcc.Load() {
		ts := db.commitTS.Load()
		db.snapshotReads.Inc()
		db.pinSnapshot(ts)
		defer db.unpinSnapshot(ts)
		bindViews(bindings, ts)
		defer db.chargeCost(ec) // no locks held; the sleep delays only this statement
		return db.runSelect(s, bindings, ec)
	}
	unlock := db.lockTables(bindings, false)
	defer unlock()
	defer db.chargeCost(ec) // sleep the cost before releasing the locks
	bindViews(bindings, latestTS)
	return db.runSelect(s, bindings, ec)
}

// execSelectAt runs a SELECT lock-free against the snapshot at ts — the
// engine behind Snapshot.Query, valid in either concurrency mode.
func (db *DB) execSelectAt(s *selectStmt, ec *execCtx, ts int64) (*ResultSet, error) {
	bindings, err := db.resolveBindings(s)
	if err != nil {
		return nil, err
	}
	db.pinSnapshot(ts)
	defer db.unpinSnapshot(ts)
	bindViews(bindings, ts)
	defer db.chargeCost(ec)
	return db.runSelect(s, bindings, ec)
}

// runSelect is the mode-independent SELECT core: join planning,
// predicate pushdown, enumeration, aggregation, ordering, projection.
// Every row access goes through the bindings' views.
func (db *DB) runSelect(s *selectStmt, bindings []binding, ec *execCtx) (*ResultSet, error) {
	// Pre-resolve join sides: joins[i] extends binding i+1.
	plans := make([]joinPlan, len(s.Joins))
	for i, j := range s.Joins {
		inner := bindings[i+1]
		visible := bindings[:i+1]
		lInner := colBelongsTo(inner, j.LCol)
		rInner := colBelongsTo(inner, j.RCol)
		switch {
		case lInner && !rInner:
			plans[i] = joinPlan{innerCol: inner.tbl.schema.colIndex(j.LCol.Column), innerName: j.LCol.Column, outerRef: j.RCol}
		case rInner && !lInner:
			plans[i] = joinPlan{innerCol: inner.tbl.schema.colIndex(j.RCol.Column), innerName: j.RCol.Column, outerRef: j.LCol}
		default:
			return nil, fmt.Errorf("sqldb: join ON must relate %q to an earlier table", inner.ref.name())
		}
		bi, ci, err := resolveCol(visible, plans[i].outerRef)
		if err != nil {
			return nil, fmt.Errorf("sqldb: join outer column: %w", err)
		}
		plans[i].outerBi, plans[i].outerCi = bi, ci
	}

	// Compile the WHERE clause once, split into conjuncts applied at the
	// shallowest join depth possible (predicate pushdown).
	preds, err := compileWhere(s.Where, bindings)
	if err != nil {
		return nil, err
	}

	// Nested-loop enumeration with pushdown: candidate rows for the FROM
	// table, then joins, applying each predicate as soon as its deepest
	// referenced binding is bound.
	matched, err := db.enumerate(s, bindings, plans, preds, ec)
	if err != nil {
		return nil, err
	}

	hasAgg := false
	for _, it := range s.Items {
		if it.Agg != aggNone {
			hasAgg = true
			break
		}
	}

	var rs *ResultSet
	if hasAgg || len(s.GroupBy) > 0 {
		rs, err = db.aggregate(s, bindings, matched, ec)
		if err != nil {
			return nil, err
		}
		// Aggregated queries order by output columns, including
		// aggregate aliases (ORDER BY qty DESC).
		if len(s.OrderBy) > 0 {
			if err := orderResult(rs, s.OrderBy, ec); err != nil {
				return nil, err
			}
		}
	} else {
		// Plain queries may order by any table column, projected or not
		// (ORDER BY i_pub_date DESC with only i_title selected), so sort
		// the combined rows before projection. Aliases that are not
		// table columns fall back to a post-projection sort.
		sortedPre := false
		if len(s.OrderBy) > 0 {
			ok, err := orderCombined(matched, bindings, s.OrderBy, ec)
			if err != nil {
				return nil, err
			}
			sortedPre = ok
		}
		rs, err = db.project(s, bindings, matched, ec)
		if err != nil {
			return nil, err
		}
		if len(s.OrderBy) > 0 && !sortedPre {
			if err := orderResult(rs, s.OrderBy, ec); err != nil {
				return nil, err
			}
		}
	}
	applyLimit(rs, s.Limit, s.Offset)
	return rs, nil
}

// orderCombined sorts joined rows by table columns. It reports false
// (without sorting) when a key does not resolve to a table column, in
// which case the caller sorts the projected output instead.
func orderCombined(matched [][][]Value, bindings []binding, keys []orderKey, ec *execCtx) (bool, error) {
	type sortCol struct {
		bi, ci int
		desc   bool
	}
	scols := make([]sortCol, len(keys))
	for i, k := range keys {
		bi, ci, err := resolveCol(bindings, k.Ref)
		if err != nil {
			return false, nil // alias; sort after projection
		}
		scols[i] = sortCol{bi: bi, ci: ci, desc: k.Desc}
	}
	ec.cost.sorted += len(matched)
	var sortErr error
	sort.SliceStable(matched, func(i, j int) bool {
		for _, sc := range scols {
			c, err := compare(matched[i][sc.bi][sc.ci], matched[j][sc.bi][sc.ci])
			if err != nil {
				sortErr = err
				return false
			}
			if c != 0 {
				if sc.desc {
					return c > 0
				}
				return c < 0
			}
		}
		return false
	})
	if sortErr != nil {
		return false, sortErr
	}
	return true, nil
}

func colBelongsTo(b binding, ref colRef) bool {
	if ref.Table != "" {
		return ref.Table == b.ref.name()
	}
	return b.tbl.schema.colIndex(ref.Column) >= 0
}

// joinPlan pre-resolves one join: which column of the newly joined table
// matches which already-visible column.
type joinPlan struct {
	innerCol  int    // column index in the inner (new) table
	innerName string // column name, for index lookup
	outerRef  colRef
	outerBi   int // resolved outer column position
	outerCi   int
}

// enumerate runs the nested-loop join with predicate pushdown and returns
// the fully matched combined rows.
func (db *DB) enumerate(s *selectStmt, bindings []binding, plans []joinPlan, preds [][]compiledPred, ec *execCtx) ([][][]Value, error) {
	var out [][][]Value
	rows := make([][]Value, len(bindings))

	// applyPreds evaluates the depth-i conjuncts on the partial row.
	applyPreds := func(i int) (bool, error) {
		for _, p := range preds[i] {
			ok, err := p.eval(rows, ec)
			if err != nil || !ok {
				return false, err
			}
		}
		return true, nil
	}

	var rec func(i int) error
	rec = func(i int) error {
		if i >= len(bindings) {
			cp := make([][]Value, len(rows))
			copy(cp, rows)
			out = append(out, cp)
			ec.cost.matched++
			return nil
		}
		plan := plans[i-1]
		outerVal := rows[plan.outerBi][plan.outerCi]
		inner := bindings[i]
		var ids []int
		if inner.tbl.hasIndex(plan.innerName) {
			ids = indexedRows(inner.view, plan.innerName, outerVal, ec)
		} else {
			n := inner.view.size()
			ec.cost.scanned += n
			for id := 0; id < n; id++ {
				if row := inner.view.row(id); row != nil && valuesEqual(row[plan.innerCol], outerVal) {
					ids = append(ids, id)
				}
			}
		}
		for _, id := range ids {
			row := inner.view.row(id)
			// Re-check the join equality: index buckets are stale-tolerant
			// hints, so an id may point at a row whose visible version no
			// longer (or, at this snapshot, does not yet) match.
			if row == nil || !valuesEqual(row[plan.innerCol], outerVal) {
				continue
			}
			rows[i] = row
			ok, err := applyPreds(i)
			if err != nil {
				return err
			}
			if !ok {
				continue
			}
			if err := rec(i + 1); err != nil {
				return err
			}
		}
		rows[i] = nil
		return nil
	}

	for _, id := range candidateRows(s.Where, bindings, bindings[0], ec) {
		rows[0] = bindings[0].view.row(id)
		if rows[0] == nil {
			continue
		}
		ok, err := applyPreds(0)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		if err := rec(1); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// outputColumns computes the result column names for the projection.
func outputColumns(s *selectStmt, bindings []binding) ([]string, error) {
	var cols []string
	for _, it := range s.Items {
		switch {
		case it.Star:
			for _, b := range bindings {
				if it.Table != "" && b.ref.name() != it.Table {
					continue
				}
				for _, c := range b.tbl.schema.Columns {
					cols = append(cols, c.Name)
				}
			}
		case it.Agg != aggNone:
			cols = append(cols, aggOutputName(it))
		default:
			if it.Alias != "" {
				cols = append(cols, it.Alias)
			} else {
				cols = append(cols, it.Col.Column)
			}
		}
	}
	return cols, nil
}

func aggOutputName(it selectItem) string {
	if it.Alias != "" {
		return it.Alias
	}
	var fn string
	switch it.Agg {
	case aggCount:
		fn = "count"
	case aggSum:
		fn = "sum"
	case aggAvg:
		fn = "avg"
	case aggMin:
		fn = "min"
	case aggMax:
		fn = "max"
	}
	if it.AggStar {
		return fn
	}
	return fn + "_" + it.AggCol.Column
}

// project materializes a non-aggregate result.
func (db *DB) project(s *selectStmt, bindings []binding, matched [][][]Value, ec *execCtx) (*ResultSet, error) {
	cols, err := outputColumns(s, bindings)
	if err != nil {
		return nil, err
	}
	rs := &ResultSet{Columns: cols, Rows: make([][]Value, 0, len(matched))}
	for _, rows := range matched {
		out := make([]Value, 0, len(cols))
		for _, it := range s.Items {
			switch {
			case it.Star:
				for bi, b := range bindings {
					if it.Table != "" && b.ref.name() != it.Table {
						continue
					}
					out = append(out, rows[bi]...)
				}
			default:
				bi, ci, err := resolveCol(bindings, it.Col)
				if err != nil {
					return nil, err
				}
				out = append(out, rows[bi][ci])
			}
		}
		rs.Rows = append(rs.Rows, out)
	}
	return rs, nil
}

// aggState accumulates one aggregate over one group.
type aggState struct {
	count    int64
	sum      float64
	sumInts  bool
	min, max Value
	seen     bool
}

func (a *aggState) add(v Value) {
	if v == nil {
		return
	}
	a.count++
	if n, ok := asNumber(v); ok {
		a.sum += n
		if !a.seen {
			a.sumInts = true
		}
		if _, isInt := v.(int64); !isInt {
			a.sumInts = false
		}
	}
	if !a.seen {
		a.min, a.max, a.seen = v, v, true
		return
	}
	if c, err := compare(v, a.min); err == nil && c < 0 {
		a.min = v
	}
	if c, err := compare(v, a.max); err == nil && c > 0 {
		a.max = v
	}
}

// aggregate materializes a grouped/aggregated result.
func (db *DB) aggregate(s *selectStmt, bindings []binding, matched [][][]Value, ec *execCtx) (*ResultSet, error) {
	for _, it := range s.Items {
		if it.Star {
			return nil, fmt.Errorf("sqldb: SELECT * cannot be combined with aggregates")
		}
	}
	// Resolve group-by columns.
	type colPos struct{ bi, ci int }
	groupPos := make([]colPos, len(s.GroupBy))
	for i, g := range s.GroupBy {
		bi, ci, err := resolveCol(bindings, g)
		if err != nil {
			return nil, err
		}
		groupPos[i] = colPos{bi, ci}
	}
	type group struct {
		firstRows [][]Value
		states    []aggState
	}
	groups := make(map[string]*group)
	var orderKeys []string // insertion order for determinism
	ec.cost.sorted += len(matched)
	for _, rows := range matched {
		var kb strings.Builder
		for _, gp := range groupPos {
			kb.WriteString(FormatValue(rows[gp.bi][gp.ci]))
			kb.WriteByte('\x00')
		}
		key := kb.String()
		g, ok := groups[key]
		if !ok {
			g = &group{firstRows: rows, states: make([]aggState, len(s.Items))}
			groups[key] = g
			orderKeys = append(orderKeys, key)
		}
		for i, it := range s.Items {
			if it.Agg == aggNone {
				continue
			}
			if it.AggStar {
				g.states[i].count++
				continue
			}
			bi, ci, err := resolveCol(bindings, it.AggCol)
			if err != nil {
				return nil, err
			}
			g.states[i].add(rows[bi][ci])
		}
	}
	cols, err := outputColumns(s, bindings)
	if err != nil {
		return nil, err
	}
	// SQL semantics: an ungrouped aggregate over an empty set still
	// yields one row (COUNT 0, SUM/AVG/MIN/MAX NULL).
	if len(groups) == 0 && len(s.GroupBy) == 0 {
		groups[""] = &group{firstRows: make([][]Value, len(bindings)), states: make([]aggState, len(s.Items))}
		orderKeys = append(orderKeys, "")
	}
	rs := &ResultSet{Columns: cols, Rows: make([][]Value, 0, len(groups))}
	for _, key := range orderKeys {
		g := groups[key]
		out := make([]Value, 0, len(cols))
		for i, it := range s.Items {
			if it.Agg == aggNone {
				bi, ci, err := resolveCol(bindings, it.Col)
				if err != nil {
					return nil, err
				}
				if g.firstRows[bi] == nil {
					out = append(out, nil) // synthetic empty-set group
					continue
				}
				out = append(out, g.firstRows[bi][ci])
				continue
			}
			st := g.states[i]
			switch it.Agg {
			case aggCount:
				out = append(out, st.count)
			case aggSum:
				if st.sumInts {
					out = append(out, int64(st.sum))
				} else {
					out = append(out, st.sum)
				}
			case aggAvg:
				if st.count == 0 {
					out = append(out, nil)
				} else {
					out = append(out, st.sum/float64(st.count))
				}
			case aggMin:
				out = append(out, st.min)
			case aggMax:
				out = append(out, st.max)
			}
		}
		rs.Rows = append(rs.Rows, out)
	}
	return rs, nil
}

// orderResult sorts the result set by output columns (names or aliases).
func orderResult(rs *ResultSet, keys []orderKey, ec *execCtx) error {
	type sortCol struct {
		idx  int
		desc bool
	}
	scols := make([]sortCol, len(keys))
	for i, k := range keys {
		idx := rs.ColIndex(k.Ref.Column)
		if idx < 0 {
			return fmt.Errorf("sqldb: ORDER BY column %q is not in the result; project it", k.Ref.Column)
		}
		scols[i] = sortCol{idx: idx, desc: k.Desc}
	}
	ec.cost.sorted += len(rs.Rows)
	var sortErr error
	sort.SliceStable(rs.Rows, func(i, j int) bool {
		for _, sc := range scols {
			c, err := compare(rs.Rows[i][sc.idx], rs.Rows[j][sc.idx])
			if err != nil {
				sortErr = err
				return false
			}
			if c != 0 {
				if sc.desc {
					return c > 0
				}
				return c < 0
			}
		}
		return false
	})
	return sortErr
}

func applyLimit(rs *ResultSet, limit, offset int) {
	if offset > 0 {
		if offset >= len(rs.Rows) {
			rs.Rows = rs.Rows[:0]
		} else {
			rs.Rows = rs.Rows[offset:]
		}
	}
	if limit >= 0 && limit < len(rs.Rows) {
		rs.Rows = rs.Rows[:limit]
	}
}

// ---- DML ----
//
// Every DML statement is split into a read phase and a commit. The read
// phase runs against a snapshot view (the statement's write set: which
// slots to touch and the fully-built replacement rows); the commit
// validates and installs versions under db.commitMu — a critical
// section that covers only validation, version install, log append, and
// the timestamp bump, never cost-model sleeps.
//
// In lock mode the statement additionally holds the table's write lock
// around both phases (and charges cost under it), reproducing the
// paper's serialized writer. Under MVCC the table lock is not taken:
// validation is first-writer-wins — if any slot in the write set gained
// a version newer than the statement's snapshot, the statement aborts
// with ErrWriteConflict and Conn.Exec retries it on a fresh snapshot.

// rowWrite is one row of a statement's write set: the slot to replace
// and its fully-built next version.
type rowWrite struct {
	id  int
	row []Value
}

func (db *DB) execInsert(s *insertStmt, ec *execCtx) (ExecResult, error) {
	tbl, err := db.lookupTable(s.Table)
	if err != nil {
		return ExecResult{}, err
	}
	row := make([]Value, len(tbl.schema.Columns))
	for i, col := range s.Cols {
		ci := tbl.schema.colIndex(col)
		if ci < 0 {
			return ExecResult{}, fmt.Errorf("sqldb: table %q has no column %q", s.Table, col)
		}
		v, err := operandValue(s.Values[i], nil, nil, ec)
		if err != nil {
			return ExecResult{}, err
		}
		nv, err := normalize(v)
		if err != nil {
			return ExecResult{}, err
		}
		if !tbl.schema.Columns[ci].Type.accepts(nv) {
			return ExecResult{}, fmt.Errorf("sqldb: column %s.%s (%s) rejects %T",
				s.Table, col, tbl.schema.Columns[ci].Type, nv)
		}
		row[ci] = nv
	}
	if db.mvcc.Load() {
		res, err := db.commitInsert(tbl, row, ec)
		if err != nil {
			return ExecResult{}, err
		}
		db.chargeCost(ec) // outside every lock
		return res, nil
	}
	tbl.lock.Lock()
	defer tbl.lock.Unlock()
	// Lock engine only: sleeping the statement's cost under the table
	// lock IS the paper's baseline contention model. The MVCC paths
	// above charge outside every lock, and locksleep keeps them that way.
	defer db.chargeCost(ec) //lint:allow locksleep(lock-engine charges under the table lock by design)
	return db.commitInsert(tbl, row, ec)
}

// commitInsert validates and installs one insert. Inserts have no read
// set, so there is nothing to conflict on — duplicate-key errors are
// real errors, not retryable conflicts.
func (db *DB) commitInsert(tbl *table, row []Value, ec *execCtx) (ExecResult, error) {
	db.commitMu.Lock()
	defer db.commitMu.Unlock()
	if err := tbl.checkInsert(row); err != nil {
		return ExecResult{}, err
	}
	ts := db.commitTS.Load() + 1
	tbl.applyInsert(row, ts)
	ec.cost.written++
	res := ExecResult{RowsAffected: 1, CommitTS: ts}
	if tbl.pkCol >= 0 {
		if id, ok := row[tbl.pkCol].(int64); ok {
			res.LastInsertID = id
		}
	}
	db.finishCommit(ec, ts)
	return res, nil
}

func (db *DB) execUpdate(s *updateStmt, ec *execCtx) (ExecResult, error) {
	tbl, err := db.lookupTable(s.Table)
	if err != nil {
		return ExecResult{}, err
	}
	cols := make([]int, len(s.Cols))
	for i, col := range s.Cols {
		ci := tbl.schema.colIndex(col)
		if ci < 0 {
			return ExecResult{}, fmt.Errorf("sqldb: table %q has no column %q", s.Table, col)
		}
		cols[i] = ci
	}
	if db.mvcc.Load() {
		snapTS := db.commitTS.Load()
		db.pinSnapshot(snapTS)
		defer db.unpinSnapshot(snapTS)
		b := binding{ref: tableRef{Table: s.Table}, tbl: tbl, view: tbl.view(snapTS)}
		writes, err := db.collectUpdates(s, b, cols, ec)
		if err != nil {
			return ExecResult{}, err
		}
		res, err := db.commitWrites(tbl, snapTS, writes, nil, ec, true)
		if err != nil {
			return ExecResult{}, err
		}
		db.chargeCost(ec) // outside every lock
		return res, nil
	}
	tbl.lock.Lock()
	defer tbl.lock.Unlock()
	// Lock engine only: sleeping the statement's cost under the table
	// lock IS the paper's baseline contention model. The MVCC paths
	// above charge outside every lock, and locksleep keeps them that way.
	defer db.chargeCost(ec) //lint:allow locksleep(lock-engine charges under the table lock by design)
	b := binding{ref: tableRef{Table: s.Table}, tbl: tbl, view: tbl.view(latestTS)}
	writes, err := db.collectUpdates(s, b, cols, ec)
	if err != nil {
		return ExecResult{}, err
	}
	return db.commitWrites(tbl, 0, writes, nil, ec, false)
}

// collectUpdates runs an UPDATE's read phase: find matching rows in the
// view, evaluate the SET expressions against the snapshot row, and
// build the full replacement rows.
func (db *DB) collectUpdates(s *updateStmt, b binding, cols []int, ec *execCtx) ([]rowWrite, error) {
	bindings := []binding{b}
	tbl := b.tbl
	ids := candidateRows(s.Where, bindings, b, ec)
	rows := make([][]Value, 1)
	var writes []rowWrite
	for _, id := range ids {
		rows[0] = b.view.row(id)
		if rows[0] == nil {
			continue
		}
		if s.Where != nil {
			ok, err := evalBool(s.Where, bindings, rows, ec)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		newRow := append([]Value(nil), rows[0]...)
		for i, op := range s.Vals {
			v, err := operandValue(op, bindings, rows, ec)
			if err != nil {
				return nil, err
			}
			nv, err := normalize(v)
			if err != nil {
				return nil, err
			}
			if !tbl.schema.Columns[cols[i]].Type.accepts(nv) {
				return nil, fmt.Errorf("sqldb: column %s.%s (%s) rejects %T",
					tbl.schema.Table, s.Cols[i], tbl.schema.Columns[cols[i]].Type, nv)
			}
			newRow[cols[i]] = nv
		}
		writes = append(writes, rowWrite{id: id, row: newRow})
	}
	return writes, nil
}

func (db *DB) execDelete(s *deleteStmt, ec *execCtx) (ExecResult, error) {
	tbl, err := db.lookupTable(s.Table)
	if err != nil {
		return ExecResult{}, err
	}
	if db.mvcc.Load() {
		snapTS := db.commitTS.Load()
		db.pinSnapshot(snapTS)
		defer db.unpinSnapshot(snapTS)
		b := binding{ref: tableRef{Table: s.Table}, tbl: tbl, view: tbl.view(snapTS)}
		deletes, err := db.collectDeletes(s, b, ec)
		if err != nil {
			return ExecResult{}, err
		}
		res, err := db.commitWrites(tbl, snapTS, nil, deletes, ec, true)
		if err != nil {
			return ExecResult{}, err
		}
		db.chargeCost(ec) // outside every lock
		return res, nil
	}
	tbl.lock.Lock()
	defer tbl.lock.Unlock()
	// Lock engine only: sleeping the statement's cost under the table
	// lock IS the paper's baseline contention model. The MVCC paths
	// above charge outside every lock, and locksleep keeps them that way.
	defer db.chargeCost(ec) //lint:allow locksleep(lock-engine charges under the table lock by design)
	b := binding{ref: tableRef{Table: s.Table}, tbl: tbl, view: tbl.view(latestTS)}
	deletes, err := db.collectDeletes(s, b, ec)
	if err != nil {
		return ExecResult{}, err
	}
	return db.commitWrites(tbl, 0, nil, deletes, ec, false)
}

// collectDeletes runs a DELETE's read phase: the slot ids of matching
// visible rows.
func (db *DB) collectDeletes(s *deleteStmt, b binding, ec *execCtx) ([]int, error) {
	bindings := []binding{b}
	ids := candidateRows(s.Where, bindings, b, ec)
	rows := make([][]Value, 1)
	var deletes []int
	for _, id := range ids {
		rows[0] = b.view.row(id)
		if rows[0] == nil {
			continue
		}
		if s.Where != nil {
			ok, err := evalBool(s.Where, bindings, rows, ec)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		deletes = append(deletes, id)
	}
	return deletes, nil
}

// commitWrites validates and installs an UPDATE/DELETE write set as one
// atomic commit. With validate set (MVCC), first-writer-wins: any slot
// in the write set with a version newer than snapTS aborts the whole
// statement before anything is installed, so a statement is never
// half-applied. Primary-key checks also run before any install for the
// same all-or-nothing guarantee. A statement that matched zero rows
// still commits (timestamp, log entry, hook) — replicas replay the
// no-op, keeping the log contiguous.
func (db *DB) commitWrites(tbl *table, snapTS int64, updates []rowWrite, deletes []int, ec *execCtx, validate bool) (ExecResult, error) {
	db.commitMu.Lock()
	defer db.commitMu.Unlock()
	if validate {
		for _, w := range updates {
			if tbl.latestBegin(w.id) > snapTS {
				db.conflicts.Inc()
				return ExecResult{}, ErrWriteConflict
			}
		}
		for _, id := range deletes {
			if tbl.latestBegin(id) > snapTS {
				db.conflicts.Inc()
				return ExecResult{}, ErrWriteConflict
			}
		}
	}
	for _, w := range updates {
		if err := tbl.checkUpdate(w.id, w.row); err != nil {
			return ExecResult{}, err
		}
	}
	ts := db.commitTS.Load() + 1
	horizon := db.pruneHorizon()
	for _, w := range updates {
		tbl.applyUpdate(w.id, w.row, ts, horizon)
		ec.cost.written++
	}
	for _, id := range deletes {
		tbl.applyDelete(id, ts, horizon)
		ec.cost.written++
	}
	db.finishCommit(ec, ts)
	return ExecResult{RowsAffected: int64(len(updates) + len(deletes)), CommitTS: ts}, nil
}

// lockTables read- or write-locks every distinct table among the
// bindings in name order (a canonical order prevents deadlock between
// concurrent multi-table statements) and returns the unlock function.
func (db *DB) lockTables(bindings []binding, write bool) func() {
	uniq := make(map[string]*table, len(bindings))
	for _, b := range bindings {
		uniq[b.tbl.schema.Table] = b.tbl
	}
	names := make([]string, 0, len(uniq))
	for n := range uniq {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if write {
			uniq[n].lock.Lock()
		} else {
			uniq[n].lock.RLock()
		}
	}
	return func() {
		for i := len(names) - 1; i >= 0; i-- {
			if write {
				uniq[names[i]].lock.Unlock()
			} else {
				uniq[names[i]].lock.RUnlock()
			}
		}
	}
}
