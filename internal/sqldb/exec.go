package sqldb

import (
	"fmt"
	"sort"
)

// binding is one table instance participating in a SELECT (FROM or JOIN),
// addressed by its alias. view is the snapshot the statement reads the
// table at: the latest state in lock mode (where the table lock
// serializes access), a fixed commit timestamp under MVCC.
type binding struct {
	ref  tableRef
	tbl  *table
	view tableView
}

// bindViews captures a read view of every binding at ts.
func bindViews(bindings []binding, ts int64) {
	for i := range bindings {
		bindings[i].view = bindings[i].tbl.view(ts)
	}
}

// execCtx carries per-statement state.
type execCtx struct {
	args []Value
	cost costCounter
	// sql is the original statement text, kept for the DML apply hook.
	sql string
}

// resolveBindings maps the FROM/JOIN clauses onto tables.
func (db *DB) resolveBindings(s *selectStmt) ([]binding, error) {
	refs := append([]tableRef{s.From}, make([]tableRef, 0, len(s.Joins))...)
	for _, j := range s.Joins {
		refs = append(refs, j.Table)
	}
	bindings := make([]binding, len(refs))
	seen := make(map[string]bool, len(refs))
	for i, ref := range refs {
		tbl, err := db.lookupTable(ref.Table)
		if err != nil {
			return nil, err
		}
		name := ref.name()
		if seen[name] {
			return nil, fmt.Errorf("sqldb: duplicate table alias %q", name)
		}
		seen[name] = true
		bindings[i] = binding{ref: ref, tbl: tbl}
	}
	return bindings, nil
}

// resolveCol locates a column reference among the bindings.
func resolveCol(bindings []binding, ref colRef) (bindIdx, colIdx int, err error) {
	if ref.Table != "" {
		for bi, b := range bindings {
			if b.ref.name() == ref.Table {
				ci := b.tbl.schema.colIndex(ref.Column)
				if ci < 0 {
					return 0, 0, fmt.Errorf("sqldb: table %q has no column %q", ref.Table, ref.Column)
				}
				return bi, ci, nil
			}
		}
		return 0, 0, fmt.Errorf("sqldb: unknown table %q in column reference", ref.Table)
	}
	found := -1
	for bi, b := range bindings {
		if ci := b.tbl.schema.colIndex(ref.Column); ci >= 0 {
			if found >= 0 {
				return 0, 0, fmt.Errorf("sqldb: ambiguous column %q", ref.Column)
			}
			found = bi
			colIdx = ci
		}
	}
	if found < 0 {
		return 0, 0, fmt.Errorf("sqldb: unknown column %q", ref.Column)
	}
	return found, colIdx, nil
}

// operandValue evaluates an operand against the current combined row
// (rows may be nil for row-independent evaluation).
func operandValue(op operand, bindings []binding, rows [][]Value, ec *execCtx) (Value, error) {
	switch {
	case op.IsLit:
		return op.Lit, nil
	case op.IsPlacehold:
		if op.Placeholder >= len(ec.args) {
			return nil, fmt.Errorf("sqldb: missing argument for placeholder %d", op.Placeholder+1)
		}
		return ec.args[op.Placeholder], nil
	default:
		if rows == nil {
			return nil, fmt.Errorf("sqldb: column %s in row-independent position", op.Col)
		}
		bi, ci, err := resolveCol(bindings, op.Col)
		if err != nil {
			return nil, err
		}
		return rows[bi][ci], nil
	}
}

// evalBool evaluates a WHERE tree against the combined row.
func evalBool(e boolExpr, bindings []binding, rows [][]Value, ec *execCtx) (bool, error) {
	switch t := e.(type) {
	case andExpr:
		l, err := evalBool(t.L, bindings, rows, ec)
		if err != nil || !l {
			return false, err
		}
		return evalBool(t.R, bindings, rows, ec)
	case orExpr:
		l, err := evalBool(t.L, bindings, rows, ec)
		if err != nil || l {
			return l, err
		}
		return evalBool(t.R, bindings, rows, ec)
	case notExpr:
		v, err := evalBool(t.E, bindings, rows, ec)
		return !v, err
	case cmpExpr:
		bi, ci, err := resolveCol(bindings, t.Col)
		if err != nil {
			return false, err
		}
		lhs := rows[bi][ci]
		rhs, err := operandValue(t.Rhs, bindings, rows, ec)
		if err != nil {
			return false, err
		}
		if lhs == nil || rhs == nil {
			// SQL three-valued logic degraded to false, except
			// equality-with-null which is still false.
			return false, nil
		}
		c, err := compare(lhs, rhs)
		if err != nil {
			return false, err
		}
		switch t.Op {
		case "=":
			return c == 0, nil
		case "!=":
			return c != 0, nil
		case "<":
			return c < 0, nil
		case "<=":
			return c <= 0, nil
		case ">":
			return c > 0, nil
		case ">=":
			return c >= 0, nil
		default:
			return false, fmt.Errorf("sqldb: unknown operator %q", t.Op)
		}
	case likeExpr:
		bi, ci, err := resolveCol(bindings, t.Col)
		if err != nil {
			return false, err
		}
		rhs, err := operandValue(t.Rhs, bindings, rows, ec)
		if err != nil {
			return false, err
		}
		s, ok1 := rows[bi][ci].(string)
		pat, ok2 := rhs.(string)
		if !ok1 || !ok2 {
			return false, nil
		}
		m := likeMatch(s, pat)
		if t.Neg {
			m = !m
		}
		return m, nil
	case inExpr:
		bi, ci, err := resolveCol(bindings, t.Col)
		if err != nil {
			return false, err
		}
		lhs := rows[bi][ci]
		for _, op := range t.Set {
			rhs, err := operandValue(op, bindings, rows, ec)
			if err != nil {
				return false, err
			}
			if valuesEqual(lhs, rhs) {
				return !t.Neg, nil
			}
		}
		return t.Neg, nil
	case nullExpr:
		bi, ci, err := resolveCol(bindings, t.Col)
		if err != nil {
			return false, err
		}
		isNull := rows[bi][ci] == nil
		if t.Neg {
			return !isNull, nil
		}
		return isNull, nil
	default:
		return false, fmt.Errorf("sqldb: unknown boolean expression %T", e)
	}
}

// ---- DML ----
//
// Every DML statement is split into a read phase and a commit. The read
// phase runs against a snapshot view (the statement's write set: which
// slots to touch and the fully-built replacement rows); the commit
// validates and installs versions under db.commitMu — a critical
// section that covers only validation, version install, log append, and
// the timestamp bump, never cost-model sleeps.
//
// In lock mode the statement additionally holds the table's write lock
// around both phases (and charges cost under it), reproducing the
// paper's serialized writer. Under MVCC the table lock is not taken:
// validation is first-writer-wins — if any slot in the write set gained
// a version newer than the statement's snapshot, the statement aborts
// with ErrWriteConflict and Conn.Exec retries it on a fresh snapshot.

// rowWrite is one row of a statement's write set: the slot to replace
// and its fully-built next version.
type rowWrite struct {
	id  int
	row []Value
}

func (db *DB) execInsert(s *insertStmt, ec *execCtx) (ExecResult, error) {
	tbl, err := db.lookupTable(s.Table)
	if err != nil {
		return ExecResult{}, err
	}
	row := make([]Value, len(tbl.schema.Columns))
	for i, col := range s.Cols {
		ci := tbl.schema.colIndex(col)
		if ci < 0 {
			return ExecResult{}, fmt.Errorf("sqldb: table %q has no column %q", s.Table, col)
		}
		v, err := operandValue(s.Values[i], nil, nil, ec)
		if err != nil {
			return ExecResult{}, err
		}
		nv, err := normalize(v)
		if err != nil {
			return ExecResult{}, err
		}
		if !tbl.schema.Columns[ci].Type.accepts(nv) {
			return ExecResult{}, fmt.Errorf("sqldb: column %s.%s (%s) rejects %T",
				s.Table, col, tbl.schema.Columns[ci].Type, nv)
		}
		row[ci] = nv
	}
	if db.mvcc.Load() {
		res, err := db.commitInsert(tbl, row, ec)
		if err != nil {
			return ExecResult{}, err
		}
		db.chargeCost(ec) // outside every lock
		return res, nil
	}
	tbl.lock.Lock()
	defer tbl.lock.Unlock()
	// Lock engine only: sleeping the statement's cost under the table
	// lock IS the paper's baseline contention model. The MVCC paths
	// above charge outside every lock, and locksleep keeps them that way.
	defer db.chargeCost(ec) //lint:allow locksleep(lock-engine charges under the table lock by design)
	return db.commitInsert(tbl, row, ec)
}

// commitInsert validates and installs one insert. Inserts have no read
// set, so there is nothing to conflict on — duplicate-key errors are
// real errors, not retryable conflicts.
func (db *DB) commitInsert(tbl *table, row []Value, ec *execCtx) (ExecResult, error) {
	db.commitMu.Lock()
	defer db.commitMu.Unlock()
	if err := tbl.checkInsert(row); err != nil {
		return ExecResult{}, err
	}
	ts := db.commitTS.Load() + 1
	tbl.applyInsert(row, ts)
	ec.cost.written++
	res := ExecResult{RowsAffected: 1, CommitTS: ts}
	if tbl.pkCol >= 0 {
		if id, ok := row[tbl.pkCol].(int64); ok {
			res.LastInsertID = id
		}
	}
	db.finishCommit(ec, ts)
	return res, nil
}

func (db *DB) execUpdate(s *updateStmt, ec *execCtx) (ExecResult, error) {
	tbl, err := db.lookupTable(s.Table)
	if err != nil {
		return ExecResult{}, err
	}
	cols := make([]int, len(s.Cols))
	for i, col := range s.Cols {
		ci := tbl.schema.colIndex(col)
		if ci < 0 {
			return ExecResult{}, fmt.Errorf("sqldb: table %q has no column %q", s.Table, col)
		}
		cols[i] = ci
	}
	if db.mvcc.Load() {
		snapTS := db.commitTS.Load()
		db.pinSnapshot(snapTS)
		defer db.unpinSnapshot(snapTS)
		b := binding{ref: tableRef{Table: s.Table}, tbl: tbl, view: tbl.view(snapTS)}
		writes, err := db.collectUpdates(s, b, cols, ec)
		if err != nil {
			return ExecResult{}, err
		}
		res, err := db.commitWrites(tbl, snapTS, writes, nil, ec, true)
		if err != nil {
			return ExecResult{}, err
		}
		db.chargeCost(ec) // outside every lock
		return res, nil
	}
	tbl.lock.Lock()
	defer tbl.lock.Unlock()
	// Lock engine only: sleeping the statement's cost under the table
	// lock IS the paper's baseline contention model. The MVCC paths
	// above charge outside every lock, and locksleep keeps them that way.
	defer db.chargeCost(ec) //lint:allow locksleep(lock-engine charges under the table lock by design)
	b := binding{ref: tableRef{Table: s.Table}, tbl: tbl, view: tbl.view(latestTS)}
	writes, err := db.collectUpdates(s, b, cols, ec)
	if err != nil {
		return ExecResult{}, err
	}
	return db.commitWrites(tbl, 0, writes, nil, ec, false)
}

// collectUpdates runs an UPDATE's read phase: find matching rows in the
// view, evaluate the SET expressions against the snapshot row, and
// build the full replacement rows.
func (db *DB) collectUpdates(s *updateStmt, b binding, cols []int, ec *execCtx) ([]rowWrite, error) {
	bindings := []binding{b}
	tbl := b.tbl
	ids := db.candidateRows(s.Where, bindings, b, ec)
	rows := make([][]Value, 1)
	var writes []rowWrite
	for _, id := range ids {
		rows[0] = b.view.row(id)
		if rows[0] == nil {
			continue
		}
		if s.Where != nil {
			ok, err := evalBool(s.Where, bindings, rows, ec)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		newRow := append([]Value(nil), rows[0]...)
		for i, op := range s.Vals {
			v, err := operandValue(op, bindings, rows, ec)
			if err != nil {
				return nil, err
			}
			nv, err := normalize(v)
			if err != nil {
				return nil, err
			}
			if !tbl.schema.Columns[cols[i]].Type.accepts(nv) {
				return nil, fmt.Errorf("sqldb: column %s.%s (%s) rejects %T",
					tbl.schema.Table, s.Cols[i], tbl.schema.Columns[cols[i]].Type, nv)
			}
			newRow[cols[i]] = nv
		}
		writes = append(writes, rowWrite{id: id, row: newRow})
	}
	return writes, nil
}

func (db *DB) execDelete(s *deleteStmt, ec *execCtx) (ExecResult, error) {
	tbl, err := db.lookupTable(s.Table)
	if err != nil {
		return ExecResult{}, err
	}
	if db.mvcc.Load() {
		snapTS := db.commitTS.Load()
		db.pinSnapshot(snapTS)
		defer db.unpinSnapshot(snapTS)
		b := binding{ref: tableRef{Table: s.Table}, tbl: tbl, view: tbl.view(snapTS)}
		deletes, err := db.collectDeletes(s, b, ec)
		if err != nil {
			return ExecResult{}, err
		}
		res, err := db.commitWrites(tbl, snapTS, nil, deletes, ec, true)
		if err != nil {
			return ExecResult{}, err
		}
		db.chargeCost(ec) // outside every lock
		return res, nil
	}
	tbl.lock.Lock()
	defer tbl.lock.Unlock()
	// Lock engine only: sleeping the statement's cost under the table
	// lock IS the paper's baseline contention model. The MVCC paths
	// above charge outside every lock, and locksleep keeps them that way.
	defer db.chargeCost(ec) //lint:allow locksleep(lock-engine charges under the table lock by design)
	b := binding{ref: tableRef{Table: s.Table}, tbl: tbl, view: tbl.view(latestTS)}
	deletes, err := db.collectDeletes(s, b, ec)
	if err != nil {
		return ExecResult{}, err
	}
	return db.commitWrites(tbl, 0, nil, deletes, ec, false)
}

// collectDeletes runs a DELETE's read phase: the slot ids of matching
// visible rows.
func (db *DB) collectDeletes(s *deleteStmt, b binding, ec *execCtx) ([]int, error) {
	bindings := []binding{b}
	ids := db.candidateRows(s.Where, bindings, b, ec)
	rows := make([][]Value, 1)
	var deletes []int
	for _, id := range ids {
		rows[0] = b.view.row(id)
		if rows[0] == nil {
			continue
		}
		if s.Where != nil {
			ok, err := evalBool(s.Where, bindings, rows, ec)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		deletes = append(deletes, id)
	}
	return deletes, nil
}

// commitWrites validates and installs an UPDATE/DELETE write set as one
// atomic commit. With validate set (MVCC), first-writer-wins: any slot
// in the write set with a version newer than snapTS aborts the whole
// statement before anything is installed, so a statement is never
// half-applied. Primary-key checks also run before any install for the
// same all-or-nothing guarantee. A statement that matched zero rows
// still commits (timestamp, log entry, hook) — replicas replay the
// no-op, keeping the log contiguous.
func (db *DB) commitWrites(tbl *table, snapTS int64, updates []rowWrite, deletes []int, ec *execCtx, validate bool) (ExecResult, error) {
	db.commitMu.Lock()
	defer db.commitMu.Unlock()
	if validate {
		for _, w := range updates {
			if tbl.latestBegin(w.id) > snapTS {
				db.conflicts.Inc()
				return ExecResult{}, ErrWriteConflict
			}
		}
		for _, id := range deletes {
			if tbl.latestBegin(id) > snapTS {
				db.conflicts.Inc()
				return ExecResult{}, ErrWriteConflict
			}
		}
	}
	for _, w := range updates {
		if err := tbl.checkUpdate(w.id, w.row); err != nil {
			return ExecResult{}, err
		}
	}
	ts := db.commitTS.Load() + 1
	horizon := db.pruneHorizon()
	for _, w := range updates {
		tbl.applyUpdate(w.id, w.row, ts, horizon)
		ec.cost.written++
	}
	for _, id := range deletes {
		tbl.applyDelete(id, ts, horizon)
		ec.cost.written++
	}
	db.finishCommit(ec, ts)
	return ExecResult{RowsAffected: int64(len(updates) + len(deletes)), CommitTS: ts}, nil
}

// lockTables read- or write-locks every distinct table among the
// bindings in name order (a canonical order prevents deadlock between
// concurrent multi-table statements) and returns the unlock function.
func (db *DB) lockTables(bindings []binding, write bool) func() {
	uniq := make(map[string]*table, len(bindings))
	for _, b := range bindings {
		uniq[b.tbl.schema.Table] = b.tbl
	}
	names := make([]string, 0, len(uniq))
	for n := range uniq {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if write {
			uniq[n].lock.Lock()
		} else {
			uniq[n].lock.RLock()
		}
	}
	return func() {
		for i := len(names) - 1; i >= 0; i-- {
			if write {
				uniq[names[i]].lock.Unlock()
			} else {
				uniq[names[i]].lock.RUnlock()
			}
		}
	}
}
