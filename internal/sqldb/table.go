package sqldb

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// latestTS is the snapshot timestamp that means "the newest committed
// version" — what lock-mode statements (which serialize through the
// table lock) read at.
const latestTS = int64(math.MaxInt64)

// rowVersion is one immutable version of a row. data == nil is a
// tombstone. begin is the commit timestamp at which this version became
// visible; prev points at the next-older version. prev is atomic only so
// the garbage-collection cut (pruning versions no active snapshot can
// reach) is safe against concurrent chain walks — the fields of a
// version are never modified after publication.
type rowVersion struct {
	data  []Value
	begin int64
	prev  atomic.Pointer[rowVersion]
}

// rowSlot is the stable identity of a row: a fixed slot index plus the
// head of its version chain. Slots are append-only; a deleted row keeps
// its slot (with a tombstone head) so slot indices, scan order, and
// clone replay stay deterministic.
type rowSlot struct {
	head atomic.Pointer[rowVersion]
}

// visible returns the row data as of snapshot ts: the newest version
// with begin <= ts, or nil if the row did not exist (or was deleted) at
// ts. Lock-free; safe concurrently with writers installing new heads.
func (s *rowSlot) visible(ts int64) []Value {
	for v := s.head.Load(); v != nil; v = v.prev.Load() {
		if v.begin <= ts {
			return v.data
		}
	}
	return nil
}

// table is the storage for one relation: an append-only arena of
// versioned row slots plus primary-key and secondary hash indexes.
//
// Two concurrency disciplines share this structure. In lock mode
// (mvcc=off, the paper's MySQL-like behavior) statements serialize
// through the per-table reader/writer lock for their whole
// cost-model-padded duration, exactly as before. In MVCC mode the table
// lock is never taken: readers resolve rows through immutable version
// chains at a fixed snapshot timestamp, and writers install new versions
// inside the DB-wide commit critical section (db.commitMu), which is
// held only for validation and version install — never for cost sleeps.
//
// The index maps are hints, not truth: entries are added copy-on-write
// and never removed, so a bucket may contain slots whose visible row no
// longer matches the indexed value (deleted rows, updated keys). Every
// access path re-checks the predicate against the visible row, which
// makes stale entries harmless. idxMu guards only the map headers and is
// held for map probes only.
type table struct {
	schema Schema
	pkCol  int // position of the primary key column, or -1

	lock sync.RWMutex // lock-mode table lock; unused under MVCC

	slots atomic.Pointer[[]*rowSlot] // published append-only slot arena
	live  atomic.Int64               // rows visible at the latest timestamp

	idxMu   sync.RWMutex // guards pk, indexes, and ordered map access
	pk      map[int64]int
	indexes map[string]*hashIndex
	ordered map[string]*orderedIndex

	nextAuto int64 // auto-increment state; guarded by db.commitMu
}

// hashIndex is a secondary equality index with immutable buckets: add
// replaces the bucket slice instead of appending in place, so a bucket
// returned to a reader is a stable snapshot forever.
type hashIndex struct {
	col int
	m   map[Value][]int
}

// add registers id under v, copy-on-write. Duplicate ids (a value that
// flipped away and back across updates) are collapsed.
func (idx *hashIndex) add(v Value, id int) {
	old := idx.m[v]
	for _, got := range old {
		if got == id {
			return
		}
	}
	nb := make([]int, len(old), len(old)+1)
	copy(nb, old)
	idx.m[v] = append(nb, id)
}

func newTable(s Schema) *table {
	t := &table{
		schema:  s,
		pkCol:   -1,
		indexes: make(map[string]*hashIndex, len(s.Indexes)),
		ordered: make(map[string]*orderedIndex, len(s.Ordered)),
	}
	if s.PrimaryKey != "" {
		t.pkCol = s.colIndex(s.PrimaryKey)
		t.pk = make(map[int64]int)
	}
	for _, name := range s.Indexes {
		t.indexes[name] = &hashIndex{col: s.colIndex(name), m: make(map[Value][]int)}
	}
	for _, name := range s.Ordered {
		t.ordered[name] = newOrderedIndex(s.colIndex(name))
	}
	empty := make([]*rowSlot, 0, 64)
	t.slots.Store(&empty)
	return t
}

// tableView is a stable read view of one table at a snapshot timestamp:
// the slot arena as published at view creation plus the timestamp rows
// are resolved at. Slots appended after the view was taken are simply
// out of range, and versions committed after ts are skipped by the
// chain walk, so a view never sees a later write.
type tableView struct {
	tbl   *table
	ts    int64
	slots []*rowSlot
}

// view captures a read view at ts.
func (t *table) view(ts int64) tableView {
	return tableView{tbl: t, ts: ts, slots: *t.slots.Load()}
}

// row returns the visible data for a slot id, or nil.
func (v tableView) row(id int) []Value {
	if id < 0 || id >= len(v.slots) {
		return nil
	}
	return v.slots[id].visible(v.ts)
}

// size reports the slot count of the view (live rows plus tombstones).
func (v tableView) size() int { return len(v.slots) }

// lookupPK returns the slot hint for a primary key value. The hint may
// be stale (deleted row, or a row whose key moved); callers must
// re-check the visible row.
func (v tableView) lookupPK(key int64) (int, bool) {
	t := v.tbl
	if t.pk == nil {
		return 0, false
	}
	t.idxMu.RLock()
	id, ok := t.pk[key]
	t.idxMu.RUnlock()
	return id, ok
}

// lookupIndex returns the (immutable) bucket of slot hints for an
// indexed column value, trying the hash index first, then the ordered
// index. The returned slice is a stable snapshot: it is never mutated
// after being handed out. visited is the number of index entries
// inspected (== len(ids) for a hash bucket, possibly more for an
// ordered probe), for honest probe pricing.
func (v tableView) lookupIndex(col string, val Value) (ids []int, visited int, ok bool) {
	t := v.tbl
	t.idxMu.RLock()
	idx, hok := t.indexes[col]
	oidx, ook := t.ordered[col]
	t.idxMu.RUnlock()
	if hok {
		ids = idx.m[val]
		return ids, len(ids), true
	}
	if ook {
		ids, visited = oidx.state.Load().eq(val)
		return ids, visited, true
	}
	return nil, 0, false
}

// lookupOrdered returns the ordered index on col, if any.
func (v tableView) lookupOrdered(col string) (*orderedIndex, bool) {
	t := v.tbl
	t.idxMu.RLock()
	idx, ok := t.ordered[col]
	t.idxMu.RUnlock()
	return idx, ok
}

// hasIndex reports whether col is the primary key or a secondary
// (hash or ordered) index.
func (t *table) hasIndex(col string) bool {
	if t.pkCol >= 0 && t.schema.Columns[t.pkCol].Name == col {
		return true
	}
	t.idxMu.RLock()
	defer t.idxMu.RUnlock()
	_, ok := t.indexes[col]
	if !ok {
		_, ok = t.ordered[col]
	}
	return ok
}

// hasOrdered reports whether col carries an ordered index.
func (t *table) hasOrdered(col string) bool {
	t.idxMu.RLock()
	defer t.idxMu.RUnlock()
	_, ok := t.ordered[col]
	return ok
}

// ---- commit-side mutation (all callers hold db.commitMu) ----

// slotAt returns the current slot for id.
func (t *table) slotAt(id int) *rowSlot { return (*t.slots.Load())[id] }

// latestBegin reports the commit timestamp of the newest version of a
// slot — what first-writer-wins validation compares against the
// writer's snapshot.
func (t *table) latestBegin(id int) int64 {
	if v := t.slotAt(id).head.Load(); v != nil {
		return v.begin
	}
	return 0
}

// appendSlot publishes a new slot at the end of the arena. Readers
// holding an older published header never index past their captured
// length, so reusing spare capacity of the shared backing array is safe;
// the atomic Store orders the element write before any reader that can
// see it.
func (t *table) appendSlot(s *rowSlot) int {
	cur := *t.slots.Load()
	id := len(cur)
	next := append(cur, s)
	t.slots.Store(&next)
	return id
}

// checkInsert validates an insert against current state without
// mutating anything: primary-key type and duplicate checks. Splitting
// validation from apply keeps a multi-row commit all-or-nothing.
func (t *table) checkInsert(row []Value) error {
	if t.pkCol < 0 || row[t.pkCol] == nil {
		return nil // auto-assigned keys cannot collide
	}
	key, ok := row[t.pkCol].(int64)
	if !ok {
		return fmt.Errorf("sqldb: table %q: primary key must be an integer", t.schema.Table)
	}
	if id, exists := t.pkHint(key); exists {
		if data := t.slotAt(id).visible(latestTS); data != nil && valuesEqual(data[t.pkCol], key) {
			return fmt.Errorf("sqldb: table %q: duplicate primary key %d", t.schema.Table, key)
		}
		// Stale hint (deleted row or moved key): the insert below remaps it.
	}
	return nil
}

// applyInsert installs a new row at commit timestamp ts and returns its
// slot id. The caller has run checkInsert; this cannot fail.
func (t *table) applyInsert(row []Value, ts int64) int {
	if t.pkCol >= 0 {
		if row[t.pkCol] == nil {
			t.nextAuto++
			row[t.pkCol] = t.nextAuto
		}
		key := row[t.pkCol].(int64)
		if key > t.nextAuto {
			t.nextAuto = key
		}
		slot := &rowSlot{}
		slot.head.Store(&rowVersion{data: row, begin: ts})
		id := t.appendSlot(slot)
		t.idxMu.Lock()
		t.pk[key] = id
		for _, idx := range t.indexes {
			idx.add(row[idx.col], id)
		}
		for _, idx := range t.ordered {
			idx.add(row[idx.col], id)
		}
		t.idxMu.Unlock()
		t.live.Add(1)
		return id
	}
	slot := &rowSlot{}
	slot.head.Store(&rowVersion{data: row, begin: ts})
	id := t.appendSlot(slot)
	t.idxMu.Lock()
	for _, idx := range t.indexes {
		idx.add(row[idx.col], id)
	}
	for _, idx := range t.ordered {
		idx.add(row[idx.col], id)
	}
	t.idxMu.Unlock()
	t.live.Add(1)
	return id
}

// checkUpdate validates replacing slot id's row with newRow: primary-key
// type and duplicate checks against current state.
func (t *table) checkUpdate(id int, newRow []Value) error {
	if t.pkCol < 0 {
		return nil
	}
	newKey, ok := newRow[t.pkCol].(int64)
	if !ok {
		return fmt.Errorf("sqldb: table %q: primary key must be an integer", t.schema.Table)
	}
	old := t.slotAt(id).head.Load().data
	if old == nil {
		return fmt.Errorf("sqldb: update of deleted row %d", id)
	}
	if oldKey, _ := old[t.pkCol].(int64); oldKey == newKey {
		return nil
	}
	if hid, exists := t.pkHint(newKey); exists && hid != id {
		if data := t.slotAt(hid).visible(latestTS); data != nil && valuesEqual(data[t.pkCol], newKey) {
			return fmt.Errorf("sqldb: table %q: duplicate primary key %d", t.schema.Table, newKey)
		}
	}
	return nil
}

// applyUpdate installs newRow as the next version of slot id at commit
// timestamp ts, pruning chain versions older than horizon. The caller
// has run checkUpdate; this cannot fail.
func (t *table) applyUpdate(id int, newRow []Value, ts, horizon int64) {
	slot := t.slotAt(id)
	cur := slot.head.Load()
	old := cur.data
	var idxAdds bool
	for _, idx := range t.indexes {
		if !valuesEqual(old[idx.col], newRow[idx.col]) {
			idxAdds = true
			break
		}
	}
	if !idxAdds {
		for _, idx := range t.ordered {
			if !valuesEqual(old[idx.col], newRow[idx.col]) {
				idxAdds = true
				break
			}
		}
	}
	pkMoved := false
	var newKey int64
	if t.pkCol >= 0 {
		newKey = newRow[t.pkCol].(int64)
		if oldKey, _ := old[t.pkCol].(int64); oldKey != newKey {
			pkMoved = true
			if newKey > t.nextAuto {
				t.nextAuto = newKey
			}
		}
	}
	if idxAdds || pkMoved {
		t.idxMu.Lock()
		if pkMoved {
			// The old key's entry stays as a stale hint: readers at older
			// snapshots still resolve the row through it, and predicate
			// re-checks hide it from newer ones.
			t.pk[newKey] = id
		}
		for _, idx := range t.indexes {
			if !valuesEqual(old[idx.col], newRow[idx.col]) {
				idx.add(newRow[idx.col], id)
			}
		}
		for _, idx := range t.ordered {
			if !valuesEqual(old[idx.col], newRow[idx.col]) {
				idx.add(newRow[idx.col], id)
			}
		}
		t.idxMu.Unlock()
	}
	nv := &rowVersion{data: newRow, begin: ts}
	nv.prev.Store(cur)
	slot.head.Store(nv)
	pruneChain(cur, horizon)
}

// applyDelete installs a tombstone for slot id at commit timestamp ts.
// Index and pk entries stay behind as stale hints.
func (t *table) applyDelete(id int, ts, horizon int64) {
	slot := t.slotAt(id)
	cur := slot.head.Load()
	if cur == nil || cur.data == nil {
		return
	}
	nv := &rowVersion{begin: ts}
	nv.prev.Store(cur)
	slot.head.Store(nv)
	t.live.Add(-1)
	pruneChain(cur, horizon)
}

// pruneChain cuts the version chain below the newest version visible at
// horizon (the oldest snapshot any active or future reader can hold):
// everything strictly older is unreachable. The cut is an atomic prev
// store, safe against readers mid-walk — a reader's snapshot timestamp
// is >= horizon, so it stops at or before the cut point.
func pruneChain(from *rowVersion, horizon int64) {
	for v := from; v != nil; v = v.prev.Load() {
		if v.begin <= horizon {
			v.prev.Store(nil)
			return
		}
	}
}

// buildIndex constructs a secondary index on col (hash or ordered) from
// the rows visible at the latest timestamp and installs it, replacing
// any existing index on that column. Caller holds db.commitMu, so no
// writer races the build; readers see the old index (or none) until the
// install, which is fine — indexes are hints, and a plan chosen against
// the pre-install state is still correct.
func (t *table) buildIndex(col string, ordered bool) error {
	ci := t.schema.colIndex(col)
	if ci < 0 {
		return fmt.Errorf("sqldb: table %q has no column %q", t.schema.Table, col)
	}
	if t.pkCol == ci {
		return fmt.Errorf("sqldb: table %q: column %q is the primary key", t.schema.Table, col)
	}
	slots := *t.slots.Load()
	if ordered {
		idx := newOrderedIndex(ci)
		for id, s := range slots {
			if data := s.visible(latestTS); data != nil {
				idx.add(data[ci], id)
			}
		}
		t.idxMu.Lock()
		delete(t.indexes, col)
		t.ordered[col] = idx
		t.idxMu.Unlock()
		return nil
	}
	idx := &hashIndex{col: ci, m: make(map[Value][]int)}
	for id, s := range slots {
		if data := s.visible(latestTS); data != nil {
			idx.add(data[ci], id)
		}
	}
	t.idxMu.Lock()
	delete(t.ordered, col)
	t.indexes[col] = idx
	t.idxMu.Unlock()
	return nil
}

// stats snapshots the planner's inputs for one table: live row count and
// per-index distinct-value estimates.
func (t *table) stats() tableStats {
	st := tableStats{rows: t.live.Load(), distinct: make(map[string]int)}
	t.idxMu.RLock()
	for name, idx := range t.indexes {
		d := len(idx.m)
		if d < 1 {
			d = 1
		}
		st.distinct[name] = d
	}
	for name, idx := range t.ordered {
		st.distinct[name] = idx.state.Load().distinctVals()
	}
	t.idxMu.RUnlock()
	return st
}

// tableStats is the planner's statistical view of one table.
type tableStats struct {
	rows     int64
	distinct map[string]int // indexed column -> distinct value estimate
}

// pkHint returns the current pk map entry for key, which may be stale.
func (t *table) pkHint(key int64) (int, bool) {
	if t.pk == nil {
		return 0, false
	}
	t.idxMu.RLock()
	id, ok := t.pk[key]
	t.idxMu.RUnlock()
	return id, ok
}
