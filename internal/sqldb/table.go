package sqldb

import (
	"fmt"
	"sync"
)

// table is the storage for one relation: a row arena plus primary-key and
// secondary hash indexes, guarded by one reader/writer table lock.
//
// The lock is the point of the reproduction: SELECTs hold it shared for
// their whole (cost-model-padded) duration, DML holds it exclusively, so
// a write on a popular table queues behind readers just as the paper's
// TPC-W admin-response page queues on MySQL's table lock.
type table struct {
	schema Schema
	pkCol  int // position of the primary key column, or -1

	lock sync.RWMutex // the table lock; held by the executor

	rows     [][]Value // rowID -> row; nil means deleted
	live     int
	pk       map[int64]int // pk value -> rowID
	indexes  map[string]*hashIndex
	nextAuto int64
}

// hashIndex is a secondary equality index.
type hashIndex struct {
	col int
	m   map[Value][]int
}

func newTable(s Schema) *table {
	t := &table{
		schema:  s,
		pkCol:   -1,
		indexes: make(map[string]*hashIndex, len(s.Indexes)),
	}
	if s.PrimaryKey != "" {
		t.pkCol = s.colIndex(s.PrimaryKey)
		t.pk = make(map[int64]int)
	}
	for _, name := range s.Indexes {
		t.indexes[name] = &hashIndex{col: s.colIndex(name), m: make(map[Value][]int)}
	}
	return t
}

// insert adds a row (already normalized and type-checked), returning the
// rowID and the stored row. Caller holds the write lock.
func (t *table) insert(row []Value) (int, error) {
	if t.pkCol >= 0 {
		if row[t.pkCol] == nil {
			t.nextAuto++
			row[t.pkCol] = t.nextAuto
		}
		key, ok := row[t.pkCol].(int64)
		if !ok {
			return 0, fmt.Errorf("sqldb: table %q: primary key must be an integer", t.schema.Table)
		}
		if _, dup := t.pk[key]; dup {
			return 0, fmt.Errorf("sqldb: table %q: duplicate primary key %d", t.schema.Table, key)
		}
		if key > t.nextAuto {
			t.nextAuto = key
		}
		t.pk[key] = len(t.rows)
	}
	id := len(t.rows)
	t.rows = append(t.rows, row)
	t.live++
	for _, idx := range t.indexes {
		v := row[idx.col]
		idx.m[v] = append(idx.m[v], id)
	}
	return id, nil
}

// deleteRow tombstones rowID. Caller holds the write lock.
func (t *table) deleteRow(id int) {
	row := t.rows[id]
	if row == nil {
		return
	}
	if t.pkCol >= 0 {
		if key, ok := row[t.pkCol].(int64); ok {
			delete(t.pk, key)
		}
	}
	for _, idx := range t.indexes {
		idx.remove(row[idx.col], id)
	}
	t.rows[id] = nil
	t.live--
}

// updateRow replaces columns of rowID with newValues at positions cols.
// Caller holds the write lock.
func (t *table) updateRow(id int, cols []int, newValues []Value) error {
	row := t.rows[id]
	if row == nil {
		return fmt.Errorf("sqldb: update of deleted row %d", id)
	}
	for i, col := range cols {
		old := row[col]
		nv := newValues[i]
		if col == t.pkCol {
			newKey, ok := nv.(int64)
			if !ok {
				return fmt.Errorf("sqldb: table %q: primary key must be an integer", t.schema.Table)
			}
			oldKey := old.(int64)
			if newKey != oldKey {
				if _, dup := t.pk[newKey]; dup {
					return fmt.Errorf("sqldb: table %q: duplicate primary key %d", t.schema.Table, newKey)
				}
				delete(t.pk, oldKey)
				t.pk[newKey] = id
				if newKey > t.nextAuto {
					t.nextAuto = newKey
				}
			}
		}
		if idx, ok := t.indexes[t.schema.Columns[col].Name]; ok && !valuesEqual(old, nv) {
			idx.remove(old, id)
			idx.m[nv] = append(idx.m[nv], id)
		}
		row[col] = nv
	}
	return nil
}

// lookupPK returns the rowID for a primary key value.
func (t *table) lookupPK(key int64) (int, bool) {
	if t.pk == nil {
		return 0, false
	}
	id, ok := t.pk[key]
	return id, ok
}

// lookupIndex returns rowIDs matching value on an indexed column name.
func (t *table) lookupIndex(col string, v Value) ([]int, bool) {
	idx, ok := t.indexes[col]
	if !ok {
		return nil, false
	}
	return idx.m[v], true
}

// hasIndex reports whether col is the primary key or a secondary index.
func (t *table) hasIndex(col string) bool {
	if t.pkCol >= 0 && t.schema.Columns[t.pkCol].Name == col {
		return true
	}
	_, ok := t.indexes[col]
	return ok
}

func (idx *hashIndex) remove(v Value, id int) {
	ids := idx.m[v]
	for i, got := range ids {
		if got == id {
			ids[i] = ids[len(ids)-1]
			ids = ids[:len(ids)-1]
			break
		}
	}
	if len(ids) == 0 {
		delete(idx.m, v)
	} else {
		idx.m[v] = ids
	}
}
