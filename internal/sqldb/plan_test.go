package sqldb

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// planTestDB builds a populated TPC-W-shaped corner (orders, order_line,
// item) with the planner-relevant indexes: hash on orders.o_c_id and
// order_line.ol_i_id, ordered on order_line.ol_o_id and orders.o_date.
// Statistics matter — the cost-based planner only prefers an index once
// the table is big enough for a scan to lose.
func planTestDB(t *testing.T, mvcc bool) (*DB, *Conn) {
	t.Helper()
	db := Open(Options{Cost: ZeroCostModel(), MVCC: mvcc})
	db.MustCreateTable(Schema{
		Table: "orders",
		Columns: []Column{
			{Name: "o_id", Type: Int},
			{Name: "o_c_id", Type: Int},
			{Name: "o_date", Type: Int},
			{Name: "o_status", Type: String},
		},
		PrimaryKey: "o_id",
		Indexes:    []string{"o_c_id"},
		Ordered:    []string{"o_date"},
	})
	db.MustCreateTable(Schema{
		Table: "order_line",
		Columns: []Column{
			{Name: "ol_id", Type: Int},
			{Name: "ol_o_id", Type: Int},
			{Name: "ol_i_id", Type: Int},
			{Name: "ol_qty", Type: Int},
		},
		PrimaryKey: "ol_id",
		Ordered:    []string{"ol_o_id"},
	})
	db.MustCreateTable(Schema{
		Table: "item",
		Columns: []Column{
			{Name: "i_id", Type: Int},
			{Name: "i_title", Type: String},
		},
		PrimaryKey: "i_id",
	})
	c := db.Connect()
	t.Cleanup(c.Close)
	for i := 1; i <= 50; i++ {
		mustExec(t, c, "INSERT INTO item (i_id, i_title) VALUES (?, ?)", i, fmt.Sprintf("title-%d", i))
	}
	for o := 1; o <= 100; o++ {
		mustExec(t, c, "INSERT INTO orders (o_id, o_c_id, o_date, o_status) VALUES (?, ?, ?, ?)",
			o, 1+o%20, 1000+o, "SHIPPED")
		for l := 0; l < 3; l++ {
			mustExec(t, c, "INSERT INTO order_line (ol_o_id, ol_i_id, ol_qty) VALUES (?, ?, ?)",
				o, 1+(o+l)%50, 1+l)
		}
	}
	return db, c
}

func explain(t *testing.T, c *Conn, sql string) []string {
	t.Helper()
	rs, err := c.Query("EXPLAIN " + sql)
	if err != nil {
		t.Fatalf("EXPLAIN %s: %v", sql, err)
	}
	out := make([]string, len(rs.Rows))
	for i, row := range rs.Rows {
		out[i], _ = row[0].(string)
	}
	return out
}

// TestExplainGoldens pins the planner's access-path choices for the
// query shapes the TPC-W pages exercise, under both storage engines
// (plans are engine-independent; the goldens prove it).
func TestExplainGoldens(t *testing.T) {
	for _, mvcc := range []bool{false, true} {
		t.Run(fmt.Sprintf("mvcc=%v", mvcc), func(t *testing.T) {
			_, c := planTestDB(t, mvcc)
			cases := []struct {
				name string
				sql  string
				want []string
			}{
				{
					name: "point lookup via primary key",
					sql:  "SELECT o_status FROM orders WHERE o_id = ?",
					want: []string{"PKLookup(orders.o_id = ?)", "Filter(o_id = ?)"},
				},
				{
					name: "point lookup via hash index",
					sql:  "SELECT o_id FROM orders WHERE o_c_id = ?",
					want: []string{"IndexLookup(orders.o_c_id = ?)", "Filter(o_c_id = ?)"},
				},
				{
					name: "range scan via ordered index (best-sellers window)",
					sql:  "SELECT ol_i_id, ol_qty FROM order_line WHERE ol_o_id > ?",
					want: []string{"IndexRange(order_line.ol_o_id > ?)", "Filter(ol_o_id > ?)"},
				},
				{
					name: "bounded range",
					sql:  "SELECT ol_id FROM order_line WHERE ol_o_id > ? AND ol_o_id <= ?",
					want: []string{
						"IndexRange(order_line.ol_o_id > ? and order_line.ol_o_id <= ?)",
						"Filter(ol_o_id > ? and ol_o_id <= ?)",
					},
				},
				{
					name: "ORDER BY + LIMIT via ordered index",
					sql:  "SELECT o_id FROM orders ORDER BY o_date DESC LIMIT 1",
					want: []string{"IndexOrder(orders.o_date desc)", "Limit(1)"},
				},
				{
					name: "non-indexed predicate falls back to a scan",
					sql:  "SELECT o_id FROM orders WHERE o_status = ?",
					want: []string{"Scan(orders)", "Filter(o_status = ?)"},
				},
				{
					name: "index-nested-loop join (order display page)",
					sql: "SELECT ol_qty, i_title FROM order_line " +
						"JOIN item ON ol_i_id = i_id WHERE ol_o_id = ?",
					want: []string{
						"IndexLookup(order_line.ol_o_id = ?)",
						"IndexJoin(item.i_id = ol_i_id)",
						"Filter(ol_o_id = ?)",
					},
				},
				{
					name: "aggregation over an index range (best sellers)",
					sql: "SELECT ol_i_id, SUM(ol_qty) AS qty FROM order_line " +
						"WHERE ol_o_id > ? GROUP BY ol_i_id ORDER BY qty DESC LIMIT 5",
					want: []string{
						"IndexRange(order_line.ol_o_id > ?)",
						"Filter(ol_o_id > ?)",
						"Aggregate(group by ol_i_id)",
						"Sort(qty desc)",
						"Limit(5)",
					},
				},
			}
			for _, tc := range cases {
				if got := explain(t, c, tc.sql); !reflect.DeepEqual(got, tc.want) {
					t.Errorf("%s:\nEXPLAIN %s\n got: %q\nwant: %q", tc.name, tc.sql, got, tc.want)
				}
			}
		})
	}
}

// TestCreateIndexReplansCachedStatements pins the satellite fix: a
// cached statement planned as a full scan is replanned — not served
// stale — after CreateIndex changes index availability.
func TestCreateIndexReplansCachedStatements(t *testing.T) {
	db := Open(Options{Cost: ZeroCostModel()})
	db.MustCreateTable(Schema{
		Table: "t",
		Columns: []Column{
			{Name: "id", Type: Int},
			{Name: "grp", Type: Int},
		},
		PrimaryKey: "id",
	})
	c := db.Connect()
	defer c.Close()
	for i := 1; i <= 500; i++ {
		mustExec(t, c, "INSERT INTO t (id, grp) VALUES (?, ?)", i, i%7)
	}

	const q = "SELECT id FROM t WHERE grp = ?"
	for i := 0; i < 3; i++ {
		if _, err := c.Query(q, 3); err != nil {
			t.Fatal(err)
		}
	}
	scans, lookups := db.PlanScans(), db.PlanIndexLookups()
	if scans < 3 {
		t.Fatalf("PlanScans = %d before the index exists, want >= 3", scans)
	}
	if got := explain(t, c, q); got[0] != "Scan(t)" {
		t.Fatalf("pre-index plan = %q, want scan", got)
	}

	epoch := db.IndexEpoch()
	if err := db.CreateIndex("t", "grp", false); err != nil {
		t.Fatal(err)
	}
	if db.IndexEpoch() != epoch+1 {
		t.Fatalf("IndexEpoch = %d, want %d", db.IndexEpoch(), epoch+1)
	}

	// The same SQL text must now execute through the index: the cached
	// plan was invalidated by the epoch bump, not left resident.
	rs, err := c.Query(q, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() == 0 {
		t.Fatal("replanned query returned no rows")
	}
	if got := db.PlanScans(); got != scans {
		t.Fatalf("PlanScans moved %d -> %d after CreateIndex; stale scan plan executed", scans, got)
	}
	if got := db.PlanIndexLookups(); got <= lookups {
		t.Fatalf("PlanIndexLookups = %d, want > %d (replan not observed)", got, lookups)
	}
	if got := explain(t, c, q); got[0] != "IndexLookup(t.grp = ?)" {
		t.Fatalf("post-index plan = %q, want index lookup", got)
	}
}

// TestOrderedIndexMatchesScanProperty is the ordered-index twin of
// TestIndexMatchesScanProperty: after an arbitrary interleaving of
// inserts, updates, and deletes on an ordered-indexed column, range
// queries and ORDER BY+LIMIT walks return exactly what the row model
// predicts — stale entries (a row's old key positions) never surface
// and never duplicate a row.
func TestOrderedIndexMatchesScanProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := Open(Options{Cost: ZeroCostModel(), MVCC: seed%2 == 0})
		db.MustCreateTable(Schema{
			Table: "t",
			Columns: []Column{
				{Name: "id", Type: Int},
				{Name: "key", Type: Int},
			},
			PrimaryKey: "id",
			Ordered:    []string{"key"},
		})
		c := db.Connect()
		defer c.Close()
		live := map[int64]int64{} // id -> key
		nextID := int64(1)
		for op := 0; op < 300; op++ {
			switch r.Intn(4) {
			case 0, 1:
				k := int64(r.Intn(40))
				if _, err := c.Exec("INSERT INTO t (id, key) VALUES (?, ?)", nextID, k); err != nil {
					return false
				}
				live[nextID] = k
				nextID++
			case 2:
				if len(live) == 0 {
					continue
				}
				id := randomKey(r, live)
				k := int64(r.Intn(40))
				if _, err := c.Exec("UPDATE t SET key = ? WHERE id = ?", k, id); err != nil {
					return false
				}
				live[id] = k
			case 3:
				if len(live) == 0 {
					continue
				}
				id := randomKey(r, live)
				if _, err := c.Exec("DELETE FROM t WHERE id = ?", id); err != nil {
					return false
				}
				delete(live, id)
			}
		}

		// Range query vs the row model.
		lo, hi := int64(r.Intn(40)), int64(r.Intn(40))
		if lo > hi {
			lo, hi = hi, lo
		}
		rs, err := c.Query("SELECT id FROM t WHERE key >= ? AND key < ?", lo, hi)
		if err != nil {
			return false
		}
		var want []int64
		for id, k := range live {
			if k >= lo && k < hi {
				want = append(want, id)
			}
		}
		if rs.Len() != len(want) {
			return false
		}
		got := map[int64]bool{}
		for i := 0; i < rs.Len(); i++ {
			id := rs.Int(i, "id")
			if got[id] { // duplicate row: stale entry surfaced
				return false
			}
			got[id] = true
			if k, ok := live[id]; !ok || k < lo || k >= hi {
				return false
			}
		}

		// ORDER BY + LIMIT (the early-stopping index-order walk) vs a
		// full in-memory sort of the model.
		limit := 1 + r.Intn(10)
		rs, err = c.Query(fmt.Sprintf("SELECT id, key FROM t ORDER BY key ASC LIMIT %d", limit))
		if err != nil {
			return false
		}
		type pair struct{ id, key int64 }
		var all []pair
		for id, k := range live {
			all = append(all, pair{id, k})
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].key != all[j].key {
				return all[i].key < all[j].key
			}
			return all[i].id < all[j].id
		})
		wantN := limit
		if wantN > len(all) {
			wantN = len(all)
		}
		if rs.Len() != wantN {
			return false
		}
		for i := 0; i < rs.Len(); i++ {
			if rs.Int(i, "key") != all[i].key {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
