package sqldb

// The statement AST. Statements are immutable after parsing, so the DB
// caches them by SQL text (the prepared-statement effect the paper gets
// from per-thread connections).

// stmt is any parsed statement.
type stmt interface{ isStmt() }

// colRef names a column, optionally qualified: "item.i_id" or "i_id".
type colRef struct {
	Table  string // may be ""
	Column string
}

func (c colRef) String() string {
	if c.Table == "" {
		return c.Column
	}
	return c.Table + "." + c.Column
}

// operand is a leaf value in expressions: a literal, a placeholder, or a
// column reference.
type operand struct {
	Lit         Value
	IsLit       bool
	Placeholder int // ordinal, valid when IsPlaceholder
	IsPlacehold bool
	Col         colRef // valid otherwise
}

// boolExpr is a WHERE-clause predicate tree.
type boolExpr interface{ isBool() }

type andExpr struct{ L, R boolExpr }
type orExpr struct{ L, R boolExpr }
type notExpr struct{ E boolExpr }

// cmpExpr is "col OP operand" with OP in =, !=, <, <=, >, >=.
type cmpExpr struct {
	Col colRef
	Op  string
	Rhs operand
}

// likeExpr is "col LIKE pattern".
type likeExpr struct {
	Col colRef
	Rhs operand
	Neg bool
}

// inExpr is "col IN (a, b, ...)".
type inExpr struct {
	Col colRef
	Set []operand
	Neg bool
}

// nullExpr is "col IS [NOT] NULL".
type nullExpr struct {
	Col colRef
	Neg bool
}

func (andExpr) isBool()  {}
func (orExpr) isBool()   {}
func (notExpr) isBool()  {}
func (cmpExpr) isBool()  {}
func (likeExpr) isBool() {}
func (inExpr) isBool()   {}
func (nullExpr) isBool() {}

// aggKind enumerates aggregate functions.
type aggKind int

const (
	aggNone aggKind = iota
	aggCount
	aggSum
	aggAvg
	aggMin
	aggMax
)

// selectItem is one projection: a column, a star, or an aggregate.
type selectItem struct {
	Star  bool    // SELECT * or t.*
	Table string  // for t.*
	Col   colRef  // plain column
	Agg   aggKind // aggregate function; aggNone for plain column
	// AggCol is the aggregate argument; Star-count is COUNT(*).
	AggCol  colRef
	AggStar bool
	Alias   string // AS name
}

// tableRef is a FROM or JOIN table with an optional alias.
type tableRef struct {
	Table string
	Alias string
}

func (t tableRef) name() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Table
}

// joinClause is "INNER JOIN t ON a.x = b.y".
type joinClause struct {
	Table tableRef
	LCol  colRef
	RCol  colRef
}

// orderKey is one ORDER BY key; Ref may name a select alias.
type orderKey struct {
	Ref  colRef
	Desc bool
}

// selectStmt is a parsed SELECT.
type selectStmt struct {
	Items   []selectItem
	From    tableRef
	Joins   []joinClause
	Where   boolExpr // may be nil
	GroupBy []colRef
	OrderBy []orderKey
	Limit   int // -1 when absent
	Offset  int

	// plan is the physical plan chosen at prepare time, immutable once
	// the statement is published through the cache. Nil for statements
	// executed without preparation (direct parse in tests); the executor
	// plans those on the fly.
	plan *selectPlan
}

// explainStmt is "EXPLAIN SELECT ...": it never executes, it renders
// the inner statement's chosen physical plan, one operator per row.
type explainStmt struct {
	Sel *selectStmt
}

// insertStmt is a parsed INSERT.
type insertStmt struct {
	Table  string
	Cols   []string
	Values []operand
}

// updateStmt is a parsed UPDATE.
type updateStmt struct {
	Table string
	Cols  []string
	Vals  []operand
	Where boolExpr // may be nil
}

// deleteStmt is a parsed DELETE.
type deleteStmt struct {
	Table string
	Where boolExpr // may be nil
}

func (*selectStmt) isStmt()  {}
func (*explainStmt) isStmt() {}
func (*insertStmt) isStmt()  {}
func (*updateStmt) isStmt()  {}
func (*deleteStmt) isStmt()  {}
