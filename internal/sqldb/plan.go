package sqldb

import (
	"fmt"
	"strings"
	"time"
)

// This file is the planning layer of the SELECT pipeline. The layering
// is:
//
//	parser.go / ast.go   — SQL text -> logical statement tree
//	plan.go  (this file) — logical tree -> physical selectPlan: one
//	                       access path per driving table plus a join
//	                       strategy per joined table, chosen by cost
//	                       from table/index statistics
//	operators.go         — physical plan -> rows, through composable
//	                       operators (scan, index lookup/range/order,
//	                       filter, joins, aggregate, sort, limit)
//
// Plans are built once at prepare time and cached with the statement
// (keyed by the index epoch, see stmtcache.go); placeholder values are
// not known at plan time, so selectivity estimates use index statistics
// and the operators re-resolve bound values at execution.

// pathKind enumerates the physical access paths for one table.
type pathKind int

const (
	// pathScan visits every slot of the table.
	pathScan pathKind = iota
	// pathPK resolves one row through the primary-key map.
	pathPK
	// pathIndexEq probes a secondary (hash or ordered) index bucket.
	pathIndexEq
	// pathIndexRange walks an ordered index between two bounds.
	pathIndexRange
	// pathIndexOrder walks an ordered index in ORDER BY order, stopping
	// early once LIMIT+OFFSET filtered rows are in hand.
	pathIndexOrder
)

// rangeBound is one side of an index range: the bound operand and
// whether the comparison excludes equality (">"/"<" vs ">="/"<=").
type rangeBound struct {
	rhs  operand
	excl bool
}

// accessPath is the planner's decision for producing one table's
// candidate rows. Operand values (placeholders) are resolved at
// execution; the operators re-check every predicate against the visible
// row, so a path is a narrowing hint, never a source of truth.
type accessPath struct {
	kind    pathKind
	colName string      // indexed column (all but pathScan)
	eq      operand     // pathPK, pathIndexEq
	lo, hi  *rangeBound // pathIndexRange
	desc    bool        // pathIndexOrder direction
	stop    int         // pathIndexOrder early-stop row count (limit+offset)
	estCost time.Duration
}

// joinPlan pre-resolves one join: which column of the newly joined table
// matches which already-visible column.
type joinPlan struct {
	innerCol  int    // column index in the inner (new) table
	innerName string // column name, for index lookup
	outerRef  colRef
	outerBi   int // resolved outer column position
	outerCi   int
}

func colBelongsTo(b binding, ref colRef) bool {
	if ref.Table != "" {
		return ref.Table == b.ref.name()
	}
	return b.tbl.schema.colIndex(ref.Column) >= 0
}

// joinStep is the resolved strategy for one INNER JOIN: the join-column
// plumbing plus whether the inner side is driven through an index
// (index-nested-loop) or a rescan (nested-loop).
type joinStep struct {
	joinPlan
	indexed    bool
	innerTable string // inner binding's display name, for EXPLAIN
}

// selectPlan is the physical plan for one SELECT.
type selectPlan struct {
	outerName string // driving table's display name
	outer     accessPath
	joins     []joinStep

	where        boolExpr // residual filter (the full WHERE; re-checked)
	hasAgg       bool
	groupBy      []colRef
	orderBy      []orderKey
	orderByIndex bool // outer path delivers ORDER BY order; no sort
	limit        int  // -1 when absent
	offset       int
}

// planSelect chooses the physical plan for a parsed SELECT: join
// strategies for every joined table and a cost-ranked access path for
// the driving table.
func (db *DB) planSelect(s *selectStmt) (*selectPlan, error) {
	bindings, err := db.resolveBindings(s)
	if err != nil {
		return nil, err
	}
	p := &selectPlan{
		outerName: bindings[0].ref.name(),
		where:     s.Where,
		groupBy:   s.GroupBy,
		orderBy:   s.OrderBy,
		limit:     s.Limit,
		offset:    s.Offset,
	}
	for _, it := range s.Items {
		if it.Agg != aggNone {
			p.hasAgg = true
			break
		}
	}
	// Resolve join sides: joins[i] extends binding i+1.
	p.joins = make([]joinStep, len(s.Joins))
	for i, j := range s.Joins {
		inner := bindings[i+1]
		visible := bindings[:i+1]
		lInner := colBelongsTo(inner, j.LCol)
		rInner := colBelongsTo(inner, j.RCol)
		var jp joinPlan
		switch {
		case lInner && !rInner:
			jp = joinPlan{innerCol: inner.tbl.schema.colIndex(j.LCol.Column), innerName: j.LCol.Column, outerRef: j.RCol}
		case rInner && !lInner:
			jp = joinPlan{innerCol: inner.tbl.schema.colIndex(j.RCol.Column), innerName: j.RCol.Column, outerRef: j.LCol}
		default:
			return nil, fmt.Errorf("sqldb: join ON must relate %q to an earlier table", inner.ref.name())
		}
		bi, ci, err := resolveCol(visible, jp.outerRef)
		if err != nil {
			return nil, fmt.Errorf("sqldb: join outer column: %w", err)
		}
		jp.outerBi, jp.outerCi = bi, ci
		p.joins[i] = joinStep{
			joinPlan:   jp,
			indexed:    inner.tbl.hasIndex(jp.innerName),
			innerTable: inner.ref.name(),
		}
	}
	p.outer = db.chooseAccessPath(s, bindings)
	p.orderByIndex = p.outer.kind == pathIndexOrder
	return p, nil
}

// sargable predicates: AND-connected "col OP row-independent-value"
// conjuncts usable by an index on the driving table.
type sarg struct {
	col colRef
	op  string
	rhs operand
}

// collectSargs walks AND-connected conjuncts for comparisons between a
// column of binding bi and a literal or placeholder.
func collectSargs(e boolExpr, bindings []binding, bi int, out []sarg) []sarg {
	switch t := e.(type) {
	case andExpr:
		out = collectSargs(t.L, bindings, bi, out)
		return collectSargs(t.R, bindings, bi, out)
	case cmpExpr:
		if !t.Rhs.IsLit && !t.Rhs.IsPlacehold {
			return out
		}
		gotBi, _, err := resolveCol(bindings, t.Col)
		if err != nil || gotBi != bi {
			return out
		}
		switch t.Op {
		case "=", "<", "<=", ">", ">=":
			return append(out, sarg{col: t.Col, op: t.Op, rhs: t.Rhs})
		}
	}
	return out
}

// choosePredPath costs every WHERE-driven access path for the driving
// table against the full scan and returns the cheapest. Candidates are
// priced with the same CostModel terms execution charges: scans pay
// PerRowScanned per slot, index paths pay PerIndexProbe per entry
// visited — so the planner's preference is exactly the latency the
// statement would feel. Shared by SELECT planning and DML read phases.
func (db *DB) choosePredPath(where boolExpr, bindings []binding) accessPath {
	b := bindings[0]
	st := b.tbl.stats()
	rows := float64(st.rows)
	perScan := float64(db.cost.PerRowScanned)
	perProbe := float64(db.cost.PerIndexProbe)

	best := accessPath{kind: pathScan, estCost: time.Duration(rows * perScan)}
	consider := func(p accessPath) {
		// At-most-as-expensive with scan seeded first: on a cost tie (for
		// example under ZeroCostModel) the index path wins because it is
		// considered only when no more expensive than the incumbent.
		if p.estCost <= best.estCost {
			best = p
		}
	}

	var sargs []sarg
	if where != nil {
		sargs = collectSargs(where, bindings, 0, nil)
	}

	// Equality candidates: primary key, then secondary indexes.
	pkName := ""
	if b.tbl.pkCol >= 0 {
		pkName = b.tbl.schema.Columns[b.tbl.pkCol].Name
	}
	for _, sg := range sargs {
		if sg.op != "=" {
			continue
		}
		col := sg.col.Column
		if col == pkName {
			consider(accessPath{
				kind: pathPK, colName: col, eq: sg.rhs,
				estCost: time.Duration(2 * perProbe),
			})
			continue
		}
		if b.tbl.hasIndex(col) {
			est := rows
			if d := st.distinct[col]; d > 0 {
				est = rows / float64(d)
			}
			consider(accessPath{
				kind: pathIndexEq, colName: col, eq: sg.rhs,
				estCost: time.Duration((1 + est) * perProbe),
			})
		}
	}

	// Range candidates: lo/hi bounds on one ordered-indexed column.
	type rangePair struct{ lo, hi *rangeBound }
	ranges := map[string]*rangePair{}
	var rangeCols []string
	for _, sg := range sargs {
		if sg.op == "=" {
			continue
		}
		col := sg.col.Column
		if !b.tbl.hasOrdered(col) {
			continue
		}
		rp := ranges[col]
		if rp == nil {
			rp = &rangePair{}
			ranges[col] = rp
			rangeCols = append(rangeCols, col)
		}
		bound := &rangeBound{rhs: sg.rhs, excl: sg.op == ">" || sg.op == "<"}
		if sg.op == ">" || sg.op == ">=" {
			if rp.lo == nil {
				rp.lo = bound
			}
		} else {
			if rp.hi == nil {
				rp.hi = bound
			}
		}
	}
	for _, col := range rangeCols {
		rp := ranges[col]
		sel := 1.0 / 3
		if rp.lo != nil && rp.hi != nil {
			sel = 1.0 / 4
		}
		est := rows * sel
		consider(accessPath{
			kind: pathIndexRange, colName: col, lo: rp.lo, hi: rp.hi,
			estCost: time.Duration((1 + est) * perProbe),
		})
	}
	return best
}

// chooseAccessPath picks the driving table's access path for a SELECT:
// the cheapest WHERE-driven path, challenged by the index-order path
// when the query shape admits one.
func (db *DB) chooseAccessPath(s *selectStmt, bindings []binding) accessPath {
	b := bindings[0]
	best := db.choosePredPath(s.Where, bindings)

	// Index-order candidate: a single-key ORDER BY on an ordered-indexed
	// column of a join-free, aggregate-free SELECT with a LIMIT — the
	// operator walks the index in order and stops once LIMIT+OFFSET
	// filtered rows are in hand.
	if len(s.Joins) == 0 && !planHasAgg(s) && len(s.GroupBy) == 0 &&
		len(s.OrderBy) == 1 && s.Limit >= 0 {
		key := s.OrderBy[0]
		if kbi, _, err := resolveCol(bindings, key.Ref); err == nil && kbi == 0 &&
			b.tbl.hasOrdered(key.Ref.Column) {
			rows := float64(b.tbl.stats().rows)
			visited := float64(s.Limit + s.Offset)
			if s.Where != nil {
				// A residual filter delays the early stop; assume it
				// passes half the rows, capped by the table itself.
				visited = min(rows, 2*visited+float64(s.Limit+s.Offset))
				visited = max(visited, rows/2)
			}
			cand := accessPath{
				kind: pathIndexOrder, colName: key.Ref.Column,
				desc: key.Desc, stop: s.Limit + s.Offset,
				estCost: time.Duration((1 + visited) * float64(db.cost.PerIndexProbe)),
			}
			// The index-order path also saves the sort the WHERE-driven
			// paths would pay; credit it when comparing. At-most-as-expensive,
			// like consider: on a cost tie (ZeroCostModel) the index wins.
			sortSaved := time.Duration(rows * float64(db.cost.PerSortRow))
			if cand.estCost <= best.estCost+sortSaved {
				best = cand
			}
		}
	}
	return best
}

func planHasAgg(s *selectStmt) bool {
	for _, it := range s.Items {
		if it.Agg != aggNone {
			return true
		}
	}
	return false
}

// ---- EXPLAIN rendering ----

// resultSet renders the plan as an EXPLAIN result: one operator per
// row, access path first, then joins, filter, aggregate, sort, limit.
func (p *selectPlan) resultSet() *ResultSet {
	lines := p.lines()
	rs := &ResultSet{Columns: []string{"plan"}, Rows: make([][]Value, len(lines))}
	for i, l := range lines {
		rs.Rows[i] = []Value{l}
	}
	return rs
}

func (p *selectPlan) lines() []string {
	var out []string
	qual := func(col string) string { return p.outerName + "." + col }
	switch p.outer.kind {
	case pathScan:
		out = append(out, fmt.Sprintf("Scan(%s)", p.outerName))
	case pathPK:
		out = append(out, fmt.Sprintf("PKLookup(%s = %s)", qual(p.outer.colName), renderOperand(p.outer.eq)))
	case pathIndexEq:
		out = append(out, fmt.Sprintf("IndexLookup(%s = %s)", qual(p.outer.colName), renderOperand(p.outer.eq)))
	case pathIndexRange:
		var bounds []string
		if lo := p.outer.lo; lo != nil {
			op := ">="
			if lo.excl {
				op = ">"
			}
			bounds = append(bounds, fmt.Sprintf("%s %s %s", qual(p.outer.colName), op, renderOperand(lo.rhs)))
		}
		if hi := p.outer.hi; hi != nil {
			op := "<="
			if hi.excl {
				op = "<"
			}
			bounds = append(bounds, fmt.Sprintf("%s %s %s", qual(p.outer.colName), op, renderOperand(hi.rhs)))
		}
		out = append(out, fmt.Sprintf("IndexRange(%s)", strings.Join(bounds, " and ")))
	case pathIndexOrder:
		dir := "asc"
		if p.outer.desc {
			dir = "desc"
		}
		out = append(out, fmt.Sprintf("IndexOrder(%s %s)", qual(p.outer.colName), dir))
	}
	for _, j := range p.joins {
		op := "NestedJoin"
		if j.indexed {
			op = "IndexJoin"
		}
		out = append(out, fmt.Sprintf("%s(%s.%s = %s)", op, j.innerTable, j.innerName, j.outerRef))
	}
	if p.where != nil {
		out = append(out, fmt.Sprintf("Filter(%s)", renderBool(p.where)))
	}
	if p.hasAgg || len(p.groupBy) > 0 {
		var keys []string
		for _, g := range p.groupBy {
			keys = append(keys, g.String())
		}
		if len(keys) > 0 {
			out = append(out, fmt.Sprintf("Aggregate(group by %s)", strings.Join(keys, ", ")))
		} else {
			out = append(out, "Aggregate()")
		}
	}
	if len(p.orderBy) > 0 && !p.orderByIndex {
		var keys []string
		for _, k := range p.orderBy {
			dir := "asc"
			if k.Desc {
				dir = "desc"
			}
			keys = append(keys, k.Ref.String()+" "+dir)
		}
		out = append(out, fmt.Sprintf("Sort(%s)", strings.Join(keys, ", ")))
	}
	if p.limit >= 0 || p.offset > 0 {
		if p.offset > 0 {
			out = append(out, fmt.Sprintf("Limit(%d offset %d)", p.limit, p.offset))
		} else {
			out = append(out, fmt.Sprintf("Limit(%d)", p.limit))
		}
	}
	return out
}

// renderOperand prints an expression leaf for EXPLAIN output.
func renderOperand(op operand) string {
	switch {
	case op.IsPlacehold:
		return "?"
	case op.IsLit:
		if _, isStr := op.Lit.(string); isStr {
			return "'" + op.Lit.(string) + "'"
		}
		return FormatValue(op.Lit)
	default:
		return op.Col.String()
	}
}

// renderBool prints a predicate tree for EXPLAIN output.
func renderBool(e boolExpr) string {
	switch t := e.(type) {
	case andExpr:
		return renderBool(t.L) + " and " + renderBool(t.R)
	case orExpr:
		return "(" + renderBool(t.L) + " or " + renderBool(t.R) + ")"
	case notExpr:
		return "not (" + renderBool(t.E) + ")"
	case cmpExpr:
		return fmt.Sprintf("%s %s %s", t.Col, t.Op, renderOperand(t.Rhs))
	case likeExpr:
		op := "like"
		if t.Neg {
			op = "not like"
		}
		return fmt.Sprintf("%s %s %s", t.Col, op, renderOperand(t.Rhs))
	case inExpr:
		var vals []string
		for _, o := range t.Set {
			vals = append(vals, renderOperand(o))
		}
		op := "in"
		if t.Neg {
			op = "not in"
		}
		return fmt.Sprintf("%s %s (%s)", t.Col, op, strings.Join(vals, ", "))
	case nullExpr:
		if t.Neg {
			return fmt.Sprintf("%s is not null", t.Col)
		}
		return fmt.Sprintf("%s is null", t.Col)
	default:
		return fmt.Sprintf("%T", e)
	}
}
