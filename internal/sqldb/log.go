package sqldb

import (
	"fmt"
	"sync"
)

// LogEntry is one committed DML statement in a DB's replication log:
// the original SQL, its normalized arguments, and the commit timestamp
// the statement was installed at. Replaying entries in TS order onto a
// database cloned at timestamp T reproduces the source byte for byte
// (including auto-assigned primary keys), because commit order is total
// and the clone preserved slot layout and auto-increment state.
type LogEntry struct {
	TS   int64
	SQL  string
	Args []Value
}

// ReplLog is the versioned apply log a DB appends every committed DML
// statement to once enabled. Commit timestamps are dense: entry N
// (counting from the log's base) has TS base+N+1, which lets consumers
// address the log by timestamp and lets the tier wait for "replica
// applied >= CommitTS" without scanning. internal/dbtier ships entries
// to replicas asynchronously, after the primary commit — replication is
// no longer inside any lock.
type ReplLog struct {
	mu      sync.Mutex
	base    int64 // TS of the newest entry ever truncated (or the enable point)
	entries []LogEntry
	changed chan struct{} // closed and replaced on every append
}

func newReplLog(base int64) *ReplLog {
	return &ReplLog{base: base, changed: make(chan struct{})}
}

// append adds one committed entry. Called with the owning DB's commitMu
// held, so TS arrives in order; a gap means a commit bypassed the log,
// which would silently desynchronize replicas — fail loudly instead.
func (l *ReplLog) append(e LogEntry) {
	l.mu.Lock()
	if want := l.base + int64(len(l.entries)) + 1; e.TS != want {
		l.mu.Unlock()
		panic(fmt.Sprintf("sqldb: replication log gap: got TS %d, want %d", e.TS, want))
	}
	l.entries = append(l.entries, e)
	close(l.changed)
	l.changed = make(chan struct{})
	l.mu.Unlock()
}

// Since returns the entries with TS > after, plus a channel that is
// closed on the next append — so a consumer that drained the log can
// block for more without polling. The returned slice is stable: entries
// are never mutated in place.
func (l *ReplLog) Since(after int64) ([]LogEntry, <-chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	idx := after - l.base
	if idx < 0 {
		idx = 0 // truncated past the cursor; should not happen under watermark discipline
	}
	if idx >= int64(len(l.entries)) {
		return nil, l.changed
	}
	return l.entries[idx:], l.changed
}

// LatestTS reports the commit timestamp of the newest entry (or the
// base when the log is empty).
func (l *ReplLog) LatestTS() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base + int64(len(l.entries))
}

// Base reports the TS of the newest entry ever truncated (or the
// enable point): the oldest catch-up point still replayable from the
// log. A replica whose applied watermark is below Base cannot catch up
// by replay and must resync from a fresh snapshot clone.
func (l *ReplLog) Base() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base
}

// Len reports the number of retained entries.
func (l *ReplLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// TruncateThrough drops entries with TS <= ts. The tier calls this with
// the minimum replica applied watermark, bounding log memory.
func (l *ReplLog) TruncateThrough(ts int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := ts - l.base
	if n <= 0 {
		return
	}
	if n > int64(len(l.entries)) {
		n = int64(len(l.entries))
	}
	l.entries = l.entries[n:]
	l.base += n
}
