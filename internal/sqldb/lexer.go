package sqldb

import (
	"fmt"
	"strings"
)

// sqlTokenKind discriminates SQL lexer output.
type sqlTokenKind int

const (
	tokIdent sqlTokenKind = iota + 1 // identifiers and keywords
	tokNumber
	tokString
	tokPunct // , ( ) * . = != <> < <= > >= ?
	tokEnd
)

type sqlToken struct {
	kind sqlTokenKind
	text string // identifiers uppercased for keyword matching? no: raw text
	pos  int
}

// sqlLexer produces tokens from a SQL string.
type sqlLexer struct {
	src    string
	pos    int
	tokens []sqlToken
}

func lexSQL(src string) ([]sqlToken, error) {
	l := &sqlLexer{src: src}
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		l.tokens = append(l.tokens, tok)
		if tok.kind == tokEnd {
			return l.tokens, nil
		}
	}
}

func (l *sqlLexer) next() (sqlToken, error) {
	for l.pos < len(l.src) && isSpace(l.src[l.pos]) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return sqlToken{kind: tokEnd, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentByte(l.src[l.pos]) {
			l.pos++
		}
		return sqlToken{kind: tokIdent, text: l.src[start:l.pos], pos: start}, nil
	case c >= '0' && c <= '9' || c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9':
		l.pos++
		for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9' || l.src[l.pos] == '.') {
			l.pos++
		}
		return sqlToken{kind: tokNumber, text: l.src[start:l.pos], pos: start}, nil
	case c == '\'':
		var sb strings.Builder
		l.pos++
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if ch == '\'' {
				// '' escapes a quote.
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					sb.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				return sqlToken{kind: tokString, text: sb.String(), pos: start}, nil
			}
			sb.WriteByte(ch)
			l.pos++
		}
		return sqlToken{}, fmt.Errorf("sqldb: unterminated string at byte %d in %q", start, l.src)
	case c == '<' || c == '>' || c == '!':
		l.pos++
		if l.pos < len(l.src) && (l.src[l.pos] == '=' || c == '<' && l.src[l.pos] == '>') {
			l.pos++
		}
		text := l.src[start:l.pos]
		if text == "!" {
			return sqlToken{}, fmt.Errorf("sqldb: stray '!' at byte %d in %q", start, l.src)
		}
		return sqlToken{kind: tokPunct, text: text, pos: start}, nil
	case c == '=' || c == ',' || c == '(' || c == ')' || c == '*' || c == '.' || c == '?':
		l.pos++
		return sqlToken{kind: tokPunct, text: string(c), pos: start}, nil
	default:
		return sqlToken{}, fmt.Errorf("sqldb: unexpected character %q at byte %d in %q", c, start, l.src)
	}
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

func isIdentStart(c byte) bool {
	return c == '_' || 'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z'
}

func isIdentByte(c byte) bool {
	return isIdentStart(c) || '0' <= c && c <= '9'
}

// keywordEqual compares an identifier token against a keyword,
// case-insensitively.
func keywordEqual(tok sqlToken, kw string) bool {
	return tok.kind == tokIdent && strings.EqualFold(tok.text, kw)
}
