package sqldb

import "time"

// CostModel charges paper-time for the work a statement does. The engine
// sleeps the computed duration (converted through the experiment's
// Timescale) while holding its table locks, which is what makes large
// scans slow, point lookups fast, and writers contend with readers — the
// three database behaviours the DSN'09 evaluation depends on.
//
// All durations are in paper time (the paper's wall clock), not host time.
type CostModel struct {
	// PerStatement is fixed per-statement overhead: wire round trip,
	// parsing, plan lookup.
	PerStatement time.Duration
	// PerRowScanned is charged for every row visited by a full scan.
	PerRowScanned time.Duration
	// PerIndexProbe is charged per index lookup (primary or secondary).
	PerIndexProbe time.Duration
	// PerRowMatched is charged per row that survives filtering and joins
	// (result materialization).
	PerRowMatched time.Duration
	// PerSortRow is charged per row passed into ORDER BY or GROUP BY.
	PerSortRow time.Duration
	// PerRowWritten is charged per row inserted, updated, or deleted.
	PerRowWritten time.Duration
}

// DefaultCostModel is calibrated against the paper's TPC-W setup: with
// the default population (10k items, ~26k order lines) indexed point
// queries land in the low milliseconds of paper time while the three
// scan-heavy pages (best sellers, new products, search) take seconds —
// the paper's fast/slow dichotomy (Section 4.2.1).
func DefaultCostModel() CostModel {
	return CostModel{
		PerStatement:  1 * time.Millisecond,
		PerRowScanned: 400 * time.Microsecond,
		PerIndexProbe: 60 * time.Microsecond,
		PerRowMatched: 20 * time.Microsecond,
		PerSortRow:    25 * time.Microsecond,
		PerRowWritten: 300 * time.Microsecond,
	}
}

// ZeroCostModel charges nothing; unit tests use it so they run at full
// speed and stay deterministic. It returns a pointer because Options.Cost
// distinguishes "unset" (nil, meaning DefaultCostModel) from "explicitly
// free".
func ZeroCostModel() *CostModel { return &CostModel{} }

// costCounter accumulates the work performed by one statement.
type costCounter struct {
	scanned int
	probes  int
	matched int
	sorted  int
	written int
}

// total computes the paper-time cost of the counted work.
func (c costCounter) total(m CostModel) time.Duration {
	return m.PerStatement +
		time.Duration(c.scanned)*m.PerRowScanned +
		time.Duration(c.probes)*m.PerIndexProbe +
		time.Duration(c.matched)*m.PerRowMatched +
		time.Duration(c.sorted)*m.PerSortRow +
		time.Duration(c.written)*m.PerRowWritten
}
