package sqldb

import (
	"fmt"
	"time"
)

// ColumnType declares the storage type of a column.
type ColumnType int

// Column types.
const (
	Int ColumnType = iota + 1
	Float
	String
	Bool
	Time
)

func (t ColumnType) String() string {
	switch t {
	case Int:
		return "INT"
	case Float:
		return "FLOAT"
	case String:
		return "STRING"
	case Bool:
		return "BOOL"
	case Time:
		return "TIME"
	default:
		return "UNKNOWN"
	}
}

// accepts reports whether v (normalized) is storable in a column of this
// type. NULL is storable everywhere.
func (t ColumnType) accepts(v Value) bool {
	if v == nil {
		return true
	}
	switch t {
	case Int:
		_, ok := v.(int64)
		return ok
	case Float:
		switch v.(type) {
		case float64, int64:
			return true
		}
		return false
	case String:
		_, ok := v.(string)
		return ok
	case Bool:
		_, ok := v.(bool)
		return ok
	case Time:
		_, ok := v.(time.Time)
		return ok
	default:
		return false
	}
}

// Column is one column definition.
type Column struct {
	Name string
	Type ColumnType
}

// Schema declares a table: its columns, primary key, and secondary
// indexes — hash (equality only) and ordered (equality, ranges, and
// ORDER BY). The primary key must be an Int column; inserting NULL as
// the primary key auto-assigns the next value (MySQL AUTO_INCREMENT).
// A column may appear in Indexes or Ordered, not both; DB.CreateIndex
// adds or upgrades indexes on a live table.
type Schema struct {
	Table      string
	Columns    []Column
	PrimaryKey string   // column name; optional
	Indexes    []string // secondary hash-indexed column names
	Ordered    []string // secondary ordered-indexed column names
}

// validate checks internal consistency.
func (s Schema) validate() error {
	if s.Table == "" {
		return fmt.Errorf("sqldb: schema with empty table name")
	}
	if len(s.Columns) == 0 {
		return fmt.Errorf("sqldb: table %q has no columns", s.Table)
	}
	seen := make(map[string]ColumnType, len(s.Columns))
	for _, c := range s.Columns {
		if c.Name == "" {
			return fmt.Errorf("sqldb: table %q has an unnamed column", s.Table)
		}
		if _, dup := seen[c.Name]; dup {
			return fmt.Errorf("sqldb: table %q duplicates column %q", s.Table, c.Name)
		}
		seen[c.Name] = c.Type
	}
	if s.PrimaryKey != "" {
		t, ok := seen[s.PrimaryKey]
		if !ok {
			return fmt.Errorf("sqldb: table %q primary key %q is not a column", s.Table, s.PrimaryKey)
		}
		if t != Int {
			return fmt.Errorf("sqldb: table %q primary key %q must be INT", s.Table, s.PrimaryKey)
		}
	}
	hashIdx := make(map[string]bool, len(s.Indexes))
	for _, idx := range s.Indexes {
		if _, ok := seen[idx]; !ok {
			return fmt.Errorf("sqldb: table %q index on unknown column %q", s.Table, idx)
		}
		hashIdx[idx] = true
	}
	for _, idx := range s.Ordered {
		if _, ok := seen[idx]; !ok {
			return fmt.Errorf("sqldb: table %q ordered index on unknown column %q", s.Table, idx)
		}
		if hashIdx[idx] {
			return fmt.Errorf("sqldb: table %q declares column %q as both hash and ordered index", s.Table, idx)
		}
	}
	return nil
}

// colIndex returns the position of name, or -1.
func (s Schema) colIndex(name string) int {
	for i, c := range s.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}
