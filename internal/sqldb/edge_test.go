package sqldb

import (
	"testing"
)

// Edge-case coverage for the executor: empty aggregates, alias ordering,
// pushdown correctness across join depths, and DML on indexed columns.

func TestAggregatesOnEmptyTable(t *testing.T) {
	db := Open(Options{Cost: ZeroCostModel()})
	db.MustCreateTable(Schema{
		Table:      "t",
		Columns:    []Column{{Name: "id", Type: Int}, {Name: "v", Type: Float}},
		PrimaryKey: "id",
	})
	c := db.Connect()
	defer c.Close()
	rs := mustQuery(t, c, "SELECT COUNT(*) AS n, SUM(v) AS s, AVG(v) AS a, MIN(v) AS lo, MAX(v) AS hi FROM t")
	if rs.Len() != 1 {
		t.Fatalf("rows = %d, want 1 (aggregate of empty set)", rs.Len())
	}
	if rs.Int(0, "n") != 0 {
		t.Fatalf("count = %d", rs.Int(0, "n"))
	}
	if rs.Get(0, "a") != nil {
		t.Fatalf("avg of empty = %v, want NULL", rs.Get(0, "a"))
	}
	if rs.Get(0, "lo") != nil || rs.Get(0, "hi") != nil {
		t.Fatalf("min/max of empty = %v/%v", rs.Get(0, "lo"), rs.Get(0, "hi"))
	}
}

func TestGroupByEmptyTableHasNoGroups(t *testing.T) {
	db := Open(Options{Cost: ZeroCostModel()})
	db.MustCreateTable(Schema{
		Table:      "t",
		Columns:    []Column{{Name: "id", Type: Int}, {Name: "g", Type: Int}},
		PrimaryKey: "id",
	})
	c := db.Connect()
	defer c.Close()
	rs := mustQuery(t, c, "SELECT g, COUNT(*) AS n FROM t GROUP BY g")
	if rs.Len() != 0 {
		t.Fatalf("groups = %d, want 0", rs.Len())
	}
}

func TestOrderByProjectionAlias(t *testing.T) {
	_, c := newTestDB(t)
	// Alias ordering requires the post-projection sort path.
	rs := mustQuery(t, c, "SELECT b_id AS ident FROM book ORDER BY ident DESC")
	if rs.Int(0, "ident") != 4 {
		t.Fatalf("alias sort: %v", rs.Rows)
	}
}

func TestPushdownFiltersBeforeJoin(t *testing.T) {
	// A predicate on the FROM table must not depend on join success:
	// rows failing it are never joined, and the result matches the
	// unfiltered join intersected with the predicate.
	_, c := newTestDB(t)
	all := mustQuery(t, c,
		"SELECT b_id FROM book JOIN author ON b_a_id = a_id WHERE b_price > 50 ORDER BY b_id")
	if all.Len() != 2 || all.Int(0, "b_id") != 1 || all.Int(1, "b_id") != 2 {
		t.Fatalf("pushdown result: %v", all.Rows)
	}
	// Predicate on the joined table only.
	byAuthor := mustQuery(t, c,
		"SELECT b_id FROM book JOIN author ON b_a_id = a_id WHERE a_name = 'Knuth' ORDER BY b_id")
	if byAuthor.Len() != 2 {
		t.Fatalf("join-side predicate: %v", byAuthor.Rows)
	}
	// Cross-table OR cannot be pushed down and must still work.
	mixed := mustQuery(t, c,
		"SELECT b_id FROM book JOIN author ON b_a_id = a_id WHERE a_name = 'Knuth' OR b_price < 35")
	if mixed.Len() != 3 {
		t.Fatalf("cross-table OR: %v", mixed.Rows)
	}
}

func TestJoinOnUnindexedColumnScans(t *testing.T) {
	db := Open(Options{Cost: ZeroCostModel()})
	db.MustCreateTable(Schema{
		Table:      "l",
		Columns:    []Column{{Name: "id", Type: Int}, {Name: "k", Type: Int}},
		PrimaryKey: "id",
	})
	db.MustCreateTable(Schema{
		Table:      "r",
		Columns:    []Column{{Name: "rid", Type: Int}, {Name: "rk", Type: Int}},
		PrimaryKey: "rid",
		// rk deliberately unindexed: the join must fall back to scanning.
	})
	c := db.Connect()
	defer c.Close()
	mustExec(t, c, "INSERT INTO l (id, k) VALUES (1, 7)")
	mustExec(t, c, "INSERT INTO r (rid, rk) VALUES (1, 7)")
	mustExec(t, c, "INSERT INTO r (rid, rk) VALUES (2, 7)")
	mustExec(t, c, "INSERT INTO r (rid, rk) VALUES (3, 8)")
	rs := mustQuery(t, c, "SELECT rid FROM l JOIN r ON k = rk ORDER BY rid")
	if rs.Len() != 2 || rs.Int(0, "rid") != 1 || rs.Int(1, "rid") != 2 {
		t.Fatalf("scan join: %v", rs.Rows)
	}
}

func TestUpdatePrimaryKeyRewiresIndex(t *testing.T) {
	_, c := newTestDB(t)
	mustExec(t, c, "UPDATE author SET a_id = ? WHERE a_id = ?", 50, 1)
	if rs := mustQuery(t, c, "SELECT a_name FROM author WHERE a_id = 50"); rs.Str(0, "a_name") != "Knuth" {
		t.Fatalf("moved pk: %v", rs.Rows)
	}
	if rs := mustQuery(t, c, "SELECT * FROM author WHERE a_id = 1"); rs.Len() != 0 {
		t.Fatal("old pk still resolves")
	}
	// Collision with an existing key must fail.
	if _, err := c.Exec("UPDATE author SET a_id = 2 WHERE a_id = 50"); err == nil {
		t.Fatal("pk collision accepted")
	}
}

func TestDeleteThenReinsertSamePK(t *testing.T) {
	_, c := newTestDB(t)
	mustExec(t, c, "DELETE FROM author WHERE a_id = 1")
	mustExec(t, c, "INSERT INTO author (a_id, a_name) VALUES (1, 'Again')")
	rs := mustQuery(t, c, "SELECT a_name FROM author WHERE a_id = 1")
	if rs.Str(0, "a_name") != "Again" {
		t.Fatalf("reinsert: %v", rs.Rows)
	}
}

func TestLimitZero(t *testing.T) {
	_, c := newTestDB(t)
	if rs := mustQuery(t, c, "SELECT * FROM book LIMIT 0"); rs.Len() != 0 {
		t.Fatalf("LIMIT 0 returned %d rows", rs.Len())
	}
	if rs := mustQuery(t, c, "SELECT * FROM book LIMIT 2 OFFSET 99"); rs.Len() != 0 {
		t.Fatalf("big OFFSET returned %d rows", rs.Len())
	}
}

func TestSelectStarWithJoin(t *testing.T) {
	_, c := newTestDB(t)
	rs := mustQuery(t, c, "SELECT * FROM book JOIN author ON b_a_id = a_id WHERE b_id = 1")
	if len(rs.Columns) != 6+2 {
		t.Fatalf("star join columns = %v", rs.Columns)
	}
	if rs.Str(0, "a_name") != "Knuth" {
		t.Fatalf("joined star row: %v", rs.Rows)
	}
	// Qualified star.
	rs = mustQuery(t, c, "SELECT author.* FROM book JOIN author ON b_a_id = a_id WHERE b_id = 1")
	if len(rs.Columns) != 2 {
		t.Fatalf("qualified star columns = %v", rs.Columns)
	}
}

func TestAmbiguousColumnRejected(t *testing.T) {
	db := Open(Options{Cost: ZeroCostModel()})
	for _, name := range []string{"x", "y"} {
		db.MustCreateTable(Schema{
			Table:      name,
			Columns:    []Column{{Name: "id", Type: Int}, {Name: "same", Type: Int}},
			PrimaryKey: "id",
		})
	}
	c := db.Connect()
	defer c.Close()
	mustExec(t, c, "INSERT INTO x (id, same) VALUES (1, 1)")
	mustExec(t, c, "INSERT INTO y (id, same) VALUES (1, 1)")
	if _, err := c.Query("SELECT same FROM x JOIN y ON x.same = y.same"); err == nil {
		t.Fatal("ambiguous projection accepted")
	}
}

func TestInWithPlaceholders(t *testing.T) {
	_, c := newTestDB(t)
	rs := mustQuery(t, c, "SELECT b_id FROM book WHERE b_id IN (?, ?, ?)", 1, 3, 99)
	if rs.Len() != 2 {
		t.Fatalf("IN placeholders: %v", rs.Rows)
	}
}
