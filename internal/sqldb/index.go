package sqldb

import (
	"sort"
	"sync/atomic"
)

// orderedIndex is a secondary ordered index over one column: a sorted
// slab of (value, slot) entries serving equality probes, range scans,
// and in-order traversal for ORDER BY. Like hashIndex, entries are
// stale-tolerant hints — they are added on insert and key change and
// never removed, so every access path re-checks the predicate against
// the visible row.
//
// The published state is immutable and swapped atomically: writers
// (serialized by db.commitMu) append to a small unsorted buffer
// copy-on-write and merge it into the sorted base once it exceeds
// mergeThreshold, so maintenance is amortized O(log n) per write instead
// of an O(n) slab copy. Readers load one pointer and work over slices
// that are never mutated afterwards.
type orderedIndex struct {
	col   int
	state atomic.Pointer[orderedState]
}

// idxEntry is one ordered-index entry: the indexed value and the slot it
// was observed at.
type idxEntry struct {
	val Value
	id  int
}

// orderedState is one immutable published generation of the index.
type orderedState struct {
	base []idxEntry // sorted by (val, id)
	buf  []idxEntry // recent additions, sorted by (val, id), small
	// distinct approximates the number of distinct values in base —
	// the planner's equality selectivity denominator.
	distinct int
}

// mergeThreshold bounds the unsorted-buffer length before it is folded
// into the sorted base.
const mergeThreshold = 256

func newOrderedIndex(col int) *orderedIndex {
	idx := &orderedIndex{col: col}
	idx.state.Store(&orderedState{})
	return idx
}

// entryLess orders entries by (val, id); values of mismatched types
// (possible only across NULL, which compare sorts first) never error for
// a typed column.
func entryLess(a, b idxEntry) bool {
	c, err := compare(a.val, b.val)
	if err != nil {
		// Incomparable values (foreign types in an untyped column) get a
		// stable arbitrary order; lookups on them degrade to re-checks.
		return a.id < b.id
	}
	if c != 0 {
		return c < 0
	}
	return a.id < b.id
}

// add registers id under v. Duplicate (v, id) pairs (a value that
// flipped away and back across updates) are collapsed. Callers hold
// db.commitMu, so adds are single-threaded; readers are concurrent.
func (idx *orderedIndex) add(v Value, id int) {
	st := idx.state.Load()
	e := idxEntry{val: v, id: id}
	if st.contains(e) {
		return
	}
	nbuf := make([]idxEntry, len(st.buf), len(st.buf)+1)
	copy(nbuf, st.buf)
	nbuf = append(nbuf, e)
	sort.Slice(nbuf, func(i, j int) bool { return entryLess(nbuf[i], nbuf[j]) })
	if len(nbuf) < mergeThreshold {
		idx.state.Store(&orderedState{base: st.base, buf: nbuf, distinct: st.distinct})
		return
	}
	merged := make([]idxEntry, 0, len(st.base)+len(nbuf))
	merged = append(merged, st.base...)
	merged = append(merged, nbuf...)
	sort.Slice(merged, func(i, j int) bool { return entryLess(merged[i], merged[j]) })
	distinct := 0
	for i := range merged {
		if i == 0 || !valuesEqual(merged[i].val, merged[i-1].val) {
			distinct++
		}
	}
	idx.state.Store(&orderedState{base: merged, distinct: distinct})
}

// contains reports whether the exact (val, id) entry is present.
func (st *orderedState) contains(e idxEntry) bool {
	i := sort.Search(len(st.base), func(i int) bool { return !entryLess(st.base[i], e) })
	if i < len(st.base) && st.base[i].id == e.id && valuesEqual(st.base[i].val, e.val) {
		return true
	}
	for _, b := range st.buf {
		if b.id == e.id && valuesEqual(b.val, e.val) {
			return true
		}
	}
	return false
}

// entries reports the total entry count (hints, not live rows).
func (st *orderedState) entries() int { return len(st.base) + len(st.buf) }

// distinctVals estimates the number of distinct indexed values.
func (st *orderedState) distinctVals() int {
	d := st.distinct + len(st.buf)
	if d < 1 {
		d = 1
	}
	return d
}

// cmpVal orders v against an entry value, treating incomparable pairs as
// "entry sorts low" so a corrupt entry is visited (and re-checked) rather
// than silently skipped.
func cmpVal(entryVal, v Value) int {
	c, err := compare(entryVal, v)
	if err != nil {
		return -1
	}
	return c
}

// lowerBound returns the first position in s with entry value >= v
// (or > v when excl).
func lowerBound(s []idxEntry, v Value, excl bool) int {
	return sort.Search(len(s), func(i int) bool {
		c := cmpVal(s[i].val, v)
		if excl {
			return c > 0
		}
		return c >= 0
	})
}

// upperBound returns the first position in s with entry value > v
// (or >= v when excl).
func upperBound(s []idxEntry, v Value, excl bool) int {
	return sort.Search(len(s), func(i int) bool {
		c := cmpVal(s[i].val, v)
		if excl {
			return c >= 0
		}
		return c > 0
	})
}

// eq returns the slot hints whose entry value equals v, plus the number
// of entries visited (for honest probe pricing).
func (st *orderedState) eq(v Value) (ids []int, visited int) {
	lo, hi := lowerBound(st.base, v, false), upperBound(st.base, v, false)
	for _, e := range st.base[lo:hi] {
		ids = append(ids, e.id)
		visited++
	}
	for _, e := range st.buf {
		if valuesEqual(e.val, v) {
			ids = append(ids, e.id)
		}
		visited++
	}
	return ids, visited
}

// rangeEntries returns the entries whose value lies inside the bounds
// (hasLo/hasHi false = unbounded on that side), in ascending (val, id)
// order, plus the number of entries visited. NULL-valued entries are
// excluded: SQL comparisons against NULL are never true. Entries (not
// bare ids) are returned so the executor can re-check each entry value
// against the visible row — a row whose key was updated has entries
// under both its old and new value, and only the one matching the
// visible row may produce it.
func (st *orderedState) rangeEntries(lo Value, loExcl bool, hasLo bool, hi Value, hiExcl bool, hasHi bool) (es []idxEntry, visited int) {
	inRange := func(v Value) bool {
		if v == nil {
			return false
		}
		if hasLo {
			c := cmpVal(v, lo)
			if c < 0 || (loExcl && c == 0) {
				return false
			}
		}
		if hasHi {
			c := cmpVal(v, hi)
			if c > 0 || (hiExcl && c == 0) {
				return false
			}
		}
		return true
	}
	start, end := 0, len(st.base)
	if hasLo {
		start = lowerBound(st.base, lo, loExcl)
	}
	if hasHi {
		end = upperBound(st.base, hi, hiExcl)
	}
	if start > end {
		start = end
	}
	var fromBuf []idxEntry
	for _, e := range st.buf {
		if inRange(e.val) {
			fromBuf = append(fromBuf, e)
		}
		visited++
	}
	visited += end - start
	return mergeEntries(st.base[start:end], fromBuf), visited
}

// allEntries returns every entry in ascending (val, id) order — unlike
// rangeEntries it keeps NULL-valued entries (ORDER BY sorts NULLs
// first, matching compare) — plus the visit count. Descending callers
// iterate the result backwards.
func (st *orderedState) allEntries() (es []idxEntry, visited int) {
	return mergeEntries(st.base, st.buf), st.entries()
}

// mergeEntries merges two (val, id)-sorted runs. The base run is
// returned as-is when the buffer contributes nothing.
func mergeEntries(base, buf []idxEntry) []idxEntry {
	if len(buf) == 0 {
		return base
	}
	out := make([]idxEntry, 0, len(base)+len(buf))
	i, j := 0, 0
	for i < len(base) && j < len(buf) {
		if entryLess(buf[j], base[i]) {
			out = append(out, buf[j])
			j++
		} else {
			out = append(out, base[i])
			i++
		}
	}
	out = append(out, base[i:]...)
	out = append(out, buf[j:]...)
	return out
}

// clone shares the immutable published state with the clone; the first
// add on either side diverges copy-on-write.
func (idx *orderedIndex) clone() *orderedIndex {
	n := &orderedIndex{col: idx.col}
	n.state.Store(idx.state.Load())
	return n
}
