package sqldb

import (
	"sync"
	"testing"
	"time"
)

// newTestDB builds a db with a small books/authors schema used across
// tests. Cost model is zero so tests run instantly.
func newTestDB(t *testing.T) (*DB, *Conn) {
	t.Helper()
	db := Open(Options{Cost: ZeroCostModel()})
	db.MustCreateTable(Schema{
		Table: "author",
		Columns: []Column{
			{Name: "a_id", Type: Int},
			{Name: "a_name", Type: String},
		},
		PrimaryKey: "a_id",
	})
	db.MustCreateTable(Schema{
		Table: "book",
		Columns: []Column{
			{Name: "b_id", Type: Int},
			{Name: "b_title", Type: String},
			{Name: "b_a_id", Type: Int},
			{Name: "b_price", Type: Float},
			{Name: "b_stock", Type: Int},
			{Name: "b_pub", Type: Time},
		},
		PrimaryKey: "b_id",
		Indexes:    []string{"b_a_id"},
	})
	c := db.Connect()
	t.Cleanup(c.Close)

	mustExec(t, c, "INSERT INTO author (a_id, a_name) VALUES (1, 'Knuth')")
	mustExec(t, c, "INSERT INTO author (a_id, a_name) VALUES (2, 'Pike')")
	pub := time.Date(2001, 1, 1, 0, 0, 0, 0, time.UTC)
	books := []struct {
		id     int
		title  string
		author int
		price  float64
		stock  int
		off    int
	}{
		{1, "TAOCP Volume 1", 1, 99.99, 10, 0},
		{2, "TAOCP Volume 2", 1, 89.99, 0, 365},
		{3, "The Go Programming Language", 2, 39.99, 25, 730},
		{4, "The Unix Programming Environment", 2, 29.99, 5, 1095},
	}
	for _, b := range books {
		if _, err := c.Exec(
			"INSERT INTO book (b_id, b_title, b_a_id, b_price, b_stock, b_pub) VALUES (?, ?, ?, ?, ?, ?)",
			b.id, b.title, b.author, b.price, b.stock, pub.AddDate(0, 0, b.off)); err != nil {
			t.Fatal(err)
		}
	}
	return db, c
}

func mustExec(t *testing.T, c *Conn, sql string, args ...any) ExecResult {
	t.Helper()
	res, err := c.Exec(sql, args...)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return res
}

func mustQuery(t *testing.T, c *Conn, sql string, args ...any) *ResultSet {
	t.Helper()
	rs, err := c.Query(sql, args...)
	if err != nil {
		t.Fatalf("Query(%q): %v", sql, err)
	}
	return rs
}

func TestSelectAll(t *testing.T) {
	_, c := newTestDB(t)
	rs := mustQuery(t, c, "SELECT * FROM book")
	if rs.Len() != 4 {
		t.Fatalf("Len = %d, want 4", rs.Len())
	}
	if len(rs.Columns) != 6 {
		t.Fatalf("Columns = %v", rs.Columns)
	}
}

func TestSelectByPrimaryKey(t *testing.T) {
	_, c := newTestDB(t)
	rs := mustQuery(t, c, "SELECT b_title FROM book WHERE b_id = ?", 3)
	if rs.Len() != 1 || rs.Str(0, "b_title") != "The Go Programming Language" {
		t.Fatalf("got %v", rs.Rows)
	}
}

func TestSelectBySecondaryIndex(t *testing.T) {
	_, c := newTestDB(t)
	rs := mustQuery(t, c, "SELECT b_id FROM book WHERE b_a_id = ?", 1)
	if rs.Len() != 2 {
		t.Fatalf("Len = %d, want 2", rs.Len())
	}
}

func TestWhereOperators(t *testing.T) {
	_, c := newTestDB(t)
	tests := []struct {
		where string
		args  []any
		want  int
	}{
		{"b_price > 50", nil, 2},
		{"b_price >= 89.99", nil, 2},
		{"b_price < 40 AND b_stock > 0", nil, 2},
		{"b_price < 40 OR b_price > 90", nil, 3},
		{"NOT b_stock = 0", nil, 3},
		{"b_id != 1", nil, 3},
		{"b_id <> 1", nil, 3},
		{"b_stock = 0", nil, 1},
		{"b_id IN (1, 3)", nil, 2},
		{"b_id NOT IN (1, 2, 3)", nil, 1},
		{"b_title LIKE '%programming%'", nil, 2},
		{"b_title NOT LIKE '%TAOCP%'", nil, 2},
		{"b_title LIKE ?", []any{"TAOCP Volume _"}, 2},
		{"(b_id = 1 OR b_id = 2) AND b_stock > 0", nil, 1},
	}
	for _, tt := range tests {
		rs := mustQuery(t, c, "SELECT b_id FROM book WHERE "+tt.where, tt.args...)
		if rs.Len() != tt.want {
			t.Errorf("WHERE %s: got %d rows, want %d", tt.where, rs.Len(), tt.want)
		}
	}
}

func TestIsNull(t *testing.T) {
	db := Open(Options{Cost: ZeroCostModel()})
	db.MustCreateTable(Schema{
		Table:      "t",
		Columns:    []Column{{Name: "id", Type: Int}, {Name: "v", Type: String}},
		PrimaryKey: "id",
	})
	c := db.Connect()
	defer c.Close()
	mustExec(t, c, "INSERT INTO t (id, v) VALUES (1, 'x')")
	mustExec(t, c, "INSERT INTO t (id, v) VALUES (2, NULL)")
	if rs := mustQuery(t, c, "SELECT id FROM t WHERE v IS NULL"); rs.Len() != 1 || rs.Int(0, "id") != 2 {
		t.Fatalf("IS NULL: %v", rs.Rows)
	}
	if rs := mustQuery(t, c, "SELECT id FROM t WHERE v IS NOT NULL"); rs.Len() != 1 || rs.Int(0, "id") != 1 {
		t.Fatalf("IS NOT NULL: %v", rs.Rows)
	}
}

func TestOrderByLimitOffset(t *testing.T) {
	_, c := newTestDB(t)
	rs := mustQuery(t, c, "SELECT b_id, b_price FROM book ORDER BY b_price DESC LIMIT 2")
	if rs.Len() != 2 || rs.Int(0, "b_id") != 1 || rs.Int(1, "b_id") != 2 {
		t.Fatalf("got %v", rs.Rows)
	}
	rs = mustQuery(t, c, "SELECT b_id FROM book ORDER BY b_price ASC LIMIT 2 OFFSET 1")
	if rs.Len() != 2 || rs.Int(0, "b_id") != 3 {
		t.Fatalf("offset got %v", rs.Rows)
	}
}

func TestOrderByTime(t *testing.T) {
	_, c := newTestDB(t)
	rs := mustQuery(t, c, "SELECT b_id FROM book ORDER BY b_pub DESC LIMIT 1")
	if rs.Int(0, "b_id") != 4 {
		t.Fatalf("latest book = %v", rs.Rows)
	}
}

func TestOrderByMultipleKeys(t *testing.T) {
	_, c := newTestDB(t)
	rs := mustQuery(t, c, "SELECT b_a_id, b_id FROM book ORDER BY b_a_id ASC, b_price ASC")
	wantIDs := []int64{2, 1, 4, 3}
	for i, want := range wantIDs {
		if got := rs.Int(i, "b_id"); got != want {
			t.Fatalf("row %d: b_id = %d, want %d (rows %v)", i, got, want, rs.Rows)
		}
	}
}

func TestJoinTwoTables(t *testing.T) {
	_, c := newTestDB(t)
	rs := mustQuery(t, c,
		"SELECT b_title, a_name FROM book JOIN author ON b_a_id = a_id WHERE a_name = 'Pike' ORDER BY b_title")
	if rs.Len() != 2 {
		t.Fatalf("Len = %d, want 2: %v", rs.Len(), rs.Rows)
	}
	if rs.Str(0, "a_name") != "Pike" {
		t.Fatalf("got %v", rs.Rows)
	}
}

func TestJoinWithAliases(t *testing.T) {
	_, c := newTestDB(t)
	rs := mustQuery(t, c,
		"SELECT b.b_title, a.a_name FROM book b INNER JOIN author a ON b.b_a_id = a.a_id WHERE a.a_id = ?", 1)
	if rs.Len() != 2 {
		t.Fatalf("Len = %d: %v", rs.Len(), rs.Rows)
	}
}

func TestThreeTableJoin(t *testing.T) {
	db, c := newTestDB(t)
	db.MustCreateTable(Schema{
		Table: "review",
		Columns: []Column{
			{Name: "r_id", Type: Int},
			{Name: "r_b_id", Type: Int},
			{Name: "r_stars", Type: Int},
		},
		PrimaryKey: "r_id",
		Indexes:    []string{"r_b_id"},
	})
	mustExec(t, c, "INSERT INTO review (r_id, r_b_id, r_stars) VALUES (1, 3, 5)")
	mustExec(t, c, "INSERT INTO review (r_id, r_b_id, r_stars) VALUES (2, 3, 4)")
	mustExec(t, c, "INSERT INTO review (r_id, r_b_id, r_stars) VALUES (3, 1, 3)")
	rs := mustQuery(t, c,
		"SELECT a_name, b_title, r_stars FROM review JOIN book ON r_b_id = b_id JOIN author ON b_a_id = a_id WHERE r_stars >= 4")
	if rs.Len() != 2 {
		t.Fatalf("Len = %d: %v", rs.Len(), rs.Rows)
	}
	for i := 0; i < rs.Len(); i++ {
		if rs.Str(i, "a_name") != "Pike" {
			t.Fatalf("row %d: %v", i, rs.Rows[i])
		}
	}
}

func TestAggregates(t *testing.T) {
	_, c := newTestDB(t)
	rs := mustQuery(t, c, "SELECT COUNT(*) AS n, SUM(b_stock) AS total, AVG(b_price) AS avgp, MIN(b_price) AS lo, MAX(b_price) AS hi FROM book")
	if rs.Int(0, "n") != 4 {
		t.Fatalf("count = %d", rs.Int(0, "n"))
	}
	if rs.Int(0, "total") != 40 {
		t.Fatalf("sum = %d", rs.Int(0, "total"))
	}
	if got := rs.Float(0, "avgp"); got < 64.98 || got > 65.0 {
		t.Fatalf("avg = %v", got)
	}
	if rs.Float(0, "lo") != 29.99 || rs.Float(0, "hi") != 99.99 {
		t.Fatalf("min/max = %v/%v", rs.Get(0, "lo"), rs.Get(0, "hi"))
	}
}

func TestGroupBy(t *testing.T) {
	_, c := newTestDB(t)
	rs := mustQuery(t, c,
		"SELECT b_a_id, COUNT(*) AS n, SUM(b_price) AS total FROM book GROUP BY b_a_id ORDER BY b_a_id")
	if rs.Len() != 2 {
		t.Fatalf("groups = %d", rs.Len())
	}
	if rs.Int(0, "n") != 2 || rs.Int(1, "n") != 2 {
		t.Fatalf("counts: %v", rs.Rows)
	}
	if got := rs.Float(0, "total"); got < 189.97 || got > 189.99 {
		t.Fatalf("author 1 total = %v", got)
	}
}

func TestGroupByOrderByAggregateAlias(t *testing.T) {
	// The TPC-W best-sellers shape: order by an aggregate alias, DESC,
	// with LIMIT.
	_, c := newTestDB(t)
	rs := mustQuery(t, c,
		"SELECT b_a_id, SUM(b_stock) AS qty FROM book GROUP BY b_a_id ORDER BY qty DESC LIMIT 1")
	if rs.Len() != 1 || rs.Int(0, "b_a_id") != 2 || rs.Int(0, "qty") != 30 {
		t.Fatalf("got %v", rs.Rows)
	}
}

func TestUpdate(t *testing.T) {
	_, c := newTestDB(t)
	res := mustExec(t, c, "UPDATE book SET b_stock = ? WHERE b_id = ?", 99, 2)
	if res.RowsAffected != 1 {
		t.Fatalf("RowsAffected = %d", res.RowsAffected)
	}
	rs := mustQuery(t, c, "SELECT b_stock FROM book WHERE b_id = 2")
	if rs.Int(0, "b_stock") != 99 {
		t.Fatalf("stock = %d", rs.Int(0, "b_stock"))
	}
}

func TestUpdateSecondaryIndexMaintained(t *testing.T) {
	_, c := newTestDB(t)
	mustExec(t, c, "UPDATE book SET b_a_id = ? WHERE b_id = ?", 2, 1)
	if rs := mustQuery(t, c, "SELECT b_id FROM book WHERE b_a_id = 1"); rs.Len() != 1 {
		t.Fatalf("author 1 rows = %d, want 1", rs.Len())
	}
	if rs := mustQuery(t, c, "SELECT b_id FROM book WHERE b_a_id = 2"); rs.Len() != 3 {
		t.Fatalf("author 2 rows = %d, want 3", rs.Len())
	}
}

func TestUpdateFromColumn(t *testing.T) {
	_, c := newTestDB(t)
	// SET col = other-col (row-dependent RHS).
	mustExec(t, c, "UPDATE book SET b_stock = b_id WHERE b_id = 4")
	rs := mustQuery(t, c, "SELECT b_stock FROM book WHERE b_id = 4")
	if rs.Int(0, "b_stock") != 4 {
		t.Fatalf("stock = %d", rs.Int(0, "b_stock"))
	}
}

func TestDelete(t *testing.T) {
	_, c := newTestDB(t)
	res := mustExec(t, c, "DELETE FROM book WHERE b_a_id = ?", 1)
	if res.RowsAffected != 2 {
		t.Fatalf("RowsAffected = %d", res.RowsAffected)
	}
	if rs := mustQuery(t, c, "SELECT * FROM book"); rs.Len() != 2 {
		t.Fatalf("remaining = %d", rs.Len())
	}
	// Index must not resurrect deleted rows.
	if rs := mustQuery(t, c, "SELECT * FROM book WHERE b_a_id = 1"); rs.Len() != 0 {
		t.Fatalf("deleted rows visible via index: %v", rs.Rows)
	}
}

func TestAutoIncrementPK(t *testing.T) {
	_, c := newTestDB(t)
	res := mustExec(t, c, "INSERT INTO author (a_id, a_name) VALUES (NULL, 'Thompson')")
	if res.LastInsertID != 3 {
		t.Fatalf("LastInsertID = %d, want 3", res.LastInsertID)
	}
	rs := mustQuery(t, c, "SELECT a_name FROM author WHERE a_id = 3")
	if rs.Str(0, "a_name") != "Thompson" {
		t.Fatalf("got %v", rs.Rows)
	}
}

func TestDuplicatePKRejected(t *testing.T) {
	_, c := newTestDB(t)
	if _, err := c.Exec("INSERT INTO author (a_id, a_name) VALUES (1, 'Dup')"); err == nil {
		t.Fatal("duplicate primary key accepted")
	}
}

func TestTypeChecking(t *testing.T) {
	_, c := newTestDB(t)
	if _, err := c.Exec("INSERT INTO author (a_id, a_name) VALUES (9, ?)", 123); err == nil {
		t.Fatal("int into string column accepted")
	}
	if _, err := c.Exec("UPDATE book SET b_stock = ? WHERE b_id = 1", "lots"); err == nil {
		t.Fatal("string into int column accepted")
	}
}

func TestIntAcceptedByFloatColumn(t *testing.T) {
	_, c := newTestDB(t)
	mustExec(t, c, "UPDATE book SET b_price = ? WHERE b_id = 1", 50)
	rs := mustQuery(t, c, "SELECT b_price FROM book WHERE b_id = 1")
	if rs.Float(0, "b_price") != 50 {
		t.Fatalf("price = %v", rs.Get(0, "b_price"))
	}
}

func TestParseErrors(t *testing.T) {
	_, c := newTestDB(t)
	for _, sql := range []string{
		"",
		"SELEC * FROM book",
		"SELECT FROM book",
		"SELECT * FROM",
		"SELECT * FROM book WHERE",
		"SELECT * FROM book LIMIT -1",
		"INSERT INTO book VALUES (1)",
		"INSERT INTO book (b_id) VALUES (1, 2)",
		"UPDATE book WHERE b_id = 1",
		"DELETE book",
		"SELECT * FROM book ORDER",
		"SELECT SUM(*) FROM book",
		"SELECT * FROM book WHERE b_id = 'unterminated",
	} {
		if _, err := c.Query(sql); err == nil {
			t.Errorf("Query(%q) succeeded, want error", sql)
		}
	}
}

func TestSemanticErrors(t *testing.T) {
	_, c := newTestDB(t)
	for _, sql := range []string{
		"SELECT * FROM nosuch",
		"SELECT nosuchcol FROM book",
		"SELECT * FROM book WHERE nosuch = 1",
		"SELECT b_id FROM book JOIN author ON b_id = b_a_id", // join not relating the new table
		"SELECT * FROM book, author",                         // no comma joins
	} {
		if _, err := c.Query(sql); err == nil {
			t.Errorf("Query(%q) succeeded, want error", sql)
		}
	}
	if _, err := c.Exec("INSERT INTO book (nosuch) VALUES (1)"); err == nil {
		t.Error("INSERT into unknown column accepted")
	}
}

func TestQueryVsExecMismatch(t *testing.T) {
	_, c := newTestDB(t)
	if _, err := c.Query("DELETE FROM book"); err == nil {
		t.Fatal("Query accepted DML")
	}
	if _, err := c.Exec("SELECT * FROM book"); err == nil {
		t.Fatal("Exec accepted SELECT")
	}
}

func TestMissingPlaceholderArg(t *testing.T) {
	_, c := newTestDB(t)
	if _, err := c.Query("SELECT * FROM book WHERE b_id = ?"); err == nil {
		t.Fatal("missing placeholder argument accepted")
	}
}

func TestConnClosed(t *testing.T) {
	db, _ := newTestDB(t)
	c2 := db.Connect()
	c2.Close()
	if _, err := c2.Query("SELECT * FROM book"); err != ErrConnClosed {
		t.Fatalf("err = %v, want ErrConnClosed", err)
	}
	c2.Close() // idempotent
}

func TestResultSetHelpers(t *testing.T) {
	_, c := newTestDB(t)
	rs := mustQuery(t, c, "SELECT b_id, b_title, b_price, b_pub FROM book WHERE b_id = 1")
	if rs.ColIndex("b_title") != 1 || rs.ColIndex("nope") != -1 {
		t.Fatal("ColIndex wrong")
	}
	if rs.Get(99, "b_id") != nil || rs.Get(0, "nope") != nil {
		t.Fatal("out-of-range Get should be nil")
	}
	if rs.TimeVal(0, "b_pub").IsZero() {
		t.Fatal("TimeVal zero")
	}
	maps := rs.Maps()
	if len(maps) != 1 || maps[0]["b_title"] != "TAOCP Volume 1" {
		t.Fatalf("Maps: %v", maps)
	}
	if rs.First()["b_id"] != int64(1) {
		t.Fatalf("First: %v", rs.First())
	}
	empty := mustQuery(t, c, "SELECT * FROM book WHERE b_id = 999")
	if empty.First() != nil {
		t.Fatal("First on empty result should be nil")
	}
}

func TestStringEscape(t *testing.T) {
	_, c := newTestDB(t)
	mustExec(t, c, "INSERT INTO author (a_id, a_name) VALUES (10, 'O''Brien')")
	rs := mustQuery(t, c, "SELECT a_name FROM author WHERE a_id = 10")
	if rs.Str(0, "a_name") != "O'Brien" {
		t.Fatalf("got %q", rs.Str(0, "a_name"))
	}
}

func TestSchemaValidation(t *testing.T) {
	db := Open(Options{Cost: ZeroCostModel()})
	for name, s := range map[string]Schema{
		"empty name":     {Columns: []Column{{Name: "a", Type: Int}}},
		"no columns":     {Table: "t"},
		"dup column":     {Table: "t", Columns: []Column{{Name: "a", Type: Int}, {Name: "a", Type: Int}}},
		"bad pk":         {Table: "t", Columns: []Column{{Name: "a", Type: Int}}, PrimaryKey: "b"},
		"non-int pk":     {Table: "t", Columns: []Column{{Name: "a", Type: String}}, PrimaryKey: "a"},
		"unknown index":  {Table: "t", Columns: []Column{{Name: "a", Type: Int}}, Indexes: []string{"zz"}},
		"unnamed column": {Table: "t", Columns: []Column{{Type: Int}}},
	} {
		if err := db.CreateTable(s); err == nil {
			t.Errorf("schema %q accepted", name)
		}
	}
	good := Schema{Table: "t", Columns: []Column{{Name: "a", Type: Int}}}
	if err := db.CreateTable(good); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(good); err == nil {
		t.Fatal("duplicate table accepted")
	}
}

func TestTableNamesAndSize(t *testing.T) {
	db, _ := newTestDB(t)
	names := db.TableNames()
	if len(names) != 2 || names[0] != "author" || names[1] != "book" {
		t.Fatalf("TableNames = %v", names)
	}
	n, err := db.TableSize("book")
	if err != nil || n != 4 {
		t.Fatalf("TableSize = %d, %v", n, err)
	}
	if _, err := db.TableSize("nosuch"); err == nil {
		t.Fatal("TableSize of unknown table succeeded")
	}
}

func TestConcurrentReadersAndWriter(t *testing.T) {
	_, c := newTestDB(t)
	db := c.db
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			conn := db.Connect()
			defer conn.Close()
			for j := 0; j < 50; j++ {
				if n%2 == 0 {
					if _, err := conn.Query("SELECT * FROM book WHERE b_a_id = 1"); err != nil {
						errs <- err
						return
					}
				} else {
					if _, err := conn.Exec("UPDATE book SET b_stock = ? WHERE b_id = 1", j); err != nil {
						errs <- err
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestLikeMatch(t *testing.T) {
	tests := []struct {
		s, pat string
		want   bool
	}{
		{"hello", "hello", true},
		{"hello", "HELLO", true}, // case-insensitive
		{"hello", "h%", true},
		{"hello", "%o", true},
		{"hello", "%ell%", true},
		{"hello", "h_llo", true},
		{"hello", "h_go", false},
		{"hello", "%", true},
		{"", "%", true},
		{"", "_", false},
		{"abc", "a%c", true},
		{"abc", "a%b", false},
		{"aXbXc", "a%b%c", true},
		{"the go programming language", "%go%", true},
	}
	for _, tt := range tests {
		if got := likeMatch(tt.s, tt.pat); got != tt.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", tt.s, tt.pat, got, tt.want)
		}
	}
}

func TestCompareValues(t *testing.T) {
	if c, err := compare(int64(1), 1.5); err != nil || c != -1 {
		t.Fatalf("int vs float: %d, %v", c, err)
	}
	if c, err := compare("a", "b"); err != nil || c != -1 {
		t.Fatalf("strings: %d, %v", c, err)
	}
	if c, err := compare(nil, int64(0)); err != nil || c != -1 {
		t.Fatalf("nil sorts first: %d, %v", c, err)
	}
	if _, err := compare("a", int64(1)); err == nil {
		t.Fatal("string vs int comparable")
	}
	if c, err := compare(false, true); err != nil || c != -1 {
		t.Fatalf("bools: %d, %v", c, err)
	}
	now := time.Now()
	if c, err := compare(now, now.Add(time.Second)); err != nil || c != -1 {
		t.Fatalf("times: %d, %v", c, err)
	}
}

func TestStatementCache(t *testing.T) {
	db, c := newTestDB(t)
	const q = "SELECT * FROM book WHERE b_id = ?"
	for i := 0; i < 10; i++ {
		if _, err := c.Query(q, i); err != nil {
			t.Fatal(err)
		}
	}
	if _, cached := db.stmts.get(q, db.IndexEpoch()); !cached {
		t.Fatal("statement not cached")
	}
	if db.StmtCacheHits() < 9 {
		t.Fatalf("StmtCacheHits = %d, want >= 9", db.StmtCacheHits())
	}
	if db.QueryCount() < 10 {
		t.Fatalf("QueryCount = %d", db.QueryCount())
	}
}

func TestSumIntTypePreserved(t *testing.T) {
	_, c := newTestDB(t)
	rs := mustQuery(t, c, "SELECT SUM(b_stock) AS total FROM book")
	if _, ok := rs.Get(0, "total").(int64); !ok {
		t.Fatalf("SUM over INT column returned %T, want int64", rs.Get(0, "total"))
	}
	rs = mustQuery(t, c, "SELECT SUM(b_price) AS total FROM book")
	if _, ok := rs.Get(0, "total").(float64); !ok {
		t.Fatalf("SUM over FLOAT column returned %T, want float64", rs.Get(0, "total"))
	}
}
