package sqldb

import (
	"fmt"
	"sync"
)

// Snapshot is a read-only view of the database at a fixed commit
// timestamp. Creation takes no lock and copies nothing — storage is
// versioned, so a snapshot query walks the same version chains live
// statements do, just at an older timestamp.
//
// An open Snapshot pins its timestamp against version garbage
// collection: writers keep every version a pinned reader could still
// resolve. Close the snapshot when done — a leaked snapshot holds
// version chains on hot rows alive indefinitely. Versions committed
// and pruned before the snapshot was created are gone; SnapshotAt with
// a timestamp older than the prune horizon resolves those rows at
// their oldest retained version.
type Snapshot struct {
	db        *DB
	ts        int64
	closeOnce sync.Once
}

// SnapshotAt returns a read view pinned at an explicit commit
// timestamp.
func (db *DB) SnapshotAt(ts int64) *Snapshot {
	db.pinSnapshot(ts)
	return &Snapshot{db: db, ts: ts}
}

// Snapshot returns a read view pinned at the current commit timestamp.
func (db *DB) Snapshot() *Snapshot { return db.SnapshotAt(db.commitTS.Load()) }

// TS reports the snapshot's commit timestamp.
func (s *Snapshot) TS() int64 { return s.ts }

// Close releases the snapshot's pin on version garbage collection.
// Idempotent. Queries after Close still run but lose the retention
// guarantee.
func (s *Snapshot) Close() {
	s.closeOnce.Do(func() { s.db.unpinSnapshot(s.ts) })
}

// Query executes a SELECT against the snapshot. It never takes a table
// lock in either concurrency mode and never blocks writers; results are
// exactly the rows visible at TS.
func (s *Snapshot) Query(sql string, args ...any) (*ResultSet, error) {
	s.db.queries.Inc()
	s.db.snapshotReads.Inc()
	st, err := s.db.prepare(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*selectStmt)
	if !ok {
		return nil, fmt.Errorf("sqldb: Snapshot.Query requires SELECT, got %q", sql)
	}
	ec, err := newExecCtx(args)
	if err != nil {
		return nil, err
	}
	return s.db.execSelectAt(sel, ec, s.ts)
}
