// Package sqldb implements the embedded relational database that stands
// in for the paper's MySQL 5.0 server.
//
// It supports the SQL surface the TPC-W bookstore needs — CREATE-less
// schema registration, SELECT with WHERE / INNER JOIN / GROUP BY /
// ORDER BY / LIMIT / LIKE, aggregate functions, INSERT, UPDATE, and
// DELETE with '?' placeholders — plus the two behaviours the DSN'09
// evaluation hinges on:
//
//   - per-table reader/writer locks, so the admin-response page's UPDATE
//     on the hot item table must wait for in-flight read queries exactly
//     as the paper describes; and
//   - an injectable latency CostModel that charges paper-time for rows
//     scanned, index probes, sorts, and writes, reproducing the paper's
//     fast/slow page dichotomy (indexed point queries vs. large scans)
//     at laptop scale.
//
// # Layering
//
// Query processing is split into a plan layer and an exec layer:
//
//   - lexer.go / parser.go / ast.go parse SQL into an AST once per
//     statement text (compile.go + stmtcache.go cache the result).
//   - plan.go is the planner: it turns a selectStmt into a logical plan
//     and chooses a physical access path per table — full scan,
//     primary-key lookup, hash-index point lookup, ordered-index range
//     or order walk, or index-nested-loop join — by pricing each
//     candidate with the CostModel and keeping the cheapest (an index
//     path wins a cost tie). EXPLAIN renders the chosen plan.
//   - operators.go + exec.go are the executor: composable operators
//     that run the chosen access paths, re-checking every predicate
//     against the row version actually visible to the statement, so
//     index entries only ever have to be stale-tolerant hints.
//   - index.go maintains the secondary indexes (hash for equality,
//     ordered copy-on-write slabs for ranges and ordering)
//     transactionally under both engines; CreateIndex bumps the
//     database's index epoch, which invalidates cached plans so every
//     statement is replanned against the new physical schema.
//
// Storage is row-versioned: every committed DML statement stamps the
// versions it installs with a dense per-database commit timestamp, and
// a statement's rows are all-or-nothing — no reader at any timestamp
// observes half of a multi-row UPDATE. Two concurrency disciplines
// interpret that storage, selected by Options.MVCC / DB.SetMVCC:
//
//   - mvcc=off (default): any number of connections may execute
//     concurrently; each statement locks the tables it touches (read or
//     write) for its duration, like MySQL's MyISAM table locking that
//     the paper's admin page contends on.
//   - mvcc=on: SELECTs run lock-free against a pinned snapshot of the
//     current commit timestamp, and DML commits optimistically with
//     first-writer-wins conflict detection (ErrWriteConflict, counted
//     by DB.Conflicts) and transparent retry inside Conn.Exec. Readers
//     never block writers and writers never block readers; cost-model
//     sleeps happen outside the engine's commit critical section.
//
// Either way every commit appends to the optional versioned replication
// log (DB.EnableReplLog), which internal/dbtier ships to replicas, and
// DB.Snapshot / DB.SnapshotAt expose pinned time-travel read views.
package sqldb
