package sqldb

import (
	"container/list"
	"sync"

	"stagedweb/internal/metrics"
)

// defaultStmtCacheSize bounds the per-DB prepared-statement cache. TPC-W
// issues a few dozen distinct parameterized statements, so the default
// keeps every hot plan resident while non-parameterized SQL (literals
// inlined into the text) can no longer grow the cache without bound.
const defaultStmtCacheSize = 256

// stmtCache is a small LRU over parsed-and-planned statements keyed by
// SQL text. Every entry records the index epoch its plan was built
// under; an entry from an older epoch is a miss (and is evicted), so a
// CreateIndex invalidates every cached plan instead of leaving stale
// full-scan plans resident.
type stmtCache struct {
	mu    sync.Mutex
	cap   int
	m     map[string]*list.Element
	order *list.List // front = most recently used

	hits   metrics.Counter
	misses metrics.Counter
}

type stmtCacheEntry struct {
	sql   string
	s     stmt
	epoch int64 // index epoch the plan was built under
}

func newStmtCache(capacity int) *stmtCache {
	if capacity <= 0 {
		capacity = defaultStmtCacheSize
	}
	return &stmtCache{
		cap:   capacity,
		m:     make(map[string]*list.Element, capacity),
		order: list.New(),
	}
}

// get looks a statement up at the current index epoch, counting the hit
// or miss and refreshing recency on a hit. An entry planned under an
// older epoch is evicted and reported as a miss — the caller reparses
// and replans.
func (c *stmtCache) get(sql string, epoch int64) (stmt, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[sql]
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	ent := el.Value.(*stmtCacheEntry)
	if ent.epoch != epoch {
		c.order.Remove(el)
		delete(c.m, sql)
		c.misses.Inc()
		return nil, false
	}
	c.hits.Inc()
	c.order.MoveToFront(el)
	return ent.s, true
}

// put inserts a parsed statement planned at epoch, evicting the least
// recently used entry when the cache is full. A concurrent insert of
// the same SQL (two goroutines parsing the same miss) keeps the newer
// epoch.
func (c *stmtCache) put(sql string, s stmt, epoch int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[sql]; ok {
		ent := el.Value.(*stmtCacheEntry)
		if epoch > ent.epoch {
			ent.s, ent.epoch = s, epoch
		}
		c.order.MoveToFront(el)
		return
	}
	c.m[sql] = c.order.PushFront(&stmtCacheEntry{sql: sql, s: s, epoch: epoch})
	if c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.m, oldest.Value.(*stmtCacheEntry).sql)
	}
}

// len reports the resident entry count.
func (c *stmtCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
