package sqldb

import (
	"testing"
	"time"
)

func cloneTestDB(t *testing.T) (*DB, *Conn) {
	t.Helper()
	db := Open(Options{Cost: ZeroCostModel()})
	db.MustCreateTable(Schema{
		Table: "item",
		Columns: []Column{
			{Name: "i_id", Type: Int},
			{Name: "i_subject", Type: String},
			{Name: "i_cost", Type: Float},
		},
		PrimaryKey: "i_id",
		Indexes:    []string{"i_subject"},
	})
	c := db.Connect()
	t.Cleanup(c.Close)
	for i := 1; i <= 20; i++ {
		subject := "ARTS"
		if i%2 == 0 {
			subject = "BIO"
		}
		mustExec(t, c, "INSERT INTO item (i_id, i_subject, i_cost) VALUES (?, ?, ?)", i, subject, float64(i))
	}
	mustExec(t, c, "DELETE FROM item WHERE i_id = 7") // leave a tombstone
	return db, c
}

func TestCloneCopiesContents(t *testing.T) {
	db, _ := cloneTestDB(t)
	clone := db.Clone()

	cc := clone.Connect()
	defer cc.Close()
	rs, err := cc.Query("SELECT i_id, i_cost FROM item WHERE i_subject = ?", "ARTS")
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 9 { // 10 odd ids minus the deleted 7
		t.Fatalf("clone ARTS rows = %d, want 9", rs.Len())
	}
	n, err := clone.TableSize("item")
	if err != nil || n != 19 {
		t.Fatalf("clone TableSize = %d, %v; want 19", n, err)
	}

	// Auto-increment state is copied: the next NULL-pk insert gets the
	// same id on both databases.
	c := db.Connect()
	defer c.Close()
	orig, err := c.Exec("INSERT INTO item (i_id, i_subject, i_cost) VALUES (NULL, 'NEW', 1.0)")
	if err != nil {
		t.Fatal(err)
	}
	cloned, err := cc.Exec("INSERT INTO item (i_id, i_subject, i_cost) VALUES (NULL, 'NEW', 1.0)")
	if err != nil {
		t.Fatal(err)
	}
	if orig.LastInsertID != cloned.LastInsertID {
		t.Fatalf("auto ids diverge: original %d, clone %d", orig.LastInsertID, cloned.LastInsertID)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	db, c := cloneTestDB(t)
	clone := db.Clone()
	mustExec(t, c, "UPDATE item SET i_cost = 99.0 WHERE i_id = 1")

	cc := clone.Connect()
	defer cc.Close()
	rs, err := cc.Query("SELECT i_cost FROM item WHERE i_id = 1")
	if err != nil {
		t.Fatal(err)
	}
	if got := rs.Float(0, "i_cost"); got != 1.0 {
		t.Fatalf("clone saw the original's update: i_cost = %v", got)
	}
}

func TestApplyHookFiresUnderWriteLock(t *testing.T) {
	db, c := cloneTestDB(t)
	type applied struct {
		sql  string
		args []Value
	}
	var got []applied
	db.SetApplyHook(func(sql string, args []Value) {
		got = append(got, applied{sql, args})
	})

	mustExec(t, c, "UPDATE item SET i_cost = ? WHERE i_id = ?", 5.5, 2)
	if _, err := c.Query("SELECT i_id FROM item WHERE i_id = 2"); err != nil {
		t.Fatal(err)
	}
	mustExec(t, c, "DELETE FROM item WHERE i_id = 3")

	if len(got) != 2 {
		t.Fatalf("hook fired %d times, want 2 (SELECTs must not fire it)", len(got))
	}
	if got[0].sql != "UPDATE item SET i_cost = ? WHERE i_id = ?" {
		t.Fatalf("hook sql = %q", got[0].sql)
	}
	if len(got[0].args) != 2 || got[0].args[0] != 5.5 || got[0].args[1] != int64(2) {
		t.Fatalf("hook args = %#v", got[0].args)
	}

	// Removing the hook stops delivery.
	db.SetApplyHook(nil)
	mustExec(t, c, "DELETE FROM item WHERE i_id = 4")
	if len(got) != 2 {
		t.Fatalf("hook fired after removal")
	}
}

// TestCostDefaultsToDefaultModel pins the Options contract: nil means
// DefaultCostModel (as the docs always promised), while an explicitly
// zeroed model stays free.
func TestCostDefaultsToDefaultModel(t *testing.T) {
	if db := Open(Options{}); db.cost != DefaultCostModel() {
		t.Fatalf("unset Cost = %+v, want DefaultCostModel", db.cost)
	}
	if db := Open(Options{Cost: ZeroCostModel()}); db.cost != (CostModel{}) {
		t.Fatalf("ZeroCostModel Cost = %+v, want zero", db.cost)
	}
	custom := CostModel{PerStatement: time.Millisecond}
	if db := Open(Options{Cost: &custom}); db.cost != custom {
		t.Fatalf("explicit Cost = %+v, want %+v", db.cost, custom)
	}
}
