package sqldb

import (
	"fmt"
	"strings"
	"time"
)

// Value is a single column value: nil, int64, float64, string, bool, or
// time.Time. The engine normalizes integer inputs to int64.
type Value any

// normalize converts supported Go values into canonical engine values.
func normalize(v any) (Value, error) {
	switch t := v.(type) {
	case nil, int64, float64, string, bool, time.Time:
		return t, nil
	case int:
		return int64(t), nil
	case int32:
		return int64(t), nil
	case int16:
		return int64(t), nil
	case int8:
		return int64(t), nil
	case uint:
		return int64(t), nil
	case uint32:
		return int64(t), nil
	case uint64:
		return int64(t), nil
	case float32:
		return float64(t), nil
	case []byte:
		return string(t), nil
	default:
		return nil, fmt.Errorf("sqldb: unsupported value type %T", v)
	}
}

// compare orders two values: -1, 0, or +1. nil sorts first. Numeric types
// compare numerically across int64/float64; strings lexically; times
// chronologically; bools false<true. Mismatched types report an error.
func compare(a, b Value) (int, error) {
	if a == nil || b == nil {
		switch {
		case a == nil && b == nil:
			return 0, nil
		case a == nil:
			return -1, nil
		default:
			return 1, nil
		}
	}
	switch av := a.(type) {
	case int64:
		switch bv := b.(type) {
		case int64:
			return cmpOrdered(av, bv), nil
		case float64:
			return cmpOrdered(float64(av), bv), nil
		}
	case float64:
		switch bv := b.(type) {
		case int64:
			return cmpOrdered(av, float64(bv)), nil
		case float64:
			return cmpOrdered(av, bv), nil
		}
	case string:
		if bv, ok := b.(string); ok {
			return strings.Compare(av, bv), nil
		}
	case bool:
		if bv, ok := b.(bool); ok {
			switch {
			case av == bv:
				return 0, nil
			case !av:
				return -1, nil
			default:
				return 1, nil
			}
		}
	case time.Time:
		if bv, ok := b.(time.Time); ok {
			switch {
			case av.Equal(bv):
				return 0, nil
			case av.Before(bv):
				return -1, nil
			default:
				return 1, nil
			}
		}
	}
	return 0, fmt.Errorf("sqldb: cannot compare %T with %T", a, b)
}

func cmpOrdered[T int64 | float64](a, b T) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// valuesEqual reports whether two values compare equal; incomparable
// types are simply unequal.
func valuesEqual(a, b Value) bool {
	c, err := compare(a, b)
	return err == nil && c == 0
}

// likeMatch implements SQL LIKE: '%' matches any run, '_' any single
// byte. Matching is ASCII case-insensitive, as in MySQL's default
// collation, and allocation-free (it runs once per scanned row in LIKE
// queries).
func likeMatch(s, pattern string) bool {
	// Iterative matching with backtracking on the last '%'.
	si, pi := 0, 0
	star, starSi := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '_' || lowerByte(pattern[pi]) == lowerByte(s[si])):
			si++
			pi++
		case pi < len(pattern) && pattern[pi] == '%':
			star, starSi = pi, si
			pi++
		case star >= 0:
			pi = star + 1
			starSi++
			si = starSi
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}

func lowerByte(c byte) byte {
	if 'A' <= c && c <= 'Z' {
		return c + ('a' - 'A')
	}
	return c
}

// asNumber coerces a value to float64 for aggregation.
func asNumber(v Value) (float64, bool) {
	switch t := v.(type) {
	case int64:
		return float64(t), true
	case float64:
		return t, true
	case bool:
		if t {
			return 1, true
		}
		return 0, true
	default:
		return 0, false
	}
}

// FormatValue renders a value for diagnostics and harness output.
func FormatValue(v Value) string {
	switch t := v.(type) {
	case nil:
		return "NULL"
	case string:
		return t
	case time.Time:
		return t.Format(time.RFC3339)
	default:
		return fmt.Sprintf("%v", t)
	}
}
