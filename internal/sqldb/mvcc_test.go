package sqldb

import (
	"errors"
	"sync"
	"testing"
	"time"

	"stagedweb/internal/clock"
)

func mvccTestDB(t *testing.T, on bool) (*DB, *Conn) {
	t.Helper()
	db := Open(Options{Cost: ZeroCostModel(), MVCC: on})
	db.MustCreateTable(Schema{
		Table: "hot",
		Columns: []Column{
			{Name: "h_id", Type: Int},
			{Name: "h_group", Type: Int},
			{Name: "h_val", Type: Int},
		},
		PrimaryKey: "h_id",
		Indexes:    []string{"h_group"},
	})
	c := db.Connect()
	t.Cleanup(c.Close)
	for i := 1; i <= 64; i++ {
		mustExec(t, c, "INSERT INTO hot (h_id, h_group, h_val) VALUES (?, ?, ?)", i, 1, 0)
	}
	return db, c
}

func TestMVCCSnapshotIsolation(t *testing.T) {
	db, c := mvccTestDB(t, true)
	snap := db.Snapshot()
	mustExec(t, c, "UPDATE hot SET h_val = ? WHERE h_id = ?", 42, 1)

	rs, err := snap.Query("SELECT h_val FROM hot WHERE h_id = ?", 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := rs.Int(0, "h_val"); got != 0 {
		t.Fatalf("snapshot saw a later write: h_val = %d, want 0", got)
	}
	rs = mustQuery(t, c, "SELECT h_val FROM hot WHERE h_id = ?", 1)
	if got := rs.Int(0, "h_val"); got != 42 {
		t.Fatalf("fresh read h_val = %d, want 42", got)
	}
	if db.SnapshotReads() == 0 {
		t.Fatal("SnapshotReads did not count")
	}
}

func TestMVCCTimeTravel(t *testing.T) {
	db, c := mvccTestDB(t, true)
	// Pin a snapshot after each commit; open snapshots hold version GC,
	// so every pinned state stays resolvable until Close.
	snaps := []*Snapshot{db.Snapshot()}
	wants := []int64{0}
	lastTS := db.CommitTS()
	for _, v := range []int64{10, 20, 30} {
		res := mustExec(t, c, "UPDATE hot SET h_val = ? WHERE h_id = ?", v, 5)
		if res.CommitTS != lastTS+1 {
			t.Fatalf("CommitTS = %d, want %d", res.CommitTS, lastTS+1)
		}
		lastTS = res.CommitTS
		snaps = append(snaps, db.Snapshot())
		wants = append(wants, v)
	}
	for i, snap := range snaps {
		rs, err := snap.Query("SELECT h_val FROM hot WHERE h_id = ?", 5)
		if err != nil {
			t.Fatal(err)
		}
		if got := rs.Int(0, "h_val"); got != wants[i] {
			t.Fatalf("at ts %d: h_val = %d, want %d", snap.TS(), got, wants[i])
		}
		snap.Close()
	}
}

// TestMVCCConflictDetection drives the commit protocol directly: a
// write set collected at a stale snapshot must fail first-writer-wins
// validation once another writer commits to the same slot.
func TestMVCCConflictDetection(t *testing.T) {
	db, c := mvccTestDB(t, true)
	tbl, err := db.lookupTable("hot")
	if err != nil {
		t.Fatal(err)
	}
	stale := db.CommitTS()
	view := tbl.view(stale)
	id, ok := view.lookupPK(3)
	if !ok {
		t.Fatal("pk 3 not found")
	}
	newRow := append([]Value(nil), view.row(id)...)
	newRow[2] = int64(7)

	// Another writer commits to the same row after our snapshot.
	mustExec(t, c, "UPDATE hot SET h_val = ? WHERE h_id = ?", 99, 3)

	ec := &execCtx{sql: "UPDATE hot SET h_val = ? WHERE h_id = ?", args: []Value{int64(7), int64(3)}}
	_, err = db.commitWrites(tbl, stale, []rowWrite{{id: id, row: newRow}}, nil, ec, true)
	if !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("stale commit err = %v, want ErrWriteConflict", err)
	}
	if db.Conflicts() != 1 {
		t.Fatalf("Conflicts = %d, want 1", db.Conflicts())
	}
	// The conflicted statement must not have installed anything.
	rs := mustQuery(t, c, "SELECT h_val FROM hot WHERE h_id = ?", 3)
	if got := rs.Int(0, "h_val"); got != 99 {
		t.Fatalf("h_val = %d, want the winner's 99", got)
	}
}

// TestMVCCConflictRetry: concurrent single-row writers all succeed at
// the statement level — Conn.Exec absorbs conflicts by re-executing on
// a fresh snapshot — and the row ends at one of the written values.
func TestMVCCConflictRetry(t *testing.T) {
	db, _ := mvccTestDB(t, true)
	const writers = 8
	const iters = 25
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := db.Connect()
			defer c.Close()
			for i := 0; i < iters; i++ {
				if _, err := c.Exec("UPDATE hot SET h_val = ? WHERE h_id = ?", w*1000+i, 9); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("writer failed: %v", err)
	}
	c := db.Connect()
	defer c.Close()
	rs := mustQuery(t, c, "SELECT h_val FROM hot WHERE h_id = ?", 9)
	got := rs.Int(0, "h_val")
	if got%1000 != iters-1 {
		t.Fatalf("final h_val = %d, want some writer's last value", got)
	}
}

// TestMVCCStressSnapshotConsistency is the -race stress test: many
// readers and multi-row writers on one hot table. Every UPDATE sets all
// 64 rows of the group to one value in a single statement, so any
// consistent snapshot must observe 64 rows that all agree — a reader
// that ever sees a half-applied update fails. Runs under both
// concurrency modes (lock mode serializes through the table lock; MVCC
// through snapshots and first-writer-wins commits).
func TestMVCCStressSnapshotConsistency(t *testing.T) {
	for _, mode := range []struct {
		name string
		on   bool
	}{{"mvcc", true}, {"lock", false}} {
		t.Run(mode.name, func(t *testing.T) {
			db, _ := mvccTestDB(t, mode.on)
			const readers = 6
			const writers = 3
			const writes = 40
			var wg sync.WaitGroup
			done := make(chan struct{})
			fail := make(chan string, readers+writers)

			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					c := db.Connect()
					defer c.Close()
					for i := 0; i < writes; i++ {
						v := w*writes + i + 1
						if _, err := c.Exec("UPDATE hot SET h_val = ? WHERE h_group = ?", v, 1); err != nil {
							fail <- "writer: " + err.Error()
							return
						}
					}
				}(w)
			}
			var rg sync.WaitGroup
			for r := 0; r < readers; r++ {
				rg.Add(1)
				go func() {
					defer rg.Done()
					c := db.Connect()
					defer c.Close()
					for {
						select {
						case <-done:
							return
						default:
						}
						rs, err := c.Query("SELECT h_val FROM hot WHERE h_group = ?", 1)
						if err != nil {
							fail <- "reader: " + err.Error()
							return
						}
						if rs.Len() != 64 {
							fail <- "reader: snapshot dropped rows"
							return
						}
						first := rs.Int(0, "h_val")
						for i := 1; i < rs.Len(); i++ {
							if rs.Int(i, "h_val") != first {
								fail <- "reader: half-applied multi-row UPDATE visible"
								return
							}
						}
					}
				}()
			}
			wg.Wait()
			close(done)
			rg.Wait()
			select {
			case msg := <-fail:
				t.Fatal(msg)
			default:
			}
			if mode.on {
				t.Logf("conflicts absorbed by retry: %d", db.Conflicts())
			}
		})
	}
}

// TestLookupIndexStableSnapshot pins the satellite fix: an index bucket
// handed to a reader is immutable — later inserts and deletes on the
// same value never mutate it (the old implementation swap-deleted in
// place and returned the live backing slice).
func TestLookupIndexStableSnapshot(t *testing.T) {
	db, c := mvccTestDB(t, true)
	tbl, err := db.lookupTable("hot")
	if err != nil {
		t.Fatal(err)
	}
	view := tbl.view(db.CommitTS())
	ids, _, ok := view.lookupIndex("h_group", int64(1))
	if !ok || len(ids) != 64 {
		t.Fatalf("bucket = %d ids, ok=%v; want 64", len(ids), ok)
	}
	before := append([]int(nil), ids...)

	mustExec(t, c, "DELETE FROM hot WHERE h_id = ?", 1)
	for i := 100; i < 110; i++ {
		mustExec(t, c, "INSERT INTO hot (h_id, h_group, h_val) VALUES (?, ?, ?)", i, 1, 0)
	}
	if len(ids) != len(before) {
		t.Fatalf("handed-out bucket length changed: %d -> %d", len(before), len(ids))
	}
	for i := range ids {
		if ids[i] != before[i] {
			t.Fatalf("handed-out bucket mutated at %d: %d -> %d", i, before[i], ids[i])
		}
	}
	// And the view still resolves exactly its snapshot's rows through it.
	live := 0
	for _, id := range ids {
		if view.row(id) != nil {
			live++
		}
	}
	if live != 64 {
		t.Fatalf("snapshot view resolves %d rows, want 64 despite later delete", live)
	}
}

// TestStmtCacheLRU pins the satellite fix: non-parameterized SQL cannot
// grow the statement cache without bound, and hit/miss counters work.
func TestStmtCacheLRU(t *testing.T) {
	db := Open(Options{Cost: ZeroCostModel(), StmtCacheSize: 8})
	db.MustCreateTable(Schema{
		Table:      "t",
		Columns:    []Column{{Name: "id", Type: Int}},
		PrimaryKey: "id",
	})
	c := db.Connect()
	defer c.Close()
	mustExec(t, c, "INSERT INTO t (id) VALUES (1)")

	// 40 distinct literal-inlined statements through a cap-8 cache.
	stmts := []string{
		"SELECT id FROM t WHERE id = 1", "SELECT id FROM t WHERE id = 2",
		"SELECT id FROM t WHERE id = 3", "SELECT id FROM t WHERE id = 4",
		"SELECT id FROM t WHERE id = 5", "SELECT id FROM t WHERE id = 6",
		"SELECT id FROM t WHERE id = 7", "SELECT id FROM t WHERE id = 8",
		"SELECT id FROM t WHERE id = 9", "SELECT id FROM t WHERE id = 10",
	}
	for round := 0; round < 4; round++ {
		for _, q := range stmts {
			if _, err := c.Query(q); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got := db.StmtCacheLen(); got > 8 {
		t.Fatalf("cache grew past its bound: %d entries, cap 8", got)
	}
	if db.StmtCacheMisses() == 0 {
		t.Fatalf("miss counter: misses=%d", db.StmtCacheMisses())
	}

	// Recency: the hot statement survives a flood of cold ones.
	hot := "SELECT id FROM t WHERE id = 1"
	for i := 0; i < 7; i++ {
		if _, err := c.Query(hot); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Query(stmts[1+i%9]); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := db.stmts.get(hot, db.IndexEpoch()); !ok {
		t.Fatal("hot statement evicted despite recency")
	}
	if db.StmtCacheHits() == 0 {
		t.Fatalf("hit counter never moved: hits=%d", db.StmtCacheHits())
	}
}

// TestQueryTimesUseInjectedClock pins the satellite fix: the
// per-statement latency histogram records durations on the DB's
// injected clock, not wall time. Under clock.Manual a 3s-cost statement
// must record ~3s even though almost no wall time passes.
func TestQueryTimesUseInjectedClock(t *testing.T) {
	clk := clock.NewManual(time.Unix(0, 0))
	cost := CostModel{PerStatement: 3 * time.Second}
	db := Open(Options{Clock: clk, Cost: &cost})
	db.MustCreateTable(Schema{
		Table:      "t",
		Columns:    []Column{{Name: "id", Type: Int}},
		PrimaryKey: "id",
	})
	c := db.Connect()
	defer c.Close()

	done := make(chan error, 1)
	go func() {
		_, err := c.Exec("INSERT INTO t (id) VALUES (1)")
		done <- err
	}()
	clk.BlockUntilWaiters(1)
	clk.Advance(3 * time.Second)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := db.QueryTimes().Max(); got < 2*time.Second {
		t.Fatalf("QueryTimes.Max = %v; wall-clock timing snuck back in (want ~3s of manual-clock time)", got)
	}
}

func TestReplLog(t *testing.T) {
	db, c := mvccTestDB(t, true)
	l := db.EnableReplLog()
	base := db.CommitTS()

	mustExec(t, c, "UPDATE hot SET h_val = ? WHERE h_id = ?", 1, 1)
	mustExec(t, c, "DELETE FROM hot WHERE h_id = ?", 2)
	// A zero-row statement still logs: timestamps stay dense.
	mustExec(t, c, "UPDATE hot SET h_val = ? WHERE h_id = ?", 1, 100000)

	entries, _ := l.Since(base)
	if len(entries) != 3 {
		t.Fatalf("log has %d entries, want 3", len(entries))
	}
	for i, e := range entries {
		if e.TS != base+int64(i)+1 {
			t.Fatalf("entry %d TS = %d, want dense from base %d", i, e.TS, base)
		}
	}
	if entries[1].SQL != "DELETE FROM hot WHERE h_id = ?" {
		t.Fatalf("entry SQL = %q", entries[1].SQL)
	}

	// Blocking tail: a drained consumer wakes on the next append.
	tail, changed := l.Since(l.LatestTS())
	if tail != nil {
		t.Fatalf("drained Since returned %d entries", len(tail))
	}
	go func() { mustExec(t, c, "UPDATE hot SET h_val = ? WHERE h_id = ?", 2, 1) }()
	select {
	case <-changed:
	case <-time.After(5 * time.Second):
		t.Fatal("append did not wake the tail consumer")
	}

	// Truncation through a watermark drops only what it should.
	l.TruncateThrough(base + 2)
	rest, _ := l.Since(base + 2)
	if len(rest) != 2 || rest[0].TS != base+3 {
		t.Fatalf("after truncate: %d entries, first TS %v", len(rest), rest[0].TS)
	}
	if l.Len() != 2 {
		t.Fatalf("Len = %d, want 2", l.Len())
	}

	// Disabling stops appends.
	db.DisableReplLog()
	mustExec(t, c, "UPDATE hot SET h_val = ? WHERE h_id = ?", 3, 1)
	if l.Len() != 2 {
		t.Fatalf("log grew after DisableReplLog")
	}
}

// TestMVCCPKReuseAfterDelete: deleting a row and re-inserting its key
// must work (the pk map entry is a stale hint that gets remapped), and
// the new row must be visible.
func TestMVCCPKReuseAfterDelete(t *testing.T) {
	db, c := mvccTestDB(t, true)
	mustExec(t, c, "DELETE FROM hot WHERE h_id = ?", 10)
	res := mustExec(t, c, "INSERT INTO hot (h_id, h_group, h_val) VALUES (?, ?, ?)", 10, 1, 777)
	if res.LastInsertID != 10 {
		t.Fatalf("LastInsertID = %d", res.LastInsertID)
	}
	rs := mustQuery(t, c, "SELECT h_val FROM hot WHERE h_id = ?", 10)
	if rs.Len() != 1 || rs.Int(0, "h_val") != 777 {
		t.Fatalf("reinserted row: %d rows, val %d", rs.Len(), rs.Int(0, "h_val"))
	}
	// Duplicate insert of a live key still errors.
	if _, err := c.Exec("INSERT INTO hot (h_id, h_group, h_val) VALUES (?, ?, ?)", 10, 1, 0); err == nil {
		t.Fatal("duplicate pk insert succeeded")
	}
	if n, _ := db.TableSize("hot"); n != 64 {
		t.Fatalf("TableSize = %d, want 64", n)
	}
}
