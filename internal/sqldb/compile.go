package sqldb

import "fmt"

// This file compiles WHERE trees into closures with column positions
// resolved once per statement execution, and splits top-level AND
// conjuncts by the deepest join binding they reference so the executor
// can apply each predicate as early as possible during nested-loop
// enumeration (predicate pushdown). Without this, a query like the TPC-W
// new-products listing would join the author table for all ten thousand
// item rows before discarding 96% of them on the subject filter.

// compiledPred is a WHERE conjunct ready for per-row evaluation.
type compiledPred struct {
	eval  func(rows [][]Value, ec *execCtx) (bool, error)
	depth int // deepest binding index referenced
}

// splitAnd flattens top-level AND nodes into conjuncts.
func splitAnd(e boolExpr, out []boolExpr) []boolExpr {
	if a, ok := e.(andExpr); ok {
		out = splitAnd(a.L, out)
		return splitAnd(a.R, out)
	}
	return append(out, e)
}

// compileWhere compiles a WHERE tree into per-depth predicate lists:
// preds[i] holds the conjuncts that can run once bindings 0..i are bound.
func compileWhere(e boolExpr, bindings []binding) ([][]compiledPred, error) {
	preds := make([][]compiledPred, len(bindings))
	if e == nil {
		return preds, nil
	}
	for _, conj := range splitAnd(e, nil) {
		cp, err := compileBool(conj, bindings)
		if err != nil {
			return nil, err
		}
		preds[cp.depth] = append(preds[cp.depth], cp)
	}
	return preds, nil
}

// compileBool compiles one boolean node.
func compileBool(e boolExpr, bindings []binding) (compiledPred, error) {
	switch t := e.(type) {
	case andExpr:
		l, err := compileBool(t.L, bindings)
		if err != nil {
			return compiledPred{}, err
		}
		r, err := compileBool(t.R, bindings)
		if err != nil {
			return compiledPred{}, err
		}
		return compiledPred{
			depth: maxInt(l.depth, r.depth),
			eval: func(rows [][]Value, ec *execCtx) (bool, error) {
				ok, err := l.eval(rows, ec)
				if err != nil || !ok {
					return false, err
				}
				return r.eval(rows, ec)
			},
		}, nil
	case orExpr:
		l, err := compileBool(t.L, bindings)
		if err != nil {
			return compiledPred{}, err
		}
		r, err := compileBool(t.R, bindings)
		if err != nil {
			return compiledPred{}, err
		}
		return compiledPred{
			depth: maxInt(l.depth, r.depth),
			eval: func(rows [][]Value, ec *execCtx) (bool, error) {
				ok, err := l.eval(rows, ec)
				if err != nil || ok {
					return ok, err
				}
				return r.eval(rows, ec)
			},
		}, nil
	case notExpr:
		inner, err := compileBool(t.E, bindings)
		if err != nil {
			return compiledPred{}, err
		}
		return compiledPred{
			depth: inner.depth,
			eval: func(rows [][]Value, ec *execCtx) (bool, error) {
				ok, err := inner.eval(rows, ec)
				return !ok, err
			},
		}, nil
	case cmpExpr:
		bi, ci, err := resolveCol(bindings, t.Col)
		if err != nil {
			return compiledPred{}, err
		}
		rhs, rhsDepth, err := compileOperand(t.Rhs, bindings)
		if err != nil {
			return compiledPred{}, err
		}
		op := t.Op
		return compiledPred{
			depth: maxInt(bi, rhsDepth),
			eval: func(rows [][]Value, ec *execCtx) (bool, error) {
				lhs := rows[bi][ci]
				rv, err := rhs(rows, ec)
				if err != nil {
					return false, err
				}
				if lhs == nil || rv == nil {
					return false, nil
				}
				c, err := compare(lhs, rv)
				if err != nil {
					return false, err
				}
				switch op {
				case "=":
					return c == 0, nil
				case "!=":
					return c != 0, nil
				case "<":
					return c < 0, nil
				case "<=":
					return c <= 0, nil
				case ">":
					return c > 0, nil
				case ">=":
					return c >= 0, nil
				default:
					return false, fmt.Errorf("sqldb: unknown operator %q", op)
				}
			},
		}, nil
	case likeExpr:
		bi, ci, err := resolveCol(bindings, t.Col)
		if err != nil {
			return compiledPred{}, err
		}
		rhs, rhsDepth, err := compileOperand(t.Rhs, bindings)
		if err != nil {
			return compiledPred{}, err
		}
		neg := t.Neg
		return compiledPred{
			depth: maxInt(bi, rhsDepth),
			eval: func(rows [][]Value, ec *execCtx) (bool, error) {
				s, ok1 := rows[bi][ci].(string)
				rv, err := rhs(rows, ec)
				if err != nil {
					return false, err
				}
				pat, ok2 := rv.(string)
				if !ok1 || !ok2 {
					return false, nil
				}
				m := likeMatch(s, pat)
				if neg {
					m = !m
				}
				return m, nil
			},
		}, nil
	case inExpr:
		bi, ci, err := resolveCol(bindings, t.Col)
		if err != nil {
			return compiledPred{}, err
		}
		depth := bi
		evals := make([]func([][]Value, *execCtx) (Value, error), len(t.Set))
		for i, op := range t.Set {
			fn, d, err := compileOperand(op, bindings)
			if err != nil {
				return compiledPred{}, err
			}
			evals[i] = fn
			depth = maxInt(depth, d)
		}
		neg := t.Neg
		return compiledPred{
			depth: depth,
			eval: func(rows [][]Value, ec *execCtx) (bool, error) {
				lhs := rows[bi][ci]
				for _, fn := range evals {
					rv, err := fn(rows, ec)
					if err != nil {
						return false, err
					}
					if valuesEqual(lhs, rv) {
						return !neg, nil
					}
				}
				return neg, nil
			},
		}, nil
	case nullExpr:
		bi, ci, err := resolveCol(bindings, t.Col)
		if err != nil {
			return compiledPred{}, err
		}
		neg := t.Neg
		return compiledPred{
			depth: bi,
			eval: func(rows [][]Value, ec *execCtx) (bool, error) {
				isNull := rows[bi][ci] == nil
				if neg {
					return !isNull, nil
				}
				return isNull, nil
			},
		}, nil
	default:
		return compiledPred{}, fmt.Errorf("sqldb: unknown boolean expression %T", e)
	}
}

// compileOperand compiles a literal, placeholder, or column reference to
// a value closure plus the deepest binding it references.
func compileOperand(op operand, bindings []binding) (func([][]Value, *execCtx) (Value, error), int, error) {
	switch {
	case op.IsLit:
		v := op.Lit
		return func([][]Value, *execCtx) (Value, error) { return v, nil }, 0, nil
	case op.IsPlacehold:
		idx := op.Placeholder
		return func(_ [][]Value, ec *execCtx) (Value, error) {
			if idx >= len(ec.args) {
				return nil, fmt.Errorf("sqldb: missing argument for placeholder %d", idx+1)
			}
			return ec.args[idx], nil
		}, 0, nil
	default:
		bi, ci, err := resolveCol(bindings, op.Col)
		if err != nil {
			return nil, 0, err
		}
		return func(rows [][]Value, _ *execCtx) (Value, error) {
			return rows[bi][ci], nil
		}, bi, nil
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
