package template

import (
	"fmt"
	"strconv"
	"strings"
)

// expr is a parsed expression: a literal, a dotted variable path, a
// filter pipeline, or a boolean/comparison tree (inside {% if %}).
type expr interface {
	eval(ctx *Context) (any, error)
}

// ---- scanner ----

type exprScanner struct {
	src string
	pos int
	cur string // current token ("" at end)
}

func newExprScanner(src string) (*exprScanner, error) {
	s := &exprScanner{src: src}
	if err := s.next(); err != nil {
		return nil, err
	}
	return s, nil
}

// next advances to the following token.
func (s *exprScanner) next() error {
	for s.pos < len(s.src) && (s.src[s.pos] == ' ' || s.src[s.pos] == '\t' || s.src[s.pos] == '\n' || s.src[s.pos] == '\r') {
		s.pos++
	}
	if s.pos >= len(s.src) {
		s.cur = ""
		return nil
	}
	start := s.pos
	c := s.src[s.pos]
	switch {
	case c == '\'' || c == '"':
		quote := c
		s.pos++
		for s.pos < len(s.src) && s.src[s.pos] != quote {
			s.pos++
		}
		if s.pos >= len(s.src) {
			return fmt.Errorf("template: unterminated string in %q", s.src)
		}
		s.pos++ // consume closing quote
		s.cur = s.src[start:s.pos]
	case isWordStart(c):
		for s.pos < len(s.src) && isWordByte(s.src[s.pos]) {
			s.pos++
		}
		s.cur = s.src[start:s.pos]
	case c >= '0' && c <= '9' || c == '-' && s.pos+1 < len(s.src) && s.src[s.pos+1] >= '0' && s.src[s.pos+1] <= '9':
		s.pos++
		for s.pos < len(s.src) && (s.src[s.pos] >= '0' && s.src[s.pos] <= '9' || s.src[s.pos] == '.') {
			s.pos++
		}
		s.cur = s.src[start:s.pos]
	case c == '=' || c == '!' || c == '<' || c == '>':
		s.pos++
		if s.pos < len(s.src) && s.src[s.pos] == '=' {
			s.pos++
		}
		s.cur = s.src[start:s.pos]
	case c == '|' || c == ':':
		s.pos++
		s.cur = s.src[start:s.pos]
	default:
		return fmt.Errorf("template: unexpected character %q in expression %q", c, s.src)
	}
	return nil
}

func (s *exprScanner) atEnd() bool { return s.cur == "" }

func isWordStart(c byte) bool {
	return c == '_' || 'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z'
}

// isWordByte includes '.' so dotted paths scan as one token, as in Django.
func isWordByte(c byte) bool {
	return isWordStart(c) || '0' <= c && c <= '9' || c == '.'
}

// ---- AST ----

type literalExpr struct{ v any }

func (l literalExpr) eval(*Context) (any, error) { return l.v, nil }

type pathExpr struct{ parts []string }

func (p pathExpr) eval(ctx *Context) (any, error) {
	v, ok := ctx.Lookup(p.parts[0])
	if !ok {
		return nil, nil // Django: missing variables render as empty
	}
	for _, attr := range p.parts[1:] {
		v = resolveAttr(v, attr)
	}
	return v, nil
}

type filterCall struct {
	name   string
	fn     FilterFunc
	arg    expr // nil when the filter takes no argument
	hasArg bool
}

type pipelineExpr struct {
	base    expr
	filters []filterCall
}

func (p pipelineExpr) eval(ctx *Context) (any, error) {
	v, err := p.base.eval(ctx)
	if err != nil {
		return nil, err
	}
	for _, f := range p.filters {
		var arg any
		if f.hasArg {
			arg, err = f.arg.eval(ctx)
			if err != nil {
				return nil, err
			}
		}
		v, err = f.fn(v, arg, f.hasArg)
		if err != nil {
			return nil, fmt.Errorf("filter %q: %w", f.name, err)
		}
	}
	return v, nil
}

type binaryExpr struct {
	op   string
	l, r expr
}

func (b binaryExpr) eval(ctx *Context) (any, error) {
	lv, err := b.l.eval(ctx)
	if err != nil {
		return nil, err
	}
	// Short-circuit boolean operators.
	switch b.op {
	case "and":
		if !Truth(lv) {
			return lv, nil
		}
		return b.r.eval(ctx)
	case "or":
		if Truth(lv) {
			return lv, nil
		}
		return b.r.eval(ctx)
	}
	rv, err := b.r.eval(ctx)
	if err != nil {
		return nil, err
	}
	switch b.op {
	case "==":
		return Equal(lv, rv), nil
	case "!=":
		return !Equal(lv, rv), nil
	case "<":
		return Less(lv, rv)
	case ">":
		return Less(rv, lv)
	case "<=":
		gt, err := Less(rv, lv)
		return !gt, err
	case ">=":
		lt, err := Less(lv, rv)
		return !lt, err
	case "in":
		return Contains(lv, rv)
	case "not in":
		ok, err := Contains(lv, rv)
		return !ok, err
	default:
		return nil, fmt.Errorf("template: unknown operator %q", b.op)
	}
}

type notExprNode struct{ e expr }

func (n notExprNode) eval(ctx *Context) (any, error) {
	v, err := n.e.eval(ctx)
	if err != nil {
		return nil, err
	}
	return !Truth(v), nil
}

// ---- parser ----

// parsePipelineString parses "value|filter:arg|filter2" (the {{ ... }}
// form and filter arguments in tags).
func parsePipelineString(src string, filters *FilterSet) (expr, error) {
	s, err := newExprScanner(src)
	if err != nil {
		return nil, err
	}
	e, err := parsePipeline(s, filters)
	if err != nil {
		return nil, err
	}
	if !s.atEnd() {
		return nil, fmt.Errorf("template: trailing %q in expression %q", s.cur, src)
	}
	return e, nil
}

// parseConditionString parses an {% if %} condition.
func parseConditionString(src string, filters *FilterSet) (expr, error) {
	s, err := newExprScanner(src)
	if err != nil {
		return nil, err
	}
	e, err := parseOr(s, filters)
	if err != nil {
		return nil, err
	}
	if !s.atEnd() {
		return nil, fmt.Errorf("template: trailing %q in condition %q", s.cur, src)
	}
	return e, nil
}

func parseOr(s *exprScanner, filters *FilterSet) (expr, error) {
	l, err := parseAnd(s, filters)
	if err != nil {
		return nil, err
	}
	for s.cur == "or" {
		if err := s.next(); err != nil {
			return nil, err
		}
		r, err := parseAnd(s, filters)
		if err != nil {
			return nil, err
		}
		l = binaryExpr{op: "or", l: l, r: r}
	}
	return l, nil
}

func parseAnd(s *exprScanner, filters *FilterSet) (expr, error) {
	l, err := parseNot(s, filters)
	if err != nil {
		return nil, err
	}
	for s.cur == "and" {
		if err := s.next(); err != nil {
			return nil, err
		}
		r, err := parseNot(s, filters)
		if err != nil {
			return nil, err
		}
		l = binaryExpr{op: "and", l: l, r: r}
	}
	return l, nil
}

func parseNot(s *exprScanner, filters *FilterSet) (expr, error) {
	if s.cur == "not" {
		if err := s.next(); err != nil {
			return nil, err
		}
		e, err := parseNot(s, filters)
		if err != nil {
			return nil, err
		}
		return notExprNode{e}, nil
	}
	return parseComparison(s, filters)
}

func parseComparison(s *exprScanner, filters *FilterSet) (expr, error) {
	l, err := parsePipeline(s, filters)
	if err != nil {
		return nil, err
	}
	op := ""
	switch s.cur {
	case "==", "!=", "<", "<=", ">", ">=", "in":
		op = s.cur
		if err := s.next(); err != nil {
			return nil, err
		}
	case "not":
		// "a not in b"
		if err := s.next(); err != nil {
			return nil, err
		}
		if s.cur != "in" {
			return nil, fmt.Errorf("template: expected 'in' after 'not', got %q", s.cur)
		}
		op = "not in"
		if err := s.next(); err != nil {
			return nil, err
		}
	default:
		return l, nil
	}
	r, err := parsePipeline(s, filters)
	if err != nil {
		return nil, err
	}
	return binaryExpr{op: op, l: l, r: r}, nil
}

func parsePipeline(s *exprScanner, filters *FilterSet) (expr, error) {
	base, err := parseOperand(s, filters)
	if err != nil {
		return nil, err
	}
	var calls []filterCall
	for s.cur == "|" {
		if err := s.next(); err != nil {
			return nil, err
		}
		name := s.cur
		if name == "" || !isWordStart(name[0]) {
			return nil, fmt.Errorf("template: expected filter name, got %q", name)
		}
		fn, ok := filters.Get(name)
		if !ok {
			return nil, fmt.Errorf("template: unknown filter %q", name)
		}
		if err := s.next(); err != nil {
			return nil, err
		}
		call := filterCall{name: name, fn: fn}
		if s.cur == ":" {
			if err := s.next(); err != nil {
				return nil, err
			}
			arg, err := parseOperand(s, filters)
			if err != nil {
				return nil, err
			}
			call.arg, call.hasArg = arg, true
		}
		calls = append(calls, call)
	}
	if len(calls) == 0 {
		return base, nil
	}
	return pipelineExpr{base: base, filters: calls}, nil
}

func parseOperand(s *exprScanner, _ *FilterSet) (expr, error) {
	tok := s.cur
	if tok == "" {
		return nil, fmt.Errorf("template: unexpected end of expression")
	}
	defer func() { _ = s.next() }()
	switch {
	case tok[0] == '\'' || tok[0] == '"':
		return literalExpr{tok[1 : len(tok)-1]}, nil
	case tok[0] >= '0' && tok[0] <= '9' || tok[0] == '-':
		if strings.ContainsRune(tok, '.') {
			f, err := strconv.ParseFloat(tok, 64)
			if err != nil {
				return nil, fmt.Errorf("template: bad number %q", tok)
			}
			return literalExpr{f}, nil
		}
		n, err := strconv.Atoi(tok)
		if err != nil {
			return nil, fmt.Errorf("template: bad number %q", tok)
		}
		return literalExpr{n}, nil
	case tok == "True" || tok == "true":
		return literalExpr{true}, nil
	case tok == "False" || tok == "false":
		return literalExpr{false}, nil
	case tok == "None" || tok == "none" || tok == "nil":
		return literalExpr{nil}, nil
	case isWordStart(tok[0]):
		parts := strings.Split(tok, ".")
		for _, p := range parts {
			if p == "" {
				return nil, fmt.Errorf("template: malformed variable path %q", tok)
			}
		}
		return pathExpr{parts: parts}, nil
	default:
		return nil, fmt.Errorf("template: unexpected token %q", tok)
	}
}
