package template

import (
	"fmt"
	"math"
	"reflect"
	"strconv"
	"strings"
)

// FilterFunc transforms a value in a {{ value|filter:arg }} pipeline.
// hasArg distinguishes "no argument" from "nil argument".
type FilterFunc func(v any, arg any, hasArg bool) (any, error)

// FilterSet is a named collection of filters. Filter names are resolved
// at parse time so typos fail fast rather than at render time.
type FilterSet struct {
	m map[string]FilterFunc
}

// NewFilterSet returns a set preloaded with the built-in Django-style
// filters.
func NewFilterSet() *FilterSet {
	fs := &FilterSet{m: make(map[string]FilterFunc, len(builtinFilters))}
	for name, fn := range builtinFilters {
		fs.m[name] = fn
	}
	return fs
}

// Register adds or replaces a filter.
func (fs *FilterSet) Register(name string, fn FilterFunc) {
	if name == "" || fn == nil {
		panic("template: invalid filter registration")
	}
	fs.m[name] = fn
}

// Get looks up a filter by name.
func (fs *FilterSet) Get(name string) (FilterFunc, bool) {
	fn, ok := fs.m[name]
	return fn, ok
}

// Names returns the registered filter names (unsorted).
func (fs *FilterSet) Names() []string {
	names := make([]string, 0, len(fs.m))
	for n := range fs.m {
		names = append(names, n)
	}
	return names
}

func noArg(name string, fn func(v any) (any, error)) FilterFunc {
	return func(v any, _ any, hasArg bool) (any, error) {
		if hasArg {
			return nil, fmt.Errorf("%s takes no argument", name)
		}
		return fn(v)
	}
}

var builtinFilters = map[string]FilterFunc{
	"upper": noArg("upper", func(v any) (any, error) {
		return strings.ToUpper(Stringify(v)), nil
	}),
	"lower": noArg("lower", func(v any) (any, error) {
		return strings.ToLower(Stringify(v)), nil
	}),
	"title": noArg("title", func(v any) (any, error) {
		words := strings.Fields(Stringify(v))
		for i, w := range words {
			words[i] = capitalizeASCII(w)
		}
		return strings.Join(words, " "), nil
	}),
	"capfirst": noArg("capfirst", func(v any) (any, error) {
		return capitalizeASCII(Stringify(v)), nil
	}),
	"length": noArg("length", func(v any) (any, error) {
		if n, ok := length(v); ok {
			return n, nil
		}
		return len(Stringify(v)), nil
	}),
	"wordcount": noArg("wordcount", func(v any) (any, error) {
		return len(strings.Fields(Stringify(v))), nil
	}),
	"default": func(v any, arg any, hasArg bool) (any, error) {
		if !hasArg {
			return nil, fmt.Errorf("default requires an argument")
		}
		if Truth(v) {
			return v, nil
		}
		return arg, nil
	},
	"default_if_none": func(v any, arg any, hasArg bool) (any, error) {
		if !hasArg {
			return nil, fmt.Errorf("default_if_none requires an argument")
		}
		if v == nil {
			return arg, nil
		}
		return v, nil
	},
	"floatformat": func(v any, arg any, hasArg bool) (any, error) {
		f, ok := asFloat(v)
		if !ok {
			return "", nil
		}
		digits := 1
		if hasArg {
			d, ok := asInt(arg)
			if !ok {
				return nil, fmt.Errorf("floatformat argument must be numeric")
			}
			digits = d
		}
		if digits < 0 {
			// Negative: only keep decimals when the value is fractional.
			if f == math.Trunc(f) {
				return strconv.FormatInt(int64(f), 10), nil
			}
			digits = -digits
		}
		return strconv.FormatFloat(f, 'f', digits, 64), nil
	},
	"escape": noArg("escape", func(v any) (any, error) {
		return Safe(HTMLEscape(Stringify(v))), nil
	}),
	"safe": noArg("safe", func(v any) (any, error) {
		return Safe(Stringify(v)), nil
	}),
	"truncatewords": func(v any, arg any, hasArg bool) (any, error) {
		if !hasArg {
			return nil, fmt.Errorf("truncatewords requires an argument")
		}
		n, ok := asInt(arg)
		if !ok || n < 0 {
			return nil, fmt.Errorf("truncatewords argument must be a non-negative integer")
		}
		words := strings.Fields(Stringify(v))
		if len(words) <= n {
			return strings.Join(words, " "), nil
		}
		return strings.Join(words[:n], " ") + " ...", nil
	},
	"truncatechars": func(v any, arg any, hasArg bool) (any, error) {
		if !hasArg {
			return nil, fmt.Errorf("truncatechars requires an argument")
		}
		n, ok := asInt(arg)
		if !ok || n < 0 {
			return nil, fmt.Errorf("truncatechars argument must be a non-negative integer")
		}
		s := Stringify(v)
		if len(s) <= n {
			return s, nil
		}
		if n <= 1 {
			return "…", nil
		}
		return s[:n-1] + "…", nil
	},
	"add": func(v any, arg any, hasArg bool) (any, error) {
		if !hasArg {
			return nil, fmt.Errorf("add requires an argument")
		}
		if vi, ok := asFloat(v); ok {
			if ai, ok := asFloat(arg); ok {
				sum := vi + ai
				if sum == math.Trunc(sum) {
					return int(sum), nil
				}
				return sum, nil
			}
		}
		return Stringify(v) + Stringify(arg), nil
	},
	"first": noArg("first", func(v any) (any, error) {
		return elemAt(v, 0), nil
	}),
	"last": noArg("last", func(v any) (any, error) {
		if n, ok := length(v); ok && n > 0 {
			return elemAt(v, n-1), nil
		}
		return nil, nil
	}),
	"join": func(v any, arg any, hasArg bool) (any, error) {
		sep := ", "
		if hasArg {
			sep = Stringify(arg)
		}
		var parts []string
		err := iterate(v, func(_ int, e any) error {
			parts = append(parts, Stringify(e))
			return nil
		})
		if err != nil {
			return nil, err
		}
		return strings.Join(parts, sep), nil
	},
	"yesno": func(v any, arg any, hasArg bool) (any, error) {
		choices := []string{"yes", "no"}
		if hasArg {
			choices = strings.Split(Stringify(arg), ",")
		}
		if len(choices) < 2 {
			return nil, fmt.Errorf("yesno needs at least two comma-separated choices")
		}
		if Truth(v) {
			return choices[0], nil
		}
		if v == nil && len(choices) > 2 {
			return choices[2], nil
		}
		return choices[1], nil
	},
	"pluralize": func(v any, arg any, hasArg bool) (any, error) {
		suffixes := []string{"", "s"}
		if hasArg {
			parts := strings.Split(Stringify(arg), ",")
			if len(parts) == 1 {
				suffixes = []string{"", parts[0]}
			} else {
				suffixes = parts[:2]
			}
		}
		n, ok := asInt(v)
		if !ok {
			if l, lok := length(v); lok {
				n = l
			}
		}
		if n == 1 {
			return suffixes[0], nil
		}
		return suffixes[1], nil
	},
	"urlencode": noArg("urlencode", func(v any) (any, error) {
		return urlEscape(Stringify(v)), nil
	}),
	"cut": func(v any, arg any, hasArg bool) (any, error) {
		if !hasArg {
			return nil, fmt.Errorf("cut requires an argument")
		}
		return strings.ReplaceAll(Stringify(v), Stringify(arg), ""), nil
	},
	"divisibleby": func(v any, arg any, hasArg bool) (any, error) {
		if !hasArg {
			return nil, fmt.Errorf("divisibleby requires an argument")
		}
		n, ok1 := asInt(v)
		d, ok2 := asInt(arg)
		if !ok1 || !ok2 || d == 0 {
			return nil, fmt.Errorf("divisibleby needs integers and a non-zero divisor")
		}
		return n%d == 0, nil
	},
	"linebreaksbr": noArg("linebreaksbr", func(v any) (any, error) {
		escaped := HTMLEscape(Stringify(v))
		return Safe(strings.ReplaceAll(escaped, "\n", "<br>")), nil
	}),
	"stringformat": func(v any, arg any, hasArg bool) (any, error) {
		if !hasArg {
			return nil, fmt.Errorf("stringformat requires an argument")
		}
		return fmt.Sprintf("%"+Stringify(arg), v), nil
	},
	"ljust": padFilter("ljust", false),
	"rjust": padFilter("rjust", true),
}

func padFilter(name string, right bool) FilterFunc {
	return func(v any, arg any, hasArg bool) (any, error) {
		if !hasArg {
			return nil, fmt.Errorf("%s requires an argument", name)
		}
		width, ok := asInt(arg)
		if !ok || width < 0 {
			return nil, fmt.Errorf("%s argument must be a non-negative integer", name)
		}
		s := Stringify(v)
		if len(s) >= width {
			return s, nil
		}
		pad := strings.Repeat(" ", width-len(s))
		if right {
			return pad + s, nil
		}
		return s + pad, nil
	}
}

func capitalizeASCII(s string) string {
	if s == "" {
		return s
	}
	if c := s[0]; 'a' <= c && c <= 'z' {
		return string(c-('a'-'A')) + s[1:]
	}
	return s
}

func elemAt(v any, i int) any {
	switch t := v.(type) {
	case nil:
		return nil
	case string:
		if i < len(t) {
			return string(t[i])
		}
		return nil
	}
	rv := reflect.ValueOf(v)
	switch rv.Kind() {
	case reflect.Slice, reflect.Array:
		if i < rv.Len() {
			return rv.Index(i).Interface()
		}
	}
	return nil
}

func urlEscape(s string) string {
	const hexDigits = "0123456789ABCDEF"
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		if 'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' || '0' <= c && c <= '9' ||
			c == '-' || c == '_' || c == '.' || c == '~' || c == '/' {
			sb.WriteByte(c)
		} else {
			sb.WriteByte('%')
			sb.WriteByte(hexDigits[c>>4])
			sb.WriteByte(hexDigits[c&0xf])
		}
	}
	return sb.String()
}
