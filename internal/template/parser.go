package template

import (
	"fmt"
	"strings"
)

// Template is a parsed, immutable template ready for concurrent renders.
type Template struct {
	name    string
	set     *Set
	nodes   nodeList
	extends string              // parent template name, "" if none
	blocks  map[string]nodeList // blocks defined at any depth
}

// Name reports the template's registered name.
func (t *Template) Name() string { return t.name }

// parser consumes the token stream.
type parser struct {
	name    string
	tokens  []token
	pos     int
	filters *FilterSet
	blocks  map[string]nodeList
	extends string
}

func parse(name, src string, filters *FilterSet) (*Template, error) {
	tokens, err := lex(name, src)
	if err != nil {
		return nil, err
	}
	p := &parser{name: name, tokens: tokens, filters: filters, blocks: map[string]nodeList{}}
	nodes, stop, err := p.parseNodes(nil)
	if err != nil {
		return nil, err
	}
	if stop != "" {
		return nil, p.errf("unexpected {%% %s %%}", stop)
	}
	return &Template{name: name, nodes: nodes, extends: p.extends, blocks: p.blocks}, nil
}

func (p *parser) errf(format string, args ...any) error {
	line := 0
	if p.pos > 0 && p.pos-1 < len(p.tokens) {
		line = p.tokens[p.pos-1].line
	}
	return fmt.Errorf("template %s:%d: %s", p.name, line, fmt.Sprintf(format, args...))
}

// parseNodes parses until EOF or until a tag whose first word is in
// stopTags; the stopping tag's full content is returned.
func (p *parser) parseNodes(stopTags []string) (nodeList, string, error) {
	var nodes nodeList
	for {
		tok := p.tokens[p.pos]
		p.pos++
		switch tok.kind {
		case tokenEOF:
			return nodes, "", nil
		case tokenText:
			nodes = append(nodes, textNode(tok.val))
		case tokenComment:
			// Dropped.
		case tokenVar:
			e, err := parsePipelineString(tok.val, p.filters)
			if err != nil {
				return nil, "", p.errf("%v", err)
			}
			nodes = append(nodes, varNode{e: e, line: tok.line})
		case tokenTag:
			word := tok.val
			if i := strings.IndexByte(word, ' '); i >= 0 {
				word = word[:i]
			}
			for _, stop := range stopTags {
				if word == stop {
					return nodes, tok.val, nil
				}
			}
			n, err := p.parseTag(word, tok)
			if err != nil {
				return nil, "", err
			}
			if n != nil {
				nodes = append(nodes, n)
			}
		}
	}
}

// parseTag dispatches on the tag keyword.
func (p *parser) parseTag(word string, tok token) (node, error) {
	rest := strings.TrimSpace(strings.TrimPrefix(tok.val, word))
	switch word {
	case "if":
		return p.parseIf(rest)
	case "for":
		return p.parseFor(rest)
	case "with":
		return p.parseWith(rest)
	case "include":
		if rest == "" {
			return nil, p.errf("include needs a template name")
		}
		e, err := parsePipelineString(rest, p.filters)
		if err != nil {
			return nil, p.errf("%v", err)
		}
		return includeNode{name: e}, nil
	case "extends":
		if p.extends != "" {
			return nil, p.errf("multiple {%% extends %%} tags")
		}
		name := strings.Trim(rest, "\"'")
		if name == "" {
			return nil, p.errf("extends needs a template name")
		}
		p.extends = name
		return nil, nil
	case "block":
		return p.parseBlock(rest)
	case "comment":
		if _, _, err := p.skipUntil("endcomment"); err != nil {
			return nil, err
		}
		return nil, nil
	default:
		return nil, p.errf("unknown tag %q", word)
	}
}

func (p *parser) parseIf(cond string) (node, error) {
	n := ifNode{}
	for {
		e, err := parseConditionString(cond, p.filters)
		if err != nil {
			return nil, p.errf("%v", err)
		}
		body, stop, err := p.parseNodes([]string{"elif", "else", "endif"})
		if err != nil {
			return nil, err
		}
		n.branches = append(n.branches, ifBranch{cond: e, body: body})
		switch {
		case stop == "endif":
			return n, nil
		case stop == "else":
			elseBody, stop2, err := p.parseNodes([]string{"endif"})
			if err != nil {
				return nil, err
			}
			if stop2 != "endif" {
				return nil, p.errf("unterminated {%% if %%}")
			}
			n.elseBody = elseBody
			return n, nil
		case strings.HasPrefix(stop, "elif"):
			cond = strings.TrimSpace(strings.TrimPrefix(stop, "elif"))
		case stop == "":
			return nil, p.errf("unterminated {%% if %%}")
		}
	}
}

func (p *parser) parseFor(spec string) (node, error) {
	// "x in xs", "k, v in m", optional trailing "reversed".
	n := forNode{}
	if strings.HasSuffix(spec, " reversed") {
		n.reversed = true
		spec = strings.TrimSuffix(spec, " reversed")
	}
	inIdx := strings.Index(spec, " in ")
	if inIdx < 0 {
		return nil, p.errf("malformed for tag %q: missing 'in'", spec)
	}
	varsPart := spec[:inIdx]
	for _, v := range strings.Split(varsPart, ",") {
		v = strings.TrimSpace(v)
		if v == "" || !isWordStart(v[0]) || strings.Contains(v, ".") {
			return nil, p.errf("bad loop variable %q", v)
		}
		n.vars = append(n.vars, v)
	}
	if len(n.vars) == 0 || len(n.vars) > 2 {
		return nil, p.errf("for tag needs one or two loop variables")
	}
	e, err := parsePipelineString(strings.TrimSpace(spec[inIdx+4:]), p.filters)
	if err != nil {
		return nil, p.errf("%v", err)
	}
	n.iterable = e
	body, stop, err := p.parseNodes([]string{"empty", "endfor"})
	if err != nil {
		return nil, err
	}
	n.body = body
	if stop == "empty" {
		emptyBody, stop2, err := p.parseNodes([]string{"endfor"})
		if err != nil {
			return nil, err
		}
		if stop2 != "endfor" {
			return nil, p.errf("unterminated {%% for %%}")
		}
		n.empty = emptyBody
	} else if stop != "endfor" {
		return nil, p.errf("unterminated {%% for %%}")
	}
	return n, nil
}

func (p *parser) parseWith(spec string) (node, error) {
	// "name=expr" or "expr as name".
	n := withNode{}
	if asIdx := strings.Index(spec, " as "); asIdx >= 0 {
		e, err := parsePipelineString(strings.TrimSpace(spec[:asIdx]), p.filters)
		if err != nil {
			return nil, p.errf("%v", err)
		}
		n.val = e
		n.name = strings.TrimSpace(spec[asIdx+4:])
	} else if eqIdx := strings.IndexByte(spec, '='); eqIdx > 0 {
		n.name = strings.TrimSpace(spec[:eqIdx])
		e, err := parsePipelineString(strings.TrimSpace(spec[eqIdx+1:]), p.filters)
		if err != nil {
			return nil, p.errf("%v", err)
		}
		n.val = e
	} else {
		return nil, p.errf("malformed with tag %q", spec)
	}
	if n.name == "" || !isWordStart(n.name[0]) {
		return nil, p.errf("bad with variable %q", n.name)
	}
	body, stop, err := p.parseNodes([]string{"endwith"})
	if err != nil {
		return nil, err
	}
	if stop != "endwith" {
		return nil, p.errf("unterminated {%% with %%}")
	}
	n.body = body
	return n, nil
}

func (p *parser) parseBlock(name string) (node, error) {
	name = strings.TrimSpace(name)
	if name == "" {
		return nil, p.errf("block needs a name")
	}
	if _, dup := p.blocks[name]; dup {
		return nil, p.errf("duplicate block %q", name)
	}
	body, stop, err := p.parseNodes([]string{"endblock"})
	if err != nil {
		return nil, err
	}
	if !strings.HasPrefix(stop, "endblock") {
		return nil, p.errf("unterminated {%% block %s %%}", name)
	}
	p.blocks[name] = body
	return blockNode{name: name, body: body}, nil
}

// skipUntil discards tokens until a tag with the given keyword.
func (p *parser) skipUntil(end string) (nodeList, string, error) {
	for {
		tok := p.tokens[p.pos]
		p.pos++
		switch tok.kind {
		case tokenEOF:
			return nil, "", p.errf("missing {%% %s %%}", end)
		case tokenTag:
			if tok.val == end {
				return nil, tok.val, nil
			}
		}
	}
}
