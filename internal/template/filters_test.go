package template

import (
	"strings"
	"testing"
	"testing/quick"
)

// applyFilter renders {{ v|<filter> }} with the given data.
func applyFilter(t *testing.T, pipeline string, data map[string]any) string {
	t.Helper()
	return render(t, "{{ "+pipeline+" }}", data)
}

func TestFilterUpperLower(t *testing.T) {
	if got := applyFilter(t, "v|upper", map[string]any{"v": "go"}); got != "GO" {
		t.Fatalf("upper = %q", got)
	}
	if got := applyFilter(t, "v|lower", map[string]any{"v": "GO"}); got != "go" {
		t.Fatalf("lower = %q", got)
	}
}

func TestFilterTitleCapfirst(t *testing.T) {
	if got := applyFilter(t, "v|title", map[string]any{"v": "the go book"}); got != "The Go Book" {
		t.Fatalf("title = %q", got)
	}
	if got := applyFilter(t, "v|capfirst", map[string]any{"v": "hello"}); got != "Hello" {
		t.Fatalf("capfirst = %q", got)
	}
}

func TestFilterLength(t *testing.T) {
	if got := applyFilter(t, "v|length", map[string]any{"v": []int{1, 2, 3}}); got != "3" {
		t.Fatalf("length slice = %q", got)
	}
	if got := applyFilter(t, "v|length", map[string]any{"v": "four"}); got != "4" {
		t.Fatalf("length string = %q", got)
	}
	if got := applyFilter(t, "v|length", map[string]any{"v": map[string]int{"a": 1}}); got != "1" {
		t.Fatalf("length map = %q", got)
	}
}

func TestFilterDefault(t *testing.T) {
	if got := applyFilter(t, "v|default:'fallback'", nil); got != "fallback" {
		t.Fatalf("default = %q", got)
	}
	if got := applyFilter(t, "v|default:'fallback'", map[string]any{"v": "set"}); got != "set" {
		t.Fatalf("default set = %q", got)
	}
	// Falsy-but-present values still get the default (Django semantics).
	if got := applyFilter(t, "v|default:'dash'", map[string]any{"v": 0}); got != "dash" {
		t.Fatalf("default zero = %q", got)
	}
	if got := applyFilter(t, "v|default_if_none:'x'", map[string]any{"v": 0}); got != "0" {
		t.Fatalf("default_if_none zero = %q", got)
	}
}

func TestFilterFloatformat(t *testing.T) {
	tests := []struct {
		pipeline string
		v        any
		want     string
	}{
		{"v|floatformat", 34.23234, "34.2"},
		{"v|floatformat:3", 34.23234, "34.232"},
		{"v|floatformat:0", 34.6, "35"},
		{"v|floatformat:-2", 34.0, "34"},
		{"v|floatformat:-2", 34.26, "34.26"},
		{"v|floatformat:2", 100, "100.00"}, // TPC-W prices
	}
	for _, tt := range tests {
		if got := applyFilter(t, tt.pipeline, map[string]any{"v": tt.v}); got != tt.want {
			t.Errorf("%s with %v = %q, want %q", tt.pipeline, tt.v, got, tt.want)
		}
	}
}

func TestFilterTruncate(t *testing.T) {
	data := map[string]any{"v": "one two three four five"}
	if got := applyFilter(t, "v|truncatewords:3", data); got != "one two three ..." {
		t.Fatalf("truncatewords = %q", got)
	}
	if got := applyFilter(t, "v|truncatewords:9", data); got != "one two three four five" {
		t.Fatalf("truncatewords long = %q", got)
	}
	got := applyFilter(t, "v|truncatechars:7", data)
	if got != "one tw…" {
		t.Fatalf("truncatechars = %q", got)
	}
}

func TestFilterAdd(t *testing.T) {
	if got := applyFilter(t, "v|add:3", map[string]any{"v": 4}); got != "7" {
		t.Fatalf("add int = %q", got)
	}
	if got := applyFilter(t, "v|add:'-ish'", map[string]any{"v": "warm"}); got != "warm-ish" {
		t.Fatalf("add string = %q", got)
	}
}

func TestFilterFirstLastJoin(t *testing.T) {
	data := map[string]any{"v": []string{"a", "b", "c"}}
	if got := applyFilter(t, "v|first", data); got != "a" {
		t.Fatalf("first = %q", got)
	}
	if got := applyFilter(t, "v|last", data); got != "c" {
		t.Fatalf("last = %q", got)
	}
	if got := applyFilter(t, "v|join:'-'", data); got != "a-b-c" {
		t.Fatalf("join = %q", got)
	}
	if got := applyFilter(t, "v|first", map[string]any{"v": []string{}}); got != "" {
		t.Fatalf("first empty = %q", got)
	}
}

func TestFilterYesnoPluralize(t *testing.T) {
	if got := applyFilter(t, "v|yesno", map[string]any{"v": true}); got != "yes" {
		t.Fatalf("yesno = %q", got)
	}
	if got := applyFilter(t, "v|yesno:'on,off'", map[string]any{"v": false}); got != "off" {
		t.Fatalf("yesno arg = %q", got)
	}
	if got := applyFilter(t, "n|pluralize", map[string]any{"n": 1}); got != "" {
		t.Fatalf("pluralize 1 = %q", got)
	}
	if got := applyFilter(t, "n|pluralize", map[string]any{"n": 3}); got != "s" {
		t.Fatalf("pluralize 3 = %q", got)
	}
	if got := applyFilter(t, "n|pluralize:'y,ies'", map[string]any{"n": 2}); got != "ies" {
		t.Fatalf("pluralize arg = %q", got)
	}
}

func TestFilterCutUrlencode(t *testing.T) {
	if got := applyFilter(t, "v|cut:' '", map[string]any{"v": "a b c"}); got != "abc" {
		t.Fatalf("cut = %q", got)
	}
	if got := applyFilter(t, "v|urlencode", map[string]any{"v": "a b&c"}); got != "a%20b%26c" {
		t.Fatalf("urlencode = %q", got)
	}
}

func TestFilterDivisiblebyStringformat(t *testing.T) {
	if got := applyFilter(t, "n|divisibleby:3|yesno", map[string]any{"n": 9}); got != "yes" {
		t.Fatalf("divisibleby = %q", got)
	}
	if got := applyFilter(t, "n|stringformat:'04d'", map[string]any{"n": 7}); got != "0007" {
		t.Fatalf("stringformat = %q", got)
	}
}

func TestFilterJust(t *testing.T) {
	if got := applyFilter(t, "v|ljust:5|cut:' '", map[string]any{"v": "ab"}); got != "ab" {
		t.Fatalf("ljust = %q", got)
	}
	got := render(t, "[{{ v|rjust:4 }}]", map[string]any{"v": "ab"})
	if got != "[  ab]" {
		t.Fatalf("rjust = %q", got)
	}
}

func TestFilterLinebreaksbr(t *testing.T) {
	got := applyFilter(t, "v|linebreaksbr", map[string]any{"v": "a\nb<c"})
	if got != "a<br>b&lt;c" {
		t.Fatalf("linebreaksbr = %q", got)
	}
}

func TestFilterWordcount(t *testing.T) {
	if got := applyFilter(t, "v|wordcount", map[string]any{"v": "a b  c"}); got != "3" {
		t.Fatalf("wordcount = %q", got)
	}
}

func TestFilterChaining(t *testing.T) {
	got := applyFilter(t, "v|lower|capfirst|add:'!'", map[string]any{"v": "HELLO"})
	if got != "Hello!" {
		t.Fatalf("chain = %q", got)
	}
}

func TestFilterArgFromVariable(t *testing.T) {
	got := applyFilter(t, "v|add:delta", map[string]any{"v": 10, "delta": 5})
	if got != "15" {
		t.Fatalf("variable arg = %q", got)
	}
}

func TestFilterErrors(t *testing.T) {
	for _, src := range []string{
		"{{ v|default }}",           // missing required arg
		"{{ v|upper:'x' }}",         // unexpected arg
		"{{ v|truncatewords:'x' }}", // non-numeric arg
		"{{ n|divisibleby:0 }}",     // zero divisor
	} {
		s := NewSet()
		s.Add("t", src)
		if _, err := s.Render("t", map[string]any{"v": "a", "n": 3}); err == nil {
			t.Errorf("%q rendered without error", src)
		}
	}
}

// Property: escaping is idempotent through the escape filter (safe output
// escaped once) and never produces raw specials.
func TestEscapePropertyNoRawSpecials(t *testing.T) {
	f := func(s string) bool {
		out := HTMLEscape(s)
		return !strings.ContainsAny(out, "<>\"'") &&
			!strings.Contains(strings.ReplaceAll(out, "&amp;", ""), "&&")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHTMLEscapeFastPath(t *testing.T) {
	s := "no specials at all"
	if got := HTMLEscape(s); got != s {
		t.Fatalf("fast path mangled %q -> %q", s, got)
	}
}

func TestFilterSetNames(t *testing.T) {
	fs := NewFilterSet()
	if len(fs.Names()) < 20 {
		t.Fatalf("expected at least 20 builtin filters, got %d", len(fs.Names()))
	}
	if _, ok := fs.Get("upper"); !ok {
		t.Fatal("upper filter missing")
	}
	if _, ok := fs.Get("nope"); ok {
		t.Fatal("unknown filter found")
	}
}

func TestFilterRegisterInvalid(t *testing.T) {
	fs := NewFilterSet()
	for name, fn := range map[string]func(){
		"empty name": func() { fs.Register("", func(v any, _ any, _ bool) (any, error) { return v, nil }) },
		"nil fn":     func() { fs.Register("x", nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
