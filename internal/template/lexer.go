// Package template implements a Django-style template language: plain
// HTML with {{ variable }} substitutions, {% tag %} control structures
// ({% if %}, {% for %}, {% include %}, {% extends %}/{% block %},
// {% with %}), {# comments #}, and a pipeline of value filters.
//
// It exists so the reproduction can run the paper's TPC-W pages in the
// same shape the authors wrote them (Figures 2 and 3 of the paper), and
// so both rendering styles are supported:
//
//   - the conventional style, where a handler returns an already-rendered
//     string (baseline server), and
//   - the paper's deferred style, where a handler returns the template
//     name plus the data context and a separate rendering pool performs
//     the render (modified server).
//
// Variable output is HTML-escaped unless passed through the "safe" filter,
// matching Django's autoescape default.
package template

import (
	"fmt"
	"strings"
)

// tokenKind discriminates lexer output.
type tokenKind int

const (
	tokenText    tokenKind = iota + 1 // raw template text
	tokenVar                          // {{ expression }}
	tokenTag                          // {% tag ... %}
	tokenComment                      // {# ... #}
	tokenEOF
)

func (k tokenKind) String() string {
	switch k {
	case tokenText:
		return "text"
	case tokenVar:
		return "variable"
	case tokenTag:
		return "tag"
	case tokenComment:
		return "comment"
	case tokenEOF:
		return "eof"
	}
	return "unknown"
}

// token is one lexical element with its 1-based source line.
type token struct {
	kind tokenKind
	val  string // inner content for var/tag/comment, raw text for text
	line int
}

// nextDelim finds the earliest template delimiter ({{, {%, or {#) at or
// after offset i, returning its position and kind, or -1 if none remains.
func nextDelim(src string, i int) (pos int, kind tokenKind) {
	pos = -1
	for {
		j := strings.IndexByte(src[i:], '{')
		if j < 0 || i+j+1 >= len(src) {
			return -1, 0
		}
		at := i + j
		switch src[at+1] {
		case '{':
			return at, tokenVar
		case '%':
			return at, tokenTag
		case '#':
			return at, tokenComment
		}
		i = at + 1
	}
}

// lex splits template source into tokens. Delimiters inside string
// literals are not special-cased (as in Django, '}}' may not appear in a
// variable tag's string argument).
func lex(name, src string) ([]token, error) {
	var (
		tokens []token
		line   = 1
		i      = 0
	)
	for i < len(src) {
		open, kind := nextDelim(src, i)
		if open < 0 {
			break
		}
		if open > i {
			text := src[i:open]
			tokens = append(tokens, token{kind: tokenText, val: text, line: line})
			line += strings.Count(text, "\n")
		}
		var closer string
		switch kind {
		case tokenVar:
			closer = "}}"
		case tokenTag:
			closer = "%}"
		case tokenComment:
			closer = "#}"
		}
		end := strings.Index(src[open+2:], closer)
		if end < 0 {
			return nil, fmt.Errorf("template %s:%d: unclosed %s", name, line, kind)
		}
		inner := src[open+2 : open+2+end]
		tokens = append(tokens, token{kind: kind, val: strings.TrimSpace(inner), line: line})
		line += strings.Count(inner, "\n")
		i = open + 2 + end + len(closer)
	}
	if i < len(src) {
		tokens = append(tokens, token{kind: tokenText, val: src[i:], line: line})
	}
	tokens = append(tokens, token{kind: tokenEOF, line: line})
	return tokens, nil
}
