package template

import (
	"fmt"
	"strings"
)

// node is one parsed template element.
type node interface {
	render(st *renderState, ctx *Context, sb *strings.Builder) error
}

// renderState carries per-render machinery: the owning set (for includes)
// and the block-override chain built by {% extends %}.
type renderState struct {
	set *Set
	// overrides[i] holds the blocks of the i-th template in the
	// inheritance chain, most-derived first. A {% block %} renders the
	// first override found, falling back to its own body.
	overrides []map[string]nodeList
	depth     int // include/extends nesting guard
}

const maxRenderDepth = 16

type nodeList []node

func (l nodeList) render(st *renderState, ctx *Context, sb *strings.Builder) error {
	for _, n := range l {
		if err := n.render(st, ctx, sb); err != nil {
			return err
		}
	}
	return nil
}

// textNode is literal template text.
type textNode string

func (t textNode) render(_ *renderState, _ *Context, sb *strings.Builder) error {
	sb.WriteString(string(t))
	return nil
}

// varNode is {{ expression }}. Output is HTML-escaped unless the value is
// Safe (e.g. passed through the safe filter).
type varNode struct {
	e    expr
	line int
}

func (v varNode) render(_ *renderState, ctx *Context, sb *strings.Builder) error {
	val, err := v.e.eval(ctx)
	if err != nil {
		return fmt.Errorf("line %d: %w", v.line, err)
	}
	if s, ok := val.(Safe); ok {
		sb.WriteString(string(s))
		return nil
	}
	sb.WriteString(HTMLEscape(Stringify(val)))
	return nil
}

// ifBranch is one arm of {% if %} / {% elif %}.
type ifBranch struct {
	cond expr
	body nodeList
}

type ifNode struct {
	branches []ifBranch
	elseBody nodeList
}

func (n ifNode) render(st *renderState, ctx *Context, sb *strings.Builder) error {
	for _, br := range n.branches {
		v, err := br.cond.eval(ctx)
		if err != nil {
			return err
		}
		if Truth(v) {
			return br.body.render(st, ctx, sb)
		}
	}
	return n.elseBody.render(st, ctx, sb)
}

// forNode is {% for x in xs %} ... {% empty %} ... {% endfor %}, with the
// standard forloop context variables.
type forNode struct {
	vars     []string // one var, or two for key,value unpacking
	iterable expr
	reversed bool
	body     nodeList
	empty    nodeList
}

func (n forNode) render(st *renderState, ctx *Context, sb *strings.Builder) error {
	src, err := n.iterable.eval(ctx)
	if err != nil {
		return err
	}
	var items []any
	if err := iterate(src, func(_ int, e any) error {
		items = append(items, e)
		return nil
	}); err != nil {
		return err
	}
	if len(items) == 0 {
		return n.empty.render(st, ctx, sb)
	}
	if n.reversed {
		for i, j := 0, len(items)-1; i < j; i, j = i+1, j-1 {
			items[i], items[j] = items[j], items[i]
		}
	}
	parentLoop, _ := ctx.Lookup("forloop")
	ctx.Push()
	defer ctx.Pop()
	total := len(items)
	for i, item := range items {
		if len(n.vars) == 2 {
			// Unpack {key,value} pairs (map iteration) or 2-element slices.
			ctx.Set(n.vars[0], resolveAttr(item, "key"))
			ctx.Set(n.vars[1], resolveAttr(item, "value"))
		} else {
			ctx.Set(n.vars[0], item)
		}
		ctx.Set("forloop", map[string]any{
			"counter":    i + 1,
			"counter0":   i,
			"revcounter": total - i,
			"first":      i == 0,
			"last":       i == total-1,
			"parentloop": parentLoop,
		})
		if err := n.body.render(st, ctx, sb); err != nil {
			return err
		}
	}
	return nil
}

// withNode is {% with name=expr %} or {% with expr as name %}.
type withNode struct {
	name string
	val  expr
	body nodeList
}

func (n withNode) render(st *renderState, ctx *Context, sb *strings.Builder) error {
	v, err := n.val.eval(ctx)
	if err != nil {
		return err
	}
	ctx.Push()
	defer ctx.Pop()
	ctx.Set(n.name, v)
	return n.body.render(st, ctx, sb)
}

// includeNode is {% include "name" %}; the name may be an expression.
type includeNode struct {
	name expr
}

func (n includeNode) render(st *renderState, ctx *Context, sb *strings.Builder) error {
	v, err := n.name.eval(ctx)
	if err != nil {
		return err
	}
	name := Stringify(v)
	tmpl, err := st.set.Get(name)
	if err != nil {
		return fmt.Errorf("include: %w", err)
	}
	if st.depth >= maxRenderDepth {
		return fmt.Errorf("template: include depth exceeds %d (cycle?)", maxRenderDepth)
	}
	sub := &renderState{set: st.set, depth: st.depth + 1}
	return tmpl.renderInto(sub, ctx, sb)
}

// blockNode is {% block name %}...{% endblock %}. With inheritance the
// most-derived template's override wins.
type blockNode struct {
	name string
	body nodeList
}

func (n blockNode) render(st *renderState, ctx *Context, sb *strings.Builder) error {
	for _, ov := range st.overrides {
		if body, ok := ov[n.name]; ok {
			return body.render(st, ctx, sb)
		}
	}
	return n.body.render(st, ctx, sb)
}
