package template

import (
	"testing"
	"testing/quick"
)

func TestTruth(t *testing.T) {
	truthy := []any{true, 1, int64(2), 0.5, "x", Safe("x"), []int{1}, map[string]int{"a": 1}}
	falsy := []any{nil, false, 0, int64(0), 0.0, "", Safe(""), []int{}, map[string]int{}}
	for _, v := range truthy {
		if !Truth(v) {
			t.Errorf("Truth(%#v) = false, want true", v)
		}
	}
	for _, v := range falsy {
		if Truth(v) {
			t.Errorf("Truth(%#v) = true, want false", v)
		}
	}
}

func TestEqualCoercion(t *testing.T) {
	tests := []struct {
		a, b any
		want bool
	}{
		{1, 1.0, true},
		{1, "1", true}, // numeric string coercion
		{int64(5), 5, true},
		{"a", "a", true},
		{Safe("a"), "a", true},
		{"a", "b", false},
		{[]int{1}, []int{1}, true}, // deep equality fallback
		{nil, nil, true},
		{true, 1, true}, // bool-as-number
	}
	for _, tt := range tests {
		if got := Equal(tt.a, tt.b); got != tt.want {
			t.Errorf("Equal(%#v, %#v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestLess(t *testing.T) {
	if ok, err := Less(1, 2); err != nil || !ok {
		t.Fatalf("Less(1,2) = %v, %v", ok, err)
	}
	if ok, err := Less("a", "b"); err != nil || !ok {
		t.Fatalf("Less(a,b) = %v, %v", ok, err)
	}
	if _, err := Less([]int{}, 1); err == nil {
		t.Fatal("Less on unordered types succeeded")
	}
}

func TestContains(t *testing.T) {
	if ok, _ := Contains("ell", "hello"); !ok {
		t.Fatal("substring not found")
	}
	if ok, _ := Contains(2, []int{1, 2, 3}); !ok {
		t.Fatal("slice element not found")
	}
	if ok, _ := Contains("k", map[string]int{"k": 1}); !ok {
		t.Fatal("map key not found")
	}
	if ok, _ := Contains("x", nil); ok {
		t.Fatal("nil container contained something")
	}
	if _, err := Contains(1, 42); err == nil {
		t.Fatal("non-container accepted")
	}
}

func TestStringify(t *testing.T) {
	tests := []struct {
		in   any
		want string
	}{
		{nil, ""},
		{"s", "s"},
		{Safe("<b>"), "<b>"},
		{true, "True"},
		{false, "False"},
		{42, "42"},
		{int64(-7), "-7"},
		{3.5, "3.5"},
		{2.0, "2.0"}, // Django float display
		{float32(1.5), "1.5"},
	}
	for _, tt := range tests {
		if got := Stringify(tt.in); got != tt.want {
			t.Errorf("Stringify(%#v) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestResolveAttr(t *testing.T) {
	type inner struct{ Name string }
	type outer struct {
		In  inner
		Ptr *inner
	}
	v := outer{In: inner{Name: "x"}, Ptr: &inner{Name: "y"}}
	if got := resolveAttr(v, "In"); got.(inner).Name != "x" {
		t.Fatalf("struct field: %v", got)
	}
	if got := resolveAttr(resolveAttr(v, "Ptr"), "Name"); got != "y" {
		t.Fatalf("pointer deref: %v", got)
	}
	if got := resolveAttr(map[string]int{"k": 3}, "k"); got != 3 {
		t.Fatalf("map key: %v", got)
	}
	if got := resolveAttr([]string{"a", "b"}, "1"); got != "b" {
		t.Fatalf("slice index: %v", got)
	}
	if got := resolveAttr([]string{"a"}, "9"); got != nil {
		t.Fatalf("out of range: %v", got)
	}
	if got := resolveAttr(nil, "x"); got != nil {
		t.Fatalf("nil base: %v", got)
	}
	if got := resolveAttr(42, "x"); got != nil {
		t.Fatalf("scalar attr: %v", got)
	}
	var nilPtr *inner
	if got := resolveAttr(nilPtr, "Name"); got != nil {
		t.Fatalf("nil pointer: %v", got)
	}
}

func TestContextScopes(t *testing.T) {
	c := NewContext(map[string]any{"a": 1})
	c.Push()
	c.Set("a", 2)
	if v, _ := c.Lookup("a"); v != 2 {
		t.Fatalf("inner shadow = %v", v)
	}
	c.Pop()
	if v, _ := c.Lookup("a"); v != 1 {
		t.Fatalf("after pop = %v", v)
	}
	if _, ok := c.Lookup("zz"); ok {
		t.Fatal("phantom lookup")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("popping outermost scope did not panic")
		}
	}()
	c.Pop()
}

// Property: Truth(Stringify(x)) is true whenever Stringify(x) != "".
func TestStringifyTruthProperty(t *testing.T) {
	f := func(n int64, s string) bool {
		out := Stringify(n)
		if out == "" {
			return false // integers always print something
		}
		str := Stringify(s)
		return Truth(str) == (str != "")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
