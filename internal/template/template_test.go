package template

import (
	"strings"
	"testing"
)

// render is a helper that registers one template and renders it.
func render(t *testing.T, src string, data map[string]any) string {
	t.Helper()
	s := NewSet()
	s.Add("t", src)
	out, err := s.Render("t", data)
	if err != nil {
		t.Fatalf("render %q: %v", src, err)
	}
	return out
}

func renderErr(t *testing.T, src string, data map[string]any) error {
	t.Helper()
	s := NewSet()
	s.Add("t", src)
	_, err := s.Render("t", data)
	if err == nil {
		t.Fatalf("render %q succeeded, want error", src)
	}
	return err
}

func TestPlainText(t *testing.T) {
	if got := render(t, "<html>hello</html>", nil); got != "<html>hello</html>" {
		t.Fatalf("got %q", got)
	}
}

func TestVariableSubstitution(t *testing.T) {
	got := render(t, "<title>{{ title }}</title>", map[string]any{"title": "TPC-W"})
	if got != "<title>TPC-W</title>" {
		t.Fatalf("got %q", got)
	}
}

func TestPaperFigure3Template(t *testing.T) {
	// The exact presentation template from Figure 3 of the paper.
	src := `<html>
<head> <title> {{ title }} </title> </head>
<body>
<h2 align="center"> {{ heading }} </h2>
<ul>
{% for item in listitems %}
<li> {{ item }} </li>
{% endfor %}
</ul>
</body>
</html>`
	data := map[string]any{
		"title":     "Bookstore",
		"heading":   "Welcome",
		"listitems": []any{"one", "two", "three"},
	}
	got := render(t, src, data)
	for _, want := range []string{
		"<title> Bookstore </title>",
		`<h2 align="center"> Welcome </h2>`,
		"<li> one </li>", "<li> two </li>", "<li> three </li>",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

func TestAutoEscaping(t *testing.T) {
	got := render(t, "{{ v }}", map[string]any{"v": `<script>"x" & 'y'</script>`})
	want := "&lt;script&gt;&quot;x&quot; &amp; &#39;y&#39;&lt;/script&gt;"
	if got != want {
		t.Fatalf("got %q, want %q", got, want)
	}
}

func TestSafeFilterBypassesEscaping(t *testing.T) {
	got := render(t, "{{ v|safe }}", map[string]any{"v": "<b>bold</b>"})
	if got != "<b>bold</b>" {
		t.Fatalf("got %q", got)
	}
}

func TestSafeValueBypassesEscaping(t *testing.T) {
	got := render(t, "{{ v }}", map[string]any{"v": Safe("<i>x</i>")})
	if got != "<i>x</i>" {
		t.Fatalf("got %q", got)
	}
}

func TestMissingVariableRendersEmpty(t *testing.T) {
	if got := render(t, "[{{ nothing }}]", nil); got != "[]" {
		t.Fatalf("got %q", got)
	}
}

func TestDottedPathMap(t *testing.T) {
	data := map[string]any{"book": map[string]any{"title": "Go", "author": map[string]any{"name": "Pike"}}}
	if got := render(t, "{{ book.author.name }}", data); got != "Pike" {
		t.Fatalf("got %q", got)
	}
}

func TestDottedPathStruct(t *testing.T) {
	type Author struct{ Name string }
	type Book struct {
		Title  string
		Author Author
		Price  float64
	}
	data := map[string]any{"book": Book{Title: "Go", Author: Author{Name: "Pike"}, Price: 29.99}}
	if got := render(t, "{{ book.Author.Name }}: {{ book.Price }}", data); got != "Pike: 29.99" {
		t.Fatalf("got %q", got)
	}
}

func TestDottedPathSliceIndex(t *testing.T) {
	data := map[string]any{"xs": []string{"a", "b", "c"}}
	if got := render(t, "{{ xs.1 }}", data); got != "b" {
		t.Fatalf("got %q", got)
	}
}

func TestDottedPathMethod(t *testing.T) {
	data := map[string]any{"v": stringerVal{}}
	if got := render(t, "{{ v.Label }}", data); got != "labelled" {
		t.Fatalf("got %q", got)
	}
}

type stringerVal struct{}

func (stringerVal) Label() string { return "labelled" }

func TestIfElse(t *testing.T) {
	src := "{% if n > 5 %}big{% elif n > 2 %}mid{% else %}small{% endif %}"
	cases := map[int]string{10: "big", 3: "mid", 1: "small"}
	for n, want := range cases {
		if got := render(t, src, map[string]any{"n": n}); got != want {
			t.Fatalf("n=%d got %q, want %q", n, got, want)
		}
	}
}

func TestIfOperators(t *testing.T) {
	tests := []struct {
		cond string
		data map[string]any
		want bool
	}{
		{"a == b", map[string]any{"a": 1, "b": 1}, true},
		{"a == b", map[string]any{"a": 1, "b": "1"}, true}, // numeric coercion
		{"a != b", map[string]any{"a": 1, "b": 2}, true},
		{"a < b", map[string]any{"a": 1, "b": 2}, true},
		{"a >= b", map[string]any{"a": 2, "b": 2}, true},
		{"a and b", map[string]any{"a": true, "b": false}, false},
		{"a or b", map[string]any{"a": false, "b": true}, true},
		{"not a", map[string]any{"a": false}, true},
		{"x in xs", map[string]any{"x": "b", "xs": []any{"a", "b"}}, true},
		{"x not in xs", map[string]any{"x": "z", "xs": []any{"a", "b"}}, true},
		{"x in s", map[string]any{"x": "ell", "s": "hello"}, true},
		{"a == 'go'", map[string]any{"a": "go"}, true},
		{"n == 3.5", map[string]any{"n": 3.5}, true},
		{"a and not b or c", map[string]any{"a": true, "b": true, "c": true}, true},
	}
	for _, tt := range tests {
		src := "{% if " + tt.cond + " %}T{% else %}F{% endif %}"
		want := "F"
		if tt.want {
			want = "T"
		}
		if got := render(t, src, tt.data); got != want {
			t.Errorf("cond %q = %q, want %q", tt.cond, got, want)
		}
	}
}

func TestForLoopVariables(t *testing.T) {
	src := "{% for x in xs %}{{ forloop.counter }}:{{ x }}{% if not forloop.last %},{% endif %}{% endfor %}"
	got := render(t, src, map[string]any{"xs": []int{7, 8, 9}})
	if got != "1:7,2:8,3:9" {
		t.Fatalf("got %q", got)
	}
}

func TestForEmpty(t *testing.T) {
	src := "{% for x in xs %}{{ x }}{% empty %}none{% endfor %}"
	if got := render(t, src, map[string]any{"xs": []int{}}); got != "none" {
		t.Fatalf("got %q", got)
	}
}

func TestForReversed(t *testing.T) {
	src := "{% for x in xs reversed %}{{ x }}{% endfor %}"
	if got := render(t, src, map[string]any{"xs": []int{1, 2, 3}}); got != "321" {
		t.Fatalf("got %q", got)
	}
}

func TestForMapDeterministic(t *testing.T) {
	src := "{% for k, v in m %}{{ k }}={{ v }};{% endfor %}"
	data := map[string]any{"m": map[string]int{"b": 2, "a": 1, "c": 3}}
	for i := 0; i < 5; i++ {
		if got := render(t, src, data); got != "a=1;b=2;c=3;" {
			t.Fatalf("got %q", got)
		}
	}
}

func TestForNested(t *testing.T) {
	src := "{% for row in rows %}{% for c in row %}{{ forloop.parentloop.counter }}.{{ forloop.counter }} {% endfor %}{% endfor %}"
	data := map[string]any{"rows": []any{[]int{1, 2}, []int{3}}}
	if got := render(t, src, data); got != "1.1 1.2 2.1 " {
		t.Fatalf("got %q", got)
	}
}

func TestWith(t *testing.T) {
	src := "{% with total=xs|length %}{{ total }}{% endwith %}"
	if got := render(t, src, map[string]any{"xs": []int{1, 2, 3}}); got != "3" {
		t.Fatalf("got %q", got)
	}
	src = "{% with xs|length as total %}{{ total }}{% endwith %}"
	if got := render(t, src, map[string]any{"xs": []int{1, 2}}); got != "2" {
		t.Fatalf("got %q", got)
	}
}

func TestComments(t *testing.T) {
	if got := render(t, "a{# hidden #}b", nil); got != "ab" {
		t.Fatalf("got %q", got)
	}
	if got := render(t, "a{% comment %}x{{ y }}z{% endcomment %}b", nil); got != "ab" {
		t.Fatalf("got %q", got)
	}
}

func TestInclude(t *testing.T) {
	s := NewSet()
	s.Add("header", "<h1>{{ title }}</h1>")
	s.Add("page", "{% include 'header' %}<p>body</p>")
	out, err := s.Render("page", map[string]any{"title": "Hi"})
	if err != nil {
		t.Fatal(err)
	}
	if out != "<h1>Hi</h1><p>body</p>" {
		t.Fatalf("got %q", out)
	}
}

func TestIncludeDynamicName(t *testing.T) {
	s := NewSet()
	s.Add("partial_a", "A")
	s.Add("page", "{% include which %}")
	out, err := s.Render("page", map[string]any{"which": "partial_a"})
	if err != nil {
		t.Fatal(err)
	}
	if out != "A" {
		t.Fatalf("got %q", out)
	}
}

func TestExtends(t *testing.T) {
	s := NewSet()
	s.Add("base", "<head>{% block head %}default{% endblock %}</head><body>{% block body %}{% endblock %}</body>")
	s.Add("child", "{% extends 'base' %}{% block body %}child body{% endblock %}")
	out, err := s.Render("child", nil)
	if err != nil {
		t.Fatal(err)
	}
	if out != "<head>default</head><body>child body</body>" {
		t.Fatalf("got %q", out)
	}
}

func TestExtendsTwoLevels(t *testing.T) {
	s := NewSet()
	s.Add("base", "[{% block a %}A{% endblock %}|{% block b %}B{% endblock %}]")
	s.Add("mid", "{% extends 'base' %}{% block a %}mid-a{% endblock %}")
	s.Add("leaf", "{% extends 'mid' %}{% block b %}leaf-b{% endblock %}")
	out, err := s.Render("leaf", nil)
	if err != nil {
		t.Fatal(err)
	}
	if out != "[mid-a|leaf-b]" {
		t.Fatalf("got %q", out)
	}
}

func TestExtendsCycleDetected(t *testing.T) {
	s := NewSet()
	s.Add("a", "{% extends 'b' %}")
	s.Add("b", "{% extends 'a' %}")
	if _, err := s.Render("a", nil); err == nil {
		t.Fatal("extends cycle not detected")
	}
}

func TestIncludeCycleDetected(t *testing.T) {
	s := NewSet()
	s.Add("a", "{% include 'b' %}")
	s.Add("b", "{% include 'a' %}")
	if _, err := s.Render("a", nil); err == nil {
		t.Fatal("include cycle not detected")
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"{% if x %}no end",
		"{% for x in %}{% endfor %}",
		"{% endif %}",
		"{% unknowntag %}",
		"{{ }}",
		"{{ x|nosuchfilter }}",
		"{% for in xs %}{% endfor %}",
		"{{ x|",
		"{% block %}{% endblock %}",
		"{% block a %}{% endblock %}{% block a %}{% endblock %}",
		"{% with %}{% endwith %}",
	} {
		s := NewSet()
		s.Add("t", src)
		if _, err := s.Render("t", nil); err == nil {
			t.Errorf("source %q rendered without error", src)
		}
	}
}

func TestUnclosedDelimiter(t *testing.T) {
	renderErr(t, "{{ x", nil)
	renderErr(t, "{% if x %}{{ y }", map[string]any{"x": true})
}

func TestLoneBracesAreText(t *testing.T) {
	if got := render(t, "a { b } c {x}", nil); got != "a { b } c {x}" {
		t.Fatalf("got %q", got)
	}
	if got := render(t, "{", nil); got != "{" {
		t.Fatalf("got %q", got)
	}
}

func TestTemplateNotFound(t *testing.T) {
	s := NewSet()
	if _, err := s.Render("missing", nil); err == nil {
		t.Fatal("missing template rendered")
	}
}

func TestSetCachesParse(t *testing.T) {
	s := NewSet()
	s.Add("t", "{{ x }}")
	t1, err := s.Get("t")
	if err != nil {
		t.Fatal(err)
	}
	t2, err := s.Get("t")
	if err != nil {
		t.Fatal(err)
	}
	if t1 != t2 {
		t.Fatal("Get did not cache the parsed template")
	}
	s.Add("t", "{{ y }}") // re-register invalidates
	t3, err := s.Get("t")
	if err != nil {
		t.Fatal(err)
	}
	if t3 == t1 {
		t.Fatal("Add did not invalidate the cache")
	}
}

func TestConcurrentRenders(t *testing.T) {
	s := NewSet()
	s.Add("t", "{% for x in xs %}{{ x }}{% endfor %}")
	done := make(chan error, 16)
	for i := 0; i < 16; i++ {
		go func() {
			out, err := s.Render("t", map[string]any{"xs": []int{1, 2, 3}})
			if err == nil && out != "123" {
				err = errUnexpected(out)
			}
			done <- err
		}()
	}
	for i := 0; i < 16; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

type errUnexpected string

func (e errUnexpected) Error() string { return "unexpected output: " + string(e) }

func TestCustomFilter(t *testing.T) {
	s := NewSet()
	s.Filters().Register("shout", func(v any, _ any, _ bool) (any, error) {
		return strings.ToUpper(Stringify(v)) + "!", nil
	})
	s.Add("t", "{{ word|shout }}")
	out, err := s.Render("t", map[string]any{"word": "go"})
	if err != nil {
		t.Fatal(err)
	}
	if out != "GO!" {
		t.Fatalf("got %q", out)
	}
}

func TestStringLiteralWithSpaces(t *testing.T) {
	got := render(t, `{{ x|default:"no value here" }}`, nil)
	if got != "no value here" {
		t.Fatalf("got %q", got)
	}
}
