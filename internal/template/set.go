package template

import (
	"fmt"
	"strings"
	"sync"
)

// Set is a named collection of templates sharing one filter registry —
// the equivalent of Django's template loader. Sources are registered with
// Add and parsed lazily, once, on first use; parsed templates are cached
// and safe for concurrent rendering, which is exactly what the modified
// server's template-rendering pool requires.
type Set struct {
	mu      sync.RWMutex
	sources map[string]string
	cache   map[string]*Template
	filters *FilterSet
}

// NewSet returns an empty set with the built-in filters.
func NewSet() *Set {
	return &Set{
		sources: map[string]string{},
		cache:   map[string]*Template{},
		filters: NewFilterSet(),
	}
}

// Filters exposes the set's filter registry for custom registrations.
// Register custom filters before the first Get/Render; parsed templates
// are cached with the filters resolved.
func (s *Set) Filters() *FilterSet { return s.filters }

// Add registers (or replaces) a template source and invalidates any
// cached parse of it.
func (s *Set) Add(name, source string) {
	if name == "" {
		panic("template: empty template name")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sources[name] = source
	delete(s.cache, name)
}

// AddAll registers every entry of sources.
func (s *Set) AddAll(sources map[string]string) {
	for name, src := range sources {
		s.Add(name, src)
	}
}

// Names returns the registered template names (unsorted).
func (s *Set) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.sources))
	for n := range s.sources {
		names = append(names, n)
	}
	return names
}

// Get returns the parsed template for name, parsing and caching it on
// first use.
func (s *Set) Get(name string) (*Template, error) {
	s.mu.RLock()
	t, ok := s.cache[name]
	s.mu.RUnlock()
	if ok {
		return t, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.cache[name]; ok {
		return t, nil
	}
	src, ok := s.sources[name]
	if !ok {
		return nil, fmt.Errorf("template: %q not found", name)
	}
	t, err := parse(name, src, s.filters)
	if err != nil {
		return nil, err
	}
	t.set = s
	s.cache[name] = t
	return t, nil
}

// Render parses (cached) and renders the named template with data. This
// is the call the paper's rendering threads perform:
// get_template(name).render(Context(data)).
func (s *Set) Render(name string, data map[string]any) (string, error) {
	t, err := s.Get(name)
	if err != nil {
		return "", err
	}
	return t.Render(data)
}

// Render renders the template with data, resolving {% extends %} chains
// and {% include %} references through the owning set.
func (t *Template) Render(data map[string]any) (string, error) {
	ctx := NewContext(data)
	var sb strings.Builder
	st := &renderState{set: t.set}
	if err := t.renderInto(st, ctx, &sb); err != nil {
		return "", err
	}
	return sb.String(), nil
}

// renderInto walks the inheritance chain: each {% extends %} pushes the
// child's blocks as overrides and delegates rendering to the parent.
func (t *Template) renderInto(st *renderState, ctx *Context, sb *strings.Builder) error {
	cur := t
	for cur.extends != "" {
		if st.depth >= maxRenderDepth {
			return fmt.Errorf("template: extends depth exceeds %d (cycle?)", maxRenderDepth)
		}
		st.depth++
		st.overrides = append(st.overrides, cur.blocks)
		parent, err := st.set.Get(cur.extends)
		if err != nil {
			return fmt.Errorf("extends: %w", err)
		}
		cur = parent
	}
	return cur.nodes.render(st, ctx, sb)
}
