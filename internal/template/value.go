package template

import (
	"fmt"
	"reflect"
	"strconv"
	"strings"
)

// Truth reports Django truthiness: nil, false, zero numbers, empty
// strings, and empty containers are false; everything else is true.
func Truth(v any) bool {
	switch t := v.(type) {
	case nil:
		return false
	case bool:
		return t
	case string:
		return t != ""
	case Safe:
		return t != ""
	case int:
		return t != 0
	case int64:
		return t != 0
	case int32:
		return t != 0
	case float64:
		return t != 0
	case float32:
		return t != 0
	}
	rv := reflect.ValueOf(v)
	switch rv.Kind() {
	case reflect.Slice, reflect.Map, reflect.Array, reflect.Chan:
		return rv.Len() > 0
	case reflect.Pointer, reflect.Interface:
		return !rv.IsNil()
	default:
		return !rv.IsZero()
	}
}

// asFloat attempts numeric coercion.
func asFloat(v any) (float64, bool) {
	switch t := v.(type) {
	case int:
		return float64(t), true
	case int64:
		return float64(t), true
	case int32:
		return float64(t), true
	case uint:
		return float64(t), true
	case uint64:
		return float64(t), true
	case float64:
		return t, true
	case float32:
		return float64(t), true
	case string:
		f, err := strconv.ParseFloat(t, 64)
		return f, err == nil
	case Safe:
		f, err := strconv.ParseFloat(string(t), 64)
		return f, err == nil
	case bool:
		if t {
			return 1, true
		}
		return 0, true
	default:
		return 0, false
	}
}

// asInt attempts integer coercion.
func asInt(v any) (int, bool) {
	f, ok := asFloat(v)
	if !ok {
		return 0, false
	}
	return int(f), true
}

// Equal compares two template values: numerically when both coerce,
// otherwise by display string for string-ish pairs, otherwise deeply.
func Equal(a, b any) bool {
	if af, aok := asFloat(a); aok {
		if bf, bok := asFloat(b); bok {
			return af == bf
		}
	}
	switch a.(type) {
	case string, Safe:
		switch b.(type) {
		case string, Safe:
			return Stringify(a) == Stringify(b)
		}
	}
	return reflect.DeepEqual(a, b)
}

// Less orders two template values. Numbers order numerically, strings
// lexically; mixed types report an error.
func Less(a, b any) (bool, error) {
	if af, aok := asFloat(a); aok {
		if bf, bok := asFloat(b); bok {
			return af < bf, nil
		}
	}
	as, aok := a.(string)
	bs, bok := b.(string)
	if aok && bok {
		return as < bs, nil
	}
	return false, fmt.Errorf("template: cannot order %T and %T", a, b)
}

// Contains implements the "in" operator: substring for strings, element
// membership for slices/arrays, key membership for maps.
func Contains(item, container any) (bool, error) {
	switch c := container.(type) {
	case nil:
		return false, nil
	case string:
		return strings.Contains(c, Stringify(item)), nil
	case Safe:
		return strings.Contains(string(c), Stringify(item)), nil
	}
	rv := reflect.ValueOf(container)
	switch rv.Kind() {
	case reflect.Slice, reflect.Array:
		for i := 0; i < rv.Len(); i++ {
			if Equal(rv.Index(i).Interface(), item) {
				return true, nil
			}
		}
		return false, nil
	case reflect.Map:
		for _, k := range rv.MapKeys() {
			if Equal(k.Interface(), item) {
				return true, nil
			}
		}
		return false, nil
	default:
		return false, fmt.Errorf("template: 'in' needs a container, got %T", container)
	}
}

// iterate visits the elements of a value for {% for %}: slice/array
// elements, map values as (key, value) pairs sorted by key for
// determinism, or string runes. It reports an error for non-iterables.
func iterate(v any, visit func(i int, elem any) error) error {
	if v == nil {
		return nil
	}
	rv := reflect.ValueOf(v)
	for rv.Kind() == reflect.Pointer || rv.Kind() == reflect.Interface {
		if rv.IsNil() {
			return nil
		}
		rv = rv.Elem()
	}
	switch rv.Kind() {
	case reflect.Slice, reflect.Array:
		for i := 0; i < rv.Len(); i++ {
			if err := visit(i, rv.Index(i).Interface()); err != nil {
				return err
			}
		}
		return nil
	case reflect.Map:
		keys := rv.MapKeys()
		strs := make([]string, len(keys))
		for i, k := range keys {
			strs[i] = Stringify(k.Interface())
		}
		// Insertion sort keyed by display string; map iteration must be
		// deterministic for template output to be testable.
		for i := 1; i < len(keys); i++ {
			for j := i; j > 0 && strs[j] < strs[j-1]; j-- {
				strs[j], strs[j-1] = strs[j-1], strs[j]
				keys[j], keys[j-1] = keys[j-1], keys[j]
			}
		}
		for i, k := range keys {
			pair := map[string]any{"key": k.Interface(), "value": rv.MapIndex(k).Interface()}
			if err := visit(i, pair); err != nil {
				return err
			}
		}
		return nil
	case reflect.String:
		for i, r := range rv.String() {
			if err := visit(i, string(r)); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("template: cannot iterate %T", v)
	}
}

// length reports the number of elements in a container-ish value.
func length(v any) (int, bool) {
	switch t := v.(type) {
	case nil:
		return 0, true
	case string:
		return len(t), true
	case Safe:
		return len(t), true
	}
	rv := reflect.ValueOf(v)
	switch rv.Kind() {
	case reflect.Slice, reflect.Array, reflect.Map, reflect.Chan:
		return rv.Len(), true
	default:
		return 0, false
	}
}
