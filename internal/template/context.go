package template

import (
	"fmt"
	"reflect"
	"strconv"
)

// Context carries the data a template is rendered with — the paper's
// "dictionary (a.k.a. hashtable) used to render the template". It is a
// scope stack: tags like {% for %} and {% with %} push a scope for their
// body and pop it afterwards.
//
// A Context is not safe for concurrent use; the rendering pool gives each
// render its own Context.
type Context struct {
	scopes []map[string]any
}

// NewContext returns a context whose outermost scope is data (may be nil).
func NewContext(data map[string]any) *Context {
	if data == nil {
		data = map[string]any{}
	}
	return &Context{scopes: []map[string]any{data}}
}

// Push adds an inner scope.
func (c *Context) Push() {
	c.scopes = append(c.scopes, map[string]any{})
}

// Pop removes the innermost scope. Popping the outermost scope panics —
// that is always a programming error in a tag implementation.
func (c *Context) Pop() {
	if len(c.scopes) == 1 {
		panic("template: popped outermost context scope")
	}
	c.scopes = c.scopes[:len(c.scopes)-1]
}

// Set binds name in the innermost scope.
func (c *Context) Set(name string, value any) {
	c.scopes[len(c.scopes)-1][name] = value
}

// Lookup finds name, innermost scope first.
func (c *Context) Lookup(name string) (any, bool) {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if v, ok := c.scopes[i][name]; ok {
			return v, true
		}
	}
	return nil, false
}

// resolveAttr resolves one step of a dotted variable path against value:
// map key, struct field, slice/array index, or method with no arguments.
// Missing attributes resolve to nil (Django's silent-failure semantics)
// so a template never crashes a render over absent data.
func resolveAttr(value any, attr string) any {
	if value == nil {
		return nil
	}
	rv := reflect.ValueOf(value)
	// A no-arg method on the value or pointer takes priority, mirroring
	// Django's callable resolution.
	if m := rv.MethodByName(attr); m.IsValid() && m.Type().NumIn() == 0 && m.Type().NumOut() >= 1 {
		return m.Call(nil)[0].Interface()
	}
	for rv.Kind() == reflect.Pointer || rv.Kind() == reflect.Interface {
		if rv.IsNil() {
			return nil
		}
		rv = rv.Elem()
	}
	switch rv.Kind() {
	case reflect.Map:
		kt := rv.Type().Key()
		if kt.Kind() == reflect.String {
			mv := rv.MapIndex(reflect.ValueOf(attr).Convert(kt))
			if mv.IsValid() {
				return mv.Interface()
			}
		}
		return nil
	case reflect.Struct:
		f := rv.FieldByName(attr)
		if f.IsValid() && f.CanInterface() {
			return f.Interface()
		}
		return nil
	case reflect.Slice, reflect.Array, reflect.String:
		idx, err := strconv.Atoi(attr)
		if err != nil || idx < 0 || idx >= rv.Len() {
			return nil
		}
		elem := rv.Index(idx)
		if rv.Kind() == reflect.String {
			return string(rune(elem.Uint()))
		}
		return elem.Interface()
	default:
		return nil
	}
}

// Safe marks a string as pre-escaped HTML: the autoescaper outputs it
// verbatim, like Django's mark_safe.
type Safe string

// HTMLEscape escapes the five characters that are special in HTML.
func HTMLEscape(s string) string {
	// Fast path: nothing to escape.
	clean := true
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '&', '<', '>', '"', '\'':
			clean = false
		}
	}
	if clean {
		return s
	}
	buf := make([]byte, 0, len(s)+16)
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '&':
			buf = append(buf, "&amp;"...)
		case '<':
			buf = append(buf, "&lt;"...)
		case '>':
			buf = append(buf, "&gt;"...)
		case '"':
			buf = append(buf, "&quot;"...)
		case '\'':
			buf = append(buf, "&#39;"...)
		default:
			buf = append(buf, c)
		}
	}
	return string(buf)
}

// Stringify converts a template value to its display string.
func Stringify(v any) string {
	switch t := v.(type) {
	case nil:
		return ""
	case string:
		return t
	case Safe:
		return string(t)
	case bool:
		if t {
			return "True"
		}
		return "False"
	case int:
		return strconv.Itoa(t)
	case int64:
		return strconv.FormatInt(t, 10)
	case int32:
		return strconv.FormatInt(int64(t), 10)
	case float64:
		return formatFloat(t)
	case float32:
		return formatFloat(float64(t))
	case fmt.Stringer:
		return t.String()
	case error:
		return t.Error()
	default:
		return fmt.Sprintf("%v", v)
	}
}

// formatFloat renders floats the way Django does: integral values without
// a decimal point become "5.0"-style only when genuinely fractional.
func formatFloat(f float64) string {
	if f == float64(int64(f)) {
		return strconv.FormatInt(int64(f), 10) + ".0"
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}
