package httpwire

import (
	"testing"
	"testing/quick"
)

func TestParseQuery(t *testing.T) {
	tests := []struct {
		name string
		raw  string
		want map[string]string
	}{
		{"paper example", "userid=5&popups=no", map[string]string{"userid": "5", "popups": "no"}},
		{"empty", "", map[string]string{}},
		{"value-less key", "flag", map[string]string{"flag": ""}},
		{"empty value", "k=", map[string]string{"k": ""}},
		{"plus is space", "q=hello+world", map[string]string{"q": "hello world"}},
		{"percent escape", "q=a%26b%3D1", map[string]string{"q": "a&b=1"}},
		{"duplicate keys last wins", "a=1&a=2", map[string]string{"a": "2"}},
		{"stray ampersands", "&&a=1&&", map[string]string{"a": "1"}},
		{"utf8 escape", "n=%E2%82%AC", map[string]string{"n": "€"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := ParseQuery(tt.raw)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(tt.want) {
				t.Fatalf("got %v, want %v", got, tt.want)
			}
			for k, v := range tt.want {
				if got[k] != v {
					t.Fatalf("got[%q] = %q, want %q", k, got[k], v)
				}
			}
		})
	}
}

func TestParseQueryErrors(t *testing.T) {
	for _, raw := range []string{"a=%", "a=%2", "a=%zz", "%G0=1"} {
		if _, err := ParseQuery(raw); err == nil {
			t.Errorf("ParseQuery(%q) succeeded, want error", raw)
		}
	}
}

func TestEscapeUnescapeRoundTrip(t *testing.T) {
	f := func(s string) bool {
		out, err := Unescape(Escape(s))
		return err == nil && out == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeQueryDeterministic(t *testing.T) {
	q := map[string]string{"b": "2", "a": "1", "c": "x y"}
	want := "a=1&b=2&c=x+y"
	for i := 0; i < 10; i++ {
		if got := EncodeQuery(q); got != want {
			t.Fatalf("EncodeQuery = %q, want %q", got, want)
		}
	}
}

func TestEncodeQueryEmpty(t *testing.T) {
	if got := EncodeQuery(nil); got != "" {
		t.Fatalf("EncodeQuery(nil) = %q, want empty", got)
	}
}

func TestEncodeParseRoundTrip(t *testing.T) {
	f := func(keys, values []string) bool {
		in := map[string]string{}
		for i, k := range keys {
			if k == "" || i >= len(values) {
				continue
			}
			in[k] = values[i]
		}
		out, err := ParseQuery(EncodeQuery(in))
		if err != nil {
			return false
		}
		if len(out) != len(in) {
			return false
		}
		for k, v := range in {
			if out[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
