package httpwire

import (
	"errors"
	"fmt"
	"strings"
)

// ErrBadEscape reports an invalid percent-encoding in a query string.
var ErrBadEscape = errors.New("httpwire: invalid percent-encoding")

// ParseQuery parses an application/x-www-form-urlencoded query string
// ("userid=5&popups=no") into a map, the "dictionary" the paper's header
// parsing threads build for dynamic requests. Later duplicate keys win.
// An empty input yields an empty, non-nil map.
func ParseQuery(raw string) (map[string]string, error) {
	q := make(map[string]string, 4)
	for raw != "" {
		var pair string
		if i := strings.IndexByte(raw, '&'); i >= 0 {
			pair, raw = raw[:i], raw[i+1:]
		} else {
			pair, raw = raw, ""
		}
		if pair == "" {
			continue
		}
		key, value := pair, ""
		if i := strings.IndexByte(pair, '='); i >= 0 {
			key, value = pair[:i], pair[i+1:]
		}
		k, err := Unescape(key)
		if err != nil {
			return nil, err
		}
		v, err := Unescape(value)
		if err != nil {
			return nil, err
		}
		q[k] = v
	}
	return q, nil
}

// Unescape decodes percent-escapes and '+' (as space) in s.
func Unescape(s string) (string, error) {
	if !strings.ContainsAny(s, "%+") {
		return s, nil
	}
	var sb strings.Builder
	sb.Grow(len(s))
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '+':
			sb.WriteByte(' ')
		case '%':
			if i+2 >= len(s) {
				return "", fmt.Errorf("%w: truncated escape in %q", ErrBadEscape, s)
			}
			hi, ok1 := unhex(s[i+1])
			lo, ok2 := unhex(s[i+2])
			if !ok1 || !ok2 {
				return "", fmt.Errorf("%w: %q", ErrBadEscape, s[i:i+3])
			}
			sb.WriteByte(hi<<4 | lo)
			i += 2
		default:
			sb.WriteByte(c)
		}
	}
	return sb.String(), nil
}

// Escape percent-encodes s for use as a query-string key or value.
func Escape(s string) string {
	const hexDigits = "0123456789ABCDEF"
	var sb strings.Builder
	sb.Grow(len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == ' ':
			sb.WriteByte('+')
		case isUnreserved(c):
			sb.WriteByte(c)
		default:
			sb.WriteByte('%')
			sb.WriteByte(hexDigits[c>>4])
			sb.WriteByte(hexDigits[c&0xf])
		}
	}
	return sb.String()
}

// EncodeQuery renders a query map in sorted-key order (deterministic for
// tests and cache keys).
func EncodeQuery(q map[string]string) string {
	if len(q) == 0 {
		return ""
	}
	keys := make([]string, 0, len(q))
	for k := range q {
		keys = append(keys, k)
	}
	// Insertion sort: key sets are tiny (a handful of form fields).
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	var sb strings.Builder
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte('&')
		}
		sb.WriteString(Escape(k))
		sb.WriteByte('=')
		sb.WriteString(Escape(q[k]))
	}
	return sb.String()
}

func isUnreserved(c byte) bool {
	return 'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' || '0' <= c && c <= '9' ||
		c == '-' || c == '_' || c == '.' || c == '~'
}

func unhex(c byte) (byte, bool) {
	switch {
	case '0' <= c && c <= '9':
		return c - '0', true
	case 'a' <= c && c <= 'f':
		return c - 'a' + 10, true
	case 'A' <= c && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}
