package httpwire

import (
	"bytes"
	"strings"
	"testing"
)

func TestResponseWriteTo(t *testing.T) {
	var buf bytes.Buffer
	resp := Response{
		Status:      StatusOK,
		ContentType: "text/html; charset=utf-8",
		Body:        []byte("<html>hi</html>"),
		KeepAlive:   true,
	}
	if err := resp.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "HTTP/1.1 200 OK\r\n") {
		t.Fatalf("status line wrong: %q", out)
	}
	if !strings.Contains(out, "Content-Length: 15\r\n") {
		t.Fatalf("missing exact Content-Length: %q", out)
	}
	if !strings.Contains(out, "Connection: keep-alive\r\n") {
		t.Fatalf("missing keep-alive: %q", out)
	}
	if !strings.HasSuffix(out, "\r\n\r\n<html>hi</html>") {
		t.Fatalf("body not after blank line: %q", out)
	}
}

func TestResponseDefaultsAndClose(t *testing.T) {
	var buf bytes.Buffer
	resp := Response{Status: StatusNotFound, Body: []byte("nope")}
	if err := resp.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "404 Not Found") {
		t.Fatalf("reason phrase missing: %q", out)
	}
	if !strings.Contains(out, "Connection: close") {
		t.Fatalf("close expected by default: %q", out)
	}
	if !strings.Contains(out, "Content-Type: text/html; charset=utf-8") {
		t.Fatalf("default content type missing: %q", out)
	}
}

func TestResponseExtraHeaders(t *testing.T) {
	var buf bytes.Buffer
	resp := Response{
		Status: StatusFound,
		Extra:  Header{"Location": "/home"},
	}
	if err := resp.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Location: /home\r\n") {
		t.Fatalf("extra header missing: %q", buf.String())
	}
}

func TestResponseParsesBack(t *testing.T) {
	// A response we write must be readable by a minimal client: status
	// line, then headers, then exactly Content-Length bytes.
	var buf bytes.Buffer
	body := []byte(strings.Repeat("x", 1000))
	resp := Response{Status: StatusOK, Body: body}
	if err := resp.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	i := strings.Index(out, "\r\n\r\n")
	if i < 0 {
		t.Fatal("no header terminator")
	}
	if got := out[i+4:]; got != string(body) {
		t.Fatalf("body mismatch: %d bytes vs %d", len(got), len(body))
	}
}

func TestStatusText(t *testing.T) {
	if got := StatusText(StatusOK); got != "OK" {
		t.Fatalf("StatusText(200) = %q", got)
	}
	if got := StatusText(999); got != "Unknown" {
		t.Fatalf("StatusText(999) = %q", got)
	}
}

func TestWriteError(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteError(&buf, StatusBadRequest, "bad header"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "400 Bad Request") || !strings.Contains(out, "bad header") {
		t.Fatalf("WriteError output: %q", out)
	}
	if !strings.Contains(out, "text/plain") {
		t.Fatalf("error responses should be text/plain: %q", out)
	}
}
