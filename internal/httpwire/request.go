// Package httpwire implements the HTTP/1.1 wire protocol used by both
// server variants.
//
// Parsing is deliberately split into two phases, mirroring the paper's
// header-parsing stage: ReadRequestLine consumes only the first line
// (enough to classify the request as static or dynamic and pick a target
// pool), and ReadHeaders consumes the remaining header block. The staged
// server parses the full header in the header-parsing pool for dynamic
// requests but defers it to the static pool for static requests, exactly
// as described in Section 3.2 of the paper.
//
// net/http is not used on the serving path: its one-goroutine-per-
// connection model would erase the bounded-thread-pool phenomenon the
// reproduction studies.
package httpwire

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Wire protocol limits, guarding against malformed or hostile input.
const (
	MaxRequestLineBytes = 8 << 10
	MaxHeaderBytes      = 64 << 10
	MaxBodyBytes        = 1 << 20
)

// Errors reported by the parser.
var (
	ErrLineTooLong   = errors.New("httpwire: request line too long")
	ErrHeaderTooBig  = errors.New("httpwire: header block too large")
	ErrBodyTooBig    = errors.New("httpwire: body too large")
	ErrMalformedLine = errors.New("httpwire: malformed request line")
	ErrMalformedHdr  = errors.New("httpwire: malformed header field")
	ErrBadProto      = errors.New("httpwire: unsupported protocol version")
)

// RequestLine is the result of phase-one parsing: just the first line of
// the request, the minimum needed for pool dispatch.
type RequestLine struct {
	Method   string
	Target   string // as sent, e.g. /search?q=go
	Proto    string // HTTP/1.0 or HTTP/1.1
	Path     string // target before '?'
	RawQuery string // target after '?', may be empty
}

// IsStatic classifies the request the way the paper's header-parsing
// threads do: a path whose final segment has a file extension is a static
// file; anything else is a dynamic page.
func (rl RequestLine) IsStatic() bool {
	slash := strings.LastIndexByte(rl.Path, '/')
	last := rl.Path
	if slash >= 0 {
		last = rl.Path[slash+1:]
	}
	dot := strings.LastIndexByte(last, '.')
	return dot > 0 && dot < len(last)-1
}

// ReadRequestLine reads and parses only the first line of an HTTP request.
func ReadRequestLine(br *bufio.Reader) (RequestLine, error) {
	line, err := readLine(br, MaxRequestLineBytes, ErrLineTooLong)
	if err != nil {
		return RequestLine{}, err
	}
	return ParseRequestLine(line)
}

// ParseRequestLine parses a request line such as
// "GET /home?user=5 HTTP/1.1".
func ParseRequestLine(line string) (RequestLine, error) {
	first := strings.IndexByte(line, ' ')
	if first < 0 {
		return RequestLine{}, fmt.Errorf("%w: %q", ErrMalformedLine, line)
	}
	last := strings.LastIndexByte(line, ' ')
	if last == first {
		return RequestLine{}, fmt.Errorf("%w: %q", ErrMalformedLine, line)
	}
	rl := RequestLine{
		Method: line[:first],
		Target: strings.TrimSpace(line[first+1 : last]),
		Proto:  line[last+1:],
	}
	if rl.Method == "" || rl.Target == "" {
		return RequestLine{}, fmt.Errorf("%w: %q", ErrMalformedLine, line)
	}
	for _, c := range rl.Method {
		if c < 'A' || c > 'Z' {
			return RequestLine{}, fmt.Errorf("%w: bad method %q", ErrMalformedLine, rl.Method)
		}
	}
	if rl.Proto != "HTTP/1.1" && rl.Proto != "HTTP/1.0" {
		return RequestLine{}, fmt.Errorf("%w: %q", ErrBadProto, rl.Proto)
	}
	if q := strings.IndexByte(rl.Target, '?'); q >= 0 {
		rl.Path, rl.RawQuery = rl.Target[:q], rl.Target[q+1:]
	} else {
		rl.Path = rl.Target
	}
	return rl, nil
}

// Header is a case-insensitive single-valued header map. Keys are stored
// in canonical form (e.g. "Content-Length").
type Header map[string]string

// Get returns the value for key (any case), or "".
func (h Header) Get(key string) string { return h[CanonicalKey(key)] }

// Set stores value under the canonical form of key.
func (h Header) Set(key, value string) { h[CanonicalKey(key)] = value }

// ReadHeaders reads the header block (phase two), up to and including the
// blank line that terminates it.
func ReadHeaders(br *bufio.Reader) (Header, error) {
	h := make(Header, 8)
	total := 0
	for {
		line, err := readLine(br, MaxHeaderBytes, ErrHeaderTooBig)
		if err != nil {
			return nil, err
		}
		if line == "" {
			return h, nil
		}
		total += len(line)
		if total > MaxHeaderBytes {
			return nil, ErrHeaderTooBig
		}
		colon := strings.IndexByte(line, ':')
		if colon <= 0 {
			return nil, fmt.Errorf("%w: %q", ErrMalformedHdr, line)
		}
		key := line[:colon]
		if strings.ContainsAny(key, " \t") {
			return nil, fmt.Errorf("%w: whitespace in field name %q", ErrMalformedHdr, key)
		}
		h.Set(key, strings.TrimSpace(line[colon+1:]))
	}
}

// Request is a fully parsed HTTP request.
type Request struct {
	Line   RequestLine
	Header Header
	Query  map[string]string // parsed from RawQuery and any form body
	Body   []byte
}

// KeepAlive reports whether the connection should stay open after the
// response, per HTTP/1.0 and 1.1 defaults and the Connection header.
func (r *Request) KeepAlive() bool {
	conn := strings.ToLower(r.Header.Get("Connection"))
	switch r.Line.Proto {
	case "HTTP/1.1":
		return conn != "close"
	default:
		return conn == "keep-alive"
	}
}

// ReadRequest performs both parse phases plus query/body handling — the
// convenience path used by the baseline thread-per-request server, whose
// workers do everything themselves.
func ReadRequest(br *bufio.Reader) (*Request, error) {
	line, err := ReadRequestLine(br)
	if err != nil {
		return nil, err
	}
	return FinishRequest(br, line)
}

// FinishRequest completes phase two for a request whose first line has
// already been read: remaining headers, query string, and form body.
func FinishRequest(br *bufio.Reader, line RequestLine) (*Request, error) {
	hdr, err := ReadHeaders(br)
	if err != nil {
		return nil, err
	}
	req := &Request{Line: line, Header: hdr}
	req.Query, err = ParseQuery(line.RawQuery)
	if err != nil {
		return nil, err
	}
	if cl := hdr.Get("Content-Length"); cl != "" {
		n, err := strconv.Atoi(cl)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("%w: Content-Length %q", ErrMalformedHdr, cl)
		}
		if n > MaxBodyBytes {
			return nil, ErrBodyTooBig
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(br, body); err != nil {
			return nil, fmt.Errorf("httpwire: reading body: %w", err)
		}
		req.Body = body
		if strings.HasPrefix(hdr.Get("Content-Type"), "application/x-www-form-urlencoded") {
			form, err := ParseQuery(string(body))
			if err != nil {
				return nil, err
			}
			for k, v := range form {
				req.Query[k] = v
			}
		}
	}
	return req, nil
}

// readLine reads a CRLF- or LF-terminated line without the terminator.
func readLine(br *bufio.Reader, limit int, tooLong error) (string, error) {
	var sb strings.Builder
	for {
		chunk, err := br.ReadSlice('\n')
		sb.Write(chunk)
		if sb.Len() > limit {
			return "", tooLong
		}
		if err == nil {
			break
		}
		if err == bufio.ErrBufferFull {
			continue
		}
		return "", err
	}
	line := sb.String()
	line = strings.TrimSuffix(line, "\n")
	line = strings.TrimSuffix(line, "\r")
	return line, nil
}

// CanonicalKey converts a header field name to canonical form:
// "content-length" -> "Content-Length".
func CanonicalKey(key string) string {
	b := []byte(key)
	upper := true
	for i, c := range b {
		if upper && 'a' <= c && c <= 'z' {
			b[i] = c - ('a' - 'A')
		} else if !upper && 'A' <= c && c <= 'Z' {
			b[i] = c + ('a' - 'A')
		}
		upper = c == '-'
	}
	return string(b)
}
