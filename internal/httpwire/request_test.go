package httpwire

import (
	"bufio"
	"errors"
	"strings"
	"testing"
)

func reader(s string) *bufio.Reader { return bufio.NewReader(strings.NewReader(s)) }

func TestParseRequestLine(t *testing.T) {
	tests := []struct {
		name string
		line string
		want RequestLine
	}{
		{
			"static gif from the paper",
			"GET /img/flowers.gif HTTP/1.1",
			RequestLine{Method: "GET", Target: "/img/flowers.gif", Proto: "HTTP/1.1", Path: "/img/flowers.gif"},
		},
		{
			"dynamic with query from the paper",
			"GET /homepage?userid=5&popups=no HTTP/1.1",
			RequestLine{Method: "GET", Target: "/homepage?userid=5&popups=no", Proto: "HTTP/1.1",
				Path: "/homepage", RawQuery: "userid=5&popups=no"},
		},
		{
			"http 1.0",
			"POST /buy HTTP/1.0",
			RequestLine{Method: "POST", Target: "/buy", Proto: "HTTP/1.0", Path: "/buy"},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := ParseRequestLine(tt.line)
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.want {
				t.Fatalf("got %+v, want %+v", got, tt.want)
			}
		})
	}
}

func TestParseRequestLineErrors(t *testing.T) {
	for _, line := range []string{
		"",
		"GET",
		"GET /",
		"GET / HTTP/2.0",
		"get / HTTP/1.1",
		"GET  HTTP/1.1",
	} {
		if _, err := ParseRequestLine(line); err == nil {
			t.Errorf("ParseRequestLine(%q) succeeded, want error", line)
		}
	}
}

func TestIsStatic(t *testing.T) {
	tests := []struct {
		path string
		want bool
	}{
		{"/img/flowers.gif", true},
		{"/style.css", true},
		{"/homepage", false},
		{"/", false},
		{"/search", false},
		{"/a.b/c", false},       // extension in a directory, not the leaf
		{"/file.", false},       // trailing dot is not an extension
		{"/.hidden", false},     // leading dot is not an extension
		{"/img/it_3.jpg", true}, // numbered asset
	}
	for _, tt := range tests {
		rl := RequestLine{Path: tt.path}
		if got := rl.IsStatic(); got != tt.want {
			t.Errorf("IsStatic(%q) = %v, want %v", tt.path, got, tt.want)
		}
	}
}

func TestReadRequestLineOnlyConsumesFirstLine(t *testing.T) {
	br := reader("GET /home HTTP/1.1\r\nHost: x\r\n\r\n")
	rl, err := ReadRequestLine(br)
	if err != nil {
		t.Fatal(err)
	}
	if rl.Path != "/home" {
		t.Fatalf("Path = %q", rl.Path)
	}
	// Phase two must still see the headers.
	h, err := ReadHeaders(br)
	if err != nil {
		t.Fatal(err)
	}
	if h.Get("Host") != "x" {
		t.Fatalf("Host = %q, want x", h.Get("Host"))
	}
}

func TestReadHeaders(t *testing.T) {
	br := reader("User-Agent: Mozilla/1.7\r\naccept: text/html\r\nX-Multi:  padded value \r\n\r\n")
	h, err := ReadHeaders(br)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Get("user-agent"); got != "Mozilla/1.7" {
		t.Fatalf("User-Agent = %q", got)
	}
	if got := h.Get("Accept"); got != "text/html" {
		t.Fatalf("Accept = %q (case-insensitive get failed)", got)
	}
	if got := h.Get("X-Multi"); got != "padded value" {
		t.Fatalf("X-Multi = %q (whitespace not trimmed)", got)
	}
}

func TestReadHeadersMalformed(t *testing.T) {
	for _, raw := range []string{
		"no-colon-here\r\n\r\n",
		": empty-name\r\n\r\n",
		"Bad Name: v\r\n\r\n",
	} {
		if _, err := ReadHeaders(reader(raw)); err == nil {
			t.Errorf("ReadHeaders(%q) succeeded, want error", raw)
		}
	}
}

func TestReadRequestFull(t *testing.T) {
	raw := "GET /homepage?userid=5&popups=no HTTP/1.1\r\n" +
		"User-Agent: Mozilla/1.7\r\nAccept: text/html\r\n\r\n"
	req, err := ReadRequest(reader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if req.Query["userid"] != "5" || req.Query["popups"] != "no" {
		t.Fatalf("Query = %v", req.Query)
	}
	if !req.KeepAlive() {
		t.Fatal("HTTP/1.1 without Connection: close must keep alive")
	}
}

func TestReadRequestPostForm(t *testing.T) {
	body := "field=value&other=2"
	raw := "POST /buy HTTP/1.1\r\nContent-Type: application/x-www-form-urlencoded\r\n" +
		"Content-Length: " + itoa(len(body)) + "\r\n\r\n" + body
	req, err := ReadRequest(reader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if req.Query["field"] != "value" || req.Query["other"] != "2" {
		t.Fatalf("form not merged into Query: %v", req.Query)
	}
	if string(req.Body) != body {
		t.Fatalf("Body = %q", req.Body)
	}
}

func TestReadRequestBadContentLength(t *testing.T) {
	raw := "POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n"
	if _, err := ReadRequest(reader(raw)); err == nil {
		t.Fatal("bad Content-Length accepted")
	}
	raw = "POST /x HTTP/1.1\r\nContent-Length: -5\r\n\r\n"
	if _, err := ReadRequest(reader(raw)); err == nil {
		t.Fatal("negative Content-Length accepted")
	}
}

func TestReadRequestBodyTooBig(t *testing.T) {
	raw := "POST /x HTTP/1.1\r\nContent-Length: 9999999\r\n\r\n"
	if _, err := ReadRequest(reader(raw)); !errors.Is(err, ErrBodyTooBig) {
		t.Fatalf("err = %v, want ErrBodyTooBig", err)
	}
}

func TestKeepAliveSemantics(t *testing.T) {
	tests := []struct {
		proto, connHdr string
		want           bool
	}{
		{"HTTP/1.1", "", true},
		{"HTTP/1.1", "close", false},
		{"HTTP/1.1", "keep-alive", true},
		{"HTTP/1.0", "", false},
		{"HTTP/1.0", "keep-alive", true},
		{"HTTP/1.0", "close", false},
	}
	for _, tt := range tests {
		req := &Request{Line: RequestLine{Proto: tt.proto}, Header: Header{}}
		if tt.connHdr != "" {
			req.Header.Set("Connection", tt.connHdr)
		}
		if got := req.KeepAlive(); got != tt.want {
			t.Errorf("KeepAlive(%s, %q) = %v, want %v", tt.proto, tt.connHdr, got, tt.want)
		}
	}
}

func TestRequestLineTooLong(t *testing.T) {
	raw := "GET /" + strings.Repeat("a", MaxRequestLineBytes) + " HTTP/1.1\r\n\r\n"
	if _, err := ReadRequestLine(reader(raw)); !errors.Is(err, ErrLineTooLong) {
		t.Fatalf("err = %v, want ErrLineTooLong", err)
	}
}

func TestCanonicalKey(t *testing.T) {
	tests := map[string]string{
		"content-length": "Content-Length",
		"CONTENT-TYPE":   "Content-Type",
		"user-agent":     "User-Agent",
		"x":              "X",
		"aCCePt":         "Accept",
	}
	for in, want := range tests {
		if got := CanonicalKey(in); got != want {
			t.Errorf("CanonicalKey(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestLFOnlyLineEndingsAccepted(t *testing.T) {
	req, err := ReadRequest(reader("GET /a HTTP/1.1\nHost: h\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if req.Header.Get("Host") != "h" {
		t.Fatalf("Host = %q", req.Header.Get("Host"))
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
