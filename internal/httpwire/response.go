package httpwire

import (
	"bufio"
	"io"
	"strconv"
)

// Status codes used by the servers.
const (
	StatusOK                  = 200
	StatusFound               = 302
	StatusBadRequest          = 400
	StatusNotFound            = 404
	StatusMethodNotAllowed    = 405
	StatusInternalServerError = 500
	StatusServiceUnavailable  = 503
)

var statusText = map[int]string{
	StatusOK:                  "OK",
	StatusFound:               "Found",
	StatusBadRequest:          "Bad Request",
	StatusNotFound:            "Not Found",
	StatusMethodNotAllowed:    "Method Not Allowed",
	StatusInternalServerError: "Internal Server Error",
	StatusServiceUnavailable:  "Service Unavailable",
}

// StatusText returns the reason phrase for code, or "Unknown".
func StatusText(code int) string {
	if s, ok := statusText[code]; ok {
		return s
	}
	return "Unknown"
}

// Response is a complete HTTP response ready to be written. Rendering a
// template first and only then building the Response is what lets the
// modified server set Content-Length exactly — the capability the paper
// notes most dynamic-content servers lack.
type Response struct {
	Status      int
	ContentType string
	Body        []byte
	KeepAlive   bool
	Extra       Header // optional extra headers (e.g. Location)
}

// Write serializes the response, including an exact Content-Length.
func (r *Response) Write(w io.Writer) error {
	bw, ok := w.(*bufio.Writer)
	if !ok {
		bw = bufio.NewWriter(w)
	}
	ct := r.ContentType
	if ct == "" {
		ct = "text/html; charset=utf-8"
	}
	writeString(bw, "HTTP/1.1 ")
	writeString(bw, strconv.Itoa(r.Status))
	writeString(bw, " ")
	writeString(bw, StatusText(r.Status))
	writeString(bw, "\r\nServer: stagedweb\r\nContent-Type: ")
	writeString(bw, ct)
	writeString(bw, "\r\nContent-Length: ")
	writeString(bw, strconv.Itoa(len(r.Body)))
	if r.KeepAlive {
		writeString(bw, "\r\nConnection: keep-alive")
	} else {
		writeString(bw, "\r\nConnection: close")
	}
	for k, v := range r.Extra {
		writeString(bw, "\r\n")
		writeString(bw, k)
		writeString(bw, ": ")
		writeString(bw, v)
	}
	writeString(bw, "\r\n\r\n")
	bw.Write(r.Body)
	return bw.Flush()
}

func writeString(bw *bufio.Writer, s string) {
	// bufio.Writer records the first error; a final Flush reports it.
	_, _ = bw.WriteString(s)
}

// WriteError writes a minimal error response with a plain-text body.
func WriteError(w io.Writer, status int, msg string) error {
	resp := Response{
		Status:      status,
		ContentType: "text/plain; charset=utf-8",
		Body:        []byte(msg),
	}
	return resp.Write(w)
}
