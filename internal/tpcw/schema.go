// Package tpcw implements the TPC-W transactional web e-commerce
// benchmark — the online bookstore the paper evaluates with — as a
// template-based web application on this repository's stack.
//
// Like the authors (who implemented TPC-W from scratch in Django because
// existing implementations used traditional JSP/PHP-style content
// generation), this package implements the benchmark from scratch in the
// deferred-rendering handler style: every one of the 14 web interactions
// is a handler that performs its database queries and returns
// (template, data).
//
// The relational schema follows the TPC-W specification's ten tables,
// trimmed to the columns the 14 interactions touch. Index placement is
// what produces the paper's fast/slow page split:
//
//   - point lookups (primary keys, customer uname, order customer) are
//     indexed and fast;
//   - the best-sellers aggregation, the new-products listing, and the
//     LIKE-based search all scan, and are the paper's three "very slow"
//     pages;
//   - admin confirm updates the item table — read by nearly every other
//     page — and therefore queues on the table's write lock under load,
//     the paper's fourth slow page.
package tpcw

import "stagedweb/internal/sqldb"

// Table names.
const (
	TableItem     = "item"
	TableAuthor   = "author"
	TableCustomer = "customer"
	TableAddress  = "address"
	TableCountry  = "country"
	TableOrders   = "orders"
	TableOrderLn  = "order_line"
	TableCCXacts  = "cc_xacts"
	TableCart     = "shopping_cart"
	TableCartLn   = "shopping_cart_line"
)

// Schemas returns the TPC-W table definitions.
func Schemas() []sqldb.Schema {
	return []sqldb.Schema{
		{
			Table: TableItem,
			Columns: []sqldb.Column{
				{Name: "i_id", Type: sqldb.Int},
				{Name: "i_title", Type: sqldb.String},
				{Name: "i_a_id", Type: sqldb.Int},
				{Name: "i_pub_date", Type: sqldb.Time},
				{Name: "i_subject", Type: sqldb.String},
				{Name: "i_desc", Type: sqldb.String},
				{Name: "i_thumbnail", Type: sqldb.String},
				{Name: "i_image", Type: sqldb.String},
				{Name: "i_srp", Type: sqldb.Float},
				{Name: "i_cost", Type: sqldb.Float},
				{Name: "i_avail", Type: sqldb.Time},
				{Name: "i_stock", Type: sqldb.Int},
				{Name: "i_related1", Type: sqldb.Int},
				{Name: "i_related2", Type: sqldb.Int},
				{Name: "i_related3", Type: sqldb.Int},
				{Name: "i_related4", Type: sqldb.Int},
				{Name: "i_related5", Type: sqldb.Int},
			},
			PrimaryKey: "i_id",
			Indexes:    []string{"i_a_id"},
			// i_subject is deliberately unindexed: the TPC-W new-products
			// listing must scan, per the paper's slow-page analysis.
		},
		{
			Table: TableAuthor,
			Columns: []sqldb.Column{
				{Name: "a_id", Type: sqldb.Int},
				{Name: "a_fname", Type: sqldb.String},
				{Name: "a_lname", Type: sqldb.String},
				{Name: "a_bio", Type: sqldb.String},
			},
			PrimaryKey: "a_id",
		},
		{
			Table: TableCustomer,
			Columns: []sqldb.Column{
				{Name: "c_id", Type: sqldb.Int},
				{Name: "c_uname", Type: sqldb.String},
				{Name: "c_passwd", Type: sqldb.String},
				{Name: "c_fname", Type: sqldb.String},
				{Name: "c_lname", Type: sqldb.String},
				{Name: "c_email", Type: sqldb.String},
				{Name: "c_since", Type: sqldb.Time},
				{Name: "c_discount", Type: sqldb.Float},
				{Name: "c_addr_id", Type: sqldb.Int},
			},
			PrimaryKey: "c_id",
			Indexes:    []string{"c_uname"},
		},
		{
			Table: TableAddress,
			Columns: []sqldb.Column{
				{Name: "addr_id", Type: sqldb.Int},
				{Name: "addr_street1", Type: sqldb.String},
				{Name: "addr_city", Type: sqldb.String},
				{Name: "addr_state", Type: sqldb.String},
				{Name: "addr_zip", Type: sqldb.String},
				{Name: "addr_co_id", Type: sqldb.Int},
			},
			PrimaryKey: "addr_id",
		},
		{
			Table: TableCountry,
			Columns: []sqldb.Column{
				{Name: "co_id", Type: sqldb.Int},
				{Name: "co_name", Type: sqldb.String},
			},
			PrimaryKey: "co_id",
		},
		{
			Table: TableOrders,
			Columns: []sqldb.Column{
				{Name: "o_id", Type: sqldb.Int},
				{Name: "o_c_id", Type: sqldb.Int},
				{Name: "o_date", Type: sqldb.Time},
				{Name: "o_sub_total", Type: sqldb.Float},
				{Name: "o_total", Type: sqldb.Float},
				{Name: "o_ship_type", Type: sqldb.String},
				{Name: "o_ship_date", Type: sqldb.Time},
				{Name: "o_bill_addr_id", Type: sqldb.Int},
				{Name: "o_ship_addr_id", Type: sqldb.Int},
				{Name: "o_status", Type: sqldb.String},
			},
			PrimaryKey: "o_id",
			Indexes:    []string{"o_c_id"},
		},
		{
			Table: TableOrderLn,
			Columns: []sqldb.Column{
				{Name: "ol_id", Type: sqldb.Int},
				{Name: "ol_o_id", Type: sqldb.Int},
				{Name: "ol_i_id", Type: sqldb.Int},
				{Name: "ol_qty", Type: sqldb.Int},
				{Name: "ol_discount", Type: sqldb.Float},
				{Name: "ol_comments", Type: sqldb.String},
			},
			PrimaryKey: "ol_id",
			Indexes:    []string{"ol_o_id"},
			// ol_i_id and the recent-order range filter are unindexed:
			// the best-sellers aggregation must scan, per the paper.
		},
		{
			Table: TableCCXacts,
			Columns: []sqldb.Column{
				{Name: "cx_o_id", Type: sqldb.Int},
				{Name: "cx_type", Type: sqldb.String},
				{Name: "cx_num", Type: sqldb.String},
				{Name: "cx_name", Type: sqldb.String},
				{Name: "cx_expire", Type: sqldb.Time},
				{Name: "cx_xact_amt", Type: sqldb.Float},
				{Name: "cx_xact_date", Type: sqldb.Time},
				{Name: "cx_co_id", Type: sqldb.Int},
			},
			PrimaryKey: "cx_o_id",
		},
		{
			Table: TableCart,
			Columns: []sqldb.Column{
				{Name: "sc_id", Type: sqldb.Int},
				{Name: "sc_time", Type: sqldb.Time},
			},
			PrimaryKey: "sc_id",
		},
		{
			Table: TableCartLn,
			Columns: []sqldb.Column{
				{Name: "scl_id", Type: sqldb.Int},
				{Name: "scl_sc_id", Type: sqldb.Int},
				{Name: "scl_i_id", Type: sqldb.Int},
				{Name: "scl_qty", Type: sqldb.Int},
			},
			PrimaryKey: "scl_id",
			Indexes:    []string{"scl_sc_id"},
		},
	}
}

// CreateTables registers all TPC-W tables on db.
func CreateTables(db *sqldb.DB) error {
	for _, s := range Schemas() {
		if err := db.CreateTable(s); err != nil {
			return err
		}
	}
	return nil
}

// CreateExtraIndexes builds the secondary indexes the paper's schema
// deliberately leaves out, re-running the quick/lengthy boundary under
// indexing (the indexes=on experiment):
//
//   - order_line.ol_o_id upgrades from hash to ordered, so the
//     best-sellers recent-window filter (ol_o_id > ?) becomes an index
//     range scan instead of a full scan of every order line;
//   - item.i_subject gains a hash index, so the new-products listing
//     and subject search probe 1/24th of the item table;
//   - item.i_pub_date gains an ordered index, serving pub-date ranges
//     and ORDER BY walks.
//
// The title/author LIKE searches stay unindexable — infix patterns
// cannot use an ordered index — preserving the paper's contrast: some
// lengthy pages are lengthy no matter the schema.
//
// Call it on the primary before replicas are cloned (CloneSnapshot
// copies index definitions), or on any backend afterwards.
func CreateExtraIndexes(db *sqldb.DB) error {
	for _, ix := range []struct {
		table, col string
		ordered    bool
	}{
		{TableOrderLn, "ol_o_id", true},
		{TableItem, "i_subject", false},
		{TableItem, "i_pub_date", true},
	} {
		if err := db.CreateIndex(ix.table, ix.col, ix.ordered); err != nil {
			return err
		}
	}
	return nil
}

// Subjects are the 24 TPC-W book subjects.
var Subjects = []string{
	"ARTS", "BIOGRAPHIES", "BUSINESS", "CHILDREN", "COMPUTERS", "COOKING",
	"HEALTH", "HISTORY", "HOME", "HUMOR", "LITERATURE", "MYSTERY",
	"NON-FICTION", "PARENTING", "POLITICS", "REFERENCE", "RELIGION",
	"ROMANCE", "SELF-HELP", "SCIENCE-NATURE", "SCIENCE-FICTION", "SPORTS",
	"TRAVEL", "YOUTH",
}
