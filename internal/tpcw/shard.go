package tpcw

import (
	"strconv"
	"strings"
)

// This file is the TPC-W sharding policy: which tables partition, which
// replicate, and how a request maps to its owning partition key. The
// cluster balancer is generic — it consumes these primitives through a
// RouteFunc adapter (see internal/harness) and never imports tpcw.
//
// Partitioning follows the data's natural affinity:
//
//   - customer, orders, order_line, cc_xacts partition by the owning
//     customer id — every registered-user interaction names its customer
//     (c_id or uname), so carts, checkouts, and order displays are
//     single-shard.
//   - country, author, item, address replicate to every shard — the
//     catalog is read by every page, and the one page that writes it
//     (admin_response) fans out so the update applies on every shard.
//   - best_sellers fans out because it aggregates order_line, which is
//     partitioned; each shard answers over its own order slice.

// CustomerKey is the partition key for a customer id; the same key
// drives both data placement (PopulateShard's owns func) and request
// routing (ShardKey), so a customer's rows and requests land on the
// same shard by construction.
func CustomerKey(cID int) string { return "customer/" + strconv.Itoa(cID) }

// customerForUname inverts Uname ("user17" -> 17).
func customerForUname(uname string) (int, bool) {
	rest, ok := strings.CutPrefix(uname, "user")
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n < 1 {
		return 0, false
	}
	return n, true
}

// ShardKey maps one request (path plus query) to its partition key and
// reports whether it must instead fan out to every shard. An empty key
// with fanout false means the request has no affinity (any shard can
// answer it from replicated tables).
func ShardKey(path string, query map[string]string) (key string, fanout bool) {
	switch path {
	case PageBestSellers, PageAdminResponse:
		return "", true
	}
	if cid := intParam(query, "c_id", 0); cid > 0 {
		return CustomerKey(cid), false
	}
	if uname := query["uname"]; uname != "" {
		if cid, ok := customerForUname(uname); ok {
			return CustomerKey(cid), false
		}
	}
	return "", false
}
