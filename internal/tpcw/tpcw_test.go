package tpcw

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"stagedweb/internal/server"
	"stagedweb/internal/sqldb"
)

// smallCfg keeps population fast for unit tests.
var smallCfg = PopulateConfig{Items: 200, Customers: 50, Orders: 60}

// newBookstore builds a populated database and app for tests.
func newBookstore(t *testing.T) (*App, *sqldb.Conn) {
	t.Helper()
	db := sqldb.Open(sqldb.Options{Cost: sqldb.ZeroCostModel()})
	if err := CreateTables(db); err != nil {
		t.Fatal(err)
	}
	counts, err := Populate(db, smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	app := NewApp(counts, nil)
	conn := db.Connect()
	t.Cleanup(conn.Close)
	return app, conn
}

// call runs one handler and renders its deferred template, verifying the
// full handler->template path.
func call(t *testing.T, app *App, conn *sqldb.Conn, page string, query map[string]string) (string, *server.Result) {
	t.Helper()
	h, ok := app.Handler(page)
	if !ok {
		t.Fatalf("no handler for %s", page)
	}
	if query == nil {
		query = map[string]string{}
	}
	res, err := h(&server.Request{Path: page, Query: query, DB: conn})
	if err != nil {
		t.Fatalf("%s: %v", page, err)
	}
	if res.Body != "" {
		return res.Body, res
	}
	out, err := app.Templates().Render(res.Template, res.Data)
	if err != nil {
		t.Fatalf("%s render: %v", page, err)
	}
	return out, res
}

func TestPopulateCounts(t *testing.T) {
	db := sqldb.Open(sqldb.Options{Cost: sqldb.ZeroCostModel()})
	if err := CreateTables(db); err != nil {
		t.Fatal(err)
	}
	counts, err := Populate(db, smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	if counts.Items != 200 || counts.Customers != 50 || counts.Orders != 60 {
		t.Fatalf("counts = %+v", counts)
	}
	if counts.OrderLines < counts.Orders {
		t.Fatalf("order lines %d < orders %d", counts.OrderLines, counts.Orders)
	}
	for table, want := range map[string]int{
		TableItem: 200, TableCustomer: 50, TableOrders: 60,
		TableCountry: len(countryNames), TableCCXacts: 60,
	} {
		n, err := db.TableSize(table)
		if err != nil {
			t.Fatal(err)
		}
		if n != want {
			t.Fatalf("%s rows = %d, want %d", table, n, want)
		}
	}
}

func TestPopulateDeterministic(t *testing.T) {
	titles := func() string {
		db := sqldb.Open(sqldb.Options{Cost: sqldb.ZeroCostModel()})
		if err := CreateTables(db); err != nil {
			t.Fatal(err)
		}
		if _, err := Populate(db, smallCfg); err != nil {
			t.Fatal(err)
		}
		c := db.Connect()
		defer c.Close()
		rs, err := c.Query("SELECT i_title FROM item WHERE i_id = 42")
		if err != nil {
			t.Fatal(err)
		}
		return rs.Str(0, "i_title")
	}
	if a, b := titles(), titles(); a != b || a == "" {
		t.Fatalf("population not deterministic: %q vs %q", a, b)
	}
}

func TestAllFourteenPagesRender(t *testing.T) {
	app, conn := newBookstore(t)
	for _, page := range Pages {
		out, _ := call(t, app, conn, page, nil)
		if !strings.Contains(out, "<html>") && !strings.Contains(out, "<h2>") {
			t.Errorf("%s output does not look like HTML: %.80q", page, out)
		}
	}
}

func TestAllPagesDeferRendering(t *testing.T) {
	// Every page must return an unrendered template (the paper's
	// one-line modification), so the staged server can render it in the
	// rendering pool.
	app, conn := newBookstore(t)
	for _, page := range Pages {
		h, _ := app.Handler(page)
		res, err := h(&server.Request{Path: page, Query: map[string]string{}, DB: conn})
		if err != nil {
			t.Fatalf("%s: %v", page, err)
		}
		if !res.Deferred() {
			t.Errorf("%s did not defer rendering (template=%q body=%q)", page, res.Template, res.Body)
		}
	}
}

func TestHomeGreetsCustomer(t *testing.T) {
	app, conn := newBookstore(t)
	out, _ := call(t, app, conn, PageHome, map[string]string{"c_id": "7"})
	if !strings.Contains(out, "Welcome back,") {
		t.Fatalf("home did not greet customer: %.200s", out)
	}
	if !strings.Contains(out, "/img/thumb_") {
		t.Fatal("home has no promotional thumbnails")
	}
}

func TestProductDetailShowsItem(t *testing.T) {
	app, conn := newBookstore(t)
	out, _ := call(t, app, conn, PageProductDetail, map[string]string{"i_id": "17"})
	if !strings.Contains(out, "#17") {
		t.Fatalf("product detail missing title for item 17: %.300s", out)
	}
	if !strings.Contains(out, "Our price: $") {
		t.Fatal("product detail missing price")
	}
}

func TestProductDetailUnknownItem(t *testing.T) {
	app, conn := newBookstore(t)
	h, _ := app.Handler(PageProductDetail)
	res, err := h(&server.Request{Path: PageProductDetail, Query: map[string]string{"i_id": "99999"}, DB: conn})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != 404 {
		t.Fatalf("status = %d, want 404", res.Status)
	}
}

func TestShoppingCartFlow(t *testing.T) {
	app, conn := newBookstore(t)
	// New cart with an item.
	out, res := call(t, app, conn, PageShoppingCart, map[string]string{"i_id": "5", "qty": "2"})
	if !strings.Contains(out, "#5") {
		t.Fatalf("cart missing added item: %.300s", out)
	}
	scID, ok := res.Data["sc_id"].(int)
	if !ok || scID == 0 {
		t.Fatalf("no cart id in %v", res.Data["sc_id"])
	}
	// Adding the same item again increments the quantity.
	_, res2 := call(t, app, conn, PageShoppingCart, map[string]string{
		"sc_id": itoa(scID), "i_id": "5", "qty": "1"})
	lines := res2.Data["lines"].([]map[string]any)
	if len(lines) != 1 {
		t.Fatalf("lines = %d, want 1 (merged)", len(lines))
	}
	if qty := lines[0]["scl_qty"].(int64); qty != 3 {
		t.Fatalf("merged qty = %d, want 3", qty)
	}
	if res2.Data["sc_sub_total"].(float64) <= 0 {
		t.Fatal("zero subtotal")
	}
}

func TestBuyFlowCreatesOrder(t *testing.T) {
	app, conn := newBookstore(t)
	_, cartRes := call(t, app, conn, PageShoppingCart, map[string]string{"i_id": "9", "qty": "1"})
	scID := cartRes.Data["sc_id"].(int)

	out, _ := call(t, app, conn, PageBuyRequest, map[string]string{
		"sc_id": itoa(scID), "uname": Uname(3), "passwd": "pw3"})
	if !strings.Contains(out, "Confirm your purchase") {
		t.Fatalf("buy request page wrong: %.200s", out)
	}

	before, _ := conn.Query("SELECT COUNT(*) AS n FROM orders")
	_, confirmRes := call(t, app, conn, PageBuyConfirm, map[string]string{
		"sc_id": itoa(scID), "c_id": "3"})
	after, _ := conn.Query("SELECT COUNT(*) AS n FROM orders")
	if after.Int(0, "n") != before.Int(0, "n")+1 {
		t.Fatalf("order not created: %d -> %d", before.Int(0, "n"), after.Int(0, "n"))
	}
	oID := confirmRes.Data["o_id"].(int64)
	// Order lines copied from the cart.
	ol, err := conn.Query("SELECT * FROM order_line WHERE ol_o_id = ?", oID)
	if err != nil {
		t.Fatal(err)
	}
	if ol.Len() != 1 {
		t.Fatalf("order lines = %d, want 1", ol.Len())
	}
	// Cart emptied.
	cart, err := conn.Query("SELECT * FROM shopping_cart_line WHERE scl_sc_id = ?", scID)
	if err != nil {
		t.Fatal(err)
	}
	if cart.Len() != 0 {
		t.Fatalf("cart still has %d lines", cart.Len())
	}
	// Credit card transaction recorded.
	cc, err := conn.Query("SELECT * FROM cc_xacts WHERE cx_o_id = ?", oID)
	if err != nil {
		t.Fatal(err)
	}
	if cc.Len() != 1 {
		t.Fatal("cc_xact missing")
	}
}

func TestOrderDisplayShowsLastOrder(t *testing.T) {
	app, conn := newBookstore(t)
	// Find a customer with at least one order.
	rs, err := conn.Query("SELECT o_c_id FROM orders WHERE o_id = 1")
	if err != nil {
		t.Fatal(err)
	}
	cid := rs.Int(0, "o_c_id")
	out, res := call(t, app, conn, PageOrderDisplay, map[string]string{"uname": Uname(int(cid))})
	if res.Data["o_id"] == nil {
		t.Fatalf("no order shown for customer %d: %.200s", cid, out)
	}
	if !strings.Contains(out, "Order ") {
		t.Fatalf("order display malformed: %.200s", out)
	}
}

func TestExecuteSearchFindsMatches(t *testing.T) {
	app, conn := newBookstore(t)
	out, res := call(t, app, conn, PageExecuteSearch, map[string]string{
		"field": "title", "terms": "THE"})
	results := res.Data["results"].([]map[string]any)
	if len(results) == 0 {
		t.Fatal("search for common word found nothing")
	}
	if len(results) > 50 {
		t.Fatalf("results = %d, exceeds LIMIT 50", len(results))
	}
	if !strings.Contains(out, "Results for") {
		t.Fatalf("search page malformed: %.200s", out)
	}
	// Author and subject search paths.
	_, res = call(t, app, conn, PageExecuteSearch, map[string]string{"field": "author", "terms": "s"})
	if res.Data["field"] != "author" {
		t.Fatal("author field not honored")
	}
	_, res = call(t, app, conn, PageExecuteSearch, map[string]string{"field": "subject", "terms": "arts"})
	if res.Data["field"] != "subject" {
		t.Fatal("subject field not honored")
	}
}

func TestNewProductsSortedByDate(t *testing.T) {
	app, conn := newBookstore(t)
	_, res := call(t, app, conn, PageNewProducts, map[string]string{"subject": Subjects[0]})
	results := res.Data["results"].([]map[string]any)
	if len(results) == 0 {
		t.Fatal("no new products for subject")
	}
	for i := 1; i < len(results); i++ {
		prev := results[i-1]["i_pub_date"].(time.Time)
		cur := results[i]["i_pub_date"].(time.Time)
		if cur.After(prev) {
			t.Fatalf("results not sorted by pub date desc at %d", i)
		}
	}
}

func TestBestSellersAggregates(t *testing.T) {
	app, conn := newBookstore(t)
	// With a small population every subject may not have sales; find one
	// that does by checking a few subjects.
	found := false
	for _, subj := range Subjects {
		_, res := call(t, app, conn, PageBestSellers, map[string]string{"subject": subj})
		results := res.Data["results"].([]map[string]any)
		if len(results) == 0 {
			continue
		}
		found = true
		for i := 1; i < len(results); i++ {
			if results[i]["qty"].(int64) > results[i-1]["qty"].(int64) {
				t.Fatalf("best sellers not sorted by qty desc")
			}
		}
		break
	}
	if !found {
		t.Fatal("no subject had any best sellers")
	}
}

func TestAdminFlowUpdatesItem(t *testing.T) {
	app, conn := newBookstore(t)
	out, _ := call(t, app, conn, PageAdminRequest, map[string]string{"i_id": "11"})
	if !strings.Contains(out, "Edit item 11") {
		t.Fatalf("admin request malformed: %.200s", out)
	}
	_, res := call(t, app, conn, PageAdminResponse, map[string]string{
		"i_id": "11", "cost": "55.55"})
	if res.Data["i_cost"].(float64) != 55.55 {
		t.Fatalf("cost not updated: %v", res.Data["i_cost"])
	}
	rs, err := conn.Query("SELECT i_cost, i_related1 FROM item WHERE i_id = 11")
	if err != nil {
		t.Fatal(err)
	}
	if rs.Float(0, "i_cost") != 55.55 {
		t.Fatalf("persisted cost = %v", rs.Float(0, "i_cost"))
	}
	if rs.Int(0, "i_related1") != 12 {
		t.Fatalf("related1 = %d, want 12", rs.Int(0, "i_related1"))
	}
}

func TestStaticAssetsServed(t *testing.T) {
	app, _ := newBookstore(t)
	for _, path := range []string{"/img/banner.gif", "/img/footer.gif", "/img/thumb_0.gif", "/img/image_99.gif"} {
		body, ct, ok := app.Static(path)
		if !ok {
			t.Fatalf("missing static %s", path)
		}
		if ct != "image/gif" || !strings.HasPrefix(string(body[:6]), "GIF89a") {
			t.Fatalf("%s not a gif", path)
		}
	}
	if _, _, ok := app.Static("/img/nope.gif"); ok {
		t.Fatal("unknown static served")
	}
}

func TestPagesEmbedImageReferences(t *testing.T) {
	// The workload generator fetches embedded images; pages must
	// reference resolvable static paths.
	app, conn := newBookstore(t)
	out, _ := call(t, app, conn, PageHome, nil)
	if !strings.Contains(out, `src="/img/banner.gif"`) {
		t.Fatal("home missing banner image")
	}
	n := strings.Count(out, `src="/img/`)
	if n < 5 {
		t.Fatalf("home references %d images, want >= 5", n)
	}
}

func TestMixDistribution(t *testing.T) {
	m := NewMix(BrowsingMix)
	rng := rand.New(rand.NewSource(1))
	counts := map[string]int{}
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[m.Pick(rng)]++
	}
	for _, w := range BrowsingMix {
		got := float64(counts[w.Page]) / draws * 100
		if got < w.Weight*0.8-0.05 || got > w.Weight*1.2+0.05 {
			t.Errorf("%s frequency %.2f%%, want ~%.2f%%", w.Page, got, w.Weight)
		}
	}
}

func TestMixWeightsSumTo100(t *testing.T) {
	total := 0.0
	for _, w := range BrowsingMix {
		total += w.Weight
	}
	if total < 99.99 || total > 100.01 {
		t.Fatalf("browsing mix sums to %v, want 100", total)
	}
}

func TestMixValidation(t *testing.T) {
	for name, weights := range map[string][]PageWeight{
		"empty":       {},
		"zero weight": {{Page: "/x", Weight: 0}},
		"neg weight":  {{Page: "/x", Weight: -1}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s mix did not panic", name)
				}
			}()
			NewMix(weights)
		}()
	}
}

func TestPageTitle(t *testing.T) {
	if got := PageTitle(PageBuyConfirm); got != "TPC-W buy confirm" {
		t.Fatalf("PageTitle = %q", got)
	}
	if got := PageTitle(PageHome); got != "TPC-W home" {
		t.Fatalf("PageTitle = %q", got)
	}
}

func TestSlowPagesMatchPaper(t *testing.T) {
	want := []string{PageBestSellers, PageExecuteSearch, PageNewProducts, PageAdminResponse}
	if len(SlowPages) != len(want) {
		t.Fatalf("SlowPages = %v", SlowPages)
	}
	for _, p := range want {
		if !SlowPages[p] {
			t.Fatalf("%s missing from SlowPages", p)
		}
	}
}

func itoa(n int) string {
	return fmtInt(n)
}

func fmtInt(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}

func TestParamHelpers(t *testing.T) {
	q := map[string]string{"a": "5", "bad": "x", "neg": "-3", "f": "2.5"}
	if got := intParam(q, "a", 1); got != 5 {
		t.Fatalf("intParam = %d", got)
	}
	if got := intParam(q, "bad", 7); got != 7 {
		t.Fatalf("intParam bad = %d", got)
	}
	if got := intParam(q, "neg", 7); got != 7 {
		t.Fatalf("intParam negative = %d", got)
	}
	if got := intParam(q, "missing", 9); got != 9 {
		t.Fatalf("intParam missing = %d", got)
	}
	if got := floatParam(q, "f", 1); got != 2.5 {
		t.Fatalf("floatParam = %v", got)
	}
	if got := floatParam(q, "bad", 1.5); got != 1.5 {
		t.Fatalf("floatParam bad = %v", got)
	}
}

func TestAppAccessorsAndRotation(t *testing.T) {
	app, _ := newBookstore(t)
	if app.Items() != smallCfg.Items || app.Customers() != smallCfg.Customers {
		t.Fatalf("accessors: %d/%d", app.Items(), app.Customers())
	}
	seen := map[int]bool{}
	for i := 0; i < 10; i++ {
		seen[app.defaultItem()] = true
	}
	if len(seen) < 5 {
		t.Fatalf("defaultItem barely rotates: %v", seen)
	}
	for i := 0; i < 1000; i++ {
		if id := app.defaultCustomer(); id < 1 || id > smallCfg.Customers {
			t.Fatalf("defaultCustomer out of range: %d", id)
		}
	}
}

func TestUnameRoundTrip(t *testing.T) {
	app, conn := newBookstore(t)
	_ = app
	rs, err := conn.Query("SELECT c_id FROM customer WHERE c_uname = ?", Uname(17))
	if err != nil {
		t.Fatal(err)
	}
	if rs.Int(0, "c_id") != 17 {
		t.Fatalf("uname lookup: %v", rs.Rows)
	}
}
