package tpcw

import (
	"testing"

	"stagedweb/internal/sqldb"
)

// shardOwns builds a simple modular owner function for partition tests;
// the real harness uses the cluster ring, but the partitioner contract
// only needs SOME deterministic owns predicate.
func shardOwns(shard, shards int) func(int) bool {
	return func(cID int) bool { return cID%shards == shard }
}

func populateOneShard(t *testing.T, shard, shards int) (*sqldb.DB, Counts) {
	t.Helper()
	db := sqldb.Open(sqldb.Options{Cost: sqldb.ZeroCostModel()})
	if err := CreateTables(db); err != nil {
		t.Fatal(err)
	}
	counts, err := PopulateShard(db, smallCfg, shardOwns(shard, shards))
	if err != nil {
		t.Fatal(err)
	}
	return db, counts
}

// TestPopulateShardPartition checks the partitioner's core contract:
// shard slices of the partitioned tables are disjoint and union to the
// full dataset, replicated tables appear in full on every shard, and
// the reported counts stay global.
func TestPopulateShardPartition(t *testing.T) {
	const shards = 3

	full := sqldb.Open(sqldb.Options{Cost: sqldb.ZeroCostModel()})
	if err := CreateTables(full); err != nil {
		t.Fatal(err)
	}
	fullCounts, err := Populate(full, smallCfg)
	if err != nil {
		t.Fatal(err)
	}

	partitioned := []string{TableCustomer, TableOrders, TableOrderLn, TableCCXacts}
	replicated := []string{TableCountry, TableAuthor, TableItem, TableAddress}
	sums := map[string]int{}
	for s := 0; s < shards; s++ {
		db, counts := populateOneShard(t, s, shards)
		if counts != fullCounts {
			t.Fatalf("shard %d counts = %+v, want the global %+v", s, counts, fullCounts)
		}
		for _, table := range partitioned {
			n, err := db.TableSize(table)
			if err != nil {
				t.Fatal(err)
			}
			if n == 0 {
				t.Errorf("shard %d owns no %s rows", s, table)
			}
			sums[table] += n
		}
		for _, table := range replicated {
			n, err := db.TableSize(table)
			if err != nil {
				t.Fatal(err)
			}
			want, err := full.TableSize(table)
			if err != nil {
				t.Fatal(err)
			}
			if n != want {
				t.Errorf("shard %d has %d %s rows, want the full %d (replicated)", s, n, table, want)
			}
		}
	}
	for _, table := range partitioned {
		want, err := full.TableSize(table)
		if err != nil {
			t.Fatal(err)
		}
		if sums[table] != want {
			t.Errorf("%s shard slices sum to %d rows, want %d (disjoint union of the full table)",
				table, sums[table], want)
		}
	}
}

// TestPopulateShardRowsMatchFull checks rng-stream stability: the rows a
// shard owns are byte-for-byte the rows a full Populate generates —
// skipped inserts must not shift the random value stream.
func TestPopulateShardRowsMatchFull(t *testing.T) {
	full := sqldb.Open(sqldb.Options{Cost: sqldb.ZeroCostModel()})
	if err := CreateTables(full); err != nil {
		t.Fatal(err)
	}
	if _, err := Populate(full, smallCfg); err != nil {
		t.Fatal(err)
	}
	fc := full.Connect()
	defer fc.Close()

	db, _ := populateOneShard(t, 1, 2)
	sc := db.Connect()
	defer sc.Close()

	// Every customer the shard owns must match the full dataset's row,
	// random fields included.
	rows, err := sc.Query("SELECT c_id, c_fname, c_lname, c_discount, c_addr_id FROM customer")
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() == 0 {
		t.Fatal("shard owns no customers")
	}
	for i := 0; i < rows.Len(); i++ {
		cID := rows.Int(i, "c_id")
		want, err := fc.Query(
			"SELECT c_fname, c_lname, c_discount, c_addr_id FROM customer WHERE c_id = ?", cID)
		if err != nil {
			t.Fatal(err)
		}
		if want.Len() != 1 {
			t.Fatalf("customer %d missing from the full dataset", cID)
		}
		if rows.Str(i, "c_fname") != want.Str(0, "c_fname") ||
			rows.Str(i, "c_lname") != want.Str(0, "c_lname") ||
			rows.Int(i, "c_addr_id") != want.Int(0, "c_addr_id") {
			t.Errorf("customer %d differs between sharded and full population (rng stream shifted?)", cID)
		}
	}

	// Same for the shard's orders: ids and randomized columns line up.
	orders, err := sc.Query("SELECT o_id, o_c_id, o_ship_type, o_bill_addr_id FROM orders")
	if err != nil {
		t.Fatal(err)
	}
	if orders.Len() == 0 {
		t.Fatal("shard owns no orders")
	}
	for i := 0; i < orders.Len(); i++ {
		oID := orders.Int(i, "o_id")
		want, err := fc.Query(
			"SELECT o_c_id, o_ship_type, o_bill_addr_id FROM orders WHERE o_id = ?", oID)
		if err != nil {
			t.Fatal(err)
		}
		if want.Len() != 1 {
			t.Fatalf("order %d missing from the full dataset", oID)
		}
		if orders.Int(i, "o_c_id") != want.Int(0, "o_c_id") ||
			orders.Str(i, "o_ship_type") != want.Str(0, "o_ship_type") ||
			orders.Int(i, "o_bill_addr_id") != want.Int(0, "o_bill_addr_id") {
			t.Errorf("order %d differs between sharded and full population (rng stream shifted?)", oID)
		}
		if cID := int(orders.Int(i, "o_c_id")); !shardOwns(1, 2)(cID) {
			t.Errorf("order %d belongs to customer %d, which shard 1 does not own", oID, cID)
		}
	}
}

func TestShardKey(t *testing.T) {
	cases := []struct {
		path   string
		query  map[string]string
		key    string
		fanout bool
	}{
		{PageBestSellers, map[string]string{"subject": "ARTS"}, "", true},
		{PageAdminResponse, map[string]string{"i_id": "3", "cost": "9.99"}, "", true},
		{PageHome, map[string]string{"c_id": "17"}, CustomerKey(17), false},
		{PageShoppingCart, map[string]string{"c_id": "4", "i_id": "9"}, CustomerKey(4), false},
		{PageOrderDisplay, map[string]string{"uname": Uname(23), "passwd": "pw23"}, CustomerKey(23), false},
		{PageBuyRequest, map[string]string{"uname": Uname(8), "c_id": "8"}, CustomerKey(8), false},
		{PageProductDetail, map[string]string{"i_id": "12"}, "", false},
		{PageSearchRequest, nil, "", false},
		{"/img/thumb_1.gif", nil, "", false},
	}
	for _, c := range cases {
		key, fanout := ShardKey(c.path, c.query)
		if key != c.key || fanout != c.fanout {
			t.Errorf("ShardKey(%s, %v) = (%q, %v), want (%q, %v)",
				c.path, c.query, key, fanout, c.key, c.fanout)
		}
	}
}
