package tpcw

// Templates returns the Django-style template sources for the 14 TPC-W
// web interactions. Every page extends base.html (banner, search box,
// footer) and renders its data context — the same presentation/content
// split Figure 3 of the paper illustrates.
func Templates() map[string]string {
	return map[string]string{
		"base.html": `<html>
<head><title>TPC-W Bookstore - {% block title %}Welcome{% endblock %}</title></head>
<body>
<img src="/img/banner.gif" alt="TPC-W bookstore">
{% include "navbar.html" %}
<hr>
{% block content %}{% endblock %}
<hr>
{% include "footer.html" %}
</body>
</html>`,

		"navbar.html": `<div class="nav">
<a href="/home{% if c_id %}?c_id={{ c_id }}{% endif %}">Home</a> |
<a href="/search_request">Search</a> |
<a href="/shopping_cart">Cart</a> |
<a href="/order_inquiry">Order Status</a>
</div>`,

		"footer.html": `<div class="footer"><img src="/img/footer.gif" alt=""> TPC-W transactional web e-commerce benchmark bookstore.</div>`,

		"promo.html": `<div class="promo">
{% for p in promotions %}
<a href="/product_detail?i_id={{ p.i_id }}"><img src="{{ p.i_thumbnail }}" alt="{{ p.i_title }}"></a>
{% endfor %}
</div>`,

		"home.html": `{% extends "base.html" %}
{% block title %}Home{% endblock %}
{% block content %}
{% if c_fname %}<h2>Welcome back, {{ c_fname }} {{ c_lname }}!</h2>{% else %}<h2>Welcome to the TPC-W Bookstore</h2>{% endif %}
{% include "promo.html" %}
<ul>
{% for s in subjects %}
<li><a href="/new_products?subject={{ s|urlencode }}">{{ s|title }}</a></li>
{% endfor %}
</ul>
{% endblock %}`,

		"shopping_cart.html": `{% extends "base.html" %}
{% block title %}Shopping Cart{% endblock %}
{% block content %}
<h2>Shopping Cart {{ sc_id }}</h2>
<table border="1">
<tr><th>Item</th><th>Qty</th><th>Cost</th><th>Subtotal</th></tr>
{% for line in lines %}
<tr>
<td><a href="/product_detail?i_id={{ line.i_id }}">{{ line.i_title }}</a></td>
<td>{{ line.scl_qty }}</td>
<td>${{ line.i_cost|floatformat:2 }}</td>
<td>${{ line.subtotal|floatformat:2 }}</td>
</tr>
{% empty %}
<tr><td colspan="4">Your cart is empty.</td></tr>
{% endfor %}
</table>
<p>Subtotal: ${{ sc_sub_total|floatformat:2 }}</p>
<p><a href="/customer_registration?sc_id={{ sc_id }}">Checkout</a></p>
{% include "promo.html" %}
{% endblock %}`,

		"customer_registration.html": `{% extends "base.html" %}
{% block title %}Customer Registration{% endblock %}
{% block content %}
<h2>Checkout: who are you?</h2>
<form action="/buy_request" method="get">
<input type="hidden" name="sc_id" value="{{ sc_id }}">
Returning customer: <input name="uname"> password <input name="passwd" type="password">
<br>Or register as a new customer.
<input type="submit" value="Continue">
</form>
{% endblock %}`,

		"buy_request.html": `{% extends "base.html" %}
{% block title %}Buy Request{% endblock %}
{% block content %}
<h2>Confirm your purchase</h2>
<p>Customer: {{ c_fname }} {{ c_lname }} ({{ c_uname }}), discount {{ c_discount|floatformat:2 }}</p>
<p>Billing address: {{ addr_street1 }}, {{ addr_city }}, {{ addr_state }} {{ addr_zip }}, {{ co_name }}</p>
<table border="1">
{% for line in lines %}
<tr><td>{{ line.i_title }}</td><td>{{ line.scl_qty }}</td><td>${{ line.subtotal|floatformat:2 }}</td></tr>
{% endfor %}
</table>
<p>Subtotal: ${{ sc_sub_total|floatformat:2 }} Tax: ${{ tax|floatformat:2 }} Total: ${{ total|floatformat:2 }}</p>
<form action="/buy_confirm" method="get">
<input type="hidden" name="sc_id" value="{{ sc_id }}">
<input type="hidden" name="c_id" value="{{ c_id }}">
<input type="submit" value="Buy">
</form>
{% endblock %}`,

		"buy_confirm.html": `{% extends "base.html" %}
{% block title %}Order Confirmation{% endblock %}
{% block content %}
<h2>Thank you for your order!</h2>
<p>Order number: <b>{{ o_id }}</b></p>
<p>Total charged: ${{ total|floatformat:2 }}</p>
<p>Your order will ship via {{ ship_type }} within one week.</p>
{% endblock %}`,

		"order_inquiry.html": `{% extends "base.html" %}
{% block title %}Order Inquiry{% endblock %}
{% block content %}
<h2>Check your last order</h2>
<form action="/order_display" method="get">
Username: <input name="uname"> Password: <input name="passwd" type="password">
<input type="submit" value="Display last order">
</form>
{% endblock %}`,

		"order_display.html": `{% extends "base.html" %}
{% block title %}Order Display{% endblock %}
{% block content %}
{% if o_id %}
<h2>Order {{ o_id }} placed {{ o_date }}</h2>
<p>Status: {{ o_status }}, ship via {{ o_ship_type }}</p>
<table border="1">
{% for line in lines %}
<tr><td><a href="/product_detail?i_id={{ line.ol_i_id }}">{{ line.i_title }}</a></td>
<td>{{ line.ol_qty }}</td><td>${{ line.i_cost|floatformat:2 }}</td></tr>
{% endfor %}
</table>
<p>Total: ${{ o_total|floatformat:2 }}</p>
{% else %}
<h2>No orders found for that customer.</h2>
{% endif %}
{% endblock %}`,

		"search_request.html": `{% extends "base.html" %}
{% block title %}Search{% endblock %}
{% block content %}
<h2>Search the store</h2>
<form action="/execute_search" method="get">
<select name="field">
<option value="title">Title</option>
<option value="author">Author</option>
<option value="subject">Subject</option>
</select>
<input name="terms">
<input type="submit" value="Search">
</form>
{% include "promo.html" %}
{% endblock %}`,

		"execute_search.html": `{% extends "base.html" %}
{% block title %}Search Results{% endblock %}
{% block content %}
<h2>Results for "{{ terms }}" in {{ field }}</h2>
<table border="1">
{% for r in results %}
<tr>
<td><a href="/product_detail?i_id={{ r.i_id }}"><img src="{{ r.i_thumbnail }}" alt=""></a></td>
<td><a href="/product_detail?i_id={{ r.i_id }}">{{ r.i_title }}</a></td>
<td>{{ r.a_fname }} {{ r.a_lname }}</td>
<td>${{ r.i_cost|floatformat:2 }}</td>
</tr>
{% empty %}
<tr><td>No items matched.</td></tr>
{% endfor %}
</table>
{% endblock %}`,

		"new_products.html": `{% extends "base.html" %}
{% block title %}New Products{% endblock %}
{% block content %}
<h2>New {{ subject|title }} releases</h2>
<table border="1">
{% for r in results %}
<tr>
<td><a href="/product_detail?i_id={{ r.i_id }}"><img src="{{ r.i_thumbnail }}" alt=""></a></td>
<td><a href="/product_detail?i_id={{ r.i_id }}">{{ r.i_title }}</a></td>
<td>{{ r.a_fname }} {{ r.a_lname }}</td>
<td>{{ r.i_pub_date }}</td>
<td>${{ r.i_cost|floatformat:2 }}</td>
</tr>
{% endfor %}
</table>
{% endblock %}`,

		"best_sellers.html": `{% extends "base.html" %}
{% block title %}Best Sellers{% endblock %}
{% block content %}
<h2>Best selling {{ subject|title }} books</h2>
<table border="1">
<tr><th></th><th>Title</th><th>Author</th><th>Sold</th><th>Price</th></tr>
{% for r in results %}
<tr>
<td>{{ forloop.counter }}</td>
<td><a href="/product_detail?i_id={{ r.i_id }}">{{ r.i_title }}</a></td>
<td>{{ r.a_fname }} {{ r.a_lname }}</td>
<td>{{ r.qty }}</td>
<td>${{ r.i_cost|floatformat:2 }}</td>
</tr>
{% endfor %}
</table>
{% endblock %}`,

		"product_detail.html": `{% extends "base.html" %}
{% block title %}{{ i_title }}{% endblock %}
{% block content %}
<h2>{{ i_title }}</h2>
<img src="{{ i_image }}" alt="{{ i_title }}">
<p>By {{ a_fname }} {{ a_lname }}</p>
<p>Subject: {{ i_subject|title }} | Published {{ i_pub_date }}</p>
<p>{{ i_desc }}</p>
<p>SRP: ${{ i_srp|floatformat:2 }} <b>Our price: ${{ i_cost|floatformat:2 }}</b> ({{ i_stock }} in stock)</p>
<form action="/shopping_cart" method="get">
<input type="hidden" name="i_id" value="{{ i_id }}">
<input type="submit" value="Add to cart">
</form>
{% endblock %}`,

		"admin_request.html": `{% extends "base.html" %}
{% block title %}Admin Request{% endblock %}
{% block content %}
<h2>Edit item {{ i_id }}</h2>
<p>{{ i_title }} — current price ${{ i_cost|floatformat:2 }}</p>
<img src="{{ i_image }}" alt="">
<form action="/admin_response" method="get">
<input type="hidden" name="i_id" value="{{ i_id }}">
New cost: <input name="cost" value="{{ i_cost|floatformat:2 }}">
New image: <input name="image" value="{{ i_image }}">
<input type="submit" value="Update">
</form>
{% endblock %}`,

		"admin_response.html": `{% extends "base.html" %}
{% block title %}Admin Confirm{% endblock %}
{% block content %}
<h2>Item {{ i_id }} updated</h2>
<p>{{ i_title }} now costs ${{ i_cost|floatformat:2 }}.</p>
<p>Related items recomputed: {{ related|join:", " }}</p>
{% endblock %}`,
	}
}
